package stmx

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"autopn/internal/stm"
)

func intLess(a, b int) bool { return a < b }

func newIntTree() *RBTree[int, string] { return NewRBTree[int, string](intLess) }

func TestRBTreeBasicOps(t *testing.T) {
	s := newSTM()
	tr := newIntTree()
	err := s.Atomic(func(tx *stm.Tx) error {
		if _, ok := tr.Get(tx, 1); ok {
			t.Error("empty tree found a key")
		}
		tr.Put(tx, 5, "five")
		tr.Put(tx, 3, "three")
		tr.Put(tx, 8, "eight")
		tr.Put(tx, 5, "FIVE") // replace
		if v, ok := tr.Get(tx, 5); !ok || v != "FIVE" {
			t.Errorf("Get(5) = (%q,%v)", v, ok)
		}
		if n := tr.Len(tx); n != 3 {
			t.Errorf("Len = %d, want 3", n)
		}
		if k, v, ok := tr.Min(tx); !ok || k != 3 || v != "three" {
			t.Errorf("Min = (%d,%q,%v)", k, v, ok)
		}
		if !tr.Delete(tx, 3) {
			t.Error("Delete(3) = false")
		}
		if tr.Delete(tx, 3) {
			t.Error("double Delete(3) = true")
		}
		if n := tr.Len(tx); n != 2 {
			t.Errorf("Len after delete = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeRangeOrdered(t *testing.T) {
	s := newSTM()
	tr := newIntTree()
	keys := []int{9, 2, 7, 1, 8, 3, 6, 4, 5, 0}
	if err := s.Atomic(func(tx *stm.Tx) error {
		for _, k := range keys {
			tr.Put(tx, k, "")
		}
		var got []int
		tr.Range(tx, func(k int, _ string) bool {
			got = append(got, k)
			return true
		})
		if !sort.IntsAreSorted(got) || len(got) != len(keys) {
			t.Errorf("Range order = %v", got)
		}
		// Early termination.
		count := 0
		tr.Range(tx, func(int, string) bool {
			count++
			return count < 3
		})
		if count != 3 {
			t.Errorf("early-stop visited %d", count)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRBTreeMatchesReferenceMap property-tests the tree against a Go map
// under random operation sequences, and validates red-black invariants
// after every transaction.
func TestRBTreeMatchesReferenceMap(t *testing.T) {
	f := func(ops []int16) bool {
		s := newSTM()
		tr := NewRBTree[int, int](intLess)
		ref := map[int]int{}
		for i, op := range ops {
			key := int(op) % 64
			err := s.Atomic(func(tx *stm.Tx) error {
				switch i % 3 {
				case 0:
					tr.Put(tx, key, i)
				case 1:
					tr.Delete(tx, key)
				case 2:
					v, ok := tr.Get(tx, key)
					rv, rok := ref[key]
					if ok != rok || (ok && v != rv) {
						t.Errorf("Get(%d) = (%d,%v), ref (%d,%v)", key, v, ok, rv, rok)
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
			switch i % 3 {
			case 0:
				ref[key] = i
			case 1:
				delete(ref, key)
			}
		}
		// Final state equivalence plus structural invariants.
		err := s.Atomic(func(tx *stm.Tx) error {
			if tr.Len(tx) != len(ref) {
				t.Errorf("Len %d != ref %d", tr.Len(tx), len(ref))
			}
			var got []int
			tr.Range(tx, func(k int, v int) bool {
				got = append(got, k)
				if rv := ref[k]; rv != v {
					t.Errorf("value mismatch at %d: %d vs %d", k, v, rv)
				}
				return true
			})
			if !sort.IntsAreSorted(got) {
				t.Errorf("range not sorted: %v", got)
			}
			checkRBInvariants(t, tx, tr)
			return nil
		})
		return err == nil && !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// checkRBInvariants verifies: no red node has a red left child chain
// violations, rightleaning red links are absent (LLRB), and every
// root-to-nil path has the same black height.
func checkRBInvariants(t *testing.T, tx *stm.Tx, tr *RBTree[int, int]) {
	t.Helper()
	root := tr.root.Get(tx)
	if tr.isRed(tx, root) {
		t.Error("root is red")
	}
	var walk func(n *rbNode[int, int]) int
	walk = func(n *rbNode[int, int]) int {
		if n == nil {
			return 1
		}
		l, r := n.left.Get(tx), n.right.Get(tx)
		if tr.isRed(tx, r) {
			t.Error("right-leaning red link")
		}
		if tr.isRed(tx, n) && tr.isRed(tx, l) {
			t.Error("consecutive red links")
		}
		bl := walk(l)
		br := walk(r)
		if bl != br {
			t.Errorf("black-height mismatch: %d vs %d", bl, br)
		}
		if !tr.isRed(tx, n) {
			bl++
		}
		return bl
	}
	walk(root)
}

func TestRBTreeAbortedMutationsInvisible(t *testing.T) {
	s := newSTM()
	tr := newIntTree()
	if err := s.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < 20; i++ {
			tr.Put(tx, i, "v")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = s.Atomic(func(tx *stm.Tx) error {
		tr.Put(tx, 100, "leak")
		tr.Delete(tx, 0)
		return errAbort
	})
	if err := s.Atomic(func(tx *stm.Tx) error {
		if _, ok := tr.Get(tx, 100); ok {
			t.Error("aborted insert leaked")
		}
		if _, ok := tr.Get(tx, 0); !ok {
			t.Error("aborted delete leaked")
		}
		if n := tr.Len(tx); n != 20 {
			t.Errorf("Len = %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeConcurrentDisjointInserts(t *testing.T) {
	s := newSTM()
	tr := NewRBTree[int, int](intLess)
	const workers, per = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := base*per + i
				if err := s.Atomic(func(tx *stm.Tx) error {
					tr.Put(tx, k, k)
					return nil
				}); err != nil {
					t.Errorf("put %d: %v", k, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Atomic(func(tx *stm.Tx) error {
		if n := tr.Len(tx); n != workers*per {
			t.Errorf("Len = %d, want %d", n, workers*per)
		}
		for k := 0; k < workers*per; k++ {
			if v, ok := tr.Get(tx, k); !ok || v != k {
				t.Errorf("Get(%d) = (%d,%v)", k, v, ok)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeNestedParallelReads(t *testing.T) {
	s := newSTM()
	tr := NewRBTree[int, int](intLess)
	if err := s.Atomic(func(tx *stm.Tx) error {
		for i := 0; i < 100; i++ {
			tr.Put(tx, i, i*i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A transaction that scans two halves of the key space with parallel
	// nested children.
	var loSum, hiSum int
	if err := s.Atomic(func(tx *stm.Tx) error {
		return tx.Parallel(
			func(c *stm.Tx) error {
				for i := 0; i < 50; i++ {
					v, _ := tr.Get(c, i)
					loSum += v
				}
				return nil
			},
			func(c *stm.Tx) error {
				for i := 50; i < 100; i++ {
					v, _ := tr.Get(c, i)
					hiSum += v
				}
				return nil
			},
		)
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		want += i * i
	}
	if loSum+hiSum != want {
		t.Fatalf("parallel scan sum = %d, want %d", loSum+hiSum, want)
	}
}
