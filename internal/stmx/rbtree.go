package stmx

import "autopn/internal/stm"

// RBTree is a transactional ordered map implemented as a red-black tree
// whose structure lives in versioned boxes — the data structure STAMP's
// Vacation benchmark stores its tables in. Every node's links and payload
// are transactional state, so structural rotations compose atomically with
// payload updates, and two transactions conflict only when their access
// paths intersect (readers of disjoint subtrees proceed in parallel).
//
// The implementation is a classic left-leaning red-black tree (Sedgewick):
// purely top-down recursive insert/delete with rebalancing on the way back
// up, which maps naturally onto transactional reads and writes of the
// per-node boxes.
type RBTree[K any, V any] struct {
	root *stm.VBox[*rbNode[K, V]]
	less func(a, b K) bool
	size *Counter
}

type rbNode[K any, V any] struct {
	key   K
	value *stm.VBox[V]
	left  *stm.VBox[*rbNode[K, V]]
	right *stm.VBox[*rbNode[K, V]]
	red   *stm.VBox[bool]
}

// NewRBTree creates an empty tree ordered by less.
func NewRBTree[K any, V any](less func(a, b K) bool) *RBTree[K, V] {
	return &RBTree[K, V]{
		root: stm.NewVBox[*rbNode[K, V]](nil),
		less: less,
		size: NewCounter(0),
	}
}

func newRBNode[K any, V any](key K, val V) *rbNode[K, V] {
	return &rbNode[K, V]{
		key:   key,
		value: stm.NewVBox(val),
		left:  stm.NewVBox[*rbNode[K, V]](nil),
		right: stm.NewVBox[*rbNode[K, V]](nil),
		red:   stm.NewVBox(true),
	}
}

// Len returns the number of keys.
func (t *RBTree[K, V]) Len(tx *stm.Tx) int { return int(t.size.Get(tx)) }

// Get returns the value stored under key.
func (t *RBTree[K, V]) Get(tx *stm.Tx, key K) (V, bool) {
	n := t.root.Get(tx)
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left.Get(tx)
		case t.less(n.key, key):
			n = n.right.Get(tx)
		default:
			return n.value.Get(tx), true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key.
func (t *RBTree[K, V]) Put(tx *stm.Tx, key K, val V) {
	inserted := false
	r := t.insert(tx, t.root.Get(tx), key, val, &inserted)
	r.red.Put(tx, false)
	t.root.Put(tx, r)
	if inserted {
		t.size.Add(tx, 1)
	}
}

func (t *RBTree[K, V]) insert(tx *stm.Tx, n *rbNode[K, V], key K, val V, inserted *bool) *rbNode[K, V] {
	if n == nil {
		*inserted = true
		return newRBNode(key, val)
	}
	switch {
	case t.less(key, n.key):
		n.left.Put(tx, t.insert(tx, n.left.Get(tx), key, val, inserted))
	case t.less(n.key, key):
		n.right.Put(tx, t.insert(tx, n.right.Get(tx), key, val, inserted))
	default:
		n.value.Put(tx, val)
		return n
	}
	return t.fixUp(tx, n)
}

// Delete removes key, reporting whether it was present.
func (t *RBTree[K, V]) Delete(tx *stm.Tx, key K) bool {
	root := t.root.Get(tx)
	if root == nil {
		return false
	}
	if _, ok := t.Get(tx, key); !ok {
		return false
	}
	// Standard LLRB delete: ensure the root is not a 2-node.
	if !t.isRed(tx, root.left.Get(tx)) && !t.isRed(tx, root.right.Get(tx)) {
		root.red.Put(tx, true)
	}
	root = t.delete(tx, root, key)
	if root != nil {
		root.red.Put(tx, false)
	}
	t.root.Put(tx, root)
	t.size.Add(tx, -1)
	return true
}

func (t *RBTree[K, V]) delete(tx *stm.Tx, n *rbNode[K, V], key K) *rbNode[K, V] {
	if t.less(key, n.key) {
		if !t.isRed(tx, n.left.Get(tx)) && n.left.Get(tx) != nil &&
			!t.isRed(tx, n.left.Get(tx).left.Get(tx)) {
			n = t.moveRedLeft(tx, n)
		}
		n.left.Put(tx, t.delete(tx, n.left.Get(tx), key))
	} else {
		if t.isRed(tx, n.left.Get(tx)) {
			n = t.rotateRight(tx, n)
		}
		if !t.less(n.key, key) && n.right.Get(tx) == nil {
			return nil
		}
		if !t.isRed(tx, n.right.Get(tx)) && n.right.Get(tx) != nil &&
			!t.isRed(tx, n.right.Get(tx).left.Get(tx)) {
			n = t.moveRedRight(tx, n)
		}
		if !t.less(n.key, key) && !t.less(key, n.key) {
			// Replace with the successor's key/value, delete the successor.
			min := t.minNode(tx, n.right.Get(tx))
			// Nodes are shared transactional structure: rebuild this node
			// with the successor's payload rather than mutating keys in
			// place (keys are immutable per node).
			repl := &rbNode[K, V]{
				key:   min.key,
				value: stm.NewVBox(min.value.Get(tx)),
				left:  n.left,
				right: n.right,
				red:   n.red,
			}
			repl.right.Put(tx, t.deleteMin(tx, repl.right.Get(tx)))
			n = repl
		} else {
			n.right.Put(tx, t.delete(tx, n.right.Get(tx), key))
		}
	}
	return t.fixUp(tx, n)
}

func (t *RBTree[K, V]) minNode(tx *stm.Tx, n *rbNode[K, V]) *rbNode[K, V] {
	for {
		l := n.left.Get(tx)
		if l == nil {
			return n
		}
		n = l
	}
}

func (t *RBTree[K, V]) deleteMin(tx *stm.Tx, n *rbNode[K, V]) *rbNode[K, V] {
	if n.left.Get(tx) == nil {
		return nil
	}
	if !t.isRed(tx, n.left.Get(tx)) && !t.isRed(tx, n.left.Get(tx).left.Get(tx)) {
		n = t.moveRedLeft(tx, n)
	}
	n.left.Put(tx, t.deleteMin(tx, n.left.Get(tx)))
	return t.fixUp(tx, n)
}

// Min returns the smallest key, if any.
func (t *RBTree[K, V]) Min(tx *stm.Tx) (K, V, bool) {
	n := t.root.Get(tx)
	if n == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	m := t.minNode(tx, n)
	return m.key, m.value.Get(tx), true
}

// Range calls fn for every key/value pair in ascending order until fn
// returns false.
func (t *RBTree[K, V]) Range(tx *stm.Tx, fn func(key K, val V) bool) {
	t.walk(tx, t.root.Get(tx), fn)
}

func (t *RBTree[K, V]) walk(tx *stm.Tx, n *rbNode[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !t.walk(tx, n.left.Get(tx), fn) {
		return false
	}
	if !fn(n.key, n.value.Get(tx)) {
		return false
	}
	return t.walk(tx, n.right.Get(tx), fn)
}

// --- LLRB plumbing ---

func (t *RBTree[K, V]) isRed(tx *stm.Tx, n *rbNode[K, V]) bool {
	return n != nil && n.red.Get(tx)
}

func (t *RBTree[K, V]) rotateLeft(tx *stm.Tx, h *rbNode[K, V]) *rbNode[K, V] {
	x := h.right.Get(tx)
	h.right.Put(tx, x.left.Get(tx))
	x.left.Put(tx, h)
	x.red.Put(tx, h.red.Get(tx))
	h.red.Put(tx, true)
	return x
}

func (t *RBTree[K, V]) rotateRight(tx *stm.Tx, h *rbNode[K, V]) *rbNode[K, V] {
	x := h.left.Get(tx)
	h.left.Put(tx, x.right.Get(tx))
	x.right.Put(tx, h)
	x.red.Put(tx, h.red.Get(tx))
	h.red.Put(tx, true)
	return x
}

func (t *RBTree[K, V]) flipColors(tx *stm.Tx, h *rbNode[K, V]) {
	h.red.Put(tx, !h.red.Get(tx))
	if l := h.left.Get(tx); l != nil {
		l.red.Put(tx, !l.red.Get(tx))
	}
	if r := h.right.Get(tx); r != nil {
		r.red.Put(tx, !r.red.Get(tx))
	}
}

func (t *RBTree[K, V]) moveRedLeft(tx *stm.Tx, h *rbNode[K, V]) *rbNode[K, V] {
	t.flipColors(tx, h)
	if r := h.right.Get(tx); r != nil && t.isRed(tx, r.left.Get(tx)) {
		h.right.Put(tx, t.rotateRight(tx, r))
		h = t.rotateLeft(tx, h)
		t.flipColors(tx, h)
	}
	return h
}

func (t *RBTree[K, V]) moveRedRight(tx *stm.Tx, h *rbNode[K, V]) *rbNode[K, V] {
	t.flipColors(tx, h)
	if l := h.left.Get(tx); l != nil && t.isRed(tx, l.left.Get(tx)) {
		h = t.rotateRight(tx, h)
		t.flipColors(tx, h)
	}
	return h
}

func (t *RBTree[K, V]) fixUp(tx *stm.Tx, h *rbNode[K, V]) *rbNode[K, V] {
	if t.isRed(tx, h.right.Get(tx)) && !t.isRed(tx, h.left.Get(tx)) {
		h = t.rotateLeft(tx, h)
	}
	if l := h.left.Get(tx); t.isRed(tx, l) && t.isRed(tx, l.left.Get(tx)) {
		h = t.rotateRight(tx, h)
	}
	if t.isRed(tx, h.left.Get(tx)) && t.isRed(tx, h.right.Get(tx)) {
		t.flipColors(tx, h)
	}
	return h
}
