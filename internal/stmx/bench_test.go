package stmx

import (
	"testing"

	"autopn/internal/stm"
)

func BenchmarkMapGet(b *testing.B) {
	s := newSTM()
	m := NewMap[uint64, int](256, FNV1a64)
	_ = s.Atomic(func(tx *stm.Tx) error {
		for k := uint64(0); k < 1000; k++ {
			m.Put(tx, k, int(k))
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			_, _ = m.Get(tx, uint64(i)%1000)
			return nil
		})
	}
}

func BenchmarkMapPut(b *testing.B) {
	s := newSTM()
	m := NewMap[uint64, int](256, FNV1a64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			m.Put(tx, uint64(i)%1000, i)
			return nil
		})
	}
}

func BenchmarkRBTreeGet(b *testing.B) {
	s := newSTM()
	tr := NewRBTree[int, int](intLess)
	_ = s.Atomic(func(tx *stm.Tx) error {
		for k := 0; k < 1000; k++ {
			tr.Put(tx, k, k)
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			_, _ = tr.Get(tx, i%1000)
			return nil
		})
	}
}

func BenchmarkRBTreePut(b *testing.B) {
	s := newSTM()
	tr := NewRBTree[int, int](intLess)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			tr.Put(tx, i%4096, i)
			return nil
		})
	}
}

func BenchmarkShardedCounterAdd(b *testing.B) {
	s := newSTM()
	c := NewShardedCounter(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			c.Add(tx, uint64(i), 1)
			return nil
		})
	}
}
