package stmx

import (
	"sync"
	"testing"
	"testing/quick"

	"autopn/internal/stm"
)

func newSTM() *stm.STM { return stm.New(stm.Options{}) }

func TestMapBasicOps(t *testing.T) {
	s := newSTM()
	m := NewMap[uint64, string](16, FNV1a64)
	err := s.Atomic(func(tx *stm.Tx) error {
		if _, ok := m.Get(tx, 1); ok {
			t.Error("empty map reported key")
		}
		m.Put(tx, 1, "one")
		m.Put(tx, 2, "two")
		m.Put(tx, 1, "uno") // replace
		if v, ok := m.Get(tx, 1); !ok || v != "uno" {
			t.Errorf("Get(1) = (%q,%v), want (uno,true)", v, ok)
		}
		if n := m.Len(tx); n != 2 {
			t.Errorf("Len = %d, want 2", n)
		}
		if !m.Delete(tx, 2) {
			t.Error("Delete(2) = false")
		}
		if m.Delete(tx, 2) {
			t.Error("double Delete(2) = true")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapIsolation(t *testing.T) {
	s := newSTM()
	m := NewMap[uint64, int](4, FNV1a64)
	if err := s.Atomic(func(tx *stm.Tx) error {
		m.Put(tx, 7, 70)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// An aborting transaction's writes must not leak.
	_ = s.Atomic(func(tx *stm.Tx) error {
		m.Put(tx, 7, 999)
		return errAbort
	})
	if err := s.Atomic(func(tx *stm.Tx) error {
		if v, _ := m.Get(tx, 7); v != 70 {
			t.Errorf("aborted write leaked: got %d", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

var errAbort = errorString("abort")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestMapConcurrentDistinctKeys(t *testing.T) {
	s := newSTM()
	m := NewMap[uint64, int](64, FNV1a64)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				key := base*per + i
				if err := s.Atomic(func(tx *stm.Tx) error {
					m.Put(tx, key, int(key))
					return nil
				}); err != nil {
					t.Errorf("put: %v", err)
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if err := s.Atomic(func(tx *stm.Tx) error {
		if n := m.Len(tx); n != workers*per {
			t.Errorf("Len = %d, want %d", n, workers*per)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMapMatchesReference property-tests the transactional map against a
// plain Go map under a random operation sequence.
func TestMapMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		s := newSTM()
		m := NewMap[uint64, uint16](8, FNV1a64)
		ref := map[uint64]uint16{}
		for _, op := range ops {
			key := uint64(op % 32)
			err := s.Atomic(func(tx *stm.Tx) error {
				switch op % 3 {
				case 0:
					m.Put(tx, key, op)
				case 1:
					m.Delete(tx, key)
				case 2:
					v, ok := m.Get(tx, key)
					rv, rok := ref[key]
					if ok != rok || (ok && v != rv) {
						t.Errorf("Get(%d) = (%d,%v), ref (%d,%v)", key, v, ok, rv, rok)
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
			switch op % 3 {
			case 0:
				ref[key] = op
			case 1:
				delete(ref, key)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	s := newSTM()
	c := NewCounter(5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Atomic(func(tx *stm.Tx) error {
					c.Add(tx, 2)
					return nil
				}); err != nil {
					t.Errorf("add: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Peek(); got != 5+4*25*2 {
		t.Fatalf("counter = %d, want %d", got, 5+4*25*2)
	}
}

func TestFNV1a64Spreads(t *testing.T) {
	seen := map[uint64]bool{}
	for k := uint64(0); k < 1000; k++ {
		seen[FNV1a64(k)%64] = true
	}
	if len(seen) < 32 {
		t.Errorf("hash hits only %d of 64 buckets over 1000 keys", len(seen))
	}
}
