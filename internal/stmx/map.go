// Package stmx provides transactional data structures built on the
// PN-STM's versioned boxes: a fixed-bucket hash map and a counter. They are
// the substrate the Vacation and TPC-C workload ports store their tables
// in (STAMP's Vacation uses red-black trees; a bucketed hash map provides
// the same transactional table abstraction with bucket-granular conflicts).
package stmx

import (
	"autopn/internal/stm"
)

// entry is one key/value pair of a bucket.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Map is a transactional hash map with a fixed number of buckets. Each
// bucket is a versioned box holding an immutable slice of entries, so two
// transactions conflict only when they touch the same bucket. The zero
// value is not usable; create with NewMap.
type Map[K comparable, V any] struct {
	buckets []*stm.VBox[[]entry[K, V]]
	hash    func(K) uint64
}

// NewMap creates a map with the given bucket count (rounded up to at least
// 1) and hash function.
func NewMap[K comparable, V any](buckets int, hash func(K) uint64) *Map[K, V] {
	if buckets < 1 {
		buckets = 1
	}
	m := &Map[K, V]{
		buckets: make([]*stm.VBox[[]entry[K, V]], buckets),
		hash:    hash,
	}
	for i := range m.buckets {
		m.buckets[i] = stm.NewVBox[[]entry[K, V]](nil)
	}
	return m
}

func (m *Map[K, V]) bucket(k K) *stm.VBox[[]entry[K, V]] {
	return m.buckets[m.hash(k)%uint64(len(m.buckets))]
}

// Get returns the value stored under k, if any.
func (m *Map[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	for _, e := range m.bucket(k).Get(tx) {
		if e.key == k {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// Put stores v under k, replacing any existing value.
func (m *Map[K, V]) Put(tx *stm.Tx, k K, v V) {
	b := m.bucket(k)
	old := b.Get(tx)
	nw := make([]entry[K, V], 0, len(old)+1)
	replaced := false
	for _, e := range old {
		if e.key == k {
			nw = append(nw, entry[K, V]{key: k, val: v})
			replaced = true
		} else {
			nw = append(nw, e)
		}
	}
	if !replaced {
		nw = append(nw, entry[K, V]{key: k, val: v})
	}
	b.Put(tx, nw)
}

// Delete removes k and reports whether it was present.
func (m *Map[K, V]) Delete(tx *stm.Tx, k K) bool {
	b := m.bucket(k)
	old := b.Get(tx)
	for i, e := range old {
		if e.key == k {
			nw := make([]entry[K, V], 0, len(old)-1)
			nw = append(nw, old[:i]...)
			nw = append(nw, old[i+1:]...)
			b.Put(tx, nw)
			return true
		}
	}
	return false
}

// Len returns the number of stored keys (reads every bucket; a heavy
// transaction, mostly for tests).
func (m *Map[K, V]) Len(tx *stm.Tx) int {
	n := 0
	for _, b := range m.buckets {
		n += len(b.Get(tx))
	}
	return n
}

// FNV1a64 is a convenience hash for integer keys.
func FNV1a64(k uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= k & 0xff
		h *= prime
		k >>= 8
	}
	return h
}

// Counter is a transactional counter.
type Counter struct {
	box *stm.VBox[int64]
}

// NewCounter returns a counter starting at v.
func NewCounter(v int64) *Counter { return &Counter{box: stm.NewVBox(v)} }

// Get returns the counter value as seen by tx.
func (c *Counter) Get(tx *stm.Tx) int64 { return c.box.Get(tx) }

// Add increments the counter by delta.
func (c *Counter) Add(tx *stm.Tx, delta int64) {
	c.box.Put(tx, c.box.Get(tx)+delta)
}

// Peek returns the last committed value without transactional protection.
func (c *Counter) Peek() int64 { return c.box.Peek() }

// ShardedCounter is a counter split across shards so that concurrent
// increments from different transactions need not conflict: callers pick a
// shard (typically by a per-worker random value) and only transactions
// touching the same shard serialize. Use it for statistics counters inside
// hot transactions, where a single Counter would create an artificial
// global conflict point.
type ShardedCounter struct {
	shards []*stm.VBox[int64]
}

// NewShardedCounter creates a counter with n shards (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	c := &ShardedCounter{shards: make([]*stm.VBox[int64], n)}
	for i := range c.shards {
		c.shards[i] = stm.NewVBox[int64](0)
	}
	return c
}

// Add increments the shard selected by shard (reduced modulo the shard
// count) by delta.
func (c *ShardedCounter) Add(tx *stm.Tx, shard uint64, delta int64) {
	b := c.shards[shard%uint64(len(c.shards))]
	b.Put(tx, b.Get(tx)+delta)
}

// Sum returns the total across all shards as seen by tx (reads every
// shard; use Peek for non-transactional reporting).
func (c *ShardedCounter) Sum(tx *stm.Tx) int64 {
	var total int64
	for _, b := range c.shards {
		total += b.Get(tx)
	}
	return total
}

// Peek returns the committed total without transactional protection.
func (c *ShardedCounter) Peek() int64 {
	var total int64
	for _, b := range c.shards {
		total += b.Peek()
	}
	return total
}
