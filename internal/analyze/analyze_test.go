package analyze

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autopn/internal/obs"
	"autopn/internal/server"
)

// writeJSONL writes one JSON object per line.
func writeJSONL(t *testing.T, path string, records ...any) {
	t.Helper()
	var b bytes.Buffer
	for _, r := range records {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func TestTimelineMergesAllSources(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	writeJSONL(t, filepath.Join(dir, "shard-0.jsonl"),
		obs.Decision{Time: t0.Add(50 * time.Millisecond), Kind: obs.KindPhase, Phase: "smbo", Note: "initial sampling done"},
		obs.Decision{Time: t0.Add(200 * time.Millisecond), Kind: obs.KindMeasurement, T: 4, C: 2,
			Throughput: 12345, CV: 0.04, WindowMS: 150},
		obs.Decision{Time: t0.Add(400 * time.Millisecond), Kind: obs.KindConverged, T: 4, C: 2, Throughput: 13000},
	)

	dlqPath := filepath.Join(dir, "dlq.jsonl")
	var sheds []any
	for i := 0; i < 25; i++ {
		sheds = append(sheds, server.DeadLetter{
			Time: t0.Add(100 * time.Millisecond), Shard: 0, Op: "ADD", Key: "k000001",
			Reason: server.ErrCodeOverload,
		})
	}
	writeJSONL(t, dlqPath, sheds...)

	// A minimal trace export: one request on shard 0 inside the
	// measurement window, with stage slices and one STM span.
	tracePath := filepath.Join(dir, "trace.json")
	export := map[string]any{
		"traceEvents": []map[string]any{
			{"name": "process_name", "ph": "M", "pid": 7, "tid": 0,
				"args": map[string]any{"name": "req 7 ADD k000001 (ok)"}},
			{"name": "request", "cat": "server", "ph": "X", "pid": 7, "tid": 1,
				"ts": 90_000.0, "dur": 5_000.0,
				"args": map[string]any{"shard": 0, "outcome": "ok"}},
			{"name": "queue", "cat": "server", "ph": "X", "pid": 7, "tid": 1, "ts": 90_100.0, "dur": 2_000.0},
			{"name": "exec", "cat": "server", "ph": "X", "pid": 7, "tid": 1, "ts": 92_100.0, "dur": 1_500.0},
			{"name": "commit", "cat": "server", "ph": "X", "pid": 7, "tid": 1, "ts": 93_600.0, "dur": 500.0},
			{"name": "flush", "cat": "server", "ph": "X", "pid": 7, "tid": 1, "ts": 94_100.0, "dur": 300.0},
			{"name": "top tx", "cat": "stm", "ph": "X", "pid": 7, "tid": 10, "ts": 92_200.0, "dur": 1_000.0,
				"args": map[string]any{"outcome": "commit"}},
		},
		"otherData": map[string]any{"epoch_unix_ns": t0.UnixNano()},
	}
	raw, err := json.Marshal(export)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var tl Timeline
	if err := tl.LoadDecisions(dir); err != nil {
		t.Fatalf("LoadDecisions: %v", err)
	}
	if err := tl.LoadDLQ(dlqPath); err != nil {
		t.Fatalf("LoadDLQ: %v", err)
	}
	if err := tl.LoadTrace(tracePath); err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}

	var out bytes.Buffer
	if err := tl.Write(&out); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := out.String()

	for _, want := range []string{
		"phase -> smbo",
		"measured (t=4,c=2): 12345 commits/s",
		"CONVERGED (t=4,c=2) 13000 commits/s",
		"25 dead letters (overload)",
		"req 7 ADD k000001 (ok): queue=2.00ms exec=1.50ms commit=0.50ms flush=0.30ms",
		"1 stm span(s)",
		// The measurement window contains the traced request, so the
		// decision line carries its stage annotation.
		"1 traced req(s) in window: queue=2.00ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("timeline missing %q\n---\n%s", want, text)
		}
	}

	// Chronological: the phase line precedes the converged line.
	if strings.Index(text, "phase -> smbo") > strings.Index(text, "CONVERGED") {
		t.Error("timeline is not time-sorted")
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	var out bytes.Buffer
	if err := tl.Write(&out); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(out.String(), "no events") {
		t.Errorf("empty timeline output %q", out.String())
	}
}
