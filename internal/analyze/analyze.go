// Package analyze merges the serving layer's offline artifacts — per-shard
// tuning decision logs, the dead-letter log, and a /debug/server/trace
// export — into one chronological, human-readable timeline. It answers the
// post-mortem question the individual files cannot: *what was the tuner
// doing when those requests were shed, and where did the traced requests'
// time go while it deliberated?*
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"autopn/internal/obs"
	"autopn/internal/server"
)

// Event is one timeline entry.
type Event struct {
	Time   time.Time
	Source string // "shard-3", "dlq", "trace"
	Text   string

	// shard and stages back the decision-annotation pass: trace events
	// carry their stage means, measurement decisions get annotated with
	// the traced requests that completed in their window.
	shard    int // -1 when unattributed
	isTrace  bool
	stages   [4]float64 // queue/exec/commit/flush ms (traces only)
	decision *obs.Decision
}

// Timeline is the merged, time-sorted event set.
type Timeline struct {
	Events []Event
}

// shardFileRE extracts the shard index from a decision-log file name.
var shardFileRE = regexp.MustCompile(`shard-(\d+)\.jsonl$`)

// LoadDecisions reads every shard-<i>.jsonl decision log in dir.
func (t *Timeline) LoadDecisions(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, path := range paths {
		shard := -1
		if m := shardFileRE.FindStringSubmatch(path); m != nil {
			fmt.Sscanf(m[1], "%d", &shard)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = t.readDecisions(f, shard)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

func (t *Timeline) readDecisions(r io.Reader, shard int) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d obs.Decision
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return err
		}
		dc := d
		t.Events = append(t.Events, Event{
			Time:     d.Time,
			Source:   fmt.Sprintf("shard-%d", shard),
			Text:     renderDecision(d),
			shard:    shard,
			decision: &dc,
		})
	}
	return sc.Err()
}

// renderDecision formats one tuner decision as a timeline line.
func renderDecision(d obs.Decision) string {
	switch d.Kind {
	case obs.KindMeasurement:
		s := fmt.Sprintf("measured (t=%d,c=%d): %.0f commits/s cv=%.3f window=%.0fms",
			d.T, d.C, d.Throughput, d.CV, d.WindowMS)
		if d.Aborts > 0 {
			s += fmt.Sprintf(" aborts=%d", d.Aborts)
		}
		if d.TimedOut {
			s += " (timed out)"
		}
		if d.Watchdog {
			s += " (watchdog)"
		}
		return s
	case obs.KindSuggestion:
		if d.EI > 0 {
			return fmt.Sprintf("suggest (t=%d,c=%d) ei=%.3g rel=%.3g [%s]", d.T, d.C, d.EI, d.RelEI, d.Phase)
		}
		return fmt.Sprintf("suggest (t=%d,c=%d) [%s]", d.T, d.C, d.Phase)
	case obs.KindPhase:
		return fmt.Sprintf("phase -> %s (%s)", d.Phase, d.Note)
	case obs.KindConverged:
		return fmt.Sprintf("CONVERGED (t=%d,c=%d) %.0f commits/s", d.T, d.C, d.Throughput)
	case obs.KindApply:
		return fmt.Sprintf("apply (t=%d,c=%d)", d.T, d.C)
	case obs.KindChangePoint:
		return fmt.Sprintf("CHANGE POINT detected: %s", d.Note)
	case obs.KindQuarantine:
		return fmt.Sprintf("quarantine (t=%d,c=%d): %s", d.T, d.C, d.Note)
	case obs.KindFallback:
		return fmt.Sprintf("fallback to (t=%d,c=%d): %s", d.T, d.C, d.Note)
	case obs.KindRecovery:
		return fmt.Sprintf("RECOVERY warm start (t=%d,c=%d): %s", d.T, d.C, d.Note)
	case obs.KindShutdown:
		return fmt.Sprintf("clean shutdown: %s", d.Note)
	default:
		b, _ := json.Marshal(d)
		return string(b)
	}
}

// dlqBucket aggregates dead letters per (second, shard, reason): at full
// shed rate the DLQ has tens of thousands of lines per second, and a
// timeline that repeats them one per line buries everything else.
type dlqBucket struct {
	sec    int64
	shard  int
	reason string
}

// LoadDLQ reads a dead-letter JSONL log, aggregated per second.
func (t *Timeline) LoadDLQ(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return t.readDLQ(f)
}

func (t *Timeline) readDLQ(r io.Reader) error {
	counts := make(map[dlqBucket]int)
	first := make(map[dlqBucket]time.Time)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d server.DeadLetter
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return err
		}
		b := dlqBucket{sec: d.Time.Unix(), shard: d.Shard, reason: d.Reason}
		if counts[b] == 0 {
			first[b] = d.Time
		}
		counts[b]++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for b, n := range counts {
		t.Events = append(t.Events, Event{
			Time:   first[b],
			Source: "dlq",
			Text:   fmt.Sprintf("shard %d: %d dead letters (%s) within 1s", b.shard, n, b.reason),
			shard:  b.shard,
		})
	}
	return nil
}

// traceExport mirrors the /debug/server/trace JSON shape.
type traceExport struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  uint64         `json:"pid"`
		TID  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData struct {
		EpochUnixNS int64 `json:"epoch_unix_ns"`
	} `json:"otherData"`
}

// LoadTrace reads a merged /debug/server/trace export: each request
// becomes one timeline line with its stage decomposition and STM attempt
// count.
func (t *Timeline) LoadTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return t.readTrace(f)
}

func (t *Timeline) readTrace(r io.Reader) error {
	var exp traceExport
	if err := json.NewDecoder(r).Decode(&exp); err != nil {
		return err
	}
	epoch := time.Unix(0, exp.OtherData.EpochUnixNS)

	type reqAgg struct {
		name    string
		startUS float64
		shard   int
		outcome string
		stages  [4]float64
		spans   int
		aborts  int
		hasReq  bool
	}
	reqs := make(map[uint64]*reqAgg)
	get := func(pid uint64) *reqAgg {
		a := reqs[pid]
		if a == nil {
			a = &reqAgg{shard: -1}
			reqs[pid] = a
		}
		return a
	}
	stageIdx := map[string]int{"queue": 0, "exec": 1, "commit": 2, "flush": 3}
	for _, ev := range exp.TraceEvents {
		a := get(ev.PID)
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			if n, ok := ev.Args["name"].(string); ok {
				a.name = n
			}
		case ev.Ph == "X" && ev.Cat == "server" && ev.Name == "request":
			a.hasReq = true
			a.startUS = ev.TS
			if s, ok := ev.Args["shard"].(float64); ok {
				a.shard = int(s)
			}
			if o, ok := ev.Args["outcome"].(string); ok {
				a.outcome = o
			}
		case ev.Ph == "X" && ev.Cat == "server":
			if i, ok := stageIdx[ev.Name]; ok {
				a.stages[i] = ev.Dur / 1e3 // us -> ms
			}
		case ev.Ph == "X" && ev.Cat == "stm":
			a.spans++
			if o, ok := ev.Args["outcome"].(string); ok && o != "commit" {
				a.aborts++
			}
		}
	}
	for pid, a := range reqs {
		if !a.hasReq {
			continue
		}
		text := fmt.Sprintf("%s: queue=%.2fms exec=%.2fms commit=%.2fms flush=%.2fms",
			a.name, a.stages[0], a.stages[1], a.stages[2], a.stages[3])
		if a.spans > 0 {
			text += fmt.Sprintf(" | %d stm span(s)", a.spans)
			if a.aborts > 0 {
				text += fmt.Sprintf(", %d abort(s)", a.aborts)
			}
		}
		_ = pid
		t.Events = append(t.Events, Event{
			Time:    epoch.Add(time.Duration(a.startUS * float64(time.Microsecond))),
			Source:  "trace",
			Text:    text,
			shard:   a.shard,
			isTrace: true,
			stages:  a.stages,
		})
	}
	return nil
}

// annotate attaches, to each measurement decision, the mean stage split of
// traced requests that completed on the same shard inside its window — the
// line that correlates "the tuner saw throughput X" with "and traced
// requests were spending their time *here*".
func (t *Timeline) annotate() {
	for i := range t.Events {
		d := t.Events[i].decision
		if d == nil || d.Kind != obs.KindMeasurement || d.WindowMS <= 0 {
			continue
		}
		winStart := d.Time.Add(-time.Duration(d.WindowMS * float64(time.Millisecond)))
		var sum [4]float64
		n := 0
		for j := range t.Events {
			e := &t.Events[j]
			if !e.isTrace || e.shard != t.Events[i].shard {
				continue
			}
			if e.Time.Before(winStart) || e.Time.After(d.Time) {
				continue
			}
			for k := range sum {
				sum[k] += e.stages[k]
			}
			n++
		}
		if n > 0 {
			t.Events[i].Text += fmt.Sprintf(
				" | %d traced req(s) in window: queue=%.2fms exec=%.2fms commit=%.2fms flush=%.2fms",
				n, sum[0]/float64(n), sum[1]/float64(n), sum[2]/float64(n), sum[3]/float64(n))
		}
	}
}

// Write renders the merged timeline, oldest first, with offsets relative
// to the first event.
func (t *Timeline) Write(w io.Writer) error {
	t.annotate()
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Time.Before(t.Events[j].Time) })
	if len(t.Events) == 0 {
		_, err := fmt.Fprintln(w, "no events")
		return err
	}
	t0 := t.Events[0].Time
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "timeline: %d events starting %s\n\n", len(t.Events), t0.Format(time.RFC3339Nano))
	for _, e := range t.Events {
		fmt.Fprintf(bw, "%+12.3fms  %-8s  %s\n",
			float64(e.Time.Sub(t0))/float64(time.Millisecond), e.Source, e.Text)
	}
	return bw.Flush()
}
