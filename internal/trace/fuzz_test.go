package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad asserts the trace loader never panics on arbitrary input and,
// when it accepts input, produces a usable trace.
func FuzzLoad(f *testing.F) {
	f.Add(`{"workload":"w","cores":4,"runs":1,"configs":[{"t":1,"c":1,"samples":[5]}]}`)
	f.Add(`{}`)
	f.Add(`not json at all`)
	f.Add(`{"workload":"w","cores":-3}`)
	f.Add(`{"workload":"w","cores":2,"configs":[{"t":99,"c":99,"samples":[]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must round-trip and answer queries safely.
		_ = tr.Space()
		_, _ = tr.Optimum()
		for _, cfg := range tr.SortedConfigs() {
			_ = tr.Mean(cfg)
			_ = tr.DFO(cfg)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			t.Fatalf("accepted trace failed to save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("round-trip load failed: %v", err)
		}
	})
}
