// Package trace implements the offline-trace protocol of §VII-B of the
// paper: every configuration of the space is measured a fixed number of
// times up front, and optimizers are then evaluated by replaying these
// traces, so that every strategy sees identical, reproducible inputs and
// optimizer quality is decoupled from measurement quality.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// ConfigSamples holds the measured samples of one configuration.
type ConfigSamples struct {
	T       int       `json:"t"`
	C       int       `json:"c"`
	Samples []float64 `json:"samples"`
}

// Trace is an exhaustive measurement of a workload over a configuration
// space.
type Trace struct {
	Workload string          `json:"workload"`
	Cores    int             `json:"cores"`
	Runs     int             `json:"runs"`
	Configs  []ConfigSamples `json:"configs"`

	index map[space.Config]int
}

// Collect exhaustively measures w over sp, taking runs noisy samples per
// configuration (the paper uses 10 runs of >= 10 minutes each; the noise
// model stands in for run-length averaging).
func Collect(w *surface.Workload, sp *space.Space, runs int, rng *stats.RNG) *Trace {
	if runs < 1 {
		runs = 1
	}
	tr := &Trace{Workload: w.Name, Cores: sp.Cores(), Runs: runs}
	for _, cfg := range sp.Configs() {
		cs := ConfigSamples{T: cfg.T, C: cfg.C, Samples: make([]float64, runs)}
		for i := range cs.Samples {
			cs.Samples[i] = w.Measure(cfg, rng)
		}
		tr.Configs = append(tr.Configs, cs)
	}
	tr.buildIndex()
	return tr
}

func (tr *Trace) buildIndex() {
	tr.index = make(map[space.Config]int, len(tr.Configs))
	for i, cs := range tr.Configs {
		tr.index[space.Config{T: cs.T, C: cs.C}] = i
	}
}

// Space reconstructs the configuration space the trace covers.
func (tr *Trace) Space() *space.Space { return space.New(tr.Cores) }

// Samples returns the recorded samples for cfg (nil if absent).
func (tr *Trace) Samples(cfg space.Config) []float64 {
	if i, ok := tr.index[cfg]; ok {
		return tr.Configs[i].Samples
	}
	return nil
}

// Mean returns the mean recorded throughput of cfg (0 if absent).
func (tr *Trace) Mean(cfg space.Config) float64 {
	return stats.Mean(tr.Samples(cfg))
}

// Optimum returns the configuration with the highest mean recorded
// throughput, and that mean.
func (tr *Trace) Optimum() (space.Config, float64) {
	var best space.Config
	bestV := 0.0
	first := true
	for _, cs := range tr.Configs {
		m := stats.Mean(cs.Samples)
		if first || m > bestV {
			best, bestV = space.Config{T: cs.T, C: cs.C}, m
			first = false
		}
	}
	return best, bestV
}

// DFO returns the distance from optimum of cfg: 1 - mean(cfg)/mean(opt),
// i.e. 0 at the optimum and approaching 1 for worthless configurations
// (the metric of Fig. 5/6).
func (tr *Trace) DFO(cfg space.Config) float64 {
	_, best := tr.Optimum()
	if best <= 0 {
		return 0
	}
	return 1 - tr.Mean(cfg)/best
}

// Evaluator replays a trace as a measurement source: each evaluation of a
// configuration returns one of its recorded samples, drawn uniformly by
// rng (so repeated optimizer runs see varied but identically distributed
// measurements, matching the paper's 10-repetition protocol).
type Evaluator struct {
	tr  *Trace
	rng *stats.RNG
	// Evals counts evaluations served (including repeats of the same
	// configuration).
	Evals int
}

// NewEvaluator returns an evaluator over tr.
func NewEvaluator(tr *Trace, rng *stats.RNG) *Evaluator {
	return &Evaluator{tr: tr, rng: rng}
}

// Evaluate returns one measurement for cfg.
func (e *Evaluator) Evaluate(cfg space.Config) float64 {
	s := e.tr.Samples(cfg)
	if len(s) == 0 {
		return 0
	}
	e.Evals++
	return s[e.rng.Intn(len(s))]
}

// Save writes the trace as JSON.
func (tr *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// SaveFile writes the trace to a file.
func (tr *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.Save(f)
}

// Load reads a JSON trace.
func Load(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if tr.Cores < 1 {
		return nil, fmt.Errorf("trace: invalid core count %d", tr.Cores)
	}
	tr.buildIndex()
	return &tr, nil
}

// LoadFile reads a trace from a file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SortedConfigs returns the trace's configurations in canonical order.
func (tr *Trace) SortedConfigs() []space.Config {
	out := make([]space.Config, 0, len(tr.Configs))
	for _, cs := range tr.Configs {
		out = append(out, space.Config{T: cs.T, C: cs.C})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].C < out[j].C
	})
	return out
}
