package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func collectSmall(t *testing.T) (*Trace, *surface.Workload, *space.Space) {
	t.Helper()
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	tr := Collect(w, sp, 5, stats.NewRNG(1))
	return tr, w, sp
}

func TestCollectCoversSpace(t *testing.T) {
	tr, _, sp := collectSmall(t)
	if len(tr.Configs) != sp.Size() {
		t.Fatalf("trace covers %d configs, space has %d", len(tr.Configs), sp.Size())
	}
	for _, cfg := range sp.Configs() {
		s := tr.Samples(cfg)
		if len(s) != 5 {
			t.Fatalf("%v has %d samples", cfg, len(s))
		}
	}
	if tr.Samples(space.Config{T: 48, C: 2}) != nil {
		t.Fatal("samples for inadmissible config")
	}
}

func TestMeansTrackModel(t *testing.T) {
	tr, w, sp := collectSmall(t)
	for _, cfg := range sp.Configs() {
		want := w.Throughput(cfg)
		got := tr.Mean(cfg)
		if want == 0 {
			continue
		}
		if math.Abs(got-want) > 0.1*want {
			t.Fatalf("%v: trace mean %.1f vs model %.1f", cfg, got, want)
		}
	}
}

func TestOptimumAndDFO(t *testing.T) {
	tr, w, sp := collectSmall(t)
	optCfg, optV := tr.Optimum()
	wOpt, _ := w.Optimum(sp)
	// Trace optimum equals (or neighbors, under noise) the model optimum.
	if tr.DFO(wOpt) > 0.05 {
		t.Fatalf("model optimum %v has trace DFO %.1f%%", wOpt, tr.DFO(wOpt)*100)
	}
	if got := tr.DFO(optCfg); got != 0 {
		t.Fatalf("DFO(optimum) = %v", got)
	}
	if optV <= 0 {
		t.Fatalf("optimum value %v", optV)
	}
	if dfo := tr.DFO(space.Config{T: 1, C: 48}); dfo < 0.5 {
		t.Fatalf("DFO of a terrible config = %.2f", dfo)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	tr, _, _ := collectSmall(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Workload != tr.Workload || tr2.Cores != tr.Cores || tr2.Runs != tr.Runs {
		t.Fatalf("metadata mismatch: %+v", tr2)
	}
	for _, cfg := range tr.SortedConfigs() {
		a, b := tr.Samples(cfg), tr2.Samples(cfg)
		if len(a) != len(b) {
			t.Fatalf("%v: %d vs %d samples", cfg, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v sample %d differs", cfg, i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := Load(strings.NewReader(`{"workload":"x","cores":0}`)); err == nil {
		t.Fatal("accepted zero core count")
	}
}

func TestEvaluatorDrawsRecordedSamples(t *testing.T) {
	tr, _, sp := collectSmall(t)
	ev := NewEvaluator(tr, stats.NewRNG(7))
	cfg := sp.At(10)
	recorded := map[float64]bool{}
	for _, s := range tr.Samples(cfg) {
		recorded[s] = true
	}
	for i := 0; i < 20; i++ {
		if v := ev.Evaluate(cfg); !recorded[v] {
			t.Fatalf("evaluator returned %v, not among recorded samples", v)
		}
	}
	if ev.Evals != 20 {
		t.Fatalf("Evals = %d", ev.Evals)
	}
	if v := ev.Evaluate(space.Config{T: 0, C: 0}); v != 0 {
		t.Fatalf("unknown config evaluated to %v", v)
	}
}

func TestFileRoundtrip(t *testing.T) {
	tr, _, _ := collectSmall(t)
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	tr2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Space().Size() != tr.Space().Size() {
		t.Fatal("space size mismatch after file roundtrip")
	}
}
