package experiment

import (
	"testing"

	"autopn/internal/core"
	"autopn/internal/surface"
)

// runSmallFig5 runs a reduced Fig. 5 (3 reps) for tests.
func runSmallFig5(t *testing.T) []StrategyResult {
	t.Helper()
	cfg := DefaultFig5Config()
	cfg.Reps = 3
	return Fig5(cfg)
}

func TestFig5AutoPNBeatsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full optimizer comparison is slow")
	}
	results := runSmallFig5(t)
	byName := map[string]StrategyResult{}
	for _, r := range results {
		byName[r.Name] = r
		t.Logf("%-20s meanExpl=%6.1f meanFinalDFO=%6.2f%% p90FinalDFO=%6.2f%% converged=%.0f%%",
			r.Name, r.MeanExplorations, r.MeanFinalDFO*100, r.P90FinalDFO*100, r.ConvergedFrac*100)
	}
	ap := byName["autopn"]

	// Headline accuracy: AutoPN converges to ~1% from optimum on average
	// (paper: <1%); allow a small margin for the reduced repetition count.
	if ap.MeanFinalDFO > 0.05 {
		t.Errorf("autopn mean final DFO = %.1f%%, want <= 5%%", ap.MeanFinalDFO*100)
	}

	// AutoPN must beat every baseline on final accuracy.
	for _, name := range []string{"random", "grid", "hill-climbing", "simulated-annealing", "genetic"} {
		b := byName[name]
		if ap.MeanFinalDFO >= b.MeanFinalDFO {
			t.Errorf("autopn final DFO %.2f%% not better than %s's %.2f%%",
				ap.MeanFinalDFO*100, name, b.MeanFinalDFO*100)
		}
	}

	// Convergence speed: AutoPN explores a small fraction of the space;
	// the paper reports ~3x fewer explorations than GA.
	ga := byName["genetic"]
	if ap.MeanExplorations*1.5 >= ga.MeanExplorations {
		t.Errorf("autopn explorations %.1f not clearly below GA's %.1f",
			ap.MeanExplorations, ga.MeanExplorations)
	}

	// The hill-climbing refinement must help: autopn (with HC) at least as
	// accurate as autopn-noHC.
	noHC := byName["autopn-noHC"]
	if ap.MeanFinalDFO > noHC.MeanFinalDFO+1e-9 {
		t.Errorf("hill-climb refinement hurt accuracy: %.2f%% vs %.2f%% without",
			ap.MeanFinalDFO*100, noHC.MeanFinalDFO*100)
	}
}

func TestFig5CurvesMonotoneStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := DefaultFig5Config()
	cfg.Reps = 2
	cfg.Workloads = []*surface.Workload{surface.TPCC("med"), surface.Array("90")}
	for _, r := range Fig5(cfg) {
		if len(r.MeanDFO) != cfg.MaxExplorations {
			t.Fatalf("%s: curve length %d, want %d", r.Name, len(r.MeanDFO), cfg.MaxExplorations)
		}
		for k, v := range r.MeanDFO {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("%s: DFO[%d] = %v out of [0,1]", r.Name, k, v)
			}
		}
		// The curve must end no worse than it started (optimizers track a
		// best-so-far; small local increases are possible because "best" is
		// judged on noisy samples while DFO uses true means).
		if last, first := r.MeanDFO[len(r.MeanDFO)-1], r.MeanDFO[0]; last > first+1e-9 {
			t.Fatalf("%s: mean DFO ended at %v, worse than initial %v", r.Name, last, first)
		}
	}
}

func TestFig5BreakdownCoversAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := DefaultFig5Config()
	cfg.Reps = 2
	cfg.Factories = []Factory{AutoPNFactory("autopn", core.Options{})}
	bd := Fig5Breakdown(cfg)
	if len(bd) != 1 || len(bd[0].PerWorkload) != len(cfg.Workloads) {
		t.Fatalf("breakdown shape: %d strategies, %d workloads", len(bd), len(bd[0].PerWorkload))
	}
	worstName, worst := "", -1.0
	for name, dfo := range bd[0].PerWorkload {
		t.Logf("autopn %-14s meanDFO=%6.2f%%", name, dfo*100)
		if dfo < -1e-9 || dfo > 1 {
			t.Fatalf("%s: DFO %v out of range", name, dfo)
		}
		if dfo > worst {
			worst, worstName = dfo, name
		}
	}
	t.Logf("hardest workload: %s (%.1f%%)", worstName, worst*100)
}
