package experiment

import (
	"testing"

	"autopn/internal/stats"
)

func TestEnginesAgreeOnTuningQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	results := Engines(4, 0xE461)
	var rAll, tAll []float64
	for _, r := range results {
		t.Logf("%-14s renewal DFO=%6.2f%% (expl %.0f)  thread DFO=%6.2f%% (expl %.0f, abort rate %.0f%%)",
			r.Workload, r.RenewalDFO*100, r.RenewalExpl, r.ThreadDFO*100, r.ThreadExpl, r.ThreadAborts*100)
		rAll = append(rAll, r.RenewalDFO)
		tAll = append(tAll, r.ThreadDFO)
	}
	rMean, tMean := stats.Mean(rAll), stats.Mean(tAll)
	// Both engines must let AutoPN reach good configurations. The DES
	// engine is allowed to be somewhat worse: its bursty high-abort commit
	// streams expose a real fragility of the paper's 1/T(1,1) gap timeout
	// (quiet retry periods at heavily contended configurations trigger
	// spurious window timeouts), documented in EXPERIMENTS.md.
	if rMean > 0.12 || tMean > 0.18 {
		t.Errorf("mean DFO: renewal %.1f%%, thread %.1f%%; tuning failed on an engine", rMean*100, tMean*100)
	}
	// ...and must not disagree wildly (simulation-artifact check).
	if diff := tMean - rMean; diff > 0.12 || diff < -0.12 {
		t.Errorf("engines disagree by %.1f%% mean DFO", diff*100)
	}
}
