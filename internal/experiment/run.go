// Package experiment reproduces every figure and table of the paper's
// experimental study (§VII). Each figure has a Fig* function returning a
// structured result that cmd/autopn-bench renders and bench_test.go
// regenerates; EXPERIMENTS.md records the measured outcomes next to the
// paper's.
package experiment

import (
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/trace"
)

// RunRecord is the outcome of driving one optimizer over one trace.
type RunRecord struct {
	// DFOByExploration[k] is the distance from optimum of the optimizer's
	// best-so-far configuration after k+1 distinct explorations (the
	// quantity plotted in Fig. 5/6; the true DFO uses trace means, while
	// the optimizer itself only ever saw noisy samples).
	DFOByExploration []float64
	// Explorations is the number of distinct configurations measured
	// before the optimizer declared convergence (or hit the cap).
	Explorations int
	// FinalCfg is the configuration the optimizer settled on.
	FinalCfg space.Config
	// FinalDFO is the true distance from optimum of FinalCfg.
	FinalDFO float64
	// Converged reports whether the optimizer stopped by itself.
	Converged bool
}

// RunOnTrace drives opt against the trace until convergence or until
// maxExplorations distinct configurations have been measured. Re-requests
// of already-measured configurations are served from cache (they are free,
// matching the paper's accounting which counts explored configurations).
// safetyCap bounds total Next/Observe rounds to guard against
// non-converging strategies.
func RunOnTrace(opt search.Optimizer, tr *trace.Trace, ev *trace.Evaluator, maxExplorations int) RunRecord {
	var rec RunRecord
	cache := make(map[space.Config]float64)
	safetyCap := 20 * maxExplorations
	if safetyCap <= 0 {
		safetyCap = 1 << 20
	}
	for round := 0; round < safetyCap; round++ {
		cfg, done := opt.Next()
		if done {
			rec.Converged = true
			break
		}
		kpi, known := cache[cfg]
		if !known {
			kpi = ev.Evaluate(cfg)
			cache[cfg] = kpi
		}
		opt.Observe(cfg, kpi)
		if !known {
			bestCfg, _ := opt.Best()
			rec.DFOByExploration = append(rec.DFOByExploration, tr.DFO(bestCfg))
			if maxExplorations > 0 && len(rec.DFOByExploration) >= maxExplorations {
				break
			}
		}
	}
	rec.Explorations = len(rec.DFOByExploration)
	rec.FinalCfg, _ = opt.Best()
	rec.FinalDFO = tr.DFO(rec.FinalCfg)
	return rec
}

// PadCurves extends every curve to length n by repeating its final value
// (an optimizer that has converged keeps its answer), returning the padded
// matrix. Empty curves pad with worst-case DFO 1.
func PadCurves(curves [][]float64, n int) [][]float64 {
	out := make([][]float64, len(curves))
	for i, c := range curves {
		p := make([]float64, n)
		for k := 0; k < n; k++ {
			switch {
			case k < len(c):
				p[k] = c[k]
			case len(c) > 0:
				p[k] = c[len(c)-1]
			default:
				p[k] = 1
			}
		}
		out[i] = p
	}
	return out
}

// MeanCurve returns the per-index mean of equally long curves.
func MeanCurve(curves [][]float64) []float64 {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		sum := 0.0
		for _, c := range curves {
			sum += c[k]
		}
		out[k] = sum / float64(len(curves))
	}
	return out
}

// PercentileCurve returns the per-index p-th percentile of equally long
// curves.
func PercentileCurve(curves [][]float64, p float64) []float64 {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	out := make([]float64, n)
	col := make([]float64, len(curves))
	for k := 0; k < n; k++ {
		for i, c := range curves {
			col[i] = c[k]
		}
		out[k] = stats.Percentile(col, p)
	}
	return out
}
