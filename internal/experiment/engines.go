package experiment

import (
	"autopn/internal/core"
	"autopn/internal/simcore"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// EngineResult is the outcome of the cross-engine robustness check: the
// same live tuning sessions executed on the aggregate renewal engine (Sim,
// used by the figure experiments) and on the per-thread discrete-event
// engine (ThreadSim, which additionally models abort dynamics and
// reconfiguration drain). If AutoPN's accuracy depended on artifacts of
// one simulation style, the two columns would diverge.
type EngineResult struct {
	Workload     string
	RenewalDFO   float64 // mean final DFO on the renewal engine
	ThreadDFO    float64 // mean final DFO on the per-thread DES engine
	ThreadAborts float64 // mean abort rate observed during DES sessions
	RenewalExpl  float64
	ThreadExpl   float64
}

// Engines runs AutoPN live tuning sessions on both simulator engines.
func Engines(reps int, seed uint64) []EngineResult {
	workloads := []*surface.Workload{
		surface.TPCC("med"), surface.TPCC("high"),
		surface.Vacation("med"), surface.Array("50"), surface.Array("90"),
	}
	master := stats.NewRNG(seed)
	var out []EngineResult
	for _, w := range workloads {
		sp := space.New(w.Cores)
		_, optTput := w.Optimum(sp)
		res := EngineResult{Workload: w.Name}
		var rDFO, tDFO, rExpl, tExpl, aborts []float64
		for rep := 0; rep < reps; rep++ {
			rng := master.Split()

			sim := simcore.New(w, rng.Uint64(), simcore.Options{})
			opt := core.New(sp, rng.Split(), core.Options{})
			o := simcore.Tune(sim, opt, simcore.AdaptiveCV{}, 0)
			best, _ := opt.Best()
			rDFO = append(rDFO, 1-w.Throughput(best)/optTput)
			rExpl = append(rExpl, float64(o.Explorations))

			ts := simcore.NewThreadSim(w, rng.Uint64(), space.Config{T: 1, C: 1})
			opt2 := core.New(sp, rng.Split(), core.Options{})
			o2 := simcore.Tune(ts, opt2, simcore.AdaptiveCV{}, 0)
			best2, _ := opt2.Best()
			tDFO = append(tDFO, 1-w.Throughput(best2)/optTput)
			tExpl = append(tExpl, float64(o2.Explorations))
			aborts = append(aborts, ts.AbortRate())
		}
		res.RenewalDFO = stats.Mean(rDFO)
		res.ThreadDFO = stats.Mean(tDFO)
		res.RenewalExpl = stats.Mean(rExpl)
		res.ThreadExpl = stats.Mean(tExpl)
		res.ThreadAborts = stats.Mean(aborts)
		out = append(out, res)
	}
	return out
}
