package experiment

import (
	"testing"
	"time"

	"autopn/internal/surface"
)

func smallFig6() Fig6Config {
	cfg := DefaultFig6Config()
	cfg.Reps = 3
	cfg.Workloads = []*surface.Workload{
		surface.TPCC("med"), surface.Vacation("med"),
		surface.Array("0.01"), surface.Array("90"),
	}
	return cfg
}

func TestFig6SamplingBiased9Best(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	results := Fig6Sampling(smallFig6())
	byName := map[string]VariantResult{}
	for _, r := range results {
		byName[r.Name] = r
		t.Logf("%-12s meanDFO=%6.2f%% p90=%6.2f%% expl=%.1f",
			r.Name, r.MeanFinalDFO*100, r.P90FinalDFO*100, r.MeanExplorations)
	}
	// The paper's two trends: biased-9 clearly beats biased-7 (the "major
	// boost from 7 to 9"), and biased-9 beats uniform-9 on average.
	b9, b7, u9 := byName["biased-9"], byName["biased-7"], byName["uniform-9"]
	if b9.MeanFinalDFO >= b7.MeanFinalDFO {
		t.Errorf("biased-9 (%.1f%%) not better than biased-7 (%.1f%%)",
			b9.MeanFinalDFO*100, b7.MeanFinalDFO*100)
	}
	if b9.MeanFinalDFO >= u9.MeanFinalDFO {
		t.Errorf("biased-9 (%.1f%%) not better than uniform-9 (%.1f%%)",
			b9.MeanFinalDFO*100, u9.MeanFinalDFO*100)
	}
}

func TestFig6StopEIBeatsStubborn(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	results := Fig6Stop(smallFig6())
	byName := map[string]VariantResult{}
	for _, r := range results {
		byName[r.Name] = r
		t.Logf("%-18s meanDFO=%6.2f%% p90=%6.2f%% expl=%.1f",
			r.Name, r.MeanFinalDFO*100, r.P90FinalDFO*100, r.MeanExplorations)
	}
	// The paper's counterintuitive finding: stubbornly exploring until the
	// optimum is found costs far more explorations than stopping at
	// "good enough" via EI.
	ei10, stubborn := byName["EI<10%"], byName["stubborn"]
	if ei10.MeanExplorations >= stubborn.MeanExplorations {
		t.Errorf("EI<10%% explorations (%.1f) not below stubborn's (%.1f)",
			ei10.MeanExplorations, stubborn.MeanExplorations)
	}
	// EI-1% must not stop before EI-10%.
	ei1 := byName["EI<1%"]
	if ei1.MeanExplorations < ei10.MeanExplorations-1e-9 {
		t.Errorf("EI<1%% stopped earlier (%.1f) than EI<10%% (%.1f)",
			ei1.MeanExplorations, ei10.MeanExplorations)
	}
}

func TestStaticBaselineMotivatesTuning(t *testing.T) {
	res := StaticBaseline(surface.AllWorkloads())
	t.Logf("best static %v meanDFO=%.1f%% p90Slowdown=%.2fx worst=%.2fx (%s)",
		res.BestStatic, res.MeanDFO*100, res.P90Slowdown, res.WorstSlowdown, res.WorstWorkload)
	// Paper: mean DFO 21.8%, p90 2.56x, worst 3.22x. Shapes to hold: a
	// double-digit mean DFO and a worst case of at least 2x.
	if res.MeanDFO < 0.08 {
		t.Errorf("mean DFO of best static config = %.1f%%; landscape too easy", res.MeanDFO*100)
	}
	if res.WorstSlowdown < 2 {
		t.Errorf("worst slowdown %.2fx < 2x; static tuning would be acceptable", res.WorstSlowdown)
	}
	if res.BestStatic.C < 1 || res.BestStatic.T < 1 {
		t.Errorf("invalid best static config %v", res.BestStatic)
	}
}

func TestFig7aWindowDurationTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points := Fig7a(3, 0xF17A)
	perW := map[string][]Fig7aPoint{}
	for _, p := range points {
		perW[p.Workload] = append(perW[p.Workload], p)
		t.Logf("%-12s window=%-8v meanDFO=%6.2f%%", p.Workload, p.Window, p.MeanDFO*100)
	}
	// The slow workload must need longer windows than the fast one: at a
	// short window (<=100ms) the slow workload's accuracy must be clearly
	// worse than the fast workload's.
	shortSlow, shortFast := avgDFOAt(perW["array-slow"], 100*time.Millisecond),
		avgDFOAt(perW["array-fast"], 100*time.Millisecond)
	if shortSlow <= shortFast {
		t.Errorf("short windows: slow workload DFO %.1f%% not worse than fast %.1f%%",
			shortSlow*100, shortFast*100)
	}
	// Long windows must fix the slow workload.
	longSlow := avgDFOAt(perW["array-slow"], 40*time.Second)
	if longSlow >= shortSlow {
		t.Errorf("long windows did not improve slow workload: %.1f%% vs %.1f%%",
			longSlow*100, shortSlow*100)
	}
}

func avgDFOAt(points []Fig7aPoint, upTo time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range points {
		if p.Window <= upTo {
			sum += p.MeanDFO
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestFig7bShortRunsPunishLongWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points := Fig7b(30*time.Second, 3, 0xF17B)
	var adaptive, best20ms, worst40s float64
	for _, p := range points {
		label := p.Window.String()
		if p.Window == 0 {
			label = "adaptive"
			adaptive = p.MeanThroughputFrac
		}
		if p.Window == 20*time.Millisecond {
			best20ms = p.MeanThroughputFrac
		}
		if p.Window == 40*time.Second {
			worst40s = p.MeanThroughputFrac
		}
		t.Logf("window=%-10s avg throughput = %5.1f%% of optimal", label, p.MeanThroughputFrac*100)
	}
	// Overly conservative windows cripple short runs (the whole run is
	// spent measuring, mostly in bad configurations).
	if worst40s >= best20ms {
		t.Errorf("40s windows (%.1f%%) should underperform 20ms windows (%.1f%%) on a 30s run",
			worst40s*100, best20ms*100)
	}
	// The adaptive policy must be competitive with the best static choice.
	if adaptive < 0.5*best20ms {
		t.Errorf("adaptive policy (%.1f%%) far below best static (%.1f%%)",
			adaptive*100, best20ms*100)
	}
}

func TestFig7cAdaptiveMostConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points := Fig7c(4, 0xF17C)
	sum := map[string]float64{}
	count := map[string]int{}
	for _, p := range points {
		t.Logf("%-10s %-12s meanDFO=%6.2f%% norm=%+6.2f%%", p.Policy, p.Workload, p.MeanDFO*100, p.NormDFO*100)
		sum[p.Policy] += p.NormDFO
		count[p.Policy]++
	}
	// Consistency (the paper's claim: "overall, the one to deliver the most
	// consistent results"): the adaptive policy's mean excess DFO across
	// workloads must be competitive with every policy (within a few percent
	// of the best; the WPNOC variants embed the paper's own adaptive
	// timeout and are legitimately close), while the WNOC baseline — no
	// adaptive timeout — must be catastrophically worse, which is the
	// figure's central point.
	mean := func(p string) float64 { return sum[p] / float64(count[p]) }
	for policy := range sum {
		if policy == "adaptive" {
			continue
		}
		if mean("adaptive") > mean(policy)+0.04 {
			t.Errorf("adaptive mean excess %.1f%% far above %s's %.1f%%",
				mean("adaptive")*100, policy, mean(policy)*100)
		}
	}
	if mean("WNOC30") < 2*mean("adaptive") {
		t.Errorf("WNOC30 mean excess %.1f%% not clearly worse than adaptive %.1f%%",
			mean("WNOC30")*100, mean("adaptive")*100)
	}
}
