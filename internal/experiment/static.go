package experiment

import (
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// StaticResult quantifies how far the best static ("one size fits all")
// configuration is from each workload's optimum — the motivation statistic
// of §VII-A (the paper reports: best-on-average static config (24,2), mean
// DFO 21.8%, 90th percentile 2.56x worse than optimum, worst case 3.22x on
// the high-contention Array workload).
type StaticResult struct {
	// BestStatic is the configuration minimizing the mean distance from
	// optimum across all workloads.
	BestStatic space.Config
	// MeanDFO is its mean distance from optimum across workloads.
	MeanDFO float64
	// PerWorkload is the slowdown factor opt/static per workload (1 =
	// optimal; the paper quotes these as "x times worse than optimum").
	PerWorkload map[string]float64
	// P90Slowdown is the 90th percentile of the slowdown factors.
	P90Slowdown float64
	// WorstSlowdown and WorstWorkload identify the workload where the
	// static choice hurts most.
	WorstSlowdown float64
	WorstWorkload string
}

// StaticBaseline finds the best-on-average static configuration across the
// workloads and quantifies its distance from each workload's optimum, using
// the model's mean surfaces.
func StaticBaseline(workloads []*surface.Workload) StaticResult {
	sp := space.New(workloads[0].Cores)
	opts := make([]float64, len(workloads))
	for i, w := range workloads {
		_, best := w.Optimum(sp)
		opts[i] = best
	}
	var bestCfg space.Config
	bestMean := -1.0
	for _, cfg := range sp.Configs() {
		sum := 0.0
		for i, w := range workloads {
			sum += 1 - w.Throughput(cfg)/opts[i]
		}
		mean := sum / float64(len(workloads))
		if bestMean < 0 || mean < bestMean {
			bestMean = mean
			bestCfg = cfg
		}
	}
	res := StaticResult{
		BestStatic:  bestCfg,
		MeanDFO:     bestMean,
		PerWorkload: make(map[string]float64, len(workloads)),
	}
	slowdowns := make([]float64, 0, len(workloads))
	for i, w := range workloads {
		tput := w.Throughput(bestCfg)
		slow := opts[i] / tput
		if tput <= 0 {
			slow = 1e9
		}
		res.PerWorkload[w.Name] = slow
		slowdowns = append(slowdowns, slow)
		if slow > res.WorstSlowdown {
			res.WorstSlowdown = slow
			res.WorstWorkload = w.Name
		}
	}
	res.P90Slowdown = stats.Percentile(slowdowns, 90)
	return res
}
