package experiment

import (
	"fmt"

	"autopn/internal/core"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
	"autopn/internal/trace"
)

// Fig6Config parameterizes the initial-sampling and stop-condition studies
// of §VII-C.
type Fig6Config struct {
	Workloads []*surface.Workload
	Reps      int
	TraceRuns int
	Seed      uint64
	// MaxExplorations caps each run (the stubborn condition in particular
	// may otherwise wander long).
	MaxExplorations int
}

// DefaultFig6Config mirrors the paper's setup.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Workloads:       surface.AllWorkloads(),
		Reps:            10,
		TraceRuns:       10,
		Seed:            0xF16_6,
		MaxExplorations: 120,
	}
}

// VariantResult is the aggregate outcome of one AutoPN variant.
type VariantResult struct {
	Name             string
	MeanFinalDFO     float64
	P90FinalDFO      float64
	MeanExplorations float64
}

// Fig6Sampling compares the biased initial sampling policy against uniform
// random sampling at 3, 5, 7 and 9 initial configurations (Fig. 6 left).
// The hill-climbing phase is disabled to isolate the SMBO phase, exactly as
// in the paper.
func Fig6Sampling(cfg Fig6Config) []VariantResult {
	var variants []struct {
		name string
		opts core.Options
	}
	for _, k := range []int{3, 5, 7, 9} {
		variants = append(variants,
			struct {
				name string
				opts core.Options
			}{fmt.Sprintf("uniform-%d", k), core.Options{
				InitialSamples: k, UniformInitial: true, DisableHillClimb: true,
			}},
			struct {
				name string
				opts core.Options
			}{fmt.Sprintf("biased-%d", k), core.Options{
				InitialSamples: k, DisableHillClimb: true,
			}},
		)
	}
	out := make([]VariantResult, 0, len(variants))
	for _, v := range variants {
		opts := v.opts
		out = append(out, runVariant(cfg, v.name, func(ctx FactoryContext) *core.AutoPN {
			o := opts
			o.Stop = core.NewEIStop(0.10)
			return core.New(ctx.Space, ctx.RNG, o)
		}))
	}
	return out
}

// Fig6Stop compares SMBO stopping criteria (Fig. 6 right): EI thresholds of
// 1% and 10%, the no-improvement heuristic (K=5), hybrid combinations, and
// the idealized "stubborn" condition that only stops at the true optimum
// (oracle provided by the trace). Hill climbing is disabled as in the
// paper.
func Fig6Stop(cfg Fig6Config) []VariantResult {
	type variant struct {
		name string
		stop func(tr *trace.Trace) core.StopCondition
	}
	variants := []variant{
		{"EI<1%", func(*trace.Trace) core.StopCondition { return core.NewEIStop(0.01) }},
		{"EI<10%", func(*trace.Trace) core.StopCondition { return core.NewEIStop(0.10) }},
		{"no-improvement(5)", func(*trace.Trace) core.StopCondition {
			return core.NoImproveStop{K: 5, RelDelta: 0.10}
		}},
		{"hybrid-and", func(*trace.Trace) core.StopCondition {
			return core.AndStop{core.NewEIStop(0.10), core.NoImproveStop{K: 5, RelDelta: 0.10}}
		}},
		{"hybrid-or", func(*trace.Trace) core.StopCondition {
			return core.OrStop{core.NewEIStop(0.10), core.NoImproveStop{K: 5, RelDelta: 0.10}}
		}},
		{"stubborn", func(tr *trace.Trace) core.StopCondition {
			optCfg, _ := tr.Optimum()
			return core.StubbornStop{IsOptimal: func(c space.Config, _ float64) bool {
				return c == optCfg
			}}
		}},
	}
	out := make([]VariantResult, 0, len(variants))
	for _, v := range variants {
		mk := v.stop
		out = append(out, runVariant(cfg, v.name, func(ctx FactoryContext) *core.AutoPN {
			return core.New(ctx.Space, ctx.RNG, core.Options{
				DisableHillClimb: true,
				Stop:             mk(ctx.Trace),
			})
		}))
	}
	return out
}

// runVariant evaluates one AutoPN variant across all workloads and reps.
func runVariant(cfg Fig6Config, name string, mk func(ctx FactoryContext) *core.AutoPN) VariantResult {
	master := stats.NewRNG(cfg.Seed)
	sp := space.New(cfg.Workloads[0].Cores)
	var finals, expls []float64
	for _, w := range cfg.Workloads {
		tr := trace.Collect(w, sp, cfg.TraceRuns, master.Split())
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := master.Split()
			opt := mk(FactoryContext{Space: sp, RNG: rng, Trace: tr})
			ev := trace.NewEvaluator(tr, rng.Split())
			rec := RunOnTrace(opt, tr, ev, cfg.MaxExplorations)
			finals = append(finals, rec.FinalDFO)
			expls = append(expls, float64(rec.Explorations))
		}
	}
	return VariantResult{
		Name:             name,
		MeanFinalDFO:     stats.Mean(finals),
		P90FinalDFO:      stats.Percentile(finals, 90),
		MeanExplorations: stats.Mean(expls),
	}
}
