package experiment

import (
	"testing"

	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
	"autopn/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	w := surface.TPCC("med")
	return trace.Collect(w, space.New(w.Cores), 5, stats.NewRNG(1))
}

// repeater is an optimizer that requests the same config forever — it
// exercises RunOnTrace's safety cap.
type repeater struct{ cfg space.Config }

func (r *repeater) Name() string                  { return "repeater" }
func (r *repeater) Next() (space.Config, bool)    { return r.cfg, false }
func (r *repeater) Observe(space.Config, float64) {}
func (r *repeater) Best() (space.Config, float64) { return r.cfg, 0 }

var _ search.Optimizer = (*repeater)(nil)

func TestRunOnTraceCachesRepeatedRequests(t *testing.T) {
	tr := smallTrace(t)
	ev := trace.NewEvaluator(tr, stats.NewRNG(2))
	rec := RunOnTrace(&repeater{cfg: space.Config{T: 4, C: 2}}, tr, ev, 50)
	// The repeater never converges and never explores a second config:
	// the safety cap must end the run with exactly one exploration and one
	// real evaluation.
	if rec.Explorations != 1 {
		t.Fatalf("Explorations = %d, want 1", rec.Explorations)
	}
	if ev.Evals != 1 {
		t.Fatalf("Evals = %d, want 1 (duplicates must hit the cache)", ev.Evals)
	}
	if rec.Converged {
		t.Fatal("repeater reported as converged")
	}
}

func TestRunOnTraceRespectsExplorationCap(t *testing.T) {
	tr := smallTrace(t)
	rng := stats.NewRNG(3)
	opt := search.NewRandom(tr.Space(), rng, 1<<30, 0) // explores forever
	rec := RunOnTrace(opt, tr, trace.NewEvaluator(tr, rng.Split()), 7)
	if rec.Explorations != 7 {
		t.Fatalf("Explorations = %d, want cap 7", rec.Explorations)
	}
	if len(rec.DFOByExploration) != 7 {
		t.Fatalf("curve length %d", len(rec.DFOByExploration))
	}
}

func TestPadCurves(t *testing.T) {
	padded := PadCurves([][]float64{{0.5, 0.2}, {}, {0.9}}, 4)
	want := [][]float64{{0.5, 0.2, 0.2, 0.2}, {1, 1, 1, 1}, {0.9, 0.9, 0.9, 0.9}}
	for i := range want {
		for k := range want[i] {
			if padded[i][k] != want[i][k] {
				t.Fatalf("padded[%d][%d] = %v, want %v", i, k, padded[i][k], want[i][k])
			}
		}
	}
}

func TestMeanAndPercentileCurves(t *testing.T) {
	curves := [][]float64{{0, 1}, {1, 3}}
	mean := MeanCurve(curves)
	if mean[0] != 0.5 || mean[1] != 2 {
		t.Fatalf("mean = %v", mean)
	}
	p := PercentileCurve(curves, 100)
	if p[0] != 1 || p[1] != 3 {
		t.Fatalf("p100 = %v", p)
	}
	if MeanCurve(nil) != nil || PercentileCurve(nil, 50) != nil {
		t.Fatal("empty input should return nil")
	}
}
