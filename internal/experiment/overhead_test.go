package experiment

import (
	"testing"
	"time"
)

func TestOverheadIsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing experiment")
	}
	res := Overhead(2, 400*time.Millisecond, 0x0E44)
	t.Logf("baseline=%.0f/s tuned=%.0f/s drop=%.2f%%",
		res.BaselineThroughput, res.TunedThroughput, res.DropFrac*100)
	if res.BaselineThroughput <= 0 || res.TunedThroughput <= 0 {
		t.Fatal("zero throughput")
	}
	// The paper reports <2% on a 48-core machine; on a single-core CI
	// container the monitor and model updates steal cycles from the same
	// core, so allow a wider bound while still requiring the overhead to
	// be modest.
	if res.DropFrac > 0.25 {
		t.Errorf("overhead %.1f%% too high", res.DropFrac*100)
	}
}
