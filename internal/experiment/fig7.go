package experiment

import (
	"time"

	"autopn/internal/core"
	"autopn/internal/simcore"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// Fig7aPoint is one (window duration, workload) cell of Fig. 7a: the final
// distance from optimum reached by a full AutoPN tuning session when the
// KPI monitor uses a statically configured window of that duration.
type Fig7aPoint struct {
	Workload string
	Window   time.Duration
	MeanDFO  float64
}

// Fig7aWindows is the paper's x-axis: static window durations spanning
// three orders of magnitude, 20ms to 40s.
func Fig7aWindows() []time.Duration {
	return []time.Duration{
		20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		300 * time.Millisecond, time.Second, 3 * time.Second,
		10 * time.Second, 40 * time.Second,
	}
}

// Fig7aWorkloads returns the two Array variants of the experiment: one
// generating high throughput rates and one generating low rates (the same
// workload slowed by 100x), which is what makes a single static window
// duration impossible to tune for both.
func Fig7aWorkloads() []*surface.Workload {
	fast := surface.Array("0.01")
	fast.Name = "array-fast"
	slow := surface.Array("0.01").Scaled("array-slow", 100)
	return []*surface.Workload{fast, slow}
}

// Fig7a runs live (simulated) tuning sessions with static measurement
// windows of varying duration and reports the final accuracy per workload.
func Fig7a(reps int, seed uint64) []Fig7aPoint {
	var out []Fig7aPoint
	master := stats.NewRNG(seed)
	for _, w := range Fig7aWorkloads() {
		sp := space.New(w.Cores)
		optCfg, optTput := w.Optimum(sp)
		_ = optCfg
		for _, win := range Fig7aWindows() {
			var dfos []float64
			for rep := 0; rep < reps; rep++ {
				rng := master.Split()
				sim := simcore.New(w, rng.Uint64(), simcore.Options{})
				opt := core.New(sp, rng, core.Options{})
				simcore.Tune(sim, opt, simcore.FixedTime{Window: win}, 0)
				best, _ := opt.Best()
				dfos = append(dfos, 1-w.Throughput(best)/optTput)
			}
			out = append(out, Fig7aPoint{Workload: w.Name, Window: win, MeanDFO: stats.Mean(dfos)})
		}
	}
	return out
}

// Fig7bPoint is one cell of Fig. 7b: the average throughput achieved over a
// short application run (tuning included) as a function of the monitoring
// window duration.
type Fig7bPoint struct {
	Window time.Duration
	// MeanThroughputFrac is the run's average throughput normalized by the
	// workload's optimal throughput (1 = the whole run at the optimum).
	MeanThroughputFrac float64
}

// Fig7b runs short applications (runLength total virtual time) under static
// monitoring windows of varying duration: the longer the windows, the more
// of the short run is wasted measuring suboptimal configurations.
// It also appends the adaptive policy as the final point (Window = 0).
func Fig7b(runLength time.Duration, reps int, seed uint64) []Fig7bPoint {
	w := surface.Array("0.01")
	sp := space.New(w.Cores)
	_, optTput := w.Optimum(sp)
	master := stats.NewRNG(seed)

	run := func(mk simcore.WindowMaker) float64 {
		var fracs []float64
		for rep := 0; rep < reps; rep++ {
			rng := master.Split()
			sim := simcore.New(w, rng.Uint64(), simcore.Options{})
			opt := core.New(sp, rng, core.Options{})
			simcore.Tune(sim, opt, mk, runLength)
			if remaining := runLength - sim.Now(); remaining > 0 {
				sim.RunFor(remaining)
			}
			avg := float64(sim.Commits()) / runLength.Seconds()
			fracs = append(fracs, avg/optTput)
		}
		return stats.Mean(fracs)
	}

	var out []Fig7bPoint
	for _, win := range Fig7aWindows() {
		out = append(out, Fig7bPoint{Window: win, MeanThroughputFrac: run(simcore.FixedTime{Window: win})})
	}
	out = append(out, Fig7bPoint{Window: 0, MeanThroughputFrac: run(simcore.AdaptiveCV{})})
	return out
}

// Fig7cPoint is one (policy, workload) cell of Fig. 7c: the final DFO of a
// tuning session under the given monitoring policy, normalized by the DFO
// obtained with the best statically tuned window for that workload.
type Fig7cPoint struct {
	Policy   string
	Workload string
	MeanDFO  float64
	// NormDFO is MeanDFO minus the best static policy's mean DFO on the
	// same workload (0 = as good as the optimally tuned static monitor;
	// the paper normalizes the same way).
	NormDFO float64
}

// Fig7cPolicies returns the monitoring policies compared in Fig. 7c.
func Fig7cPolicies() []simcore.WindowMaker {
	return []simcore.WindowMaker{
		simcore.AdaptiveCV{},
		simcore.FixedCommits{Commits: 10, AdaptiveTimeout: true},
		simcore.FixedCommits{Commits: 30, AdaptiveTimeout: true},
		simcore.FixedCommits{Commits: 30, AdaptiveTimeout: false, FallbackWindow: 120 * time.Second},
	}
}

// Fig7c compares the adaptive policy against the fixed-commit-count
// variants across heterogeneous workloads. Sessions are budgeted, as in the
// paper ("we vary the workloads and their duration"): each run lasts the
// time the sequential configuration would need for 600 commits, so a
// monitoring policy that stalls inside starving configurations (WNOC) or
// wastes long windows leaves the tuner unconverged and is charged for it in
// the final distance from optimum.
func Fig7c(reps int, seed uint64) []Fig7cPoint {
	workloads := []*surface.Workload{
		surface.TPCC("med"),
		surface.Vacation("high"),
		surface.Array("0.01"),
		surface.Array("0.01").Scaled("array-slow", 100),
		surface.Array("90"),
	}
	master := stats.NewRNG(seed)

	session := func(w *surface.Workload, mk simcore.WindowMaker, rng *stats.RNG) float64 {
		sp := space.New(w.Cores)
		_, optTput := w.Optimum(sp)
		t11 := w.Throughput(space.Config{T: 1, C: 1})
		budget := time.Duration(600 / t11 * float64(time.Second))
		sim := simcore.New(w, rng.Uint64(), simcore.Options{})
		opt := core.New(sp, rng, core.Options{})
		simcore.Tune(sim, opt, mk, budget)
		best, _ := opt.Best()
		return 1 - w.Throughput(best)/optTput
	}

	var out []Fig7cPoint
	for _, w := range workloads {
		// Best statically tuned window for this workload (oracle over the
		// Fig. 7a window set), the paper's normalization reference.
		bestStatic := 1.0
		for _, win := range Fig7aWindows() {
			var dfos []float64
			for rep := 0; rep < reps; rep++ {
				dfos = append(dfos, session(w, simcore.FixedTime{Window: win}, master.Split()))
			}
			if m := stats.Mean(dfos); m < bestStatic {
				bestStatic = m
			}
		}
		for _, pol := range Fig7cPolicies() {
			var dfos []float64
			for rep := 0; rep < reps; rep++ {
				dfos = append(dfos, session(w, pol, master.Split()))
			}
			m := stats.Mean(dfos)
			out = append(out, Fig7cPoint{
				Policy:   pol.Name(),
				Workload: w.Name,
				MeanDFO:  m,
				NormDFO:  m - bestStatic,
			})
		}
	}
	return out
}
