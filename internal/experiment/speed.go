package experiment

import (
	"time"

	"autopn/internal/core"
	"autopn/internal/simcore"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// SpeedResult aggregates one strategy's live (simulated) tuning sessions:
// the paper's headline comparison ("AutoPN reaches stability 9.8x faster
// than its counterparts and converges to solutions less than 1% away from
// optimum", §I/§VIII) measures wall-clock time to stability, which the
// virtual-time simulator reproduces exactly.
type SpeedResult struct {
	Name string
	// MeanTimeToStability is the mean virtual time until the optimizer
	// declared convergence (budget-capped sessions count the full budget).
	MeanTimeToStability time.Duration
	// MeanFinalDFO is the mean true distance from optimum of the final
	// configuration.
	MeanFinalDFO float64
	// ConvergedFrac is the fraction of sessions that converged within the
	// budget.
	ConvergedFrac float64
}

// SpeedConfig parameterizes the convergence-speed study.
type SpeedConfig struct {
	Workloads []*surface.Workload
	Factories []Factory
	Reps      int
	Seed      uint64
	// Budget caps each session's virtual time (default 600s).
	Budget time.Duration
}

// DefaultSpeedConfig compares AutoPN against all five baselines on the ten
// workloads.
func DefaultSpeedConfig() SpeedConfig {
	factories := BaselineFactories()
	factories = append(factories, AutoPNFactory("autopn", core.Options{}))
	return SpeedConfig{
		Workloads: surface.AllWorkloads(),
		Factories: factories,
		Reps:      5,
		Seed:      0x5BEED,
		Budget:    600 * time.Second,
	}
}

// Speed runs full live tuning sessions (adaptive monitoring windows, the
// production configuration) for every strategy and reports time to
// stability and final accuracy.
func Speed(cfg SpeedConfig) []SpeedResult {
	master := stats.NewRNG(cfg.Seed)
	budget := cfg.Budget
	if budget <= 0 {
		budget = 600 * time.Second
	}
	out := make([]SpeedResult, 0, len(cfg.Factories))
	for _, f := range cfg.Factories {
		frng := master.Split()
		var times, dfos []float64
		converged := 0
		total := 0
		for _, w := range cfg.Workloads {
			sp := space.New(w.Cores)
			_, optTput := w.Optimum(sp)
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := frng.Split()
				sim := simcore.New(w, rng.Uint64(), simcore.Options{})
				opt := f.New(FactoryContext{Space: sp, RNG: rng})
				res := simcore.Tune(sim, opt, simcore.AdaptiveCV{}, budget)
				total++
				if res.Converged {
					converged++
					times = append(times, res.ConvergedAt.Seconds())
				} else {
					times = append(times, budget.Seconds())
				}
				best, _ := opt.Best()
				dfos = append(dfos, 1-w.Throughput(best)/optTput)
			}
		}
		out = append(out, SpeedResult{
			Name:                f.Name,
			MeanTimeToStability: time.Duration(stats.Mean(times) * float64(time.Second)),
			MeanFinalDFO:        stats.Mean(dfos),
			ConvergedFrac:       float64(converged) / float64(total),
		})
	}
	return out
}
