package experiment

import (
	"autopn/internal/core"
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
	"autopn/internal/trace"
)

// FactoryContext is what an optimizer factory may consult when
// instantiating a strategy for one run.
type FactoryContext struct {
	Space *space.Space
	RNG   *stats.RNG
	// Trace is the trace being replayed (nil in live settings); the
	// idealized "stubborn" stop condition uses it as its oracle.
	Trace *trace.Trace
}

// Factory creates one optimizer instance per run.
type Factory struct {
	Name string
	New  func(ctx FactoryContext) search.Optimizer
}

// BaselineFactories returns the paper's five baselines (§VII-A) with the
// stopping rules used for the Fig. 5 comparison.
func BaselineFactories() []Factory {
	return []Factory{
		{Name: "random", New: func(ctx FactoryContext) search.Optimizer {
			return search.NewRandom(ctx.Space, ctx.RNG, 5, 0.10)
		}},
		{Name: "grid", New: func(ctx FactoryContext) search.Optimizer {
			return search.NewGrid(ctx.Space, 5, 0.10)
		}},
		{Name: "hill-climbing", New: func(ctx FactoryContext) search.Optimizer {
			return search.NewHillClimb(ctx.Space, ctx.RNG)
		}},
		{Name: "simulated-annealing", New: func(ctx FactoryContext) search.Optimizer {
			return search.NewAnnealing(ctx.Space, ctx.RNG)
		}},
		{Name: "genetic", New: func(ctx FactoryContext) search.Optimizer {
			return search.NewGenetic(ctx.Space, ctx.RNG)
		}},
	}
}

// AutoPNFactory returns a factory for AutoPN with the given options.
func AutoPNFactory(name string, opts core.Options) Factory {
	return Factory{Name: name, New: func(ctx FactoryContext) search.Optimizer {
		return core.New(ctx.Space, ctx.RNG, opts)
	}}
}

// Fig5Config parameterizes the optimizer comparison.
type Fig5Config struct {
	Workloads       []*surface.Workload
	Factories       []Factory
	Reps            int    // repetitions per workload (paper: 10)
	TraceRuns       int    // samples per configuration in the traces (paper: 10)
	Seed            uint64 // master seed
	MaxExplorations int    // cap per run (paper's x-axis extent)
}

// DefaultFig5Config mirrors the paper: all 10 workloads, 10 repetitions,
// traces with 10 runs per configuration, and the five baselines plus
// AutoPN and AutoPN-without-hill-climbing.
func DefaultFig5Config() Fig5Config {
	factories := BaselineFactories()
	factories = append(factories,
		AutoPNFactory("autopn-noHC", core.Options{DisableHillClimb: true}),
		AutoPNFactory("autopn", core.Options{}),
	)
	return Fig5Config{
		Workloads:       surface.AllWorkloads(),
		Factories:       factories,
		Reps:            10,
		TraceRuns:       10,
		Seed:            0xF16_5,
		MaxExplorations: 120,
	}
}

// StrategyResult aggregates one strategy's runs across all workloads and
// repetitions.
type StrategyResult struct {
	Name string
	// MeanDFO[k] and P90DFO[k] are the mean and 90th-percentile distance
	// from optimum after k+1 explorations (Fig. 5 left/right).
	MeanDFO []float64
	P90DFO  []float64
	// MeanExplorations is the average number of explorations at which the
	// strategy stopped (its convergence speed).
	MeanExplorations float64
	// MeanFinalDFO and P90FinalDFO summarize final accuracy.
	MeanFinalDFO float64
	P90FinalDFO  float64
	// ConvergedFrac is the fraction of runs that stopped on their own
	// within the exploration cap.
	ConvergedFrac float64
}

// WorkloadBreakdown is one strategy's per-workload mean final DFO — the
// diagnostic view behind Fig. 5's aggregate curves.
type WorkloadBreakdown struct {
	Strategy string
	// PerWorkload maps workload name to mean final DFO across repetitions.
	PerWorkload map[string]float64
}

// Fig5Breakdown runs the same protocol as Fig5 but reports per-workload
// accuracy, which is how regressions localized to one surface family are
// diagnosed.
func Fig5Breakdown(cfg Fig5Config) []WorkloadBreakdown {
	master := stats.NewRNG(cfg.Seed)
	traces := make([]*trace.Trace, len(cfg.Workloads))
	sp := space.New(cfg.Workloads[0].Cores)
	for i, w := range cfg.Workloads {
		traces[i] = trace.Collect(w, sp, cfg.TraceRuns, master.Split())
	}
	out := make([]WorkloadBreakdown, 0, len(cfg.Factories))
	for _, f := range cfg.Factories {
		frng := master.Split()
		wb := WorkloadBreakdown{Strategy: f.Name, PerWorkload: map[string]float64{}}
		for ti, tr := range traces {
			sum := 0.0
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := frng.Split()
				opt := f.New(FactoryContext{Space: sp, RNG: rng, Trace: tr})
				rec := RunOnTrace(opt, tr, trace.NewEvaluator(tr, rng.Split()), cfg.MaxExplorations)
				sum += rec.FinalDFO
			}
			wb.PerWorkload[cfg.Workloads[ti].Name] = sum / float64(cfg.Reps)
		}
		out = append(out, wb)
	}
	return out
}

// Fig5 runs the optimizer comparison of §VII-B: every strategy explores
// every workload's trace Reps times, and accuracy (distance from optimum)
// is aggregated per exploration count.
func Fig5(cfg Fig5Config) []StrategyResult {
	master := stats.NewRNG(cfg.Seed)
	// Traces are shared by all strategies (same inputs for everyone).
	traces := make([]*trace.Trace, len(cfg.Workloads))
	sp := space.New(cfg.Workloads[0].Cores)
	for i, w := range cfg.Workloads {
		traces[i] = trace.Collect(w, sp, cfg.TraceRuns, master.Split())
	}

	results := make([]StrategyResult, 0, len(cfg.Factories))
	for _, f := range cfg.Factories {
		frng := master.Split()
		var curves [][]float64
		var finals, expls []float64
		converged := 0
		for ti, tr := range traces {
			_ = ti
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := frng.Split()
				opt := f.New(FactoryContext{Space: sp, RNG: rng, Trace: tr})
				ev := trace.NewEvaluator(tr, rng.Split())
				rec := RunOnTrace(opt, tr, ev, cfg.MaxExplorations)
				curves = append(curves, rec.DFOByExploration)
				finals = append(finals, rec.FinalDFO)
				expls = append(expls, float64(rec.Explorations))
				if rec.Converged {
					converged++
				}
			}
		}
		padded := PadCurves(curves, cfg.MaxExplorations)
		results = append(results, StrategyResult{
			Name:             f.Name,
			MeanDFO:          MeanCurve(padded),
			P90DFO:           PercentileCurve(padded, 90),
			MeanExplorations: stats.Mean(expls),
			MeanFinalDFO:     stats.Mean(finals),
			P90FinalDFO:      stats.Percentile(finals, 90),
			ConvergedFrac:    float64(converged) / float64(len(curves)),
		})
	}
	return results
}
