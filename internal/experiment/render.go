package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderFig1 writes the throughput surface as a t x c table plus summary.
func RenderFig1(w io.Writer, res SurfaceResult) {
	fmt.Fprintf(w, "# Fig.1 — throughput surface, workload %s\n", res.Workload)
	fmt.Fprintf(w, "# best %v = %.1f commits/s; worst %v = %.1f; best/seq(1,1) = %.1fx; best/worst = %.1fx\n",
		res.Best.Cfg, res.Best.Throughput, res.Worst.Cfg, res.Worst.Throughput,
		res.Best.Throughput/res.Seq, res.Best.Throughput/res.Worst.Throughput)
	// Collect axes.
	ts := map[int]bool{}
	cs := map[int]bool{}
	cell := map[[2]int]float64{}
	for _, c := range res.Cells {
		ts[c.Cfg.T] = true
		cs[c.Cfg.C] = true
		cell[[2]int{c.Cfg.T, c.Cfg.C}] = c.Throughput
	}
	tAxis := sortedKeys(ts)
	cAxis := sortedKeys(cs)
	fmt.Fprintf(w, "t\\c")
	for _, c := range cAxis {
		fmt.Fprintf(w, "\t%d", c)
	}
	fmt.Fprintln(w)
	for _, t := range tAxis {
		fmt.Fprintf(w, "%d", t)
		for _, c := range cAxis {
			if v, ok := cell[[2]int{t, c}]; ok {
				fmt.Fprintf(w, "\t%.0f", v)
			} else {
				fmt.Fprintf(w, "\t-")
			}
		}
		fmt.Fprintln(w)
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// RenderFig5 writes the optimizer-comparison curves: mean and 90th
// percentile DFO at selected exploration counts, plus the convergence
// summary.
func RenderFig5(w io.Writer, results []StrategyResult) {
	fmt.Fprintln(w, "# Fig.5 — distance from optimum (%) vs explored configurations")
	marks := []int{5, 9, 12, 15, 20, 30, 45, 60, 90, 120}
	fmt.Fprintf(w, "%-20s", "strategy")
	for _, m := range marks {
		fmt.Fprintf(w, "\t@%d", m)
	}
	fmt.Fprintf(w, "\t| stop@\tfinal\tp90\n")
	for _, r := range results {
		renderCurveRow(w, r.Name+" (mean)", r.MeanDFO, marks)
		fmt.Fprintf(w, "\t| %.1f\t%.1f%%\t%.1f%%\n", r.MeanExplorations, r.MeanFinalDFO*100, r.P90FinalDFO*100)
	}
	fmt.Fprintln(w, "# 90th percentile curves")
	for _, r := range results {
		renderCurveRow(w, r.Name+" (p90)", r.P90DFO, marks)
		fmt.Fprintln(w)
	}
}

func renderCurveRow(w io.Writer, name string, curve []float64, marks []int) {
	fmt.Fprintf(w, "%-20s", name)
	for _, m := range marks {
		i := m - 1
		if i >= len(curve) {
			i = len(curve) - 1
		}
		if i < 0 {
			fmt.Fprintf(w, "\t-")
			continue
		}
		fmt.Fprintf(w, "\t%.1f", curve[i]*100)
	}
}

// RenderVariants writes a Fig.6-style variant table.
func RenderVariants(w io.Writer, title string, results []VariantResult) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-20s\t%s\t%s\t%s\n", "variant", "meanDFO", "p90DFO", "explorations")
	for _, r := range results {
		fmt.Fprintf(w, "%-20s\t%.2f%%\t%.2f%%\t%.1f\n",
			r.Name, r.MeanFinalDFO*100, r.P90FinalDFO*100, r.MeanExplorations)
	}
}

// RenderStatic writes the §VII-A static-configuration table.
func RenderStatic(w io.Writer, res StaticResult) {
	fmt.Fprintln(w, "# §VII-A — best static configuration vs per-workload optimum")
	fmt.Fprintf(w, "best static config: %v (mean DFO %.1f%%, p90 slowdown %.2fx, worst %.2fx on %s)\n",
		res.BestStatic, res.MeanDFO*100, res.P90Slowdown, res.WorstSlowdown, res.WorstWorkload)
	names := make([]string, 0, len(res.PerWorkload))
	for n := range res.PerWorkload {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-16s\t%.2fx slower than optimum\n", n, res.PerWorkload[n])
	}
}

// RenderFig7a writes the static-window accuracy table.
func RenderFig7a(w io.Writer, points []Fig7aPoint) {
	fmt.Fprintln(w, "# Fig.7a — final DFO (%) vs static monitoring-window duration")
	byWorkload := map[string][]Fig7aPoint{}
	var names []string
	for _, p := range points {
		if _, ok := byWorkload[p.Workload]; !ok {
			names = append(names, p.Workload)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	fmt.Fprintf(w, "%-12s", "window")
	for _, n := range names {
		fmt.Fprintf(w, "\t%s", n)
	}
	fmt.Fprintln(w)
	if len(names) == 0 {
		return
	}
	for i := range byWorkload[names[0]] {
		fmt.Fprintf(w, "%-12v", byWorkload[names[0]][i].Window)
		for _, n := range names {
			fmt.Fprintf(w, "\t%.1f", byWorkload[n][i].MeanDFO*100)
		}
		fmt.Fprintln(w)
	}
}

// RenderFig7b writes the short-run average-throughput table.
func RenderFig7b(w io.Writer, points []Fig7bPoint) {
	fmt.Fprintln(w, "# Fig.7b — short-run average throughput (% of optimal) vs window duration")
	for _, p := range points {
		label := p.Window.String()
		if p.Window == 0 {
			label = "adaptive"
		}
		bar := strings.Repeat("#", int(p.MeanThroughputFrac*40+0.5))
		fmt.Fprintf(w, "%-12s\t%5.1f%%\t%s\n", label, p.MeanThroughputFrac*100, bar)
	}
}

// RenderFig7c writes the monitoring-policy comparison table.
func RenderFig7c(w io.Writer, points []Fig7cPoint) {
	fmt.Fprintln(w, "# Fig.7c — final DFO (%) per monitoring policy (norm = excess over best static window)")
	fmt.Fprintf(w, "%-10s\t%-14s\t%s\t%s\n", "policy", "workload", "meanDFO", "norm")
	for _, p := range points {
		fmt.Fprintf(w, "%-10s\t%-14s\t%.2f%%\t%+.2f%%\n", p.Policy, p.Workload, p.MeanDFO*100, p.NormDFO*100)
	}
}

// RenderOverhead writes the §VII-E overhead summary.
func RenderOverhead(w io.Writer, res OverheadResult, dur time.Duration) {
	fmt.Fprintln(w, "# §VII-E — self-tuning overhead (actuator inhibited)")
	fmt.Fprintf(w, "baseline: %.0f commits/s\nwith monitoring+modeling: %.0f commits/s\ndrop: %.2f%% (paper: <2%% on 48 cores) over %v runs\n",
		res.BaselineThroughput, res.TunedThroughput, res.DropFrac*100, dur)
}
