package experiment

import (
	"autopn/internal/space"
	"autopn/internal/surface"
)

// SurfaceCell is one point of a throughput surface sweep.
type SurfaceCell struct {
	Cfg        space.Config
	Throughput float64
}

// SurfaceResult is the full sweep of a workload over its configuration
// space (Fig. 1a/1b).
type SurfaceResult struct {
	Workload string
	Cells    []SurfaceCell
	Best     SurfaceCell
	Worst    SurfaceCell
	// Seq is the throughput of the sequential configuration (1,1), the
	// reference the paper's "9x higher than (1,1)" claim uses.
	Seq float64
}

// Fig1 sweeps the workload's entire configuration space and reports the
// throughput landscape, the best and worst configurations, and the spread
// relative to the sequential configuration. Fig1a uses TPC-C medium
// contention (the paper's headline surface, optimum (20,2), ~9x over
// (1,1)); Fig1b uses a workload whose optimum is radically different
// (Array at 90% writes).
func Fig1(w *surface.Workload) SurfaceResult {
	sp := space.New(w.Cores)
	res := SurfaceResult{Workload: w.Name}
	first := true
	for _, cfg := range sp.Configs() {
		cell := SurfaceCell{Cfg: cfg, Throughput: w.Throughput(cfg)}
		res.Cells = append(res.Cells, cell)
		if first {
			res.Best, res.Worst = cell, cell
			first = false
		} else {
			if cell.Throughput > res.Best.Throughput {
				res.Best = cell
			}
			if cell.Throughput < res.Worst.Throughput {
				res.Worst = cell
			}
		}
	}
	res.Seq = w.Throughput(space.Config{T: 1, C: 1})
	return res
}
