package experiment

import (
	"time"

	"autopn/internal/monitor"
	"autopn/internal/pnpool"
	"autopn/internal/search"
	"autopn/internal/smbo"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
)

// OverheadResult quantifies the cost of the self-tuning machinery
// (§VII-E): the live workload's throughput with and without the monitor
// and the continuously retrained model ensemble, with the actuator
// inhibited so the system never benefits from tuning — an upper bound on
// the overhead.
type OverheadResult struct {
	BaselineThroughput float64
	TunedThroughput    float64
	// DropFrac is 1 - tuned/baseline (the paper reports < 2%).
	DropFrac float64
}

// Overhead runs the no-contention Array workload (which scales to all
// cores) twice for dur each — once plain and once with monitoring plus
// per-window ensemble retraining active — and reports the throughput drop.
func Overhead(threads int, dur time.Duration, seed uint64) OverheadResult {
	run := func(withTuning bool) float64 {
		cfg := space.Config{T: threads, C: 1}
		pool := pnpool.New(cfg)
		var live *monitor.Live
		opts := stm.Options{Throttle: pool}
		if withTuning {
			live = monitor.NewLive(monitor.NewWallClock())
			opts.CommitHook = live.OnCommit
		}
		s := stm.New(opts)
		b := array.New(256, 0)
		d := &workload.Driver{STM: s, Pool: pool, W: b, Threads: threads}

		stop := make(chan struct{})
		if withTuning {
			// Monitoring plus model updates on trace-driven feedback, with
			// the actuator inhibited (the configuration never changes).
			go func() {
				rng := stats.NewRNG(seed)
				sp := space.New(threads)
				var obs []smbo.Observation
				var opt search.Optimizer = search.NewRandom(sp, rng, 1<<30, 0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, done := opt.Next()
					if done {
						opt = search.NewRandom(sp, rng, 1<<30, 0)
						continue
					}
					p := monitor.NewCVPolicy()
					p.CVThreshold = 0.10
					p.MaxWindow = 20 * time.Millisecond
					m := live.Measure(p)
					opt.Observe(c, m.Throughput)
					obs = append(obs, smbo.Observation{Cfg: c, KPI: m.Throughput})
					if len(obs) > 64 {
						obs = obs[1:]
					}
					// Retrain and query the full ensemble, as the paper's
					// overhead experiment does.
					sur := smbo.Fit(obs, smbo.DefaultEnsembleSize, rng, nil)
					explored := map[space.Config]bool{}
					_, _ = smbo.SuggestEI(sp, sur, explored, m.Throughput)
				}
			}()
		}
		tput := d.RunFor(seed, dur)
		close(stop)
		return tput
	}

	base := run(false)
	tuned := run(true)
	res := OverheadResult{BaselineThroughput: base, TunedThroughput: tuned}
	if base > 0 {
		res.DropFrac = 1 - tuned/base
	}
	return res
}
