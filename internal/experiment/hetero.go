package experiment

import (
	"autopn/internal/core"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// HeteroResult quantifies the paper's §VIII extension: for a workload with
// heterogeneous top-level transaction types, tuning a separate (t_k, c_k)
// per type (the MultiTuner's coordinate descent over per-type AutoPN
// instances) versus forcing one shared (t, c) on every type.
type HeteroResult struct {
	// SharedDFO is the distance from the per-type optimum achievable by
	// the best single shared configuration (a lower bound for any
	// homogeneous tuner — even a perfect one).
	SharedDFO float64
	// PerTypeDFO is the mean distance from optimum achieved by the
	// MultiTuner across repetitions.
	PerTypeDFO float64
	// MeanExplorations is the mean number of vector measurements.
	MeanExplorations float64
}

// Hetero runs the heterogeneous-types study: two transaction types with
// sharply different optima (a TPC-C-like type favoring (≈20,2) and an
// Array-90-like type favoring (1,≈14)) whose global throughput is the sum
// of the per-type surfaces, measured under the usual sampling noise.
func Hetero(reps int, seed uint64) HeteroResult {
	wa := surface.TPCC("med")
	wb := surface.Array("90")
	n := wa.Cores
	sp := space.New(n)

	// Scale type A so both types contribute comparably to the global KPI.
	_, optA := wa.Optimum(sp)
	_, optB := wb.Optimum(sp)
	scaleA := optB / optA

	kpiTrue := func(vec []space.Config) float64 {
		return scaleA*wa.Throughput(vec[0]) + wb.Throughput(vec[1])
	}
	optTotal := scaleA*optA + optB

	// The best shared configuration (oracle over the whole space).
	sharedBest := 0.0
	for _, cfg := range sp.Configs() {
		if v := kpiTrue([]space.Config{cfg, cfg}); v > sharedBest {
			sharedBest = v
		}
	}

	master := stats.NewRNG(seed)
	var dfos, expls []float64
	for rep := 0; rep < reps; rep++ {
		rng := master.Split()
		m := core.NewMultiTuner(n, 2, rng, core.Options{})
		measurements := 0
		for i := 0; i < 5000; i++ {
			vec, done := m.Next()
			if done {
				break
			}
			noisy := scaleA*wa.Measure(vec[0], rng) + wb.Measure(vec[1], rng)
			m.Observe(vec, noisy)
			measurements++
		}
		best, _ := m.Best()
		dfos = append(dfos, 1-kpiTrue(best)/optTotal)
		expls = append(expls, float64(measurements))
	}
	return HeteroResult{
		SharedDFO:        1 - sharedBest/optTotal,
		PerTypeDFO:       stats.Mean(dfos),
		MeanExplorations: stats.Mean(expls),
	}
}
