package experiment

import (
	"time"

	"autopn/internal/pnpool"
	"autopn/internal/space"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/internal/workload/tpcc"
)

// LiveSweepPoint is one configuration's live-measured throughput on the
// real PN-STM running on the host machine.
type LiveSweepPoint struct {
	Cfg        space.Config
	Throughput float64
}

// LiveSweep exhaustively measures a real workload on the real STM across
// the full (t, c) space for a small core budget — the live counterpart of
// the simulator surfaces, validating that the actual PN-STM's performance
// genuinely varies with the configuration (absolute shapes depend on the
// host's core count; on a single-core CI box nesting shows as pure
// overhead, which is itself the correct physics).
func LiveSweep(workloadName string, cores int, window time.Duration, seed uint64) []LiveSweepPoint {
	sp := space.New(cores)
	pool := pnpool.New(space.Config{T: 1, C: 1})
	s := stm.New(stm.Options{Throttle: pool})
	var w workload.Workload
	switch workloadName {
	case "tpcc":
		w = tpcc.New("med", s)
	default:
		w = array.New(256, 0.05)
	}
	d := &workload.Driver{STM: s, Pool: pool, W: w, Threads: cores}
	d.Start(seed)
	defer d.Stop()

	var out []LiveSweepPoint
	for _, cfg := range sp.Configs() {
		pool.Apply(cfg)
		// Let the reconfiguration drain before measuring.
		deadline := time.Now().Add(window)
		for pool.TopHeld() > cfg.T && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		before := s.Stats.TopCommits()
		start := time.Now()
		time.Sleep(window)
		elapsed := time.Since(start).Seconds()
		commits := s.Stats.TopCommits() - before
		out = append(out, LiveSweepPoint{Cfg: cfg, Throughput: float64(commits) / elapsed})
	}
	return out
}
