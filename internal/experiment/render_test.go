package experiment

import (
	"strings"
	"testing"
	"time"

	"autopn/internal/surface"
)

func TestRenderFig1ContainsSummaryAndGrid(t *testing.T) {
	var sb strings.Builder
	RenderFig1(&sb, Fig1(surface.TPCC("med")))
	out := sb.String()
	for _, want := range []string{"tpcc-med", "best (20,2)", "t\\c"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 rendering missing %q", want)
		}
	}
	// One row per t value plus headers.
	if lines := strings.Count(out, "\n"); lines < 48 {
		t.Errorf("Fig1 rendering has only %d lines", lines)
	}
}

func TestRenderFig5AndVariants(t *testing.T) {
	res := []StrategyResult{{
		Name:             "autopn",
		MeanDFO:          []float64{0.5, 0.2, 0.01},
		P90DFO:           []float64{0.9, 0.4, 0.02},
		MeanExplorations: 17.5,
		MeanFinalDFO:     0.01,
		P90FinalDFO:      0.02,
	}}
	var sb strings.Builder
	RenderFig5(&sb, res)
	if !strings.Contains(sb.String(), "autopn") || !strings.Contains(sb.String(), "17.5") {
		t.Errorf("Fig5 rendering incomplete:\n%s", sb.String())
	}

	sb.Reset()
	RenderVariants(&sb, "title", []VariantResult{{Name: "biased-9", MeanFinalDFO: 0.078, MeanExplorations: 13.4}})
	if !strings.Contains(sb.String(), "biased-9") || !strings.Contains(sb.String(), "7.80%") {
		t.Errorf("variants rendering incomplete:\n%s", sb.String())
	}
}

func TestRenderStaticAndFig7(t *testing.T) {
	var sb strings.Builder
	RenderStatic(&sb, StaticBaseline([]*surface.Workload{surface.TPCC("med"), surface.Array("90")}))
	if !strings.Contains(sb.String(), "best static config") {
		t.Error("static rendering missing header")
	}

	sb.Reset()
	RenderFig7a(&sb, []Fig7aPoint{
		{Workload: "w1", Window: 20 * time.Millisecond, MeanDFO: 0.1},
		{Workload: "w1", Window: time.Second, MeanDFO: 0.01},
	})
	if !strings.Contains(sb.String(), "20ms") {
		t.Error("fig7a rendering missing window column")
	}

	sb.Reset()
	RenderFig7b(&sb, []Fig7bPoint{{Window: 0, MeanThroughputFrac: 0.95}})
	if !strings.Contains(sb.String(), "adaptive") {
		t.Error("fig7b rendering missing adaptive row")
	}

	sb.Reset()
	RenderFig7c(&sb, []Fig7cPoint{{Policy: "adaptive", Workload: "w", MeanDFO: 0.01, NormDFO: 0.005}})
	if !strings.Contains(sb.String(), "adaptive") {
		t.Error("fig7c rendering missing policy row")
	}

	sb.Reset()
	RenderOverhead(&sb, OverheadResult{BaselineThroughput: 100, TunedThroughput: 99, DropFrac: 0.01}, time.Second)
	if !strings.Contains(sb.String(), "drop: 1.00%") {
		t.Errorf("overhead rendering incomplete:\n%s", sb.String())
	}
}
