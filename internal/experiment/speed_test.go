package experiment

import (
	"testing"
	"time"
)

func TestSpeedAutoPNFastestToStability(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := DefaultSpeedConfig()
	cfg.Reps = 2
	results := Speed(cfg)
	byName := map[string]SpeedResult{}
	for _, r := range results {
		byName[r.Name] = r
		t.Logf("%-20s time-to-stability=%8v meanDFO=%6.2f%% converged=%.0f%%",
			r.Name, r.MeanTimeToStability.Round(10*time.Millisecond), r.MeanFinalDFO*100, r.ConvergedFrac*100)
	}
	ap := byName["autopn"]
	// Headline claims (shape): AutoPN stabilizes several times faster than
	// the mean baseline and is several times more accurate.
	var baseTime, baseDFO float64
	n := 0
	for name, r := range byName {
		if name == "autopn" {
			continue
		}
		baseTime += r.MeanTimeToStability.Seconds()
		baseDFO += r.MeanFinalDFO
		n++
	}
	baseTime /= float64(n)
	baseDFO /= float64(n)
	if speedup := baseTime / ap.MeanTimeToStability.Seconds(); speedup < 1.5 {
		t.Errorf("autopn only %.1fx faster to stability than mean baseline", speedup)
	} else {
		t.Logf("stability speedup vs mean baseline: %.1fx (paper: 9.8x)", speedup)
	}
	if acc := baseDFO / ap.MeanFinalDFO; acc < 3 {
		t.Errorf("autopn only %.1fx more accurate than mean baseline", acc)
	} else {
		t.Logf("accuracy gain vs mean baseline: %.1fx (paper: up to 32x)", acc)
	}
}
