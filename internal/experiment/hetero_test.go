package experiment

import "testing"

func TestHeteroPerTypeTuningBeatsSharedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res := Hetero(5, 0x4E7E)
	t.Logf("shared-oracle DFO=%.1f%%  per-type DFO=%.1f%%  explorations=%.0f",
		res.SharedDFO*100, res.PerTypeDFO*100, res.MeanExplorations)
	// The two types' optima are incompatible, so even a perfect shared
	// configuration leaves substantial throughput on the table...
	if res.SharedDFO < 0.10 {
		t.Fatalf("shared oracle DFO only %.1f%%; types not heterogeneous enough", res.SharedDFO*100)
	}
	// ...while per-type coordinate descent recovers most of it.
	if res.PerTypeDFO >= res.SharedDFO {
		t.Fatalf("per-type tuning (%.1f%%) not better than the shared oracle (%.1f%%)",
			res.PerTypeDFO*100, res.SharedDFO*100)
	}
	if res.PerTypeDFO > 0.15 {
		t.Errorf("per-type tuning ended %.1f%% from optimum", res.PerTypeDFO*100)
	}
}
