package experiment

import (
	"testing"
	"time"
)

func TestLiveSweepMeasuresRealSTM(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing experiment")
	}
	points := LiveSweep("array", 3, 60*time.Millisecond, 0x11FE)
	if len(points) != 5 { // |S| for n=3: (1,1),(1,2),(1,3),(2,1),(3,1)
		t.Fatalf("swept %d configs, want 5", len(points))
	}
	nonZero := 0
	for _, p := range points {
		t.Logf("%v: %.0f commits/s", p.Cfg, p.Throughput)
		if p.Throughput > 0 {
			nonZero++
		}
	}
	if nonZero < len(points) {
		t.Fatalf("only %d of %d configurations committed anything", nonZero, len(points))
	}
}
