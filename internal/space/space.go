// Package space defines the bi-dimensional configuration space of a
// parallel-nesting TM tuner: pairs (t, c) where t is the number of
// concurrently admitted top-level transactions and c is the number of
// concurrently admitted nested transactions per transaction tree, subject
// to the no-oversubscription constraint t*c <= n for an n-core machine
// (§III-B of the paper).
package space

import (
	"fmt"
	"sort"
)

// Config is one point of the search space: t concurrent top-level
// transactions, each allowed c concurrent nested children.
type Config struct {
	T int // concurrent top-level transactions (>= 1)
	C int // concurrent nested transactions per tree (>= 1)
}

// String renders the configuration as "(t,c)".
func (c Config) String() string { return fmt.Sprintf("(%d,%d)", c.T, c.C) }

// Threads returns the total number of hardware threads the configuration
// can keep busy: t top-level threads plus t*(c-1) nested worker slots.
// With c == 1 nesting is disabled and only the t top-level threads run.
func (c Config) Threads() int { return c.T * c.C }

// Valid reports whether the configuration is admissible for an n-core
// machine: positive coordinates and no oversubscription.
func (c Config) Valid(n int) bool {
	return c.T >= 1 && c.C >= 1 && c.T*c.C <= n
}

// Space is the set S = {(t,c) : 1<=t, 1<=c, t*c<=n} of admissible
// configurations for an n-core machine, materialized in a deterministic
// order (ascending t, then ascending c).
type Space struct {
	n       int
	configs []Config
	index   map[Config]int
}

// New builds the admissible configuration space for an n-core machine.
// It panics if n < 1.
func New(n int) *Space {
	if n < 1 {
		panic("space: core count must be >= 1")
	}
	s := &Space{n: n, index: make(map[Config]int)}
	for t := 1; t <= n; t++ {
		for c := 1; t*c <= n; c++ {
			s.index[Config{t, c}] = len(s.configs)
			s.configs = append(s.configs, Config{t, c})
		}
	}
	return s
}

// Cores returns the machine size n the space was built for.
func (s *Space) Cores() int { return s.n }

// Size returns the number of admissible configurations |S|.
func (s *Space) Size() int { return len(s.configs) }

// Configs returns the admissible configurations in deterministic order.
// The returned slice is shared; callers must not modify it.
func (s *Space) Configs() []Config { return s.configs }

// Contains reports whether cfg is admissible in this space.
func (s *Space) Contains(cfg Config) bool {
	_, ok := s.index[cfg]
	return ok
}

// Index returns the position of cfg in Configs(), or -1 if not admissible.
func (s *Space) Index(cfg Config) int {
	if i, ok := s.index[cfg]; ok {
		return i
	}
	return -1
}

// At returns the i-th configuration of Configs().
func (s *Space) At(i int) Config { return s.configs[i] }

// Neighbors returns the admissible configurations that differ from cfg by
// one step in exactly one coordinate (the 4-neighborhood used by the
// hill-climbing refinement and by the local-search baselines), in
// deterministic order.
func (s *Space) Neighbors(cfg Config) []Config {
	candidates := [4]Config{
		{cfg.T - 1, cfg.C},
		{cfg.T + 1, cfg.C},
		{cfg.T, cfg.C - 1},
		{cfg.T, cfg.C + 1},
	}
	out := make([]Config, 0, 4)
	for _, c := range candidates {
		if s.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// Pivots returns the three extreme "pivot" configurations of §V-A:
// (1,1) sequential, (n,1) all cores to top-level parallelism, and (1,n)
// all cores to nested parallelism.
func (s *Space) Pivots() []Config {
	return []Config{{1, 1}, {s.n, 1}, {1, s.n}}
}

// BiasedSample returns the first k configurations of the paper's biased
// initial sampling policy (§V-A and footnote 1 of §VII-C), which probes the
// three boundary regions of S around the pivots:
//
//	k=3: {(1,1), (n,1), (1,n)}
//	k=5: + {(n-1,1), (1,n-1)}
//	k=7: + {(2,1), (1,2)}
//	k=9: + the two minimal-nesting oversubscription-frontier probes
//	     {(n/2, 2), (2, n/2)}
//
// The paper specifies 9 configurations lying on the three boundary regions
// of S; the first seven are given explicitly in its footnote and lie on the
// two axis boundaries (t = 1 and c = 1). The remaining two probe the third
// boundary region — the oversubscription frontier t*c = n — where it meets
// t = 2 and c = 2, revealing the interior inter/intra-parallelism trade-off
// that axis samples alone cannot (this matches the paper's observation of a
// major accuracy boost when going from 7 to 9 samples: the frontier probes
// are the first to expose the fully-utilized lightly-nested region where
// PN-TM optima typically live, e.g. the paper's (20,2) for TPC-C).
// Duplicate configurations (possible for very small n) are removed while
// preserving order. k is clamped to [3, 9].
func (s *Space) BiasedSample(k int) []Config {
	if k < 3 {
		k = 3
	}
	if k > 9 {
		k = 9
	}
	n := s.n
	half := maxInt(n/2, 1)
	two := minInt(2, n)
	ordered := []Config{
		{1, 1}, {n, 1}, {1, n},
		{maxInt(n-1, 1), 1}, {1, maxInt(n-1, 1)},
		{minInt(2, n), 1}, {1, minInt(2, n)},
		{half, two}, {two, half},
	}
	seen := make(map[Config]bool, k)
	out := make([]Config, 0, k)
	for _, cfg := range ordered[:k] {
		if !seen[cfg] && s.Contains(cfg) {
			seen[cfg] = true
			out = append(out, cfg)
		}
	}
	return out
}

// Boundary returns every configuration lying on the boundary of S: those
// with t == 1, c == 1, or for which (t+1)*c and t*(c+1) both exceed n.
func (s *Space) Boundary() []Config {
	var out []Config
	for _, cfg := range s.configs {
		if cfg.T == 1 || cfg.C == 1 ||
			(!s.Contains(Config{cfg.T + 1, cfg.C}) && !s.Contains(Config{cfg.T, cfg.C + 1})) {
			out = append(out, cfg)
		}
	}
	return out
}

// SortConfigs sorts cs in the space's canonical order (ascending t, then c).
func SortConfigs(cs []Config) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].T != cs[j].T {
			return cs[i].T < cs[j].T
		}
		return cs[i].C < cs[j].C
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
