package space

import (
	"testing"
	"testing/quick"
)

func TestSizeMatchesPaper(t *testing.T) {
	// The paper's study on a 48-core machine encompasses 198 configurations.
	if got := New(48).Size(); got != 198 {
		t.Fatalf("|S| for n=48 = %d, want 198", got)
	}
}

func TestSizeIsSumOfFloors(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 48, 100} {
		want := 0
		for tt := 1; tt <= n; tt++ {
			want += n / tt
		}
		if got := New(n).Size(); got != want {
			t.Errorf("n=%d: size %d, want %d", n, got, want)
		}
	}
}

func TestAllConfigsValidAndIndexed(t *testing.T) {
	sp := New(24)
	for i, cfg := range sp.Configs() {
		if !cfg.Valid(24) {
			t.Fatalf("invalid config %v in space", cfg)
		}
		if sp.Index(cfg) != i || sp.At(i) != cfg {
			t.Fatalf("index roundtrip broken at %d (%v)", i, cfg)
		}
		if !sp.Contains(cfg) {
			t.Fatalf("Contains(%v) = false", cfg)
		}
	}
	if sp.Contains(Config{T: 5, C: 5}) {
		t.Error("oversubscribed (5,5) reported admissible for n=24")
	}
	if sp.Index(Config{T: 0, C: 1}) != -1 {
		t.Error("invalid config has an index")
	}
}

func TestNeighborsWithinSpaceAndAdjacent(t *testing.T) {
	sp := New(16)
	for _, cfg := range sp.Configs() {
		for _, nb := range sp.Neighbors(cfg) {
			if !sp.Contains(nb) {
				t.Fatalf("neighbor %v of %v outside space", nb, cfg)
			}
			dt, dc := nb.T-cfg.T, nb.C-cfg.C
			if dt*dt+dc*dc != 1 {
				t.Fatalf("%v not 4-adjacent to %v", nb, cfg)
			}
		}
	}
	// Corner (16,1) has only (15,1): (17,1) and (16,2) are out.
	nbs := sp.Neighbors(Config{T: 16, C: 1})
	if len(nbs) != 1 || nbs[0] != (Config{T: 15, C: 1}) {
		t.Fatalf("Neighbors(16,1) = %v", nbs)
	}
}

func TestPivots(t *testing.T) {
	sp := New(48)
	want := []Config{{1, 1}, {48, 1}, {1, 48}}
	got := sp.Pivots()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pivots = %v, want %v", got, want)
		}
	}
}

func TestBiasedSampleNestingAndContent(t *testing.T) {
	sp := New(48)
	s3 := sp.BiasedSample(3)
	s5 := sp.BiasedSample(5)
	s7 := sp.BiasedSample(7)
	s9 := sp.BiasedSample(9)
	if len(s3) != 3 || len(s5) != 5 || len(s7) != 7 || len(s9) != 9 {
		t.Fatalf("sizes: %d %d %d %d", len(s3), len(s5), len(s7), len(s9))
	}
	// The sets are nested (paper footnote 1).
	isPrefix := func(short, long []Config) bool {
		for i := range short {
			if long[i] != short[i] {
				return false
			}
		}
		return true
	}
	if !isPrefix(s3, s5) || !isPrefix(s5, s7) || !isPrefix(s7, s9) {
		t.Fatal("biased samples are not nested")
	}
	// Footnote contents.
	want7 := []Config{{1, 1}, {48, 1}, {1, 48}, {47, 1}, {1, 47}, {2, 1}, {1, 2}}
	for i, w := range want7 {
		if s7[i] != w {
			t.Fatalf("s7[%d] = %v, want %v", i, s7[i], w)
		}
	}
	// The 9-set's last two are the frontier probes (n/2,2) and (2,n/2).
	if s9[7] != (Config{T: 24, C: 2}) || s9[8] != (Config{T: 2, C: 24}) {
		t.Fatalf("frontier probes = %v,%v", s9[7], s9[8])
	}
	// Every sample admissible and distinct.
	seen := map[Config]bool{}
	for _, c := range s9 {
		if !sp.Contains(c) || seen[c] {
			t.Fatalf("bad biased sample %v", c)
		}
		seen[c] = true
	}
}

func TestBiasedSampleSmallSpaces(t *testing.T) {
	for n := 1; n <= 6; n++ {
		sp := New(n)
		for _, k := range []int{3, 5, 7, 9} {
			for _, c := range sp.BiasedSample(k) {
				if !sp.Contains(c) {
					t.Fatalf("n=%d k=%d: inadmissible sample %v", n, k, c)
				}
			}
		}
	}
}

func TestBoundaryContainsPivotsAndFrontier(t *testing.T) {
	sp := New(12)
	onBoundary := map[Config]bool{}
	for _, c := range sp.Boundary() {
		onBoundary[c] = true
	}
	for _, p := range sp.Pivots() {
		if !onBoundary[p] {
			t.Errorf("pivot %v not on boundary", p)
		}
	}
	if !onBoundary[Config{T: 3, C: 4}] {
		t.Error("frontier point (3,4) (t*c=12) not on boundary")
	}
	if onBoundary[Config{T: 2, C: 3}] {
		t.Error("interior point (2,3) reported on boundary")
	}
}

func TestThreadsAndString(t *testing.T) {
	c := Config{T: 20, C: 2}
	if c.Threads() != 40 {
		t.Errorf("Threads = %d", c.Threads())
	}
	if c.String() != "(20,2)" {
		t.Errorf("String = %q", c.String())
	}
}

func TestValidProperty(t *testing.T) {
	f := func(tt, cc int8, n uint8) bool {
		nn := int(n%32) + 1
		cfg := Config{T: int(tt), C: int(cc)}
		want := cfg.T >= 1 && cfg.C >= 1 && cfg.T*cfg.C <= nn
		return cfg.Valid(nn) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortConfigs(t *testing.T) {
	cs := []Config{{3, 1}, {1, 2}, {1, 1}, {2, 5}}
	SortConfigs(cs)
	want := []Config{{1, 1}, {1, 2}, {2, 5}, {3, 1}}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("sorted = %v", cs)
		}
	}
}
