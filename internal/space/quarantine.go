package space

import "sync"

// Quarantine tracks configurations that repeatedly starved measurement
// windows (zero-commit gap timeouts or watchdog trips) and removes them
// from the tuner's candidate set. A configuration is banned after
// `threshold` consecutive starved windows; a healthy window clears its
// strikes. Protected configurations — the sequential pivot (1,1), whose
// measurement anchors the adaptive timeout — accumulate strikes but are
// never banned, so the tuner always retains at least one admissible
// configuration.
//
// Quarantine is safe for concurrent use: the tuning loop reports outcomes
// while HTTP status handlers read the banned list.
type Quarantine struct {
	mu        sync.Mutex
	threshold int
	strikes   map[Config]int
	banned    map[Config]bool
	protected map[Config]bool
}

// NewQuarantine returns a quarantine that bans a configuration after
// threshold consecutive starved windows (threshold < 1 is clamped to 1).
// The protected configurations can never be banned.
func NewQuarantine(threshold int, protected ...Config) *Quarantine {
	if threshold < 1 {
		threshold = 1
	}
	q := &Quarantine{
		threshold: threshold,
		strikes:   make(map[Config]int),
		banned:    make(map[Config]bool),
		protected: make(map[Config]bool, len(protected)),
	}
	for _, cfg := range protected {
		q.protected[cfg] = true
	}
	return q
}

// ReportStarved records a starved window for cfg and reports whether this
// report newly banned it. Protected configurations accumulate strikes but
// never ban.
func (q *Quarantine) ReportStarved(cfg Config) (newlyBanned bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.strikes[cfg]++
	if q.banned[cfg] || q.protected[cfg] || q.strikes[cfg] < q.threshold {
		return false
	}
	q.banned[cfg] = true
	return true
}

// ReportHealthy records a healthy window for cfg, clearing its strikes.
// A banned configuration stays banned: the tuner never re-measures it, so
// a healthy report for one can only come from stale in-flight work.
func (q *Quarantine) ReportHealthy(cfg Config) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.strikes, cfg)
}

// Ban bans cfg outright, bypassing the strike count — the warm-start path
// reseeding a recovered tuner with a checkpointed quarantine set. Protected
// configurations are still never banned. Reports whether cfg is newly
// banned.
func (q *Quarantine) Ban(cfg Config) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.banned[cfg] || q.protected[cfg] {
		return false
	}
	q.banned[cfg] = true
	return true
}

// Banned reports whether cfg is quarantined.
func (q *Quarantine) Banned(cfg Config) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.banned[cfg]
}

// Strikes returns cfg's current consecutive-starvation count.
func (q *Quarantine) Strikes(cfg Config) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.strikes[cfg]
}

// Len returns the number of quarantined configurations.
func (q *Quarantine) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.banned)
}

// List returns the quarantined configurations in canonical order.
func (q *Quarantine) List() []Config {
	q.mu.Lock()
	out := make([]Config, 0, len(q.banned))
	for cfg := range q.banned {
		out = append(out, cfg)
	}
	q.mu.Unlock()
	SortConfigs(out)
	return out
}
