package space

import "testing"

func TestQuarantineBansAfterThreshold(t *testing.T) {
	q := NewQuarantine(2)
	cfg := Config{4, 1}
	if q.ReportStarved(cfg) {
		t.Error("banned after 1 strike with threshold 2")
	}
	if q.Banned(cfg) {
		t.Error("Banned true before threshold")
	}
	if !q.ReportStarved(cfg) {
		t.Error("not newly banned at threshold")
	}
	if !q.Banned(cfg) {
		t.Error("Banned false after threshold")
	}
	if q.ReportStarved(cfg) {
		t.Error("newlyBanned reported twice")
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestQuarantineHealthyClearsStrikes(t *testing.T) {
	q := NewQuarantine(2)
	cfg := Config{2, 2}
	q.ReportStarved(cfg)
	if q.Strikes(cfg) != 1 {
		t.Errorf("Strikes = %d, want 1", q.Strikes(cfg))
	}
	q.ReportHealthy(cfg)
	if q.Strikes(cfg) != 0 {
		t.Errorf("Strikes after healthy = %d, want 0", q.Strikes(cfg))
	}
	// The counter restarts: two more starved windows are needed to ban.
	if q.ReportStarved(cfg) {
		t.Error("banned after healthy reset with one strike")
	}
	if !q.ReportStarved(cfg) {
		t.Error("not banned after two fresh strikes")
	}
}

func TestQuarantineProtectedNeverBans(t *testing.T) {
	seq := Config{1, 1}
	q := NewQuarantine(1, seq)
	for i := 0; i < 5; i++ {
		if q.ReportStarved(seq) {
			t.Fatal("protected configuration banned")
		}
	}
	if q.Banned(seq) {
		t.Error("protected configuration reported banned")
	}
	if q.Strikes(seq) != 5 {
		t.Errorf("Strikes = %d, want 5 (accumulate even when protected)", q.Strikes(seq))
	}
}

func TestQuarantineListSorted(t *testing.T) {
	q := NewQuarantine(1)
	for _, cfg := range []Config{{3, 1}, {1, 3}, {2, 2}} {
		q.ReportStarved(cfg)
	}
	got := q.List()
	want := []Config{{1, 3}, {2, 2}, {3, 1}}
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestQuarantineThresholdClamped(t *testing.T) {
	q := NewQuarantine(0)
	if !q.ReportStarved(Config{2, 1}) {
		t.Error("threshold 0 should clamp to 1 and ban on first strike")
	}
}
