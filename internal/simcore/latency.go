package simcore

import (
	"time"

	"autopn/internal/search"
	"autopn/internal/space"
)

// TuneLatency drives opt to minimize mean committed-transaction latency on
// the per-thread engine — the paper's §IV notes that AutoPN, being KPI-
// agnostic, "could be used to optimize different metrics (e.g., latency or
// abort rate)"; this is that path. The KPI fed to the optimizer is the
// inverse mean latency of each measurement window (commits per second of
// accumulated latency), so maximization and the relative EI stopping
// threshold work unchanged. Latency includes the time lost to aborted
// attempts, so highly contended configurations score poorly even when
// their raw service time is short.
func TuneLatency(ts *ThreadSim, opt search.Optimizer, wm WindowMaker, budget time.Duration) TuneOutcome {
	var out TuneOutcome
	t11 := 0.0
	seen := make(map[space.Config]bool)
	for {
		if budget > 0 && ts.Now() >= budget {
			break
		}
		cfg, done := opt.Next()
		if done {
			out.Converged = true
			out.ConvergedAt = ts.Now()
			break
		}
		ts.Apply(cfg)
		Settle(ts, budget)
		latBefore, comBefore := ts.latencySum, ts.commits
		meas := MeasureWindow(ts, wm.Make(t11))
		if (cfg == space.Config{T: 1, C: 1}) && t11 == 0 && meas.Throughput > 0 {
			t11 = meas.Throughput
		}
		kpi := 0.0
		if dc := ts.commits - comBefore; dc > 0 {
			meanLat := (ts.latencySum - latBefore).Seconds() / float64(dc)
			if meanLat > 0 {
				kpi = 1 / meanLat
			}
		}
		if !seen[cfg] {
			seen[cfg] = true
			out.Explorations++
		}
		out.Windows++
		opt.Observe(cfg, kpi)
	}
	best, _ := opt.Best()
	out.FinalCfg = best
	ts.Apply(best)
	return out
}

// LatencyOptimum returns the configuration minimizing the model's expected
// committed-transaction latency (service time inflated by the expected
// number of attempts) and that latency — the oracle the latency-tuning
// tests compare against.
func LatencyOptimum(ts *ThreadSim, sp *space.Space) (space.Config, time.Duration) {
	var best space.Config
	bestLat := time.Duration(0)
	for _, cfg := range sp.Configs() {
		dEff, p := ts.attemptParams(cfg)
		if dEff <= 0 || p >= 1 {
			continue
		}
		lat := time.Duration(dEff / (1 - p) * float64(time.Second))
		if bestLat == 0 || lat < bestLat {
			bestLat = lat
			best = cfg
		}
	}
	return best, bestLat
}
