package simcore

import (
	"math"
	"testing"
	"time"

	"autopn/internal/core"
	"autopn/internal/monitor"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func TestCommitRateMatchesModel(t *testing.T) {
	w := surface.TPCC("med")
	cfg := space.Config{T: 20, C: 2}
	sim := New(w, 1, Options{Initial: cfg})
	want := w.Throughput(cfg)
	commits := sim.RunFor(20 * time.Second)
	got := float64(commits) / 20
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("simulated rate %.1f deviates >10%% from model %.1f", got, want)
	}
}

func TestVirtualTimeMonotone(t *testing.T) {
	sim := New(surface.Array("0.01"), 2, Options{})
	last := sim.Now()
	for i := 0; i < 1000; i++ {
		now, _ := sim.NextCommit(0, false)
		if now < last {
			t.Fatalf("time went backwards: %v -> %v", last, now)
		}
		last = now
	}
}

func TestDeadlineCutsWaitingOnDeadConfig(t *testing.T) {
	w := surface.TPCC("med")
	sim := New(w, 3, Options{Initial: space.Config{T: 2, C: 24}}) // near-zero throughput
	deadline := sim.Now() + 50*time.Millisecond
	now, ev := sim.NextCommit(deadline, true)
	if ev == EventCommit && now > deadline {
		t.Fatal("commit after deadline")
	}
	if ev == EventDeadline && now != deadline {
		t.Fatalf("deadline stop at %v, want %v", now, deadline)
	}
}

func TestMeasureWindowAgreesWithModel(t *testing.T) {
	w := surface.Array("0.01")
	cfg := space.Config{T: 16, C: 3}
	sim := New(w, 4, Options{Initial: cfg})
	p := monitor.NewCVPolicy()
	p.MaxWindow = 30 * time.Second
	m := sim.MeasureWindow(p)
	want := w.Throughput(cfg)
	if m.TimedOut {
		t.Fatalf("window timed out: %+v", m)
	}
	if math.Abs(m.Throughput-want) > 0.25*want {
		t.Fatalf("measured %.1f, model %.1f", m.Throughput, want)
	}
}

func TestZeroRateTimesOutWindow(t *testing.T) {
	w := surface.TPCC("med")
	sim := New(w, 5, Options{Initial: space.Config{T: 48, C: 2}}) // invalid => rate 0
	p := monitor.NewCVPolicy()
	p.GapTimeout = time.Second
	m := sim.MeasureWindow(p)
	if !m.TimedOut || m.Commits != 0 {
		t.Fatalf("expected empty timed-out window, got %+v", m)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	w := surface.Vacation("med")
	a := New(w, 42, Options{Initial: space.Config{T: 8, C: 2}})
	b := New(w, 42, Options{Initial: space.Config{T: 8, C: 2}})
	for i := 0; i < 100; i++ {
		ta, ca := a.NextCommit(0, false)
		tb, cb := b.NextCommit(0, false)
		if ta != tb || ca != cb {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTuneSessionConvergesOnSim(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	_, optTput := w.Optimum(sp)
	rng := stats.NewRNG(11)
	sim := New(w, rng.Uint64(), Options{})
	opt := core.New(sp, rng, core.Options{})
	out := Tune(sim, opt, AdaptiveCV{}, 0)
	if !out.Converged {
		t.Fatal("tuning did not converge without a budget")
	}
	if out.Explorations < 9 {
		t.Fatalf("only %d explorations", out.Explorations)
	}
	best, _ := opt.Best()
	if dfo := 1 - w.Throughput(best)/optTput; dfo > 0.15 {
		t.Fatalf("converged to %v at %.1f%% from optimum", best, dfo*100)
	}
	if sim.Config() != best {
		t.Fatalf("best %v not left applied (current %v)", best, sim.Config())
	}
}

func TestTuneBudgetInterrupts(t *testing.T) {
	w := surface.Array("0.01").Scaled("array-glacial", 10000)
	sp := space.New(w.Cores)
	rng := stats.NewRNG(12)
	sim := New(w, rng.Uint64(), Options{})
	opt := core.New(sp, rng, core.Options{})
	out := Tune(sim, opt, AdaptiveCV{}, 2*time.Second)
	if out.Converged {
		t.Fatal("glacial workload cannot converge in 2 virtual seconds")
	}
}

func TestWindowMakerNames(t *testing.T) {
	cases := []struct {
		mk   WindowMaker
		want string
	}{
		{AdaptiveCV{}, "adaptive"},
		{FixedTime{Window: time.Second}, "fixed-1s"},
		{FixedCommits{Commits: 10, AdaptiveTimeout: true}, "WPNOC10"},
		{FixedCommits{Commits: 30}, "WNOC30"},
	}
	for _, c := range cases {
		if got := c.mk.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestOUNoiseStationary(t *testing.T) {
	// Over a long run the realized rate must stay near the model mean
	// (the OU correction term keeps E[rate] = base).
	w := surface.Array("0")
	cfg := space.Config{T: 48, C: 1}
	sim := New(w, 6, Options{Initial: cfg, NoiseSigma: 0.2})
	commits := sim.RunFor(50 * time.Second)
	got := float64(commits) / 50
	want := w.Throughput(cfg)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("long-run rate %.1f vs model %.1f under strong noise", got, want)
	}
}
