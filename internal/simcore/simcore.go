// Package simcore is a discrete-event, virtual-time simulator of a PN-TM
// system running on an n-core machine. It stands in for the paper's 48-core
// testbed (see DESIGN.md): top-level commit events are generated as a
// doubly stochastic Poisson process whose rate is the analytic workload
// model's throughput at the currently applied (t, c) configuration,
// modulated by a slowly varying Ornstein-Uhlenbeck noise process that
// reproduces the temporally correlated throughput fluctuations of real TM
// runs (without it, arbitrarily short monitoring windows would be
// unrealistically accurate, hiding exactly the accuracy/reactivity
// trade-off that §VII-D studies).
//
// The simulator implements monitor.Clock, so the very same monitor policies
// and optimizers that run against a live STM drive tuning sessions in
// virtual time — a multi-minute tuning run simulates in microseconds,
// which is what makes the paper's full experimental grid reproducible on a
// laptop.
package simcore

import (
	"math"
	"time"

	"autopn/internal/monitor"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// Engine is a virtual-time PN-TM deployment: both the aggregate renewal
// engine (Sim) and the per-thread discrete-event engine (ThreadSim)
// implement it, so monitors and tuning sessions run against either.
type Engine interface {
	monitor.Clock
	// Apply reconfigures the simulated actuator.
	Apply(cfg space.Config)
	// Config returns the currently applied configuration.
	Config() space.Config
	// Commits returns the total number of simulated top-level commits.
	Commits() uint64
	// NextCommit advances virtual time to the next commit event, or to the
	// deadline if it comes first, returning the event time and what
	// happened.
	NextCommit(deadline time.Duration, hasDeadline bool) (time.Duration, Event)
}

// Event classifies what NextCommit returned.
type Event int

// NextCommit outcomes.
const (
	// EventDeadline: no commit before the deadline (or idle bound).
	EventDeadline Event = iota
	// EventCommit: a commit attributable to the current configuration.
	EventCommit
	// EventStaleCommit: a commit of a transaction admitted under a
	// previous configuration, draining after a reconfiguration. It proves
	// the system is live but must not be sampled as the current
	// configuration's throughput.
	EventStaleCommit
)

// Settler is implemented by engines whose reconfigurations complete
// asynchronously: Settled reports whether the currently applied
// configuration is fully in force (in-flight work admitted under previous
// configurations has drained). The aggregate renewal engine switches rates
// instantaneously and does not implement it.
type Settler interface {
	Settled() bool
}

// Settle advances the engine until the applied configuration is in force
// (or the budget is reached; budget 0 means no bound). Engines without
// asynchronous reconfiguration settle immediately. Commits that occur while
// settling belong to the application run but to no measurement window.
func Settle(e Engine, budget time.Duration) {
	st, ok := e.(Settler)
	if !ok {
		return
	}
	for !st.Settled() {
		if budget > 0 && e.Now() >= budget {
			return
		}
		e.NextCommit(0, false)
	}
}

// MeasureWindow runs one monitoring window under policy p on any engine:
// it begins the window now, feeds commit events until the policy declares
// the window complete or its deadline fires, and returns the measurement.
func MeasureWindow(e Engine, p monitor.Policy) monitor.Measurement {
	p.Begin(e.Now())
	for {
		dl, has := p.Deadline()
		now, ev := e.NextCommit(dl, has)
		switch ev {
		case EventDeadline:
			return p.Result(now, true)
		case EventStaleCommit:
			p.Touch(now)
		default:
			if p.OnCommit(now) {
				return p.Result(now, false)
			}
		}
	}
}

// RunFor advances the engine by d without monitoring (the application
// simply executes), returning the number of commits that occurred.
func RunFor(e Engine, d time.Duration) uint64 {
	end := e.Now() + d
	start := e.Commits()
	for e.Now() < end {
		if _, ev := e.NextCommit(end, true); ev == EventDeadline {
			break
		}
	}
	return e.Commits() - start
}

// Sim is one virtual PN-TM deployment executing a workload.
type Sim struct {
	w   *surface.Workload
	rng *stats.RNG

	now time.Duration
	cfg space.Config

	// Ornstein-Uhlenbeck log-rate noise.
	noiseX     float64
	noiseTau   float64 // correlation time, seconds
	noiseSigma float64 // stationary std-dev of the log rate

	commits uint64
}

// Options tune the simulator's noise process.
type Options struct {
	// NoiseTau is the correlation time of throughput fluctuations
	// (default 100ms).
	NoiseTau time.Duration
	// NoiseSigma is the stationary standard deviation of the log
	// throughput (default 0.08, i.e. ~8% fluctuations).
	NoiseSigma float64
	// Initial is the starting configuration (default (1,1)).
	Initial space.Config
}

// New returns a simulator for workload w seeded by seed.
func New(w *surface.Workload, seed uint64, opts Options) *Sim {
	if opts.NoiseTau <= 0 {
		opts.NoiseTau = 100 * time.Millisecond
	}
	if opts.NoiseSigma < 0 {
		opts.NoiseSigma = 0
	} else if opts.NoiseSigma == 0 {
		opts.NoiseSigma = 0.08
	}
	if opts.Initial.T < 1 || opts.Initial.C < 1 {
		opts.Initial = space.Config{T: 1, C: 1}
	}
	return &Sim{
		w:          w,
		rng:        stats.NewRNG(seed),
		cfg:        opts.Initial,
		noiseTau:   opts.NoiseTau.Seconds(),
		noiseSigma: opts.NoiseSigma,
	}
}

// Workload returns the simulated workload.
func (s *Sim) Workload() *surface.Workload { return s.w }

// Now implements monitor.Clock (virtual time since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Commits returns the total number of simulated top-level commits.
func (s *Sim) Commits() uint64 { return s.commits }

// Config returns the currently applied configuration.
func (s *Sim) Config() space.Config { return s.cfg }

// Apply reconfigures the simulated actuator. The change takes effect for
// the next inter-commit interval.
func (s *Sim) Apply(cfg space.Config) { s.cfg = cfg }

// rate returns the current instantaneous commit rate (commits/second).
func (s *Sim) rate() float64 {
	base := s.w.Throughput(s.cfg)
	if base <= 0 {
		return 0
	}
	return base * math.Exp(s.noiseX-s.noiseSigma*s.noiseSigma/2)
}

// advanceNoise evolves the OU log-rate process across dt seconds.
func (s *Sim) advanceNoise(dt float64) {
	if s.noiseSigma == 0 || s.noiseTau <= 0 {
		return
	}
	decay := math.Exp(-dt / s.noiseTau)
	s.noiseX = s.noiseX*decay + s.noiseSigma*math.Sqrt(1-decay*decay)*s.rng.NormFloat64()
}

// maxIdle bounds the virtual time the simulator will advance while waiting
// for a commit that never comes (rate zero and no deadline).
const maxIdle = time.Hour

// erlangShape is the shape parameter of the Erlang-distributed inter-commit
// times. TM commit streams are far more regular than Poisson (each thread
// emits commits paced by its transaction duration); shape 16 gives the
// moderate regularity (CV 0.25) observed in practice, and is what makes the
// early cumulative-throughput estimates T(i) informative rather than
// dominated by a single exponential outlier.
const erlangShape = 16

// erlang samples an Erlang(erlangShape) variate with unit mean.
func (s *Sim) erlang() float64 {
	sum := 0.0
	for i := 0; i < erlangShape; i++ {
		sum += s.rng.ExpFloat64()
	}
	return sum / erlangShape
}

// NextCommit advances virtual time to the next commit event, or to the
// deadline if it comes first. It returns the event time and whether a
// commit occurred (false = deadline reached first). A deadline of zero with
// hasDeadline=false means "no deadline" (bounded internally by maxIdle to
// keep simulations finite).
func (s *Sim) NextCommit(deadline time.Duration, hasDeadline bool) (time.Duration, Event) {
	r := s.rate()
	var dt time.Duration
	if r <= 0 {
		dt = maxIdle
	} else {
		dt = time.Duration(s.erlang() / r * float64(time.Second))
		if dt <= 0 {
			dt = time.Nanosecond
		}
	}
	next := s.now + dt
	if hasDeadline && deadline < next {
		s.advanceNoise((deadline - s.now).Seconds())
		s.now = deadline
		return s.now, EventDeadline
	}
	if !hasDeadline && dt == maxIdle {
		s.now = next
		return s.now, EventDeadline
	}
	s.advanceNoise(dt.Seconds())
	s.now = next
	s.commits++
	return s.now, EventCommit
}

// MeasureWindow runs one monitoring window under policy p in virtual time.
func (s *Sim) MeasureWindow(p monitor.Policy) monitor.Measurement {
	return MeasureWindow(s, p)
}

// RunFor advances the simulation by d without monitoring (the application
// simply executes), returning the number of commits that occurred.
func (s *Sim) RunFor(d time.Duration) uint64 {
	return RunFor(s, d)
}

var _ Engine = (*Sim)(nil)
