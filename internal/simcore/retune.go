package simcore

import (
	"time"

	"autopn/internal/monitor"
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// WorkloadSwitcher is implemented by engines whose workload can be swapped
// at run time (both engines implement it), enabling deterministic
// dynamic-workload experiments in virtual time.
type WorkloadSwitcher interface {
	SetWorkload(w *surface.Workload)
}

// SetWorkload switches the renewal engine to a new workload model; the
// change takes effect for the next inter-commit interval.
func (s *Sim) SetWorkload(w *surface.Workload) { s.w = w }

// SetWorkload switches the per-thread engine to a new workload model.
// Attempts already in flight complete under the durations they were
// sampled with; their commit/abort outcome and all new attempts use the
// new model (duration parameters are resampled per attempt).
func (ts *ThreadSim) SetWorkload(w *surface.Workload) { ts.w = w }

// RetuneOutcome summarizes a dynamic-workload session.
type RetuneOutcome struct {
	// Initial is the tuning outcome before the shift.
	Initial TuneOutcome
	// Detected reports whether the CUSUM watcher flagged the shift.
	Detected bool
	// DetectedAt is the virtual time of detection.
	DetectedAt time.Duration
	// Final is the re-tuning outcome after detection (zero if undetected).
	Final TuneOutcome
}

// RunWithRetune is the §V "dynamic workloads" pipeline in virtual time:
// tune with mkOpt, then watch throughput under the chosen configuration
// with a CUSUM detector; when shiftAt arrives the engine's workload is
// swapped to next, and on detection the optimizer restarts from scratch.
// The session ends when the post-shift tuning converges or budget virtual
// time elapses.
func RunWithRetune(e Engine, mkOpt func() search.Optimizer, wm WindowMaker,
	next *surface.Workload, shiftAt, budget time.Duration) RetuneOutcome {

	var out RetuneOutcome
	out.Initial = Tune(e, mkOpt(), wm, shiftAt)

	det := stats.NewCUSUM(5, 1, 20)
	shifted := false
	for e.Now() < budget {
		if !shifted && e.Now() >= shiftAt {
			e.(WorkloadSwitcher).SetWorkload(next)
			shifted = true
		}
		m := MeasureWindow(e, watchPolicy())
		if det.Observe(m.Throughput) {
			out.Detected = true
			out.DetectedAt = e.Now()
			break
		}
	}
	if out.Detected {
		out.Final = Tune(e, mkOpt(), wm, budget)
	}
	return out
}

// watchPolicy builds the monitoring window for the watch phase: fixed
// one-second windows rather than the exploration policy. Two reasons. A
// gap timeout derived from the tuned configuration's own (high) throughput
// truncates windows mid-burst, making the samples heavy-tailed and the
// CUSUM calibration blind. And CV-stability windows end after a few tens
// of milliseconds — shorter than the throughput noise's correlation time —
// so consecutive window means are strongly autocorrelated and CUSUM
// accumulates same-signed evidence into false positives. One-second
// windows average over many correlation times (stable means, negligible
// correlation) while a workload collapse still reads as a near-zero
// window, which is exactly the change signal.
func watchPolicy() monitor.Policy {
	return &monitor.FixedTimePolicy{Window: time.Second}
}

// mustSwitcher asserts at compile time that both engines can switch
// workloads.
var (
	_ WorkloadSwitcher = (*Sim)(nil)
	_ WorkloadSwitcher = (*ThreadSim)(nil)
	_                  = space.Config{}
)
