package simcore

import (
	"testing"
	"time"

	"autopn/internal/core"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func TestMeanLatencyTracksModel(t *testing.T) {
	w := surface.TPCC("med")
	cfg := space.Config{T: 1, C: 2} // no top-level contention: latency = dEff
	ts := NewThreadSim(w, 21, cfg)
	RunFor(ts, 20*time.Second)
	want := w.EffectiveDuration(2)
	got := ts.MeanLatency().Seconds()
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("mean latency %.4fs, model %.4fs", got, want)
	}
}

func TestLatencyIncludesAbortRetries(t *testing.T) {
	w := surface.TPCC("high")
	quiet := NewThreadSim(w, 23, space.Config{T: 1, C: 2})
	noisy := NewThreadSim(w, 23, space.Config{T: 7, C: 2})
	RunFor(quiet, 20*time.Second)
	RunFor(noisy, 20*time.Second)
	if noisy.MeanLatency() <= quiet.MeanLatency() {
		t.Fatalf("contended latency %v not above uncontended %v (aborts must count)",
			noisy.MeanLatency(), quiet.MeanLatency())
	}
}

func TestLatencyOptimumDiffersFromThroughputOptimum(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	ts := NewThreadSim(w, 25, space.Config{T: 1, C: 1})
	latOpt, lat := LatencyOptimum(ts, sp)
	tputOpt, _ := w.Optimum(sp)
	if latOpt == tputOpt {
		t.Fatalf("latency optimum %v equals throughput optimum; KPI choice would be moot", latOpt)
	}
	// Latency is minimized without top-level contention.
	if latOpt.T != 1 {
		t.Fatalf("latency optimum %v should avoid top-level contention", latOpt)
	}
	if lat <= 0 {
		t.Fatalf("latency oracle returned %v", lat)
	}
}

func TestTuneLatencyFindsLowLatencyConfig(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(27)
	ts := NewThreadSim(w, rng.Uint64(), space.Config{T: 1, C: 1})
	_, oracleLat := LatencyOptimum(ts, sp)
	opt := core.New(sp, rng, core.Options{})
	out := TuneLatency(ts, opt, AdaptiveCV{}, 0)
	if !out.Converged {
		t.Fatal("latency tuning did not converge")
	}
	best, _ := opt.Best()
	// The found configuration's model latency must be close to the oracle.
	dEff, p := ts.attemptParams(best)
	gotLat := time.Duration(dEff / (1 - p) * float64(time.Second))
	if float64(gotLat) > 1.5*float64(oracleLat) {
		t.Fatalf("latency tuning settled on %v with latency %v, oracle %v", best, gotLat, oracleLat)
	}
	// And it must be a genuinely different regime from the throughput
	// optimum (low top-level parallelism).
	if best.T > 4 {
		t.Fatalf("latency tuning picked high top-level parallelism %v", best)
	}
}
