package simcore

import (
	"container/heap"
	"math"
	"time"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// ThreadSim is the fine-grained discrete-event engine: each of the t
// admitted top-level threads is simulated individually, cycling through
// transaction attempts whose durations derive from the workload model's
// conflict-free duration at the configuration in force when the attempt
// started. At the end of an attempt the transaction commits or aborts
// (with the model's conflict probability) and, on abort, retries
// immediately — so the engine exposes abort statistics and the transient
// dynamics of reconfiguration (in-flight attempts finish under the old
// configuration; thread-count changes take effect at attempt boundaries),
// which the aggregate renewal engine (Sim) averages away. Its stationary
// commit rate matches the analytic model by construction:
// t * (1-p) / d_eff = Workload.Throughput.
type ThreadSim struct {
	w   *surface.Workload
	rng *stats.RNG

	now time.Duration
	cfg space.Config

	events  eventHeap
	nextID  int
	active  int // threads currently scheduled
	commits uint64
	aborts  uint64

	// Latency accounting: total committed-transaction latency (including
	// the aborted attempts each commit absorbed).
	latencySum time.Duration
}

// threadEvent is the completion of one transaction attempt.
type threadEvent struct {
	at time.Duration
	// cfg is the configuration in force when the attempt started (its
	// duration and conflict probability were drawn from it).
	cfg space.Config
	// began is when the transaction (not just this attempt) started; the
	// latency of a commit is at - began, accumulating aborted attempts.
	began time.Duration
	id    int
}

type eventHeap []threadEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(threadEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewThreadSim creates a per-thread engine for workload w.
func NewThreadSim(w *surface.Workload, seed uint64, initial space.Config) *ThreadSim {
	if initial.T < 1 || initial.C < 1 {
		initial = space.Config{T: 1, C: 1}
	}
	ts := &ThreadSim{w: w, rng: stats.NewRNG(seed)}
	ts.cfg = initial
	for i := 0; i < initial.T; i++ {
		ts.scheduleAttempt()
	}
	return ts
}

var _ Engine = (*ThreadSim)(nil)

// Now implements monitor.Clock.
func (ts *ThreadSim) Now() time.Duration { return ts.now }

// Config implements Engine.
func (ts *ThreadSim) Config() space.Config { return ts.cfg }

// Commits implements Engine.
func (ts *ThreadSim) Commits() uint64 { return ts.commits }

// Aborts returns the total number of simulated aborted attempts.
func (ts *ThreadSim) Aborts() uint64 { return ts.aborts }

// AbortRate returns aborts / attempts over the whole run.
func (ts *ThreadSim) AbortRate() float64 {
	total := ts.commits + ts.aborts
	if total == 0 {
		return 0
	}
	return float64(ts.aborts) / float64(total)
}

// Apply implements Engine: thread-count growth takes effect immediately
// (new threads start attempts now); shrinkage drains naturally at attempt
// boundaries. The nesting degree affects attempts started from now on.
func (ts *ThreadSim) Apply(cfg space.Config) {
	if cfg.T < 1 {
		cfg.T = 1
	}
	if cfg.C < 1 {
		cfg.C = 1
	}
	ts.cfg = cfg
	for ts.active < cfg.T {
		ts.scheduleAttempt()
	}
	// Excess threads retire when their current attempt completes (see
	// NextCommit); nothing to do here.
}

// attemptParams derives the per-attempt duration and conflict probability
// from the workload model at cfg, such that the stationary commit rate
// equals the analytic throughput: rate = T * (1-p) / dEff.
func (ts *ThreadSim) attemptParams(cfg space.Config) (dEff float64, pConflict float64) {
	tput := ts.w.Throughput(cfg)
	dEff = ts.w.EffectiveDuration(cfg.C)
	if tput <= 0 || dEff <= 0 {
		return dEff, 1 // inadmissible: every attempt conflicts
	}
	// Throughput = T*(1-p)/dEff  =>  p = 1 - tput*dEff/T.
	pConflict = 1 - tput*dEff/float64(cfg.T)
	if pConflict < 0 {
		pConflict = 0
	}
	if pConflict > 0.999 {
		pConflict = 0.999
	}
	return dEff, pConflict
}

// scheduleAttempt starts a new attempt on a fresh logical thread at the
// current time.
func (ts *ThreadSim) scheduleAttempt() {
	ts.pushAttempt(ts.cfg, ts.now)
	ts.active++
}

// pushAttempt enqueues one attempt-completion event under cfg for a
// transaction that began at began (== now for fresh transactions; earlier
// for retries of aborted ones).
func (ts *ThreadSim) pushAttempt(cfg space.Config, began time.Duration) {
	dEff, _ := ts.attemptParams(cfg)
	if dEff <= 0 || math.IsInf(dEff, 0) {
		dEff = maxIdle.Seconds()
	}
	// Erlang-distributed service time, same regularity as the renewal
	// engine.
	dur := time.Duration(ts.erlang() * dEff * float64(time.Second))
	if dur <= 0 {
		dur = time.Nanosecond
	}
	ts.nextID++
	heap.Push(&ts.events, threadEvent{at: ts.now + dur, cfg: cfg, began: began, id: ts.nextID})
}

// MeanLatency returns the mean committed-transaction latency over the whole
// run (including time lost to aborted attempts), or 0 with no commits.
func (ts *ThreadSim) MeanLatency() time.Duration {
	if ts.commits == 0 {
		return 0
	}
	return ts.latencySum / time.Duration(ts.commits)
}

// erlang samples an Erlang(erlangShape) variate with unit mean.
func (ts *ThreadSim) erlang() float64 {
	sum := 0.0
	for i := 0; i < erlangShape; i++ {
		sum += ts.rng.ExpFloat64()
	}
	return sum / erlangShape
}

// Settled reports whether the last reconfiguration is fully in force: no
// in-flight attempt started under a previous configuration remains. The
// tuner waits for this before opening a measurement window, mirroring the
// real actuator whose semaphores complete a shrink only once the old
// transactions have drained.
func (ts *ThreadSim) Settled() bool {
	for _, ev := range ts.events {
		if ev.cfg != ts.cfg {
			return false
		}
	}
	return true
}

// NextCommit implements Engine: pop attempt completions until a commit
// happens or the deadline passes.
func (ts *ThreadSim) NextCommit(deadline time.Duration, hasDeadline bool) (time.Duration, Event) {
	for {
		if len(ts.events) == 0 {
			// No runnable threads (possible only transiently); idle out.
			if hasDeadline {
				ts.now = deadline
				return ts.now, EventDeadline
			}
			ts.now += maxIdle
			return ts.now, EventDeadline
		}
		next := ts.events[0].at
		if hasDeadline && deadline < next {
			ts.now = deadline
			return ts.now, EventDeadline
		}
		if !hasDeadline && next > ts.now+maxIdle {
			ts.now += maxIdle
			return ts.now, EventDeadline
		}
		ev := heap.Pop(&ts.events).(threadEvent)
		ts.now = ev.at
		_, p := ts.attemptParams(ev.cfg)
		if ts.rng.Float64() < p {
			ts.aborts++
			if ts.active > ts.cfg.T {
				// The configuration shrank while this thread ran: retire at
				// the attempt boundary instead of retrying.
				ts.active--
				continue
			}
			// Abort: retry immediately under the *current* configuration,
			// preserving the transaction's begin time for latency.
			ts.pushAttempt(ts.cfg, ev.began)
			continue
		}
		ts.commits++
		ts.latencySum += ts.now - ev.began
		// Thread finished a transaction; keep it running unless the
		// configuration shrank.
		stale := ev.cfg != ts.cfg
		if ts.active > ts.cfg.T {
			ts.active--
		} else {
			ts.pushAttempt(ts.cfg, ts.now)
		}
		if stale {
			// The transaction was admitted under a previous configuration
			// (a reconfiguration drained it mid-flight). It counts as a
			// commit for the application and proves liveness (the monitor
			// Touch-es its gap timer), but it is not sampled as the new
			// configuration's throughput: the actuator intercepts
			// begin/commit and attributes each transaction to its
			// admission configuration. Without this, the drain burst after
			// shrinking t would masquerade as throughput of the new
			// configuration.
			return ts.now, EventStaleCommit
		}
		return ts.now, EventCommit
	}
}
