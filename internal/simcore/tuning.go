package simcore

import (
	"fmt"
	"time"

	"autopn/internal/monitor"
	"autopn/internal/search"
	"autopn/internal/space"
)

// WindowMaker builds one monitoring policy per measurement window. t11 is
// the throughput measured for the sequential configuration (1,1), or 0
// while still unknown; the adaptive policies derive their gap timeout from
// it (§VI of the paper).
type WindowMaker interface {
	Name() string
	Make(t11 float64) monitor.Policy
}

// AdaptiveCV is the paper's adaptive monitor: CV-based stability plus the
// adaptive 1/T(1,1) gap timeout.
type AdaptiveCV struct {
	CVThreshold float64       // default 0.10
	MinCommits  int           // default 5
	MaxWindow   time.Duration // safety bound, default 120s
}

// Name implements WindowMaker.
func (a AdaptiveCV) Name() string { return "adaptive" }

// Make implements WindowMaker.
func (a AdaptiveCV) Make(t11 float64) monitor.Policy {
	p := monitor.NewCVPolicy()
	if a.CVThreshold > 0 {
		p.CVThreshold = a.CVThreshold
	}
	if a.MinCommits > 0 {
		p.MinCommits = a.MinCommits
	}
	p.MaxWindow = a.MaxWindow
	if p.MaxWindow <= 0 {
		p.MaxWindow = 120 * time.Second
	}
	p.GapTimeout = monitor.AdaptiveGapFromSequential(t11, 0)
	return p
}

// FixedTime is the static-window baseline of Fig. 7a/7b.
type FixedTime struct {
	Window time.Duration
}

// Name implements WindowMaker.
func (f FixedTime) Name() string { return fmt.Sprintf("fixed-%v", f.Window) }

// Make implements WindowMaker.
func (f FixedTime) Make(float64) monitor.Policy {
	return &monitor.FixedTimePolicy{Window: f.Window}
}

// FixedCommits is the wait-for-K-commits baseline of Fig. 7c: WNOC when
// AdaptiveTimeout is false, WPNOC (with the paper's adaptive timeout on
// top) when true.
type FixedCommits struct {
	Commits         int
	AdaptiveTimeout bool
	// FallbackWindow bounds the window when no adaptive timeout applies
	// (WNOC is unbounded in the paper; the simulator caps it so starving
	// configurations cost a large-but-finite amount of virtual time).
	FallbackWindow time.Duration
}

// Name implements WindowMaker.
func (f FixedCommits) Name() string {
	if f.AdaptiveTimeout {
		return fmt.Sprintf("WPNOC%d", f.Commits)
	}
	return fmt.Sprintf("WNOC%d", f.Commits)
}

// Make implements WindowMaker.
func (f FixedCommits) Make(t11 float64) monitor.Policy {
	p := &monitor.FixedCommitsPolicy{Commits: f.Commits}
	if f.AdaptiveTimeout {
		p.GapTimeout = monitor.AdaptiveGapFromSequential(t11, f.FallbackWindow)
	} else if f.FallbackWindow > 0 {
		p.GapTimeout = f.FallbackWindow
	}
	return p
}

// TuneOutcome summarizes a live tuning session in the simulator.
type TuneOutcome struct {
	// FinalCfg is the configuration the tuner settled on (its best
	// observation when interrupted by the budget).
	FinalCfg space.Config
	// Converged reports whether the optimizer finished before the budget.
	Converged bool
	// ConvergedAt is the virtual time at which the optimizer finished.
	ConvergedAt time.Duration
	// Windows is the number of measurement windows executed.
	Windows int
	// Explorations is the number of distinct configurations measured.
	Explorations int
}

// Tune drives opt live on sim: each Next() configuration is applied to the
// simulated actuator and measured with a fresh monitoring window from wm;
// the measured throughput is fed back via Observe. The session stops when
// the optimizer converges or the virtual-time budget is exhausted, and the
// tuner's best configuration is left applied (so callers can keep running
// the "application" and measure residual throughput, as Fig. 7b does).
func Tune(sim Engine, opt search.Optimizer, wm WindowMaker, budget time.Duration) TuneOutcome {
	var out TuneOutcome
	t11 := 0.0
	seen := make(map[space.Config]bool)
	for {
		if budget > 0 && sim.Now() >= budget {
			break
		}
		cfg, done := opt.Next()
		if done {
			out.Converged = true
			out.ConvergedAt = sim.Now()
			break
		}
		sim.Apply(cfg)
		Settle(sim, budget)
		meas := MeasureWindow(sim, wm.Make(t11))
		if (cfg == space.Config{T: 1, C: 1}) && t11 == 0 && meas.Throughput > 0 {
			t11 = meas.Throughput
		}
		if !seen[cfg] {
			seen[cfg] = true
			out.Explorations++
		}
		out.Windows++
		if om, ok := opt.(interface {
			ObserveMeasured(space.Config, float64, float64)
		}); ok {
			om.ObserveMeasured(cfg, meas.Throughput, meas.CV)
		} else {
			opt.Observe(cfg, meas.Throughput)
		}
	}
	best, _ := opt.Best()
	out.FinalCfg = best
	sim.Apply(best)
	return out
}
