package simcore

import (
	"testing"
	"time"

	"autopn/internal/core"
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func TestRunWithRetuneDetectsAndReoptimizes(t *testing.T) {
	// Start on a read-dominated Array workload (optimum (48,1)), shift to
	// the write-heavy variant (optimum (1,14)): the detector must fire and
	// the re-tuned configuration must fit the new workload.
	before := surface.Array("0.01")
	after := surface.Array("90")
	sp := space.New(before.Cores)
	_, afterOpt := after.Optimum(sp)

	rng := stats.NewRNG(41)
	sim := New(before, rng.Uint64(), Options{})
	mk := func() search.Optimizer { return core.New(sp, rng.Split(), core.Options{}) }

	out := RunWithRetune(sim, mk, AdaptiveCV{}, after, 60*time.Second, 30*time.Minute)
	if !out.Initial.Converged {
		t.Fatal("initial tuning did not converge before the shift")
	}
	if !out.Detected {
		t.Fatal("workload shift not detected")
	}
	if out.DetectedAt < 60*time.Second {
		t.Fatalf("detection at %v, before the shift", out.DetectedAt)
	}
	if lag := out.DetectedAt - 60*time.Second; lag > 5*time.Minute {
		t.Fatalf("detection lag %v too long", lag)
	}
	if !out.Final.Converged {
		t.Fatal("re-tuning did not converge")
	}
	final := sim.Config()
	if dfo := 1 - after.Throughput(final)/afterOpt; dfo > 0.25 {
		t.Fatalf("re-tuned to %v, %.1f%% from the new optimum", final, dfo*100)
	}
	t.Logf("shift detected after %v; re-tuned to %v",
		(out.DetectedAt - 60*time.Second).Round(time.Millisecond), final)
}

func TestRunWithRetuneNoShiftNoFalsePositive(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(43)
	sim := New(w, rng.Uint64(), Options{})
	mk := func() search.Optimizer { return core.New(sp, rng.Split(), core.Options{}) }

	// "Shift" to the same workload: statistically nothing changes, so the
	// detector must stay quiet for the whole budget.
	out := RunWithRetune(sim, mk, AdaptiveCV{}, w, 30*time.Second, 5*time.Minute)
	if out.Detected {
		t.Fatalf("false positive at %v on an unchanged workload", out.DetectedAt)
	}
}

func TestSetWorkloadSwitchesRates(t *testing.T) {
	fast := surface.Array("0.01")
	slow := fast.Scaled("slow", 100)
	for _, e := range []Engine{
		New(fast, 7, Options{Initial: space.Config{T: 16, C: 3}}),
		NewThreadSim(fast, 7, space.Config{T: 16, C: 3}),
	} {
		r1 := float64(RunFor(e, 5*time.Second)) / 5
		e.(WorkloadSwitcher).SetWorkload(slow)
		r2 := float64(RunFor(e, 5*time.Second)) / 5
		if r2 >= r1/10 {
			t.Fatalf("%T: rate %.1f -> %.1f after 100x slowdown", e, r1, r2)
		}
	}
}
