package simcore

import (
	"math"
	"testing"
	"time"

	"autopn/internal/core"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func TestThreadSimRateMatchesModel(t *testing.T) {
	w := surface.TPCC("med")
	for _, cfg := range []space.Config{{T: 1, C: 1}, {T: 20, C: 2}, {T: 8, C: 3}, {T: 48, C: 1}} {
		ts := NewThreadSim(w, 7, cfg)
		want := w.Throughput(cfg)
		commits := RunFor(ts, 30*time.Second)
		got := float64(commits) / 30
		if math.Abs(got-want) > 0.12*want {
			t.Errorf("%v: DES rate %.1f deviates >12%% from model %.1f", cfg, got, want)
		}
	}
}

func TestThreadSimAbortRateGrowsWithTopLevelParallelism(t *testing.T) {
	w := surface.TPCC("high")
	low := NewThreadSim(w, 3, space.Config{T: 2, C: 1})
	high := NewThreadSim(w, 3, space.Config{T: 24, C: 2})
	RunFor(low, 20*time.Second)
	RunFor(high, 20*time.Second)
	if low.AbortRate() >= high.AbortRate() {
		t.Fatalf("abort rate did not grow with t: %.2f (t=2) vs %.2f (t=24)",
			low.AbortRate(), high.AbortRate())
	}
	if high.AbortRate() < 0.2 {
		t.Fatalf("high-contention abort rate %.2f suspiciously low", high.AbortRate())
	}
}

func TestThreadSimSequentialNeverAborts(t *testing.T) {
	w := surface.Array("90") // contention only matters with t > 1
	ts := NewThreadSim(w, 5, space.Config{T: 1, C: 4})
	RunFor(ts, 10*time.Second)
	if a := ts.Aborts(); a != 0 {
		t.Fatalf("sequential run aborted %d times", a)
	}
	if ts.Commits() == 0 {
		t.Fatal("no commits")
	}
}

func TestThreadSimReconfigurationMidRun(t *testing.T) {
	w := surface.TPCC("med")
	ts := NewThreadSim(w, 9, space.Config{T: 1, C: 1})
	RunFor(ts, 2*time.Second)
	slowRate := float64(ts.Commits()) / 2

	ts.Apply(space.Config{T: 20, C: 2})
	base := ts.Commits()
	start := ts.Now()
	for ts.Now() < start+10*time.Second {
		if _, ev := ts.NextCommit(start+10*time.Second, true); ev == EventDeadline {
			break
		}
	}
	fastRate := float64(ts.Commits()-base) / 10
	want := w.Throughput(space.Config{T: 20, C: 2})
	if fastRate < 5*slowRate {
		t.Fatalf("reconfiguration had little effect: %.1f -> %.1f", slowRate, fastRate)
	}
	if math.Abs(fastRate-want) > 0.15*want {
		t.Fatalf("post-reconfig rate %.1f vs model %.1f", fastRate, want)
	}
	if got := ts.Config(); got != (space.Config{T: 20, C: 2}) {
		t.Fatalf("Config = %v", got)
	}
}

func TestThreadSimShrinkDrains(t *testing.T) {
	w := surface.TPCC("low")
	ts := NewThreadSim(w, 11, space.Config{T: 24, C: 2})
	RunFor(ts, 2*time.Second)
	ts.Apply(space.Config{T: 2, C: 1})
	RunFor(ts, 5*time.Second)
	// After draining, the event queue must hold at most t=2 attempts.
	if n := len(ts.events); n > 2 {
		t.Fatalf("%d in-flight attempts after shrinking to t=2", n)
	}
}

func TestThreadSimDeadlineRespected(t *testing.T) {
	w := surface.TPCC("med")
	ts := NewThreadSim(w, 13, space.Config{T: 2, C: 24}) // inadmissible: rate ~0
	deadline := ts.Now() + 100*time.Millisecond
	now, ev := ts.NextCommit(deadline, true)
	if ev != EventDeadline || now != deadline {
		t.Fatalf("NextCommit = (%v, %v), want deadline timeout", now, ev)
	}
}

func TestTuneRunsOnThreadSim(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	_, optTput := w.Optimum(sp)
	rng := stats.NewRNG(17)
	ts := NewThreadSim(w, rng.Uint64(), space.Config{T: 1, C: 1})
	opt := core.New(sp, rng, core.Options{})
	out := Tune(ts, opt, AdaptiveCV{}, 0)
	if !out.Converged {
		t.Fatal("tuning on the DES engine did not converge")
	}
	best, _ := opt.Best()
	if dfo := 1 - w.Throughput(best)/optTput; dfo > 0.2 {
		t.Fatalf("DES tuning ended %.1f%% from optimum (%v)", dfo*100, best)
	}
}
