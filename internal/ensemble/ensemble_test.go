package ensemble

import (
	"math"
	"testing"

	"autopn/internal/m5"
	"autopn/internal/stats"
)

func trainingData(rng *stats.RNG, n int) []m5.Instance {
	data := make([]m5.Instance, n)
	for i := range data {
		x := []float64{rng.Float64() * 48, rng.Float64() * 48}
		data[i] = m5.Instance{X: x, Y: 10*x[0] - 3*x[1] + rng.NormFloat64()*5}
	}
	return data
}

func TestBagSizeAndDegenerateK(t *testing.T) {
	rng := stats.NewRNG(1)
	data := trainingData(rng, 30)
	tr := M5Trainer(m5.DefaultOptions())
	if got := Train(data, 10, rng, tr).Size(); got != 10 {
		t.Fatalf("Size = %d", got)
	}
	if got := Train(data, 0, rng, tr).Size(); got != 1 {
		t.Fatalf("k=0 Size = %d, want 1", got)
	}
}

func TestSingleMemberHasZeroVariance(t *testing.T) {
	rng := stats.NewRNG(2)
	bag := Train(trainingData(rng, 30), 1, rng, M5Trainer(m5.DefaultOptions()))
	_, sd := bag.PredictDist([]float64{10, 10})
	if sd != 0 {
		t.Fatalf("k=1 sd = %v, want 0", sd)
	}
}

func TestEnsembleMeanTracksTarget(t *testing.T) {
	rng := stats.NewRNG(3)
	data := trainingData(rng, 60)
	bag := Train(data, 10, rng, M5Trainer(m5.DefaultOptions()))
	x := []float64{20, 5}
	want := 10*x[0] - 3*x[1]
	mean, sd := bag.PredictDist(x)
	if math.Abs(mean-want) > 0.15*math.Abs(want) {
		t.Fatalf("mean %v far from %v", mean, want)
	}
	if sd < 0 {
		t.Fatalf("negative sd %v", sd)
	}
	if p := bag.Predict(x); p != mean {
		t.Fatalf("Predict %v != mean %v", p, mean)
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	rng := stats.NewRNG(4)
	// Cluster the training data in a corner; extrapolation variance at the
	// far corner should exceed interpolation variance inside the cluster.
	data := make([]m5.Instance, 40)
	for i := range data {
		x := []float64{rng.Float64() * 5, rng.Float64() * 5}
		data[i] = m5.Instance{X: x, Y: x[0] + x[1] + rng.NormFloat64()}
	}
	bag := Train(data, 20, rng, M5Trainer(m5.DefaultOptions()))
	_, sdNear := bag.PredictDist([]float64{2, 2})
	_, sdFar := bag.PredictDist([]float64{48, 48})
	if sdFar <= sdNear {
		t.Fatalf("extrapolation sd %v not above interpolation sd %v", sdFar, sdNear)
	}
}

func TestEmptyTrainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(nil, 5, stats.NewRNG(1), M5Trainer(m5.DefaultOptions()))
}

func TestDeterministicPerSeed(t *testing.T) {
	data := trainingData(stats.NewRNG(9), 25)
	a := Train(data, 10, stats.NewRNG(5), M5Trainer(m5.DefaultOptions()))
	b := Train(data, 10, stats.NewRNG(5), M5Trainer(m5.DefaultOptions()))
	x := []float64{13, 3}
	ma, sa := a.PredictDist(x)
	mb, sb := b.PredictDist(x)
	if ma != mb || sa != sb {
		t.Fatalf("same seed gave different ensembles: (%v,%v) vs (%v,%v)", ma, sa, mb, sb)
	}
}
