// Package ensemble implements bootstrap aggregation (bagging) of
// regressors. AutoPN trains a bag of 10 M5 model trees, each on a uniform
// random sample (with replacement) of the observations collected so far;
// the mean and variance of the members' predictions provide the Gaussian
// (mu, sigma) that the Expected Improvement acquisition function needs
// (§V-B of the paper).
package ensemble

import (
	"math"

	"autopn/internal/m5"
	"autopn/internal/stats"
)

// Regressor predicts a scalar from a feature vector.
type Regressor interface {
	Predict(x []float64) float64
}

// Trainer builds a Regressor from a training set.
type Trainer func(data []m5.Instance) Regressor

// M5Trainer returns a Trainer producing M5 model trees with the given
// options.
func M5Trainer(opts m5.Options) Trainer {
	return func(data []m5.Instance) Regressor { return m5.Train(data, opts) }
}

// Bag is a trained bagging ensemble.
type Bag struct {
	members []Regressor
}

// Train builds a bag of k members, each trained on a bootstrap resample of
// data (uniform with replacement, same size as data). The first member is
// trained on the full data set so that a k=1 "ensemble" degenerates to the
// plain base learner.
func Train(data []m5.Instance, k int, rng *stats.RNG, trainer Trainer) *Bag {
	if len(data) == 0 {
		panic("ensemble: empty training set")
	}
	if k < 1 {
		k = 1
	}
	b := &Bag{members: make([]Regressor, 0, k)}
	b.members = append(b.members, trainer(data))
	sample := make([]m5.Instance, len(data))
	for m := 1; m < k; m++ {
		for i := range sample {
			sample[i] = data[rng.Intn(len(data))]
		}
		b.members = append(b.members, trainer(sample))
	}
	return b
}

// Size returns the number of members.
func (b *Bag) Size() int { return len(b.members) }

// Predict returns the ensemble mean at x.
func (b *Bag) Predict(x []float64) float64 {
	mean, _ := b.PredictDist(x)
	return mean
}

// PredictDist returns the mean and standard deviation of the members'
// predictions at x — the (mu_x, sigma_x) of the paper's Eq. 1. A
// single-member bag reports zero deviation (a certain prediction).
func (b *Bag) PredictDist(x []float64) (mean, std float64) {
	n := len(b.members)
	sum, sq := 0.0, 0.0
	for _, m := range b.members {
		p := m.Predict(x)
		sum += p
		sq += p * p
	}
	mean = sum / float64(n)
	if n > 1 {
		v := sq/float64(n) - mean*mean
		if v > 0 {
			std = math.Sqrt(v)
		}
	}
	return mean, std
}
