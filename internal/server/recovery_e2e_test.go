package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"autopn/internal/analyze"
	"autopn/internal/server"
	"autopn/internal/server/loadgen"
)

// TestRecoveryKillAndRecover is the kill-and-recover gate behind `make
// recovery-smoke` and the recovery-e2e CI job. It builds the real
// autopn-server binary, runs it with per-batch-fsync durability, drives it
// with a verifying load (every acked write journaled client-side), SIGKILLs
// the process mid-load, restarts it on the same WAL directory, and asserts
// the durability contract end to end:
//
//   - zero acked-write loss: the post-restart audit sweep finds every
//     ledger-acked delta in the recovered store;
//   - bounded recovery: the restarted process accepts traffic within the
//     recovery budget, and every shard reports its replay stats;
//   - tuner continuity: at least two shards' restart decision logs open
//     with a "recovery" warm-start event carrying the checkpointed (t, c)
//     instead of a cold initial-sampling launch;
//   - WAL cost: a saturating no-WAL baseline vs. the same load over
//     fsync-interval durability stays within the budgeted ratio.
//
// Artifacts (acked-write ledger, audit report, recovery stdout, /status
// snapshots, loadgen reports, merged timeline) go to
// $RECOVERY_SMOKE_ARTIFACTS when set. Only runs when $RECOVERY_SMOKE=1 —
// it saturates the host and SIGKILLs subprocesses on purpose.
func TestRecoveryKillAndRecover(t *testing.T) {
	if os.Getenv("RECOVERY_SMOKE") == "" {
		t.Skip("set RECOVERY_SMOKE=1 (or run `make recovery-smoke`) to run the kill-and-recover smoke")
	}
	if testing.Short() {
		t.Skip("recovery smoke skipped in short mode")
	}
	duration := 6 * time.Second
	if v := os.Getenv("LOADGEN_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("LOADGEN_DURATION=%q: %v", v, err)
		}
		duration = d
	}
	artifacts := os.Getenv("RECOVERY_SMOKE_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}

	bin := filepath.Join(t.TempDir(), "autopn-server")
	build := exec.Command("go", "build", "-o", bin, "autopn/cmd/autopn-server")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build autopn-server: %v\n%s", err, out)
	}

	const (
		shards = 4
		keys   = 4096
	)
	walDir := filepath.Join(artifacts, "wal")
	dec1 := filepath.Join(artifacts, "decisions-run1")
	dec2 := filepath.Join(artifacts, "decisions-run2")
	ledger := filepath.Join(artifacts, "acked.ledger")
	addr, httpAddr := pickAddr(t), pickAddr(t)
	common := []string{
		"-addr", addr, "-http", httpAddr,
		"-shards", fmt.Sprint(shards), "-keys", fmt.Sprint(keys),
		"-wal", walDir, "-wal-sync", "batch",
		// Snapshots (and with them tuner checkpoints) must land between
		// start and kill, so the crash recovers a warm tuner state.
		"-snapshot-interval", "300ms",
		"-tuner-max-window", "100ms",
	}

	// ---- Run 1: serve under verifying load, then SIGKILL mid-load. ----
	proc1 := startServerProc(t, bin, append(common, "-decision-log-dir", dec1),
		filepath.Join(artifacts, "server-run1.log"))
	waitReady(t, addr, 30*time.Second)

	loadDone := make(chan loadgen.Report, 1)
	go func() {
		rep, err := loadgen.Run(context.Background(), loadgen.Options{
			Addr:         addr,
			Rate:         4000,
			Duration:     duration,
			Keys:         keys,
			ZipfS:        1.1,
			ReadFrac:     0.1,
			MAddFrac:     0.2,
			Shards:       shards,
			MaxInFlight:  512,
			Seed:         11,
			VerifyLedger: ledger,
		})
		if err != nil {
			// The server dying mid-run is the point; the ledger on disk is
			// the source of truth either way.
			t.Logf("loadgen (expected to see the kill): %v", err)
		}
		loadDone <- rep
	}()

	time.Sleep(duration * 6 / 10)
	if err := proc1.Process.Kill(); err != nil { // SIGKILL: no drain, no marker
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = proc1.Wait()
	loadRep := <-loadDone
	writeReport(t, artifacts, "loadgen-run1.json", loadRep)
	if loadRep.AckedWrites == 0 {
		t.Fatal("no acked writes journaled before the kill — the run proves nothing")
	}
	t.Logf("killed mid-load with %d acked writes in the ledger", loadRep.AckedWrites)

	// The tuner checkpoints the crash left behind: the restart must resume
	// from exactly these.
	checkpoints := readCheckpoints(t, walDir, shards)
	if len(checkpoints) < 2 {
		t.Fatalf("only %d shard(s) left a tuner checkpoint before the kill, want >= 2 (snapshot interval too long?)", len(checkpoints))
	}

	// ---- Run 2: restart on the same WAL dir; recovery must be bounded. ----
	restartAt := time.Now()
	proc2 := startServerProc(t, bin, append(common, "-decision-log-dir", dec2),
		filepath.Join(artifacts, "server-run2.log"))
	waitReady(t, addr, 30*time.Second)
	readyIn := time.Since(restartAt)
	t.Logf("restarted and serving in %s", readyIn.Round(time.Millisecond))
	if readyIn > 30*time.Second {
		t.Errorf("recovery took %s, want < 30s", readyIn)
	}

	// Every shard must report its recovery (a crash, so no clean marker).
	var status struct {
		Shards []struct {
			ID  int `json:"id"`
			WAL *struct {
				Recovery *struct {
					DurationMS    float64 `json:"duration_ms"`
					CleanShutdown bool    `json:"clean_shutdown"`
					WarmStart     bool    `json:"warm_start"`
				} `json:"recovery"`
			} `json:"wal"`
		} `json:"shard_table"`
	}
	raw := httpGetBody(t, "http://"+httpAddr+"/status")
	if err := os.WriteFile(filepath.Join(artifacts, "status-run2.json"), raw, 0o644); err != nil {
		t.Fatalf("write status: %v", err)
	}
	if err := json.Unmarshal(raw, &status); err != nil {
		t.Fatalf("parse /status: %v", err)
	}
	if len(status.Shards) != shards {
		t.Fatalf("status has %d shards, want %d", len(status.Shards), shards)
	}
	for _, sh := range status.Shards {
		if sh.WAL == nil || sh.WAL.Recovery == nil {
			t.Fatalf("shard %d: no recovery block in /status", sh.ID)
		}
		r := sh.WAL.Recovery
		if r.CleanShutdown {
			t.Errorf("shard %d: recovery claims a clean shutdown after SIGKILL", sh.ID)
		}
		if _, ok := checkpoints[sh.ID]; ok && !r.WarmStart {
			t.Errorf("shard %d: checkpoint on disk but no tuner warm start", sh.ID)
		}
		if r.DurationMS > 10_000 {
			t.Errorf("shard %d: recovery took %.0fms, want < 10s", sh.ID, r.DurationMS)
		}
	}

	// ---- The gate: audit the ledger against the recovered store. ----
	audit, err := loadgen.Audit(addr, ledger)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	writeReport(t, artifacts, "audit.json", audit)
	t.Logf("audit: %d records, %d keys checked, %d acked deltas, %d lost, %d late-surplus",
		audit.Records, audit.KeysChecked, audit.AckedDeltas, audit.LostAcks, audit.LateSurplus)
	if audit.LostAcks > 0 {
		t.Errorf("%d acked writes lost across the crash: %+v", audit.LostAcks, audit.LostDetail)
	}
	if audit.KeysChecked == 0 {
		t.Error("audit checked zero keys — the sweep found nothing to verify")
	}
	if audit.SweepErrors > 0 {
		t.Errorf("audit sweep hit %d GET errors", audit.SweepErrors)
	}

	// Graceful stop first: the decision logs are buffered and flush on
	// close, so they are read only after run 2 has exited. Run 2's WAL dir
	// now also carries a clean marker for any later inspection.
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := proc2.Wait(); err != nil {
		t.Errorf("run-2 graceful shutdown: %v", err)
	}

	// ---- Tuner continuity: run-2 decision logs open with recovery. ----
	warmShards := 0
	for id, cp := range checkpoints {
		path := filepath.Join(dec2, fmt.Sprintf("shard-%d.jsonl", id))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("shard %d run-2 decision log: %v", id, err)
			continue
		}
		found := false
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			var d struct {
				Kind string `json:"kind"`
				T    int    `json:"t"`
				C    int    `json:"c"`
			}
			if err := json.Unmarshal([]byte(line), &d); err != nil {
				t.Errorf("shard %d: malformed decision %q: %v", id, line, err)
				break
			}
			if d.Kind == "recovery" {
				found = true
				if d.T != cp.Best.T || d.C != cp.Best.C {
					t.Errorf("shard %d: recovery resumed (t=%d,c=%d), checkpoint says (t=%d,c=%d)",
						id, d.T, d.C, cp.Best.T, cp.Best.C)
				}
				break
			}
		}
		if found {
			warmShards++
		} else {
			t.Errorf("shard %d: no recovery decision in the run-2 log", id)
		}
	}
	if warmShards < 2 {
		t.Errorf("only %d shard(s) warm-started with a recovery decision, want >= 2", warmShards)
	}

	// Merged timeline artifact: run-2 decisions (with the recovery events)
	// through autopn-analyze.
	var tl analyze.Timeline
	if err := tl.LoadDecisions(dec2); err != nil {
		t.Fatalf("analyze decisions: %v", err)
	}
	var timeline strings.Builder
	if err := tl.Write(&timeline); err != nil {
		t.Fatalf("analyze write: %v", err)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "timeline-run2.txt"), []byte(timeline.String()), 0o644); err != nil {
		t.Fatalf("write timeline: %v", err)
	}
	if !strings.Contains(timeline.String(), "RECOVERY") {
		t.Error("merged run-2 timeline has no RECOVERY line")
	}

	// ---- WAL cost: saturating goodput, fsync-interval vs. no WAL. ----
	// Interleaved best-of-3 per configuration: back-to-back saturating
	// runs on a shared CI host swing by tens of percent (profiling puts
	// the WAL path itself at ~2% CPU), so alternate the configurations
	// and compare the best run of each to keep slow host phases from
	// landing entirely on one side of the ratio.
	ratioDur := 2 * time.Second
	baseOpts := func() server.Options {
		return server.Options{Shards: shards, Keys: keys, DisableTuner: true, Seed: 1}
	}
	walOpts := func() server.Options {
		o := baseOpts()
		o.WALDir = filepath.Join(t.TempDir(), "wal")
		o.WALSyncPolicy = "interval"
		o.WALSyncInterval = 50 * time.Millisecond
		return o
	}
	var base, walled float64
	for round := 0; round < 3; round++ {
		if g := measureGoodput(t, baseOpts(), keys, shards, ratioDur); g > base {
			base = g
		}
		if g := measureGoodput(t, walOpts(), keys, shards, ratioDur); g > walled {
			walled = g
		}
	}
	ratio := walled / base
	writeReport(t, artifacts, "wal-cost.json", map[string]float64{
		"goodput_no_wal": base, "goodput_wal_interval": walled, "ratio": ratio,
	})
	t.Logf("WAL cost: %.0f req/s without WAL, %.0f req/s with interval fsync (%.2fx)", base, walled, ratio)
	if ratio < 0.85 {
		t.Errorf("fsync-interval goodput is %.2fx of the no-WAL baseline, want >= 0.85x", ratio)
	}
}

// measureGoodput runs a saturating write-heavy load against an in-process
// server and returns the achieved goodput.
func measureGoodput(t *testing.T, opts server.Options, keys, shards int, d time.Duration) float64 {
	t.Helper()
	s, err := server.New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	defer s.Shutdown(10 * time.Second)
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		Addr:        s.Addr(),
		Rate:        200000, // saturate: achieved goodput is the capacity
		Duration:    d,
		Keys:        keys,
		ZipfS:       1.1,
		ReadFrac:    0.1,
		MAddFrac:    0.2,
		Shards:      shards,
		MaxInFlight: 512,
		Seed:        13,
	})
	if err != nil {
		t.Fatalf("goodput run: %v", err)
	}
	if rep.Goodput <= 0 {
		t.Fatalf("goodput run measured zero goodput: %+v", rep)
	}
	return rep.Goodput
}

// readCheckpoints loads every shard's on-disk tuner checkpoint.
func readCheckpoints(t *testing.T, walDir string, shards int) map[int]struct {
	Best struct{ T, C int } `json:"best"`
} {
	t.Helper()
	out := map[int]struct {
		Best struct{ T, C int } `json:"best"`
	}{}
	for i := 0; i < shards; i++ {
		data, err := os.ReadFile(filepath.Join(walDir, fmt.Sprintf("shard-%d", i), "tuner.json"))
		if err != nil {
			continue // this shard had no snapshot before the kill
		}
		var cp struct {
			Best struct{ T, C int } `json:"best"`
		}
		if err := json.Unmarshal(data, &cp); err != nil {
			t.Fatalf("shard %d checkpoint: %v", i, err)
		}
		out[i] = cp
	}
	return out
}

// pickAddr reserves an ephemeral 127.0.0.1 port and returns it as a listen
// address for a subprocess.
func pickAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("pick port: %v", err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// startServerProc launches the built autopn-server with its output teed to
// logPath (a CI artifact) and registers a kill-on-cleanup.
func startServerProc(t *testing.T, bin string, args []string, logPath string) *exec.Cmd {
	t.Helper()
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("server log: %v", err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		_ = logf.Close()
	})
	return cmd
}

// waitReady polls the wire protocol until a PING answers.
func waitReady(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		_ = nc.SetDeadline(time.Now().Add(time.Second))
		if _, err := nc.Write([]byte("PING\n")); err == nil {
			if line, err := bufio.NewReader(nc).ReadString('\n'); err == nil && strings.TrimSpace(line) == "PONG" {
				_ = nc.Close()
				return
			}
		}
		_ = nc.Close()
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s not ready within %s", addr, timeout)
}
