package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"autopn/internal/chaos"
)

// startTestServer builds and starts a server with the given options and
// registers a cleanup shutdown (Shutdown is idempotent, so tests may also
// stop it explicitly).
func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Shutdown(5 * time.Second) })
	return s
}

// testClient is a line-oriented protocol client for tests.
type testClient struct {
	t  *testing.T
	c  net.Conn
	sc *bufio.Scanner
}

func dialServer(t *testing.T, s *Server) *testClient {
	t.Helper()
	c, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", s.Addr(), err)
	}
	t.Cleanup(func() { _ = c.Close() })
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<10)
	return &testClient{t: t, c: c, sc: sc}
}

func (tc *testClient) send(line string) {
	tc.t.Helper()
	if _, err := fmt.Fprintf(tc.c, "%s\n", line); err != nil {
		tc.t.Fatalf("send %q: %v", line, err)
	}
}

func (tc *testClient) recv() string {
	tc.t.Helper()
	_ = tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !tc.sc.Scan() {
		tc.t.Fatalf("recv: connection closed or read error: %v", tc.sc.Err())
	}
	return tc.sc.Text()
}

func (tc *testClient) roundTrip(line string) string {
	tc.t.Helper()
	tc.send(line)
	return tc.recv()
}

// sameShardKeys returns n key names that all hash to one shard of the
// given ring, plus one key from a different shard.
func sameShardKeys(t *testing.T, r *Ring, keySpace, n int) (colocated []string, other string) {
	t.Helper()
	byShard := map[int][]string{}
	for i := 0; i < keySpace; i++ {
		k := KeyName(i)
		byShard[r.Lookup(k)] = append(byShard[r.Lookup(k)], k)
	}
	for s, keys := range byShard {
		if len(keys) >= n && colocated == nil {
			colocated = keys[:n]
			for s2, keys2 := range byShard {
				if s2 != s && len(keys2) > 0 {
					other = keys2[0]
					break
				}
			}
			break
		}
	}
	if colocated == nil || other == "" {
		t.Fatal("key space too small to find colocated + foreign keys")
	}
	return colocated, other
}

func TestServerBasicOps(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:       2,
		Keys:         256,
		DisableTuner: true,
	})
	tc := dialServer(t, s)

	if got := tc.roundTrip("PING"); got != "PONG" {
		t.Errorf("PING -> %q, want PONG", got)
	}
	k := KeyName(7)
	if got := tc.roundTrip("PUT " + k + " 5"); got != "OK" {
		t.Errorf("PUT -> %q, want OK", got)
	}
	if got := tc.roundTrip("GET " + k); got != "VALUE 5" {
		t.Errorf("GET -> %q, want VALUE 5", got)
	}
	if got := tc.roundTrip("ADD " + k + " 3"); got != "VALUE 8" {
		t.Errorf("ADD -> %q, want VALUE 8", got)
	}
	if got := tc.roundTrip("GET nosuchkey"); got != "ERR "+ErrCodeUnknownKey {
		t.Errorf("GET unknown -> %q, want ERR %s", got, ErrCodeUnknownKey)
	}
	if got := tc.roundTrip("FROB x"); got != "ERR "+ErrCodeBadRequest {
		t.Errorf("FROB -> %q, want ERR %s", got, ErrCodeBadRequest)
	}
	if got := tc.roundTrip("ADD " + k + " notanumber"); got != "ERR "+ErrCodeBadRequest {
		t.Errorf("ADD bad delta -> %q, want ERR %s", got, ErrCodeBadRequest)
	}
}

func TestServerMAdd(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:       3,
		VNodes:       64,
		Keys:         512,
		DisableTuner: true,
	})
	colocated, foreign := sameShardKeys(t, s.ring, 512, 3)
	tc := dialServer(t, s)

	line := fmt.Sprintf("MADD %s 2 %s 3 %s 4", colocated[0], colocated[1], colocated[2])
	if got := tc.roundTrip(line); got != "OK" {
		t.Fatalf("MADD -> %q, want OK", got)
	}
	for i, want := range []string{"VALUE 2", "VALUE 3", "VALUE 4"} {
		if got := tc.roundTrip("GET " + colocated[i]); got != want {
			t.Errorf("GET %s -> %q, want %q", colocated[i], got, want)
		}
	}
	// Cross-shard batches are refused with the typed error.
	cross := fmt.Sprintf("MADD %s 1 %s 1", colocated[0], foreign)
	if got := tc.roundTrip(cross); got != "ERR "+ErrCodeCrossShard {
		t.Errorf("cross-shard MADD -> %q, want ERR %s", got, ErrCodeCrossShard)
	}
}

// TestServerPipelinedInOrder: responses come back in request order even
// when many requests are written before any response is read.
func TestServerPipelinedInOrder(t *testing.T) {
	// One worker on one shard: execution then follows queue order exactly,
	// so the accumulating VALUEs prove reply order matches request order.
	s := startTestServer(t, Options{
		Shards:          1,
		Keys:            64,
		QueueDepth:      128,
		WorkersPerShard: 1,
		DisableTuner:    true,
	})
	tc := dialServer(t, s)

	const n = 100
	k := KeyName(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "ADD %s 1\n", k)
	}
	if _, err := tc.c.Write([]byte(b.String())); err != nil {
		t.Fatalf("pipelined write: %v", err)
	}
	for i := 1; i <= n; i++ {
		want := fmt.Sprintf("VALUE %d", i)
		if got := tc.recv(); got != want {
			t.Fatalf("pipelined response %d = %q, want %q", i, got, want)
		}
	}
}

// TestServerOverloadShedding: with a wedged shard (chaos stall at the
// commit point) and a tiny queue, surplus arrivals are refused with the
// typed overload reply and land in the dead-letter log.
func TestServerOverloadShedding(t *testing.T) {
	dlqPath := filepath.Join(t.TempDir(), "dlq.jsonl")
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{{
		Name:   "wedge-commit",
		Point:  chaos.PointCommit,
		Action: chaos.ActStall,
	}}})
	defer inj.Close()

	s := startTestServer(t, Options{
		Shards:          1,
		Keys:            64,
		QueueDepth:      2,
		WorkersPerShard: 1,
		RequestTimeout:  200 * time.Millisecond,
		DisableTuner:    true,
		DLQPath:         dlqPath,
		Breaker:         BreakerOptions{FailureThreshold: 100}, // keep the breaker out of this test
		Injector:        func(int) *chaos.Injector { return inj },
	})
	tc := dialServer(t, s)

	// Burst far past capacity: 1 wedged executing + 2 queued slots; the
	// rest must shed. The wedged/queued requests answer via their deadline
	// timers, so every response eventually arrives, in order.
	const n = 30
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "ADD %s 1\n", KeyName(i%4))
	}
	if _, err := tc.c.Write([]byte(b.String())); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	overloads, timeouts := 0, 0
	for i := 0; i < n; i++ {
		switch got := tc.recv(); got {
		case "ERR " + ErrCodeOverload:
			overloads++
		case "ERR " + ErrCodeTimeout:
			timeouts++
		default:
			t.Fatalf("response %d = %q, want overload or timeout", i, got)
		}
	}
	// Exactly queue depth + at most one dequeued request can avoid the
	// shed path; everything else must carry the typed overload reply.
	if overloads < n-3 {
		t.Errorf("got %d overload replies, want >= %d", overloads, n-3)
	}
	if timeouts < 2 || timeouts > 3 {
		t.Errorf("got %d timeout replies, want 2 or 3", timeouts)
	}
	if shed := s.shards[0].shed.Load(); shed != uint64(overloads) {
		t.Errorf("shard shed counter = %d, want %d", shed, overloads)
	}
	if c := s.dlq.Count(); c != uint64(n) {
		t.Errorf("DLQ count = %d, want %d (every refusal leaves a dead letter)", c, n)
	}

	// Unwedge and shut down; the DLQ file must hold every refusal.
	inj.Close()
	s.Shutdown(5 * time.Second)
	assertJSONLRecords(t, dlqPath, n)
}

// TestServerBreakerTripsUnderChaosStall drives the closed -> open ->
// half-open -> closed cycle end to end: a chaos-stalled commit wedges the
// shard, request deadline timers feed the breaker failures until it
// trips, arrivals then get the typed breaker reply, and after the stall
// is released plus the cooldown, a probe closes the breaker again.
func TestServerBreakerTripsUnderChaosStall(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{{
		Name:    "wedge-commit",
		Point:   chaos.PointCommit,
		Action:  chaos.ActStall,
		Trigger: chaos.Trigger{Times: 2},
	}}})
	defer inj.Close()

	s := startTestServer(t, Options{
		Shards:          1,
		Keys:            64,
		QueueDepth:      8,
		WorkersPerShard: 2,
		RequestTimeout:  80 * time.Millisecond,
		DisableTuner:    true,
		Breaker: BreakerOptions{
			FailureThreshold: 2,
			Cooldown:         100 * time.Millisecond,
			HalfOpenProbes:   1,
		},
		Injector: func(int) *chaos.Injector { return inj },
	})
	tc := dialServer(t, s)

	// Two requests wedge in the stalled commit; their deadline timers
	// answer with timeouts and trip the breaker.
	tc.send("ADD " + KeyName(1) + " 1")
	tc.send("ADD " + KeyName(2) + " 1")
	for i := 0; i < 2; i++ {
		if got := tc.recv(); got != "ERR "+ErrCodeTimeout {
			t.Fatalf("wedged request %d -> %q, want ERR %s", i, got, ErrCodeTimeout)
		}
	}
	// The timer delivers the reply before it reports the failure, so give
	// the breaker a moment to observe both.
	waitFor(t, time.Second, func() bool { return s.shards[0].breaker.State() == BreakerOpen })

	// While open, arrivals are rejected immediately with the typed reply.
	if got := tc.roundTrip("ADD " + KeyName(3) + " 1"); got != "ERR "+ErrCodeBreakerOpen {
		t.Fatalf("request while open -> %q, want ERR %s", got, ErrCodeBreakerOpen)
	}

	// Release the stall (the two wedged commits finish as late successes)
	// and wait out the cooldown; the next request is the half-open probe
	// and its success closes the breaker.
	inj.Close()
	time.Sleep(150 * time.Millisecond)
	if got := tc.roundTrip("ADD " + KeyName(4) + " 1"); got != "VALUE 1" {
		t.Fatalf("probe request -> %q, want VALUE 1", got)
	}
	if st := s.shards[0].breaker.State(); st != BreakerClosed {
		t.Fatalf("breaker state after probe success = %v, want closed", st)
	}
	if opens := s.shards[0].breaker.Opens(); opens != 1 {
		t.Errorf("breaker Opens() = %d, want 1", opens)
	}
	// Normal service resumed.
	if got := tc.roundTrip("ADD " + KeyName(4) + " 1"); got != "VALUE 2" {
		t.Errorf("post-recovery request -> %q, want VALUE 2", got)
	}
}

// TestServerGracefulShutdownFlushesLogs: Shutdown must drain in-flight
// work within the timeout and leave complete, parseable decision and
// dead-letter logs on disk — on every path.
func TestServerGracefulShutdownFlushesLogs(t *testing.T) {
	dir := t.TempDir()
	dlqPath := filepath.Join(dir, "dlq.jsonl")
	s := startTestServer(t, Options{
		Shards:         2,
		Keys:           256,
		TunerMaxWindow: 40 * time.Millisecond,
		Seed:           7,
		DecisionLogDir: dir,
		DLQPath:        dlqPath,
	})
	tc := dialServer(t, s)

	// Drive traffic long enough for the tuners to complete measurement
	// windows on both shards.
	deadline := time.Now().Add(600 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		if got := tc.roundTrip(fmt.Sprintf("ADD %s 1", KeyName(i%256))); !strings.HasPrefix(got, "VALUE") {
			t.Fatalf("ADD -> %q, want VALUE n", got)
		}
	}

	rep := s.Shutdown(5 * time.Second)
	if !rep.Drained {
		t.Errorf("Shutdown report: Drained = false, want true (abandoned %d)", rep.Abandoned)
	}

	// A request after shutdown is refused at the socket (listener closed).
	if _, err := net.DialTimeout("tcp", s.Addr(), 200*time.Millisecond); err == nil {
		t.Error("dial succeeded after shutdown; listener should be closed")
	}

	// Both shards' decision logs exist, are flushed and parse as JSONL.
	total := 0
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", i))
		total += assertJSONLRecords(t, path, 0)
	}
	if total == 0 {
		t.Error("no tuner decisions were flushed to the shard logs")
	}
}

// assertJSONLRecords parses every line of path as a JSON object, failing
// on malformed lines (a torn write means a missing flush), and returns
// the record count, asserting it is at least min.
func assertJSONLRecords(t *testing.T, path string, min int) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("%s: malformed JSONL line %q: %v", path, line, err)
		}
		n++
	}
	if n < min {
		t.Fatalf("%s: %d records, want >= %d", path, n, min)
	}
	return n
}

// TestServerStatusShardTable: /status carries one row per shard with the
// tuner's (t, c, phase) populated.
func TestServerStatusShardTable(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:         3,
		Keys:           256,
		TunerMaxWindow: 40 * time.Millisecond,
		HTTPAddr:       "127.0.0.1:0",
	})
	tc := dialServer(t, s)
	deadline := time.Now().Add(300 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		tc.send(fmt.Sprintf("ADD %s 1", KeyName(i%256)))
		tc.recv()
	}

	st := s.Status()
	if len(st.ShardTable) != 3 {
		t.Fatalf("shard table has %d rows, want 3", len(st.ShardTable))
	}
	for _, row := range st.ShardTable {
		if row.T <= 0 || row.C <= 0 {
			t.Errorf("shard %d: (t,c) = (%d,%d), want both > 0", row.ID, row.T, row.C)
		}
		if row.Phase == "" {
			t.Errorf("shard %d: empty tuner phase", row.ID)
		}
		if row.Breaker != "closed" {
			t.Errorf("shard %d: breaker %q, want closed", row.ID, row.Breaker)
		}
	}
	if st.Served == 0 {
		t.Error("status reports zero served requests after traffic")
	}

	// The HTTP surface serves the same thing at /status.
	resp := httpGet(t, "http://"+s.HTTPAddr()+"/status")
	var remote Status
	if err := json.Unmarshal(resp, &remote); err != nil {
		t.Fatalf("/status: %v (body %.200s)", err, resp)
	}
	if len(remote.ShardTable) != 3 {
		t.Errorf("/status shard table has %d rows, want 3", len(remote.ShardTable))
	}
	// And /metrics exposes the per-shard bridged names.
	metrics := string(httpGet(t, "http://"+s.HTTPAddr()+"/metrics"))
	for _, want := range []string{
		"autopn_server_served_total",
		"autopn_server_shard0_current_t",
		"autopn_server_shard2_latency_ms",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// httpGet fetches a URL and returns the body, failing the test on any
// error or non-200 status.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return body
}

// TestServerConcurrentScrapesDuringDrain: /status and /metrics must stay
// servable and race-free while a graceful shutdown drains the server —
// the observability surface is most needed exactly when the server is
// dying, and the drain path touches the same counters, histograms, trace
// ring and DLQ the scrapes read.
func TestServerConcurrentScrapesDuringDrain(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:       2,
		Keys:         256,
		DisableTuner: true,
		HTTPAddr:     "127.0.0.1:0",
		DLQPath:      filepath.Join(t.TempDir(), "dlq.jsonl"),
		Trace:        TraceOptions{SampleRate: 1},
	})
	tc := dialServer(t, s)
	for i := 0; i < 50; i++ {
		if got := tc.roundTrip(fmt.Sprintf("ADD %s 1", KeyName(i%256))); !strings.HasPrefix(got, "VALUE") {
			t.Fatalf("ADD -> %q", got)
		}
	}
	base := "http://" + s.HTTPAddr()

	// Scrapers hammer every introspection surface until told to stop;
	// request errors are expected once the HTTP listener closes mid-drain,
	// but a wedge, race or panic is not.
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/status", "/metrics", "/debug/server/trace"} {
		for i := 0; i < 2; i++ {
			scrapers.Add(1)
			go func(url string) {
				defer scrapers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(url)
					if err != nil {
						return // listener closed by the drain
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}(base + path)
		}
	}
	// Direct Status() calls race the drain too (tests scrape in-process).
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Status()
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	rep := s.Shutdown(5 * time.Second)
	if !rep.Drained {
		t.Errorf("drain incomplete under concurrent scrapes: %+v", rep)
	}
	close(stop)
	scrapers.Wait()

	// The surface still answers in-process after shutdown.
	if st := s.Status(); st.Served == 0 {
		t.Error("post-shutdown Status() lost the served count")
	}
}

// TestDLQRecordAfterClose: records racing (or following) Close are counted
// but never crash or block; Close stays idempotent.
func TestDLQRecordAfterClose(t *testing.T) {
	dlq, err := NewDLQ(filepath.Join(t.TempDir(), "dlq.jsonl"))
	if err != nil {
		t.Fatalf("NewDLQ: %v", err)
	}
	dlq.Record(DeadLetter{Shard: 0, Op: "ADD", Key: "k", Reason: ErrCodeOverload})
	if err := dlq.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	dlq.Record(DeadLetter{Shard: 0, Op: "ADD", Key: "k", Reason: ErrCodeOverload})
	if c := dlq.Count(); c != 2 {
		t.Errorf("Count() = %d, want 2 (counters advance even after close)", c)
	}
	if err := dlq.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestServerShutdownRepliesShutdownToLateRequests: requests arriving on an
// established connection during drain get the typed shutdown error.
func TestServerShutdownRepliesShutdownToLateRequests(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:       1,
		Keys:         64,
		DisableTuner: true,
	})
	tc := dialServer(t, s)
	if got := tc.roundTrip("PING"); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}
	for _, sh := range s.shards {
		sh.draining.Store(true)
	}
	if got := tc.roundTrip("ADD " + KeyName(1) + " 1"); got != "ERR "+ErrCodeShutdown {
		t.Errorf("request during drain -> %q, want ERR %s", got, ErrCodeShutdown)
	}
}
