package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autopn/internal/chaos"
	"autopn/internal/obs"
)

// crashStop abandons the server with no graceful path: listeners closed,
// nothing flushed, no final snapshot, no CLEAN marker — the in-process
// stand-in for SIGKILL. WAL writer goroutines are left running (they hold
// no state the next Open depends on); only already-fsynced bytes count.
func (s *Server) crashStop() {
	s.accepting.Store(false)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.cancel()
	// Mark shutdown as done so the test cleanup's graceful Shutdown is a
	// no-op and cannot retroactively write the CLEAN marker a crash must
	// not leave.
	s.shutdownOnce.Do(func() {})
}

// durableOpts is the base configuration of the durability tests: small key
// space, no tuner noise, per-batch fsync.
func durableOpts(walDir string) Options {
	return Options{
		Shards:           2,
		Keys:             256,
		DisableTuner:     true,
		WALDir:           walDir,
		WALSyncPolicy:    "batch",
		SnapshotInterval: -1, // snapshot only where the test asks
	}
}

func TestDurabilityGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := startTestServer(t, durableOpts(dir))
	tc := dialServer(t, s1)
	// Expectations track operation order because the MADD's colocated keys
	// may overlap the fixed PUT/ADD keys.
	want := map[string]uint64{}
	if got := tc.roundTrip("PUT k000001 42"); got != "OK" {
		t.Fatalf("PUT = %q", got)
	}
	want["k000001"] = 42
	if got := tc.roundTrip("ADD k000002 7"); got != "VALUE 7" {
		t.Fatalf("ADD = %q", got)
	}
	if got := tc.roundTrip("ADD k000002 5"); got != "VALUE 12" {
		t.Fatalf("ADD = %q", got)
	}
	want["k000002"] = 12
	cols, _ := sameShardKeys(t, s1.ring, 256, 3)
	madd := fmt.Sprintf("MADD %s 1 %s 2 %s 3", cols[0], cols[1], cols[2])
	if got := tc.roundTrip(madd); got != "OK" {
		t.Fatalf("MADD = %q", got)
	}
	for i, k := range cols {
		want[k] += uint64(i + 1)
	}
	s1.Shutdown(5 * time.Second)

	s2 := startTestServer(t, durableOpts(dir))
	tc2 := dialServer(t, s2)
	for k, w := range want {
		if got := tc2.roundTrip("GET " + k); got != fmt.Sprintf("VALUE %d", w) {
			t.Errorf("after restart GET %s = %q, want VALUE %d", k, got, w)
		}
	}
	for _, row := range s2.Status().ShardTable {
		if row.WAL == nil || row.WAL.Recovery == nil {
			t.Fatalf("shard %d: no WAL recovery status", row.ID)
		}
		if !row.WAL.Recovery.CleanShutdown {
			t.Errorf("shard %d: recovery.CleanShutdown = false after graceful shutdown", row.ID)
		}
		if !row.WAL.Recovery.SkippedScan {
			t.Errorf("shard %d: CLEAN marker did not skip the tail scan", row.ID)
		}
		if row.WAL.Recovery.Epoch < 2 {
			t.Errorf("shard %d: recovery epoch = %d, want >= 2", row.ID, row.WAL.Recovery.Epoch)
		}
	}
}

func TestDurabilityCrashRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := startTestServer(t, durableOpts(dir))
	tc := dialServer(t, s1)
	// Every reply read below is an ack over a per-batch-fsync WAL: all of
	// it must survive the crash.
	sum := map[string]uint64{}
	for i := 0; i < 50; i++ {
		k := KeyName(i % 8)
		if got := tc.roundTrip(fmt.Sprintf("ADD %s %d", k, i+1)); !strings.HasPrefix(got, "VALUE ") {
			t.Fatalf("ADD %d = %q", i, got)
		}
		sum[k] += uint64(i + 1)
	}
	s1.crashStop()

	s2 := startTestServer(t, durableOpts(dir))
	tc2 := dialServer(t, s2)
	for k, w := range sum {
		if got := tc2.roundTrip("GET " + k); got != fmt.Sprintf("VALUE %d", w) {
			t.Errorf("after crash GET %s = %q, want VALUE %d", k, got, w)
		}
	}
	for _, row := range s2.Status().ShardTable {
		if row.WAL == nil || row.WAL.Recovery == nil {
			t.Fatalf("shard %d: no WAL recovery status", row.ID)
		}
		if row.WAL.Recovery.CleanShutdown {
			t.Errorf("shard %d: recovery.CleanShutdown = true after crash", row.ID)
		}
	}
}

func TestDurabilitySnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	s1 := startTestServer(t, opts)
	tc := dialServer(t, s1)
	for i := 0; i < 64; i++ {
		if got := tc.roundTrip(fmt.Sprintf("ADD %s 3", KeyName(i%16))); !strings.HasPrefix(got, "VALUE ") {
			t.Fatalf("ADD = %q", got)
		}
	}
	// Snapshot every shard directly (the ticker is off in tests).
	for _, sh := range s1.shards {
		sh.wal.doSnapshot(sh)
		if sh.wal.snapshots.Load() != 1 {
			t.Fatalf("shard %d: snapshot did not complete", sh.id)
		}
	}
	// More writes after the snapshot land in the retained tail.
	for i := 0; i < 32; i++ {
		if got := tc.roundTrip(fmt.Sprintf("ADD %s 5", KeyName(i%16))); !strings.HasPrefix(got, "VALUE ") {
			t.Fatalf("ADD = %q", got)
		}
	}
	s1.crashStop()

	s2 := startTestServer(t, durableOpts(dir))
	tc2 := dialServer(t, s2)
	// 64 ADD 3 over 16 keys = 4 each (12), then 32 ADD 5 over 16 keys = 2
	// each (10).
	for i := 0; i < 16; i++ {
		if got := tc2.roundTrip("GET " + KeyName(i)); got != "VALUE 22" {
			t.Errorf("GET %s = %q, want VALUE 22", KeyName(i), got)
		}
	}
	for _, row := range s2.Status().ShardTable {
		if row.WAL.Recovery.SnapshotLSN == 0 {
			t.Errorf("shard %d: recovery did not load a snapshot", row.ID)
		}
	}
}

func TestDurabilityWALErrorStickyAndBreaker(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.Breaker = BreakerOptions{FailureThreshold: 3, Cooldown: time.Minute}
	// Poison shard 0's log on its 3rd append; every later update on that
	// shard must fail fast with the typed WAL error until the breaker
	// takes over.
	opts.Injector = func(shard int) *chaos.Injector {
		if shard != 0 {
			return nil
		}
		return chaos.New(chaos.Options{Rules: []chaos.Rule{{
			Name:    "wal-die",
			Point:   chaos.PointWALAppend,
			Action:  chaos.ActAbort,
			Trigger: chaos.Trigger{After: 2, Times: 0},
		}}})
	}
	s := startTestServer(t, opts)
	tc := dialServer(t, s)

	// Find keys owned by shard 0.
	var keys []string
	for i := 0; i < 256 && len(keys) < 16; i++ {
		if s.ring.Lookup(KeyName(i)) == 0 {
			keys = append(keys, KeyName(i))
		}
	}
	sawWAL, sawBreaker := 0, 0
	for i, k := range keys {
		got := tc.roundTrip(fmt.Sprintf("ADD %s 1", k))
		switch got {
		case "ERR " + ErrCodeWAL:
			sawWAL++
		case "ERR " + ErrCodeBreakerOpen:
			sawBreaker++
		default:
			if i >= 2 {
				t.Fatalf("request %d after poison = %q, want ERR wal or ERR breaker-open", i, got)
			}
		}
	}
	if sawWAL == 0 {
		t.Error("no request was answered with the typed WAL error")
	}
	if sawBreaker == 0 {
		t.Error("sticky WAL errors did not trip the breaker")
	}
	st := s.shards[0].wal.status()
	if st.FailedAcks == 0 {
		t.Error("failed-ack counter did not advance")
	}
	if st.Errors == 0 {
		t.Error("wal error counter did not advance")
	}
}

// TestDurabilityConcurrentSnapshotAndLoad is the -race coverage for
// append-during-snapshot and replay-into-live-STM at the serving layer:
// snapshots race a concurrent update load, then a restart replays the
// resulting snapshot + tail mix and must land on exactly the acked sums.
func TestDurabilityConcurrentSnapshotAndLoad(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.SnapshotInterval = 10 * time.Millisecond
	s1 := startTestServer(t, opts)

	const workers = 4
	const perWorker = 200
	sums := make([]map[string]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		sums[w] = map[string]uint64{}
		tc := dialServer(t, s1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := KeyName((w*31 + i) % 64)
				d := uint64(i%7 + 1)
				if got := tc.roundTrip(fmt.Sprintf("ADD %s %d", k, d)); strings.HasPrefix(got, "VALUE ") {
					sums[w][k] += d
				}
			}
		}()
	}
	wg.Wait()
	// Let at least one snapshot land mid-stream, then crash.
	time.Sleep(30 * time.Millisecond)
	s1.crashStop()

	want := map[string]uint64{}
	for _, m := range sums {
		for k, v := range m {
			want[k] += v
		}
	}
	s2 := startTestServer(t, durableOpts(dir))
	tc := dialServer(t, s2)
	for k, v := range want {
		if got := tc.roundTrip("GET " + k); got != fmt.Sprintf("VALUE %d", v) {
			t.Errorf("after crash GET %s = %q, want VALUE %d", k, got, v)
		}
	}
}

func TestTunerWarmStartAfterRestart(t *testing.T) {
	dir := t.TempDir()
	decDir1 := t.TempDir()
	opts := durableOpts(dir)
	opts.DisableTuner = false
	opts.CoresPerShard = 2
	opts.TunerMaxWindow = 50 * time.Millisecond
	opts.DecisionLogDir = decDir1
	s1 := startTestServer(t, opts)
	// A little traffic so the tuners have something to chew on; the
	// checkpoint is written by the graceful shutdown either way.
	tc := dialServer(t, s1)
	for i := 0; i < 64; i++ {
		tc.roundTrip(fmt.Sprintf("ADD %s 1", KeyName(i%32)))
	}
	s1.Shutdown(5 * time.Second)

	decDir2 := t.TempDir()
	opts2 := durableOpts(dir)
	opts2.DisableTuner = false
	opts2.CoresPerShard = 2
	opts2.TunerMaxWindow = 50 * time.Millisecond
	opts2.DecisionLogDir = decDir2
	s2 := startTestServer(t, opts2)

	// Every shard must report a warm start, and its decision ring must
	// show the recovery record instead of a cold initial-sampling launch.
	deadline := time.Now().Add(5 * time.Second)
	for _, sh := range s2.shards {
		if !sh.wal.recovery.WarmStart {
			t.Fatalf("shard %d: no tuner checkpoint found on restart", sh.id)
		}
		found := false
		for !found && time.Now().Before(deadline) {
			for _, d := range sh.ring.Last(16) {
				if d.Kind == obs.KindRecovery {
					found = true
					break
				}
			}
			if !found {
				time.Sleep(10 * time.Millisecond)
			}
		}
		if !found {
			t.Errorf("shard %d: no %q decision after warm start", sh.id, obs.KindRecovery)
		}
	}
	s2.Shutdown(5 * time.Second)
}
