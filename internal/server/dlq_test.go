package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestDLQRecordAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dlq.jsonl")
	dlq, err := NewDLQ(path)
	if err != nil {
		t.Fatalf("NewDLQ: %v", err)
	}
	dlq.Record(DeadLetter{Shard: 1, Op: "ADD", Key: "k000001", Reason: ErrCodeOverload})
	dlq.Record(DeadLetter{Shard: 0, Op: "GET", Key: "k000002", Reason: ErrCodeTimeout})
	if c := dlq.Count(); c != 2 {
		t.Errorf("Count() = %d, want 2", c)
	}
	if err := dlq.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2: %q", len(lines), string(data))
	}
	var dl DeadLetter
	if err := json.Unmarshal([]byte(lines[0]), &dl); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if dl.Shard != 1 || dl.Op != "ADD" || dl.Reason != ErrCodeOverload {
		t.Errorf("record = %+v", dl)
	}
	if dl.Time.IsZero() {
		t.Error("dead letter was not timestamped")
	}
}

// TestDLQNilSafe: a nil DLQ (no path configured) absorbs records without
// panicking — callers never need to nil-check.
func TestDLQNilSafe(t *testing.T) {
	var dlq *DLQ
	dlq.Record(DeadLetter{Shard: 0, Op: "ADD", Key: "k", Reason: ErrCodeOverload})
	if c := dlq.Count(); c != 0 {
		t.Errorf("nil DLQ Count() = %d, want 0", c)
	}
	if err := dlq.Err(); err != nil {
		t.Errorf("nil DLQ Err() = %v", err)
	}
	if err := dlq.Close(); err != nil {
		t.Errorf("nil DLQ Close() = %v", err)
	}
}

func TestDLQConcurrentRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dlq.jsonl")
	dlq, err := NewDLQ(path)
	if err != nil {
		t.Fatalf("NewDLQ: %v", err)
	}
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				dlq.Record(DeadLetter{Shard: g, Op: "ADD", Key: "k", Reason: ErrCodeOverload})
			}
		}(g)
	}
	wg.Wait()
	if c := dlq.Count(); c != goroutines*each {
		t.Errorf("Count() = %d, want %d", c, goroutines*each)
	}
	if err := dlq.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != goroutines*each {
		t.Errorf("%d lines, want %d", len(lines), goroutines*each)
	}
	// Interleaved writes must not tear lines.
	for _, line := range lines {
		var dl DeadLetter
		if err := json.Unmarshal([]byte(line), &dl); err != nil {
			t.Fatalf("torn JSONL line %q: %v", line, err)
		}
	}
}
