package server

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: two rings built from the same parameters route
// every key identically — the property the load generator relies on to
// colocate MADD batches client-side.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(8, 128)
	b := NewRing(8, 128)
	for i := 0; i < 4096; i++ {
		k := KeyName(i)
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("ring not deterministic: key %s -> %d vs %d", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

func TestRingLookupInRange(t *testing.T) {
	r := NewRing(5, 32)
	for i := 0; i < 2048; i++ {
		s := r.Lookup(KeyName(i))
		if s < 0 || s >= 5 {
			t.Fatalf("Lookup(%s) = %d, out of [0,5)", KeyName(i), s)
		}
	}
}

// TestRingDistributionSkew: with enough virtual nodes, every shard's key
// share stays within a constant factor of the mean — the skew bound that
// keeps per-shard tuners seeing comparable load.
func TestRingDistributionSkew(t *testing.T) {
	const (
		shards = 8
		vnodes = 128
		keys   = 16384
	)
	r := NewRing(shards, vnodes)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(KeyName(i))]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.45 || ratio > 1.75 {
			t.Errorf("shard %d owns %d keys (%.2fx mean %.0f); want within [0.45, 1.75]x: %v",
				s, c, ratio, mean, counts)
		}
		if c == 0 {
			t.Errorf("shard %d owns no keys: %v", s, counts)
		}
	}
}

// TestRingMinimalRemapping: growing the ring from N to N+1 shards must
// only move keys TO the new shard — keys that stay in the old shard set
// keep their placement — and the moved fraction stays near 1/(N+1), the
// consistent-hashing guarantee that distinguishes the ring from modulo
// hashing.
func TestRingMinimalRemapping(t *testing.T) {
	const (
		before = 7
		after  = 8
		vnodes = 128
		keys   = 16384
	)
	old := NewRing(before, vnodes)
	grown := NewRing(after, vnodes)
	moved := 0
	for i := 0; i < keys; i++ {
		k := KeyName(i)
		was, is := old.Lookup(k), grown.Lookup(k)
		if was == is {
			continue
		}
		if is != after-1 {
			t.Fatalf("key %s moved %d -> %d, but only moves to the new shard %d are allowed",
				k, was, is, after-1)
		}
		moved++
	}
	frac := float64(moved) / keys
	// Expected share is 1/8 = 12.5%; allow generous slack but catch the
	// ~87.5% a modulo scheme would reshuffle.
	if frac > 0.30 {
		t.Errorf("grown ring remapped %.1f%% of keys; want <= 30%%", 100*frac)
	}
	if moved == 0 {
		t.Error("grown ring moved no keys; the new shard would stay empty")
	}
}

// TestRingVNodeAccessors covers the trivial accessors so regressions in
// defaulting show up.
func TestRingVNodeAccessors(t *testing.T) {
	r := NewRing(3, 0) // 0 -> defaultVNodes
	if r.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", r.Shards())
	}
	if r.VNodes() != defaultVNodes {
		t.Errorf("VNodes() = %d, want default %d", r.VNodes(), defaultVNodes)
	}
	if got, want := KeyName(42), fmt.Sprintf("k%06d", 42); got != want {
		t.Errorf("KeyName(42) = %q, want %q", got, want)
	}
}
