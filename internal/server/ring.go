// Package server is the sharded transactional serving layer: a
// network-facing key/value store built on the PN-STM with N independent
// STM shards behind consistent-hash key routing, a per-shard autopn tuner
// instance (each shard converges its own (t, c)), and an admission-control
// front door — bounded per-shard queues, load shedding with a typed
// overload reply, a circuit breaker per shard, and a dead-letter log for
// shed and timed-out requests. See docs/SERVER.md.
package server

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per shard when Options.VNodes is
// zero. 64 points per shard keeps the worst-case key-ownership skew of a
// handful of shards within a few tens of percent of the mean (asserted by
// the ring unit tests) while the ring stays small enough to rebuild
// instantly.
const defaultVNodes = 64

// Ring is a consistent-hash ring mapping keys to shard indices. Each shard
// owns VNodes points on a 64-bit hash circle; a key belongs to the shard
// owning the first point at or after the key's hash (wrapping at the top).
// The construction is deterministic — the same (shards, vnodes) pair
// always yields the same ring — so the load generator can rebuild the
// server's routing client-side to colocate multi-key transactions.
//
// Consistent hashing's defining property, which the unit tests pin down:
// growing the ring from N to N+1 shards only moves keys *to* the new
// shard; no key changes hands between pre-existing shards.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for the given shard count (>= 1). vnodes <= 0
// selects the default of 64 points per shard.
func NewRing(shards, vnodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashString(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards returns the shard count the ring routes over.
func (r *Ring) Shards() int { return r.shards }

// VNodes returns the per-shard virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Lookup returns the shard owning key.
func (r *Ring) Lookup(key string) int {
	h := hashString(key)
	// First point with hash >= h, wrapping to points[0] past the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hashString is FNV-1a 64 followed by a 64-bit finalizer mix. It is stable
// across processes (unlike maphash), which is what lets the load generator
// reconstruct the server's routing. The finalizer matters: raw FNV-1a
// diffuses a trailing-byte change by only ~2^47 on the 2^64 circle (one
// xor plus one multiply by the ~2^40 prime), so sequential key names like
// k000041/k000042 land in contiguous clumps between ring points and skew
// shard ownership badly; the avalanche mix spreads them uniformly.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// KeyName renders the canonical name of the i-th preloaded key. The server
// preloads its key space at startup and the load generator addresses the
// same names, so the two agree by construction.
func KeyName(i int) string { return fmt.Sprintf("k%06d", i) }
