package server

import (
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The wire protocol is newline-delimited text, one request per line, one
// response line per request, answered in order (clients may pipeline):
//
//	PING                        -> PONG
//	GET <key>                   -> VALUE <n>
//	PUT <key> <n>               -> OK
//	ADD <key> <delta>           -> VALUE <new>
//	MADD <k1> <d1> [<k2> <d2>]… -> OK        (all keys on one shard; the
//	                                          increments run as parallel
//	                                          nested transactions)
//
// A request line may carry an optional leading trace hint
//
//	t=<hex-id>[@<unix-nanos>] <request…>
//
// which, while server-side tracing is enabled, forces the request to be
// sampled and records the client's own ID (and send timestamp, if given)
// in its trace — the hook the load generator uses to extend a traced
// request's timeline back to the worker that issued it. With tracing
// disabled the hint is parsed and discarded.
//
// Errors are "ERR <code>" with machine-readable codes; ErrCodeOverload is
// the typed load-shedding reply the acceptance gate asserts on.
const (
	// ErrCodeOverload is replied when the target shard's admission queue is
	// full: the request was shed, not queued.
	ErrCodeOverload = "overload"
	// ErrCodeBreakerOpen is replied while the target shard's circuit
	// breaker is open (or its half-open probe quota is taken).
	ErrCodeBreakerOpen = "breaker-open"
	// ErrCodeTimeout is replied when a queued request expired before a
	// worker finished it.
	ErrCodeTimeout = "timeout"
	// ErrCodeShutdown is replied to requests arriving while the server
	// drains.
	ErrCodeShutdown = "shutdown"
	// ErrCodeUnknownKey is replied for keys outside the preloaded space.
	ErrCodeUnknownKey = "unknown-key"
	// ErrCodeCrossShard is replied to an MADD whose keys hash to more than
	// one shard (cross-shard transactions are not supported).
	ErrCodeCrossShard = "cross-shard"
	// ErrCodeBadRequest is replied to unparseable lines.
	ErrCodeBadRequest = "bad-request"
	// ErrCodeWAL is replied when the shard's write-ahead log failed to
	// make a committed update durable: the transaction committed in
	// memory, but the ack contract (acked writes survive a crash) could
	// not be honored. WAL errors are sticky — every subsequent update on
	// the shard gets this reply and feeds the breaker until restart.
	ErrCodeWAL = "wal"
)

// opKind is the parsed operation.
type opKind uint8

const (
	opPing opKind = iota
	opGet
	opPut
	opAdd
	opMAdd
)

var opNames = [...]string{"PING", "GET", "PUT", "ADD", "MADD"}

func (k opKind) String() string { return opNames[k] }

// request is one parsed, routed protocol request flowing through a shard's
// admission queue. reply has capacity 1 and receives exactly one response
// line; replied arbitrates between the worker, the deadline timer and the
// shedding paths so that exactly one of them answers.
type request struct {
	kind  opKind
	key   string   // primary key (GET/PUT/ADD; first key of MADD)
	arg   uint64   // PUT value / ADD delta
	keys  []string // MADD keys
	args  []uint64 // MADD deltas
	enq   time.Time
	timer atomic.Pointer[time.Timer] // deadline watchdog; armed on admission
	reply chan string

	// tr is the request's trace record; nil for the unsampled majority.
	tr *reqTrace
	// clientTraceID/clientSend carry a parsed trace hint until the
	// sampling decision is made (reader goroutine only).
	clientTraceID uint64
	clientSend    time.Time

	replied atomic.Bool
}

// finish delivers resp as the request's single reply. It returns false
// when someone (the deadline timer, a shedding path) already replied.
func (r *request) finish(resp string) bool {
	if !r.replied.CompareAndSwap(false, true) {
		return false
	}
	if t := r.timer.Load(); t != nil {
		t.Stop()
	}
	r.reply <- resp
	return true
}

// armDeadline installs the deadline watchdog after the request was
// admitted to a queue. The shed path never pays for a timer this way; the
// replied re-check closes the race where a worker finished the request
// between enqueue and arming.
func (r *request) armDeadline(d time.Duration, onExpiry func()) {
	t := time.AfterFunc(d, onExpiry)
	r.timer.Store(t)
	if r.replied.Load() {
		t.Stop()
	}
}

// parseRequest parses one protocol line. On failure it returns a non-empty
// error code.
func parseRequest(line string) (*request, string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, ErrCodeBadRequest
	}
	req := &request{reply: make(chan string, 1)}
	if strings.HasPrefix(fields[0], "t=") {
		hint := fields[0][2:]
		fields = fields[1:]
		if len(fields) == 0 {
			return nil, ErrCodeBadRequest
		}
		idPart, nsPart, hasNS := strings.Cut(hint, "@")
		id, err := strconv.ParseUint(idPart, 16, 64)
		if err != nil || id == 0 {
			return nil, ErrCodeBadRequest
		}
		req.clientTraceID = id
		if hasNS {
			ns, err := strconv.ParseInt(nsPart, 10, 64)
			if err != nil {
				return nil, ErrCodeBadRequest
			}
			req.clientSend = time.Unix(0, ns)
		}
	}
	switch strings.ToUpper(fields[0]) {
	case "PING":
		req.kind = opPing
	case "GET":
		if len(fields) != 2 {
			return nil, ErrCodeBadRequest
		}
		req.kind, req.key = opGet, fields[1]
	case "PUT", "ADD":
		if len(fields) != 3 {
			return nil, ErrCodeBadRequest
		}
		n, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, ErrCodeBadRequest
		}
		req.kind, req.key, req.arg = opPut, fields[1], n
		if strings.ToUpper(fields[0]) == "ADD" {
			req.kind = opAdd
		}
	case "MADD":
		pairs := fields[1:]
		if len(pairs) == 0 || len(pairs)%2 != 0 {
			return nil, ErrCodeBadRequest
		}
		req.kind = opMAdd
		for i := 0; i < len(pairs); i += 2 {
			d, err := strconv.ParseUint(pairs[i+1], 10, 64)
			if err != nil {
				return nil, ErrCodeBadRequest
			}
			req.keys = append(req.keys, pairs[i])
			req.args = append(req.args, d)
		}
		req.key = req.keys[0]
	default:
		return nil, ErrCodeBadRequest
	}
	return req, ""
}

// Response constructors.
func respValue(n uint64) string  { return "VALUE " + strconv.FormatUint(n, 10) }
func respErr(code string) string { return "ERR " + code }

const (
	respOK   = "OK"
	respPong = "PONG"
)
