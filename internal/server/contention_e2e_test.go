package server_test

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autopn/internal/obs"
	"autopn/internal/server"
	"autopn/internal/server/loadgen"
)

// TestContentionSmoke is the contention-scheduler goodput gate behind
// `make contention-smoke` and the contention-smoke CI job. It drives an
// identical hot-set workload — most writes are multi-key MADD transactions
// whose primaries concentrate on a small hot set and whose batches span
// the whole (small) key space, the workload shape where optimistic retry
// storms burn the most work per abort — against two
// identically configured servers, scheduler off and scheduler on, and
// asserts that
//
//   - scheduler-on goodput is >= 1.25x scheduler-off goodput (the
//     acceptance criterion: conflict-domain lanes convert wasted retry
//     work into committed work);
//   - the scheduler actually engaged (hot boxes promoted, transactions
//     admitted through lanes);
//   - promotion decisions are in the persisted decision log.
//
// The tuner is disabled and the worker pool pinned on both runs so the
// only degree of freedom between them is the scheduler.
func TestContentionSmoke(t *testing.T) {
	if os.Getenv("CONTENTION_SMOKE") == "" {
		t.Skip("set CONTENTION_SMOKE=1 (or run `make contention-smoke`) to run the contention smoke")
	}
	if testing.Short() {
		t.Skip("contention smoke skipped in short mode")
	}
	duration := 8 * time.Second
	if v := os.Getenv("LOADGEN_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("LOADGEN_DURATION=%q: %v", v, err)
		}
		duration = d
	}
	artifacts := os.Getenv("CONTENTION_SMOKE_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}

	// The hot-set scenario: one shard (so MADD batches colocate), a small
	// key space, ~all traffic writes, most writes MADDs spanning the whole
	// key space — so every pair of concurrent MADDs conflicts and every
	// aborted attempt wastes a full fan-out of parallel nested children.
	// The worker pool deliberately dwarfs what the conflict structure can
	// use, which is exactly what pushes the optimistic run into a deep
	// retry storm (~45% of attempts aborted) that the single-lane valve
	// converts back into committed work.
	const (
		keys    = 32
		hotKeys = 4
		workers = 32
	)
	runOnce := func(name string, schedOn bool) (loadgen.Report, server.Status) {
		decisionDir := filepath.Join(artifacts, "decisions-"+name)
		s, err := server.New(server.Options{
			Shards:          1,
			Keys:            keys,
			WorkersPerShard: workers,
			QueueDepth:      256,
			RequestTimeout:  time.Second,
			DisableTuner:    true,
			DecisionLogDir:  decisionDir,
			Sched: server.SchedOptions{
				Enabled: schedOn,
				// One lane: with MADDs spanning the whole hot set, any two
				// concurrent hot writes conflict, so the useful policy is a
				// single global valve, not per-domain lanes.
				Lanes: 1,
				// Conflict attribution spreads across the whole key space
				// (every MADD spans it), so the per-box share bar is low; a
				// short controller tick promotes within the run's first slice.
				PromoteShare:     0.02,
				PromoteMinAborts: 2,
				Interval:         50 * time.Millisecond,
				// Near-zero decay: once the valve engages, aborts collapse,
				// and any real cooling would demote the hot set and let the
				// retry storm resume for a tick. 0.99 keeps attribution warm
				// for the whole run.
				Decay: 0.99,
				// Generous bound: a parked transaction that bypasses the lane
				// runs optimistically and re-seeds the storm, so in this
				// scenario waiting is always cheaper than bypassing.
				MaxWait: 20 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatalf("%s: server.New: %v", name, err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("%s: server.Start: %v", name, err)
		}
		defer s.Shutdown(10 * time.Second)

		rep, err := loadgen.Run(t.Context(), loadgen.Options{
			Addr:        s.Addr(),
			Rate:        80000,
			Duration:    duration,
			MaxInFlight: 512,
			Keys:        keys,
			HotKeys:     hotKeys,
			HotFrac:     0.9,
			ReadFrac:    0.05,
			MAddFrac:    0.9,
			MAddKeys:    32,
			Shards:      1,
			Seed:        7,
		})
		if err != nil {
			t.Fatalf("%s: loadgen: %v", name, err)
		}
		writeReport(t, artifacts, "report-"+name+".json", rep)
		status := s.Status()
		writeReport(t, artifacts, "status-"+name+".json", status)
		s.Shutdown(10 * time.Second) // flush the decision log before parsing
		return rep, status
	}

	repOff, _ := runOnce("sched-off", false)
	repOn, statusOn := runOnce("sched-on", true)
	if repOff.OK == 0 || repOn.OK == 0 {
		t.Fatalf("zero goodput: off %d ok, on %d ok", repOff.OK, repOn.OK)
	}
	ratio := repOn.Goodput / repOff.Goodput
	t.Logf("goodput: sched-off %.0f/s, sched-on %.0f/s (%.2fx)", repOff.Goodput, repOn.Goodput, ratio)

	// The scheduler must have engaged, not won by accident.
	sched := statusOn.ShardTable[0].Sched
	if sched == nil {
		t.Fatalf("sched-on run reports no scheduler stats")
	}
	t.Logf("scheduler: %d promotions, %d admitted, %d bypass-wait, %d domains",
		sched.Promotions, sched.Admitted, sched.BypassWait, sched.Domains)
	if sched.Promotions == 0 {
		t.Errorf("no hot boxes were promoted")
	}
	if sched.Admitted == 0 {
		t.Errorf("no transactions were admitted through lanes")
	}

	// Promotion decisions are in the persisted per-shard log.
	promotes := 0
	f, err := os.Open(filepath.Join(artifacts, "decisions-sched-on", "shard-0.jsonl"))
	if err != nil {
		t.Fatalf("decision log: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d obs.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad decision line %q: %v", sc.Text(), err)
		}
		if d.Kind == obs.KindSchedPromote {
			promotes++
		}
	}
	if promotes == 0 {
		t.Errorf("no %s decisions in the persisted log", obs.KindSchedPromote)
	}

	if ratio < 1.25 {
		t.Fatalf("scheduler-on goodput %.2fx scheduler-off, want >= 1.25x", ratio)
	}
}
