package server

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autopn/internal/obs"
	stmtrace "autopn/internal/stm/trace"
)

// waitCond polls cond until it holds or fails the test.
func waitCond(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchedControllerRecordsPromoteDemote drives the promotion feedback
// loop deterministically: conflicts recorded into a shard's hot-box table
// cross the promotion threshold at the next controller tick, the decayed
// table cools the domain once the conflicts stop, and both transitions
// land in the shard's decision trail — the in-memory ring behind /status
// and the persisted JSONL log (which must exist even with the tuner
// disabled).
func TestSchedControllerRecordsPromoteDemote(t *testing.T) {
	dir := t.TempDir()
	s := startTestServer(t, Options{
		Shards:         1,
		Keys:           16,
		DisableTuner:   true,
		DecisionLogDir: dir,
		Sched: SchedOptions{
			Enabled:          true,
			PromoteShare:     0.5,
			PromoteMinAborts: 4,
			Interval:         20 * time.Millisecond,
		},
	})
	sh := s.shards[0]
	if sh.sched == nil {
		t.Fatalf("scheduler not attached")
	}
	box := sh.store[KeyName(0)]
	key := box.ConflictKey()

	// One hot box with 100% abort share, comfortably past PromoteMinAborts.
	for i := 0; i < 16; i++ {
		sh.tracer.RecordConflict(stmtrace.ReasonTopValidation, key, KeyName(0))
	}
	waitCond(t, "hot box promoted", func() bool { return sh.sched.Snapshot().Promotions >= 1 })

	// No further conflicts: per-tick decay cools the domain below the
	// demotion threshold and the controller demotes it.
	waitCond(t, "cooled domain demoted", func() bool { return sh.sched.Snapshot().Demotions >= 1 })

	// Both transitions are in the /status decision tail...
	st := sh.status()
	if st.Sched == nil {
		t.Fatalf("shard status missing sched block")
	}
	kinds := map[string]bool{}
	for _, d := range sh.ring.Last(16) {
		kinds[d.Kind] = true
	}
	if !kinds[obs.KindSchedPromote] || !kinds[obs.KindSchedDemote] {
		t.Fatalf("decision ring kinds = %v, want both %s and %s", kinds, obs.KindSchedPromote, obs.KindSchedDemote)
	}

	// ...and in the persisted JSONL trail after shutdown flushes it.
	s.Shutdown(5 * time.Second)
	f, err := os.Open(filepath.Join(dir, "shard-0.jsonl"))
	if err != nil {
		t.Fatalf("decision log: %v", err)
	}
	defer f.Close()
	var gotPromote, gotDemote bool
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var d obs.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("bad decision line %q: %v", sc.Text(), err)
		}
		switch d.Kind {
		case obs.KindSchedPromote:
			gotPromote = true
			if d.Note == "" {
				t.Errorf("promote decision has empty note")
			}
		case obs.KindSchedDemote:
			gotDemote = true
		}
	}
	if !gotPromote || !gotDemote {
		t.Fatalf("persisted log: promote=%v demote=%v, want both", gotPromote, gotDemote)
	}
}

// TestSchedHotDomainServesWrites: with a promoted hot domain, writes to
// the hot key still execute correctly through the lane (request path →
// hint → Admit → serial lane → commit).
func TestSchedHotDomainServesWrites(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:       1,
		Keys:         16,
		DisableTuner: true,
		Sched: SchedOptions{
			Enabled:          true,
			PromoteShare:     0.5,
			PromoteMinAborts: 4,
			Interval:         20 * time.Millisecond,
		},
	})
	sh := s.shards[0]
	key := sh.store[KeyName(0)].ConflictKey()
	for i := 0; i < 16; i++ {
		sh.tracer.RecordConflict(stmtrace.ReasonTopValidation, key, KeyName(0))
	}
	waitCond(t, "hot box promoted", func() bool { return sh.sched.Snapshot().Promotions >= 1 })

	tc := dialServer(t, s)
	const n = 32
	for i := 0; i < n; i++ {
		tc.send("ADD " + KeyName(0) + " 1")
	}
	for i := 0; i < n; i++ {
		if got := tc.recv(); got == "" || got[0] == 'E' {
			t.Fatalf("ADD %d failed: %q", i, got)
		}
	}
	// Workers execute pipelined increments out of order, so only the final
	// committed value is deterministic.
	tc.send("GET " + KeyName(0))
	if got, want := tc.recv(), "VALUE 32"; got != want {
		t.Fatalf("final value = %q, want %q", got, want)
	}
	if st := sh.sched.Snapshot(); st.Admitted == 0 {
		t.Fatalf("no lane admissions for hot-key writes: %+v", st)
	}
}
