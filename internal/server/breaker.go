package server

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits all requests (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects all requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; their
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

func (s BreakerState) String() string {
	if int(s) < len(breakerStateNames) {
		return breakerStateNames[s]
	}
	return "unknown"
}

// BreakerOptions configures a circuit breaker. The zero value is completed
// with defaults.
type BreakerOptions struct {
	// FailureThreshold is how many *consecutive* failures trip a closed
	// breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before letting probes
	// through (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes is how many probe requests a half-open breaker admits
	// concurrently, and how many consecutive probe successes close it
	// (default 1).
	HalfOpenProbes int
	// Now replaces the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// Breaker is a per-shard circuit breaker: a wedged or pathologically slow
// shard (stalled combiner, livelocked commit path) trips it open after
// FailureThreshold consecutive request timeouts, converting every further
// arrival into an immediate typed rejection instead of another queued
// casualty. After Cooldown it half-opens and admits HalfOpenProbes probes;
// consecutive probe successes close it, any probe failure re-opens it.
//
// The classic closed → open → half-open state machine; all methods are
// safe for concurrent use.
type Breaker struct {
	mu   sync.Mutex
	opts BreakerOptions

	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	inflight  int // admitted probes in flight while half-open
	openedAt  time.Time

	opens uint64 // cumulative closed/half-open -> open transitions
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Second
	}
	if opts.HalfOpenProbes <= 0 {
		opts.HalfOpenProbes = 1
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{opts: opts}
}

// Allow reports whether a request may proceed. Open breakers reject until
// the cooldown elapses, then transition to half-open; half-open breakers
// admit at most HalfOpenProbes probes at a time. Every admitted request
// must be matched by exactly one ReportSuccess or ReportFailure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		b.inflight = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.inflight >= b.opts.HalfOpenProbes {
			return false
		}
		b.inflight++
		return true
	}
}

// ReportSuccess records a successful request. In half-open it counts
// toward closing; in closed it clears the consecutive-failure streak.
func (b *Breaker) ReportSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		b.successes++
		if b.successes >= b.opts.HalfOpenProbes {
			b.state = BreakerClosed
			b.failures = 0
		}
	}
}

// ReportFailure records a failed (timed-out or errored) request. In closed
// it counts toward the trip threshold; in half-open it re-opens
// immediately.
func (b *Breaker) ReportFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.opts.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		b.trip()
	case BreakerOpen:
		// Late failure of a request admitted before the trip; already open.
	}
}

// trip moves to open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.opts.Now()
	b.failures = 0
	b.successes = 0
	b.opens++
}

// Forget cancels an admission that never executed (e.g. a request shed at
// the full queue right after Allow): it undoes half-open probe accounting
// without biasing the closed-state failure streak either way.
func (b *Breaker) Forget() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.inflight > 0 {
		b.inflight--
	}
}

// State returns the breaker's current position. An open breaker whose
// cooldown has elapsed still reports open until the next Allow transitions
// it — State is a pure observer.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of trips to open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
