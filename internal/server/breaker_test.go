package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold, probes int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerOptions{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		HalfOpenProbes:   probes,
		Now:              clk.Now,
	})
	return b, clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, 1, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.ReportFailure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.ReportFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3/3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens() = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, 1, time.Second)
	b.ReportFailure()
	b.ReportFailure()
	b.ReportSuccess() // streak broken
	b.ReportFailure()
	b.ReportFailure()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed: failures were not consecutive", b.State())
	}
	b.ReportFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after 3 consecutive failures", b.State())
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	b, clk := newTestBreaker(1, 1, time.Second)
	b.ReportFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("admitted during cooldown")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// The probe quota is taken; a second concurrent request is rejected.
	if b.Allow() {
		t.Fatal("half-open breaker exceeded its probe quota")
	}
	b.ReportSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, 1, 500*time.Millisecond)
	b.ReportFailure()
	clk.Advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe rejected after cooldown")
	}
	b.ReportFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens() = %d, want 2", b.Opens())
	}
	// The cooldown restarts from the re-trip.
	if b.Allow() {
		t.Fatal("admitted right after re-trip")
	}
	clk.Advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe rejected after second cooldown")
	}
}

func TestBreakerMultiProbeQuota(t *testing.T) {
	b, clk := newTestBreaker(1, 3, time.Second)
	b.ReportFailure()
	clk.Advance(time.Second)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("probe %d rejected within quota", i)
		}
	}
	if b.Allow() {
		t.Fatal("fourth probe admitted past quota of 3")
	}
	// Two successes are not enough to close with HalfOpenProbes = 3.
	b.ReportSuccess()
	b.ReportSuccess()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after 2/3 successes", b.State())
	}
	b.ReportSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after 3/3 successes", b.State())
	}
}

// TestBreakerForget: a shed request admitted by Allow but never executed
// must release its half-open probe slot without counting as a success.
func TestBreakerForget(t *testing.T) {
	b, clk := newTestBreaker(1, 1, time.Second)
	b.ReportFailure()
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Forget()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open (Forget must not close)", b.State())
	}
	// The slot is free again for a real probe.
	if !b.Allow() {
		t.Fatal("probe slot not released by Forget")
	}
	b.ReportSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestBreakerForgetInClosedStateIsNeutral: Forget in the closed state must
// not touch the failure streak (the bug it exists to avoid: a shed storm
// resetting the streak and masking real failures).
func TestBreakerForgetInClosedStateIsNeutral(t *testing.T) {
	b, _ := newTestBreaker(2, 1, time.Second)
	b.ReportFailure()
	b.Forget() // must NOT reset the streak
	b.ReportFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open: Forget reset the failure streak", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, _ := newTestBreaker(5, 2, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.ReportFailure()
					} else {
						b.ReportSuccess()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// No assertion beyond absence of races and a sane final state.
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("invalid final state %v", s)
	}
}

func TestBreakerStateString(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed":    BreakerClosed,
		"open":      BreakerOpen,
		"half-open": BreakerHalfOpen,
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if BreakerState(99).String() != "unknown" {
		t.Errorf("out-of-range state String() = %q, want unknown", BreakerState(99).String())
	}
}
