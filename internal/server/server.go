package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autopn"
	"autopn/internal/chaos"
	"autopn/internal/obs"
	"autopn/internal/sched"
	"autopn/internal/stm"
	stmtrace "autopn/internal/stm/trace"
	"autopn/internal/wal"
)

// Options configures a Server. The zero value is completed with defaults
// sized for a small host; production deployments should set Shards and
// CoresPerShard explicitly.
type Options struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// HTTPAddr, if non-empty, serves the obs introspection surface
	// (/metrics, /status with the per-shard table, /debug/pprof).
	HTTPAddr string

	// Shards is the number of independent STM shards (default 4).
	Shards int
	// VNodes is the consistent-hash virtual-node count per shard
	// (default 64).
	VNodes int
	// Keys is the preloaded key-space size; keys are named KeyName(0) …
	// KeyName(Keys-1) (default 16384).
	Keys int

	// QueueDepth bounds each shard's admission queue; a full queue sheds
	// with ErrCodeOverload (default 256).
	QueueDepth int
	// WorkersPerShard is each shard's executor pool size (default
	// CoresPerShard; the tuner's actuator throttles actual STM admission
	// below this).
	WorkersPerShard int
	// RequestTimeout bounds a request from admission to reply; expired
	// requests get ErrCodeTimeout and feed the circuit breaker
	// (default 1s).
	RequestTimeout time.Duration
	// Breaker configures the per-shard circuit breakers.
	Breaker BreakerOptions

	// CoresPerShard is each shard tuner's core budget n ((t,c) with
	// t*c <= n; default max(2, NumCPU/Shards)).
	CoresPerShard int
	// DisableTuner runs the shards without tuners (tests); admission is
	// then unthrottled.
	DisableTuner bool
	// TunerMaxWindow bounds a tuner measurement window (default 1s).
	TunerMaxWindow time.Duration
	// Retune keeps each shard's tuner watching for workload change after
	// convergence (CUSUM) and re-tuning (default off; the server command
	// turns it on).
	Retune bool
	// Seed derives per-shard tuner seeds (default 1).
	Seed uint64

	// WALDir, if non-empty, enables per-shard durability: shard i logs
	// committed mutations to a write-ahead log under WALDir/shard-<i>/,
	// snapshots periodically, and on New replays snapshot + log tail into
	// its store before any traffic is admitted. The same directory holds
	// each shard's tuner checkpoint, so a recovered shard warm-starts its
	// tuner at the pre-crash last-known-good (t, c). See
	// docs/DURABILITY.md.
	WALDir string
	// WALSyncPolicy selects when appends are fsynced: "batch" (fsync
	// before every ack — the durable default), "interval" (timer-driven,
	// bounded loss window) or "none".
	WALSyncPolicy string
	// WALSyncInterval is the fsync period under the "interval" policy
	// (default 50ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes caps a WAL segment before rotation (default 8MiB).
	WALSegmentBytes int64
	// SnapshotInterval is the period between per-shard snapshots; each
	// snapshot truncates the log behind it and checkpoints the tuner
	// (default 10s; negative disables periodic snapshots).
	SnapshotInterval time.Duration

	// DecisionLogDir, if non-empty, persists each shard's tuning decision
	// trail as DIR/shard-<i>.jsonl.
	DecisionLogDir string
	// DLQPath, if non-empty, writes the dead-letter log (shed, timed-out,
	// breaker-rejected, shutdown-dropped requests) as JSONL.
	DLQPath string

	// Injector, if non-nil, arms shard i's STM with Injector(i) — the
	// chaos hook that makes breaker and shedding paths testable
	// deterministically. Nil injectors disable chaos for that shard.
	Injector func(shard int) *chaos.Injector
	// LockFreeCommit selects the lock-free STM commit path per shard.
	LockFreeCommit bool

	// Sched configures the per-shard contention-aware scheduler (see
	// sched.go and docs/SCHEDULER.md); the zero value keeps it off.
	Sched SchedOptions

	// Trace configures end-to-end request tracing (see trace.go). The
	// tracer always exists; the zero value just keeps sampling off.
	Trace TraceOptions
}

func (o *Options) withDefaults() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.VNodes <= 0 {
		o.VNodes = defaultVNodes
	}
	if o.Keys <= 0 {
		o.Keys = 16384
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CoresPerShard <= 0 {
		o.CoresPerShard = runtime.NumCPU() / o.Shards
		if o.CoresPerShard < 2 {
			o.CoresPerShard = 2
		}
	}
	if o.WorkersPerShard <= 0 {
		o.WorkersPerShard = o.CoresPerShard
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = time.Second
	}
	if o.TunerMaxWindow <= 0 {
		o.TunerMaxWindow = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.WALSyncPolicy == "" {
		o.WALSyncPolicy = "batch"
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 10 * time.Second
	}
	o.Trace.withDefaults()
	o.Sched.withDefaults()
}

// Server is the sharded transactional serving layer. Build with New,
// start with Start, stop with Shutdown.
type Server struct {
	opts   Options
	ring   *Ring
	shards []*shard
	dlq    *DLQ
	reg    *obs.Registry

	ln     net.Listener
	httpLn net.Listener
	srv    *http.Server

	ctx    context.Context
	cancel context.CancelFunc

	accepting atomic.Bool
	connWG    sync.WaitGroup
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	tunerWG   sync.WaitGroup
	started   time.Time

	shutdownOnce sync.Once
	shutdownRep  ShutdownReport

	latency *obs.Histogram // server-wide accepted-request latency (ms)

	tracer   *reqTracer                 // request tracer (always built; rate decides cost)
	stageAgg *[numStages]*obs.Histogram // server-wide stage latency histograms
	connSeq  atomic.Int64               // connection IDs for trace records
}

// New builds the server: shards, stores, breakers, tuners and logs. It
// does not listen yet; call Start.
func New(opts Options) (*Server, error) {
	opts.withDefaults()
	s := &Server{
		opts:     opts,
		ring:     NewRing(opts.Shards, opts.VNodes),
		reg:      obs.NewRegistry(),
		latency:  obs.NewHistogram(0),
		tracer:   newReqTracer(opts.Trace),
		stageAgg: newStageHists(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	if opts.DLQPath != "" {
		dlq, err := NewDLQ(opts.DLQPath)
		if err != nil {
			return nil, fmt.Errorf("dead-letter log: %w", err)
		}
		s.dlq = dlq
	}
	if opts.DecisionLogDir != "" {
		if err := os.MkdirAll(opts.DecisionLogDir, 0o755); err != nil {
			return nil, fmt.Errorf("decision-log dir: %w", err)
		}
	}
	var walCfg walConfig
	if opts.WALDir != "" {
		policy, err := wal.ParseSyncPolicy(opts.WALSyncPolicy)
		if err != nil {
			return nil, err
		}
		if err := os.MkdirAll(opts.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("wal dir: %w", err)
		}
		walCfg = walConfig{
			policy:       policy,
			interval:     opts.WALSyncInterval,
			segmentBytes: opts.WALSegmentBytes,
			snapInterval: opts.SnapshotInterval,
		}
	}

	// Partition the key space across shards by the ring, then build each
	// shard's immutable store so request handling never takes a map lock.
	owned := make([]map[string]*stm.VBox[uint64], opts.Shards)
	for i := range owned {
		owned[i] = make(map[string]*stm.VBox[uint64])
	}
	for i := 0; i < opts.Keys; i++ {
		key := KeyName(i)
		owned[s.ring.Lookup(key)][key] = stm.NewVBox(uint64(0))
	}

	for i := 0; i < opts.Shards; i++ {
		var inj *chaos.Injector
		if opts.Injector != nil {
			inj = opts.Injector(i)
		}
		// Each shard gets its own STM span tracer with ambient sampling
		// off (TraceSampleRate 0): only transaction trees claimed by a
		// sampled request — via AtomicTraced, linked by its trace ID —
		// land in the span ring, keeping the untraced STM path at its
		// one-atomic-load cost.
		str := stmtrace.New(stmtrace.Options{MaxSpans: opts.Trace.STMMaxSpans})
		stmOpts := stm.Options{FaultInjector: inj, LockFreeCommit: opts.LockFreeCommit, Tracer: str}
		var shSched *sched.Scheduler
		if opts.Sched.Enabled {
			// The scheduler rides the same tracer: with it attached, every
			// attributed abort lands in the hot-box table even though the
			// ambient span sample rate stays 0 — the controller needs live
			// windowed contention, not a sampled sliver.
			shSched = sched.New(opts.Sched.schedOptions())
			stmOpts.Scheduler = shSched
		}
		sh := &shard{
			id:      i,
			stm:     stm.New(stmOpts),
			sched:   shSched,
			store:   owned[i],
			queue:   make(chan *request, opts.QueueDepth),
			stop:    make(chan struct{}),
			timeout: opts.RequestTimeout,
			breaker: NewBreaker(opts.Breaker),
			dlq:     s.dlq,
			ring:    obs.NewRing(64),
			latency: obs.NewHistogram(0),
			global:  s.latency,
			inj:     inj,
			tracer:  str,
			stages:  newStageHists(),
		}
		// Recovery runs here, before workers or tuners exist: the store is
		// rebuilt from snapshot + WAL tail and the tuner checkpoint is
		// loaded so the tuner below can warm-start from it.
		var warm *autopn.Checkpoint
		if opts.WALDir != "" {
			cfg := walCfg
			cfg.injector = inj
			w, cp, err := openShardWAL(sh, filepath.Join(opts.WALDir, fmt.Sprintf("shard-%d", i)), cfg)
			if err != nil {
				return nil, fmt.Errorf("shard %d wal: %w", i, err)
			}
			sh.wal = w
			warm = cp
		}
		// The decision trail (in-memory ring + optional JSONL file) is
		// shared by every decision producer on the shard — tuner and
		// scheduler controller — so it exists whenever either runs, not
		// only when the tuner does.
		recorders := obs.Multi{sh.ring}
		if opts.DecisionLogDir != "" {
			path := filepath.Join(opts.DecisionLogDir, fmt.Sprintf("shard-%d.jsonl", i))
			jsonl, err := obs.NewJSONLFile(path, 64<<20)
			if err != nil {
				return nil, fmt.Errorf("decision log shard %d: %w", i, err)
			}
			sh.jsonl = jsonl
			recorders = append(recorders, jsonl)
		}
		if !opts.DisableTuner {
			sh.tuner = autopn.NewTuner(sh.stm, autopn.Options{
				Cores:     opts.CoresPerShard,
				Seed:      opts.Seed + uint64(i)*7919,
				MaxWindow: opts.TunerMaxWindow,
				ReTune:    opts.Retune,
				Recorder:  recorders,
				WarmStart: warm,
			})
		}
		sh.registerMetrics(s.reg)
		s.shards = append(s.shards, sh)
	}
	s.registerMetrics()
	return s, nil
}

// registerMetrics bridges server-wide aggregates into the registry.
func (s *Server) registerMetrics() {
	sum := func(f func(*shard) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, sh := range s.shards {
				t += f(sh)
			}
			return t
		}
	}
	s.reg.CounterFunc("autopn_server_accepted_total", sum(func(sh *shard) uint64 { return sh.accepted.Load() }))
	s.reg.CounterFunc("autopn_server_served_total", sum(func(sh *shard) uint64 { return sh.served.Load() }))
	s.reg.CounterFunc("autopn_server_shed_total", sum(func(sh *shard) uint64 { return sh.shed.Load() }))
	s.reg.CounterFunc("autopn_server_breaker_rejects_total", sum(func(sh *shard) uint64 { return sh.brkRejects.Load() }))
	s.reg.CounterFunc("autopn_server_timeouts_total", sum(func(sh *shard) uint64 { return sh.timeouts.Load() }))
	s.reg.CounterFunc("autopn_server_errors_total", sum(func(sh *shard) uint64 { return sh.userErrors.Load() }))
	s.reg.CounterFunc("autopn_server_breaker_opens_total", sum(func(sh *shard) uint64 { return sh.breaker.Opens() }))
	s.reg.CounterFunc("autopn_server_dlq_total", func() uint64 { return s.dlq.Count() })
	s.reg.CounterFunc("autopn_server_dlq_lost_total", func() uint64 { return s.dlq.Lost() })
	s.reg.CounterFunc("autopn_server_stm_top_commits_total", sum(func(sh *shard) uint64 { return sh.stm.Stats.TopCommits() }))
	s.reg.CounterFunc("autopn_server_stm_top_aborts_total", sum(func(sh *shard) uint64 { return sh.stm.Stats.TopAborts() }))
	if s.opts.Sched.Enabled {
		schedSum := func(f func(sched.Stats) uint64) func() uint64 {
			return func() uint64 {
				var t uint64
				for _, sh := range s.shards {
					if sh.sched != nil {
						t += f(sh.sched.Snapshot())
					}
				}
				return t
			}
		}
		s.reg.CounterFunc("autopn_sched_admitted_total", schedSum(func(st sched.Stats) uint64 { return st.Admitted }))
		s.reg.CounterFunc("autopn_sched_bypass_cool_total", schedSum(func(st sched.Stats) uint64 { return st.BypassCool }))
		s.reg.CounterFunc("autopn_sched_bypass_wait_total", schedSum(func(st sched.Stats) uint64 { return st.BypassWait }))
		s.reg.CounterFunc("autopn_sched_promotions_total", schedSum(func(st sched.Stats) uint64 { return st.Promotions }))
		s.reg.CounterFunc("autopn_sched_demotions_total", schedSum(func(st sched.Stats) uint64 { return st.Demotions }))
		s.reg.GaugeFunc("autopn_sched_domains", func() float64 {
			return float64(schedSum(func(st sched.Stats) uint64 { return uint64(st.Domains) })())
		})
		s.reg.GaugeFunc("autopn_sched_hot_domains", func() float64 {
			return float64(schedSum(func(st sched.Stats) uint64 { return uint64(st.HotDomains) })())
		})
	}
	s.reg.GaugeFunc("autopn_server_shards", func() float64 { return float64(len(s.shards)) })
	s.reg.GaugeFunc("autopn_server_queue_len", func() float64 {
		n := 0
		for _, sh := range s.shards {
			n += len(sh.queue)
		}
		return float64(n)
	})
	s.reg.RegisterHistogram("autopn_server_request_latency_ms", s.latency)

	if s.opts.WALDir != "" {
		walSum := func(f func(*shardWAL) uint64) func() uint64 {
			return func() uint64 {
				var t uint64
				for _, sh := range s.shards {
					if sh.wal != nil {
						t += f(sh.wal)
					}
				}
				return t
			}
		}
		s.reg.CounterFunc("autopn_server_wal_appends_total", walSum(func(w *shardWAL) uint64 { return w.log.Appends() }))
		s.reg.CounterFunc("autopn_server_wal_fsyncs_total", walSum(func(w *shardWAL) uint64 { return w.log.Fsyncs() }))
		s.reg.CounterFunc("autopn_server_wal_bytes_total", walSum(func(w *shardWAL) uint64 { return w.log.Bytes() }))
		s.reg.CounterFunc("autopn_server_wal_errors_total", walSum(func(w *shardWAL) uint64 { return w.log.Errors() }))
		s.reg.CounterFunc("autopn_server_wal_snapshots_total", walSum(func(w *shardWAL) uint64 { return w.snapshots.Load() }))
		s.reg.CounterFunc("autopn_server_wal_failed_acks_total", walSum(func(w *shardWAL) uint64 { return w.failedAcks.Load() }))
		s.reg.GaugeFunc("autopn_server_wal_segments", func() float64 {
			var t int64
			for _, sh := range s.shards {
				if sh.wal != nil {
					t += sh.wal.log.Segments()
				}
			}
			return float64(t)
		})
		s.reg.GaugeFunc("autopn_server_wal_recovery_duration_seconds", func() float64 {
			// The server admits traffic only after every shard recovered,
			// so the slowest shard is the gate's recovery time.
			var maxMS float64
			for _, sh := range s.shards {
				if sh.wal != nil && sh.wal.recovery.DurationMS > maxMS {
					maxMS = sh.wal.recovery.DurationMS
				}
			}
			return maxMS / 1e3
		})
	}

	s.reg.CounterFunc("autopn_server_traces_sampled_total", s.tracer.sampled.Load)
	s.reg.CounterFunc("autopn_server_traces_completed_total", s.tracer.completed.Load)
	s.reg.CounterFunc("autopn_server_traces_dropped_total", s.tracer.dropped.Load)
	s.reg.GaugeFunc("autopn_server_trace_sample_rate", s.tracer.sampleRate)
	for st := stage(0); st < numStages; st++ {
		s.reg.RegisterHistogram("autopn_server_stage_"+stageNames[st]+"_ms", s.stageAgg[st])
	}

	// Build identity and process lifetime (the flat registry has no labels,
	// so the version strings live in /status; the gauges carry the
	// convention: build_info is the constant 1, start time is unix seconds).
	s.reg.GaugeFunc("autopn_server_build_info", func() float64 { return 1 })
	s.reg.GaugeFunc("autopn_server_start_time_seconds", func() float64 {
		return float64(s.tracer.epoch.UnixNano()) / 1e9
	})
	s.reg.GaugeFunc("autopn_server_uptime_seconds", func() float64 {
		return time.Since(s.tracer.epoch).Seconds()
	})
}

// buildInfo extracts the module version and VCS revision stamped into the
// binary ("unknown" for test binaries built without VCS stamping).
func buildInfo() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				revision = kv.Value
			}
		}
	}
	return goVersion, revision
}

// Registry exposes the server's metrics registry (the HTTP introspection
// surface serves it; tests scrape it directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start begins listening, launches the shard workers and tuners, and
// returns once the server is accepting connections.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = time.Now()
	s.accepting.Store(true)

	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.start(sh)
		}
		sh.runWorkers(s.opts.WorkersPerShard)
		if sh.tuner != nil {
			s.tunerWG.Add(1)
			go func() {
				defer s.tunerWG.Done()
				sh.tuner.Run(s.ctx)
			}()
		}
		if sh.sched != nil {
			s.tunerWG.Add(1)
			go func() {
				defer s.tunerWG.Done()
				sh.runSchedController(s.ctx, s.opts.Sched)
			}()
		}
	}

	if s.opts.HTTPAddr != "" {
		httpLn, err := net.Listen("tcp", s.opts.HTTPAddr)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("http: %w", err)
		}
		s.httpLn = httpLn
		s.srv = &http.Server{Handler: obs.NewHandler(s.reg, func() any { return s.Status() },
			obs.Endpoint{
				Path:    "/debug/server/trace",
				Desc:    "merged request + STM spans as Chrome trace_event JSON (Perfetto-loadable)",
				Handler: http.HandlerFunc(s.serveTrace),
			})}
		go func() { _ = s.srv.Serve(httpLn) }()
	}

	go s.acceptLoop()
	return nil
}

// Addr returns the serving listener's address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HTTPAddr returns the introspection listener's address ("" when off).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if !s.accepting.Load() {
			_ = c.Close()
			continue
		}
		s.connWG.Add(1)
		s.trackConn(c, true)
		go func() {
			defer s.connWG.Done()
			defer s.trackConn(c, false)
			s.serveConn(c)
		}()
	}
}

// trackConn registers/unregisters a live client connection so Shutdown
// can force-close connections that idle past the drain.
func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// maxPipelined bounds per-connection outstanding requests; a client
// pipelining deeper than this is back-pressured at its socket.
const maxPipelined = 1024

// tracedReply is a written-but-not-yet-flushed reply of a traced request;
// the connection writer batches these and stamps all of them with one
// flush timestamp when the buffered writer actually hits the socket.
type tracedReply struct {
	rt   *reqTrace
	resp string
}

// serveConn handles one client connection: the reader parses and routes
// lines as fast as they arrive (this is what lets an open-loop client
// actually reach the shard queues instead of queueing in the kernel), the
// writer replies strictly in request order. The writer is also where
// sampled requests complete: their reply-flushed mark is the moment the
// batch containing their response reached the socket.
func (s *Server) serveConn(c net.Conn) {
	defer func() { _ = c.Close() }()
	connID := s.connSeq.Add(1)
	pending := make(chan *request, maxPipelined)
	done := make(chan struct{})

	go func() {
		defer close(done)
		w := bufio.NewWriter(c)
		var traced []tracedReply
		// drain keeps consuming replies so no request's finish() blocks
		// after the client is gone; traces complete with no flush mark.
		drain := func() {
			for _, t := range traced {
				s.completeTrace(t.rt, t.resp, 0)
			}
			traced = traced[:0]
			for req := range pending {
				resp := <-req.reply
				if req.tr != nil {
					s.completeTrace(req.tr, resp, 0)
				}
			}
		}
		for req := range pending {
			resp := <-req.reply
			if _, err := w.WriteString(resp + "\n"); err != nil {
				if req.tr != nil {
					s.completeTrace(req.tr, resp, 0)
				}
				drain()
				return
			}
			if req.tr != nil {
				traced = append(traced, tracedReply{req.tr, resp})
			}
			// Flush when no more replies are immediately pending, so
			// pipelined bursts batch into few syscalls.
			if len(pending) == 0 {
				if err := w.Flush(); err != nil {
					drain()
					return
				}
				if len(traced) > 0 {
					flushNS := s.tracer.now()
					for _, t := range traced {
						s.completeTrace(t.rt, t.resp, flushNS)
					}
					traced = traced[:0]
				}
			}
		}
		err := w.Flush()
		flushNS := int64(0)
		if err == nil {
			flushNS = s.tracer.now()
		}
		for _, t := range traced {
			s.completeTrace(t.rt, t.resp, flushNS)
		}
	}()

	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<10)
	for sc.Scan() {
		req, code := parseRequest(sc.Text())
		if code != "" {
			req = &request{reply: make(chan string, 1)}
			req.finish(respErr(code))
			pending <- req
			continue
		}
		if rt := s.tracer.maybeStart(req.clientTraceID, req.clientSend, connID); rt != nil {
			rt.op = req.kind.String()
			rt.key = req.key
			req.tr = rt
		}
		s.route(req)
		pending <- req
	}
	close(pending)
	<-done
}

// completeTrace finishes a sampled request: derives its outcome from the
// reply line, feeds the ok-path stage histograms (aggregate and owning
// shard), publishes the snapshot to the trace ring and drops the writer's
// ownership reference. flushNS 0 means the reply never reached the socket.
func (s *Server) completeTrace(rt *reqTrace, resp string, flushNS int64) {
	outcome := "ok"
	if strings.HasPrefix(resp, "ERR ") {
		outcome = resp[len("ERR "):]
	}
	d := rt.snapshot(outcome, flushNS)
	if outcome == "ok" && d.Shard >= 0 {
		observeStages(d, s.stageAgg, s.shards[d.Shard].stages)
	}
	s.tracer.publish(d)
	rt.release()
}

// SetTraceSampleRate adjusts the request-tracing sample rate at runtime
// (0 disables tracing; 1 traces everything).
func (s *Server) SetTraceSampleRate(rate float64) { s.tracer.setSampleRate(rate) }

// Traces returns a copy of the completed request-trace ring, oldest
// first (tests and tooling; the HTTP surface is /debug/server/trace).
func (s *Server) Traces() []ReqTraceData { return s.tracer.traces() }

// route hands the request to the shard owning its key(s).
func (s *Server) route(req *request) {
	if req.kind == opPing {
		req.finish(respPong)
		return
	}
	id := s.ring.Lookup(req.key)
	if req.kind == opMAdd {
		for _, k := range req.keys[1:] {
			if s.ring.Lookup(k) != id {
				req.finish(respErr(ErrCodeCrossShard))
				return
			}
		}
	}
	s.shards[id].submit(req)
}

// Status is the /status payload: server identity plus the per-shard table
// of (t, c, phase), queue, breaker and traffic counters.
type Status struct {
	Addr          string  `json:"addr"`
	StartTime     string  `json:"start_time"` // process start, RFC 3339
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision"` // VCS revision ("unknown" unstamped)
	PID           int     `json:"pid"`

	Shards     int           `json:"shards"`
	Keys       int           `json:"keys"`
	QueueDepth int           `json:"queue_depth"`
	WALPolicy  string        `json:"wal_policy,omitempty"` // "" = durability off
	DLQCount   uint64        `json:"dlq_count"`
	DLQLost    uint64        `json:"dlq_lost,omitempty"`
	ShardTable []ShardStatus `json:"shard_table"`

	Accepted uint64 `json:"accepted"`
	Served   uint64 `json:"served"`
	Shed     uint64 `json:"shed"`
	Timeouts uint64 `json:"timeouts"`

	// Trace summarizes the request tracer; Stages is the server-wide
	// queue-wait vs. service-time decomposition of traced ok requests
	// (present once at least one stage latency was observed).
	Trace  *TraceStatus    `json:"trace,omitempty"`
	Stages *StageBreakdown `json:"stages,omitempty"`
}

// Status snapshots the server. Safe for concurrent use.
func (s *Server) Status() Status {
	goVersion, revision := buildInfo()
	st := Status{
		StartTime:  s.tracer.epoch.Format(time.RFC3339Nano),
		GoVersion:  goVersion,
		Revision:   revision,
		PID:        os.Getpid(),
		Shards:     len(s.shards),
		Keys:       s.opts.Keys,
		QueueDepth: s.opts.QueueDepth,
		DLQCount:   s.dlq.Count(),
		DLQLost:    s.dlq.Lost(),
	}
	if s.opts.WALDir != "" {
		st.WALPolicy = s.opts.WALSyncPolicy
	}
	if s.ln != nil {
		st.Addr = s.Addr()
		st.UptimeSeconds = time.Since(s.started).Seconds()
	}
	for _, sh := range s.shards {
		row := sh.status()
		st.ShardTable = append(st.ShardTable, row)
		st.Accepted += row.Accepted
		st.Served += row.Served
		st.Shed += row.Shed
		st.Timeouts += row.Timeouts
	}
	tr := s.tracer.status()
	st.Trace = &tr
	if b := breakdown(s.stageAgg); b.Queue.Count+b.Exec.Count+b.Commit.Count+b.Flush.Count > 0 {
		st.Stages = b
	}
	return st
}

// ShutdownReport summarizes a graceful shutdown.
type ShutdownReport struct {
	// Drained reports that every accepted request was answered before the
	// deadline.
	Drained bool
	// Abandoned is how many requests were still queued or executing when
	// the deadline expired (their deadline timers still answer them).
	Abandoned int
	// ShedAtShutdown is how many queued requests were answered with the
	// typed shutdown error instead of executing.
	ShedAtShutdown int
}

// Shutdown gracefully stops the server: it stops accepting connections
// and requests, drains in-flight requests bounded by timeout, then — on
// every path, drained or not — flushes all per-shard decision logs and
// the dead-letter log. timeout <= 0 means a 5s default. Shutdown is
// idempotent; later calls return the first call's report.
func (s *Server) Shutdown(timeout time.Duration) ShutdownReport {
	s.shutdownOnce.Do(func() { s.shutdownRep = s.doShutdown(timeout) })
	return s.shutdownRep
}

func (s *Server) doShutdown(timeout time.Duration) ShutdownReport {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	var rep ShutdownReport

	// 1. Refuse new work: no new connections, no new admissions.
	s.accepting.Store(false)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, sh := range s.shards {
		sh.draining.Store(true)
	}

	// 2. Bounded drain of requests already admitted to execution. Queued
	// requests that have not started are answered with the shutdown error
	// (they would only add latency to the drain); executing ones get
	// until the deadline.
	for _, sh := range s.shards {
		rep.ShedAtShutdown += sh.drainQueue()
	}
	rep.Drained = true
	for _, sh := range s.shards {
		for sh.executing.Load() > 0 {
			if time.Now().After(deadline) {
				rep.Drained = false
				break
			}
			time.Sleep(time.Millisecond)
			rep.ShedAtShutdown += sh.drainQueue() // races with submit flips
		}
		rep.Abandoned += int(sh.executing.Load()) + len(sh.queue)
	}

	// 3. Stop workers and tuners. A worker wedged inside a stalled commit
	// stays behind (counted above); its request's deadline timer already
	// answers the client.
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.cancel()
	tunersDone := make(chan struct{})
	go func() {
		s.tunerWG.Wait()
		close(tunersDone)
	}()
	select {
	case <-tunersDone:
	case <-time.After(time.Until(deadline)):
	}

	// 4. Close the introspection server and client connections. A short
	// grace lets connection writers flush replies already produced by the
	// drain; idle clients would otherwise hold their reader goroutines
	// open forever, so remaining connections are then force-closed.
	if s.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = s.srv.Shutdown(ctx)
		cancel()
	}
	time.Sleep(100 * time.Millisecond)
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	connsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(connsDone)
	}()
	select {
	case <-connsDone:
	case <-time.After(time.Until(deadline) + s.opts.RequestTimeout):
		// Writers blocked on abandoned replies unblock once the deadline
		// timers fire (at most RequestTimeout after admission); past that
		// something is truly wedged and we stop waiting.
	}

	// 5. Seal durability and flush every log — the whole point of a
	// graceful exit. This runs on every path, including a failed drain,
	// so an interrupted server still leaves complete decision and
	// dead-letter trails (the PR 2 die-unflushed bug pattern must not
	// recur). Each shard's WAL gets a final snapshot, a final tuner
	// checkpoint and the shutdown record + CLEAN marker, and its decision
	// log records the clean shutdown so the analyzer's timeline shows
	// where one lifetime ended and the next began.
	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.shutdownClean(sh)
		}
		if sh.tuner != nil {
			cur := sh.tuner.Current()
			d := obs.Decision{
				Kind: obs.KindShutdown,
				T:    cur.T, C: cur.C,
				Note: fmt.Sprintf("drained=%v abandoned=%d", rep.Drained, rep.Abandoned),
			}
			sh.ring.Record(d)
			if sh.jsonl != nil {
				sh.jsonl.Record(d)
			}
		}
		if sh.jsonl != nil {
			_ = sh.jsonl.Close()
		}
	}
	_ = s.dlq.Close()
	return rep
}
