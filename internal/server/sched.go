package server

import (
	"context"
	"fmt"
	"time"

	"autopn/internal/obs"
	"autopn/internal/sched"
)

// SchedOptions configures the per-shard contention-aware scheduler (see
// internal/sched and docs/SCHEDULER.md). Disabled shards pay one nil check
// per transaction attempt; enabled-but-cold shards pay one atomic load.
type SchedOptions struct {
	// Enabled attaches a scheduler to every shard's STM and runs the
	// promotion controller.
	Enabled bool
	// Lanes is the number of serial conflict-domain lanes per shard
	// (default 8).
	Lanes int
	// PromoteShare is the windowed abort share at which a hot box is
	// promoted into a conflict domain (default 0.2).
	PromoteShare float64
	// PromoteMinAborts is the minimum windowed abort count for promotion,
	// keeping near-idle shards from promoting on noise (default 8).
	PromoteMinAborts uint64
	// MaxWait bounds how long an admitted transaction queues behind its
	// lane token before bypassing to the optimistic path (default 2ms).
	MaxWait time.Duration
	// Interval is the controller tick: each tick reads the shard tracer's
	// hot-box table, promotes/demotes domains, then decays the table
	// (default 250ms).
	Interval time.Duration
	// Decay is the per-tick multiplicative decay applied to the hot-box
	// table, turning cumulative abort counts into an EWMA-style window
	// (default 0.5).
	Decay float64
}

func (o *SchedOptions) withDefaults() {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.Decay <= 0 || o.Decay >= 1 {
		o.Decay = 0.5
	}
	// Lanes, PromoteShare, PromoteMinAborts and MaxWait zero-values are
	// defaulted by sched.Options.withDefaults; only controller-side knobs
	// need completing here.
}

// schedOptions translates the server-level knobs into sched.Options.
func (o SchedOptions) schedOptions() sched.Options {
	return sched.Options{
		Lanes:            o.Lanes,
		PromoteShare:     o.PromoteShare,
		PromoteMinAborts: o.PromoteMinAborts,
		MaxWait:          o.MaxWait,
	}
}

// runSchedController is the shard's promotion/demotion feedback loop: each
// tick it snapshots the tracer's hot-box table (fed by every attributed
// abort while a scheduler is attached), lets the scheduler promote boxes
// whose abort share crossed the threshold and demote cooled ones, records
// each transition in the shard's decision trail, and decays the table so
// the next window sees recent contention rather than all-time totals.
func (sh *shard) runSchedController(ctx context.Context, o SchedOptions) {
	tick := time.NewTicker(o.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		rows := sh.tracer.HotBoxes(0)
		var total uint64
		stats := make([]sched.BoxStat, len(rows))
		for i, r := range rows {
			stats[i] = sched.BoxStat{Key: r.Key, Label: r.Label, Aborts: r.Aborts}
			total += r.Aborts
		}
		for _, ev := range sh.sched.Observe(stats, total) {
			kind := obs.KindSchedDemote
			note := fmt.Sprintf("box=%s lane=%d", schedBoxName(ev), ev.Lane)
			if ev.Promote {
				kind = obs.KindSchedPromote
				note = fmt.Sprintf("box=%s lane=%d share=%.2f aborts=%d",
					schedBoxName(ev), ev.Lane, ev.Share, ev.Aborts)
			}
			sh.record(obs.Decision{Kind: kind, Note: note})
		}
		sh.tracer.DecayConflicts(o.Decay)
	}
}

// schedBoxName renders an event's box identity: its profiling label when
// set, the opaque key otherwise.
func schedBoxName(ev sched.Event) string {
	if ev.Label != "" {
		return ev.Label
	}
	return fmt.Sprintf("0x%x", ev.Key)
}

// record appends one decision to the shard's trail: the in-memory ring
// behind /status always, the persisted JSONL log when configured.
func (sh *shard) record(d obs.Decision) {
	sh.ring.Record(d)
	if sh.jsonl != nil {
		sh.jsonl.Record(d)
	}
}
