package server

import (
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/obs"
)

// Request tracing: the serving layer's end-to-end latency decomposition.
//
// Whole-request latency histograms say *that* p99 degraded; this tracer
// says *where* the time went. Each sampled request gets a 64-bit trace ID
// at accept and records per-stage timestamps as it flows through the
// pipeline:
//
//	accept -> enqueue -> dequeue -> fn-done -> exec-done -> reply-flushed
//
// from which the four stage latencies are derived:
//
//	queue  = enqueue  -> dequeue    admission-queue wait
//	exec   = dequeue  -> fn-done    transaction body, retries included
//	commit = fn-done  -> exec-done  final validation + STM commit
//	flush  = exec-done-> flushed    reply ordering + writer batching + syscall
//
// Span records are pooled (sync.Pool, refcounted between the worker and
// the connection writer) and completed records land in a fixed-size ring,
// exported as one merged Chrome trace_event timeline together with the
// linked STM transaction-tree spans (see trace_export.go). The sampling
// decision is a single atomic load plus a splitmix64 draw per request;
// with tracing disabled (rate 0) it is exactly one atomic load and a
// never-taken branch — the same discipline the STM tracer established.
//
// Queue wait separating from service time is the signal the tuning layer
// needs: queue-dominated tails say "raise shard count / queue depth",
// commit-dominated tails say "retune (t, c) or the batch cap".

// stage indexes the derived per-stage latency histograms.
type stage int

const (
	stageQueue stage = iota
	stageExec
	stageCommit
	stageFlush
	numStages
)

// stageNames are the metric-name fragments, indexed by stage.
var stageNames = [numStages]string{"queue", "exec", "commit", "flush"}

// TraceOptions configures the server's request tracer. The tracer is
// always constructed (so tracing can be enabled at runtime); only the
// sample rate decides whether any request pays more than the sampling
// gate.
type TraceOptions struct {
	// SampleRate is the fraction of accepted requests traced, in [0, 1].
	// Zero (the default) keeps tracing off: one atomic load per request.
	// Adjustable at runtime via Server.SetTraceSampleRate.
	SampleRate float64
	// MaxTraces bounds the completed-trace ring (default 4096). When full,
	// the oldest traces are overwritten.
	MaxTraces int
	// STMMaxSpans bounds each shard's STM span ring (default 4096).
	STMMaxSpans int
}

func (o *TraceOptions) withDefaults() {
	if o.MaxTraces <= 0 {
		o.MaxTraces = 4096
	}
	if o.STMMaxSpans <= 0 {
		o.STMMaxSpans = 4096
	}
}

// ReqTraceData is one completed request trace. Timestamps are nanoseconds
// since the tracer's epoch (Server start); zero means the request never
// reached that point (a shed request has no DequeueNS). JSON tags make the
// ring directly dumpable for tests and tooling; the Perfetto export is the
// human surface.
type ReqTraceData struct {
	ID uint64 `json:"id"`
	// ClientID is the client-supplied trace hint (0 when the client sent
	// none); ClientSendNS is the client's send timestamp re-anchored to the
	// tracer epoch, when supplied. Together they extend the timeline one
	// hop into the load generator.
	ClientID     uint64 `json:"client_id,omitempty"`
	ClientSendNS int64  `json:"client_send_ns,omitempty"`
	Conn         int64  `json:"conn"`
	Shard        int    `json:"shard"` // -1: never routed to a shard
	Op           string `json:"op"`
	Key          string `json:"key,omitempty"`
	Outcome      string `json:"outcome"` // "ok" or the ERR code

	AcceptNS   int64 `json:"accept_ns"`
	EnqueueNS  int64 `json:"enqueue_ns,omitempty"`
	DequeueNS  int64 `json:"dequeue_ns,omitempty"`
	FnDoneNS   int64 `json:"fn_done_ns,omitempty"`
	ExecDoneNS int64 `json:"exec_done_ns,omitempty"`
	FlushNS    int64 `json:"flush_ns,omitempty"`
}

// reqTrace is the live, pooled span record of one sampled request. Stage
// timestamps are atomics because the deadline timer can hand the request
// to the connection writer (which publishes the record) while the worker
// is still executing and marking stages; the writer's snapshot simply
// misses marks that land after publication. The record returns to the pool
// only when both owners — the writer (publishes at flush) and the
// exec side (worker or shed path) — have released it.
type reqTrace struct {
	tr *reqTracer

	// Set once by the reader goroutine before the request is shared.
	id           uint64
	clientID     uint64
	clientSendNS int64
	conn         int64
	shard        int32 // -1 until routed
	op           string
	key          string
	acceptNS     int64

	enq, deq, fnDone, execDone atomic.Int64
	refs                       atomic.Int32
}

// release drops one ownership reference; the last owner recycles the
// record.
func (rt *reqTrace) release() {
	if rt.refs.Add(-1) == 0 {
		rt.tr.pool.Put(rt)
	}
}

// snapshot renders the record for publication. flushNS may be zero (the
// connection died before the reply was flushed).
func (rt *reqTrace) snapshot(outcome string, flushNS int64) ReqTraceData {
	return ReqTraceData{
		ID:           rt.id,
		ClientID:     rt.clientID,
		ClientSendNS: rt.clientSendNS,
		Conn:         rt.conn,
		Shard:        int(rt.shard),
		Op:           rt.op,
		Key:          rt.key,
		Outcome:      outcome,
		AcceptNS:     rt.acceptNS,
		EnqueueNS:    rt.enq.Load(),
		DequeueNS:    rt.deq.Load(),
		FnDoneNS:     rt.fnDone.Load(),
		ExecDoneNS:   rt.execDone.Load(),
		FlushNS:      flushNS,
	}
}

// reqTracer owns the sampling gate, trace-ID allocation and the
// completed-trace ring. All methods are safe for concurrent use.
type reqTracer struct {
	epoch time.Time // wall + monotonic anchor; see Epoch

	threshold atomic.Uint64 // 0 = off, ^0 = always, else splitmix64 compare
	drawSeq   atomic.Uint64 // sampling stream
	seq       atomic.Uint64 // trace-ID allocator

	sampled   atomic.Uint64 // requests that got a trace record
	completed atomic.Uint64 // records published to the ring
	dropped   atomic.Uint64 // records overwritten in the ring

	pool sync.Pool // *reqTrace

	mu   sync.Mutex
	ring []ReqTraceData
	next int
	n    int
}

func newReqTracer(opts TraceOptions) *reqTracer {
	t := &reqTracer{
		epoch: time.Now(),
		ring:  make([]ReqTraceData, opts.MaxTraces),
	}
	t.pool.New = func() any { return &reqTrace{} }
	t.setSampleRate(opts.SampleRate)
	return t
}

// now returns nanoseconds since the tracer epoch (monotonic).
func (t *reqTracer) now() int64 { return int64(time.Since(t.epoch)) }

// setSampleRate updates the sampling gate (clamped to [0, 1]).
func (t *reqTracer) setSampleRate(rate float64) {
	switch {
	case rate <= 0 || rate != rate: // NaN-safe
		t.threshold.Store(0)
	case rate >= 1:
		t.threshold.Store(^uint64(0))
	default:
		t.threshold.Store(uint64(rate * float64(1<<63) * 2))
	}
}

// sampleRate reads the gate back as a fraction (approximate inverse of
// setSampleRate, for /status).
func (t *reqTracer) sampleRate() float64 {
	th := t.threshold.Load()
	switch th {
	case 0:
		return 0
	case ^uint64(0):
		return 1
	default:
		return float64(th) / (float64(1<<63) * 2)
	}
}

// maybeStart makes the per-request sampling decision. With tracing off the
// cost is one atomic load. A client trace hint (clientID != 0) forces
// sampling while tracing is enabled at any rate — the load generator's way
// of guaranteeing itself an end-to-end exemplar.
func (t *reqTracer) maybeStart(clientID uint64, clientSend time.Time, conn int64) *reqTrace {
	th := t.threshold.Load()
	if th == 0 {
		return nil
	}
	if clientID == 0 && th != ^uint64(0) {
		x := t.drawSeq.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x >= th {
			return nil
		}
	}
	t.sampled.Add(1)
	rt := t.pool.Get().(*reqTrace)
	*rt = reqTrace{
		tr:       t,
		id:       t.seq.Add(1),
		clientID: clientID,
		conn:     conn,
		shard:    -1,
		acceptNS: t.now(),
	}
	if !clientSend.IsZero() {
		rt.clientSendNS = int64(clientSend.Sub(t.epoch))
	}
	// One reference for the connection writer (publishes at flush); the
	// exec side takes its own on admission.
	rt.refs.Store(1)
	return rt
}

// publish copies the completed record into the ring. Called exactly once
// per trace, by the connection writer.
func (t *reqTracer) publish(d ReqTraceData) {
	t.completed.Add(1)
	t.mu.Lock()
	if t.n == len(t.ring) {
		t.dropped.Add(1)
	} else {
		t.n++
	}
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// traces returns a copy of the completed-trace ring, oldest first.
func (t *reqTracer) traces() []ReqTraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ReqTraceData, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.next-t.n+i+2*len(t.ring))%len(t.ring)])
	}
	return out
}

// TraceStatus is the tracer block of /status.
type TraceStatus struct {
	SampleRate float64 `json:"sample_rate"`
	Sampled    uint64  `json:"sampled"`
	Completed  uint64  `json:"completed"`
	Dropped    uint64  `json:"dropped"` // ring overwrites
}

func (t *reqTracer) status() TraceStatus {
	return TraceStatus{
		SampleRate: t.sampleRate(),
		Sampled:    t.sampled.Load(),
		Completed:  t.completed.Load(),
		Dropped:    t.dropped.Load(),
	}
}

// StageBreakdown is the queue-wait vs. service-time decomposition served
// in /status (aggregate and per shard) and embedded in the loadgen report.
// Histograms cover traced requests that completed successfully; the
// exemplars on each stage name concrete trace IDs resolvable in
// /debug/server/trace.
type StageBreakdown struct {
	Queue  obs.HistogramSnapshot `json:"queue_ms"`
	Exec   obs.HistogramSnapshot `json:"exec_ms"`
	Commit obs.HistogramSnapshot `json:"commit_ms"`
	Flush  obs.HistogramSnapshot `json:"flush_ms"`
	// QueueWaitFrac is mean queue wait / mean total (queue + exec + commit
	// + flush) over the current windows: the single number that says
	// whether the tail is admission (raise shards / queue depth) or
	// service (retune (t, c) / batch cap).
	QueueWaitFrac float64 `json:"queue_wait_frac"`
}

// breakdown summarizes a [numStages]*obs.Histogram set.
func breakdown(h *[numStages]*obs.Histogram) *StageBreakdown {
	b := &StageBreakdown{
		Queue:  h[stageQueue].Snapshot(),
		Exec:   h[stageExec].Snapshot(),
		Commit: h[stageCommit].Snapshot(),
		Flush:  h[stageFlush].Snapshot(),
	}
	total := b.Queue.Mean + b.Exec.Mean + b.Commit.Mean + b.Flush.Mean
	if total > 0 {
		b.QueueWaitFrac = b.Queue.Mean / total
	}
	return b
}

// observeStages derives the four stage latencies from a completed ok
// trace and feeds them (with the trace ID as exemplar) into hists.
// Traces that never reached a stage contribute nothing to it.
func observeStages(d ReqTraceData, hists ...*[numStages]*obs.Histogram) {
	mark := func(st stage, from, to int64) {
		if from == 0 || to == 0 || to < from {
			return
		}
		ms := float64(to-from) / float64(time.Millisecond)
		for _, h := range hists {
			h[st].ObserveExemplar(ms, d.ID)
		}
	}
	mark(stageQueue, d.EnqueueNS, d.DequeueNS)
	mark(stageExec, d.DequeueNS, d.FnDoneNS)
	mark(stageCommit, d.FnDoneNS, d.ExecDoneNS)
	mark(stageFlush, d.ExecDoneNS, d.FlushNS)
}

// newStageHists allocates one histogram per stage.
func newStageHists() *[numStages]*obs.Histogram {
	var h [numStages]*obs.Histogram
	for i := range h {
		h[i] = obs.NewHistogram(0)
	}
	return &h
}
