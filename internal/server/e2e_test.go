package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autopn/internal/analyze"
	"autopn/internal/server"
	"autopn/internal/server/loadgen"
)

// TestServerLoadSmoke is the end-to-end load gate behind `make
// server-smoke` and the server-e2e CI job. It starts a full server
// (tuners on), calibrates the host's sustainable rate with a saturating
// run, then drives the server at 1x and 2x sustainable and asserts the
// admission-control contract:
//
//   - at 2x, shedding engages: nonzero ERR overload replies, but bounded
//     (the server does not collapse into rejecting everything);
//   - goodput at 2x stays within 20% of the 1x run (shedding protects
//     throughput instead of letting queues implode);
//   - accepted-request p99 stays bounded by the request deadline;
//   - at least two shards log independent tuning decisions.
//
// Artifacts (loadgen reports with latency histograms, per-shard decision
// logs, the dead-letter log, the final /status snapshot) go to
// $SERVER_SMOKE_ARTIFACTS when set. The per-run duration comes from
// $LOADGEN_DURATION (default 4s). The test only runs when $SERVER_SMOKE=1
// — it saturates the host on purpose, which would poison timing-sensitive
// tests running in parallel `go test ./...` packages.
func TestServerLoadSmoke(t *testing.T) {
	if os.Getenv("SERVER_SMOKE") == "" {
		t.Skip("set SERVER_SMOKE=1 (or run `make server-smoke`) to run the load smoke")
	}
	if testing.Short() {
		t.Skip("load smoke skipped in short mode")
	}
	duration := 4 * time.Second
	if v := os.Getenv("LOADGEN_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("LOADGEN_DURATION=%q: %v", v, err)
		}
		duration = d
	}
	artifacts := os.Getenv("SERVER_SMOKE_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatalf("artifacts dir: %v", err)
	}

	const (
		shards         = 4
		keys           = 16384
		requestTimeout = time.Second
	)
	decisionDir := filepath.Join(artifacts, "decisions")
	dlqPath := filepath.Join(artifacts, "dlq.jsonl")
	s, err := server.New(server.Options{
		Shards:         shards,
		Keys:           keys,
		RequestTimeout: requestTimeout,
		TunerMaxWindow: 150 * time.Millisecond,
		Retune:         true,
		Seed:           1,
		DecisionLogDir: decisionDir,
		DLQPath:        dlqPath,
		HTTPAddr:       "127.0.0.1:0",
		// Tracing stays disabled (rate 0) for the calibration, 1x and 2x
		// runs — those runs ARE the disabled-tracing goodput gate, since
		// every request still crosses the sampling check. The traced run
		// below flips the rate on at runtime.
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	defer s.Shutdown(10 * time.Second)

	base := loadgen.Options{
		Addr:   s.Addr(),
		Keys:   keys,
		ZipfS:  1.2,
		Shards: shards,
		Seed:   7,
	}

	// Calibration: saturate with a high open-loop cap and read the
	// achieved goodput as the host's capacity. This run doubles as tuner
	// warm-up — by the 1x run the shards have measurement windows behind
	// them.
	cal := base
	cal.Rate = 200000
	cal.Duration = duration
	cal.MaxInFlight = 512
	calRep, err := loadgen.Run(t.Context(), cal)
	if err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	writeReport(t, artifacts, "calibration.json", calRep)
	if calRep.Goodput <= 0 {
		t.Fatalf("calibration measured zero goodput: %+v", calRep)
	}
	sustainable := 0.8 * calRep.Goodput
	if sustainable < 500 {
		sustainable = 500
	}
	t.Logf("calibration: capacity %.0f req/s -> sustainable %.0f req/s", calRep.Goodput, sustainable)

	// 1x sustainable: the healthy baseline.
	run1 := base
	run1.Rate = sustainable
	run1.Duration = duration
	rep1, err := loadgen.Run(t.Context(), run1)
	if err != nil {
		t.Fatalf("1x run: %v", err)
	}
	writeReport(t, artifacts, "report-1x.json", rep1)
	if rep1.OK == 0 {
		t.Fatalf("1x run: zero successful responses: %+v", rep1)
	}

	// 2x sustainable: overload. Shedding must engage and protect goodput.
	run2 := base
	run2.Rate = 2 * sustainable
	run2.Duration = duration
	rep2, err := loadgen.Run(t.Context(), run2)
	if err != nil {
		t.Fatalf("2x run: %v", err)
	}
	writeReport(t, artifacts, "report-2x.json", rep2)
	t.Logf("1x: goodput %.0f, shed %.1f%%, p99 %.1fms | 2x: goodput %.0f, shed %.1f%%, p99 %.1fms",
		rep1.Goodput, 100*rep1.ShedRate, rep1.LatencyMs.P99,
		rep2.Goodput, 100*rep2.ShedRate, rep2.LatencyMs.P99)

	if rep2.Overload == 0 {
		t.Error("2x run: load shedding never engaged (zero ERR overload replies)")
	}
	if rep2.ShedRate > 0.95 {
		t.Errorf("2x run: shed rate %.2f is unbounded collapse, want < 0.95", rep2.ShedRate)
	}
	if rep2.Goodput < 0.8*rep1.Goodput {
		t.Errorf("2x goodput %.0f fell more than 20%% below 1x goodput %.0f — shedding is not protecting throughput",
			rep2.Goodput, rep1.Goodput)
	}
	// Accepted requests must stay under the deadline (plus client-side
	// slack): overload turns into typed rejections, not latency collapse.
	boundMs := 1.5 * float64(requestTimeout) / float64(time.Millisecond)
	if rep2.LatencyMs.P99 > boundMs {
		t.Errorf("2x accepted p99 = %.1fms, want <= %.0fms", rep2.LatencyMs.P99, boundMs)
	}

	// Traced run: tracing sampled on plus loadgen hints every 500th
	// request (hints force sampling and extend the exported timeline back
	// into the generator). The paired goodput gate is deliberately loose —
	// 0.9x the untraced 1x run — because CI hosts are noisy; the tracer's
	// budget claim (≤3% disabled, a few % at 1% sampling) is measured
	// precisely by the unit benches, not here.
	s.SetTraceSampleRate(0.01)
	run3 := base
	run3.Rate = sustainable
	run3.Duration = duration
	run3.TraceEvery = 500
	run3.StatusURL = "http://" + s.HTTPAddr() + "/status"
	rep3, err := loadgen.Run(t.Context(), run3)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	writeReport(t, artifacts, "report-traced.json", rep3)
	s.SetTraceSampleRate(0)
	t.Logf("traced: goodput %.0f (%.2fx of 1x), %d hinted", rep3.Goodput, rep3.Goodput/rep1.Goodput, rep3.Traced)
	if rep3.OK == 0 {
		t.Fatalf("traced run: zero successful responses: %+v", rep3)
	}
	if rep3.Goodput < 0.9*rep1.Goodput {
		t.Errorf("traced goodput %.0f fell more than 10%% below untraced 1x %.0f",
			rep3.Goodput, rep1.Goodput)
	}
	if rep3.ServerStages == nil {
		t.Error("traced run report carries no server stage breakdown (StatusURL scrape)")
	} else if rep3.ServerStages.Queue.Count == 0 {
		t.Errorf("server stage breakdown has no queue observations: %+v", rep3.ServerStages)
	}

	// The merged Perfetto export is the acceptance artifact: a sampled
	// request's server stages with its STM spans under the same pid.
	tracePath := filepath.Join(artifacts, "server-trace.json")
	raw := httpGetBody(t, "http://"+s.HTTPAddr()+"/debug/server/trace")
	if err := os.WriteFile(tracePath, raw, 0o644); err != nil {
		t.Fatalf("write trace export: %v", err)
	}
	assertMergedTrace(t, raw)

	// The /status shard table shows every shard's (t, c, phase).
	st := s.Status()
	writeReport(t, artifacts, "status.json", st)
	if st.Trace == nil || st.Trace.Sampled == 0 {
		t.Errorf("status trace block = %+v, want sampled > 0 after the traced run", st.Trace)
	}
	if len(st.ShardTable) != shards {
		t.Fatalf("shard table has %d rows, want %d", len(st.ShardTable), shards)
	}
	for _, row := range st.ShardTable {
		if row.Phase == "" || row.T <= 0 || row.C <= 0 {
			t.Errorf("shard %d: (t=%d c=%d phase=%q), want live tuner state", row.ID, row.T, row.C, row.Phase)
		}
	}

	// Shut down to flush the logs, then require independent decision
	// trails from at least two shards.
	rep := s.Shutdown(10 * time.Second)
	if !rep.Drained {
		t.Errorf("shutdown did not drain (abandoned %d)", rep.Abandoned)
	}
	shardsWithDecisions := 0
	for i := 0; i < shards; i++ {
		path := filepath.Join(decisionDir, fmt.Sprintf("shard-%d.jsonl", i))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("shard %d decision log: %v", i, err)
			continue
		}
		records := 0
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			var obj map[string]any
			if err := json.Unmarshal([]byte(line), &obj); err != nil {
				t.Errorf("shard %d decision log: malformed line %q: %v", i, line, err)
				break
			}
			records++
		}
		if records > 0 {
			shardsWithDecisions++
		}
	}
	if shardsWithDecisions < 2 {
		t.Errorf("only %d shard(s) logged tuning decisions, want >= 2 independent tuners", shardsWithDecisions)
	}

	// autopn-analyze merges the run's artifacts into one timeline — the
	// human-readable artifact CI uploads next to the Perfetto trace.
	var tl analyze.Timeline
	if err := tl.LoadDecisions(decisionDir); err != nil {
		t.Fatalf("analyze decisions: %v", err)
	}
	if err := tl.LoadDLQ(dlqPath); err != nil {
		t.Fatalf("analyze dlq: %v", err)
	}
	if err := tl.LoadTrace(tracePath); err != nil {
		t.Fatalf("analyze trace: %v", err)
	}
	var timeline strings.Builder
	if err := tl.Write(&timeline); err != nil {
		t.Fatalf("analyze write: %v", err)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "timeline.txt"), []byte(timeline.String()), 0o644); err != nil {
		t.Fatalf("write timeline: %v", err)
	}
	if !strings.Contains(timeline.String(), "trace") || !strings.Contains(timeline.String(), "measured") {
		t.Error("merged timeline is missing trace or tuner-decision lines")
	}
}

// httpGetBody fetches url, failing the test on error or non-200.
func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return body
}

// assertMergedTrace checks the acceptance property of the export: at
// least one pid carries both server stage slices and STM-category spans.
func assertMergedTrace(t *testing.T, raw []byte) {
	t.Helper()
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			PID  uint64 `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	stagePIDs := map[uint64]bool{}
	merged := false
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "server" && ev.Name != "request" {
			stagePIDs[ev.PID] = true
		}
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "stm" && stagePIDs[ev.PID] {
			merged = true
			break
		}
	}
	if len(stagePIDs) == 0 {
		t.Error("trace export has no server stage slices")
	}
	if !merged {
		t.Error("no pid carries both server stages and STM spans — the merged timeline property failed")
	}
}

// writeReport marshals v into the artifacts directory.
func writeReport(t *testing.T, dir, name string, v any) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), append(b, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
}
