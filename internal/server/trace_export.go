package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	stmtrace "autopn/internal/stm/trace"
)

// Merged Chrome trace_event export: every completed request trace becomes
// one process (pid = trace ID) whose threads carry, top to bottom,
//
//	tid 0  the issuing loadgen worker's send->reply slice (only when the
//	       client supplied a trace hint with a send timestamp)
//	tid 1  the server-side request: an umbrella slice accept->flush with
//	       the four stage slices (queue, exec, commit, flush) nested
//	       inside it by duration containment
//	tid 2+ the request's STM transaction-tree spans, pulled from the
//	       owning shard's span ring by trace-ID link
//
// so one Perfetto timeline walks a request from the load generator through
// admission, execution, commit and reply batching down into individual
// transaction attempts. All timestamps are re-anchored to the request
// tracer's epoch: each shard's STM tracer has its own epoch, and the
// export shifts its span times by the epoch difference.

// stmTIDBase offsets STM span thread IDs past the fixed client/request
// rows; the span ID keeps sibling attempts on distinct tracks.
const stmTIDBase = 2

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since the request tracer epoch
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// sliceEvent builds one complete ("X") event, clamping the duration away
// from zero (some viewers drop zero-duration X events).
func sliceEvent(name, cat string, pid, tid uint64, startNS, endNS int64, args map[string]any) traceEvent {
	dur := float64(endNS-startNS) / 1e3
	if dur <= 0 {
		dur = 0.001
	}
	return traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: float64(startNS) / 1e3, Dur: dur,
		PID: pid, TID: tid, Args: args,
	}
}

func metaEvent(kind string, pid, tid uint64, name string) traceEvent {
	return traceEvent{
		Name: kind, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	}
}

// lastMark is the latest stage timestamp the request reached — the
// umbrella slice's end when the reply never flushed.
func (d ReqTraceData) lastMark() int64 {
	last := d.AcceptNS
	for _, ns := range []int64{d.EnqueueNS, d.DequeueNS, d.FnDoneNS, d.ExecDoneNS, d.FlushNS} {
		if ns > last {
			last = ns
		}
	}
	return last
}

// requestEvents renders one completed request trace (without its STM
// spans, which linkedSpanEvents appends).
func (s *Server) requestEvents(d ReqTraceData, evs []traceEvent) []traceEvent {
	pid := d.ID
	name := fmt.Sprintf("req %d %s", d.ID, d.Op)
	if d.Key != "" {
		name += " " + d.Key
	}
	name += " (" + d.Outcome + ")"
	evs = append(evs, metaEvent("process_name", pid, 0, name))

	if d.ClientID != 0 && d.ClientSendNS != 0 {
		end := d.lastMark()
		if end > d.ClientSendNS {
			evs = append(evs, metaEvent("thread_name", pid, 0, "loadgen worker"))
			evs = append(evs, sliceEvent(
				fmt.Sprintf("client %016x", d.ClientID), "client",
				pid, 0, d.ClientSendNS, end,
				map[string]any{"client_id": fmt.Sprintf("%016x", d.ClientID)}))
		}
	}

	evs = append(evs, metaEvent("thread_name", pid, 1, "server request"))
	args := map[string]any{
		"trace_id": fmt.Sprintf("%016x", d.ID),
		"conn":     d.Conn,
		"outcome":  d.Outcome,
	}
	if d.Shard >= 0 {
		args["shard"] = d.Shard
	}
	evs = append(evs, sliceEvent("request", "server", pid, 1, d.AcceptNS, d.lastMark(), args))

	stageSlice := func(st stage, from, to int64) {
		if from == 0 || to == 0 || to < from {
			return
		}
		evs = append(evs, sliceEvent(stageNames[st], "server", pid, 1, from, to, nil))
	}
	stageSlice(stageQueue, d.EnqueueNS, d.DequeueNS)
	stageSlice(stageExec, d.DequeueNS, d.FnDoneNS)
	stageSlice(stageCommit, d.FnDoneNS, d.ExecDoneNS)
	stageSlice(stageFlush, d.ExecDoneNS, d.FlushNS)
	return evs
}

// linkedSpanEvents appends one shard's STM spans that belong to exported
// requests, re-anchored by the shard tracer's epoch offset. want maps
// trace ID -> true for requests in this export.
func (s *Server) linkedSpanEvents(sh *shard, want map[uint64]bool, evs []traceEvent) []traceEvent {
	spans := sh.tracer.Spans()
	// Top-level spans carry the link; children reach it through Root.
	rootLink := make(map[uint64]uint64)
	for _, d := range spans {
		if d.Parent == 0 && d.Link != 0 && want[d.Link] {
			rootLink[d.ID] = d.Link
		}
	}
	if len(rootLink) == 0 {
		return evs
	}
	offsetNS := int64(sh.tracer.Epoch().Sub(s.tracer.epoch))
	for _, d := range spans {
		link, ok := rootLink[d.Root]
		if !ok {
			continue
		}
		tid := stmTIDBase + d.ID
		evs = append(evs, metaEvent("thread_name", link, tid,
			fmt.Sprintf("stm s%d %s", sh.id, d.Name())))
		args := map[string]any{
			"outcome": d.Outcome.String(),
			"depth":   d.Depth,
			"attempt": d.Attempt,
			"shard":   sh.id,
		}
		if d.Reason != stmtrace.ReasonNone {
			args["abort_reason"] = d.Reason.String()
		}
		if d.Parent != 0 {
			args["parent_span"] = d.Parent
		}
		for phase, ns := range d.PhaseDurations() {
			args["phase_"+phase+"_us"] = float64(ns) / 1e3
		}
		evs = append(evs, sliceEvent(d.Name(), "stm", link, tid,
			d.Start+offsetNS, d.End+offsetNS, args))
	}
	return evs
}

// WriteTraceEvents writes the merged server + STM trace as Chrome
// trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (s *Server) WriteTraceEvents(w io.Writer) error {
	reqs := s.tracer.traces()
	want := make(map[uint64]bool, len(reqs))
	evs := make([]traceEvent, 0, 8*len(reqs))
	for _, d := range reqs {
		want[d.ID] = true
		evs = s.requestEvents(d, evs)
	}
	for _, sh := range s.shards {
		evs = s.linkedSpanEvents(sh, want, evs)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     evs,
		"otherData": map[string]any{
			"epoch_unix_ns": s.tracer.epoch.UnixNano(),
			"sample_rate":   s.tracer.sampleRate(),
			"traces":        len(reqs),
		},
	})
}

// serveTrace is the /debug/server/trace HTTP handler.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.WriteTraceEvents(w)
}
