package loadgen

import (
	"context"
	"math"
	"testing"
	"time"

	"autopn/internal/server"
)

func TestPercentileAndSummary(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := summarize(lat)
	if s.Count != 10 {
		t.Errorf("Count = %d, want 10", s.Count)
	}
	if math.Abs(s.Mean-5.5) > 1e-9 {
		t.Errorf("Mean = %v, want 5.5", s.Mean)
	}
	if math.Abs(s.P50-5.5) > 1e-9 {
		t.Errorf("P50 = %v, want 5.5", s.P50)
	}
	if s.Max != 10 {
		t.Errorf("Max = %v, want 10", s.Max)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if z := summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v, want zero", z)
	}
}

func TestBucketize(t *testing.T) {
	lat := []float64{0.05, 0.3, 3, 70, 9999}
	buckets := bucketize(lat)
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total != uint64(len(lat)) {
		t.Errorf("buckets count %d observations, want %d", total, len(lat))
	}
	if last := buckets[len(buckets)-1]; last.LEMs != -1 || last.Count != 1 {
		t.Errorf("overflow bucket = %+v, want le=-1 count=1", last)
	}
}

// TestOpGenDeterministicAndColocated: the same seed yields the same
// request stream, and every MADD batch stays on one shard of the ring.
func TestOpGenDeterministicAndColocated(t *testing.T) {
	opts := Options{Keys: 512, ZipfS: 1.2, ReadFrac: 0.4, MAddFrac: 0.5, MAddKeys: 3, Shards: 4, Seed: 42}
	opts.withDefaults()
	a, b := newOpGen(opts), newOpGen(opts)
	ring := server.NewRing(4, opts.VNodes)
	madds := 0
	for i := 0; i < 2000; i++ {
		la, lb := a.next(), b.next()
		if la != lb {
			t.Fatalf("streams diverge at %d: %q vs %q", i, la, lb)
		}
		req, code := parseLine(la)
		if code != "" {
			t.Fatalf("generated unparseable line %q: %s", la, code)
		}
		if req.op == "MADD" {
			madds++
			shard := ring.Lookup(req.keys[0])
			for _, k := range req.keys[1:] {
				if ring.Lookup(k) != shard {
					t.Fatalf("MADD %q spans shards %d and %d", la, shard, ring.Lookup(k))
				}
			}
		}
	}
	if madds == 0 {
		t.Error("stream contains no MADD despite MAddFrac=0.5")
	}
}

// parseLine is a minimal test-side parse of generated request lines.
type genReq struct {
	op   string
	keys []string
}

func parseLine(line string) (genReq, string) {
	fields := splitFields(line)
	if len(fields) == 0 {
		return genReq{}, "empty"
	}
	r := genReq{op: fields[0]}
	switch fields[0] {
	case "GET":
		r.keys = fields[1:]
	case "ADD", "PUT":
		if len(fields) != 3 {
			return r, "arity"
		}
		r.keys = []string{fields[1]}
	case "MADD":
		if len(fields)%2 != 1 {
			return r, "arity"
		}
		for i := 1; i < len(fields); i += 2 {
			r.keys = append(r.keys, fields[i])
		}
	default:
		return r, "op"
	}
	return r, ""
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// TestRunAgainstLiveServer wires the generator to a real in-process
// server at a gentle rate and checks the report adds up.
func TestRunAgainstLiveServer(t *testing.T) {
	s, err := server.New(server.Options{
		Shards:       2,
		Keys:         1024,
		DisableTuner: true,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	defer s.Shutdown(5 * time.Second)

	rep, err := Run(context.Background(), Options{
		Addr:     s.Addr(),
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Conns:    2,
		Keys:     1024,
		Shards:   2,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Sent == 0 {
		t.Fatal("report: nothing sent")
	}
	if rep.OK == 0 {
		t.Fatal("report: no successful responses against an idle server")
	}
	accounted := rep.OK + rep.Overload + rep.BreakerOpen + rep.Timeouts + rep.Errors
	if accounted < rep.Sent {
		t.Errorf("responses unaccounted: sent %d, accounted %d (%+v)", rep.Sent, accounted, rep)
	}
	if rep.Goodput <= 0 {
		t.Errorf("Goodput = %v, want > 0", rep.Goodput)
	}
	if rep.LatencyMs.Count != rep.OK {
		t.Errorf("latency count %d != OK %d", rep.LatencyMs.Count, rep.OK)
	}
	if rep.LatencyMs.P99 < rep.LatencyMs.P50 {
		t.Errorf("p99 %v < p50 %v", rep.LatencyMs.P99, rep.LatencyMs.P50)
	}
	var histTotal uint64
	for _, b := range rep.Histogram {
		histTotal += b.Count
	}
	if histTotal != rep.OK {
		t.Errorf("histogram counts %d observations, want %d", histTotal, rep.OK)
	}
	if _, err := Run(context.Background(), Options{Addr: s.Addr()}); err == nil {
		t.Error("Run with Rate=0 should error")
	}
}
