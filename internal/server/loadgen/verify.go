package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the loadgen's durability-verification side: while a run is
// in -verify mode, every *acked* write (a PUT/ADD/MADD the server answered
// OK or VALUE) is journaled to a client-side ledger file as it completes.
// After the server is killed and restarted, Audit sweeps the ledger's keys
// with GETs and checks the ack contract: every acked delta must still be
// reflected in the store. The invariant is one-sided — the recovered value
// must be at least the acked sum, because a request the client counted as
// timed out may still have committed server-side (the serving layer's
// late-success path) and its delta then legitimately survives the crash.

// AckRecord is one acked write in the ledger (one JSON line).
type AckRecord struct {
	// Op is "PUT", "ADD" or "MADD".
	Op string `json:"op"`
	// Keys are the written keys (one for PUT/ADD).
	Keys []string `json:"keys"`
	// Deltas are the per-key increments of an ADD/MADD.
	Deltas []uint64 `json:"deltas,omitempty"`
	// Val is the absolute value of a PUT.
	Val uint64 `json:"val,omitempty"`
}

// Ledger is the append-only acked-write journal. Safe for concurrent use
// (every connection reader records into it); each record is flushed
// through to the file immediately, so a ledger is complete up to the
// moment the client stopped — the property the kill-and-recover audit
// depends on.
type Ledger struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	count uint64
	err   error
}

// NewLedger creates (truncating) the ledger at path.
func NewLedger(path string) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Ledger{f: f, w: bufio.NewWriter(f)}, nil
}

// record journals one acked write. Errors are sticky.
func (l *Ledger) record(r *AckRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		l.err = err
		return
	}
	// Flush per record: the journal must survive the client being stopped
	// abruptly mid-run (no fsync — it is the *server's* crash under test,
	// not the client host's).
	if err := l.w.Flush(); err != nil {
		l.err = err
		return
	}
	l.count++
}

// Count returns how many acked writes were journaled.
func (l *Ledger) Count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Close flushes and closes the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ferr := l.w.Flush()
	cerr := l.f.Close()
	if l.err != nil {
		return l.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// LostKey is one audit failure: a key whose recovered value is below the
// sum the server acked.
type LostKey struct {
	Key  string `json:"key"`
	Want uint64 `json:"want"` // sum of acked deltas
	Got  uint64 `json:"got"`  // recovered value
}

// AuditReport is the post-restart verification summary — the artifact the
// recovery-e2e gate asserts on (LostAcks must be zero).
type AuditReport struct {
	// Records is how many ledger lines were read.
	Records int `json:"records"`
	// KeysChecked is how many distinct keys were swept with GET.
	KeysChecked int `json:"keys_checked"`
	// KeysTainted counts keys touched by an acked PUT: absolute writes
	// make the delta-sum invariant unverifiable, so those keys are
	// journaled but skipped by the strict audit.
	KeysTainted int `json:"keys_tainted,omitempty"`
	// AckedDeltas is the total acked increment volume audited.
	AckedDeltas uint64 `json:"acked_deltas"`
	// LostAcks is how many keys recovered below their acked sum — acked
	// writes the crash lost. The gate requires zero.
	LostAcks int `json:"lost_acks"`
	// LostDetail samples up to 10 lost keys.
	LostDetail []LostKey `json:"lost_detail,omitempty"`
	// LateSurplus is how many keys recovered *above* their acked sum:
	// unacked-but-committed writes (timeouts whose transaction still
	// committed). Expected under load, not a failure.
	LateSurplus int `json:"late_surplus"`
	// SweepErrors counts GETs that failed during the sweep.
	SweepErrors int `json:"sweep_errors"`
}

// Audit replays the ledger at path against the (restarted) server at addr:
// it sums acked deltas per key, sweeps those keys with pipelined GETs, and
// reports every key whose recovered value is below its acked sum.
func Audit(addr, path string) (AuditReport, error) {
	var rep AuditReport
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	sums := make(map[string]uint64)
	tainted := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r AckRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			_ = f.Close()
			return rep, fmt.Errorf("ledger line %d: %w", rep.Records+1, err)
		}
		rep.Records++
		switch r.Op {
		case "PUT":
			for _, k := range r.Keys {
				tainted[k] = true
			}
		default:
			for i, k := range r.Keys {
				if i < len(r.Deltas) {
					sums[k] += r.Deltas[i]
					rep.AckedDeltas += r.Deltas[i]
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		_ = f.Close()
		return rep, err
	}
	_ = f.Close()
	rep.KeysTainted = len(tainted)

	keys := make([]string, 0, len(sums))
	for k := range sums {
		if !tainted[k] {
			keys = append(keys, k)
		}
	}
	got, errs, err := sweep(addr, keys)
	if err != nil {
		return rep, err
	}
	rep.SweepErrors = errs
	for _, k := range keys {
		v, ok := got[k]
		if !ok {
			continue // sweep error, already counted
		}
		rep.KeysChecked++
		switch {
		case v < sums[k]:
			rep.LostAcks++
			if len(rep.LostDetail) < 10 {
				rep.LostDetail = append(rep.LostDetail, LostKey{Key: k, Want: sums[k], Got: v})
			}
		case v > sums[k]:
			rep.LateSurplus++
		}
	}
	return rep, nil
}

// sweep GETs every key over one pipelined connection and returns the
// observed values.
func sweep(addr string, keys []string) (map[string]uint64, int, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, 0, fmt.Errorf("audit dial %s: %w", addr, err)
	}
	defer func() { _ = nc.Close() }()
	out := make(map[string]uint64, len(keys))
	errs := 0

	// Pipeline in windows so neither side's buffers are overrun.
	const window = 512
	w := bufio.NewWriter(nc)
	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<10)
	for at := 0; at < len(keys); at += window {
		end := at + window
		if end > len(keys) {
			end = len(keys)
		}
		for _, k := range keys[at:end] {
			if _, err := w.WriteString("GET " + k + "\n"); err != nil {
				return nil, 0, err
			}
		}
		if err := w.Flush(); err != nil {
			return nil, 0, err
		}
		for _, k := range keys[at:end] {
			if !sc.Scan() {
				return nil, 0, fmt.Errorf("audit sweep: connection closed mid-sweep: %v", sc.Err())
			}
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "VALUE "); ok {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					errs++
					continue
				}
				out[k] = n
			} else {
				errs++
			}
		}
	}
	return out, errs, nil
}

// verifyRecord builds the AckRecord for one generated request line, or nil
// for reads. Lines come from opGen, so the shapes are exactly GET/ADD/MADD
// (and PUT for completeness).
func verifyRecord(line string) *AckRecord {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil
	}
	switch fields[0] {
	case "PUT":
		if len(fields) != 3 {
			return nil
		}
		v, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil
		}
		return &AckRecord{Op: "PUT", Keys: []string{fields[1]}, Val: v}
	case "ADD":
		if len(fields) != 3 {
			return nil
		}
		d, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil
		}
		return &AckRecord{Op: "ADD", Keys: []string{fields[1]}, Deltas: []uint64{d}}
	case "MADD":
		pairs := fields[1:]
		if len(pairs)%2 != 0 {
			return nil
		}
		r := &AckRecord{Op: "MADD"}
		for i := 0; i < len(pairs); i += 2 {
			d, err := strconv.ParseUint(pairs[i+1], 10, 64)
			if err != nil {
				return nil
			}
			r.Keys = append(r.Keys, pairs[i])
			r.Deltas = append(r.Deltas, d)
		}
		return r
	}
	return nil
}
