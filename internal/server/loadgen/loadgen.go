// Package loadgen is the open-loop load generator for the autopn-server
// serving layer. It simulates a large population of concurrent users:
// request arrivals follow a fixed open-loop schedule (they do NOT wait for
// earlier responses — the defining property that lets offered load exceed
// capacity and exercise the server's load shedding), keys are drawn with
// zipfian skew (a few hot keys, a long cold tail), and the read/write mix
// and multi-key transaction fraction are configurable. It reports p50/p95/
// p99 latency over accepted requests, goodput, and the shed rate.
package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/server"
)

// Options configures one load-generation run.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Conns is the connection pool size; arrivals are spread round-robin
	// and pipelined, so a few connections carry many in-flight requests
	// (default 8).
	Conns int
	// MaxInFlight bounds outstanding requests; arrivals past it are
	// counted as Dropped (client-side shed) instead of queueing without
	// bound (default 4096).
	MaxInFlight int

	// Keys is the addressed key-space size; must not exceed the server's
	// (default 16384).
	Keys int
	// ZipfS is the zipfian skew exponent (> 1; values near 1 are mild,
	// 1.3+ is heavily skewed). <= 1 selects uniform keys (default 1.1).
	ZipfS float64
	// ReadFrac is the fraction of GET requests (default 0.5).
	ReadFrac float64
	// MAddFrac is the fraction of *write* requests issued as multi-key
	// MADD transactions (default 0.2; requires Shards > 0).
	MAddFrac float64
	// MAddKeys is how many keys an MADD touches (default 4).
	MAddKeys int
	// HotKeys, when > 0, concentrates HotFrac of the write traffic
	// (PUT/ADD and MADD primaries) uniformly on the first HotKeys key
	// indices — a deliberately contended hot set on top of the zipfian
	// base distribution, the workload shape the contention scheduler
	// targets. 0 (default) disables concentration.
	HotKeys int
	// HotFrac is the fraction of write traffic aimed at the hot set when
	// HotKeys > 0 (default 0.9).
	HotFrac float64
	// Shards and VNodes mirror the server's ring so MADD keys can be
	// colocated on one shard client-side. Shards = 0 disables MADD.
	Shards int
	VNodes int

	// Seed makes the generated request stream reproducible (default 1).
	Seed uint64
	// DrainTimeout bounds the post-run wait for outstanding responses
	// (default 5s).
	DrainTimeout time.Duration

	// TraceEvery, when > 0, prefixes every Nth sent request with a trace
	// hint (t=<hex-id>@<unix-nanos>) carrying the generator's own request
	// ID and send timestamp. While the server has tracing enabled, hinted
	// requests are force-sampled and their exported timelines extend one
	// hop back into the load generator. 0 (default) sends no hints.
	TraceEvery int
	// StatusURL, when non-empty, is the server's /status endpoint; after
	// the run the report embeds the server-side stage breakdown and trace
	// counters scraped from it (best-effort: scrape errors leave the
	// fields nil rather than failing the run).
	StatusURL string

	// VerifyLedger, when non-empty, journals every acked write (PUT/ADD/
	// MADD answered OK or VALUE) to this file as it completes — the
	// client-side ledger the post-restart Audit sweeps to prove no acked
	// write was lost to a crash (see verify.go).
	VerifyLedger string
}

func (o *Options) withDefaults() {
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4096
	}
	if o.Keys <= 0 {
		o.Keys = 16384
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.1
	}
	if o.ReadFrac == 0 {
		o.ReadFrac = 0.5
	}
	if o.MAddFrac == 0 {
		o.MAddFrac = 0.2
	}
	if o.MAddKeys <= 1 {
		o.MAddKeys = 4
	}
	if o.HotKeys > 0 && o.HotFrac == 0 {
		o.HotFrac = 0.9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
}

// Bucket is one latency-histogram bucket of the report.
type Bucket struct {
	// LEMs is the bucket's inclusive upper bound in milliseconds.
	LEMs float64 `json:"le_ms"`
	// Count is how many accepted requests finished within the bound
	// (non-cumulative).
	Count uint64 `json:"count"`
}

// Report is the run summary, JSON-marshaled by cmd/autopn-loadgen and the
// CI artifact the server-e2e job uploads.
type Report struct {
	Rate            float64 `json:"rate"`
	DurationSeconds float64 `json:"duration_seconds"`

	Sent        uint64 `json:"sent"`
	OK          uint64 `json:"ok"`
	Overload    uint64 `json:"overload"`     // ERR overload replies (server shed)
	BreakerOpen uint64 `json:"breaker_open"` // ERR breaker-open replies
	Timeouts    uint64 `json:"timeouts"`     // ERR timeout replies + drain-expired
	Errors      uint64 `json:"errors"`       // other ERR replies
	Dropped     uint64 `json:"dropped"`      // client-side: in-flight cap hit

	// Goodput is accepted (OK) responses per second of run duration.
	Goodput float64 `json:"goodput"`
	// ShedRate is (Overload+BreakerOpen)/Sent.
	ShedRate float64 `json:"shed_rate"`

	// Latency summarizes accepted-request latency in milliseconds.
	LatencyMs LatencySummary `json:"latency_ms"`
	// Histogram is the accepted-latency distribution over log-spaced
	// bucket bounds.
	Histogram []Bucket `json:"histogram"`

	// Traced counts requests sent with a trace hint (Options.TraceEvery).
	Traced uint64 `json:"traced,omitempty"`
	// AckedWrites counts writes journaled to the verify ledger
	// (Options.VerifyLedger).
	AckedWrites uint64 `json:"acked_writes,omitempty"`
	// ServerStages is the server's queue/exec/commit/flush decomposition
	// scraped from Options.StatusURL after the run; ServerTrace its
	// tracer counters. Both nil when no StatusURL was given or the
	// scrape failed.
	ServerStages *server.StageBreakdown `json:"server_stages,omitempty"`
	ServerTrace  *server.TraceStatus    `json:"server_trace,omitempty"`
}

// LatencySummary is the order-statistics block of a Report.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// conn is one pooled connection with its in-order pending FIFO.
type conn struct {
	c     net.Conn
	w     *bufio.Writer
	dirty bool // buffered writes awaiting a flush (arrival loop only)
	pend  chan pendEntry
}

type pendEntry struct {
	sent time.Time
	// rec is the acked-write ledger record to journal if the request is
	// answered OK/VALUE; nil for reads and non-verify runs.
	rec *AckRecord
}

// run state shared across connection readers.
type runState struct {
	mu        sync.Mutex
	latencies []float64 // accepted-request latency (ms)

	ok, overload, breakerOpen, timeouts, errs atomic.Uint64
	inflight                                  chan struct{}
	ledger                                    *Ledger // nil = verify off
}

// Run executes one load-generation run against a live server and returns
// the report. ctx cancellation stops arrivals early; already-sent requests
// are still drained.
func Run(ctx context.Context, o Options) (Report, error) {
	o.withDefaults()
	if o.Rate <= 0 {
		return Report{}, fmt.Errorf("loadgen: Rate must be > 0")
	}

	st := &runState{inflight: make(chan struct{}, o.MaxInFlight)}
	if o.VerifyLedger != "" {
		ledger, err := NewLedger(o.VerifyLedger)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: verify ledger: %w", err)
		}
		st.ledger = ledger
	}
	conns := make([]*conn, 0, o.Conns)
	var readers sync.WaitGroup
	for i := 0; i < o.Conns; i++ {
		nc, err := net.DialTimeout("tcp", o.Addr, 5*time.Second)
		if err != nil {
			for _, c := range conns {
				_ = c.c.Close()
			}
			return Report{}, fmt.Errorf("loadgen: dial %s: %w", o.Addr, err)
		}
		c := &conn{c: nc, w: bufio.NewWriter(nc), pend: make(chan pendEntry, o.MaxInFlight)}
		conns = append(conns, c)
		readers.Add(1)
		go func() {
			defer readers.Done()
			readLoop(c, st)
		}()
	}

	gen := newOpGen(o)
	start := time.Now()
	deadline := start.Add(o.Duration)
	var sent, dropped, traced uint64
	interval := float64(time.Second) / o.Rate

	// Writes are buffered and flushed only when the schedule is about to
	// sleep: when arrivals are due faster than the loop runs (the whole
	// point of overload runs), consecutive sends batch into one syscall
	// instead of burning a flush per request.
	flushDirty := func() {
		for _, c := range conns {
			if c.dirty {
				_ = c.w.Flush()
				c.dirty = false
			}
		}
	}
	for i := 0; ; i++ {
		due := start.Add(time.Duration(float64(i) * interval))
		if due.After(deadline) || ctx.Err() != nil {
			break
		}
		if d := time.Until(due); d > 0 {
			flushDirty()
			time.Sleep(d)
		}
		select {
		case st.inflight <- struct{}{}:
		default:
			// Open-loop discipline: when the in-flight cap is hit the
			// arrival is dropped and counted, never queued client-side.
			dropped++
			continue
		}
		line := gen.next()
		c := conns[int(sent)%len(conns)]
		now := time.Now()
		var rec *AckRecord
		if st.ledger != nil {
			rec = verifyRecord(line)
		}
		if o.TraceEvery > 0 && sent%uint64(o.TraceEvery) == 0 {
			// The hint ID is the 1-based sent index: unique within the run
			// and trivially mapped back to the generator's schedule.
			line = fmt.Sprintf("t=%x@%d %s", sent+1, now.UnixNano(), line)
			traced++
		}
		c.pend <- pendEntry{sent: now, rec: rec}
		if _, err := c.w.WriteString(line + "\n"); err == nil {
			c.dirty = true
		}
		sent++
	}
	flushDirty()
	elapsed := time.Since(start)

	// Drain: wait for outstanding responses, bounded.
	drainDeadline := time.Now().Add(o.DrainTimeout)
	for len(st.inflight) > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	expired := uint64(len(st.inflight))
	st.timeouts.Add(expired)
	for _, c := range conns {
		_ = c.c.Close()
		close(c.pend)
	}
	readers.Wait()

	rep := Report{
		Rate:            o.Rate,
		DurationSeconds: elapsed.Seconds(),
		Sent:            sent,
		OK:              st.ok.Load(),
		Overload:        st.overload.Load(),
		BreakerOpen:     st.breakerOpen.Load(),
		Timeouts:        st.timeouts.Load(),
		Errors:          st.errs.Load(),
		Dropped:         dropped,
		Traced:          traced,
	}
	if st.ledger != nil {
		rep.AckedWrites = st.ledger.Count()
		if err := st.ledger.Close(); err != nil {
			return rep, fmt.Errorf("loadgen: verify ledger: %w", err)
		}
	}
	if rep.DurationSeconds > 0 {
		rep.Goodput = float64(rep.OK) / rep.DurationSeconds
	}
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Overload+rep.BreakerOpen) / float64(rep.Sent)
	}
	st.mu.Lock()
	rep.LatencyMs = summarize(st.latencies)
	rep.Histogram = bucketize(st.latencies)
	st.mu.Unlock()
	if o.StatusURL != "" {
		if status, err := fetchStatus(o.StatusURL); err == nil {
			rep.ServerStages = status.Stages
			rep.ServerTrace = status.Trace
		}
	}
	return rep, nil
}

// fetchStatus scrapes the server's /status endpoint.
func fetchStatus(url string) (server.Status, error) {
	var st server.Status
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("loadgen: status scrape: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// readLoop consumes responses on one connection, matching them FIFO to
// the pending sends (the server answers in order). Latencies accumulate
// in a local buffer and merge once at exit, keeping the shared mutex off
// the per-response path.
func readLoop(c *conn, st *runState) {
	local := make([]float64, 0, 4096)
	defer func() {
		st.mu.Lock()
		st.latencies = append(st.latencies, local...)
		st.mu.Unlock()
	}()
	sc := bufio.NewScanner(c.c)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<10)
	for sc.Scan() {
		e, ok := <-c.pend
		if !ok {
			return
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "VALUE"), line == "OK", line == "PONG":
			st.ok.Add(1)
			local = append(local, float64(time.Since(e.sent))/float64(time.Millisecond))
			if e.rec != nil && st.ledger != nil {
				// Journal the ack the moment it is observed: anything in
				// the ledger was answered OK before any crash.
				st.ledger.record(e.rec)
			}
		case line == "ERR "+server.ErrCodeOverload:
			st.overload.Add(1)
		case line == "ERR "+server.ErrCodeBreakerOpen:
			st.breakerOpen.Add(1)
		case line == "ERR "+server.ErrCodeTimeout:
			st.timeouts.Add(1)
		default:
			st.errs.Add(1)
		}
		<-st.inflight
	}
	// Connection closed: entries still pending were accounted as expired
	// by the drain loop; just stop.
}

// summarize computes the latency order statistics (destructive sort).
func summarize(lat []float64) LatencySummary {
	s := LatencySummary{Count: uint64(len(lat))}
	if len(lat) == 0 {
		return s
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	s.Mean = total / float64(len(sorted))
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// bucketBounds are the log-spaced latency histogram bounds (ms).
var bucketBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// bucketize counts latencies into non-cumulative log-spaced buckets; the
// final bucket (LEMs = +inf rendered as -1) catches the overflow.
func bucketize(lat []float64) []Bucket {
	out := make([]Bucket, len(bucketBounds)+1)
	for i, b := range bucketBounds {
		out[i].LEMs = b
	}
	out[len(bucketBounds)].LEMs = -1 // +inf
	for _, v := range lat {
		placed := false
		for i, b := range bucketBounds {
			if v <= b {
				out[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			out[len(bucketBounds)].Count++
		}
	}
	return out
}

// percentile returns the p-th percentile of sorted (nearest-rank with
// linear interpolation, matching obs.Histogram).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// opGen generates the deterministic request stream: zipfian key draws,
// read/write mix, and shard-colocated MADD batches.
type opGen struct {
	o      Options
	rng    *rand.Rand
	zipf   *rand.Zipf
	ring   *server.Ring
	byShrd [][]int // key indices per shard (for MADD colocation)
}

func newOpGen(o Options) *opGen {
	g := &opGen{o: o, rng: rand.New(rand.NewSource(int64(o.Seed)))} //nolint:gosec // deterministic workload stream, not crypto
	if o.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, o.ZipfS, 1, uint64(o.Keys-1))
	}
	if o.Shards > 0 {
		g.ring = server.NewRing(o.Shards, o.VNodes)
		g.byShrd = make([][]int, o.Shards)
		for i := 0; i < o.Keys; i++ {
			s := g.ring.Lookup(server.KeyName(i))
			g.byShrd[s] = append(g.byShrd[s], i)
		}
	}
	return g
}

// key draws one key index with the configured skew.
func (g *opGen) key() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(g.o.Keys)
}

// writeKey draws a write's key index: with a hot set configured, HotFrac
// of writes land uniformly on the first HotKeys keys.
func (g *opGen) writeKey() int {
	if g.o.HotKeys > 0 && g.rng.Float64() < g.o.HotFrac {
		return g.rng.Intn(g.o.HotKeys)
	}
	return g.key()
}

// next renders the next request line.
func (g *opGen) next() string {
	if g.rng.Float64() < g.o.ReadFrac {
		return "GET " + server.KeyName(g.key())
	}
	k := server.KeyName(g.writeKey())
	if g.ring != nil && g.rng.Float64() < g.o.MAddFrac {
		// Colocate the batch on the primary key's shard so the server can
		// run it as one transaction with parallel nested children.
		shard := g.ring.Lookup(k)
		keys := g.byShrd[shard]
		var b strings.Builder
		b.WriteString("MADD ")
		b.WriteString(k)
		b.WriteString(" 1")
		for i := 1; i < g.o.MAddKeys && len(keys) > 1; i++ {
			extra := keys[g.rng.Intn(len(keys))]
			fmt.Fprintf(&b, " %s 1", server.KeyName(extra))
		}
		return b.String()
	}
	return fmt.Sprintf("ADD %s %d", k, 1+g.rng.Intn(8))
}
