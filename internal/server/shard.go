package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autopn"
	"autopn/internal/chaos"
	"autopn/internal/obs"
	"autopn/internal/sched"
	"autopn/internal/stm"
	stmtrace "autopn/internal/stm/trace"
	"autopn/internal/wal"
)

// shard is one independent slice of the store: its own STM universe, its
// own key subset, its own bounded admission queue and worker pool, its own
// circuit breaker, and its own autopn tuner converging a per-shard (t, c).
// Shards share nothing but the dead-letter log and the metrics registry,
// so a wedged or mistuned shard cannot stall its siblings.
type shard struct {
	id    int
	stm   *stm.STM
	store map[string]*stm.VBox[uint64] // immutable after New

	queue   chan *request
	stop    chan struct{}
	timeout time.Duration

	breaker *Breaker
	dlq     *DLQ

	tuner *autopn.Tuner
	sched *sched.Scheduler // contention-aware lane scheduler (nil = off)
	ring  *obs.Ring        // per-shard decision tail for /status
	jsonl *obs.JSONLFile   // per-shard persisted decision log (nil = off)
	inj   *chaos.Injector
	wal   *shardWAL // durability (nil = off); see durability.go

	// tracer is this shard's STM span tracer: sampled requests force-trace
	// their transaction trees into it, linked by request trace ID (the
	// ambient STM sample rate stays 0, so only request-claimed trees land
	// here). stages are the shard's per-stage latency histograms.
	tracer *stmtrace.Tracer
	stages *[numStages]*obs.Histogram

	// draining rejects new submissions while shutdown drains the queue.
	draining atomic.Bool
	// executing counts requests a worker has dequeued but not yet finished.
	executing atomic.Int64

	wg sync.WaitGroup // workers

	// Counters (served by /status and bridged into the registry).
	accepted   atomic.Uint64 // enqueued
	shed       atomic.Uint64 // rejected: queue full
	brkRejects atomic.Uint64 // rejected: breaker open
	timeouts   atomic.Uint64 // expired before completion
	served     atomic.Uint64 // replied successfully
	userErrors atomic.Uint64 // bad keys, cross-shard, execution errors
	lateOK     atomic.Uint64 // completed after the deadline timer replied

	latency *obs.Histogram // accepted-request latency, milliseconds
	global  *obs.Histogram // server-wide latency histogram (shared)
}

// submit routes one request through the shard's admission-control front
// door: shutdown drain check, circuit breaker, bounded queue. Exactly one
// reply is always produced — immediately on rejection, by a worker or the
// deadline timer otherwise.
func (sh *shard) submit(req *request) {
	if sh.draining.Load() {
		sh.reject(req, ErrCodeShutdown)
		return
	}
	if !sh.breaker.Allow() {
		sh.brkRejects.Add(1)
		sh.reject(req, ErrCodeBreakerOpen)
		return
	}
	req.enq = time.Now()
	if rt := req.tr; rt != nil {
		// Take the exec side's ownership reference before the request can
		// reach a worker, and stamp the enqueue mark first so a worker's
		// dequeue mark can never precede it.
		rt.refs.Add(1)
		rt.shard = int32(sh.id)
		rt.enq.Store(rt.tr.now())
	}
	select {
	case sh.queue <- req:
		sh.accepted.Add(1)
		// The deadline watchdog: if no worker finishes the request in
		// time (wedged shard, long queue), the timer answers with a typed
		// timeout, feeds the breaker a failure, and leaves a dead letter.
		// finish()'s CAS guarantees the worker and the timer never both
		// reply. Armed only after admission so the shed path below stays
		// free of timer churn at full overload rate.
		req.armDeadline(sh.timeout, func() {
			if req.finish(respErr(ErrCodeTimeout)) {
				sh.timeouts.Add(1)
				sh.breaker.ReportFailure()
				sh.dlq.Record(DeadLetter{Shard: sh.id, Op: req.kind.String(), Key: req.key, Reason: ErrCodeTimeout})
			}
		})
	default:
		// Load shedding: the queue is full, so the request is refused
		// *now* with the typed overload reply rather than queued into a
		// latency cliff. The breaker sees the shed as a success-neutral
		// event (it was never admitted to execution), but the dead-letter
		// log records it.
		if req.finish(respErr(ErrCodeOverload)) {
			sh.shed.Add(1)
			sh.dlq.Record(DeadLetter{Shard: sh.id, Op: req.kind.String(), Key: req.key, Reason: ErrCodeOverload})
		}
		// The breaker admitted the request but it never executed; undo the
		// probe accounting so a shed cannot wedge the breaker half-open.
		sh.breaker.Forget()
		if rt := req.tr; rt != nil {
			rt.release() // no worker will see this request
		}
	}
}

// reject replies immediately with the given code and records a dead letter.
func (sh *shard) reject(req *request, code string) {
	if req.finish(respErr(code)) {
		sh.dlq.Record(DeadLetter{Shard: sh.id, Op: req.kind.String(), Key: req.key, Reason: code})
	}
}

// runWorkers launches n executor goroutines.
func (sh *shard) runWorkers(n int) {
	for i := 0; i < n; i++ {
		sh.wg.Add(1)
		go func() {
			defer sh.wg.Done()
			for {
				select {
				case req := <-sh.queue:
					sh.execute(req)
				case <-sh.stop:
					return
				}
			}
		}()
	}
}

// execute runs one dequeued request against the shard's STM and replies.
func (sh *shard) execute(req *request) {
	sh.executing.Add(1)
	defer sh.executing.Add(-1)
	rt := req.tr
	if rt != nil {
		defer rt.release() // exec side done with the record
	}
	if req.replied.Load() {
		// Expired in the queue; the deadline timer already answered and
		// accounted for it.
		return
	}
	if rt != nil {
		rt.deq.Store(rt.tr.now())
	}
	ctx, cancel := context.WithDeadline(context.Background(), req.enq.Add(sh.timeout))
	resp, err := sh.exec(ctx, req)
	cancel()
	if rt != nil {
		rt.execDone.Store(rt.tr.now())
	}
	switch {
	case err == nil:
		if req.finish(resp) {
			sh.served.Add(1)
			sh.breaker.ReportSuccess()
			ms := float64(time.Since(req.enq)) / float64(time.Millisecond)
			sh.latency.Observe(ms)
			sh.global.Observe(ms)
		} else {
			// The deadline timer beat us to the reply; the work still
			// committed (late success), the breaker already saw the
			// failure.
			sh.lateOK.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		if req.finish(respErr(ErrCodeTimeout)) {
			sh.timeouts.Add(1)
			sh.breaker.ReportFailure()
			sh.dlq.Record(DeadLetter{Shard: sh.id, Op: req.kind.String(), Key: req.key, Reason: ErrCodeTimeout})
		}
	case errors.Is(err, errWAL):
		// The transaction committed but could not be made durable: the
		// ack contract (acked writes survive a crash) is broken, so the
		// client gets the typed WAL error and the breaker sees a failure.
		// WAL errors are sticky, so the breaker opens within a window and
		// the shard stops accepting updates it cannot honor.
		if req.finish(respErr(ErrCodeWAL)) {
			sh.userErrors.Add(1)
			sh.breaker.ReportFailure()
			sh.dlq.Record(DeadLetter{Shard: sh.id, Op: req.kind.String(), Key: req.key, Reason: ErrCodeWAL})
		}
	default:
		// Protocol-level errors (unknown key, cross-shard) are the
		// client's fault, not the shard's health: reply without feeding
		// the breaker a failure.
		if req.finish(respErr(err.Error())) {
			sh.userErrors.Add(1)
			sh.breaker.ReportSuccess()
		}
	}
}

// errCode wraps a protocol error code as an error for exec's return path.
type errCode string

func (e errCode) Error() string { return string(e) }

// atomicUpdate runs fn as an update transaction and returns the STM
// commit version that published it (the WAL path's last-writer-wins
// ordering key). Traced requests force the tree into the shard's STM
// tracer linked by trace ID, and stamp the fn-done mark at the end of
// every attempt (the last attempt's stamp survives), which is what
// separates the exec stage — transaction body, retries included — from
// the commit stage.
// The hint parameter declares the request's scheduling intent — the
// conflict key of the box it is about to write — so an attempt on a
// promoted hot domain is steered onto its lane from attempt zero rather
// than after a first wasted abort. Zero means no declared intent; with the
// scheduler off the hint is simply ignored.
func (sh *shard) atomicUpdate(ctx context.Context, req *request, hint uintptr, fn func(tx *stm.Tx) error) (uint64, error) {
	rt := req.tr
	if rt == nil {
		return sh.stm.AtomicVersionedCtxHint(ctx, hint, fn)
	}
	return sh.stm.AtomicVersionedTracedHint(ctx, rt.id, hint, func(tx *stm.Tx) error {
		err := fn(tx)
		rt.fnDone.Store(rt.tr.now())
		return err
	})
}

// atomicRead is atomicUpdate's read-only counterpart.
func (sh *shard) atomicRead(req *request, fn func(tx *stm.Tx) error) error {
	rt := req.tr
	if rt == nil {
		return sh.stm.AtomicReadOnly(fn)
	}
	return sh.stm.AtomicReadOnlyTraced(rt.id, func(tx *stm.Tx) error {
		err := fn(tx)
		rt.fnDone.Store(rt.tr.now())
		return err
	})
}

// exec performs the transactional work of one request.
func (sh *shard) exec(ctx context.Context, req *request) (string, error) {
	switch req.kind {
	case opPing:
		return respPong, nil
	case opGet:
		box, ok := sh.store[req.key]
		if !ok {
			return "", errCode(ErrCodeUnknownKey)
		}
		var v uint64
		err := sh.atomicRead(req, func(tx *stm.Tx) error {
			v = box.Get(tx)
			return nil
		})
		if err != nil {
			return "", err
		}
		return respValue(v), nil
	case opPut:
		box, ok := sh.store[req.key]
		if !ok {
			return "", errCode(ErrCodeUnknownKey)
		}
		ver, err := sh.atomicUpdate(ctx, req, box.ConflictKey(), func(tx *stm.Tx) error {
			box.Set(tx, req.arg)
			return nil
		})
		if err != nil {
			return "", err
		}
		if err := sh.logUpdate(wal.OpPut, req.key, req.arg, ver); err != nil {
			return "", err
		}
		return respOK, nil
	case opAdd:
		box, ok := sh.store[req.key]
		if !ok {
			return "", errCode(ErrCodeUnknownKey)
		}
		var v uint64
		ver, err := sh.atomicUpdate(ctx, req, box.ConflictKey(), func(tx *stm.Tx) error {
			v = box.Get(tx) + req.arg
			box.Set(tx, v)
			return nil
		})
		if err != nil {
			return "", err
		}
		if err := sh.logUpdate(wal.OpAdd, req.key, v, ver); err != nil {
			return "", err
		}
		return respValue(v), nil
	case opMAdd:
		boxes := make([]*stm.VBox[uint64], len(req.keys))
		for i, k := range req.keys {
			box, ok := sh.store[k]
			if !ok {
				return "", errCode(ErrCodeUnknownKey)
			}
			boxes[i] = box
		}
		// The multi-key increment runs its per-key updates as parallel
		// nested transactions: this is the request shape that gives the
		// shard's tuner a real intra-transaction parallelism (c) knob to
		// tune, not just top-level concurrency (t). Each child records
		// its key's post-state into its own slot (last attempt wins) so
		// the committed image can be logged.
		// The first key is the declared intent: a multi-key update cannot
		// declare them all, and the learned-key upgrade in the STM's retry
		// loop covers whichever box actually aborts it.
		vals := make([]uint64, len(boxes))
		ver, err := sh.atomicUpdate(ctx, req, boxes[0].ConflictKey(), func(tx *stm.Tx) error {
			fns := make([]func(*stm.Tx) error, len(boxes))
			for i := range boxes {
				i := i
				box, delta := boxes[i], req.args[i]
				fns[i] = func(child *stm.Tx) error {
					v := box.Get(child) + delta
					box.Set(child, v)
					vals[i] = v
					return nil
				}
			}
			return tx.Parallel(fns...)
		})
		if err != nil {
			return "", err
		}
		if err := sh.logMulti(req.keys, vals, ver); err != nil {
			return "", err
		}
		return respOK, nil
	default:
		return "", errCode(ErrCodeBadRequest)
	}
}

// drainQueue empties the admission queue during shutdown, replying with
// the typed shutdown error so no connection writer is left waiting on a
// request that will never execute. Returns how many it drained.
func (sh *shard) drainQueue() int {
	n := 0
	for {
		select {
		case req := <-sh.queue:
			sh.reject(req, ErrCodeShutdown)
			if rt := req.tr; rt != nil {
				rt.release() // no worker will see this request
			}
			n++
		default:
			return n
		}
	}
}

// status snapshots the shard for /status.
func (sh *shard) status() ShardStatus {
	st := ShardStatus{
		ID:             sh.id,
		QueueLen:       len(sh.queue),
		QueueCap:       cap(sh.queue),
		Breaker:        sh.breaker.State().String(),
		BreakerOpens:   sh.breaker.Opens(),
		Accepted:       sh.accepted.Load(),
		Shed:           sh.shed.Load(),
		BreakerRejects: sh.brkRejects.Load(),
		Timeouts:       sh.timeouts.Load(),
		Served:         sh.served.Load(),
		Errors:         sh.userErrors.Load(),
	}
	if sh.tuner != nil {
		cur := sh.tuner.Current()
		st.T, st.C = cur.T, cur.C
		st.Phase = sh.tuner.Phase()
	}
	snap := sh.stm.Stats.Snapshot()
	st.TopCommits = snap.TopCommits
	st.TopAborts = snap.TopAborts
	if sh.sched != nil {
		ss := sh.sched.Snapshot()
		st.Sched = &ss
	}
	lat := sh.latency.Snapshot()
	st.LatencyMs = &lat
	if b := breakdown(sh.stages); b.Queue.Count+b.Exec.Count+b.Commit.Count+b.Flush.Count > 0 {
		st.Stages = b
	}
	st.RecentDecisions = sh.ring.Last(statusShardDecisions)
	if sh.wal != nil {
		st.WAL = sh.wal.status()
	}
	return st
}

// statusShardDecisions is how many trailing tuner decisions each shard row
// of /status carries.
const statusShardDecisions = 5

// ShardStatus is one row of the /status shard table.
type ShardStatus struct {
	ID    int    `json:"id"`
	T     int    `json:"t"`
	C     int    `json:"c"`
	Phase string `json:"phase"`

	QueueLen     int    `json:"queue_len"`
	QueueCap     int    `json:"queue_cap"`
	Breaker      string `json:"breaker"`
	BreakerOpens uint64 `json:"breaker_opens"`

	Accepted       uint64 `json:"accepted"`
	Shed           uint64 `json:"shed"`
	BreakerRejects uint64 `json:"breaker_rejects"`
	Timeouts       uint64 `json:"timeouts"`
	Served         uint64 `json:"served"`
	Errors         uint64 `json:"errors"`

	TopCommits uint64 `json:"stm_top_commits"`
	TopAborts  uint64 `json:"stm_top_aborts"`

	// Sched is the contention scheduler's counter snapshot (present when
	// the scheduler is enabled).
	Sched *sched.Stats `json:"sched,omitempty"`

	LatencyMs       *obs.HistogramSnapshot `json:"latency_ms,omitempty"`
	Stages          *StageBreakdown        `json:"stages,omitempty"`
	RecentDecisions []obs.Decision         `json:"recent_decisions,omitempty"`
	WAL             *WALStatus             `json:"wal,omitempty"`
}

// registerMetrics bridges the shard's counters and tuner gauges into the
// server's shared registry under shard-indexed names (the flat obs
// registry has no labels; autopn_server_shard0_* is the convention
// documented in docs/OBSERVABILITY.md).
func (sh *shard) registerMetrics(reg *obs.Registry) {
	p := fmt.Sprintf("autopn_server_shard%d_", sh.id)
	reg.CounterFunc(p+"accepted_total", sh.accepted.Load)
	reg.CounterFunc(p+"shed_total", sh.shed.Load)
	reg.CounterFunc(p+"breaker_rejects_total", sh.brkRejects.Load)
	reg.CounterFunc(p+"timeouts_total", sh.timeouts.Load)
	reg.CounterFunc(p+"served_total", sh.served.Load)
	reg.CounterFunc(p+"breaker_opens_total", sh.breaker.Opens)
	reg.GaugeFunc(p+"queue_len", func() float64 { return float64(len(sh.queue)) })
	reg.GaugeFunc(p+"breaker_state", func() float64 { return float64(sh.breaker.State()) })
	if sh.tuner != nil {
		reg.GaugeFunc(p+"current_t", func() float64 { return float64(sh.tuner.Current().T) })
		reg.GaugeFunc(p+"current_c", func() float64 { return float64(sh.tuner.Current().C) })
	}
	if sh.sched != nil {
		reg.CounterFunc(p+"sched_admitted_total", func() uint64 { return sh.sched.Snapshot().Admitted })
		reg.CounterFunc(p+"sched_bypass_cool_total", func() uint64 { return sh.sched.Snapshot().BypassCool })
		reg.CounterFunc(p+"sched_bypass_wait_total", func() uint64 { return sh.sched.Snapshot().BypassWait })
		reg.CounterFunc(p+"sched_promotions_total", func() uint64 { return sh.sched.Snapshot().Promotions })
		reg.CounterFunc(p+"sched_demotions_total", func() uint64 { return sh.sched.Snapshot().Demotions })
		reg.GaugeFunc(p+"sched_domains", func() float64 { return float64(sh.sched.Snapshot().Domains) })
		reg.GaugeFunc(p+"sched_hot_domains", func() float64 { return float64(sh.sched.Snapshot().HotDomains) })
	}
	reg.RegisterHistogram(p+"latency_ms", sh.latency)
	for st := stage(0); st < numStages; st++ {
		reg.RegisterHistogram(p+"stage_"+stageNames[st]+"_ms", sh.stages[st])
	}
	if w := sh.wal; w != nil {
		reg.CounterFunc(p+"wal_appends_total", w.log.Appends)
		reg.CounterFunc(p+"wal_fsyncs_total", w.log.Fsyncs)
		reg.CounterFunc(p+"wal_bytes_total", w.log.Bytes)
		reg.CounterFunc(p+"wal_errors_total", w.log.Errors)
		reg.CounterFunc(p+"wal_snapshots_total", w.snapshots.Load)
		reg.CounterFunc(p+"wal_failed_acks_total", w.failedAcks.Load)
		reg.GaugeFunc(p+"wal_segments", func() float64 { return float64(w.log.Segments()) })
		reg.GaugeFunc(p+"wal_last_lsn", func() float64 { return float64(w.log.LastLSN()) })
		reg.GaugeFunc(p+"wal_recovery_duration_seconds", func() float64 { return w.recovery.DurationMS / 1e3 })
	}
}
