package server

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DeadLetter is one request the admission-control front door refused or
// abandoned: shed at a full queue, rejected by an open breaker, expired
// past its deadline, or dropped at shutdown. The dead-letter log is the
// audit trail overload leaves behind — every ErrOverload reply a client
// saw has a line here saying which shard shed it and why.
type DeadLetter struct {
	// Time is the wall-clock timestamp of the refusal.
	Time time.Time `json:"ts"`
	// Shard is the shard the request was routed to.
	Shard int `json:"shard"`
	// Op is the protocol operation (GET, PUT, ADD, MADD).
	Op string `json:"op"`
	// Key is the (primary) key the request addressed.
	Key string `json:"key,omitempty"`
	// Reason is one of "overload", "breaker-open", "timeout", "shutdown".
	Reason string `json:"reason"`
}

// DLQ is a JSONL dead-letter log. A nil *DLQ is a valid no-op sink, so
// shards record unconditionally and the server only pays when a path is
// configured. Writes never block request handling on I/O errors: the first
// error is sticky and subsequent records only count.
type DLQ struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	err   error
	count atomic.Uint64
}

// NewDLQ opens (truncating) a dead-letter log at path.
func NewDLQ(path string) (*DLQ, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &DLQ{f: f, w: bufio.NewWriter(f)}, nil
}

// Record appends one dead letter. Nil-safe; the count advances even when
// no file is configured so metrics stay meaningful without a log.
func (q *DLQ) Record(d DeadLetter) {
	if q == nil {
		return
	}
	q.count.Add(1)
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
	// Marshal outside the lock: at full shed rate every shard funnels
	// through this mutex, and holding it across a JSON encode would
	// serialize the shards' shedding paths on each other.
	b, err := json.Marshal(d)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return
	}
	if err != nil {
		q.err = err
		return
	}
	if _, err := q.w.Write(append(b, '\n')); err != nil {
		q.err = err
	}
}

// Count returns the number of dead letters recorded. Nil-safe.
func (q *DLQ) Count() uint64 {
	if q == nil {
		return 0
	}
	return q.count.Load()
}

// Err returns the first write error, if any.
func (q *DLQ) Err() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Close flushes and closes the log. Nil-safe.
func (q *DLQ) Close() error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.f == nil {
		return q.err
	}
	if q.err == nil {
		q.err = q.w.Flush()
	}
	cerr := q.f.Close()
	q.f = nil
	if q.err != nil {
		return q.err
	}
	return cerr
}
