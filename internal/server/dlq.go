package server

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DeadLetter is one request the admission-control front door refused or
// abandoned: shed at a full queue, rejected by an open breaker, expired
// past its deadline, or dropped at shutdown. The dead-letter log is the
// audit trail overload leaves behind — every ErrOverload reply a client
// saw has a line here saying which shard shed it and why.
type DeadLetter struct {
	// Time is the wall-clock timestamp of the refusal.
	Time time.Time `json:"ts"`
	// Shard is the shard the request was routed to.
	Shard int `json:"shard"`
	// Op is the protocol operation (GET, PUT, ADD, MADD).
	Op string `json:"op"`
	// Key is the (primary) key the request addressed.
	Key string `json:"key,omitempty"`
	// Reason is one of "overload", "breaker-open", "timeout", "shutdown".
	Reason string `json:"reason"`
}

// dlqDepth bounds the record buffer between the shedding paths and the
// flusher. At full overload every shard sheds tens of thousands of
// requests a second; the buffer absorbs those bursts and records past it
// are counted (Lost) rather than blocked on.
const dlqDepth = 8192

// DLQ is a JSONL dead-letter log. A nil *DLQ is a valid no-op sink, so
// shards record unconditionally and the server only pays when a path is
// configured.
//
// Recording is an MPSC hand-off: producers (every shard's shedding,
// timeout and shutdown paths) do a counter increment plus one non-blocking
// channel send, and a single flusher goroutine owns the JSON encoding and
// buffered file writes. The earlier design funneled all shards through one
// mutex held across the encode and write — at ~60k sheds/s that lock was
// itself a contention point on the overload path, which is exactly when
// the DLQ is busiest. Overflow drops the record (Lost counts it); I/O
// errors are sticky and subsequent records only count.
type DLQ struct {
	records chan DeadLetter
	quit    chan struct{} // signals the flusher to drain and exit
	done    chan struct{} // closed when the flusher has exited

	count  atomic.Uint64 // records submitted (metrics stay meaningful sans file)
	lost   atomic.Uint64 // records dropped at a full buffer
	closed atomic.Bool

	f   *os.File
	w   *bufio.Writer
	err atomic.Pointer[error] // first write error, sticky

	closeOnce sync.Once
	closeErr  error
}

// NewDLQ opens (truncating) a dead-letter log at path and starts its
// flusher.
func NewDLQ(path string) (*DLQ, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	q := &DLQ{
		records: make(chan DeadLetter, dlqDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		f:       f,
		w:       bufio.NewWriter(f),
	}
	go q.flusher()
	return q, nil
}

// flusher is the single consumer: it encodes and writes records, flushing
// the buffered writer whenever the channel goes idle so the file stays
// near-current without a syscall per record.
func (q *DLQ) flusher() {
	defer close(q.done)
	write := func(d DeadLetter) {
		if q.err.Load() != nil {
			return
		}
		b, err := json.Marshal(d)
		if err == nil {
			_, err = q.w.Write(append(b, '\n'))
		}
		if err != nil {
			q.err.Store(&err)
		}
	}
	for {
		select {
		case d := <-q.records:
			write(d)
		case <-q.quit:
			// Drain everything already submitted before exiting: a record
			// accepted by Record must reach the file once Close returns.
			for {
				select {
				case d := <-q.records:
					write(d)
				default:
					return
				}
			}
		default:
			// Idle: flush what we have, then block until work or quit.
			if q.err.Load() == nil {
				if err := q.w.Flush(); err != nil {
					q.err.Store(&err)
				}
			}
			select {
			case d := <-q.records:
				write(d)
			case <-q.quit:
			}
		}
	}
}

// Record appends one dead letter. Nil-safe; never blocks — at a full
// buffer the record is dropped and counted in Lost. The count advances
// even when no file is configured so metrics stay meaningful without a
// log.
func (q *DLQ) Record(d DeadLetter) {
	if q == nil {
		return
	}
	q.count.Add(1)
	if q.closed.Load() {
		return
	}
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
	select {
	case q.records <- d:
	default:
		q.lost.Add(1)
	}
}

// Count returns the number of dead letters recorded. Nil-safe.
func (q *DLQ) Count() uint64 {
	if q == nil {
		return 0
	}
	return q.count.Load()
}

// Lost returns the number of records dropped at a full buffer. Nil-safe.
func (q *DLQ) Lost() uint64 {
	if q == nil {
		return 0
	}
	return q.lost.Load()
}

// Err returns the first write error, if any.
func (q *DLQ) Err() error {
	if q == nil {
		return nil
	}
	if p := q.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Close stops the flusher, drains every record already submitted, flushes
// and closes the file. Nil-safe and idempotent (later calls return the
// first call's error); Records racing Close may be dropped (counted, not
// written) once the close has begun.
func (q *DLQ) Close() error {
	if q == nil {
		return nil
	}
	q.closeOnce.Do(func() {
		q.closed.Store(true)
		close(q.quit)
		<-q.done
		if q.Err() == nil {
			if err := q.w.Flush(); err != nil {
				q.err.Store(&err)
			}
		}
		cerr := q.f.Close()
		q.closeErr = q.Err()
		if q.closeErr == nil {
			q.closeErr = cerr
		}
	})
	return q.closeErr
}
