package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autopn"
	"autopn/internal/chaos"
	"autopn/internal/stm"
	"autopn/internal/wal"
)

// This file wires the wal package into the serving layer: each shard owns
// a shardWAL that (a) replays snapshot + log tail into the shard's store
// before traffic is admitted, (b) makes every acked update durable through
// a single group-batching writer goroutine, (c) snapshots periodically and
// truncates the log behind each snapshot, and (d) checkpoints the shard's
// tuner alongside the data so a recovered shard warm-starts at its
// pre-crash last-known-good (t, c) instead of re-running a cold
// initial-sampling session. See docs/DURABILITY.md.

// errWAL is the typed execution error of a failed durability ack.
var errWAL error = errCode(ErrCodeWAL)

// tunerCheckpointName is the per-shard tuner checkpoint file inside the
// shard's WAL directory.
const tunerCheckpointName = "tuner.json"

// keyIndex maps a protocol key name (the KeyName "k%06d" form) to its
// compact WAL key index. Only store-resident keys reach the WAL path, so
// a parse failure means the key space and the log format drifted — the
// caller skips such keys rather than logging garbage.
func keyIndex(key string) (uint32, bool) {
	if len(key) < 2 || key[0] != 'k' {
		return 0, false
	}
	n, err := strconv.ParseUint(key[1:], 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

// walConfig is the per-shard durability configuration derived from
// Options.
type walConfig struct {
	policy       wal.SyncPolicy
	interval     time.Duration
	segmentBytes int64
	snapInterval time.Duration
	injector     *chaos.Injector
}

// walSubmit is one worker's durability request: entries to persist and a
// channel the writer answers once the batch containing them is appended
// (and, under the per-batch policy, fsynced). done is nil under the
// interval/none policies: their contract is a bounded durability window,
// so the ack does not wait for the append. The single-key common case
// travels inline in one (copied through the channel, no allocation);
// multi is non-nil only for MADD batches.
type walSubmit struct {
	one   wal.Entry
	multi []wal.Entry
	done  chan error
}

// RecoveryStatus describes the crash-recovery pass a shard ran inside New,
// before any traffic was admitted (part of /status).
type RecoveryStatus struct {
	// DurationMS is the wall time of open + replay + store restore.
	DurationMS float64 `json:"duration_ms"`
	// CleanShutdown reports the log ended with a graceful shutdown record;
	// SkippedScan additionally reports the CLEAN marker let Open skip the
	// torn-tail scan entirely.
	CleanShutdown bool `json:"clean_shutdown"`
	SkippedScan   bool `json:"skipped_scan,omitempty"`
	// SnapshotLSN is the LSN the loaded snapshot covered (0 = no snapshot).
	SnapshotLSN uint64 `json:"snapshot_lsn,omitempty"`
	// ReplayRecords / ReplayEntries count the WAL tail replayed on top of
	// the snapshot image.
	ReplayRecords int `json:"replay_records"`
	ReplayEntries int `json:"replay_entries"`
	// KeysRestored is how many keys were written back into the store.
	KeysRestored int `json:"keys_restored"`
	// TornBytes is how much of the tail was discarded as torn.
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Epoch is the new log epoch this lifetime writes under.
	Epoch uint32 `json:"epoch"`
	// WarmStart reports a tuner checkpoint was found and handed to the
	// shard's tuner.
	WarmStart bool `json:"warm_start,omitempty"`
}

// WALStatus is the durability block of one shard's /status row.
type WALStatus struct {
	Policy      string          `json:"policy"`
	Appends     uint64          `json:"appends"`
	Fsyncs      uint64          `json:"fsyncs"`
	Bytes       uint64          `json:"bytes"`
	Errors      uint64          `json:"errors"`
	Rotations   uint64          `json:"rotations,omitempty"`
	Segments    int64           `json:"segments"`
	LastLSN     uint64          `json:"last_lsn"`
	Epoch       uint32          `json:"epoch"`
	Snapshots   uint64          `json:"snapshots"`
	SnapshotLSN uint64          `json:"snapshot_lsn"`
	SnapErrors  uint64          `json:"snapshot_errors,omitempty"`
	FailedAcks  uint64          `json:"failed_acks,omitempty"`
	Recovery    *RecoveryStatus `json:"recovery,omitempty"`
}

// shardWAL owns one shard's durability state: the log, the single writer
// goroutine that group-batches worker submissions, and the snapshotter.
type shardWAL struct {
	log *wal.Log
	dir string
	cfg walConfig

	submit chan walSubmit
	stop   chan struct{}
	wg     sync.WaitGroup

	// subMu fences logEntries against close: close takes the write lock
	// after flipping closed, so the writer goroutine only exits once no
	// submission is in flight and no new one can start.
	subMu  sync.RWMutex
	closed bool

	snapshots   atomic.Uint64
	snapSkips   atomic.Uint64
	snapErrors  atomic.Uint64
	lastSnapLSN atomic.Uint64
	failedAcks  atomic.Uint64

	recovery RecoveryStatus // immutable after openShardWAL
}

// openShardWAL opens shard sh's log in dir, rebuilds the store from the
// newest snapshot plus the surviving WAL tail, and returns the ready
// shardWAL plus the tuner checkpoint found alongside (nil = cold start).
//
// Replay is exact despite append order differing from commit order:
// entries carry the absolute post-state of each key and the STM commit
// version that published it, application is last-writer-wins on
// (epoch, version), and the snapshot image is seeded at (snapshot epoch,
// snapshot read version) so older-but-later-appended records cannot win.
func openShardWAL(sh *shard, dir string, cfg walConfig) (*shardWAL, *autopn.Checkpoint, error) {
	start := time.Now()
	lg, ost, err := wal.Open(dir, wal.Options{
		SegmentBytes: cfg.segmentBytes,
		Policy:       cfg.policy,
		Interval:     cfg.interval,
		Injector:     cfg.injector,
	})
	if err != nil {
		return nil, nil, err
	}
	snap, err := wal.LoadSnapshot(dir)
	if err != nil {
		_ = lg.Close()
		return nil, nil, err
	}

	type verVal struct {
		val, ver uint64
		epoch    uint32
	}
	state := make(map[uint32]verVal)
	maxEpoch := ost.MaxEpoch
	var snapLSN uint64
	if snap != nil {
		for i := range snap.Keys {
			state[snap.Keys[i]] = verVal{val: snap.Vals[i], ver: snap.AsOf, epoch: snap.Epoch}
		}
		if snap.Epoch > maxEpoch {
			maxEpoch = snap.Epoch
		}
		snapLSN = snap.LSN
	}
	newer := func(e uint32, v uint64, curE uint32, curV uint64) bool {
		return e > curE || (e == curE && v > curV)
	}
	rs, err := wal.Replay(dir, func(lsn uint64, epoch uint32, entries []wal.Entry) error {
		if lsn <= snapLSN {
			return nil // subsumed: committed before the snapshot read began
		}
		for _, e := range entries {
			cur, ok := state[e.Key]
			if !ok || newer(epoch, e.Ver, cur.epoch, cur.ver) {
				state[e.Key] = verVal{val: e.Val, ver: e.Ver, epoch: epoch}
			}
		}
		return nil
	})
	if err != nil {
		_ = lg.Close()
		return nil, nil, err
	}
	if rs.MaxEpoch > maxEpoch {
		maxEpoch = rs.MaxEpoch
	}

	// Write the recovered image back into the store. Boxes preload zero,
	// so zero-valued keys need no write; the rest apply in chunked update
	// transactions (the shard has no traffic yet — these cannot conflict).
	type apply struct {
		box *stm.VBox[uint64]
		val uint64
	}
	var todo []apply
	for idx, vv := range state {
		if vv.val == 0 {
			continue
		}
		if box, ok := sh.store[KeyName(int(idx))]; ok {
			todo = append(todo, apply{box, vv.val})
		}
	}
	const applyChunk = 512
	for at := 0; at < len(todo); at += applyChunk {
		end := at + applyChunk
		if end > len(todo) {
			end = len(todo)
		}
		part := todo[at:end]
		if err := sh.stm.AtomicCtx(context.Background(), func(tx *stm.Tx) error {
			for _, a := range part {
				a.box.Set(tx, a.val)
			}
			return nil
		}); err != nil {
			_ = lg.Close()
			return nil, nil, err
		}
	}

	// Every version this lifetime publishes must order after everything on
	// disk: start a fresh epoch above the maximum seen anywhere.
	lg.SetEpoch(maxEpoch + 1)

	cp := loadTunerCheckpoint(filepath.Join(dir, tunerCheckpointName))
	w := &shardWAL{
		log:    lg,
		dir:    dir,
		cfg:    cfg,
		submit: make(chan walSubmit, 256),
		stop:   make(chan struct{}),
	}
	w.lastSnapLSN.Store(snapLSN)
	w.recovery = RecoveryStatus{
		DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
		CleanShutdown: ost.CleanShutdown,
		SkippedScan:   ost.SkippedScan,
		SnapshotLSN:   snapLSN,
		ReplayRecords: rs.Records,
		ReplayEntries: rs.Entries,
		KeysRestored:  len(todo),
		TornBytes:     ost.TornBytes,
		Epoch:         lg.Epoch(),
		WarmStart:     cp != nil,
	}
	return w, cp, nil
}

// start launches the writer and (when configured) the snapshotter.
func (w *shardWAL) start(sh *shard) {
	w.wg.Add(1)
	go w.run()
	if w.cfg.snapInterval > 0 {
		w.wg.Add(1)
		go w.snapLoop(sh)
	}
}

// run is the shard's single WAL writer: it folds every submission that
// raced in since the previous append into one batch record, so a
// group-committed burst of transactions costs one AppendBatch and — under
// the per-batch policy — one fsync for the whole group (the WAL-side
// mirror of the STM's group commit).
func (w *shardWAL) run() {
	defer w.wg.Done()
	var batch []wal.Entry
	var waiters []chan error
	for {
		select {
		case sub := <-w.submit:
			batch, waiters = appendSubmit(batch[:0], waiters[:0], sub)
		fold:
			for {
				select {
				case more := <-w.submit:
					batch, waiters = appendSubmit(batch, waiters, more)
				default:
					break fold
				}
			}
			_, err := w.log.AppendBatch(batch)
			for _, done := range waiters {
				done <- err
			}
		case <-w.stop:
			// close() guarantees no submission is in flight by now, but
			// buffered ones may still be queued — and fire-and-forget
			// entries were already acked to clients, so they must reach
			// the log, not be dropped. Append the remainder, then answer
			// any waiters.
			batch, waiters = batch[:0], waiters[:0]
			for {
				select {
				case sub := <-w.submit:
					batch, waiters = appendSubmit(batch, waiters, sub)
				default:
					var err error
					if len(batch) > 0 {
						_, err = w.log.AppendBatch(batch)
					}
					for _, done := range waiters {
						done <- err
					}
					return
				}
			}
		}
	}
}

// appendSubmit folds one submission into the writer's pending batch.
func appendSubmit(batch []wal.Entry, waiters []chan error, sub walSubmit) ([]wal.Entry, []chan error) {
	if sub.multi != nil {
		batch = append(batch, sub.multi...)
	} else {
		batch = append(batch, sub.one)
	}
	if sub.done != nil {
		waiters = append(waiters, sub.done)
	}
	return batch, waiters
}

// send hands one submission to the writer. Under the per-batch policy it
// blocks until the batch containing it is appended and fsynced — the ack
// waits for durability. Under interval/none the durability window is
// already bounded by the policy, so the submission is fire-and-forget and
// only the log's sticky error (a previous append having failed) is
// surfaced, keeping the poisoned-log/breaker contract without paying a
// writer round trip per request.
func (w *shardWAL) send(sub walSubmit) error {
	w.subMu.RLock()
	if w.closed {
		w.subMu.RUnlock()
		return wal.ErrClosed
	}
	if w.cfg.policy != wal.SyncBatch {
		w.submit <- sub
		w.subMu.RUnlock()
		return w.log.Err()
	}
	sub.done = make(chan error, 1)
	w.submit <- sub
	w.subMu.RUnlock()
	return <-sub.done
}

// close stops the writer and snapshotter. Safe against in-flight
// logEntries calls: the closed flag is published under the write lock, so
// the writer drains everything already submitted before exiting.
func (w *shardWAL) close() {
	w.subMu.Lock()
	if w.closed {
		w.subMu.Unlock()
		return
	}
	w.closed = true
	w.subMu.Unlock()
	close(w.stop)
	w.wg.Wait()
}

// shutdownClean seals the shard's durability state on graceful shutdown:
// stop the writer, take a final snapshot + tuner checkpoint (so restart
// replays almost nothing), and leave the shutdown record + CLEAN marker
// that lets the next Open skip the torn-tail scan.
func (w *shardWAL) shutdownClean(sh *shard) {
	w.close()
	w.doSnapshot(sh)
	_ = w.log.CloseClean()
}

// snapLoop snapshots on a timer.
func (w *shardWAL) snapLoop(sh *shard) {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.snapInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.doSnapshot(sh)
		case <-w.stop:
			return
		}
	}
}

// doSnapshot writes one snapshot of the shard's entire key space and
// truncates the log behind it, then checkpoints the tuner alongside.
//
// The LSN floor is captured BEFORE the read transaction begins: every
// record at or below it committed before the read, so the snapshot
// subsumes it and truncation is safe. Records appended concurrently with
// the read may or may not be reflected in the image; replay stays exact
// because the image is seeded at the read version and application is
// last-writer-wins on (epoch, version). The snapshot deliberately stores
// every owned key — including zeros — so replay's seeding covers keys
// whose newest state was appended *earlier* in the log than older states
// (append order is not commit order).
func (w *shardWAL) doSnapshot(sh *shard) {
	floor := w.log.LastLSN()
	keys := make([]uint32, 0, len(sh.store))
	vals := make([]uint64, 0, len(sh.store))
	var asOf uint64
	if err := sh.stm.AtomicReadOnly(func(tx *stm.Tx) error {
		keys, vals = keys[:0], vals[:0]
		for k, box := range sh.store {
			idx, ok := keyIndex(k)
			if !ok {
				continue
			}
			keys = append(keys, idx)
			vals = append(vals, box.Get(tx))
		}
		asOf = tx.ReadVersion()
		return nil
	}); err != nil {
		w.snapErrors.Add(1)
		return
	}
	s := &wal.Snapshot{LSN: floor, Epoch: w.log.Epoch(), AsOf: asOf, Keys: keys, Vals: vals}
	if err := wal.WriteSnapshot(w.dir, s, w.cfg.injector); err != nil {
		if err == wal.ErrSnapshotSkipped {
			w.snapSkips.Add(1)
		} else {
			w.snapErrors.Add(1)
		}
		return
	}
	w.snapshots.Add(1)
	w.lastSnapLSN.Store(floor)
	if _, err := w.log.TruncateTo(floor); err != nil {
		w.snapErrors.Add(1)
	}
	if sh.tuner != nil {
		if err := saveTunerCheckpoint(filepath.Join(w.dir, tunerCheckpointName), sh.tuner.Checkpoint()); err != nil {
			w.snapErrors.Add(1)
		}
	}
}

// status snapshots the durability block for /status.
func (w *shardWAL) status() *WALStatus {
	rec := w.recovery
	return &WALStatus{
		Policy:      w.cfg.policy.String(),
		Appends:     w.log.Appends(),
		Fsyncs:      w.log.Fsyncs(),
		Bytes:       w.log.Bytes(),
		Errors:      w.log.Errors(),
		Rotations:   w.log.Rotations(),
		Segments:    w.log.Segments(),
		LastLSN:     w.log.LastLSN(),
		Epoch:       w.log.Epoch(),
		Snapshots:   w.snapshots.Load(),
		SnapshotLSN: w.lastSnapLSN.Load(),
		SnapErrors:  w.snapErrors.Load() + w.snapSkips.Load(),
		FailedAcks:  w.failedAcks.Load(),
		Recovery:    &rec,
	}
}

// logUpdate makes one committed single-key update durable before the ack
// is sent; logMulti is its MADD counterpart. Both are no-ops with
// durability off, and both translate a log failure into the typed errWAL
// the execute loop maps onto the breaker.
func (sh *shard) logUpdate(op uint8, key string, val, ver uint64) error {
	if sh.wal == nil {
		return nil
	}
	idx, ok := keyIndex(key)
	if !ok {
		return nil
	}
	return sh.walAck(sh.wal.send(walSubmit{one: wal.Entry{Op: op, Key: idx, Val: val, Ver: ver}}))
}

func (sh *shard) logMulti(keys []string, vals []uint64, ver uint64) error {
	if sh.wal == nil {
		return nil
	}
	entries := make([]wal.Entry, 0, len(keys))
	for i, k := range keys {
		idx, ok := keyIndex(k)
		if !ok {
			continue
		}
		entries = append(entries, wal.Entry{Op: wal.OpMAdd, Key: idx, Val: vals[i], Ver: ver})
	}
	if len(entries) == 0 {
		return nil
	}
	return sh.walAck(sh.wal.send(walSubmit{multi: entries}))
}

func (sh *shard) walAck(err error) error {
	if err == nil {
		return nil
	}
	sh.wal.failedAcks.Add(1)
	return errWAL
}

// saveTunerCheckpoint persists cp atomically (tmp + rename) so a crash
// mid-checkpoint leaves the previous one intact.
func saveTunerCheckpoint(path string, cp autopn.Checkpoint) error {
	b, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadTunerCheckpoint reads a checkpoint; missing or corrupt files mean a
// cold start, never a failed boot.
func loadTunerCheckpoint(path string) *autopn.Checkpoint {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var cp autopn.Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return nil
	}
	return &cp
}
