package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceSampleGate(t *testing.T) {
	tr := newReqTracer(TraceOptions{MaxTraces: 16})

	// Rate 0: never sampled, even over many draws.
	for i := 0; i < 1000; i++ {
		if rt := tr.maybeStart(0, time.Time{}, 1); rt != nil {
			t.Fatal("sampled a request at rate 0")
		}
	}
	// Rate 1: always sampled.
	tr.setSampleRate(1)
	rt := tr.maybeStart(0, time.Time{}, 1)
	if rt == nil {
		t.Fatal("rate 1 did not sample")
	}
	if rt.id == 0 {
		t.Error("trace ID must be nonzero")
	}
	rt.release()

	// A client hint forces sampling at any nonzero rate...
	tr.setSampleRate(1e-9)
	hinted := tr.maybeStart(0xabc, time.Time{}, 2)
	if hinted == nil {
		t.Fatal("client hint was not force-sampled while tracing enabled")
	}
	if hinted.clientID != 0xabc {
		t.Errorf("clientID = %#x, want 0xabc", hinted.clientID)
	}
	hinted.release()
	// ...but not while tracing is off entirely.
	tr.setSampleRate(0)
	if rt := tr.maybeStart(0xabc, time.Time{}, 2); rt != nil {
		t.Error("client hint sampled while tracing disabled")
	}

	// Intermediate rates land near their target frequency.
	tr.setSampleRate(0.25)
	got := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if rt := tr.maybeStart(0, time.Time{}, 1); rt != nil {
			got++
			rt.release()
		}
	}
	if frac := float64(got) / draws; frac < 0.2 || frac > 0.3 {
		t.Errorf("rate 0.25 sampled %.3f of draws", frac)
	}
	if r := tr.sampleRate(); r < 0.24 || r > 0.26 {
		t.Errorf("sampleRate() round-trip = %v, want ~0.25", r)
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	tr := newReqTracer(TraceOptions{SampleRate: 1, MaxTraces: 4})
	for i := 1; i <= 10; i++ {
		tr.publish(ReqTraceData{ID: uint64(i)})
	}
	got := tr.traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	for i, d := range got {
		if want := uint64(7 + i); d.ID != want {
			t.Errorf("trace[%d].ID = %d, want %d (oldest-first, newest kept)", i, d.ID, want)
		}
	}
	st := tr.status()
	if st.Completed != 10 || st.Dropped != 6 {
		t.Errorf("status = %+v, want completed 10 dropped 6", st)
	}
}

func TestParseRequestTraceHint(t *testing.T) {
	req, code := parseRequest("t=2a@1000 PING")
	if code != "" {
		t.Fatalf("hinted PING rejected: %s", code)
	}
	if req.clientTraceID != 0x2a {
		t.Errorf("clientTraceID = %#x, want 0x2a", req.clientTraceID)
	}
	if req.clientSend.UnixNano() != 1000 {
		t.Errorf("clientSend = %v, want unix-nanos 1000", req.clientSend.UnixNano())
	}

	// Hint without timestamp is fine.
	req, code = parseRequest("t=ff GET k000001")
	if code != "" || req.clientTraceID != 0xff || !req.clientSend.IsZero() {
		t.Errorf("t=ff GET: code=%q id=%#x send=%v", code, req.clientTraceID, req.clientSend)
	}

	for _, bad := range []string{
		"t=",            // empty hint
		"t=xyz PING",    // not hex
		"t=0 PING",      // zero ID reserved
		"t=2a@abc PING", // bad timestamp
		"t=2a",          // hint with no request
		"t=2a@1000",     // ditto with timestamp
	} {
		if _, code := parseRequest(bad); code != ErrCodeBadRequest {
			t.Errorf("parseRequest(%q) code = %q, want bad-request", bad, code)
		}
	}
}

// TestTraceEndToEnd drives a fully-sampled server and asserts the whole
// tentpole surface: per-stage marks, ring contents, /status breakdown,
// exemplars in the Prometheus text, and the merged Perfetto export with
// STM spans parented under the request.
func TestTraceEndToEnd(t *testing.T) {
	s := startTestServer(t, Options{
		Shards:       2,
		Keys:         256,
		DisableTuner: true,
		HTTPAddr:     "127.0.0.1:0",
		Trace:        TraceOptions{SampleRate: 1},
	})
	colocated, _ := sameShardKeys(t, s.ring, 256, 3)
	tc := dialServer(t, s)

	if got := tc.roundTrip("PUT " + KeyName(1) + " 5"); got != "OK" {
		t.Fatalf("PUT -> %q", got)
	}
	if got := tc.roundTrip("GET " + KeyName(1)); got != "VALUE 5" {
		t.Fatalf("GET -> %q", got)
	}
	madd := fmt.Sprintf("MADD %s 1 %s 2 %s 3", colocated[0], colocated[1], colocated[2])
	if got := tc.roundTrip(madd); got != "OK" {
		t.Fatalf("MADD -> %q", got)
	}
	// A client-hinted request extends the timeline into the "worker".
	sendNS := time.Now().UnixNano()
	if got := tc.roundTrip(fmt.Sprintf("t=beef@%d ADD %s 7", sendNS, KeyName(1))); !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("hinted ADD -> %q", got)
	}

	waitFor(t, 2*time.Second, func() bool { return len(s.Traces()) >= 4 })
	traces := s.Traces()

	byOp := map[string]ReqTraceData{}
	var hinted *ReqTraceData
	for i, d := range traces {
		byOp[d.Op] = d
		if d.ClientID == 0xbeef {
			hinted = &traces[i]
		}
	}
	for _, op := range []string{"PUT", "GET", "MADD", "ADD"} {
		d, ok := byOp[op]
		if !ok {
			t.Fatalf("no trace for %s (have %+v)", op, traces)
		}
		if d.Outcome != "ok" {
			t.Errorf("%s outcome = %q, want ok", op, d.Outcome)
		}
		if d.Shard < 0 {
			t.Errorf("%s trace was never routed to a shard", op)
		}
		// The pipeline marks must be monotone: accept <= enqueue <= dequeue
		// <= fn-done <= exec-done <= flush, and all present on the ok path.
		marks := []int64{d.AcceptNS, d.EnqueueNS, d.DequeueNS, d.FnDoneNS, d.ExecDoneNS, d.FlushNS}
		for i := 1; i < len(marks); i++ {
			if marks[i] == 0 {
				t.Fatalf("%s trace missing stage mark %d: %+v", op, i, d)
			}
			if marks[i] < marks[i-1] {
				t.Errorf("%s stage mark %d (%d) precedes mark %d (%d)", op, i, marks[i], i-1, marks[i-1])
			}
		}
	}
	if hinted == nil {
		t.Fatal("client-hinted request has no trace with its ID")
	}
	if hinted.ClientSendNS == 0 {
		t.Error("hinted trace lost the client send timestamp")
	}

	// Stage histograms feed /status, aggregate and per shard.
	st := s.Status()
	if st.Trace == nil || st.Trace.Sampled < 4 {
		t.Fatalf("status trace block = %+v, want >= 4 sampled", st.Trace)
	}
	if st.Stages == nil {
		t.Fatal("status has no aggregate stage breakdown after traced traffic")
	}
	if st.Stages.Queue.Count == 0 || st.Stages.Exec.Count == 0 ||
		st.Stages.Commit.Count == 0 || st.Stages.Flush.Count == 0 {
		t.Errorf("stage breakdown incomplete: %+v", st.Stages)
	}
	if st.Stages.QueueWaitFrac < 0 || st.Stages.QueueWaitFrac > 1 {
		t.Errorf("QueueWaitFrac = %v, want [0,1]", st.Stages.QueueWaitFrac)
	}
	if st.StartTime == "" || st.GoVersion == "" || st.PID == 0 {
		t.Errorf("build/identity block incomplete: start=%q go=%q pid=%d", st.StartTime, st.GoVersion, st.PID)
	}

	// The Prometheus text carries stage series with trace-ID exemplars.
	var metrics bytes.Buffer
	if err := s.Registry().WritePrometheus(&metrics); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := metrics.String()
	for _, want := range []string{
		"autopn_server_stage_queue_ms",
		"autopn_server_stage_exec_ms",
		"autopn_server_stage_commit_ms",
		"autopn_server_stage_flush_ms",
		"autopn_server_traces_sampled_total",
		"autopn_server_build_info 1",
		"# exemplar autopn_server_stage_",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The merged export: every request is a process with server stage
	// slices, and the MADD's STM tree (top + parallel nested children)
	// appears under the same pid.
	var export bytes.Buffer
	if err := s.WriteTraceEvents(&export); err != nil {
		t.Fatalf("WriteTraceEvents: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			PID  uint64         `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			EpochUnixNS int64 `json:"epoch_unix_ns"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(export.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if parsed.OtherData.EpochUnixNS == 0 {
		t.Error("export missing epoch_unix_ns")
	}
	maddID := byOp["MADD"].ID
	var stages, stmSpans, clientSlices int
	stageSeen := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev.PID != maddID || ev.Ph != "X" {
			if ev.Ph == "X" && ev.Cat == "client" {
				clientSlices++
			}
			continue
		}
		switch ev.Cat {
		case "server":
			if ev.Name != "request" {
				stages++
				stageSeen[ev.Name] = true
			}
		case "stm":
			stmSpans++
		}
	}
	if stages < 4 {
		t.Errorf("MADD pid has %d stage slices (%v), want 4", stages, stageSeen)
	}
	// The MADD ran 3 parallel nested children under one top: >= 4 spans.
	if stmSpans < 4 {
		t.Errorf("MADD pid has %d stm spans, want >= 4 (top + 3 nested)", stmSpans)
	}
	if clientSlices == 0 {
		t.Error("export has no client slice for the hinted request")
	}

	// Disabled again at runtime: no new samples.
	s.SetTraceSampleRate(0)
	before := s.tracer.sampled.Load()
	if got := tc.roundTrip("GET " + KeyName(1)); !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("GET after disable -> %q", got)
	}
	if after := s.tracer.sampled.Load(); after != before {
		t.Errorf("sampled advanced (%d -> %d) with tracing disabled", before, after)
	}
}

// TestTraceShedRequestPublishes: a request shed at a full queue still
// completes its trace (outcome overload, no dequeue mark) without leaking
// the pooled record.
func TestTraceShedRequestPublishes(t *testing.T) {
	tr := newReqTracer(TraceOptions{SampleRate: 1, MaxTraces: 16})
	rt := tr.maybeStart(0, time.Time{}, 1)
	if rt == nil {
		t.Fatal("not sampled at rate 1")
	}
	rt.op, rt.key = "ADD", "k000001"
	// Shed path: exec ref taken then released without any worker marks.
	rt.refs.Add(1)
	rt.shard = 0
	rt.enq.Store(tr.now())
	rt.release()
	d := rt.snapshot("overload", 0)
	tr.publish(d)
	rt.release()

	got := tr.traces()
	if len(got) != 1 {
		t.Fatalf("%d traces, want 1", len(got))
	}
	if got[0].Outcome != "overload" || got[0].DequeueNS != 0 || got[0].EnqueueNS == 0 {
		t.Errorf("shed trace = %+v, want overload with enqueue but no dequeue", got[0])
	}
}
