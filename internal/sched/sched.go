// Package sched is a contention-aware transaction scheduler: it
// partitions top-level transactions into conflict domains derived from
// live hot-box statistics and steers transactions in the same hot domain
// onto a serial lane instead of letting them retry-storm optimistically.
//
// The paper's tuner picks a parallelism degree (t, c) but is blind to
// *which* data causes aborts; the conflict profiler (internal/stm/trace)
// attributes every abort to a named box. This package closes the loop:
// a periodic controller (Observe) promotes boxes whose windowed abort
// share crosses a threshold into domains, each domain maps onto one of a
// fixed array of lanes, and admission (Admit) makes transactions that
// declared — or learned from their first abort — an intent on a promoted
// box queue FIFO behind the lane's token. Transactions outside every hot
// domain, and all transactions while no domain is promoted, proceed
// untouched: the cold path is a single atomic pointer load.
//
// Serializing a hot domain trades a little latency for a lot of wasted
// work: under heavy write skew, n optimistic writers on one box commit
// one-at-a-time anyway, but only after n-1 of them burned a full
// execute-validate-abort cycle per round. A lane gets the same
// serialization before the work is done instead of after.
//
// Admission never blocks unboundedly: a lane wait is capped at
// Options.MaxWait, after which the transaction bypasses the lane and
// runs optimistically — a stalled lane holder degrades its lane to the
// optimistic status quo instead of wedging it. A domain whose box has
// cooled (demotion pending) is bypassed immediately.
//
// The package deliberately imports nothing from internal/stm: box
// identity crosses the boundary as an opaque uintptr key (the same
// convention as internal/stm/trace), which is also what lets the
// scheduler be tested and benchmarked standalone.
package sched

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Scheduler. Zero values select the defaults.
type Options struct {
	// Lanes is the size of the fixed lane array (default 8). Promoted
	// domains hash onto lanes; the array never grows, so a lane index
	// handed out by Admit stays valid for the scheduler's lifetime.
	Lanes int
	// ActiveLanes is how many of the lanes new promotions spread across
	// (default = Lanes). Exposed as a runtime knob (SetActiveLanes) so a
	// tuner can trade isolation (more lanes) against cross-domain
	// serialization (fewer lanes) without reallocating lane state.
	ActiveLanes int
	// MaxDomains caps the number of concurrently promoted domains
	// (default 64); promotion requests beyond it are dropped.
	MaxDomains int
	// PromoteShare is the windowed abort share at which the controller
	// promotes a box into a domain (default 0.2). A box is demoted again
	// after DemoteAfter consecutive windows below half this share
	// (hysteresis, so a box oscillating around the threshold does not
	// churn). Runtime-adjustable via SetPromoteShare.
	PromoteShare float64
	// PromoteMinAborts is the minimum windowed abort count for promotion
	// (default 8), so a near-idle box with a 100% abort share is not
	// promoted on noise.
	PromoteMinAborts uint64
	// DemoteAfter is how many consecutive cool windows a domain survives
	// before it is demoted (default 3). While cool but not yet demoted,
	// admission bypasses the lane.
	DemoteAfter int
	// MaxWait bounds how long Admit parks a transaction behind a lane
	// token before giving up and letting it run optimistically
	// (default 2ms).
	MaxWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.Lanes <= 0 {
		o.Lanes = 8
	}
	if o.ActiveLanes <= 0 || o.ActiveLanes > o.Lanes {
		o.ActiveLanes = o.Lanes
	}
	if o.MaxDomains <= 0 {
		o.MaxDomains = 64
	}
	if o.PromoteShare <= 0 || o.PromoteShare > 1 {
		o.PromoteShare = 0.2
	}
	if o.PromoteMinAborts == 0 {
		o.PromoteMinAborts = 8
	}
	if o.DemoteAfter <= 0 {
		o.DemoteAfter = 3
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	return o
}

// lane is one serial admission lane. tok is a one-slot channel used as a
// FIFO token: acquiring is a send, releasing is a receive, and Go's
// channel send queue guarantees blocked acquirers are served in arrival
// order. depth counts holders plus waiters (a live occupancy gauge).
type lane struct {
	tok   chan struct{}
	depth atomic.Int64
	waits atomic.Uint64 // acquisitions that had to park
	_     [32]byte      // keep neighboring lanes off one cache line
}

// domain is one promoted conflict domain. cool is read by Admit on the
// hot path (atomic); aborts and coolTicks belong to the controller
// goroutine only.
type domain struct {
	key       uintptr
	label     string
	lane      uint32
	cool      atomic.Bool
	coolTicks int
}

// domainTable is the immutable (copy-on-write) key → domain index the
// admission path reads. A nil table pointer means no domain is promoted
// — the cold gate.
type domainTable struct {
	m map[uintptr]*domain
}

// Scheduler steers transactions onto conflict-domain lanes. Admit/Leave
// are safe for unbounded concurrency; Observe and the promotion setters
// must be called from one controller goroutine at a time.
type Scheduler struct {
	opts  Options
	lanes []lane

	domains atomic.Pointer[domainTable]

	activeLanes  atomic.Int32
	promoteShare atomic.Uint64 // math.Float64bits

	admitted   atomic.Uint64 // transactions that entered a lane
	bypassCool atomic.Uint64 // admissions skipped: domain cooling
	bypassWait atomic.Uint64 // admissions abandoned: MaxWait elapsed
	promotions atomic.Uint64
	demotions  atomic.Uint64
}

// New returns a scheduler with opts completed with defaults. It starts
// cold: no domains, every Admit returns -1 after one atomic load.
func New(opts Options) *Scheduler {
	opts = opts.withDefaults()
	s := &Scheduler{opts: opts, lanes: make([]lane, opts.Lanes)}
	for i := range s.lanes {
		s.lanes[i].tok = make(chan struct{}, 1)
	}
	s.activeLanes.Store(int32(opts.ActiveLanes))
	s.promoteShare.Store(math.Float64bits(opts.PromoteShare))
	return s
}

// timerPool recycles the bounded-wait timers so a contended Admit stays
// allocation-free in steady state.
var timerPool sync.Pool

// Admit gates one top-level transaction attempt intending to touch the
// box identified by key. It returns the lane index the attempt now holds
// (release it with Leave after the attempt), or -1 when the attempt
// should proceed ungated: scheduler cold, key outside every promoted
// domain, domain cooling, or the bounded lane wait timed out.
func (s *Scheduler) Admit(key uintptr) int {
	tab := s.domains.Load()
	if tab == nil {
		return -1 // cold path: one atomic load
	}
	d := tab.m[key]
	if d == nil {
		return -1
	}
	if d.cool.Load() {
		s.bypassCool.Add(1)
		return -1
	}
	ln := &s.lanes[d.lane]
	ln.depth.Add(1)
	select {
	case ln.tok <- struct{}{}:
		s.admitted.Add(1)
		return int(d.lane)
	default:
	}
	// Lane occupied: park FIFO behind the token, bounded by MaxWait.
	ln.waits.Add(1)
	t, _ := timerPool.Get().(*time.Timer)
	if t == nil {
		t = time.NewTimer(s.opts.MaxWait)
	} else {
		t.Reset(s.opts.MaxWait)
	}
	select {
	case ln.tok <- struct{}{}:
		if !t.Stop() {
			<-t.C
		}
		timerPool.Put(t)
		s.admitted.Add(1)
		return int(d.lane)
	case <-t.C:
		timerPool.Put(t)
		ln.depth.Add(-1)
		s.bypassWait.Add(1)
		return -1
	}
}

// Leave releases the lane token acquired by a successful Admit. lane < 0
// (an ungated attempt) is a no-op.
func (s *Scheduler) Leave(lane int) {
	if lane < 0 {
		return
	}
	ln := &s.lanes[lane]
	<-ln.tok
	ln.depth.Add(-1)
}

// SetPromoteShare adjusts the promotion threshold at runtime (clamped to
// (0, 1]); the tuner's arbitration hook.
func (s *Scheduler) SetPromoteShare(share float64) {
	if share <= 0 || share > 1 {
		return
	}
	s.promoteShare.Store(math.Float64bits(share))
}

// PromoteShareValue returns the current promotion threshold.
func (s *Scheduler) PromoteShareValue() float64 {
	return math.Float64frombits(s.promoteShare.Load())
}

// SetActiveLanes adjusts how many lanes new promotions spread across
// (clamped to [1, Lanes]); the tuner's other arbitration hook. Existing
// domains keep their lanes — only future promotions are affected.
func (s *Scheduler) SetActiveLanes(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(s.lanes) {
		n = len(s.lanes)
	}
	s.activeLanes.Store(int32(n))
}

// ActiveLanes returns the current active-lane count.
func (s *Scheduler) ActiveLanes() int { return int(s.activeLanes.Load()) }

// laneFor maps a box key onto one of the active lanes.
func (s *Scheduler) laneFor(key uintptr) uint32 {
	h := uint64(key) * 0x9e3779b97f4a7c15
	return uint32((h >> 32) % uint64(s.activeLanes.Load()))
}

// Promote installs key as a hot domain immediately, bypassing the
// controller's thresholds — the deterministic hook tests and benchmarks
// use, and an operator override. Returns the assigned lane, or -1 when
// the domain cap is reached. Call from the controller goroutine only.
func (s *Scheduler) Promote(key uintptr, label string) int {
	cur := s.domains.Load()
	if cur != nil {
		if d := cur.m[key]; d != nil {
			d.cool.Store(false)
			d.coolTicks = 0
			return int(d.lane)
		}
		if len(cur.m) >= s.opts.MaxDomains {
			return -1
		}
	}
	d := &domain{key: key, label: label, lane: s.laneFor(key)}
	s.publish(cur, d, 0)
	s.promotions.Add(1)
	return int(d.lane)
}

// Demote removes key's domain, if promoted. Call from the controller
// goroutine only.
func (s *Scheduler) Demote(key uintptr) {
	cur := s.domains.Load()
	if cur == nil || cur.m[key] == nil {
		return
	}
	s.publish(cur, nil, key)
	s.demotions.Add(1)
}

// publish installs a copy-on-write successor of cur with add inserted
// (when non-nil) and remove deleted (when nonzero).
func (s *Scheduler) publish(cur *domainTable, add *domain, remove uintptr) {
	m := make(map[uintptr]*domain)
	if cur != nil {
		for k, v := range cur.m {
			if k != remove {
				m[k] = v
			}
		}
	}
	if add != nil {
		m[add.key] = add
	}
	if len(m) == 0 {
		s.domains.Store(nil) // back to the one-load cold gate
		return
	}
	s.domains.Store(&domainTable{m: m})
}

// BoxStat is one windowed hot-box observation fed to Observe — key,
// label and abort count over the controller's window (the decayed
// hot-box table of internal/stm/trace is exactly this shape).
type BoxStat struct {
	Key    uintptr
	Label  string
	Aborts uint64
}

// Event is one promotion or demotion decision from Observe, for the
// caller to record (decision log, metrics).
type Event struct {
	Promote bool    // false = demote
	Key     uintptr // the box
	Label   string
	Aborts  uint64  // windowed abort count at decision time
	Share   float64 // windowed abort share at decision time
	Lane    int     // assigned lane (promotions; -1 on demotions)
}

// Observe runs one controller window: boxes whose share of total crosses
// the promotion threshold (and clear PromoteMinAborts) become domains;
// promoted boxes below half the threshold turn cool, and after
// DemoteAfter consecutive cool windows they are demoted. The returned
// events describe every transition, in stats order, demotions last.
// Call from one controller goroutine at a time.
func (s *Scheduler) Observe(boxStats []BoxStat, total uint64) []Event {
	cur := s.domains.Load()
	promoteShare := math.Float64frombits(s.promoteShare.Load())
	demoteShare := promoteShare / 2

	var events []Event
	var adds []*domain
	seen := make(map[uintptr]bool, len(boxStats))
	n := 0
	if cur != nil {
		n = len(cur.m)
	}
	for _, st := range boxStats {
		if st.Key == 0 || total == 0 {
			continue
		}
		seen[st.Key] = true
		share := float64(st.Aborts) / float64(total)
		if cur != nil {
			if d := cur.m[st.Key]; d != nil {
				// Already promoted: refresh hot/cool with hysteresis.
				if share >= demoteShare && st.Aborts >= s.opts.PromoteMinAborts/2 {
					d.cool.Store(false)
					d.coolTicks = 0
				} else {
					d.cool.Store(true)
					d.coolTicks++
				}
				continue
			}
		}
		if share >= promoteShare && st.Aborts >= s.opts.PromoteMinAborts && n+len(adds) < s.opts.MaxDomains {
			d := &domain{key: st.Key, label: st.Label, lane: s.laneFor(st.Key)}
			adds = append(adds, d)
			events = append(events, Event{
				Promote: true, Key: st.Key, Label: st.Label,
				Aborts: st.Aborts, Share: share, Lane: int(d.lane),
			})
		}
	}

	// Promoted boxes that vanished from the stats entirely had zero
	// windowed aborts: they cool toward demotion too.
	var removes []uintptr
	if cur != nil {
		for key, d := range cur.m {
			if !seen[key] {
				d.cool.Store(true)
				d.coolTicks++
			}
			if d.coolTicks >= s.opts.DemoteAfter {
				removes = append(removes, key)
				events = append(events, Event{
					Promote: false, Key: key, Label: d.label, Lane: -1,
				})
			}
		}
	}

	if len(adds) == 0 && len(removes) == 0 {
		return events
	}
	m := make(map[uintptr]*domain)
	if cur != nil {
		for k, v := range cur.m {
			m[k] = v
		}
	}
	for _, key := range removes {
		delete(m, key)
	}
	for _, d := range adds {
		m[d.key] = d
	}
	if len(m) == 0 {
		s.domains.Store(nil)
	} else {
		s.domains.Store(&domainTable{m: m})
	}
	s.promotions.Add(uint64(len(adds)))
	s.demotions.Add(uint64(len(removes)))
	return events
}

// Stats is a point-in-time snapshot of the scheduler's counters and
// configuration, for /status and metrics.
type Stats struct {
	Lanes        int     `json:"lanes"`
	ActiveLanes  int     `json:"active_lanes"`
	Domains      int     `json:"domains"`
	HotDomains   int     `json:"hot_domains"`
	MaxDepth     int64   `json:"max_lane_depth"` // deepest current lane occupancy
	Admitted     uint64  `json:"admitted"`
	BypassCool   uint64  `json:"bypass_cool"`
	BypassWait   uint64  `json:"bypass_wait"`
	Promotions   uint64  `json:"promotions"`
	Demotions    uint64  `json:"demotions"`
	PromoteShare float64 `json:"promote_share"`
}

// Snapshot returns the current Stats. Safe for concurrent use.
func (s *Scheduler) Snapshot() Stats {
	st := Stats{
		Lanes:        len(s.lanes),
		ActiveLanes:  int(s.activeLanes.Load()),
		Admitted:     s.admitted.Load(),
		BypassCool:   s.bypassCool.Load(),
		BypassWait:   s.bypassWait.Load(),
		Promotions:   s.promotions.Load(),
		Demotions:    s.demotions.Load(),
		PromoteShare: math.Float64frombits(s.promoteShare.Load()),
	}
	if tab := s.domains.Load(); tab != nil {
		st.Domains = len(tab.m)
		for _, d := range tab.m {
			if !d.cool.Load() {
				st.HotDomains++
			}
		}
	}
	for i := range s.lanes {
		if d := s.lanes[i].depth.Load(); d > st.MaxDepth {
			st.MaxDepth = d
		}
	}
	return st
}

// DomainInfo is one promoted domain, for /status listings.
type DomainInfo struct {
	Box  string `json:"box"`
	Lane int    `json:"lane"`
	Cool bool   `json:"cool,omitempty"`
}

// Domains lists the promoted domains, hottest-lane order unspecified but
// deterministic runs can sort on Box. Safe for concurrent use.
func (s *Scheduler) Domains() []DomainInfo {
	tab := s.domains.Load()
	if tab == nil {
		return nil
	}
	out := make([]DomainInfo, 0, len(tab.m))
	for key, d := range tab.m {
		box := d.label
		if box == "" {
			box = fmt.Sprintf("0x%x", key)
		}
		out = append(out, DomainInfo{Box: box, Lane: int(d.lane), Cool: d.cool.Load()})
	}
	return out
}

// LaneDepth returns lane i's current occupancy (holders + waiters); a
// white-box hook for tests and the metrics exporter.
func (s *Scheduler) LaneDepth(i int) int64 {
	if i < 0 || i >= len(s.lanes) {
		return 0
	}
	return s.lanes[i].depth.Load()
}

// LaneWaits returns how many acquisitions of lane i had to park.
func (s *Scheduler) LaneWaits(i int) uint64 {
	if i < 0 || i >= len(s.lanes) {
		return 0
	}
	return s.lanes[i].waits.Load()
}
