package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestColdPathAndUnknownKeys(t *testing.T) {
	s := New(Options{})
	if lane := s.Admit(0x100); lane != -1 {
		t.Fatalf("cold Admit = %d, want -1", lane)
	}
	s.Leave(-1) // must be a no-op
	if got := s.Promote(0x100, "hot"); got < 0 {
		t.Fatalf("Promote failed: lane %d", got)
	}
	if lane := s.Admit(0x200); lane != -1 {
		t.Errorf("Admit of unpromoted key = %d, want -1", lane)
	}
	st := s.Snapshot()
	if st.Domains != 1 || st.Promotions != 1 {
		t.Errorf("snapshot %+v, want 1 domain / 1 promotion", st)
	}
}

func TestAdmitLeaveSerializesOneLane(t *testing.T) {
	s := New(Options{Lanes: 4, MaxWait: time.Second})
	lane := s.Promote(0x40, "hot")
	if lane < 0 {
		t.Fatal("promote failed")
	}
	got := s.Admit(0x40)
	if got != lane {
		t.Fatalf("Admit = %d, want lane %d", got, lane)
	}
	// A second admission of the same domain parks until the first leaves.
	done := make(chan int, 1)
	go func() { done <- s.Admit(0x40) }()
	select {
	case l := <-done:
		t.Fatalf("second Admit returned %d while the lane was held", l)
	case <-time.After(20 * time.Millisecond):
	}
	s.Leave(got)
	select {
	case l := <-done:
		if l != lane {
			t.Fatalf("second Admit = %d, want %d", l, lane)
		}
		s.Leave(l)
	case <-time.After(time.Second):
		t.Fatal("second Admit never unblocked after Leave")
	}
	if d := s.LaneDepth(lane); d != 0 {
		t.Errorf("lane depth = %d after both left, want 0", d)
	}
}

// TestLaneFIFOOrdering: waiters parked behind a lane token are served in
// arrival order (the channel send queue is the FIFO).
func TestLaneFIFOOrdering(t *testing.T) {
	s := New(Options{Lanes: 1, MaxWait: 5 * time.Second})
	lane := s.Promote(0x8, "fifo")
	if lane != 0 {
		t.Fatalf("lane = %d, want 0 with one lane", lane)
	}
	holder := s.Admit(0x8)
	if holder != 0 {
		t.Fatal("holder admission failed")
	}

	const waiters = 8
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Launch waiters strictly one at a time: each must be parked in the
		// channel send queue (observable via lane depth) before the next
		// arrives, so arrival order is deterministic.
		want := int64(2 + i) // holder + already-parked + this one
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := s.Admit(0x8)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Leave(l)
		}(i)
		deadline := time.Now().Add(5 * time.Second)
		for s.LaneDepth(0) < want {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never parked (depth %d)", i, s.LaneDepth(0))
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	s.Leave(holder)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want FIFO arrival order", order)
		}
	}
	if w := s.LaneWaits(0); w != waiters {
		t.Errorf("lane waits = %d, want %d", w, waiters)
	}
}

func TestBoundedWaitBypassesStalledLane(t *testing.T) {
	s := New(Options{Lanes: 1, MaxWait: 10 * time.Millisecond})
	s.Promote(0x8, "stalled")
	holder := s.Admit(0x8)
	start := time.Now()
	l := s.Admit(0x8) // the lane holder never leaves: must bypass
	if l != -1 {
		t.Fatalf("Admit = %d during stall, want -1 bypass", l)
	}
	if e := time.Since(start); e < 5*time.Millisecond || e > time.Second {
		t.Errorf("bypass took %v, want ~MaxWait", e)
	}
	if st := s.Snapshot(); st.BypassWait != 1 {
		t.Errorf("bypassWait = %d, want 1", st.BypassWait)
	}
	if d := s.LaneDepth(0); d != 1 { // only the holder remains
		t.Errorf("lane depth = %d after bypass, want 1", d)
	}
	s.Leave(holder)
}

func TestBypassOnCooldown(t *testing.T) {
	s := New(Options{PromoteMinAborts: 4, DemoteAfter: 2})
	// Promote via the controller: 100% share, enough aborts.
	ev := s.Observe([]BoxStat{{Key: 0x10, Label: "hot", Aborts: 40}}, 40)
	if len(ev) != 1 || !ev[0].Promote || ev[0].Key != 0x10 || ev[0].Share != 1.0 {
		t.Fatalf("events = %+v, want one promotion of 0x10", ev)
	}
	if l := s.Admit(0x10); l < 0 {
		t.Fatal("promoted domain not gating")
	} else {
		s.Leave(l)
	}
	// One cool window: below half the threshold → cool, bypassed, but not
	// yet demoted.
	ev = s.Observe([]BoxStat{{Key: 0x10, Label: "hot", Aborts: 1}}, 100)
	if len(ev) != 0 {
		t.Fatalf("cool window emitted %+v, want nothing yet", ev)
	}
	if l := s.Admit(0x10); l != -1 {
		t.Fatalf("Admit = %d on cooling domain, want -1", l)
	}
	if st := s.Snapshot(); st.BypassCool != 1 || st.Domains != 1 || st.HotDomains != 0 {
		t.Errorf("snapshot %+v, want 1 cool bypassed domain", st)
	}
	// Re-heating resets the cool streak.
	s.Observe([]BoxStat{{Key: 0x10, Label: "hot", Aborts: 40}}, 40)
	if l := s.Admit(0x10); l < 0 {
		t.Fatal("re-heated domain not gating again")
	} else {
		s.Leave(l)
	}
	// DemoteAfter consecutive cool windows (including a window where the
	// box vanished from the stats entirely) demote it.
	s.Observe([]BoxStat{{Key: 0x10, Label: "hot", Aborts: 1}}, 100)
	ev = s.Observe(nil, 100)
	if len(ev) != 1 || ev[0].Promote || ev[0].Key != 0x10 {
		t.Fatalf("events = %+v, want one demotion of 0x10", ev)
	}
	if s.domains.Load() != nil {
		t.Error("table not back to the nil cold gate after the last demotion")
	}
	if st := s.Snapshot(); st.Demotions != 1 || st.Domains != 0 {
		t.Errorf("snapshot %+v, want the demotion counted", st)
	}
}

func TestObserveThresholds(t *testing.T) {
	s := New(Options{PromoteShare: 0.5, PromoteMinAborts: 10, MaxDomains: 2})
	ev := s.Observe([]BoxStat{
		{Key: 0x1, Aborts: 60}, // 60% share: promote
		{Key: 0x2, Aborts: 30}, // under share threshold
		{Key: 0x3, Aborts: 5},  // under min aborts even at high share
	}, 100)
	if len(ev) != 1 || ev[0].Key != 0x1 {
		t.Fatalf("events = %+v, want only 0x1 promoted", ev)
	}
	// Domain cap: with MaxDomains 2, at most one more promotion fits.
	ev = s.Observe([]BoxStat{
		{Key: 0x4, Aborts: 60},
		{Key: 0x5, Aborts: 60},
	}, 100)
	if len(ev) != 1 || ev[0].Key != 0x4 {
		t.Fatalf("events = %+v, want only 0x4 (cap reached)", ev)
	}
	// Zero total or zero keys never divide by zero or promote.
	if ev := s.Observe([]BoxStat{{Key: 0x6, Aborts: 50}}, 0); len(ev) != 0 {
		t.Errorf("total=0 emitted %+v", ev)
	}
}

func TestKnobSetters(t *testing.T) {
	s := New(Options{Lanes: 4})
	s.SetActiveLanes(99)
	if got := s.ActiveLanes(); got != 4 {
		t.Errorf("ActiveLanes clamped to %d, want 4", got)
	}
	s.SetActiveLanes(0)
	if got := s.ActiveLanes(); got != 1 {
		t.Errorf("ActiveLanes clamped to %d, want 1", got)
	}
	// With one active lane every new promotion maps to lane 0.
	if lane := s.Promote(0xabc, ""); lane != 0 {
		t.Errorf("promotion with 1 active lane got lane %d", lane)
	}
	s.SetPromoteShare(0.7)
	if got := s.PromoteShareValue(); got != 0.7 {
		t.Errorf("PromoteShareValue = %v, want 0.7", got)
	}
	s.SetPromoteShare(0) // out of range: ignored
	if got := s.PromoteShareValue(); got != 0.7 {
		t.Errorf("PromoteShareValue after invalid set = %v, want 0.7", got)
	}
	if infos := s.Domains(); len(infos) != 1 || infos[0].Box != "0xabc" {
		t.Errorf("Domains() = %+v, want the unlabeled box rendered as 0xabc", infos)
	}
}

// TestPromotionDemotionChurnUnderLoad hammers Admit/Leave from many
// goroutines while the controller promotes and demotes the same keys —
// the -race coverage for the copy-on-write table swap, the atomic cool
// flag and the counters. No admitted transaction may ever be stranded.
func TestPromotionDemotionChurnUnderLoad(t *testing.T) {
	s := New(Options{Lanes: 4, MaxWait: 200 * time.Microsecond, DemoteAfter: 1})
	keys := []uintptr{0x10, 0x20, 0x30, 0x40, 0x50}
	var stop atomic.Bool
	var admits atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := keys[(g+i)%len(keys)]
				if l := s.Admit(key); l >= 0 {
					admits.Add(1)
					s.Leave(l)
				}
			}
		}(g)
	}
	for round := 0; round < 200; round++ {
		stats := make([]BoxStat, 0, len(keys))
		for i, k := range keys {
			// Alternate which keys look hot so domains churn constantly.
			if (round+i)%2 == 0 {
				stats = append(stats, BoxStat{Key: k, Aborts: 100})
			}
		}
		s.Observe(stats, 300)
		time.Sleep(100 * time.Microsecond)
	}
	stop.Store(true)
	wg.Wait()
	st := s.Snapshot()
	if st.Promotions == 0 || st.Demotions == 0 {
		t.Errorf("churn produced %d promotions / %d demotions, want both > 0", st.Promotions, st.Demotions)
	}
	if admits.Load() == 0 {
		t.Error("no admission ever succeeded under churn")
	}
	// Every lane must be fully drained: nothing admitted is stranded.
	for i := 0; i < 4; i++ {
		if d := s.LaneDepth(i); d != 0 {
			t.Errorf("lane %d depth = %d after drain, want 0", i, d)
		}
	}
}

// TestStalledLaneDoesNotWedgeOtherLanes: a holder that never leaves its
// lane leaves other domains' lanes fully serviceable (the cross-lane
// isolation the chaos e2e test exercises through the STM).
func TestStalledLaneDoesNotWedgeOtherLanes(t *testing.T) {
	s := New(Options{Lanes: 2, MaxWait: 20 * time.Millisecond})
	s.SetActiveLanes(2)
	// Find two keys mapping to different lanes.
	keyA := uintptr(0x8)
	laneA := s.Promote(keyA, "stalled")
	var keyB uintptr
	laneB := -1
	for k := uintptr(0x10); k < 0x2000; k += 8 {
		if int(s.laneFor(k)) != laneA {
			keyB = k
			laneB = s.Promote(k, "healthy")
			break
		}
	}
	if laneB < 0 || laneB == laneA {
		t.Fatalf("could not find a second lane (laneA=%d laneB=%d)", laneA, laneB)
	}
	// Wedge lane A.
	if l := s.Admit(keyA); l != laneA {
		t.Fatal("failed to occupy lane A")
	}
	// Lane B stays fully serviceable, immediately.
	for i := 0; i < 100; i++ {
		start := time.Now()
		l := s.Admit(keyB)
		if l != laneB {
			t.Fatalf("lane B admission %d returned %d", i, l)
		}
		if time.Since(start) > 10*time.Millisecond {
			t.Fatalf("lane B admission %d stalled behind lane A", i)
		}
		s.Leave(l)
	}
	if st := s.Snapshot(); st.BypassWait != 0 {
		t.Errorf("lane B admissions bypassed (%d), want clean token handoffs", st.BypassWait)
	}
}
