// Package tpcc ports the TPC-C transaction mix (§VII-A of the paper) to
// the PN-STM, following the PN-TM adaptation used by the paper (the JVSTM
// port): the database (warehouses, districts, customers, stock, orders)
// lives in transactional tables, and the heavyweight NewOrder transaction
// parallelizes its per-order-line work (stock lookup, price computation,
// stock update) across nested transactions. Contention is controlled by
// the number of warehouses (fewer warehouses = hotter districts and stock
// rows).
//
// The mix covers four of TPC-C's five transactions: NewOrder (long,
// update-heavy, nested-parallel), Payment (short, hot rows), OrderStatus
// (read-only point lookups) and StockLevel (read-only scan, nested-
// parallel). Delivery is subsumed by NewOrder's accounting for the
// invariants this port validates.
package tpcc

import (
	"fmt"

	"autopn/internal/stats"
	"autopn/internal/stm"
	"autopn/internal/stmx"
)

// Config sizes the database.
type Config struct {
	Warehouses    int
	DistrictsPerW int
	CustomersPerD int
	Items         int
	// OrderLines is the number of lines per NewOrder transaction (TPC-C
	// draws 5-15; we fix the mean 10 for determinism of the workload mix).
	OrderLines int
	// Mix fractions; the remainder after all fractions are NewOrder.
	PaymentFrac     float64
	OrderStatusFrac float64
	StockLevelFrac  float64
}

// Preset returns the low/med/high-contention configurations.
func Preset(level string) Config {
	cfg := Config{
		DistrictsPerW:   10,
		CustomersPerD:   30,
		Items:           1000,
		OrderLines:      10,
		PaymentFrac:     0.35,
		OrderStatusFrac: 0.10,
		StockLevelFrac:  0.05,
	}
	switch level {
	case "low":
		cfg.Warehouses = 8
	case "med":
		cfg.Warehouses = 2
	default: // high
		cfg.Warehouses = 1
		cfg.Items = 200
	}
	return cfg
}

// district holds the hot per-district sequence and year-to-date counters.
type district struct {
	NextOrderID int
	YTD         int64
}

// customer is a TPC-C customer row (reduced to the fields the transactions
// touch).
type customer struct {
	Balance  int64
	YTD      int64
	Payments int
}

// stockRow is the per-(warehouse,item) stock level.
type stockRow struct {
	Quantity int
	YTD      int
}

// order records a placed order (order table rows are insert-only).
type order struct {
	Customer uint64
	Lines    int
	Total    int64
}

// Benchmark is a live TPC-C instance.
type Benchmark struct {
	name string
	cfg  Config

	districts []*stm.VBox[district]    // warehouse*DistrictsPerW + d
	customers []*stm.VBox[customer]    // flat index
	stock     []*stm.VBox[stockRow]    // warehouse*Items + item
	prices    []int                    // immutable item prices
	orders    *stmx.Map[uint64, order] // orderKey(d, id) -> order
	placed    *stmx.ShardedCounter     // statistics: orders placed
}

// counterShards bounds the serialization added by the statistics counter.
const counterShards = 64

// orderKey derives the order table key from a district and its per-
// district order id (district sequences are independent, so the pair is
// unique without any global sequence — a global counter would serialize
// every NewOrder).
func orderKey(d, id int) uint64 { return uint64(d)<<32 | uint64(uint32(id)) }

// New creates and populates a TPC-C database at the given contention level
// ("low", "med", "high"). The populated boxes carry version 0, so they are
// visible to transactions on any STM; s is accepted to mirror the other
// workloads' contract that a benchmark is bound to one STM.
func New(level string, s *stm.STM) *Benchmark {
	cfg := Preset(level)
	b := &Benchmark{name: "tpcc-" + level, cfg: cfg}
	nD := cfg.Warehouses * cfg.DistrictsPerW
	b.districts = make([]*stm.VBox[district], nD)
	for i := range b.districts {
		b.districts[i] = stm.NewVBox(district{NextOrderID: 1})
	}
	b.customers = make([]*stm.VBox[customer], nD*cfg.CustomersPerD)
	for i := range b.customers {
		b.customers[i] = stm.NewVBox(customer{Balance: 1000})
	}
	b.stock = make([]*stm.VBox[stockRow], cfg.Warehouses*cfg.Items)
	rng := stats.NewRNG(0x7Bcc)
	for i := range b.stock {
		b.stock[i] = stm.NewVBox(stockRow{Quantity: 50 + int(rng.Uint64()%50)})
	}
	b.prices = make([]int, cfg.Items)
	for i := range b.prices {
		b.prices[i] = 1 + int(rng.Uint64()%100)
	}
	b.orders = stmx.NewMap[uint64, order](4096, stmx.FNV1a64)
	b.placed = stmx.NewShardedCounter(counterShards)
	_ = s
	return b
}

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return b.name }

// Orders returns the number of committed orders (for validation).
func (b *Benchmark) Orders() int64 { return b.placed.Peek() }

// Transaction implements workload.Workload, drawing from the TPC-C mix.
func (b *Benchmark) Transaction(tx *stm.Tx, rng *stats.RNG, nested int) error {
	r := rng.Float64()
	switch {
	case r < b.cfg.PaymentFrac:
		return b.payment(tx, rng)
	case r < b.cfg.PaymentFrac+b.cfg.OrderStatusFrac:
		return b.orderStatus(tx, rng)
	case r < b.cfg.PaymentFrac+b.cfg.OrderStatusFrac+b.cfg.StockLevelFrac:
		return b.stockLevel(tx, rng, nested)
	default:
		return b.newOrder(tx, rng, nested)
	}
}

// payment updates a customer balance and the district YTD (short, hot).
func (b *Benchmark) payment(tx *stm.Tx, rng *stats.RNG) error {
	d := rng.Intn(len(b.districts))
	c := d*b.cfg.CustomersPerD + rng.Intn(b.cfg.CustomersPerD)
	amount := int64(1 + rng.Intn(500))

	dist := b.districts[d].Get(tx)
	dist.YTD += amount
	b.districts[d].Put(tx, dist)

	cust := b.customers[c].Get(tx)
	cust.Balance -= amount
	cust.YTD += amount
	cust.Payments++
	b.customers[c].Put(tx, cust)
	return nil
}

// orderStatus is a read-only lookup of a random recent order in a random
// district. Read-only transactions never abort under the multi-version
// STM, which is part of what makes high top-level parallelism cheap for
// read-heavy mixes.
func (b *Benchmark) orderStatus(tx *stm.Tx, rng *stats.RNG) error {
	d := rng.Intn(len(b.districts))
	next := b.districts[d].Get(tx).NextOrderID
	if next <= 1 {
		return nil // no orders in this district yet
	}
	id := 1 + rng.Intn(next-1)
	if o, ok := b.orders.Get(tx, orderKey(d, id)); ok {
		_ = b.customers[o.Customer].Get(tx).Balance
	}
	return nil
}

// stockLevel counts low-stock items of one warehouse, scanning the stock
// table with nested parallel children (TPC-C's analytics-flavored
// read-only transaction).
func (b *Benchmark) stockLevel(tx *stm.Tx, rng *stats.RNG, nested int) error {
	w := rng.Intn(b.cfg.Warehouses)
	base := w * b.cfg.Items
	const threshold = 15
	if nested < 1 {
		nested = 1
	}
	low := make([]int, nested)
	err := tx.ParallelFor(b.cfg.Items, nested, func(child *stm.Tx, i int) error {
		if b.stock[base+i].Get(child).Quantity < threshold {
			low[i*nested/b.cfg.Items]++
		}
		return nil
	})
	return err
}

// newOrder is the long transaction of the mix: it allocates an order id
// from the district sequence and then processes OrderLines order lines —
// the per-line stock reads and updates run as nested transactions,
// partitioned across `nested` children.
func (b *Benchmark) newOrder(tx *stm.Tx, rng *stats.RNG, nested int) error {
	d := rng.Intn(len(b.districts))
	w := d / b.cfg.DistrictsPerW
	c := d*b.cfg.CustomersPerD + rng.Intn(b.cfg.CustomersPerD)

	dist := b.districts[d].Get(tx)
	orderID := dist.NextOrderID
	dist.NextOrderID++
	b.districts[d].Put(tx, dist)

	// Pick the order-line items up front (deterministic given rng).
	lines := make([]int, b.cfg.OrderLines)
	for i := range lines {
		lines[i] = rng.Intn(b.cfg.Items)
	}

	// Process lines with intra-transaction parallelism: each child owns a
	// contiguous chunk of lines and accumulates its partial total.
	if nested < 1 {
		nested = 1
	}
	if nested > len(lines) {
		nested = len(lines)
	}
	partials := make([]int64, nested)
	fns := make([]func(*stm.Tx) error, nested)
	for p := 0; p < nested; p++ {
		lo, hi := p*len(lines)/nested, (p+1)*len(lines)/nested
		part := p
		fns[p] = func(child *stm.Tx) error {
			var sum int64
			for _, it := range lines[lo:hi] {
				sIdx := w*b.cfg.Items + it
				row := b.stock[sIdx].Get(child)
				qty := 1 + (it % 5)
				if row.Quantity < qty {
					row.Quantity += 91 // TPC-C restock rule
				}
				row.Quantity -= qty
				row.YTD += qty
				b.stock[sIdx].Put(child, row)
				sum += int64(qty * b.prices[it])
			}
			partials[part] = sum
			return nil
		}
	}
	var err error
	if nested == 1 {
		err = fns[0](tx)
	} else {
		err = tx.Parallel(fns...)
	}
	if err != nil {
		return err
	}
	var total int64
	for _, p := range partials {
		total += p
	}

	cust := b.customers[c].Get(tx)
	cust.Balance -= total
	b.customers[c].Put(tx, cust)

	b.orders.Put(tx, orderKey(d, orderID), order{
		Customer: uint64(c),
		Lines:    len(lines),
		Total:    total,
	})
	b.placed.Add(tx, rng.Uint64(), 1)
	return nil
}

// CheckInvariants validates accounting identities over the committed
// state: the district order sequences, the order table and the statistics
// counter agree on the number of orders placed, and customer YTD sums
// match district YTD sums.
func (b *Benchmark) CheckInvariants(s *stm.STM) error {
	return s.Atomic(func(tx *stm.Tx) error {
		ordersPlaced := 0
		for _, db := range b.districts {
			ordersPlaced += db.Get(tx).NextOrderID - 1
		}
		if int64(ordersPlaced) != b.placed.Sum(tx) {
			return fmt.Errorf("tpcc: district sequences say %d orders, counter says %d",
				ordersPlaced, b.placed.Sum(tx))
		}
		if n := b.orders.Len(tx); n != ordersPlaced {
			return fmt.Errorf("tpcc: order table has %d rows, sequences say %d",
				n, ordersPlaced)
		}
		var custYTD, distYTD int64
		for _, cb := range b.customers {
			custYTD += cb.Get(tx).YTD
		}
		for _, db := range b.districts {
			distYTD += db.Get(tx).YTD
		}
		if custYTD != distYTD {
			return fmt.Errorf("tpcc: customer YTD %d != district YTD %d", custYTD, distYTD)
		}
		return nil
	})
}
