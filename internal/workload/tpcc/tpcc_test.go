package tpcc

import (
	"testing"

	"autopn/internal/stats"
	"autopn/internal/stm"
)

func newBench(t *testing.T, level string) (*Benchmark, *stm.STM) {
	t.Helper()
	s := stm.New(stm.Options{})
	return New(level, s), s
}

func TestNewOrderAccounting(t *testing.T) {
	b, s := newBench(t, "med")
	rng := stats.NewRNG(1)
	for i := 0; i < 50; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.newOrder(tx, rng, 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Orders() != 50 {
		t.Fatalf("Orders = %d, want 50", b.Orders())
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderNestedEqualsSequential(t *testing.T) {
	// The same RNG seed must produce identical database effects whether the
	// order lines are processed sequentially or split across children.
	totals := map[int]int64{}
	for _, nested := range []int{1, 2, 5, 10} {
		b, s := newBench(t, "low")
		rng := stats.NewRNG(42)
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.newOrder(tx, rng, nested)
		}); err != nil {
			t.Fatal(err)
		}
		var total int64
		if err := s.Atomic(func(tx *stm.Tx) error {
			// Sum all customer balance deltas: initial 1000 each.
			total = 0
			for _, cb := range b.customers {
				total += 1000 - cb.Get(tx).Balance
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		totals[nested] = total
		if err := b.CheckInvariants(s); err != nil {
			t.Fatalf("nested=%d: %v", nested, err)
		}
	}
	for nested, total := range totals {
		if total != totals[1] {
			t.Fatalf("nested=%d produced total %d, sequential produced %d", nested, total, totals[1])
		}
	}
}

func TestPaymentConservesYTD(t *testing.T) {
	b, s := newBench(t, "high")
	rng := stats.NewRNG(3)
	for i := 0; i < 200; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.payment(tx, rng)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyTransactionsDontAbort(t *testing.T) {
	b, s := newBench(t, "med")
	rng := stats.NewRNG(4)
	// Seed some orders first.
	for i := 0; i < 20; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.newOrder(tx, rng, 2)
		}); err != nil {
			t.Fatal(err)
		}
	}
	abortsBefore := s.Stats.TopAborts()
	for i := 0; i < 100; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			if i%2 == 0 {
				return b.orderStatus(tx, rng)
			}
			return b.stockLevel(tx, rng, 3)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats.TopAborts(); got != abortsBefore {
		t.Fatalf("read-only transactions aborted %d times", got-abortsBefore)
	}
}

func TestOrderKeyUniqueAcrossDistricts(t *testing.T) {
	seen := map[uint64]bool{}
	for d := 0; d < 80; d++ {
		for id := 1; id <= 100; id++ {
			k := orderKey(d, id)
			if seen[k] {
				t.Fatalf("duplicate key for (%d,%d)", d, id)
			}
			seen[k] = true
		}
	}
}

func TestMixFractions(t *testing.T) {
	b, s := newBench(t, "low")
	rng := stats.NewRNG(6)
	counts := map[string]int{}
	before := func() (p, o int64) {
		for _, cb := range b.customers {
			p += int64(cb.Peek().Payments)
		}
		return p, b.Orders()
	}
	p0, o0 := before()
	const n = 400
	for i := 0; i < n; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.Transaction(tx, rng, 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	p1, o1 := before()
	counts["payment"] = int(p1 - p0)
	counts["neworder"] = int(o1 - o0)
	// Payment ~35%, NewOrder ~50% of the mix.
	if counts["payment"] < n/5 || counts["payment"] > n/2 {
		t.Errorf("payments = %d of %d", counts["payment"], n)
	}
	if counts["neworder"] < n/3 || counts["neworder"] > n*2/3 {
		t.Errorf("neworders = %d of %d", counts["neworder"], n)
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestContentionPresets(t *testing.T) {
	if Preset("low").Warehouses <= Preset("high").Warehouses {
		t.Fatal("low contention must have more warehouses than high")
	}
}
