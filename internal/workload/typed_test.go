package workload_test

import (
	"testing"
	"time"

	"autopn/internal/core"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/internal/workload/tpcc"
)

func TestTypedDriverRunsMixAndApplies(t *testing.T) {
	s := stm.New(stm.Options{})
	d := &workload.TypedDriver{
		STM:            s,
		Types:          []workload.Workload{array.New(64, 0.05), tpcc.New("low", s)},
		ThreadsPerType: 2,
	}
	d.Start(77)
	time.Sleep(60 * time.Millisecond)
	d.Apply([]space.Config{{T: 2, C: 2}, {T: 1, C: 3}})
	time.Sleep(60 * time.Millisecond)
	d.Stop()
	if d.Commits(0) == 0 || d.Commits(1) == 0 {
		t.Fatalf("type commits: %d, %d — both types must run", d.Commits(0), d.Commits(1))
	}
}

// TestMultiTunerLive drives the §VIII per-type tuner against a live mix of
// two transaction types on the real STM: a short end-to-end check that the
// multi-space machinery composes with real measurements.
func TestMultiTunerLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing test")
	}
	s := stm.New(stm.Options{})
	d := &workload.TypedDriver{
		STM:            s,
		Types:          []workload.Workload{array.New(128, 0), array.New(128, 0.8)},
		ThreadsPerType: 2,
	}
	d.Start(5)
	defer d.Stop()

	const cores = 2
	m := core.NewMultiTuner(cores, 2, stats.NewRNG(3), core.Options{})
	m.MaxSweeps = 2
	deadline := time.Now().Add(20 * time.Second)
	steps := 0
	for time.Now().Before(deadline) {
		vec, done := m.Next()
		if done {
			break
		}
		d.Apply(vec)
		kpi := d.MeasureWindow(25 * time.Millisecond)
		m.Observe(vec, kpi)
		steps++
	}
	best, kpi := m.Best()
	if len(best) != 2 {
		t.Fatalf("best vector %v", best)
	}
	for i, cfg := range best {
		if !cfg.Valid(cores) {
			t.Fatalf("type %d tuned to invalid %v", i, cfg)
		}
	}
	if kpi <= 0 {
		t.Fatalf("best KPI %v", kpi)
	}
	t.Logf("live multi-type tuning: %d measurements, best %v at %.0f commits/s", steps, best, kpi)
}
