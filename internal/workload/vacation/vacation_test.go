package vacation

import (
	"testing"

	"autopn/internal/stats"
	"autopn/internal/stm"
)

func newBench(t *testing.T, level string) (*Benchmark, *stm.STM) {
	t.Helper()
	s := stm.New(stm.Options{})
	return New(level, s), s
}

func TestPopulationSizes(t *testing.T) {
	b, s := newBench(t, "med")
	cfg := Preset("med")
	if err := s.Atomic(func(tx *stm.Tx) error {
		for k := Kind(0); k < numKinds; k++ {
			if n := b.tables[k].Len(tx); n != cfg.Items {
				t.Errorf("table %d has %d items, want %d", k, n, cfg.Items)
			}
		}
		if n := b.customers.Len(tx); n != cfg.Customers {
			t.Errorf("customers = %d, want %d", n, cfg.Customers)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReservationBooksAndRecords(t *testing.T) {
	b, s := newBench(t, "low")
	rng := stats.NewRNG(5)
	for i := 0; i < 50; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.makeReservation(tx, rng, 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Booked() == 0 {
		t.Fatal("no bookings")
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
	used, total := b.Occupancy(s)
	if used == 0 || used > total {
		t.Fatalf("occupancy %d/%d", used, total)
	}
}

func TestReservationWithNestedSearchesEquivalent(t *testing.T) {
	// The same seed must produce the same booking whether the three
	// category searches run sequentially or as parallel children (the
	// searches are read-only and independent).
	for _, nested := range []int{1, 3} {
		b, s := newBench(t, "low")
		rng := stats.NewRNG(77)
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.makeReservation(tx, rng, nested)
		}); err != nil {
			t.Fatal(err)
		}
		if b.Booked() != 1 {
			t.Fatalf("nested=%d: booked %d", nested, b.Booked())
		}
		if err := b.CheckInvariants(s); err != nil {
			t.Fatalf("nested=%d: %v", nested, err)
		}
	}
}

func TestDeleteCustomerReleasesInventory(t *testing.T) {
	b, s := newBench(t, "high")
	rng := stats.NewRNG(9)
	for i := 0; i < 100; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.makeReservation(tx, rng, 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	usedBefore, _ := b.Occupancy(s)
	if usedBefore == 0 {
		t.Fatal("nothing booked")
	}
	// Delete every customer: all inventory must come back.
	cfg := Preset("high")
	for id := uint64(0); id < uint64(cfg.Customers); id++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.deleteCustomer(tx, stats.NewRNG(id))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// deleteCustomer picks a random customer; force-delete the rest
	// deterministically through the underlying helper to drain them all.
	if err := s.Atomic(func(tx *stm.Tx) error {
		for id := uint64(0); id < uint64(cfg.Customers); id++ {
			cust, ok := b.customers.Get(tx, id)
			if !ok {
				continue
			}
			for _, res := range cust.Reservations {
				if it, ok := b.tables[res.Kind].Get(tx, res.ID); ok && it.Used > 0 {
					it.Used--
					b.tables[res.Kind].Put(tx, res.ID, it)
				}
			}
			b.customers.Put(tx, id, customer{})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	usedAfter, _ := b.Occupancy(s)
	if usedAfter != 0 {
		t.Fatalf("inventory still in use after deleting all customers: %d", usedAfter)
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateTablesKeepsUsageIntact(t *testing.T) {
	b, s := newBench(t, "med")
	rng := stats.NewRNG(13)
	for i := 0; i < 20; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.makeReservation(tx, rng, 1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	usedBefore, totalBefore := b.Occupancy(s)
	for i := 0; i < 20; i++ {
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.updateTables(tx, rng, 2)
		}); err != nil {
			t.Fatal(err)
		}
	}
	usedAfter, totalAfter := b.Occupancy(s)
	if usedAfter != usedBefore || totalAfter != totalBefore {
		t.Fatalf("price updates changed capacity/usage: %d/%d -> %d/%d",
			usedBefore, totalBefore, usedAfter, totalAfter)
	}
	if b.Updated() != 20 {
		t.Fatalf("Updated = %d", b.Updated())
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestPresetContentionOrdering(t *testing.T) {
	lo, med, hi := Preset("low"), Preset("med"), Preset("high")
	if !(lo.Items > med.Items && med.Items > hi.Items) {
		t.Fatalf("items not decreasing with contention: %d %d %d", lo.Items, med.Items, hi.Items)
	}
	if !(lo.QueriesPerKind <= med.QueriesPerKind && med.QueriesPerKind <= hi.QueriesPerKind) {
		t.Fatal("queries per kind should grow with contention")
	}
}
