// Package vacation ports STAMP's Vacation benchmark (§VII-A of the paper)
// to the PN-STM: a travel reservation system whose car, flight and room
// inventories and customer records live in transactional red-black trees
// (stmx.RBTree), exactly as in the original STAMP implementation.
//
// The transaction mix follows STAMP:
//
//   - MakeReservation (the bulk of the mix): query a batch of random items
//     in each inventory, pick the cheapest available offer per category,
//     book it and append it to the customer's reservation list. The three
//     per-category searches are natural units of intra-transaction
//     parallelism and run as nested transactions when the tuner grants
//     nested parallelism.
//   - DeleteCustomer: remove a customer, releasing every reservation they
//     hold back to the inventories.
//   - UpdateTables: price updates and additions/removals of inventory
//     entries (the "manager" transaction).
//
// Contention is controlled by the inventory size relative to the query
// rate, mirroring STAMP's low/medium/high-contention configurations.
package vacation

import (
	"fmt"

	"autopn/internal/stats"
	"autopn/internal/stm"
	"autopn/internal/stmx"
)

// Kind enumerates the reservation categories.
type Kind int

// The three inventory categories of Vacation.
const (
	Car Kind = iota
	Flight
	Room
	numKinds
)

// item is one reservable inventory entry.
type item struct {
	Total int
	Used  int
	Price int
}

// reservation records one booked item on a customer.
type reservation struct {
	Kind Kind
	ID   uint64
}

// customer is a customer record with their reservations.
type customer struct {
	Reservations []reservation
}

// Config sizes the benchmark.
type Config struct {
	// Items is the number of entries per inventory table.
	Items int
	// Customers is the size of the customer table.
	Customers int
	// QueriesPerKind is how many random items each reservation transaction
	// inspects per category.
	QueriesPerKind int
	// ReservationFrac and DeleteFrac set the transaction mix; the
	// remainder are UpdateTables transactions. STAMP's default mix is
	// dominated by reservations.
	ReservationFrac float64
	DeleteFrac      float64
}

// Preset returns the low/med/high-contention configurations used by the
// experiments.
func Preset(level string) Config {
	cfg := Config{
		Customers:       256,
		ReservationFrac: 0.90,
		DeleteFrac:      0.05,
	}
	switch level {
	case "low":
		cfg.Items, cfg.QueriesPerKind = 4096, 4
	case "med":
		cfg.Items, cfg.QueriesPerKind = 512, 6
	default: // high
		cfg.Items, cfg.QueriesPerKind = 64, 8
	}
	return cfg
}

// Benchmark is a live Vacation instance.
type Benchmark struct {
	name      string
	cfg       Config
	tables    [numKinds]*stmx.RBTree[uint64, item]
	customers *stmx.RBTree[uint64, customer]
	// Statistics counters are sharded so they never become artificial
	// global conflict points inside the hot transactions.
	booked  *stmx.ShardedCounter
	failed  *stmx.ShardedCounter
	deleted *stmx.ShardedCounter
	updated *stmx.ShardedCounter
}

// counterShards bounds the serialization added by statistics counters.
const counterShards = 64

func uintLess(a, b uint64) bool { return a < b }

// New creates a Vacation benchmark at the given contention level,
// populating every table through transactions on s (the STM instance the
// benchmark will run on; versioned boxes must be used with a single STM).
func New(level string, s *stm.STM) *Benchmark {
	cfg := Preset(level)
	b := &Benchmark{name: "vacation-" + level, cfg: cfg}
	rng := stats.NewRNG(0xFACA)
	for k := Kind(0); k < numKinds; k++ {
		b.tables[k] = stmx.NewRBTree[uint64, item](uintLess)
	}
	b.customers = stmx.NewRBTree[uint64, customer](uintLess)
	b.booked = stmx.NewShardedCounter(counterShards)
	b.failed = stmx.NewShardedCounter(counterShards)
	b.deleted = stmx.NewShardedCounter(counterShards)
	b.updated = stmx.NewShardedCounter(counterShards)
	for k := Kind(0); k < numKinds; k++ {
		table := b.tables[k]
		if err := s.Atomic(func(tx *stm.Tx) error {
			for id := uint64(0); id < uint64(cfg.Items); id++ {
				table.Put(tx, id, item{
					Total: 5 + int(rng.Uint64()%10),
					Price: 50 + int(rng.Uint64()%450),
				})
			}
			return nil
		}); err != nil {
			panic(fmt.Sprintf("vacation: populate %d: %v", k, err))
		}
	}
	if err := s.Atomic(func(tx *stm.Tx) error {
		for id := uint64(0); id < uint64(cfg.Customers); id++ {
			b.customers.Put(tx, id, customer{})
		}
		return nil
	}); err != nil {
		panic(fmt.Sprintf("vacation: populate customers: %v", err))
	}
	return b
}

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return b.name }

// Booked returns the committed number of successful bookings.
func (b *Benchmark) Booked() int64 { return b.booked.Peek() }

// Deleted returns the committed number of customer deletions.
func (b *Benchmark) Deleted() int64 { return b.deleted.Peek() }

// Updated returns the committed number of table-update transactions.
func (b *Benchmark) Updated() int64 { return b.updated.Peek() }

// Transaction implements workload.Workload, drawing from the STAMP mix.
func (b *Benchmark) Transaction(tx *stm.Tx, rng *stats.RNG, nested int) error {
	r := rng.Float64()
	switch {
	case r < b.cfg.ReservationFrac:
		return b.makeReservation(tx, rng, nested)
	case r < b.cfg.ReservationFrac+b.cfg.DeleteFrac:
		return b.deleteCustomer(tx, rng)
	default:
		return b.updateTables(tx, rng, nested)
	}
}

// makeReservation searches each category (in parallel children when
// granted) and books the cheapest available item per category for a random
// customer.
func (b *Benchmark) makeReservation(tx *stm.Tx, rng *stats.RNG, nested int) error {
	var picks [numKinds]uint64
	var found [numKinds]bool

	search := func(k Kind) func(*stm.Tx) error {
		seed := rng.Uint64()
		return func(child *stm.Tx) error {
			srng := stats.NewRNG(seed)
			bestPrice := -1
			for q := 0; q < b.cfg.QueriesPerKind; q++ {
				id := srng.Uint64() % uint64(b.cfg.Items)
				it, ok := b.tables[k].Get(child, id)
				if !ok || it.Used >= it.Total {
					continue
				}
				if bestPrice < 0 || it.Price < bestPrice {
					bestPrice = it.Price
					picks[k] = id
					found[k] = true
				}
			}
			return nil
		}
	}

	var err error
	if nested >= 2 {
		err = tx.Parallel(search(Car), search(Flight), search(Room))
	} else {
		for k := Kind(0); k < numKinds; k++ {
			if err = search(k)(tx); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}

	custID := rng.Uint64() % uint64(b.cfg.Customers)
	cust, haveCust := b.customers.Get(tx, custID)
	if !haveCust {
		// The population is kept stable by deleteCustomer, so a missing
		// record is unexpected; book nothing rather than orphan inventory.
		b.failed.Add(tx, rng.Uint64(), 1)
		return nil
	}

	// Copy-on-write: the slice read from the tree aliases committed state,
	// so appending in place could scribble on a shared backing array even
	// if this transaction later aborts. Work on a private copy.
	resv := make([]reservation, len(cust.Reservations), len(cust.Reservations)+int(numKinds))
	copy(resv, cust.Reservations)
	cust.Reservations = resv

	any := false
	for k := Kind(0); k < numKinds; k++ {
		if !found[k] {
			continue
		}
		it, ok := b.tables[k].Get(tx, picks[k])
		if !ok || it.Used >= it.Total {
			continue // raced with another booking; skip this category
		}
		it.Used++
		b.tables[k].Put(tx, picks[k], it)
		cust.Reservations = append(cust.Reservations, reservation{Kind: k, ID: picks[k]})
		any = true
	}
	if !any {
		b.failed.Add(tx, rng.Uint64(), 1)
		return nil
	}
	b.customers.Put(tx, custID, cust)
	b.booked.Add(tx, rng.Uint64(), 1)
	return nil
}

// deleteCustomer removes a random customer, releasing their reservations.
func (b *Benchmark) deleteCustomer(tx *stm.Tx, rng *stats.RNG) error {
	custID := rng.Uint64() % uint64(b.cfg.Customers)
	cust, ok := b.customers.Get(tx, custID)
	if !ok {
		return nil // already deleted; a no-op transaction
	}
	for _, res := range cust.Reservations {
		if it, ok := b.tables[res.Kind].Get(tx, res.ID); ok && it.Used > 0 {
			it.Used--
			b.tables[res.Kind].Put(tx, res.ID, it)
		}
	}
	b.customers.Delete(tx, custID)
	// Keep the customer population stable: immediately re-register a fresh
	// customer under the same id (STAMP deletes permanently; a stable
	// population keeps long runs stationary, which the monitor assumes).
	b.customers.Put(tx, custID, customer{})
	b.deleted.Add(tx, rng.Uint64(), 1)
	return nil
}

// updateTables is the manager transaction: reprice a batch of random items
// in every category (in parallel children when granted) and occasionally
// rotate an item out of and into the inventory.
func (b *Benchmark) updateTables(tx *stm.Tx, rng *stats.RNG, nested int) error {
	update := func(k Kind) func(*stm.Tx) error {
		seed := rng.Uint64()
		return func(child *stm.Tx) error {
			srng := stats.NewRNG(seed)
			for q := 0; q < b.cfg.QueriesPerKind/2+1; q++ {
				id := srng.Uint64() % uint64(b.cfg.Items)
				if it, ok := b.tables[k].Get(child, id); ok {
					it.Price = 50 + int(srng.Uint64()%450)
					b.tables[k].Put(child, id, it)
				}
			}
			return nil
		}
	}
	var err error
	if nested >= 2 {
		err = tx.Parallel(update(Car), update(Flight), update(Room))
	} else {
		for k := Kind(0); k < numKinds; k++ {
			if err = update(k)(tx); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	b.updated.Add(tx, rng.Uint64(), 1)
	return nil
}

// Occupancy returns the committed total used/total ratio across all
// inventories (for test validation). s must be the STM the benchmark runs
// on.
func (b *Benchmark) Occupancy(s *stm.STM) (used, total int) {
	_ = s.Atomic(func(tx *stm.Tx) error {
		used, total = 0, 0
		for k := Kind(0); k < numKinds; k++ {
			b.tables[k].Range(tx, func(_ uint64, it item) bool {
				used += it.Used
				total += it.Total
				return true
			})
		}
		return nil
	})
	return used, total
}

// CheckInvariants validates that the inventory usage exactly matches the
// outstanding customer reservations — the benchmark's conservation law
// (every booked unit is held by exactly one customer).
func (b *Benchmark) CheckInvariants(s *stm.STM) error {
	return s.Atomic(func(tx *stm.Tx) error {
		held := map[reservation]int{}
		b.customers.Range(tx, func(_ uint64, c customer) bool {
			for _, r := range c.Reservations {
				held[r]++
			}
			return true
		})
		for k := Kind(0); k < numKinds; k++ {
			var bad error
			b.tables[k].Range(tx, func(id uint64, it item) bool {
				if it.Used < 0 || it.Used > it.Total {
					bad = fmt.Errorf("vacation: item %v/%d used %d of %d", k, id, it.Used, it.Total)
					return false
				}
				if h := held[reservation{Kind: k, ID: id}]; h != it.Used {
					bad = fmt.Errorf("vacation: item %v/%d used %d but %d customer reservations",
						k, id, it.Used, h)
					return false
				}
				return true
			})
			if bad != nil {
				return bad
			}
		}
		return nil
	})
}
