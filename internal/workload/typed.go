package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/pnpool"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/stm"
)

// TypedDriver runs a mix of heterogeneous transaction types, each with its
// own (t_k, c_k) parallelism degree — the execution substrate for the
// paper's §VIII extension (core.MultiTuner). Admission per type is gated
// by a dedicated resizable semaphore (the per-type top-level knob); the
// intra-transaction knob is passed to the workload as its nested-
// parallelism hint, which the benchmark ports honor by sizing their
// Parallel fan-out.
type TypedDriver struct {
	STM *stm.STM
	// Types are the transaction types; Weights their mix probabilities
	// (normalized internally; nil = uniform).
	Types   []Workload
	Weights []float64
	// ThreadsPerType is the worker-goroutine pool per type (>= the largest
	// t_k to be explored).
	ThreadsPerType int

	sems   []*pnpool.Semaphore
	nested []atomic.Int64
	// Commits counts committed transactions per type (measurement source
	// for per-type KPIs).
	commits []atomic.Uint64

	stop atomic.Bool
	wg   sync.WaitGroup
}

// Start launches the workers. Each type starts at (1, 1).
func (d *TypedDriver) Start(seed uint64) {
	k := len(d.Types)
	d.sems = make([]*pnpool.Semaphore, k)
	d.nested = make([]atomic.Int64, k)
	d.commits = make([]atomic.Uint64, k)
	for i := range d.sems {
		d.sems[i] = pnpool.NewSemaphore(1)
		d.nested[i].Store(1)
	}
	master := stats.NewRNG(seed)
	n := d.ThreadsPerType
	if n < 1 {
		n = 1
	}
	d.stop.Store(false)
	for ti := range d.Types {
		for w := 0; w < n; w++ {
			rng := master.Split()
			d.wg.Add(1)
			go func(ti int) {
				defer d.wg.Done()
				for !d.stop.Load() {
					d.sems[ti].Acquire()
					nested := int(d.nested[ti].Load())
					err := d.STM.Atomic(func(tx *stm.Tx) error {
						return d.Types[ti].Transaction(tx, rng, nested)
					})
					d.sems[ti].Release()
					if err == nil {
						d.commits[ti].Add(1)
					}
				}
			}(ti)
		}
	}
}

// Stop signals the workers and waits for them to drain.
func (d *TypedDriver) Stop() {
	d.stop.Store(true)
	d.wg.Wait()
}

// Apply enforces the configuration vector (one (t_k, c_k) per type).
func (d *TypedDriver) Apply(vec []space.Config) {
	for i, cfg := range vec {
		if i >= len(d.sems) {
			break
		}
		t, c := cfg.T, cfg.C
		if t < 1 {
			t = 1
		}
		if c < 1 {
			c = 1
		}
		d.sems[i].Resize(t)
		d.nested[i].Store(int64(c))
	}
}

// MeasureWindow runs one wall-clock measurement window and returns the
// global weighted throughput (total commits per second across types) —
// the KPI the MultiTuner optimizes.
func (d *TypedDriver) MeasureWindow(window time.Duration) float64 {
	before := make([]uint64, len(d.commits))
	for i := range d.commits {
		before[i] = d.commits[i].Load()
	}
	start := time.Now()
	time.Sleep(window)
	elapsed := time.Since(start).Seconds()
	var total uint64
	for i := range d.commits {
		total += d.commits[i].Load() - before[i]
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(total) / elapsed
}

// Commits returns the committed-transaction count for type k.
func (d *TypedDriver) Commits(k int) uint64 { return d.commits[k].Load() }
