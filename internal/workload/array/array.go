// Package array implements the paper's Array micro-benchmark (§VII-A):
// top-level transactions scan a large shared array of integers, using
// nested transactions to parallelize the scan, and write a configurable
// fraction of the elements (none, 0.01%, 50% or 90% in the paper's four
// workload variants). Contention between top-level transactions grows with
// the write fraction; the scan itself parallelizes almost perfectly, so
// the optimal (t, c) moves from (n, 1) at 0% writes toward (1, high-c) at
// 90% writes — the two extremes of Fig. 1.
package array

import (
	"fmt"
	"math"
	"sync/atomic"

	"autopn/internal/stats"
	"autopn/internal/stm"
)

// Benchmark is a live Array benchmark instance.
type Benchmark struct {
	name  string
	cells []*stm.VBox[int]
	// writePct holds the fraction of scanned elements written, in [0,1],
	// as float64 bits; it is atomic so tests and demos can shift the
	// workload mid-run (exercising the CUSUM change detector).
	writePct atomic.Uint64
}

// New creates an Array benchmark over size cells writing writePct of the
// elements per scan (0 <= writePct <= 1).
func New(size int, writePct float64) *Benchmark {
	if size < 1 {
		size = 1
	}
	if writePct < 0 {
		writePct = 0
	}
	if writePct > 1 {
		writePct = 1
	}
	b := &Benchmark{
		name:  fmt.Sprintf("array-%g%%", writePct*100),
		cells: make([]*stm.VBox[int], size),
	}
	b.writePct.Store(math.Float64bits(writePct))
	for i := range b.cells {
		b.cells[i] = stm.NewVBox(i)
	}
	return b
}

// WritePct returns the current write fraction.
func (b *Benchmark) WritePct() float64 {
	return math.Float64frombits(b.writePct.Load())
}

// SetWritePct changes the write fraction for subsequent transactions,
// shifting the workload's contention profile at run time.
func (b *Benchmark) SetWritePct(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	b.writePct.Store(math.Float64bits(p))
}

// Name implements workload.Workload.
func (b *Benchmark) Name() string { return b.name }

// Size returns the array length.
func (b *Benchmark) Size() int { return len(b.cells) }

// Transaction implements workload.Workload: scan the whole array with
// `nested` parallel children, incrementing a writePct fraction of the
// elements.
func (b *Benchmark) Transaction(tx *stm.Tx, rng *stats.RNG, nested int) error {
	n := len(b.cells)
	if nested < 1 {
		nested = 1
	}
	// Each child gets a deterministic sub-seed so the write pattern does
	// not depend on scheduling.
	seed := rng.Uint64()
	if nested == 1 {
		return b.scan(tx, 0, n, seed)
	}
	fns := make([]func(*stm.Tx) error, nested)
	for p := 0; p < nested; p++ {
		lo, hi := p*n/nested, (p+1)*n/nested
		sub := seed + uint64(p)*0x9e3779b97f4a7c15
		fns[p] = func(child *stm.Tx) error { return b.scan(child, lo, hi, sub) }
	}
	return tx.Parallel(fns...)
}

// scan reads cells [lo, hi) and writes a writePct fraction of them.
func (b *Benchmark) scan(tx *stm.Tx, lo, hi int, seed uint64) error {
	rng := stats.NewRNG(seed)
	pct := b.WritePct()
	sum := 0
	for i := lo; i < hi; i++ {
		v := b.cells[i].Get(tx)
		sum += v
		if pct > 0 && rng.Float64() < pct {
			b.cells[i].Put(tx, v+1)
		}
	}
	_ = sum
	return nil
}

// Checksum returns the committed sum of all cells (outside transactions;
// for test validation).
func (b *Benchmark) Checksum() int {
	sum := 0
	for _, c := range b.cells {
		sum += c.Peek()
	}
	return sum
}
