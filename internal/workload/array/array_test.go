package array

import (
	"testing"

	"autopn/internal/stats"
	"autopn/internal/stm"
)

func TestScanReadsEveryCell(t *testing.T) {
	s := stm.New(stm.Options{})
	b := New(50, 0)
	before := b.Checksum()
	if err := s.Atomic(func(tx *stm.Tx) error {
		return b.Transaction(tx, stats.NewRNG(1), 1)
	}); err != nil {
		t.Fatal(err)
	}
	if b.Checksum() != before {
		t.Fatal("read-only scan modified the array")
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	s := stm.New(stm.Options{})
	const size = 2000
	b := New(size, 0.5)
	before := b.Checksum()
	if err := s.Atomic(func(tx *stm.Tx) error {
		return b.Transaction(tx, stats.NewRNG(2), 1)
	}); err != nil {
		t.Fatal(err)
	}
	writes := b.Checksum() - before // each write is +1
	if writes < size*4/10 || writes > size*6/10 {
		t.Fatalf("one 50%% scan wrote %d of %d cells", writes, size)
	}
}

func TestFullWriteScan(t *testing.T) {
	s := stm.New(stm.Options{})
	b := New(100, 1)
	before := b.Checksum()
	if err := s.Atomic(func(tx *stm.Tx) error {
		return b.Transaction(tx, stats.NewRNG(3), 4)
	}); err != nil {
		t.Fatal(err)
	}
	if got := b.Checksum() - before; got != 100 {
		t.Fatalf("writePct=1 scan wrote %d of 100 cells", got)
	}
}

func TestNestedPartitionCoversArrayExactlyOnce(t *testing.T) {
	// With writePct=1, every cell must be incremented exactly once per
	// transaction regardless of the nested fan-out (no chunk overlap, no
	// gaps).
	for _, nested := range []int{1, 2, 3, 7, 16} {
		s := stm.New(stm.Options{})
		b := New(64, 1)
		if err := s.Atomic(func(tx *stm.Tx) error {
			return b.Transaction(tx, stats.NewRNG(4), nested)
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range b.cells {
			if got := c.Peek(); got != i+1 {
				t.Fatalf("nested=%d: cell %d = %d, want %d", nested, i, got, i+1)
			}
		}
	}
}

func TestNameAndClamping(t *testing.T) {
	if got := New(10, 0.9).Name(); got != "array-90%" {
		t.Fatalf("Name = %q", got)
	}
	b := New(0, -1) // degenerate inputs clamp
	if b.Size() != 1 {
		t.Fatalf("Size = %d", b.Size())
	}
	b2 := New(5, 2)
	if b2.WritePct() != 1 {
		t.Fatalf("writePct = %v", b2.WritePct())
	}
}

func TestConcurrentFullWritersSerialize(t *testing.T) {
	// Two concurrent 100%-write scans of the same array must serialize
	// (one aborts and retries): final state equals two full increments.
	s := stm.New(stm.Options{})
	b := New(32, 1)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			done <- s.Atomic(func(tx *stm.Tx) error {
				return b.Transaction(tx, stats.NewRNG(seed), 2)
			})
		}(uint64(i + 10))
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range b.cells {
		if got := c.Peek(); got != i+2 {
			t.Fatalf("cell %d = %d, want %d", i, got, i+2)
		}
	}
}
