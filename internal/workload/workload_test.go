package workload_test

import (
	"testing"
	"time"

	"autopn/internal/pnpool"
	"autopn/internal/space"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/internal/workload/tpcc"
	"autopn/internal/workload/vacation"
)

// runDriver runs w for a short burst on a fresh STM gated at cfg and
// returns the STM for inspection.
func runDriver(t *testing.T, w workload.Workload, cfg space.Config, dur time.Duration) *stm.STM {
	t.Helper()
	pool := pnpool.New(cfg)
	s := stm.New(stm.Options{Throttle: pool})
	d := &workload.Driver{STM: s, Pool: pool, W: w, Threads: 4}
	tput := d.RunFor(42, dur)
	if tput <= 0 {
		t.Fatalf("%s: zero throughput", w.Name())
	}
	if e := d.Errors.Load(); e != 0 {
		t.Fatalf("%s: %d user errors", w.Name(), e)
	}
	return s
}

func TestArrayLiveConservesSemantics(t *testing.T) {
	b := array.New(200, 0.5)
	s := runDriver(t, b, space.Config{T: 2, C: 2}, 100*time.Millisecond)
	// Every committed scan increments ~50% of cells; the checksum must be
	// initial sum plus total increments — we can't know the exact count,
	// but it must have grown and be consistent (each increment is +1, so
	// checksum - initial >= 0).
	initial := 200 * 199 / 2
	if got := b.Checksum(); got < initial {
		t.Fatalf("checksum shrank: %d < %d", got, initial)
	}
	if c := s.Stats.TopCommits(); c == 0 {
		t.Fatal("no commits")
	}
	if n := s.Stats.NestedCommits(); n == 0 {
		t.Fatal("no nested commits despite c=2")
	}
}

func TestArrayReadOnlyNeverAborts(t *testing.T) {
	b := array.New(100, 0)
	s := runDriver(t, b, space.Config{T: 4, C: 1}, 50*time.Millisecond)
	if a := s.Stats.TopAborts(); a != 0 {
		t.Fatalf("read-only workload aborted %d times", a)
	}
}

func TestVacationLiveBookingsConsistent(t *testing.T) {
	pool := pnpool.New(space.Config{T: 3, C: 3})
	s := stm.New(stm.Options{Throttle: pool})
	b := vacation.New("high", s)
	d := &workload.Driver{STM: s, Pool: pool, W: b, Threads: 4}
	d.RunFor(7, 200*time.Millisecond)
	used, total := b.Occupancy(s)
	if used == 0 {
		t.Fatal("no bookings made")
	}
	if used > total {
		t.Fatalf("overbooked: used %d > total %d", used, total)
	}
	if b.Booked() == 0 {
		t.Fatal("booked counter is zero despite occupancy")
	}
	// The conservation law: every used inventory unit is held by exactly
	// one customer reservation.
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestVacationFullMixRuns(t *testing.T) {
	pool := pnpool.New(space.Config{T: 4, C: 2})
	s := stm.New(stm.Options{Throttle: pool})
	b := vacation.New("med", s)
	d := &workload.Driver{STM: s, Pool: pool, W: b, Threads: 6}
	d.RunFor(13, 400*time.Millisecond)
	if b.Booked() == 0 {
		t.Error("no reservations")
	}
	if b.Deleted() == 0 {
		t.Error("no customer deletions (mix should include ~5%)")
	}
	if b.Updated() == 0 {
		t.Error("no table updates (mix should include ~5%)")
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
}

func TestTPCCInvariantsUnderConcurrency(t *testing.T) {
	pool := pnpool.New(space.Config{T: 4, C: 2})
	s := stm.New(stm.Options{Throttle: pool})
	b := tpcc.New("high", s)
	d := &workload.Driver{STM: s, Pool: pool, W: b, Threads: 6}
	d.RunFor(11, 200*time.Millisecond)
	if b.Orders() == 0 {
		t.Fatal("no orders committed")
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
	if n := s.Stats.NestedCommits(); n == 0 {
		t.Fatal("NewOrder produced no nested commits despite c=2")
	}
}

func TestDriverRespectsThrottle(t *testing.T) {
	pool := pnpool.New(space.Config{T: 1, C: 1})
	s := stm.New(stm.Options{Throttle: pool})
	b := array.New(64, 0.9)
	d := &workload.Driver{STM: s, Pool: pool, W: b, Threads: 8}
	d.Start(3)
	time.Sleep(50 * time.Millisecond)
	if held := pool.TopHeld(); held > 1 {
		t.Errorf("throttle violated: %d concurrent top-level transactions", held)
	}
	d.Stop()
	// With t=1 there is no top-level concurrency, so no top-level aborts.
	if a := s.Stats.TopAborts(); a != 0 {
		t.Errorf("sequential run aborted %d times", a)
	}
}

func TestPoolReconfigurationMidRun(t *testing.T) {
	pool := pnpool.New(space.Config{T: 1, C: 1})
	s := stm.New(stm.Options{Throttle: pool})
	b := tpcc.New("low", s)
	d := &workload.Driver{STM: s, Pool: pool, W: b, Threads: 8}
	d.Start(5)
	time.Sleep(30 * time.Millisecond)
	pool.Apply(space.Config{T: 4, C: 3})
	time.Sleep(60 * time.Millisecond)
	cur := pool.Current()
	d.Stop()
	if cur != (space.Config{T: 4, C: 3}) {
		t.Fatalf("Current() = %v after Apply", cur)
	}
	if err := b.CheckInvariants(s); err != nil {
		t.Fatal(err)
	}
	if pool.Applications() != 1 {
		t.Fatalf("Applications = %d, want 1", pool.Applications())
	}
}
