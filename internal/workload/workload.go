// Package workload defines the live-benchmark interface and driver for
// running PN-TM applications on the real STM with the actuator attached.
// Sub-packages port the paper's three benchmarks: the Array
// micro-benchmark, STAMP's Vacation, and TPC-C (§VII-A).
package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/pnpool"
	"autopn/internal/stats"
	"autopn/internal/stm"
)

// Workload is a live benchmark: a population of transactional state plus a
// transaction generator.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// Transaction executes one top-level transaction body. nested is the
	// intra-transaction parallelism the application should aim for (the
	// actuator's current c, exposed through the paper's ad-hoc API); rng
	// is a per-worker deterministic generator.
	Transaction(tx *stm.Tx, rng *stats.RNG, nested int) error
}

// Driver runs a workload on an STM through the actuator: Threads worker
// goroutines repeatedly submit top-level transactions; the pool's
// semaphores enforce the current (t, c).
type Driver struct {
	STM     *stm.STM
	Pool    *pnpool.Pool
	W       Workload
	Threads int // worker goroutines (>= the largest t to be explored)

	// NestedHint, if set and Pool is nil, supplies the intra-transaction
	// parallelism hint per transaction (e.g. the autopn tuner's
	// Current().C when the actuator is owned by the tuner rather than
	// handed to the driver).
	NestedHint func() int

	stop    atomic.Bool
	wg      sync.WaitGroup
	running atomic.Int64 // workers currently alive

	// Errors counts transactions that failed with a user error.
	Errors atomic.Uint64
}

// Start launches the worker goroutines. seed derives the per-worker RNGs.
func (d *Driver) Start(seed uint64) {
	master := stats.NewRNG(seed)
	n := d.Threads
	if n < 1 {
		n = 1
	}
	d.stop.Store(false)
	for i := 0; i < n; i++ {
		rng := master.Split()
		d.wg.Add(1)
		d.running.Add(1)
		go func() {
			defer d.wg.Done()
			defer d.running.Add(-1)
			for !d.stop.Load() {
				nested := 1
				switch {
				case d.Pool != nil:
					nested = d.Pool.Current().C
				case d.NestedHint != nil:
					nested = d.NestedHint()
				}
				err := d.STM.Atomic(func(tx *stm.Tx) error {
					return d.W.Transaction(tx, rng, nested)
				})
				if err != nil {
					d.Errors.Add(1)
				}
			}
		}()
	}
}

// Stop signals the workers and waits for them to drain.
func (d *Driver) Stop() {
	d.stop.Store(true)
	d.wg.Wait()
}

// StopTimeout signals the workers and waits up to timeout for them to
// drain their in-flight transactions. It returns the number of workers
// still running when the deadline expired (0 = clean drain). A
// non-positive timeout waits indefinitely, like Stop. Abandoned workers
// keep their goroutines; callers use the count for an exit report before
// the process terminates anyway.
func (d *Driver) StopTimeout(timeout time.Duration) int {
	d.stop.Store(true)
	if timeout <= 0 {
		d.wg.Wait()
		return 0
	}
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return 0
	case <-time.After(timeout):
		return int(d.running.Load())
	}
}

// RunFor runs the workload for duration d and returns the achieved
// top-level commit throughput (commits per second).
func (d *Driver) RunFor(seed uint64, dur time.Duration) float64 {
	before := d.STM.Stats.TopCommits()
	start := time.Now()
	d.Start(seed)
	time.Sleep(dur)
	d.Stop()
	elapsed := time.Since(start).Seconds()
	commits := d.STM.Stats.TopCommits() - before
	if elapsed <= 0 {
		return 0
	}
	return float64(commits) / elapsed
}
