// Package chaos is a deterministic, seedable fault-injection layer for the
// PN-STM. The STM compiles named hook points into both commit paths
// (stm.Options.FaultInjector); when no injector is configured each hook is
// a single nil-pointer branch, so production runs pay nothing.
//
// An Injector is built from a set of Rules. Each rule names a hook Point
// (begin, read, validate, commit, helping, nested-validate, nested-commit,
// combiner),
// optionally a site label (the VBox label for read hooks, "owner"/"helper"
// for the lock-free helping hooks), a Trigger deciding *which* arrivals
// inject, and an Action: delay the caller, force an abort, or stall until
// resumed. Trigger evaluation — arrival counting and probability draws from
// a splitmix64 stream — happens under one injector-wide mutex, so a given
// seed and rule set replays the exact same fault sequence against a
// deterministic workload; FormatLog renders that sequence byte-for-byte for
// reproducibility assertions. The delays and stalls themselves happen
// outside the mutex so injected faults overlap like real ones.
//
// See docs/ROBUSTNESS.md for the hook catalogue and schedule format.
package chaos

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"autopn/internal/stats"
)

// Point identifies a hook site inside the STM.
type Point uint8

const (
	// PointBegin fires at the start of every top-level attempt, before the
	// snapshot is registered.
	PointBegin Point = iota
	// PointRead fires when a transaction reads a *labeled* VBox (unlabeled
	// boxes never fire, keeping the hot path cheap). The site label is the
	// box label.
	PointRead
	// PointValidate fires at the start of top-level commit validation: for
	// the group-commit path at out-of-lock pre-validation (before the
	// commit lock or request queue is touched), for the lock-free path
	// before the commit request is enqueued. ActAbort here forces a
	// validation failure (attributed as top-validation).
	PointValidate
	// PointCommit fires on the serialized path after validation succeeds
	// and before the write-back, while the commit lock is still held — a
	// delay or stall here is a stuck committer.
	PointCommit
	// PointHelping fires on the lock-free path: with label "owner" after a
	// transaction enqueues its commit request and before it starts
	// helping (a stall here is a preempted committer whose request other
	// threads must finish), and with label "helper" on every entry to the
	// helping loop.
	PointHelping
	// PointNestedValidate fires when a nested child starts validating
	// against its parent, under the parent's merge lock. ActAbort forces a
	// nested-vs-sibling validation failure.
	PointNestedValidate
	// PointNestedCommit fires after nested validation succeeds, before the
	// tree-clock bump and merge — delays here, under the parent lock,
	// create nested-clock contention storms.
	PointNestedCommit
	// PointCombiner fires on the group-commit path when a committer wins
	// the commit lock and becomes the flat-combining combiner, before it
	// drains the request queue — a stall here is a stuck combiner holding
	// the commit lock while every queued committer stays parked.
	PointCombiner
	// PointReclaim fires inside the commit section when the version-record
	// pool is about to drain limbo segments whose grace period has expired
	// (bodypool.go). ActAbort skips the drain for that commit —
	// deterministically delaying reclamation and widening the window in
	// which retired nodes stay unreused — while a delay or stall holds the
	// commit lock mid-reclaim.
	PointReclaim
	// PointWALAppend fires in the serving layer's per-shard WAL writer
	// before a batch record is appended (internal/wal). ActAbort injects an
	// append failure (the shard's sticky WAL-error path: breaker trip,
	// autopn_server_wal_errors_total), ActTorn writes a deliberately
	// truncated record — the torn tail a crash mid-write leaves behind —
	// and then fails the log, and a delay or stall holds every writer
	// waiting on that batch's fsync.
	PointWALAppend
	// PointSnapshot fires before a shard snapshot is written. ActAbort
	// skips the snapshot (the WAL keeps growing past its retention
	// target), ActTorn abandons a half-written temporary file (recovery
	// must ignore it and fall back to the previous snapshot), and a stall
	// models a wedged snapshotter racing concurrent appends.
	PointSnapshot

	numPoints
)

var pointNames = [numPoints]string{
	"begin", "read", "validate", "commit", "helping",
	"nested-validate", "nested-commit", "combiner", "reclaim",
	"wal-append", "snapshot",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Action is what an injected fault does to the hooked code path.
type Action uint8

const (
	// ActNone means the rule matched but injects nothing (useful to count
	// arrivals at a site via Injected).
	ActNone Action = iota
	// ActDelay sleeps the caller for the rule's Delay.
	ActDelay
	// ActAbort forces the hooked operation to fail: a conflict-style abort
	// at read/validate hooks (the transaction retries normally).
	ActAbort
	// ActStall blocks the caller until Resume or Close releases it,
	// modeling a preempted thread.
	ActStall
	// ActTorn makes the hooked durability write a partial one: the WAL
	// appender (PointWALAppend) writes a truncated record, the snapshotter
	// (PointSnapshot) abandons its temporary file mid-write. Only the
	// durability hooks interpret it; the STM hooks treat it as ActNone.
	ActTorn
)

var actionNames = [...]string{"none", "delay", "abort", "stall", "torn"}

func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Trigger decides which arrivals at a rule's site inject the fault. The
// zero Trigger fires on every arrival. Conditions combine conjunctively:
// skip the first After arrivals, then fire on every EveryN-th (1 ≡ every)
// arrival that also passes the Probability draw, at most Times times
// (0 ≡ unlimited).
type Trigger struct {
	After       uint64  // skip this many arrivals first
	Times       uint64  // maximum injections (0 = unlimited)
	EveryN      uint64  // fire on every N-th eligible arrival (0/1 = every)
	Probability float64 // fire with this probability (<=0 or >=1 = always)
}

// Nth is the schedule "inject on exactly the n-th arrival" (1-based).
func Nth(n uint64) Trigger {
	if n == 0 {
		n = 1
	}
	return Trigger{After: n - 1, Times: 1}
}

// Prob is the schedule "inject on each arrival with probability p", drawn
// from the injector's seeded stream.
func Prob(p float64) Trigger { return Trigger{Probability: p} }

// Rule binds a trigger and an action to a hook site.
type Rule struct {
	Name  string // unique handle for Resume/StallDepth/Injected and the event log
	Point Point
	Label string // "" matches any site label; otherwise exact match
	Trigger
	Action Action
	Delay  time.Duration // for ActDelay
}

// Event is one injected fault, in injection order.
type Event struct {
	Seq     uint64 // 1-based global injection sequence
	Rule    string
	Point   Point
	Label   string // the site label the hook fired with
	Action  Action
	Arrival uint64 // 1-based arrival count at the rule's site
}

// Options configures an Injector.
type Options struct {
	// Seed seeds the probability stream. The same seed, rules and workload
	// interleaving replay the same fault sequence.
	Seed uint64
	// Rules is the fault schedule. Rule names must be unique.
	Rules []Rule
	// MaxEvents caps the in-memory event log (default 4096); injections
	// past the cap still happen but are only counted, not logged.
	MaxEvents int
}

type compiledRule struct {
	Rule
	arrivals   uint64
	injected   uint64
	stallDepth int
	resume     chan struct{} // tokens releasing current-or-future stalls
}

// Injector evaluates a fault schedule at the STM's hook points. All methods
// are safe for concurrent use. Fire is the hot entry point called by the
// STM; everything else is test/operator surface.
type Injector struct {
	mu      sync.Mutex
	rng     *stats.RNG
	rules   []*compiledRule
	byPoint [numPoints][]*compiledRule
	byName  map[string]*compiledRule
	events  []Event
	seq     uint64
	dropped uint64
	maxEv   int
	closed  bool
	done    chan struct{} // closed by Close; releases every stall
}

// New builds an injector from a schedule. It panics on duplicate or empty
// rule names — schedules are static test fixtures, and a bad one should
// fail loudly.
func New(opts Options) *Injector {
	maxEv := opts.MaxEvents
	if maxEv <= 0 {
		maxEv = 4096
	}
	inj := &Injector{
		rng:    stats.NewRNG(opts.Seed),
		byName: make(map[string]*compiledRule, len(opts.Rules)),
		maxEv:  maxEv,
		done:   make(chan struct{}),
	}
	for _, r := range opts.Rules {
		if r.Name == "" {
			panic("chaos: rule with empty name")
		}
		if _, dup := inj.byName[r.Name]; dup {
			panic("chaos: duplicate rule name " + r.Name)
		}
		if int(r.Point) >= int(numPoints) {
			panic("chaos: rule " + r.Name + " has an unknown point")
		}
		cr := &compiledRule{Rule: r, resume: make(chan struct{}, 1024)}
		inj.rules = append(inj.rules, cr)
		inj.byName[r.Name] = cr
		inj.byPoint[r.Point] = append(inj.byPoint[r.Point], cr)
	}
	return inj
}

// Fire evaluates the schedule at hook point p with site label label and
// performs the first matching rule's action. It returns that action so the
// caller can react (ActAbort makes the STM fail the hooked operation);
// ActNone/no match mean "proceed". Delays and stalls happen after the
// schedule decision is recorded, outside the injector lock.
func (inj *Injector) Fire(p Point, label string) Action {
	if inj == nil {
		return ActNone
	}
	inj.mu.Lock()
	if inj.closed {
		inj.mu.Unlock()
		return ActNone
	}
	var hit *compiledRule
	for _, cr := range inj.byPoint[p] {
		if cr.Label != "" && cr.Label != label {
			continue
		}
		cr.arrivals++
		if hit == nil && inj.decideLocked(cr) {
			hit = cr
			cr.injected++
			if cr.Action == ActStall {
				cr.stallDepth++
			}
			inj.seq++
			if len(inj.events) < inj.maxEv {
				inj.events = append(inj.events, Event{
					Seq: inj.seq, Rule: cr.Name, Point: p, Label: label,
					Action: cr.Action, Arrival: cr.arrivals,
				})
			} else {
				inj.dropped++
			}
		}
	}
	if hit == nil {
		inj.mu.Unlock()
		return ActNone
	}
	act, delay, resume := hit.Action, hit.Delay, hit.resume
	inj.mu.Unlock()

	switch act {
	case ActDelay:
		time.Sleep(delay)
	case ActStall:
		select {
		case <-resume:
		case <-inj.done:
		}
		inj.mu.Lock()
		hit.stallDepth--
		inj.mu.Unlock()
	}
	return act
}

// decideLocked evaluates cr's trigger against its (already incremented)
// arrival counter. Called with inj.mu held.
func (inj *Injector) decideLocked(cr *compiledRule) bool {
	t := cr.Trigger
	if cr.arrivals <= t.After {
		return false
	}
	if t.Times > 0 && cr.injected >= t.Times {
		return false
	}
	if t.EveryN > 1 && (cr.arrivals-t.After-1)%t.EveryN != 0 {
		return false
	}
	if t.Probability > 0 && t.Probability < 1 && inj.rng.Float64() >= t.Probability {
		return false
	}
	return true
}

// Resume releases one current-or-future stall of the named rule. It is a
// no-op for unknown rules.
func (inj *Injector) Resume(name string) {
	inj.mu.Lock()
	cr := inj.byName[name]
	inj.mu.Unlock()
	if cr == nil {
		return
	}
	select {
	case cr.resume <- struct{}{}:
	default: // token buffer full; 1024 outstanding resumes is a test bug
	}
}

// StallDepth reports how many callers are currently blocked in the named
// rule's stall.
func (inj *Injector) StallDepth(name string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if cr := inj.byName[name]; cr != nil {
		return cr.stallDepth
	}
	return 0
}

// Injected reports how many times the named rule has injected its fault.
func (inj *Injector) Injected(name string) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if cr := inj.byName[name]; cr != nil {
		return cr.injected
	}
	return 0
}

// Arrivals reports how many times execution reached the named rule's site
// (matching its label filter), whether or not it injected.
func (inj *Injector) Arrivals(name string) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if cr := inj.byName[name]; cr != nil {
		return cr.arrivals
	}
	return 0
}

// Close disables all future injection and releases every blocked stall.
// Safe to call multiple times and mandatory at the end of any test that
// uses ActStall, so no goroutine is left blocked.
func (inj *Injector) Close() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if !inj.closed {
		inj.closed = true
		close(inj.done)
	}
}

// Events returns a copy of the injected-fault log, in injection order.
func (inj *Injector) Events() []Event {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]Event, len(inj.events))
	copy(out, inj.events)
	return out
}

// Dropped reports how many injections were not logged because the event
// log hit MaxEvents.
func (inj *Injector) Dropped() uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.dropped
}

// FormatLog renders the event log one line per injection:
//
//	#3 stall-owner helping/owner stall arrival=2
//
// Two runs of the same seeded schedule against the same deterministic
// workload produce byte-identical output — the reproducibility artifact
// chaos tests assert on.
func (inj *Injector) FormatLog() string {
	events := inj.Events()
	var b strings.Builder
	for _, e := range events {
		site := e.Point.String()
		if e.Label != "" {
			site += "/" + e.Label
		}
		fmt.Fprintf(&b, "#%d %s %s %s arrival=%d\n", e.Seq, e.Rule, site, e.Action, e.Arrival)
	}
	return b.String()
}

// StormRules is a preset schedule for nested-clock contention storms: every
// k-th nested validation is delayed by d under the parent's merge lock,
// serializing sibling commits behind it.
func StormRules(d time.Duration, k uint64) []Rule {
	return []Rule{{
		Name:    "nested-storm",
		Point:   PointNestedCommit,
		Trigger: Trigger{EveryN: k},
		Action:  ActDelay,
		Delay:   d,
	}}
}
