package chaos

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaosTriggerNth asserts 1-based Nth scheduling: only the n-th arrival
// injects.
func TestChaosTriggerNth(t *testing.T) {
	inj := New(Options{Rules: []Rule{
		{Name: "third", Point: PointBegin, Trigger: Nth(3), Action: ActAbort},
	}})
	defer inj.Close()
	var got []Action
	for i := 0; i < 5; i++ {
		got = append(got, inj.Fire(PointBegin, ""))
	}
	want := []Action{ActNone, ActNone, ActAbort, ActNone, ActNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival %d: got %v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if n := inj.Injected("third"); n != 1 {
		t.Errorf("Injected = %d, want 1", n)
	}
	if n := inj.Arrivals("third"); n != 5 {
		t.Errorf("Arrivals = %d, want 5", n)
	}
}

// TestChaosTriggerEveryNAfterTimes combines After/EveryN/Times: skip 2,
// then every 2nd, at most 2 injections → arrivals 3, 5 inject.
func TestChaosTriggerEveryNAfterTimes(t *testing.T) {
	inj := New(Options{Rules: []Rule{
		{
			Name: "combo", Point: PointValidate,
			Trigger: Trigger{After: 2, EveryN: 2, Times: 2},
			Action:  ActAbort,
		},
	}})
	defer inj.Close()
	var injected []int
	for i := 1; i <= 10; i++ {
		if inj.Fire(PointValidate, "") == ActAbort {
			injected = append(injected, i)
		}
	}
	if len(injected) != 2 || injected[0] != 3 || injected[1] != 5 {
		t.Fatalf("injected on arrivals %v, want [3 5]", injected)
	}
}

// TestChaosLabelFilter: a labeled rule only matches its own site label; an
// unlabeled rule matches any.
func TestChaosLabelFilter(t *testing.T) {
	inj := New(Options{Rules: []Rule{
		{Name: "only-x", Point: PointRead, Label: "x", Action: ActAbort},
	}})
	defer inj.Close()
	if a := inj.Fire(PointRead, "y"); a != ActNone {
		t.Errorf("label y matched rule for x: %v", a)
	}
	if a := inj.Fire(PointRead, "x"); a != ActAbort {
		t.Errorf("label x did not match: %v", a)
	}
	if n := inj.Arrivals("only-x"); n != 1 {
		t.Errorf("Arrivals counted non-matching label: %d", n)
	}
}

// TestChaosStallResumeClose: a stalled caller blocks until Resume, depth is
// observable, and Close releases any remaining stalls.
func TestChaosStallResumeClose(t *testing.T) {
	inj := New(Options{Rules: []Rule{
		{Name: "stall", Point: PointHelping, Label: "owner", Action: ActStall},
	}})
	release := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inj.Fire(PointHelping, "owner")
			release <- struct{}{}
		}()
	}
	waitDepth := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for inj.StallDepth("stall") != want {
			if time.Now().After(deadline) {
				t.Fatalf("StallDepth never reached %d (now %d)", want, inj.StallDepth("stall"))
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitDepth(2)
	select {
	case <-release:
		t.Fatal("a stalled caller ran before Resume")
	case <-time.After(20 * time.Millisecond):
	}
	inj.Resume("stall")
	<-release
	waitDepth(1)
	inj.Close() // releases the second stall
	<-release
	wg.Wait()
	if a := inj.Fire(PointHelping, "owner"); a != ActNone {
		t.Errorf("closed injector still injects: %v", a)
	}
}

// TestChaosProbabilisticDeterminism: two injectors with the same seed make
// identical probability decisions; a different seed diverges (with
// overwhelming probability over 512 draws).
func TestChaosProbabilisticDeterminism(t *testing.T) {
	run := func(seed uint64) string {
		inj := New(Options{Seed: seed, Rules: []Rule{
			{Name: "p", Point: PointBegin, Trigger: Prob(0.3), Action: ActAbort},
		}})
		defer inj.Close()
		var b strings.Builder
		for i := 0; i < 512; i++ {
			if inj.Fire(PointBegin, "") == ActAbort {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b, c := run(42), run(42), run(43)
	if a != b {
		t.Error("same seed produced different injection sequences")
	}
	if a == c {
		t.Error("different seeds produced identical injection sequences")
	}
	ones := strings.Count(a, "1")
	if ones < 512*15/100 || ones > 512*45/100 {
		t.Errorf("p=0.3 injected %d/512 times — implausible", ones)
	}
}

// TestChaosFormatLogReproducible: the rendered event log of two identically
// seeded schedules driven identically is byte-identical and non-empty.
func TestChaosFormatLogReproducible(t *testing.T) {
	drive := func() string {
		inj := New(Options{Seed: 7, Rules: []Rule{
			{Name: "p-abort", Point: PointValidate, Trigger: Prob(0.5), Action: ActAbort},
			{Name: "nth-read", Point: PointRead, Label: "hot", Trigger: Nth(2), Action: ActAbort},
		}})
		defer inj.Close()
		for i := 0; i < 64; i++ {
			inj.Fire(PointValidate, "")
			inj.Fire(PointRead, "hot")
			inj.Fire(PointRead, "cold")
		}
		return inj.FormatLog()
	}
	a, b := drive(), drive()
	if a == "" {
		t.Fatal("empty event log")
	}
	if a != b {
		t.Fatalf("seeded schedule not byte-identical:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "nth-read read/hot abort arrival=2") {
		t.Errorf("log misses the labeled Nth injection:\n%s", a)
	}
}

// TestChaosEventLogCap: injections past MaxEvents are counted, not logged.
func TestChaosEventLogCap(t *testing.T) {
	inj := New(Options{MaxEvents: 3, Rules: []Rule{
		{Name: "always", Point: PointBegin, Action: ActAbort},
	}})
	defer inj.Close()
	for i := 0; i < 10; i++ {
		inj.Fire(PointBegin, "")
	}
	if n := len(inj.Events()); n != 3 {
		t.Errorf("logged %d events, want 3", n)
	}
	if d := inj.Dropped(); d != 7 {
		t.Errorf("Dropped = %d, want 7", d)
	}
	if n := inj.Injected("always"); n != 10 {
		t.Errorf("Injected = %d, want 10", n)
	}
}

// TestChaosNilInjector: a nil *Injector is a safe no-op (the STM calls
// through a possibly-nil field).
func TestChaosNilInjector(t *testing.T) {
	var inj *Injector
	if a := inj.Fire(PointBegin, ""); a != ActNone {
		t.Errorf("nil injector returned %v", a)
	}
}

// TestChaosDelay: ActDelay sleeps roughly the configured duration.
func TestChaosDelay(t *testing.T) {
	inj := New(Options{Rules: []Rule{
		{Name: "d", Point: PointCommit, Action: ActDelay, Delay: 30 * time.Millisecond},
	}})
	defer inj.Close()
	start := time.Now()
	if a := inj.Fire(PointCommit, ""); a != ActDelay {
		t.Fatalf("got %v", a)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("delay of 30ms returned after %v", el)
	}
}
