package core

import (
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// noisyDrive runs AutoPN against a workload with strong multiplicative
// measurement noise, feeding the known noise CV through ObserveMeasured.
func noisyDrive(t *testing.T, noiseAware bool, seed uint64, noise float64) (dfo float64, expl int) {
	t.Helper()
	w := surface.TPCC("med")
	w.NoiseSigma = noise
	sp := space.New(w.Cores)
	_, opt := w.Optimum(sp)
	rng := stats.NewRNG(seed)
	a := New(sp, rng, Options{NoiseAware: noiseAware})
	for steps := 0; steps < 400; steps++ {
		cfg, done := a.Next()
		if done {
			break
		}
		a.ObserveMeasured(cfg, w.Measure(cfg, rng), noise)
	}
	best, _ := a.Best()
	return 1 - w.Throughput(best)/opt, a.Explored()
}

func TestNoiseAwareImprovesUnderHeavyNoise(t *testing.T) {
	const noise = 0.15 // 15% measurement noise: individual samples mislead
	var base, aware float64
	var baseExpl, awareExpl float64
	const seeds = 12
	for seed := uint64(1); seed <= seeds; seed++ {
		d0, e0 := noisyDrive(t, false, seed*101, noise)
		d1, e1 := noisyDrive(t, true, seed*101, noise)
		base += d0
		aware += d1
		baseExpl += float64(e0)
		awareExpl += float64(e1)
	}
	base /= seeds
	aware /= seeds
	t.Logf("mean DFO under 15%% noise: baseline %.1f%% (expl %.1f), noise-aware %.1f%% (expl %.1f)",
		base*100, baseExpl/seeds, aware*100, awareExpl/seeds)
	// The noise floor keeps EI alive, so the noise-aware variant must
	// explore at least as much and must not be worse than the baseline by
	// more than noise jitter.
	if awareExpl < baseExpl {
		t.Errorf("noise-aware explored less (%.1f) than baseline (%.1f)", awareExpl/seeds, baseExpl/seeds)
	}
	if aware > base+0.02 {
		t.Errorf("noise-aware DFO %.1f%% worse than baseline %.1f%%", aware*100, base*100)
	}
}

func TestNoiseAwareHarmlessWithoutNoiseInfo(t *testing.T) {
	// Without CVs (plain Observe), the noise-aware option degenerates to
	// the baseline.
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	_, opt := w.Optimum(sp)
	rng := stats.NewRNG(5)
	a := New(sp, rng, Options{NoiseAware: true})
	for steps := 0; steps < 400; steps++ {
		cfg, done := a.Next()
		if done {
			break
		}
		a.Observe(cfg, w.Throughput(cfg))
	}
	best, _ := a.Best()
	if dfo := 1 - w.Throughput(best)/opt; dfo > 0.05 {
		t.Fatalf("noise-aware without CVs converged %.1f%% from optimum", dfo*100)
	}
}
