package core

import (
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// TestDebugPerWorkloadRun traces AutoPN on every workload across several
// seeds; run with -v.
func TestDebugPerWorkloadRun(t *testing.T) {
	for _, w := range surface.AllWorkloads() {
		sp := space.New(w.Cores)
		opt, _ := w.Optimum(sp)
		var dfoSum, explSum float64
		worst := 0.0
		var worstCfg space.Config
		const seeds = 8
		for seed := uint64(1); seed <= seeds; seed++ {
			rng := stats.NewRNG(seed * 977)
			a := New(sp, rng, Options{})
			steps := 0
			for steps < 400 {
				cfg, done := a.Next()
				if done {
					break
				}
				kpi := w.Measure(cfg, rng)
				a.Observe(cfg, kpi)
				steps++
			}
			best, _ := a.Best()
			dfo := 1 - w.Throughput(best)/w.Throughput(opt)
			dfoSum += dfo
			explSum += float64(a.Explored())
			if dfo > worst {
				worst, worstCfg = dfo, best
			}
		}
		t.Logf("%-14s opt=%-8v meanDFO=%6.2f%% worstDFO=%6.2f%% (at %v) meanExpl=%.1f",
			w.Name, opt, dfoSum/seeds*100, worst*100, worstCfg, explSum/seeds)
	}
}
