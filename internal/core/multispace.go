package core

import (
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
)

// MultiTuner implements the paper's §VIII extension to workloads with
// heterogeneous transaction types: each of K top-level transaction types k
// gets its own (t_k, c_k) pair. Exploring the product space directly is
// exponential in K, so — following the paper's suggestion that AutoPN's
// black-box nature makes the extension straightforward — the MultiTuner
// runs coordinate descent over per-type AutoPN instances: it optimizes one
// type's pair at a time (holding the others fixed at their incumbents),
// sweeps the types round-robin, and stops when a full sweep improves the
// global KPI by less than RelDelta.
//
// The driver protocol mirrors search.Optimizer, generalized to vectors:
// Next returns the full configuration vector to apply (only one component
// differs between consecutive calls within a sweep); Observe feeds the
// measured global KPI.
type MultiTuner struct {
	spaces []*space.Space
	rng    *stats.RNG
	opts   Options

	// RelDelta is the sweep-improvement stopping threshold (default 0.02).
	RelDelta float64
	// MaxSweeps caps the number of coordinate sweeps (default 5).
	MaxSweeps int

	current []space.Config // incumbent vector
	active  int            // type currently being optimized
	inner   search.Optimizer
	sweep   int
	done    bool

	bestKPI     float64
	sweepStart  float64
	everObs     bool
	sweepMoved  bool
	innerDone   bool
	pendingNext *[]space.Config
}

// NewMultiTuner creates a tuner for k transaction types over an n-core
// machine. Each type's pair is constrained to its own space; the caller's
// actuator is responsible for mapping the vector onto thread pools (e.g.
// proportionally sharing cores).
func NewMultiTuner(n, k int, rng *stats.RNG, opts Options) *MultiTuner {
	if k < 1 {
		k = 1
	}
	m := &MultiTuner{
		rng:       rng,
		opts:      opts,
		RelDelta:  0.02,
		MaxSweeps: 5,
	}
	m.spaces = make([]*space.Space, k)
	m.current = make([]space.Config, k)
	for i := 0; i < k; i++ {
		m.spaces[i] = space.New(n)
		m.current[i] = space.Config{T: 1, C: 1}
	}
	m.startInner()
	return m
}

// Types returns the number of transaction types.
func (m *MultiTuner) Types() int { return len(m.spaces) }

// Best returns the incumbent configuration vector and its KPI.
func (m *MultiTuner) Best() ([]space.Config, float64) {
	out := make([]space.Config, len(m.current))
	copy(out, m.current)
	return out, m.bestKPI
}

func (m *MultiTuner) startInner() {
	o := m.opts
	o.Stop = nil // fresh stop condition state per inner run
	m.inner = New(m.spaces[m.active], m.rng.Split(), o)
	m.innerDone = false
}

// Next returns the next full configuration vector to measure, or done.
func (m *MultiTuner) Next() ([]space.Config, bool) {
	for {
		if m.done {
			return nil, true
		}
		cfg, innerDone := m.inner.Next()
		if !innerDone {
			vec := make([]space.Config, len(m.current))
			copy(vec, m.current)
			vec[m.active] = cfg
			return vec, false
		}
		// Inner optimizer converged: adopt its best for this type.
		best, kpi := m.inner.Best()
		if kpi > m.bestKPI || !m.everObs {
			m.bestKPI = kpi
			m.everObs = true
		}
		if best != m.current[m.active] {
			m.sweepMoved = true
		}
		m.current[m.active] = best
		m.active++
		if m.active >= len(m.spaces) {
			// Sweep complete: stop if it brought too little.
			m.sweep++
			improved := m.sweepStart <= 0 ||
				m.bestKPI > m.sweepStart*(1+m.RelDelta)
			if m.sweep >= m.MaxSweeps || (!improved && !m.sweepMoved) || (!improved && m.sweep > 1) {
				m.done = true
				return nil, true
			}
			m.active = 0
			m.sweepStart = m.bestKPI
			m.sweepMoved = false
		}
		m.startInner()
	}
}

// Observe feeds the measured global KPI for the vector last returned by
// Next.
func (m *MultiTuner) Observe(vec []space.Config, kpi float64) {
	if kpi > m.bestKPI || !m.everObs {
		m.bestKPI = kpi
		m.everObs = true
	}
	m.inner.Observe(vec[m.active], kpi)
}
