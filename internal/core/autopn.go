// Package core implements AutoPN's optimizer (§V of the paper): an online
// self-tuner for the parallelism degree (t, c) of a parallel-nesting TM
// that chains three phases:
//
//  1. a biased initial sampling of boundary configurations around the
//     pivots (1,1), (n,1), (1,n), which probes the workload's sensitivity
//     to inter- vs intra-transaction parallelism with few measurements;
//  2. a Sequential Model-Based Optimization (SMBO) loop over a bagged
//     ensemble of M5 model trees, picking each next configuration by
//     Expected Improvement until the EI falls below a threshold;
//  3. a hill-climbing refinement around the model's winner, which corrects
//     the model's "long-sightedness" (strong at locating the right region,
//     weak at resolving fine differences within it).
//
// The optimizer speaks the ask/tell protocol of package search, so the same
// implementation is driven by live systems, the discrete-event simulator,
// and the offline trace replays of the experiment harness.
package core

import (
	"fmt"
	"math"

	"autopn/internal/ensemble"
	"autopn/internal/m5"
	"autopn/internal/obs"
	"autopn/internal/search"
	"autopn/internal/smbo"
	"autopn/internal/space"
	"autopn/internal/stats"
)

// Acquisition selects how the SMBO phase scores candidate configurations.
type Acquisition int

const (
	// AcqEI is Expected Improvement (the paper's choice).
	AcqEI Acquisition = iota
	// AcqMean greedily picks the highest predicted mean (ablation).
	AcqMean
)

// Options configure an AutoPN optimizer. The zero value is completed by
// defaults matching the paper.
type Options struct {
	// InitialSamples is the number of initial configurations (3, 5, 7 or
	// 9; default 9, the full boundary set).
	InitialSamples int
	// UniformInitial replaces the biased boundary sampling with uniform
	// random sampling of the same size (the Fig. 6 baseline).
	UniformInitial bool
	// EnsembleSize is the number of bagged M5 learners (default 10).
	EnsembleSize int
	// Stop is the SMBO stopping criterion (default NewEIStop(0.10)).
	Stop StopCondition
	// Acquisition selects the acquisition function (default AcqEI).
	Acquisition Acquisition
	// DisableHillClimb skips the final refinement phase (the
	// "AutoPN-noHC" variant of Fig. 5).
	DisableHillClimb bool
	// MaxExplorations caps the total number of distinct measurements
	// (0 = no cap beyond the size of the space).
	MaxExplorations int
	// Trainer overrides the base learner (default: M5 with default
	// options). Used by the leaf-model ablation.
	Trainer ensemble.Trainer
	// NoiseAware enables the paper's §VIII extension: the measurement
	// noisiness (coefficient of variation, fed via ObserveMeasured) widens
	// the surrogate's predictive uncertainty, keeping exploration alive
	// when measurements cannot yet distinguish candidates.
	NoiseAware bool
	// Recorder receives the optimizer's structured decision trail: phase
	// transitions, every SMBO suggestion with its (relative) Expected
	// Improvement, every hill-climbing probe, and the converged
	// configuration. Defaults to obs.Nop{}, so library users and the
	// simulation/experiment harnesses pay nothing.
	Recorder obs.Recorder
	// Quarantine, if non-nil, removes configurations banned by the tuner's
	// self-protection layer from the candidate set of every phase: banned
	// initial samples are skipped, the acquisition functions never suggest
	// them, and hill-climbing treats them as unimprovable. The set is
	// consulted live, so a configuration banned mid-session stops being a
	// candidate from the next Next() on.
	Quarantine *space.Quarantine
}

type phase int

const (
	phaseInitial phase = iota
	phaseSMBO
	phaseHillClimb
	phaseDone
)

// AutoPN is the paper's optimizer. It implements search.Optimizer.
type AutoPN struct {
	sp   *space.Space
	rng  *stats.RNG
	opts Options

	phase    phase
	initial  []space.Config
	initPos  int
	history  []smbo.Observation
	explored map[space.Config]bool
	bestCfg  space.Config
	bestKPI  float64

	pending    *space.Config // SMBO suggestion awaiting measurement
	hc         *search.HillClimb
	smboCount  int // observations consumed by the SMBO phase
	everNotify bool
	pendingCV  float64 // measurement CV for the next Observe (NoiseAware)

	hcProbed  space.Config // last hill-climb probe recorded (dedup)
	hcProbeOK bool
}

var _ search.Optimizer = (*AutoPN)(nil)

// New returns an AutoPN optimizer over sp. rng drives every stochastic
// choice (bootstrap resampling, uniform initial sampling) so runs are
// reproducible per seed.
func New(sp *space.Space, rng *stats.RNG, opts Options) *AutoPN {
	if opts.InitialSamples <= 0 {
		opts.InitialSamples = 9
	}
	if opts.EnsembleSize <= 0 {
		opts.EnsembleSize = smbo.DefaultEnsembleSize
	}
	if opts.Stop == nil {
		opts.Stop = NewEIStop(0.10)
	}
	if opts.Trainer == nil {
		opts.Trainer = ensemble.M5Trainer(m5.DefaultOptions())
	}
	if opts.Recorder == nil {
		opts.Recorder = obs.Nop{}
	}
	a := &AutoPN{sp: sp, rng: rng, opts: opts, explored: make(map[space.Config]bool)}
	a.initial = a.chooseInitial()
	a.opts.Recorder.Record(obs.Decision{
		Kind: obs.KindPhase, Phase: a.Phase(),
		Note: fmt.Sprintf("session start: %d initial samples over %d configs", len(a.initial), sp.Size()),
	})
	return a
}

func (a *AutoPN) chooseInitial() []space.Config {
	if !a.opts.UniformInitial {
		return a.sp.BiasedSample(a.opts.InitialSamples)
	}
	// Uniform random sampling without replacement.
	k := a.opts.InitialSamples
	if k > a.sp.Size() {
		k = a.sp.Size()
	}
	perm := a.rng.Perm(a.sp.Size())
	out := make([]space.Config, k)
	for i := 0; i < k; i++ {
		out[i] = a.sp.At(perm[i])
	}
	return out
}

// Name implements search.Optimizer.
func (a *AutoPN) Name() string {
	if a.opts.DisableHillClimb {
		return "autopn-noHC"
	}
	return "autopn"
}

// Best implements search.Optimizer.
func (a *AutoPN) Best() (space.Config, float64) { return a.bestCfg, a.bestKPI }

// Explored returns the number of distinct configurations measured so far.
func (a *AutoPN) Explored() int { return len(a.history) }

// Phase returns a human-readable name of the current phase.
func (a *AutoPN) Phase() string {
	switch a.phase {
	case phaseInitial:
		return "initial-sampling"
	case phaseSMBO:
		return "smbo"
	case phaseHillClimb:
		return "hill-climbing"
	default:
		return "done"
	}
}

// Next implements search.Optimizer.
func (a *AutoPN) Next() (space.Config, bool) {
	if a.capped() {
		a.finish("exploration cap reached")
	}
	switch a.phase {
	case phaseInitial:
		for a.initPos < len(a.initial) {
			cfg := a.initial[a.initPos]
			if !a.explored[cfg] && !a.banned(cfg) {
				return cfg, false
			}
			a.initPos++
		}
		// All initial samples observed: enter SMBO (the suggestion is
		// prepared by Observe; reaching here without one means Observe has
		// already transitioned us).
		a.enterSMBO()
		return a.Next()
	case phaseSMBO:
		if a.pending != nil && a.banned(*a.pending) {
			// The suggestion was quarantined between suggest() and now:
			// drop it and ask the model again.
			a.pending = nil
			a.suggest()
			return a.Next()
		}
		if a.pending != nil {
			return *a.pending, false
		}
		// No pending suggestion (e.g. space exhausted): refine.
		a.enterHillClimb("no SMBO suggestion available")
		return a.Next()
	case phaseHillClimb:
		for {
			cfg, done := a.hc.Next()
			if done {
				a.finish("hill-climb reached a local maximum")
				return space.Config{}, true
			}
			if a.banned(cfg) {
				// Teach the climber the probe is a dead end without
				// measuring it.
				a.hc.Observe(cfg, math.Inf(-1))
				continue
			}
			if !a.hcProbeOK || cfg != a.hcProbed {
				a.hcProbed, a.hcProbeOK = cfg, true
				a.opts.Recorder.Record(obs.Decision{
					Kind: obs.KindSuggestion, Phase: a.Phase(), T: cfg.T, C: cfg.C,
				})
			}
			return cfg, false
		}
	default:
		return space.Config{}, true
	}
}

// banned reports whether the self-protection layer has quarantined cfg.
func (a *AutoPN) banned(cfg space.Config) bool {
	return a.opts.Quarantine != nil && a.opts.Quarantine.Banned(cfg)
}

// ObserveMeasured feeds a measurement together with its coefficient of
// variation; with Options.NoiseAware the CV informs the surrogate's
// uncertainty. Drivers that have a CV available should prefer this over
// Observe.
func (a *AutoPN) ObserveMeasured(cfg space.Config, kpi, measCV float64) {
	a.pendingCV = measCV
	a.Observe(cfg, kpi)
}

// Observe implements search.Optimizer.
func (a *AutoPN) Observe(cfg space.Config, kpi float64) {
	if !a.everNotify || kpi > a.bestKPI {
		a.bestCfg, a.bestKPI = cfg, kpi
		a.everNotify = true
	}
	if !a.explored[cfg] {
		a.explored[cfg] = true
		a.history = append(a.history, smbo.Observation{Cfg: cfg, KPI: kpi, MeasCV: a.pendingCV})
	}
	a.pendingCV = 0

	switch a.phase {
	case phaseInitial:
		a.initPos++
		if a.initPos >= len(a.initial) {
			a.enterSMBO()
		}
	case phaseSMBO:
		a.pending = nil
		a.suggest()
	case phaseHillClimb:
		a.hc.Observe(cfg, kpi)
	}
}

func (a *AutoPN) capped() bool {
	return a.opts.MaxExplorations > 0 && len(a.history) >= a.opts.MaxExplorations
}

// enterSMBO transitions into the model-driven phase and computes the first
// suggestion.
func (a *AutoPN) enterSMBO() {
	a.phase = phaseSMBO
	a.opts.Recorder.Record(obs.Decision{
		Kind: obs.KindPhase, Phase: a.Phase(),
		Note: fmt.Sprintf("initial sampling complete after %d observations", len(a.history)),
	})
	a.suggest()
}

// finish transitions to the terminal phase (once) and records the
// converged configuration.
func (a *AutoPN) finish(reason string) {
	if a.phase == phaseDone {
		return
	}
	a.phase = phaseDone
	a.opts.Recorder.Record(obs.Decision{
		Kind: obs.KindConverged, Phase: a.Phase(),
		T: a.bestCfg.T, C: a.bestCfg.C, Throughput: a.bestKPI,
		Note: reason,
	})
}

// suggest fits the surrogate on everything observed so far, asks the
// acquisition function for the next configuration, and applies the
// stopping criterion. On stop (or exhaustion) it transitions to the
// hill-climbing phase.
func (a *AutoPN) suggest() {
	if a.capped() {
		a.enterHillClimb("exploration cap reached")
		return
	}
	fit := smbo.Fit
	if a.opts.NoiseAware {
		fit = smbo.FitNoiseAware
	}
	sur := fit(a.history, a.opts.EnsembleSize, a.rng, a.opts.Trainer)
	skip := func(cfg space.Config) bool { return a.explored[cfg] || a.banned(cfg) }
	var sug smbo.Suggestion
	var ok bool
	switch a.opts.Acquisition {
	case AcqMean:
		sug, ok = smbo.SuggestMeanWhere(a.sp, sur, a.bestKPI, skip)
	default:
		sug, ok = smbo.SuggestEIWhere(a.sp, sur, a.bestKPI, skip)
	}
	if !ok {
		a.enterHillClimb("configuration space exhausted")
		return
	}
	if a.opts.Stop.ShouldStop(sug.RelEI, a.history, a.bestKPI) {
		a.enterHillClimb(fmt.Sprintf("stop condition %s met (rel EI %.4f)", a.opts.Stop.Name(), sug.RelEI))
		return
	}
	a.opts.Recorder.Record(obs.Decision{
		Kind: obs.KindSuggestion, Phase: a.Phase(),
		T: sug.Cfg.T, C: sug.Cfg.C, EI: sug.EI, RelEI: sug.RelEI,
	})
	c := sug.Cfg
	a.pending = &c
}

// enterHillClimb transitions into the refinement phase (or finishes, when
// disabled), seeding the climber with every KPI measured so far. reason
// explains why the SMBO phase ended (it is carried into the decision log).
func (a *AutoPN) enterHillClimb(reason string) {
	if a.opts.DisableHillClimb || a.capped() {
		a.finish(reason)
		return
	}
	a.phase = phaseHillClimb
	a.opts.Recorder.Record(obs.Decision{
		Kind: obs.KindPhase, Phase: a.Phase(),
		T: a.bestCfg.T, C: a.bestCfg.C, Note: reason,
	})
	a.hc = search.NewHillClimbFrom(a.sp, a.bestCfg)
	for _, o := range a.history {
		a.hc.Seed(o.Cfg, o.KPI)
	}
}
