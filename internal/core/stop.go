package core

import (
	"fmt"

	"autopn/internal/smbo"
	"autopn/internal/space"
)

// StopCondition decides when AutoPN's SMBO phase should end. It is
// consulted after every observation, with the acquisition function's next
// suggestion already computed: relEI is the suggestion's Expected
// Improvement relative to the incumbent best KPI.
type StopCondition interface {
	Name() string
	// ShouldStop reports whether the SMBO phase is complete. history holds
	// every observation so far in exploration order; best is the incumbent
	// best KPI.
	ShouldStop(relEI float64, history []smbo.Observation, best float64) bool
}

// EIStop is the paper's default stopping criterion: stop when the best
// achievable Expected Improvement falls below Threshold (relative to the
// incumbent; typical values 1%-10%). Consecutive (default 1) requires the
// EI to stay below the threshold for that many successive suggestions
// before stopping — a robustification against the transient EI dip that a
// surrogate trained on only the boundary samples exhibits before its first
// interior observations arrive. AutoPN's default uses Consecutive = 3.
//
// EIStop is stateful (it counts consecutive sub-threshold suggestions);
// create a fresh value per optimization run.
type EIStop struct {
	Threshold   float64
	Consecutive int

	below int
}

// NewEIStop returns AutoPN's default stopping criterion: EI < threshold on
// 3 consecutive suggestions.
func NewEIStop(threshold float64) *EIStop {
	return &EIStop{Threshold: threshold, Consecutive: 3}
}

// Name implements StopCondition.
func (s *EIStop) Name() string { return fmt.Sprintf("EI<%g%%", s.Threshold*100) }

// ShouldStop implements StopCondition.
func (s *EIStop) ShouldStop(relEI float64, _ []smbo.Observation, _ float64) bool {
	need := s.Consecutive
	if need < 1 {
		need = 1
	}
	if relEI < s.Threshold {
		s.below++
	} else {
		s.below = 0
	}
	return s.below >= need
}

// NoImproveStop is the heuristic baseline of Fig. 6 (right): stop when the
// last K observations have not improved the incumbent by more than
// RelDelta.
type NoImproveStop struct {
	K        int
	RelDelta float64
}

// Name implements StopCondition.
func (s NoImproveStop) Name() string { return fmt.Sprintf("no-improvement(K=%d)", s.K) }

// ShouldStop implements StopCondition.
func (s NoImproveStop) ShouldStop(_ float64, history []smbo.Observation, _ float64) bool {
	if len(history) <= s.K {
		return false
	}
	// Best before the last K observations.
	cut := len(history) - s.K
	best := history[0].KPI
	for _, o := range history[1:cut] {
		if o.KPI > best {
			best = o.KPI
		}
	}
	threshold := best * (1 + s.RelDelta)
	if best <= 0 {
		threshold = best + s.RelDelta
	}
	for _, o := range history[cut:] {
		if o.KPI > threshold {
			return false
		}
	}
	return true
}

// AndStop stops only when every component stops (the paper's "hybrid"
// EI ∧ no-improvement variant).
type AndStop []StopCondition

// Name implements StopCondition.
func (s AndStop) Name() string {
	out := "and("
	for i, c := range s {
		if i > 0 {
			out += ","
		}
		out += c.Name()
	}
	return out + ")"
}

// ShouldStop implements StopCondition.
func (s AndStop) ShouldStop(relEI float64, history []smbo.Observation, best float64) bool {
	for _, c := range s {
		if !c.ShouldStop(relEI, history, best) {
			return false
		}
	}
	return len(s) > 0
}

// OrStop stops when any component stops.
type OrStop []StopCondition

// Name implements StopCondition.
func (s OrStop) Name() string {
	out := "or("
	for i, c := range s {
		if i > 0 {
			out += ","
		}
		out += c.Name()
	}
	return out + ")"
}

// ShouldStop implements StopCondition.
func (s OrStop) ShouldStop(relEI float64, history []smbo.Observation, best float64) bool {
	for _, c := range s {
		if c.ShouldStop(relEI, history, best) {
			return true
		}
	}
	return false
}

// StubbornStop is the idealized stopping condition of Fig. 6 (right): it
// stops only when the true optimum has been explored. It cannot be
// implemented in a real deployment (the optimum is unknown a priori); the
// trace-driven experiment harness supplies the oracle.
type StubbornStop struct {
	IsOptimal func(cfg space.Config, kpi float64) bool
}

// Name implements StopCondition.
func (s StubbornStop) Name() string { return "stubborn" }

// ShouldStop implements StopCondition.
func (s StubbornStop) ShouldStop(_ float64, history []smbo.Observation, _ float64) bool {
	for _, o := range history {
		if s.IsOptimal(o.Cfg, o.KPI) {
			return true
		}
	}
	return false
}
