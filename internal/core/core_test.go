package core

import (
	"testing"

	"autopn/internal/smbo"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// driveNoiseless runs an optimizer against the true surface.
func driveNoiseless(t *testing.T, a *AutoPN, w *surface.Workload, maxRounds int) space.Config {
	t.Helper()
	for round := 0; round < maxRounds; round++ {
		cfg, done := a.Next()
		if done {
			best, _ := a.Best()
			return best
		}
		a.Observe(cfg, w.Throughput(cfg))
	}
	t.Fatal("AutoPN did not converge")
	return space.Config{}
}

func TestPhasesProgressInOrder(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	a := New(sp, stats.NewRNG(1), Options{})
	seenPhases := []string{a.Phase()}
	for i := 0; i < 1000; i++ {
		cfg, done := a.Next()
		if p := a.Phase(); p != seenPhases[len(seenPhases)-1] {
			seenPhases = append(seenPhases, p)
		}
		if done {
			break
		}
		a.Observe(cfg, w.Throughput(cfg))
	}
	want := map[string]int{"initial-sampling": 0, "smbo": 1, "hill-climbing": 2, "done": 3}
	last := -1
	for _, p := range seenPhases {
		idx, ok := want[p]
		if !ok {
			t.Fatalf("unknown phase %q", p)
		}
		if idx < last {
			t.Fatalf("phase regression: %v", seenPhases)
		}
		last = idx
	}
	if last != 3 {
		t.Fatalf("never reached done: %v", seenPhases)
	}
}

func TestInitialSamplesComeFirst(t *testing.T) {
	w := surface.Vacation("med")
	sp := space.New(w.Cores)
	a := New(sp, stats.NewRNG(2), Options{})
	want := sp.BiasedSample(9)
	for i, expect := range want {
		cfg, done := a.Next()
		if done {
			t.Fatalf("done during initial sampling at %d", i)
		}
		if cfg != expect {
			t.Fatalf("initial sample %d = %v, want %v", i, cfg, expect)
		}
		a.Observe(cfg, w.Throughput(cfg))
	}
}

func TestUniformInitialIsRandomButAdmissible(t *testing.T) {
	sp := space.New(48)
	a := New(sp, stats.NewRNG(3), Options{UniformInitial: true})
	seen := map[space.Config]bool{}
	for i := 0; i < 9; i++ {
		cfg, done := a.Next()
		if done {
			t.Fatal("done during initial sampling")
		}
		if !sp.Contains(cfg) || seen[cfg] {
			t.Fatalf("bad uniform sample %v", cfg)
		}
		seen[cfg] = true
		a.Observe(cfg, 1)
	}
}

func TestConvergesNearOptimumNoiseless(t *testing.T) {
	for _, w := range []*surface.Workload{
		surface.TPCC("med"), surface.TPCC("low"), surface.Vacation("med"), surface.Array("90"),
	} {
		sp := space.New(w.Cores)
		_, opt := w.Optimum(sp)
		a := New(sp, stats.NewRNG(4), Options{})
		best := driveNoiseless(t, a, w, 2000)
		if got := w.Throughput(best); got < 0.95*opt {
			t.Errorf("%s: converged to %v at %.1f, below 95%% of optimum %.1f",
				w.Name, best, got, opt)
		}
	}
}

func TestMaxExplorationsCap(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	a := New(sp, stats.NewRNG(5), Options{MaxExplorations: 10})
	for i := 0; i < 100; i++ {
		cfg, done := a.Next()
		if done {
			break
		}
		a.Observe(cfg, w.Throughput(cfg))
	}
	if a.Explored() > 10 {
		t.Fatalf("explored %d > cap 10", a.Explored())
	}
}

func TestDisableHillClimbSkipsRefinement(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	a := New(sp, stats.NewRNG(6), Options{DisableHillClimb: true})
	for i := 0; i < 1000; i++ {
		cfg, done := a.Next()
		if done {
			break
		}
		a.Observe(cfg, w.Throughput(cfg))
		if a.Phase() == "hill-climbing" {
			t.Fatal("entered hill-climbing despite DisableHillClimb")
		}
	}
	if a.Name() != "autopn-noHC" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestEIStopConsecutive(t *testing.T) {
	s := &EIStop{Threshold: 0.10, Consecutive: 3}
	if s.ShouldStop(0.05, nil, 0) || s.ShouldStop(0.05, nil, 0) {
		t.Fatal("stopped before 3 consecutive")
	}
	if !s.ShouldStop(0.05, nil, 0) {
		t.Fatal("did not stop at 3rd consecutive")
	}
	// A high-EI suggestion resets the streak.
	s2 := &EIStop{Threshold: 0.10, Consecutive: 2}
	s2.ShouldStop(0.05, nil, 0)
	s2.ShouldStop(0.50, nil, 0)
	if s2.ShouldStop(0.05, nil, 0) {
		t.Fatal("streak not reset by a high-EI suggestion")
	}
}

func TestNoImproveStop(t *testing.T) {
	s := NoImproveStop{K: 3, RelDelta: 0.10}
	hist := func(kpis ...float64) []smbo.Observation {
		out := make([]smbo.Observation, len(kpis))
		for i, k := range kpis {
			out[i] = smbo.Observation{KPI: k}
		}
		return out
	}
	if s.ShouldStop(0, hist(10, 11, 12), 12) {
		t.Fatal("stopped with history shorter than K+1")
	}
	if !s.ShouldStop(0, hist(10, 10.5, 10.2, 10.4, 10.1), 10.5) {
		t.Fatal("did not stop after K flat observations")
	}
	if s.ShouldStop(0, hist(10, 10.1, 10.2, 15, 10.1), 15) {
		t.Fatal("stopped despite a recent >10% improvement")
	}
}

func TestHybridStops(t *testing.T) {
	always := StubbornStop{IsOptimal: func(space.Config, float64) bool { return true }}
	never := StubbornStop{IsOptimal: func(space.Config, float64) bool { return false }}
	hist := []smbo.Observation{{KPI: 1}}
	if !(AndStop{always, always}).ShouldStop(0, hist, 1) {
		t.Fatal("AND of trues is false")
	}
	if (AndStop{always, never}).ShouldStop(0, hist, 1) {
		t.Fatal("AND with a false is true")
	}
	if !(OrStop{never, always}).ShouldStop(0, hist, 1) {
		t.Fatal("OR with a true is false")
	}
	if (OrStop{never, never}).ShouldStop(0, hist, 1) {
		t.Fatal("OR of falses is true")
	}
}

func TestStubbornStopsOnlyAtOptimum(t *testing.T) {
	opt := space.Config{T: 20, C: 2}
	s := StubbornStop{IsOptimal: func(c space.Config, _ float64) bool { return c == opt }}
	hist := []smbo.Observation{{Cfg: space.Config{T: 1, C: 1}}}
	if s.ShouldStop(0, hist, 0) {
		t.Fatal("stopped without the optimum in history")
	}
	hist = append(hist, smbo.Observation{Cfg: opt})
	if !s.ShouldStop(0, hist, 0) {
		t.Fatal("did not stop with optimum in history")
	}
}

func TestMultiTunerOptimizesPerType(t *testing.T) {
	// Two transaction types with different optima; the global KPI is the
	// sum of each type's surface at its own configuration. Coordinate
	// descent must bring both types near their optima.
	wa := surface.TPCC("med")
	wb := surface.Array("90")
	n := wa.Cores
	m := NewMultiTuner(n, 2, stats.NewRNG(7), Options{})
	kpi := func(vec []space.Config) float64 {
		return wa.Throughput(vec[0])/10 + wb.Throughput(vec[1])
	}
	for i := 0; i < 5000; i++ {
		vec, done := m.Next()
		if done {
			break
		}
		m.Observe(vec, kpi(vec))
	}
	best, _ := m.Best()
	if len(best) != 2 {
		t.Fatalf("vector length %d", len(best))
	}
	spA := space.New(n)
	_, optA := wa.Optimum(spA)
	_, optB := wb.Optimum(spA)
	if got := wa.Throughput(best[0]); got < 0.7*optA {
		t.Errorf("type A tuned to %v (%.1f, optimum %.1f)", best[0], got, optA)
	}
	if got := wb.Throughput(best[1]); got < 0.7*optB {
		t.Errorf("type B tuned to %v (%.1f, optimum %.1f)", best[1], got, optB)
	}
}
