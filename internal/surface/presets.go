package surface

import "time"

// The ten workloads of §VII-A: three contention levels each for the TPC-C
// and Vacation ports, and four write-ratio variants of the Array
// micro-benchmark. Parameters are calibrated (see calibrate_test.go) so
// that each family's optimum lands in the qualitative region the paper
// reports: TPC-C-like workloads peak at moderate t with light nesting
// (e.g. (20,2) for the medium-contention port, with ~9x spread between the
// best and the sequential (1,1) configuration), read-dominated Array scans
// peak at (n,1), and the high-contention Array variant is best served by a
// single top-level transaction with deep intra-transaction parallelism.

// DefaultCores is the machine size of the paper's testbed.
const DefaultCores = 48

// TPCC returns the TPC-C-like workload at the given contention level
// ("low", "med", "high").
func TPCC(level string) *Workload {
	w := &Workload{
		Name:         "tpcc-" + level,
		Cores:        DefaultCores,
		WorkUnits:    100,
		BaseUnitTime: 100 * time.Microsecond,
		FixedCost:    200 * time.Microsecond,
		SeqFrac:      0.15,
		SpawnCost:    600 * time.Microsecond,
		NoiseSigma:   0.015,
	}
	switch level {
	case "low":
		w.KInter, w.KIntra = 3.0, 0.15
	case "med":
		w.KInter, w.KIntra = 6.6, 0.15
	default: // high
		w.Name = "tpcc-high"
		w.KInter, w.KIntra = 18, 0.15
	}
	return w
}

// Vacation returns the STAMP-Vacation-like workload at the given contention
// level ("low", "med", "high"). Vacation transactions are shorter than
// TPC-C's and parallelize less profitably.
func Vacation(level string) *Workload {
	w := &Workload{
		Name:         "vacation-" + level,
		Cores:        DefaultCores,
		WorkUnits:    40,
		BaseUnitTime: 60 * time.Microsecond,
		FixedCost:    100 * time.Microsecond,
		SeqFrac:      0.20,
		SpawnCost:    200 * time.Microsecond,
		NoiseSigma:   0.015,
	}
	switch level {
	case "low":
		w.KInter, w.KIntra = 2.0, 0.02
	case "med":
		w.KInter, w.KIntra = 11, 0.05
	default:
		w.Name = "vacation-high"
		w.KInter, w.KIntra = 25, 0.08
	}
	return w
}

// Array returns the Array micro-benchmark scanning a shared array and
// writing the given fraction of its elements ("0", "0.01", "50", "90",
// matching the paper's none / 0.01% / 50% / 90% variants).
func Array(writePct string) *Workload {
	w := &Workload{
		Name:         "array-" + writePct,
		Cores:        DefaultCores,
		WorkUnits:    200,
		BaseUnitTime: 50 * time.Microsecond,
		FixedCost:    100 * time.Microsecond,
		SeqFrac:      0.02,
		SpawnCost:    40 * time.Microsecond,
		NoiseSigma:   0.015,
	}
	switch writePct {
	case "0": // pure scan: embarrassingly parallel, conflict-free
		w.KInter, w.KIntra = 0, 0
		// A pure scan profits from top-level parallelism only: nested
		// children still pay spawn costs, so (n,1) wins.
		w.SpawnCost = 150 * time.Microsecond
	case "0.01":
		w.KInter, w.KIntra = 0.8, 0.002
	case "50":
		w.KInter, w.KIntra = 60, 0.01
	default: // 90: every pair of concurrent top-level scans conflicts
		w.Name = "array-90"
		w.KInter, w.KIntra = 800, 0.005
	}
	return w
}

// AllWorkloads returns the paper's ten workloads in a fixed order.
func AllWorkloads() []*Workload {
	return []*Workload{
		TPCC("low"), TPCC("med"), TPCC("high"),
		Vacation("low"), Vacation("med"), Vacation("high"),
		Array("0"), Array("0.01"), Array("50"), Array("90"),
	}
}
