package surface

import (
	"testing"

	"autopn/internal/space"
)

// TestFitRecoversKnownSurface generates samples from a known workload and
// checks that Fit, starting from a detuned template, recovers a model whose
// surface matches — including the location of the optimum.
func TestFitRecoversKnownSurface(t *testing.T) {
	truth := TPCC("med")
	sp := space.New(truth.Cores)
	rng := newTestRNG()

	var samples []Sample
	for i, cfg := range sp.Configs() {
		if i%3 != 0 { // a third of the space measured, with noise
			continue
		}
		samples = append(samples, Sample{Cfg: cfg, Throughput: truth.Measure(cfg, rng)})
	}

	template := TPCC("med")
	template.SeqFrac = 0.4 // detune the shape parameters
	template.SpawnCost = 0
	template.KInter = 0
	template.KIntra = 0

	fitted, rms := Fit(template, samples)
	t.Logf("fit RMS log error: %.3f (SeqFrac=%.2f Spawn=%v KInter=%.1f KIntra=%.3f)",
		rms, fitted.SeqFrac, fitted.SpawnCost, fitted.KInter, fitted.KIntra)
	if rms > 0.25 {
		t.Fatalf("RMS log error %.3f too high", rms)
	}
	wantOpt, wantV := truth.Optimum(sp)
	gotOpt, _ := fitted.Optimum(sp)
	// The fitted surface must place its optimum in the same neighborhood
	// and value the true optimum within 15%.
	if v := fitted.Throughput(wantOpt); v < 0.85*wantV || v > 1.15*wantV {
		t.Errorf("fitted value at true optimum %v = %.1f, truth %.1f", wantOpt, v, wantV)
	}
	if dfo := 1 - truth.Throughput(gotOpt)/wantV; dfo > 0.1 {
		t.Errorf("fitted optimum %v is %.1f%% from the true optimum %v", gotOpt, dfo*100, wantOpt)
	}
}

func TestFitEmptySamples(t *testing.T) {
	w, rms := Fit(TPCC("low"), nil)
	if rms != 0 || w == nil {
		t.Fatalf("Fit(nil) = (%v, %v)", w, rms)
	}
}

func TestFitPenalizesDeadPredictions(t *testing.T) {
	// Samples from a live workload where every config commits; a template
	// must not be fitted into predicting zero throughput anywhere sampled.
	truth := Array("0.01")
	sp := space.New(truth.Cores)
	var samples []Sample
	for i, cfg := range sp.Configs() {
		if i%5 == 0 {
			samples = append(samples, Sample{Cfg: cfg, Throughput: truth.Throughput(cfg)})
		}
	}
	fitted, _ := Fit(Array("90"), samples)
	for _, s := range samples {
		if fitted.Throughput(s.Cfg) <= 0 {
			t.Fatalf("fitted model predicts dead config at %v", s.Cfg)
		}
	}
}
