package surface

import (
	"math"
	"time"

	"autopn/internal/space"
)

// Sample is one measured (configuration, throughput) pair used for model
// calibration.
type Sample struct {
	Cfg        space.Config
	Throughput float64
}

// Fit calibrates a Workload's free parameters against measured samples
// (e.g. a live sweep of the real PN-STM), minimizing the mean squared
// log-throughput error over a coarse-to-fine grid search. The template
// supplies the fixed structure (cores, work volume, fixed cost); Fit tunes
// the parameters that shape the surface: SeqFrac, SpawnCost, KInter and
// KIntra. It returns the calibrated copy and the final RMS log error.
//
// This closes the loop between the live system and the simulator: a
// workload measured on real hardware at a small core count can be
// extrapolated to the 48-core space the paper's experiments explore.
func Fit(template *Workload, samples []Sample) (*Workload, float64) {
	if len(samples) == 0 {
		out := *template
		return &out, 0
	}

	evalErr := func(w *Workload) float64 {
		sum, n := 0.0, 0
		for _, s := range samples {
			if s.Throughput <= 0 {
				continue
			}
			m := w.Throughput(s.Cfg)
			if m <= 0 {
				sum += 25 // heavily penalize predicting a dead config
				n++
				continue
			}
			d := math.Log(m / s.Throughput)
			sum += d * d
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	}

	best := *template
	bestErr := evalErr(&best)

	// Coarse-to-fine grid refinement over the four shape parameters.
	seqGrid := []float64{0.02, 0.05, 0.1, 0.15, 0.25, 0.4}
	spawnGrid := []time.Duration{
		20 * time.Microsecond, 60 * time.Microsecond, 150 * time.Microsecond,
		400 * time.Microsecond, 1 * time.Millisecond,
	}
	kInterGrid := []float64{0, 0.5, 1.5, 3, 7, 15, 40, 100, 400}
	kIntraGrid := []float64{0, 0.005, 0.02, 0.08, 0.2}

	for pass := 0; pass < 2; pass++ {
		for _, sf := range seqGrid {
			for _, sp := range spawnGrid {
				for _, ki := range kInterGrid {
					for _, kn := range kIntraGrid {
						cand := *template
						cand.SeqFrac = sf
						cand.SpawnCost = sp
						cand.KInter = ki
						cand.KIntra = kn
						if e := evalErr(&cand); e < bestErr {
							bestErr = e
							best = cand
						}
					}
				}
			}
		}
		// Refine each grid around the incumbent for the second pass.
		seqGrid = refineF(best.SeqFrac, 0.5)
		spawnGrid = refineD(best.SpawnCost, 0.5)
		kInterGrid = refineF(best.KInter, 0.6)
		kIntraGrid = refineF(best.KIntra, 0.6)
	}
	return &best, math.Sqrt(bestErr)
}

// refineF returns a small grid bracketing v by the relative spread r.
func refineF(v, r float64) []float64 {
	if v == 0 {
		return []float64{0, 1e-3, 1e-2}
	}
	return []float64{v * (1 - r), v * (1 - r/2), v, v * (1 + r/2), v * (1 + r)}
}

// refineD is refineF for durations.
func refineD(v time.Duration, r float64) []time.Duration {
	if v == 0 {
		return []time.Duration{0, 10 * time.Microsecond, 100 * time.Microsecond}
	}
	f := float64(v)
	return []time.Duration{
		time.Duration(f * (1 - r)), time.Duration(f * (1 - r/2)), v,
		time.Duration(f * (1 + r/2)), time.Duration(f * (1 + r)),
	}
}
