// Package surface models the throughput of PN-TM workloads as a function
// of the parallelism-degree configuration (t, c).
//
// The paper's experiments run on a 48-core machine unavailable to this
// reproduction (see DESIGN.md), so the evaluation substrate is a calibrated
// analytic model with the qualitative structure of a parallel-nesting TM:
//
//   - each top-level transaction carries L units of work, of which a
//     fraction SeqFrac is inherently sequential (Amdahl) while the rest is
//     divided among c nested children;
//   - spawning and synchronizing children costs SpawnCost per child, so
//     intra-transaction parallelism has diminishing — eventually negative —
//     returns;
//   - sibling transactions within a tree conflict with intensity KIntra,
//     inflating the effective transaction duration;
//   - concurrent top-level transactions conflict with an intensity
//     proportional to both the number of peers (t-1) and the transaction's
//     vulnerability window (its duration), so shortening transactions via
//     nesting reduces top-level aborts — the central trade-off AutoPN
//     navigates (§I of the paper);
//   - throughput is t divided by the effective (retry-inflated)
//     transaction duration.
//
// The resulting surfaces reproduce the paper's qualitative landscape:
// humped, workload-dependent optima ((20,2)-style for TPC-C-like loads,
// (1,n)-style under extreme contention, (n,1) for read-dominated loads),
// with best/worst ratios of roughly an order of magnitude.
package surface

import (
	"math"
	"time"

	"autopn/internal/space"
	"autopn/internal/stats"
)

// Workload is a parameterized analytic PN-TM workload model.
type Workload struct {
	// Name identifies the workload in reports (e.g. "tpcc-med").
	Name string
	// Cores is the machine size n.
	Cores int

	// WorkUnits is the parallelizable work per top-level transaction, in
	// abstract units; BaseUnitTime converts units to virtual time.
	WorkUnits float64
	// BaseUnitTime is the duration of one work unit on one core.
	BaseUnitTime time.Duration
	// FixedCost is the per-transaction begin/commit cost.
	FixedCost time.Duration
	// SeqFrac is the inherently sequential fraction of the work (Amdahl).
	SeqFrac float64
	// SpawnCost is the per-child spawn/merge/synchronization cost.
	SpawnCost time.Duration

	// KInter scales the top-level conflict hazard: the per-peer,
	// per-second rate at which a running transaction is invalidated.
	KInter float64
	// KIntra scales sibling conflicts inside a tree (per extra child).
	KIntra float64

	// NoiseSigma is the standard deviation of the multiplicative
	// measurement noise (log-scale) for sampled measurements.
	NoiseSigma float64
}

// duration returns the conflict-free duration of one transaction under c
// nested children, in seconds.
func (w *Workload) duration(c int) float64 {
	cf := float64(c)
	unit := w.BaseUnitTime.Seconds()
	work := w.WorkUnits * unit * (w.SeqFrac + (1-w.SeqFrac)/cf)
	spawn := w.SpawnCost.Seconds() * (cf - 1)
	return w.FixedCost.Seconds() + work + spawn
}

// intraRetryFactor inflates a transaction's duration by sibling conflicts.
func (w *Workload) intraRetryFactor(c int) float64 {
	if c <= 1 || w.KIntra <= 0 {
		return 1
	}
	p := 1 - math.Exp(-w.KIntra*float64(c-1))
	if p > 0.95 {
		p = 0.95
	}
	return 1 / (1 - p)
}

// EffectiveDuration returns the conflict-free duration of one transaction
// attempt under c nested children, including sibling-conflict inflation,
// in seconds — the per-attempt service time the discrete-event engine
// samples around.
func (w *Workload) EffectiveDuration(c int) float64 {
	if c < 1 {
		return 0
	}
	return w.duration(c) * w.intraRetryFactor(c)
}

// Throughput returns the model's mean throughput (top-level commits per
// second) for configuration cfg.
func (w *Workload) Throughput(cfg space.Config) float64 {
	if !cfg.Valid(w.Cores) {
		return 0
	}
	d := w.duration(cfg.C) * w.intraRetryFactor(cfg.C)
	// Top-level conflict hazard grows with peers and vulnerability window.
	if cfg.T > 1 && w.KInter > 0 {
		hazard := w.KInter * float64(cfg.T-1) * d
		p := 1 - math.Exp(-hazard)
		if p > 0.98 {
			p = 0.98
		}
		d /= (1 - p)
	}
	return float64(cfg.T) / d
}

// Optimum returns the configuration maximizing the model's mean throughput
// over sp and its value.
func (w *Workload) Optimum(sp *space.Space) (space.Config, float64) {
	var best space.Config
	bestV := math.Inf(-1)
	for _, cfg := range sp.Configs() {
		if v := w.Throughput(cfg); v > bestV {
			bestV = v
			best = cfg
		}
	}
	return best, bestV
}

// Scaled returns a copy of the workload slowed down by the given factor:
// every time constant is multiplied by factor, so the surface's shape over
// (t, c) is preserved (the inter-transaction conflict intensity, whose unit
// is 1/second, is divided by factor accordingly) while absolute throughput
// drops by factor. Fig. 7a uses this to derive a low-throughput variant of
// the Array benchmark.
func (w *Workload) Scaled(name string, factor float64) *Workload {
	out := *w
	out.Name = name
	out.BaseUnitTime = time.Duration(float64(w.BaseUnitTime) * factor)
	out.FixedCost = time.Duration(float64(w.FixedCost) * factor)
	out.SpawnCost = time.Duration(float64(w.SpawnCost) * factor)
	if factor > 0 {
		out.KInter = w.KInter / factor
	}
	return &out
}

// Measure returns one noisy throughput sample at cfg: the model mean under
// multiplicative log-normal noise of scale NoiseSigma.
func (w *Workload) Measure(cfg space.Config, rng *stats.RNG) float64 {
	mean := w.Throughput(cfg)
	if w.NoiseSigma <= 0 {
		return mean
	}
	return mean * math.Exp(w.NoiseSigma*rng.NormFloat64()-w.NoiseSigma*w.NoiseSigma/2)
}
