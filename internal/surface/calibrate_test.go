package surface

import (
	"testing"

	"autopn/internal/space"
)

// TestCalibrationReport prints each workload's optimum and landscape
// statistics; run with -v to inspect while tuning presets.
func TestCalibrationReport(t *testing.T) {
	sp := space.New(DefaultCores)
	for _, w := range AllWorkloads() {
		opt, best := w.Optimum(sp)
		worstCfg, worst := sp.At(0), best
		for _, cfg := range sp.Configs() {
			if v := w.Throughput(cfg); v < worst {
				worst, worstCfg = v, cfg
			}
		}
		seq := w.Throughput(space.Config{T: 1, C: 1})
		t.Logf("%-14s opt=%-8v best=%10.1f  best/seq=%5.1fx  best/worst=%5.1fx (worst %v)",
			w.Name, opt, best, best/seq, best/worst, worstCfg)
	}
}

// TestQualitativeOptimaRegions pins each workload family's optimum to the
// region the paper reports (Fig. 1 and §VII-A).
func TestQualitativeOptimaRegions(t *testing.T) {
	sp := space.New(DefaultCores)

	check := func(name string, w *Workload, cond func(space.Config) bool, desc string) {
		t.Helper()
		opt, _ := w.Optimum(sp)
		if !cond(opt) {
			t.Errorf("%s: optimum %v not in expected region (%s)", name, opt, desc)
		}
	}

	// TPC-C medium: moderate top-level parallelism with light nesting,
	// approximating the paper's (20,2).
	check("tpcc-med", TPCC("med"), func(c space.Config) bool {
		return c.T >= 10 && c.T <= 32 && c.C >= 2 && c.C <= 4
	}, "t in [10,32], c in [2,4]")

	// Pure-read Array scan: all cores to top-level transactions, nesting
	// disabled.
	check("array-0", Array("0"), func(c space.Config) bool {
		return c.T >= 40 && c.C == 1
	}, "t>=40, c=1")

	// High-contention Array: top-level concurrency is poisonous; the work
	// must be parallelized inside few transactions.
	check("array-90", Array("90"), func(c space.Config) bool {
		return c.T <= 2 && c.C >= 12
	}, "t<=2, c>=12")

	// Low contention TPC-C prefers more top-level parallelism than the
	// high-contention variant.
	optLow, _ := TPCC("low").Optimum(sp)
	optHigh, _ := TPCC("high").Optimum(sp)
	if optLow.T <= optHigh.T {
		t.Errorf("tpcc: low-contention optimum t=%d should exceed high-contention t=%d",
			optLow.T, optHigh.T)
	}
}

// TestBestToWorstSpread verifies the landscape is worth tuning: for the
// medium-contention TPC-C port the paper reports the best configuration at
// ~9x the worst ((1,1)) and 2-3x most of the rest.
func TestBestToWorstSpread(t *testing.T) {
	sp := space.New(DefaultCores)
	w := TPCC("med")
	opt, best := w.Optimum(sp)
	seq := w.Throughput(space.Config{T: 1, C: 1})
	ratio := best / seq
	if ratio < 4 || ratio > 20 {
		t.Errorf("tpcc-med best/seq = %.1fx (opt %v), want order-of-magnitude spread (4x-20x)", ratio, opt)
	}
	// Count configurations at least 2x below the best.
	atLeast2x := 0
	for _, cfg := range sp.Configs() {
		if best/w.Throughput(cfg) >= 2 {
			atLeast2x++
		}
	}
	if frac := float64(atLeast2x) / float64(sp.Size()); frac < 0.3 {
		t.Errorf("only %.0f%% of configs are >=2x below best; landscape too flat", frac*100)
	}
}

// TestDistinctOptimaAcrossWorkloads verifies Fig. 1b's point: the best
// configuration for one workload can be among the worst for another.
func TestDistinctOptimaAcrossWorkloads(t *testing.T) {
	sp := space.New(DefaultCores)
	a := Array("0")
	b := Array("90")
	optA, _ := a.Optimum(sp)
	optB, _ := b.Optimum(sp)
	if optA == optB {
		t.Fatalf("array-0 and array-90 share optimum %v; workloads must disagree", optA)
	}
	// a's optimum must be badly suboptimal for b and vice versa.
	if dfo := dfo(b, sp, optA); dfo < 0.5 {
		t.Errorf("array-0's optimum %v is only %.0f%% from array-90's optimum; want >50%%", optA, dfo*100)
	}
	if dfo := dfo(a, sp, optB); dfo < 0.5 {
		t.Errorf("array-90's optimum %v is only %.0f%% from array-0's optimum; want >50%%", optB, dfo*100)
	}
}

// dfo computes the distance from optimum of cfg under w: 1 - f(cfg)/f(opt).
func dfo(w *Workload, sp *space.Space, cfg space.Config) float64 {
	_, best := w.Optimum(sp)
	return 1 - w.Throughput(cfg)/best
}

func TestMeasureNoiseIsUnbiasedAndPositive(t *testing.T) {
	w := TPCC("med")
	sp := space.New(DefaultCores)
	opt, mean := w.Optimum(sp)
	rng := newTestRNG()
	sum := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		v := w.Measure(opt, rng)
		if v <= 0 {
			t.Fatalf("noisy measurement %g <= 0", v)
		}
		sum += v
	}
	got := sum / n
	if got < 0.97*mean || got > 1.03*mean {
		t.Errorf("noisy mean %.1f deviates from model mean %.1f by >3%%", got, mean)
	}
}

func TestInvalidConfigZeroThroughput(t *testing.T) {
	w := TPCC("med")
	if v := w.Throughput(space.Config{T: 48, C: 2}); v != 0 {
		t.Errorf("oversubscribed config throughput = %g, want 0", v)
	}
	if v := w.Throughput(space.Config{T: 0, C: 1}); v != 0 {
		t.Errorf("invalid config throughput = %g, want 0", v)
	}
}
