package surface

import "autopn/internal/stats"

func newTestRNG() *stats.RNG { return stats.NewRNG(0xA07A_0001) }
