package stm

import (
	"sync/atomic"

	"autopn/internal/chaos"
	stmtrace "autopn/internal/stm/trace"
)

// This file implements the lock-free commit algorithm of JVSTM (Fernandes
// & Cachopo, "Lock-free and scalable multi-version software transactional
// memory", PPoPP 2011), selectable via Options.LockFreeCommit.
//
// Committing transactions enqueue a commit request onto a global lock-free
// queue; the queue order defines the serialization order and each request's
// commit version (predecessor's version + 1). Every committing thread then
// *helps* process the queue front to back: validate the request's read set,
// write its write set back (idempotently, via version-checked CAS installs)
// and mark it done. Because any thread can complete any request, a
// descheduled committer never blocks the others — the property that
// motivated JVSTM's design and that the classic serialized commit
// (commitMu) lacks. The two strategies are behaviorally identical from the
// tuner's perspective; BenchmarkCommitStrategies quantifies their scaling
// difference.
//
// The only shared mutable state is advanced by CAS: the queue tail (via
// next-pointer append), each request's status (pending -> valid|aborted ->
// done), each box's head body, and the global clock. The version-GC
// horizon uses the STM's snapshot registry, whose mutex guards only
// bookkeeping reads and never gates commit progress.

// Commit request statuses.
const (
	commitPending int32 = iota
	commitValid
	commitAborted
	commitDone
)

// commitRequest is one enqueued top-level commit.
type commitRequest struct {
	tx      *Tx
	version uint64 // serialization position; set before the request is published
	status  atomic.Int32
	next    atomic.Pointer[commitRequest]
	// conflict is the box a helper found invalid, stored (atomically —
	// several helpers may validate the same request concurrently) before
	// the abort status is CASed in. The owner reads it after observing
	// commitAborted to learn its scheduling intent; the status atomic
	// orders the winner's store ahead of the owner's load.
	conflict atomic.Pointer[vbox]
}

// initLockFree installs the queue sentinel. Called from New.
func (s *STM) initLockFree() {
	sentinel := &commitRequest{}
	sentinel.status.Store(commitDone)
	s.lfHead.Store(sentinel)
	s.lfTail.Store(sentinel)
}

// commitTopLockFree enqueues tx's commit and helps the queue until the
// request is resolved. It returns whether the commit succeeded.
//
// Publishing tx to the queue makes its read/write sets reachable by every
// helping thread, possibly beyond the owner's return (a second helper may
// still be validating or writing back after the first marked the request
// done). lfEnqueued therefore excludes tx from pool recycling (pool.go).
func (s *STM) commitTopLockFree(tx *Tx) bool {
	if s.inj != nil {
		// Chaos hook before the request is published: an abort here is a
		// forced validation failure on the lock-free path.
		if s.inj.Fire(chaos.PointValidate, "") == chaos.ActAbort {
			tx.traceConflict(stmtrace.ReasonTopValidation, nil)
			return false
		}
	}
	tx.lfEnqueued = true
	req := &commitRequest{tx: tx}
	for {
		tail := s.findTail()
		req.version = tail.version + 1
		if tail.next.CompareAndSwap(nil, req) {
			// Opportunistically publish the new tail for later enqueuers.
			s.lfTail.CompareAndSwap(tail, req)
			break
		}
	}
	if s.inj != nil {
		// Chaos hook between publication and the helping loop: a stall
		// here models the preempted committer of Fernandes & Cachopo's
		// design argument — its request sits in the queue and other
		// threads must finish (or invalidate) it.
		s.inj.Fire(chaos.PointHelping, "owner")
	}
	for {
		switch req.status.Load() {
		case commitDone:
			// Owner-side capture: helpers only touch req, never tx, after
			// the status store, and the Load above orders it.
			tx.commitVer = req.version
			return true
		case commitAborted:
			// Owner-side learning: the helper that invalidated the request
			// stored the conflicting box before its status CAS (see
			// helpCommits). The span attribution already happened
			// helper-side for sampled trees; noteConflict only stores the
			// learned key (and feeds the scheduler's unsampled table).
			if b := req.conflict.Load(); b != nil {
				key, label := boxKeyLabel(b)
				tx.noteConflict(stmtrace.ReasonLockFreeHelp, key, label)
			}
			return false
		}
		s.helpCommits()
	}
}

// findTail locates the queue's current last request, advancing the cached
// tail pointer past any appended suffix.
func (s *STM) findTail() *commitRequest {
	t := s.lfTail.Load()
	for {
		n := t.next.Load()
		if n == nil {
			return t
		}
		s.lfTail.CompareAndSwap(t, n)
		t = n
	}
}

// helpCommits processes the earliest unfinished request, if any. Multiple
// threads may process the same request concurrently; every step is
// idempotent.
func (s *STM) helpCommits() {
	if s.inj != nil {
		s.inj.Fire(chaos.PointHelping, "helper")
	}
	// Advance the head past completed requests.
	h := s.lfHead.Load()
	for {
		st := h.status.Load()
		if st != commitDone && st != commitAborted {
			break
		}
		n := h.next.Load()
		if n == nil {
			return // queue drained
		}
		s.lfHead.CompareAndSwap(h, n)
		h = s.lfHead.Load()
	}

	r := h
	if r.status.Load() == commitPending {
		// Validate against the fully applied state of every predecessor
		// (all of which are done, by queue order): a box read at snapshot
		// readVersion must not have a newer committed version.
		valid := true
		var conflictBox *vbox
		for _, b := range r.tx.globalReads {
			if b.currentVersion() > r.tx.readVersion {
				valid = false
				conflictBox = b
				break
			}
		}
		if valid {
			r.status.CompareAndSwap(commitPending, commitValid)
		} else {
			// Publish the conflicting box before the status CAS so the
			// owner, which loads it after observing commitAborted, sees a
			// box some helper genuinely found invalid (atomic store:
			// concurrent helpers may publish different boxes, any is a
			// true conflict).
			r.conflict.Store(conflictBox)
			if r.status.CompareAndSwap(commitPending, commitAborted) {
				// Attribution rides the winning CAS so concurrent helpers
				// cannot double-count one abort. The owner's span pointer is
				// safely visible through the queue-publication CAS; Span.
				// Conflict is helper-goroutine-safe.
				if sp := r.tx.span; sp != nil {
					key, label := boxKeyLabel(conflictBox)
					sp.Conflict(stmtrace.ReasonLockFreeHelp, key, label)
				}
			}
		}
	}

	if r.status.Load() == commitValid {
		keepFrom := s.gcHorizon()
		r.tx.writes.forEach(func(b *vbox, e writeEntry) {
			// CAS losers recycle their speculative node through the body
			// pool; winners' truncated tails go to the GC, since laggard
			// helpers of done requests traverse chains unregistered (see
			// installBodyCAS).
			s.installBodyCAS(b, e, r.version, keepFrom, r.tx.statShard)
		})
		// Publish the new clock before marking done so that any snapshot
		// taken after observing "done" sees the writes.
		advanceClock(&s.clock, r.version)
		r.status.CompareAndSwap(commitValid, commitDone)
	}
}

// advanceClock lifts the clock to at least v.
func advanceClock(clock *atomic.Uint64, v uint64) {
	for {
		cur := clock.Load()
		if cur >= v || clock.CompareAndSwap(cur, v) {
			return
		}
	}
}
