package stm

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"autopn/internal/sched"
)

// Scheduler-path benchmarks.
//
// BenchmarkSmallWriteTxSched is the cold-cost gate: the exact SmallWriteTx
// workload with a scheduler attached but no domains promoted, so every
// attempt pays the scheduler's disabled-path cost (one atomic load on the
// hinted entry) and nothing else. It is baseline-tracked by bench-compare
// and alloc-gated by bench-allocs: enabling the scheduler on an
// uncontended workload must stay within the noise of SmallWriteTx and must
// not allocate.
//
// BenchmarkHotsetWriteTx is the contended family the scheduler exists
// for: zipfian-skewed read-modify-writes over a small hot set, scheduler
// off vs. on (hot boxes pre-promoted into conflict domains so the
// measurement isolates lane steering from controller latency), across all
// three commit strategies, parallelism driven by -cpu. It has no baseline
// entries in BENCH_stm.json on purpose — retry-storm throughput is far too
// machine- and core-count-sensitive for a ±threshold gate (bench-compare
// skips baseline-less benchmarks); the contention-smoke CI job gates the
// scheduler's goodput win end-to-end instead.

// BenchmarkSmallWriteTxSched: SmallWriteTx with an enabled-but-cold
// scheduler, hinted entry points.
func BenchmarkSmallWriteTxSched(b *testing.B) {
	benchStrategies(b, func(b *testing.B, s *STM) {
		s.SetScheduler(sched.New(sched.Options{}))
		const nBoxes = 4
		mk := func() []*VBox[int] {
			boxes := make([]*VBox[int], nBoxes)
			for i := range boxes {
				boxes[i] = NewVBox(0)
			}
			return boxes
		}
		body := func(boxes []*VBox[int]) func(*Tx) error {
			return func(tx *Tx) error {
				for _, bx := range boxes {
					bx.Put(tx, bx.Get(tx)+1)
				}
				return nil
			}
		}
		b.Run("Seq", func(b *testing.B) {
			boxes := mk()
			fn := body(boxes)
			hint := boxes[0].ConflictKey()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.AtomicHint(hint, fn); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Par", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				boxes := mk() // disjoint per worker: no read-set conflicts
				fn := body(boxes)
				hint := boxes[0].ConflictKey()
				for pb.Next() {
					if err := s.AtomicHint(hint, fn); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	})
}

// BenchmarkHotsetWriteTx: zipfian read-modify-writes over a small hot set,
// scheduler off vs. on. Drive with -cpu 1,4,8 to vary the retry-storm
// pressure the lanes absorb.
func BenchmarkHotsetWriteTx(b *testing.B) {
	const hotSet = 8
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"Group", Options{}},
		{"Legacy", Options{DisableGroupCommit: true}},
		{"LockFree", Options{LockFreeCommit: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for _, mode := range []string{"SchedOff", "SchedOn"} {
				b.Run(mode, func(b *testing.B) {
					opts := tc.opts
					var sch *sched.Scheduler
					if mode == "SchedOn" {
						sch = sched.New(sched.Options{MaxWait: 2 * time.Millisecond})
						opts.Scheduler = sch
					}
					s := New(opts)
					boxes := make([]*VBox[int], hotSet)
					for i := range boxes {
						boxes[i] = NewVBox(0)
						if sch != nil {
							sch.Promote(boxes[i].ConflictKey(), "")
						}
					}
					var seq atomic.Int64
					b.ReportAllocs()
					b.RunParallel(func(pb *testing.PB) {
						rng := rand.New(rand.NewSource(seq.Add(1))) //nolint:gosec // deterministic workload draw
						zipf := rand.NewZipf(rng, 1.3, 1, hotSet-1)
						for pb.Next() {
							bx := boxes[zipf.Uint64()]
							if err := s.AtomicHint(bx.ConflictKey(), func(tx *Tx) error {
								bx.Put(tx, bx.Get(tx)+1)
								return nil
							}); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		})
	}
}
