package stm

import (
	"runtime"
	"time"

	"autopn/internal/stats"
)

// defaultLivelockThreshold is the attempt count at which an unbounded
// RetryPolicy (MaxAttempts == 0) signals a livelock. The default backoff
// caps its exponential at attempt 10, so by attempt 64 a transaction has
// been spinning at the maximum delay for a long time — on this STM's
// workloads that only happens when forward progress has genuinely stalled.
const defaultLivelockThreshold = 64

// RetryPolicy configures the contention management of conflicted
// transactions (Options.Retry). All fields are optional; the zero policy
// behaves like the defaults documented per field. A policy applies to
// top-level retries and, where noted, to parallel-nested child retries.
type RetryPolicy struct {
	// MaxAttempts is the per-transaction attempt budget: a transaction
	// whose MaxAttempts-th attempt conflicts gives up with
	// ErrTooManyRetries. It supersedes the legacy Options.MaxRetries and —
	// unlike it — also bounds nested-child retry loops, whose
	// ErrTooManyRetries surfaces through Tx.Parallel to the caller
	// (matchable with errors.Is). Zero means unbounded.
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the second attempt; the
	// ceiling doubles per attempt up to MaxDelay, and the actual sleep is
	// uniform jitter in [0, ceiling] drawn from a per-retry-loop splitmix64
	// stream (full jitter dissolves retry convoys). The first retry only
	// yields the processor. Default 1µs.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. Default ~1ms (1024µs).
	MaxDelay time.Duration
	// LivelockThreshold is the number of consecutive failed attempts after
	// which the transaction is counted as livelocked (Stats.LivelockTrips,
	// the autopn_stm_livelock_trips_total metric) and OnLivelock fires —
	// once per transaction. Zero defaults to MaxAttempts when a budget is
	// set, else to defaultLivelockThreshold (64).
	LivelockThreshold int
	// OnLivelock, if non-nil, is called (once per livelocked transaction,
	// from the retrying goroutine) with the failed-attempt count. Keep it
	// cheap and non-blocking.
	OnLivelock func(attempts int)
}

// livelockThreshold resolves the effective trip point.
func (p *RetryPolicy) livelockThreshold() int {
	if p.LivelockThreshold > 0 {
		return p.LivelockThreshold
	}
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return defaultLivelockThreshold
}

// sleep applies the policy's capped-exponential full-jitter delay after a
// failed attempt (attempt is 0-based, like Options.Backoff).
func (p *RetryPolicy) sleep(attempt int, rng *stats.RNG) {
	if attempt == 0 {
		runtime.Gosched()
		return
	}
	base := p.BaseDelay
	if base <= 0 {
		base = time.Microsecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 1024 * time.Microsecond
	}
	if max < base {
		max = base
	}
	ceil := base
	for i := 1; i < attempt && ceil < max; i++ {
		ceil <<= 1
	}
	if ceil > max {
		ceil = max
	}
	time.Sleep(time.Duration(rng.Uint64() % uint64(ceil+1)))
}
