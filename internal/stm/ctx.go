package stm

import "context"

// AtomicResultCtx runs fn as a top-level transaction on s with
// context-aware retries (see STM.AtomicCtx) and returns its result. On
// cancellation the zero T is returned alongside ctx.Err().
func AtomicResultCtx[T any](ctx context.Context, s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	var out T
	err := s.AtomicCtx(ctx, func(tx *Tx) error {
		var err error
		out, err = fn(tx)
		return err
	})
	return out, err
}

// Context returns the context the enclosing top-level transaction was
// started with via AtomicCtx, or context.Background() for plain Atomic.
// Nested children report their root's context.
func (t *Tx) Context() context.Context {
	if c := t.root.ctx; c != nil {
		return c
	}
	return context.Background()
}
