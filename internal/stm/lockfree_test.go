package stm

import (
	"sync"
	"testing"
)

func newLF() *STM { return New(Options{LockFreeCommit: true}) }

func TestLockFreeBasicCommit(t *testing.T) {
	s := newLF()
	box := NewVBox(1)
	if err := s.Atomic(func(tx *Tx) error {
		box.Put(tx, box.Get(tx)+41)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := box.Peek(); got != 42 {
		t.Fatalf("Peek = %d", got)
	}
	if c := s.Clock(); c != 1 {
		t.Fatalf("clock = %d, want 1", c)
	}
}

func TestLockFreeConcurrentIncrementsConserved(t *testing.T) {
	s := newLF()
	box := NewVBox(0)
	const goroutines, perG = 8, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Atomic(func(tx *Tx) error {
					box.Put(tx, box.Get(tx)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if got := box.Peek(); got != goroutines*perG {
		t.Fatalf("final = %d, want %d", got, goroutines*perG)
	}
	if a := s.Stats.TopAborts(); a == 0 {
		t.Log("note: no aborts observed (low contention run)")
	}
}

func TestLockFreeSnapshotIsolation(t *testing.T) {
	s := newLF()
	a := NewVBox(10)
	b := NewVBox(20)
	inReader := make(chan struct{})
	writerDone := make(chan struct{})
	var sum1, sum2 int
	done := make(chan error, 1)
	go func() {
		done <- s.Atomic(func(tx *Tx) error {
			sum1 = a.Get(tx)
			close(inReader)
			<-writerDone
			sum2 = b.Get(tx)
			return nil
		})
	}()
	<-inReader
	if err := s.Atomic(func(tx *Tx) error {
		a.Put(tx, 100)
		b.Put(tx, 200)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(writerDone)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sum1+sum2 != 30 {
		t.Fatalf("inconsistent snapshot: a=%d b=%d", sum1, sum2)
	}
}

func TestLockFreeDisjointWritersAllCommit(t *testing.T) {
	// Transactions over disjoint boxes never conflict: every one of them
	// must commit without retry even under heavy overlap in time — and
	// the lock-free queue must serialize them all correctly.
	s := newLF()
	const workers, per = 8, 200
	boxes := make([]*VBox[int], workers)
	for i := range boxes {
		boxes[i] = NewVBox(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Atomic(func(tx *Tx) error {
					boxes[w].Put(tx, boxes[w].Get(tx)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	for w, b := range boxes {
		if got := b.Peek(); got != per {
			t.Fatalf("box %d = %d, want %d", w, got, per)
		}
	}
	if a := s.Stats.TopAborts(); a != 0 {
		t.Fatalf("disjoint writers aborted %d times", a)
	}
	if c := s.Clock(); c != workers*per {
		t.Fatalf("clock = %d, want %d", c, workers*per)
	}
}

func TestLockFreeBankInvariantWithNesting(t *testing.T) {
	s := newLF()
	const accounts = 16
	boxes := make([]*VBox[int], accounts)
	for i := range boxes {
		boxes[i] = NewVBox(100)
	}
	const workers, transfers = 6, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (seed + i) % accounts
				to := (seed + i*7 + 1) % accounts
				if from == to {
					continue
				}
				if err := s.Atomic(func(tx *Tx) error {
					// Audit half the bank in a nested child first.
					if i%4 == 0 {
						if err := tx.Parallel(func(c *Tx) error {
							sum := 0
							for _, b := range boxes[:accounts/2] {
								sum += b.Get(c)
							}
							_ = sum
							return nil
						}); err != nil {
							return err
						}
					}
					amt := 1 + (i % 5)
					boxes[from].Put(tx, boxes[from].Get(tx)-amt)
					boxes[to].Put(tx, boxes[to].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
				}
			}
		}(w * 3)
	}
	wg.Wait()
	total := 0
	for _, b := range boxes {
		total += b.Peek()
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d", total, accounts*100)
	}
}

func TestLockFreeVersionGC(t *testing.T) {
	s := newLF()
	box := NewVBox(0)
	for i := 0; i < 200; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			box.Put(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := box.core.chainLen(); n > 4 {
		t.Fatalf("chainLen = %d under lock-free commit GC", n)
	}
	if got := box.Peek(); got != 199 {
		t.Fatalf("final = %d", got)
	}
}

func TestLockFreeConflictsActuallyAbort(t *testing.T) {
	s := newLF()
	box := NewVBox(0)
	interfered := false
	err := s.Atomic(func(tx *Tx) error {
		_ = box.Get(tx)
		if !interfered {
			interfered = true
			done := make(chan struct{})
			go func() {
				_ = s.Atomic(func(tx2 *Tx) error {
					box.Put(tx2, 7)
					return nil
				})
				close(done)
			}()
			<-done
		}
		box.Put(tx, box.Get(tx)+100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a := s.Stats.TopAborts(); a == 0 {
		t.Fatal("forced conflict produced no abort")
	}
	if got := box.Peek(); got != 107 {
		t.Fatalf("final = %d, want 107", got)
	}
}
