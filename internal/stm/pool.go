package stm

import (
	"sync"
	"sync/atomic"
)

// Transaction-state recycling.
//
// The begin path used to allocate a Tx, a write-set map, a seen-reads map,
// and read-set slice backing on every attempt. Under the array/TPC-C
// workloads that is pure garbage: the objects die at commit. Each STM now
// recycles Tx objects (with their inline small-set arrays and slice
// capacity) through a sync.Pool; because sync.Pool shards per P, a core
// keeps reusing the same Tx objects, which also stabilizes the snapshot-
// registry slot and stats-shard affinities those objects carry.
//
// Lifecycle and reset discipline:
//
//   - getTx (checkout): clears `finished` — everything else was reset at
//     put-back time, so checkout is O(1).
//   - putTx (return): resets write/read sets (releasing *vbox and value
//     references so pooled objects pin no user data), truncates the read
//     slices (dropping them entirely if they grew past maxPooledSetCap, so
//     one huge transaction cannot pin a huge buffer forever), zeroes tree
//     linkage, and leaves `finished == true` — a user-held stale *Tx keeps
//     panicking on use until the object is actually reused.
//
// Exclusions — a Tx is NOT recycled when:
//
//   - it was published to the lock-free commit queue (Tx.lfEnqueued):
//     helper threads may still be reading its write/read sets after the
//     owner observed the commit outcome, so the object must be left to the
//     garbage collector (the queue releases it as the head advances);
//   - its function panicked with a non-conflict panic: the unwound call
//     escapes the runner before any put-back, which is exactly the
//     conservative behavior we want for state of unknown integrity.

// txSeq derives per-Tx-object affinity hints (stats shard, registry slot).
// Consecutive objects land on different stripes; the golden-ratio multiply
// spreads registry probes across the slot array.
var txSeq atomic.Uint32

// maxPooledSetCap bounds the slice capacity a pooled Tx may retain.
const maxPooledSetCap = 1024

// getTx checks a Tx out of the pool (or allocates one with fresh affinity
// hints). Fields that vary per transaction are set by beginTop/beginChild.
func (s *STM) getTx() *Tx {
	if v := s.txPool.Get(); v != nil {
		tx := v.(*Tx)
		tx.finished = false
		return tx
	}
	id := txSeq.Add(1)
	return &Tx{
		statShard: id,
		snapHint:  id * 0x9e3779b9,
	}
}

// putTx resets tx and returns it to the pool. Callers must guarantee no
// other goroutine can still reach tx (see the exclusions above).
func (s *STM) putTx(tx *Tx) {
	if tx.lfEnqueued {
		return
	}
	if t := tx.tree; t != nil && tx.parent == nil {
		// Root owns the tree state; children only borrow the pointer.
		putTree(t)
	}
	tx.tree = nil
	tx.stm = nil
	tx.ctx = nil
	tx.parent = nil
	tx.root = nil
	tx.depth = 0
	tx.readVersion = 0
	tx.readTreeVersion = 0
	tx.snapSlot = slotNone
	tx.writes.reset()
	tx.reads.reset()
	for i := range tx.globalReads {
		tx.globalReads[i] = nil
	}
	tx.globalReads = tx.globalReads[:0]
	if cap(tx.globalReads) > maxPooledSetCap {
		tx.globalReads = nil
	}
	for i := range tx.treeReads {
		tx.treeReads[i] = treeRead{}
	}
	tx.treeReads = tx.treeReads[:0]
	if cap(tx.treeReads) > maxPooledSetCap {
		tx.treeReads = nil
	}
	for i := range tx.childBuf {
		tx.childBuf[i] = childResult{} // drop error/panic references
	}
	if cap(tx.childBuf) > maxPooledSetCap {
		tx.childBuf = nil
	}
	tx.readOnly = false
	tx.holdsGateSlot = false
	tx.conflictKey = 0
	tx.conflictLabel = "" // drop the label string reference
	tx.span = nil         // already finished by the runner; drop the reference
	tx.finished = true    // stale user handles keep panicking until reuse
	s.txPool.Put(tx)
}

// getGCReq checks a group-commit request node out of the per-STM pool.
// The owner parks on the node's WaitGroup while a combiner commits on its
// behalf; see groupcommit.go.
func (s *STM) getGCReq() *gcRequest {
	if v := s.gcReqPool.Get(); v != nil {
		return v.(*gcRequest)
	}
	return new(gcRequest)
}

// putGCReq resets r and returns it to the pool. Only the owner may call
// this, and only after wg.Wait() returned — the combiner's last touch is
// wg.Done(), so the WaitGroup edge makes the reuse race-free.
func (s *STM) putGCReq(r *gcRequest) {
	r.tx = nil
	r.next = nil
	r.conflict = nil
	r.preval = 0
	r.ok = false
	r.done.Store(false)
	s.gcReqPool.Put(r)
}

// treePool recycles per-tree shared state (one object per top-level
// transaction attempt that forked children).
var treePool = sync.Pool{New: func() any { return new(treeState) }}

func getTree() *treeState {
	return treePool.Get().(*treeState)
}

func putTree(t *treeState) {
	t.clock.Store(0)
	t.gate = nil
	treePool.Put(t)
}
