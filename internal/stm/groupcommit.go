package stm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"autopn/internal/chaos"
	stmtrace "autopn/internal/stm/trace"
)

// Flat-combining group commit with out-of-lock pre-validation.
//
// The classic serialized commit (commitTopLegacy) holds one global commitMu
// across full read-set validation *and* write-back, so every added top-level
// writer queues on one lock and throughput stops scaling with writers — the
// exact ceiling the paper's tuner ends up steering around. The default
// commit path is now a three-stage pipeline:
//
//  1. Out-of-lock pre-validation. A committer loads the clock (pv) and
//     validates its whole global read set against it before touching
//     commitMu. Correctness: the clock is stored *after* write-back as the
//     last action of every commit, so every commit with version <= pv is
//     fully installed and visible; a read set valid at pv can only be
//     invalidated by commits with versions strictly greater than pv.
//
//  2. O(delta) in-lock revalidation. The STM keeps a ring of the last
//     gcRingSize committed write sets (ring entry = commit version, 64-bit
//     bloom signature, and up to gcEntryKeys exact vbox identities), plus a
//     per-STM 64-bit summary filter (the OR of the live entries' blooms).
//     Inside the lock a committer re-checks only read-set boxes that
//     intersect commits in (pv, clock] — typically zero or a handful —
//     instead of re-walking the whole read set. Commit versions are dense
//     (exactly one clock bump per update commit, on every path that can
//     coexist with this one), so the ring covers (pv, clock] iff
//     clock-pv <= gcRingSize; when the ring has been overrun the committer
//     falls back to a full read-set re-walk, which is always sound.
//
//  3. Flat-combining group commit. When commitMu is free, a committer
//     TryLocks it and commits inline (stage 2 only). When it is contended,
//     committers push pooled request nodes onto a lock-free MPSC Treiber
//     stack and wait: first a short Gosched spin on the request's done
//     flag (on a loaded scheduler the combiner usually finishes the batch
//     within a few yields, so most waiters never hit a futex), then a park
//     on a per-request WaitGroup (a runtime semaphore — futex-backed on
//     Linux — not a mutex spin). Whoever wins the
//     gcCombining flag becomes the combiner: it takes commitMu once, drains
//     the stack in arrival order, and revalidates + installs every request
//     under that single lock acquisition with one clock bump per request.
//
// Combiner election and the lost-wakeup problem: parking requesters never
// retake commitMu themselves, so some thread must be guaranteed to drain any
// non-empty stack. The gcCombining flag provides that guarantee: every
// pusher CASes it false->true after pushing, and the winner combines. On
// exit the combiner stores the flag false and *then* re-reads the stack; a
// producer that pushed after the combiner's final swap either sees the flag
// already false (its own CAS wins and it combines) or pushed before the
// store, in which case the combiner's re-read sees its node and the combiner
// re-elects itself. Both sides use sequentially-consistent atomics, so the
// (push; CAS-fail) / (store-false; re-read) pair cannot both miss.
//
// Memory discipline: request nodes are recycled through a sync.Pool. The
// combiner publishes the result by storing the done flag and then calling
// r.wg.Done() (its last touch of r, after reading r.next); the owner always
// settles the WaitGroup with wg.Wait() — immediate when Done already ran —
// before recycling, so the happens-before edge through the WaitGroup makes
// reuse safe even when the owner observed the done flag first. Ring entries store vbox
// identities as uintptr (never pointers), so the ring pins no user data.
//
// Interaction with version GC: the combiner refreshes its GC horizon
// (gcHorizon) at the start of every chunk of at most gcMaxBatch requests,
// not per request. Reusing a slightly stale horizon is safe — the horizon
// only grows, and a smaller keepFrom merely retains more old versions.
//
// Conflicts the combiner detects are handed back through the request
// (ok=false, the conflicting *vbox) and attributed by the *owner* after it
// wakes — traceConflict charges the abort to the owner's own attempt span
// and the conflicting box's label, exactly as on the inline path.

const (
	// gcRingSize is the number of recently committed write-set summaries
	// retained for O(delta) in-lock revalidation (power of two).
	gcRingSize = 64
	// gcEntryKeys is the number of exact vbox identities one ring entry
	// stores; larger write sets degrade to bloom-only membership tests.
	gcEntryKeys = 8
	// gcMaxBatch caps how many requests the combiner installs per GC-horizon
	// refresh; each drained chunk records one batch-size histogram sample.
	gcMaxBatch = 64
)

// ringEntry summarizes one committed write set.
type ringEntry struct {
	version uint64
	bloom   uint64
	n       int16 // -1: bloom-only (write set exceeded gcEntryKeys)
	keys    [gcEntryKeys]uintptr
}

// commitRing is the fixed-size history of recent commits, indexed by
// version & (gcRingSize-1). All fields are guarded by commitMu.
type commitRing struct {
	entries [gcRingSize]ringEntry
	// summary is the OR of the live entries' blooms, maintained
	// incrementally (bits of overwritten entries go stale and are rebuilt
	// every gcRingSize records; stale bits only cause false positives,
	// which are conservative).
	summary      uint64
	sinceRebuild int
}

// touched reports whether any commit with version in (pv, cur] may have
// written the box with identity key/signature sig. Callers must have
// checked coverage (cur-pv <= gcRingSize). Exact-key entries answer
// precisely; bloom-only entries may report false positives.
func (r *commitRing) touched(key uintptr, sig uint64, pv, cur uint64) bool {
	for v := cur; v > pv; v-- {
		e := &r.entries[v&(gcRingSize-1)]
		if e.bloom&sig == 0 {
			continue
		}
		if e.n < 0 {
			return true
		}
		for i := int16(0); i < e.n; i++ {
			if e.keys[i] == key {
				return true
			}
		}
	}
	return false
}

// gcRequest is one parked commit request on the flat-combining stack.
type gcRequest struct {
	tx       *Tx
	preval   uint64 // clock value the owner pre-validated at
	next     *gcRequest
	wg       sync.WaitGroup
	done     atomic.Bool // set by the combiner just before wg.Done
	ok       bool
	conflict *vbox // combiner-detected conflicting box (may be nil on abort)
}

// gcSpin bounds the owner's pre-park yield loop: how many runtime.Gosched
// iterations to spend watching the done flag before falling back to the
// WaitGroup's futex. Yields are much cheaper than a park/unpark pair and
// give the combiner — often on the same P — a chance to finish the batch.
const gcSpin = 128

// gcPush pushes r onto the MPSC request stack.
func (s *STM) gcPush(r *gcRequest) {
	for {
		h := s.gcStack.Load()
		r.next = h
		if s.gcStack.CompareAndSwap(h, r) {
			return
		}
	}
}

// gcQueueLen counts currently queued requests (white-box tests only; the
// next pointers of published nodes are stable until a combiner swaps the
// stack out).
func (s *STM) gcQueueLen() int {
	n := 0
	for r := s.gcStack.Load(); r != nil; r = r.next {
		n++
	}
	return n
}

// commitTopGroup is the group-commit pipeline for update transactions.
// It returns whether the transaction committed; on false the caller
// retries. Stats for top-commit/abort totals stay with the caller.
func (s *STM) commitTopGroup(tx *Tx) bool {
	// Stage 1: out-of-lock pre-validation. The chaos validate hook fires
	// here — before the lock or the queue is touched — so forced
	// validation failures keep attributing as top-validation.
	if s.inj != nil {
		if s.inj.Fire(chaos.PointValidate, "") == chaos.ActAbort {
			s.Stats.add(tx.statShard, idxPrevalAborts, 1)
			tx.traceConflict(stmtrace.ReasonTopValidation, nil)
			tx.markSpan(stmtrace.PhaseValidate)
			return false
		}
	}
	pv := s.clock.Load()
	for _, b := range tx.globalReads {
		if b.currentVersion() > tx.readVersion {
			s.Stats.add(tx.statShard, idxPrevalAborts, 1)
			tx.traceConflict(stmtrace.ReasonTopValidation, b)
			tx.markSpan(stmtrace.PhaseValidate)
			return false
		}
	}
	tx.markSpan(stmtrace.PhaseValidate)

	// Uncontended fast path: take the lock inline and skip the queue.
	// Safe alongside the combiner protocol because every pusher
	// independently guarantees a combiner via the gcCombining CAS.
	if s.commitMu.TryLock() {
		cur := s.clock.Load()
		conflict, valid := s.revalidateLocked(tx, pv, cur)
		if valid && s.inj != nil && s.inj.Fire(chaos.PointCommit, "") == chaos.ActAbort {
			valid = false
		}
		if !valid {
			s.commitMu.Unlock()
			tx.traceConflict(stmtrace.ReasonTopValidation, conflict)
			return false
		}
		keepFrom := s.gcHorizon()
		s.reclaimBodies(keepFrom, tx.statShard)
		s.installLocked(tx, cur+1, keepFrom)
		s.commitMu.Unlock()
		s.Stats.add(tx.statShard, idxInlineCommits, 1)
		return true
	}

	// Contended path: enqueue, elect a combiner, park.
	r := s.getGCReq()
	r.tx = tx
	r.preval = pv
	r.wg.Add(1)
	s.gcPush(r)
	if s.gcCombining.CompareAndSwap(false, true) {
		s.combine()
	}
	for i := 0; i < gcSpin && !r.done.Load(); i++ {
		runtime.Gosched()
	}
	// Always settle the WaitGroup (immediate when Done already ran): it is
	// the recycle-safety edge — the combiner's wg.Done is its last touch.
	r.wg.Wait()
	ok, conflict := r.ok, r.conflict
	s.putGCReq(r)
	if !ok {
		// Attribution happens owner-side so the abort lands on the owner's
		// attempt span with the right goroutine, not the combiner's.
		tx.traceConflict(stmtrace.ReasonTopValidation, conflict)
		return false
	}
	s.Stats.add(tx.statShard, idxCombinedCommits, 1)
	return true
}

// combine drains the request stack under a single commitMu acquisition.
// The caller must have won the gcCombining flag.
func (s *STM) combine() {
	s.commitMu.Lock()
	if s.inj != nil {
		// A stall here is a stuck combiner: it holds the commit lock while
		// every queued committer stays parked on its request.
		s.inj.Fire(chaos.PointCombiner, "")
	}
	for {
		head := s.gcStack.Swap(nil)
		if head == nil {
			// Exit protocol (see the lost-wakeup argument above): clear the
			// flag, then re-check for producers that pushed concurrently.
			s.gcCombining.Store(false)
			if s.gcStack.Load() != nil && s.gcCombining.CompareAndSwap(false, true) {
				continue
			}
			break
		}
		// The Treiber stack yields LIFO order; reverse into arrival order
		// so a reader parked behind two related writers observes their
		// effects in submission order.
		var batch *gcRequest
		for head != nil {
			n := head.next
			head.next = batch
			batch = head
			head = n
		}
		s.processBatch(batch)
	}
	s.commitMu.Unlock()
}

// processBatch revalidates and installs each queued request, bumping the
// clock once per request. The GC horizon is refreshed every gcMaxBatch
// requests (a stale horizon only retains more versions, never fewer than
// an active snapshot needs).
func (s *STM) processBatch(batch *gcRequest) {
	for batch != nil {
		keepFrom := s.gcHorizon()
		// One bulk reclaim per chunk: every pooled node freed here is
		// available to the up-to-gcMaxBatch installs that follow under the
		// same lock acquisition.
		s.reclaimBodies(keepFrom, statShardHint())
		n := 0
		for batch != nil && n < gcMaxBatch {
			r := batch
			batch = r.next // read before Done: the owner may recycle r after Wait
			n++
			cur := s.clock.Load()
			conflict, valid := s.revalidateLocked(r.tx, r.preval, cur)
			if valid && s.inj != nil && s.inj.Fire(chaos.PointCommit, "") == chaos.ActAbort {
				valid = false
				conflict = nil
			}
			if valid {
				s.installLocked(r.tx, cur+1, keepFrom)
			}
			r.ok, r.conflict = valid, conflict
			r.done.Store(true) // publishes ok/conflict to a spinning owner
			r.wg.Done()        // last touch of r: the owner recycles it after Wait
		}
		s.Stats.add(statShardHint(), idxCombineBatches, 1)
		s.Stats.observeBatchSize(n)
	}
}

// revalidateLocked is stage 2: it re-checks tx's read set against commits
// newer than its pre-validation clock pv, under commitMu with cur ==
// s.clock. It returns valid=false and the conflicting box on failure.
func (s *STM) revalidateLocked(tx *Tx, pv, cur uint64) (conflict *vbox, valid bool) {
	if cur == pv {
		// Nothing committed since pre-validation; the read set is valid
		// as-is.
		s.Stats.add(tx.statShard, idxPrevalHits, 1)
		return nil, true
	}
	if cur-pv <= gcRingSize {
		// O(delta): only boxes intersecting commits in (pv, cur] can have
		// changed. The summary filter rejects most boxes in one AND; ring
		// hits are confirmed against the box's live version so bloom false
		// positives cannot abort a valid transaction.
		r := &s.gcRing
		sum := r.summary
		for _, b := range tx.globalReads {
			sig := boxSig(b)
			if sig&sum == 0 {
				continue
			}
			if r.touched(boxKey(b), sig, pv, cur) && b.currentVersion() > tx.readVersion {
				s.Stats.add(tx.statShard, idxPrevalHits, 1)
				return b, false
			}
		}
		s.Stats.add(tx.statShard, idxPrevalHits, 1)
		return nil, true
	}
	// Ring overrun: more than gcRingSize commits landed since
	// pre-validation. Fall back to the full re-walk, which is always sound.
	s.Stats.add(tx.statShard, idxPrevalFallbacks, 1)
	for _, b := range tx.globalReads {
		if b.currentVersion() > tx.readVersion {
			return b, false
		}
	}
	return nil, true
}

// installLocked publishes tx's write set at newVer, records the write set
// in the revalidation ring and bumps the clock — the clock store is last,
// which is what makes out-of-lock pre-validation sound. Must hold commitMu.
func (s *STM) installLocked(tx *Tx, newVer, keepFrom uint64) {
	// The combiner may be installing on behalf of a parked owner; the
	// owner's wg.Wait orders this store before its post-commit read.
	tx.commitVer = newVer
	e := &s.gcRing.entries[newVer&(gcRingSize-1)]
	e.version = newVer
	e.bloom = 0
	e.n = 0
	tx.writes.forEach(func(b *vbox, w writeEntry) {
		s.installBody(b, w, newVer, keepFrom, tx.statShard)
		sig := boxSig(b)
		e.bloom |= sig
		if e.n >= 0 {
			if int(e.n) < gcEntryKeys {
				e.keys[e.n] = boxKey(b)
				e.n++
			} else {
				e.n = -1
			}
		}
	})
	r := &s.gcRing
	r.summary |= e.bloom
	r.sinceRebuild++
	if r.sinceRebuild >= gcRingSize {
		// Amortized summary rebuild: drop bits that belong only to
		// overwritten entries. O(gcRingSize) once per gcRingSize commits.
		r.sinceRebuild = 0
		var sum uint64
		lo := uint64(1)
		if newVer > gcRingSize {
			lo = newVer - gcRingSize + 1
		}
		for v := lo; v <= newVer; v++ {
			sum |= r.entries[v&(gcRingSize-1)].bloom
		}
		r.summary = sum
	}
	s.clock.Store(newVer)
}
