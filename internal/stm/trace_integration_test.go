package stm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	stmtrace "autopn/internal/stm/trace"
)

// newTracedSTM builds an STM with a fresh tracer sampling every transaction.
func newTracedSTM(opts Options) (*STM, *stmtrace.Tracer) {
	tr := stmtrace.New(stmtrace.Options{})
	opts.Tracer = tr
	opts.TraceSampleRate = 1
	return New(opts), tr
}

// TestTraceTopValidationAttribution forces a deterministic top-level
// validation failure (the ISSUE's contended-writer acceptance scenario):
// the first attempt reads the box, then a second writer commits before the
// first attempt validates. The abort must be attributed to
// ReasonTopValidation at the labeled box.
func TestTraceTopValidationAttribution(t *testing.T) {
	s, tr := newTracedSTM(Options{})
	b := NewVBox(0).WithLabel("hot-counter")
	first := true
	err := s.Atomic(func(tx *Tx) error {
		v := b.Get(tx)
		if first {
			first = false
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = s.Atomic(func(tx2 *Tx) error {
					b.Modify(tx2, func(x int) int { return x + 1 })
					return nil
				})
			}()
			<-done
		}
		b.Put(tx, v+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Peek(); got != 2 {
		t.Fatalf("final value = %d, want 2", got)
	}
	if n := tr.AbortCount(stmtrace.ReasonTopValidation); n != 1 {
		t.Errorf("top-validation aborts = %d, want 1", n)
	}
	rep := tr.Conflicts(10)
	if rep.Reasons["top-validation"] != 1 {
		t.Errorf("report reasons = %v, want top-validation:1", rep.Reasons)
	}
	if len(rep.TopBoxes) != 1 || rep.TopBoxes[0].Box != "hot-counter" || rep.TopBoxes[0].Aborts != 1 {
		t.Errorf("hot boxes = %+v, want hot-counter with 1 abort", rep.TopBoxes)
	}
	// The aborted attempt and its successful retry both appear as spans.
	var aborted, committed bool
	for _, sp := range tr.Spans() {
		if sp.Parent != 0 {
			continue
		}
		switch {
		case sp.Reason == stmtrace.ReasonTopValidation && sp.Outcome == stmtrace.OutcomeAbort:
			aborted = true
		case sp.Attempt > 0 && sp.Outcome == stmtrace.OutcomeCommit:
			committed = true
		}
	}
	if !aborted || !committed {
		t.Errorf("span ring missing aborted attempt (%v) or committed retry (%v)", aborted, committed)
	}
}

// TestTraceLockFreeHelpAttribution is the same scenario under the
// lock-free commit strategy: the abort is detected by a helping thread and
// must be attributed to ReasonLockFreeHelp at the same box.
func TestTraceLockFreeHelpAttribution(t *testing.T) {
	s, tr := newTracedSTM(Options{LockFreeCommit: true})
	b := NewVBox(0).WithLabel("lf-counter")
	first := true
	err := s.Atomic(func(tx *Tx) error {
		v := b.Get(tx)
		if first {
			first = false
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = s.Atomic(func(tx2 *Tx) error {
					b.Modify(tx2, func(x int) int { return x + 1 })
					return nil
				})
			}()
			<-done
		}
		b.Put(tx, v+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Peek(); got != 2 {
		t.Fatalf("final value = %d, want 2", got)
	}
	if n := tr.AbortCount(stmtrace.ReasonLockFreeHelp); n != 1 {
		t.Errorf("commit-queue-helping aborts = %d, want 1", n)
	}
	rep := tr.Conflicts(10)
	if len(rep.TopBoxes) != 1 || rep.TopBoxes[0].Box != "lf-counter" {
		t.Errorf("hot boxes = %+v, want lf-counter", rep.TopBoxes)
	}
}

// TestTraceNestedSiblingAttribution forces two sibling children to
// read-modify-write the same box with both reads happening before either
// commit (a one-shot barrier that retries pass through), so exactly one
// sibling fails nested validation with ReasonNestedSibling.
func TestTraceNestedSiblingAttribution(t *testing.T) {
	s, tr := newTracedSTM(Options{})
	b := NewVBox(0).WithLabel("shared-nested")
	var arrived atomic.Int32
	gate := make(chan struct{})
	rmw := func(child *Tx) error {
		v := b.Get(child)
		if arrived.Add(1) == 2 {
			close(gate)
		}
		<-gate // retries sail through: gate is already closed
		b.Put(child, v+1)
		return nil
	}
	err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(rmw, rmw)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Peek(); got != 2 {
		t.Fatalf("final value = %d, want 2", got)
	}
	if n := tr.AbortCount(stmtrace.ReasonNestedSibling); n != 1 {
		t.Errorf("nested-vs-sibling aborts = %d, want 1", n)
	}
	rep := tr.Conflicts(10)
	if len(rep.TopBoxes) != 1 || rep.TopBoxes[0].Box != "shared-nested" {
		t.Errorf("hot boxes = %+v, want shared-nested", rep.TopBoxes)
	}
	if rep.TopBoxes[0].ByReason["nested-vs-sibling"] != 1 {
		t.Errorf("by-reason = %v", rep.TopBoxes[0].ByReason)
	}
}

// TestTraceNestedParentAttribution exercises the eager read-time abort: a
// reader child that began before a sibling's merge reads the box after the
// merge, observing an ancestor entry newer than its tree snapshot. The
// interleaving needs the writer's merge to land inside the reader's
// window, so the whole scenario retries until the abort is observed.
func TestTraceNestedParentAttribution(t *testing.T) {
	s, tr := newTracedSTM(Options{})
	b := NewVBox(0).WithLabel("eager-box")
	deadline := time.Now().Add(10 * time.Second)
	for tr.AbortCount(stmtrace.ReasonNestedParent) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no nested-vs-parent abort observed within deadline")
		}
		var began atomic.Int32
		gate := make(chan struct{})
		err := s.Atomic(func(tx *Tx) error {
			return tx.Parallel(
				func(child *Tx) error { // writer: wait for the reader to begin, then merge
					if began.Add(1) == 2 {
						close(gate)
					}
					<-gate
					b.Modify(child, func(x int) int { return x + 1 })
					return nil
				},
				func(child *Tx) error { // reader: begin, let the writer merge, then read
					if began.Add(1) == 2 {
						close(gate)
					}
					<-gate
					time.Sleep(500 * time.Microsecond)
					_ = b.Get(child)
					return nil
				},
			)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rep := tr.Conflicts(10)
	if rep.Reasons["nested-vs-parent"] == 0 {
		t.Errorf("report reasons = %v, want nested-vs-parent > 0", rep.Reasons)
	}
	found := false
	for _, box := range rep.TopBoxes {
		if box.Box == "eager-box" && box.ByReason["nested-vs-parent"] > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("eager-box not attributed in %+v", rep.TopBoxes)
	}
}

// TestTraceUserAbort checks that a transaction function returning an error
// is recorded as OutcomeUserAbort with ReasonUser (and no box).
func TestTraceUserAbort(t *testing.T) {
	s, tr := newTracedSTM(Options{})
	b := NewVBox(0)
	sentinel := errors.New("nope")
	if err := s.Atomic(func(tx *Tx) error {
		b.Put(tx, 1)
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := b.Peek(); got != 0 {
		t.Fatalf("aborted write leaked: %d", got)
	}
	if n := tr.AbortCount(stmtrace.ReasonUser); n != 1 {
		t.Errorf("user aborts = %d, want 1", n)
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Outcome != stmtrace.OutcomeUserAbort {
		t.Errorf("spans = %+v, want one user-abort span", spans)
	}
	if rep := tr.Conflicts(10); len(rep.TopBoxes) != 0 {
		t.Errorf("user abort should not attribute a box: %+v", rep.TopBoxes)
	}
}

// TestTraceNestedTreeParenting runs a conflict-free fanout and checks the
// whole tree is captured: one top span, three children parented under it.
func TestTraceNestedTreeParenting(t *testing.T) {
	s, tr := newTracedSTM(Options{})
	boxes := []*VBox[int]{NewVBox(0), NewVBox(0), NewVBox(0)}
	err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(c *Tx) error { boxes[0].Put(c, 1); return nil },
			func(c *Tx) error { boxes[1].Put(c, 2); return nil },
			func(c *Tx) error { boxes[2].Put(c, 3); return nil },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4 (top + 3 children): %+v", len(spans), spans)
	}
	var top stmtrace.SpanData
	children := 0
	for _, sp := range spans {
		if sp.Parent == 0 {
			top = sp
		}
	}
	if top.ID == 0 {
		t.Fatal("no top-level span captured")
	}
	for _, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		children++
		if sp.Parent != top.ID || sp.Root != top.ID || sp.Depth != 1 {
			t.Errorf("child span not parented under top: %+v (top %d)", sp, top.ID)
		}
		if sp.Outcome != stmtrace.OutcomeCommit {
			t.Errorf("conflict-free child did not commit: %+v", sp)
		}
	}
	if children != 3 {
		t.Errorf("got %d child spans, want 3", children)
	}
	if top.Outcome != stmtrace.OutcomeCommit {
		t.Errorf("top span outcome = %v, want commit", top.Outcome)
	}
}

// TestTraceSamplingDisabledCapturesNothing checks the default-off gate.
func TestTraceSamplingDisabledCapturesNothing(t *testing.T) {
	tr := stmtrace.New(stmtrace.Options{})
	s := New(Options{Tracer: tr}) // rate defaults to 0
	b := NewVBox(0)
	for i := 0; i < 10; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			b.Modify(tx, func(x int) int { return x + 1 })
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Sampled() != 0 || tr.SpanCount() != 0 {
		t.Errorf("disabled tracer captured sampled=%d spans=%d", tr.Sampled(), tr.SpanCount())
	}
}

// TestTraceSampleRatePartial checks that a mid-range rate samples some but
// not all transactions (statistically: 2000 draws at 0.5 landing on 0 or
// 2000 is beyond astronomically unlikely).
func TestTraceSampleRatePartial(t *testing.T) {
	tr := stmtrace.New(stmtrace.Options{})
	s := New(Options{Tracer: tr, TraceSampleRate: 0.5})
	b := NewVBox(0)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			b.Modify(tx, func(x int) int { return x + 1 })
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Sampled()
	if got == 0 || got == n {
		t.Errorf("rate 0.5 sampled %d of %d transactions", got, n)
	}
	if got < n/4 || got > 3*n/4 {
		t.Errorf("rate 0.5 sampled %d of %d, far outside expectation", got, n)
	}
}

// TestTracerEnableDisableRace toggles the tracer and the sampling rate
// while transactions (including nested fanouts) run — the -race gate for
// the SetTracer/SetTraceSampleRate hot-path interaction. In-flight sampled
// trees must keep reporting to the tracer they started on.
func TestTracerEnableDisableRace(t *testing.T) {
	s := New(Options{})
	tr := stmtrace.New(stmtrace.Options{MaxSpans: 256})
	boxes := make([]*VBox[int], 8)
	for i := range boxes {
		boxes[i] = NewVBox(0).WithLabel("box")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Atomic(func(tx *Tx) error {
					if i%4 == 0 {
						return tx.Parallel(
							func(c *Tx) error {
								boxes[(g+i)%8].Modify(c, func(x int) int { return x + 1 })
								return nil
							},
							func(c *Tx) error {
								boxes[(g+i+1)%8].Modify(c, func(x int) int { return x + 1 })
								return nil
							},
						)
					}
					boxes[(g*2+i)%8].Modify(tx, func(x int) int { return x + 1 })
					return nil
				})
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			s.SetTracer(tr)
			s.SetTraceSampleRate(1)
		case 1:
			s.SetTraceSampleRate(0.25)
		case 2:
			s.SetTraceSampleRate(0)
		case 3:
			s.SetTracer(nil)
		}
		if i%16 == 0 {
			tr.Conflicts(5)
			tr.Spans()
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
}
