package stm

import (
	"sync"
	"testing"
	"time"

	"autopn/internal/chaos"
	"autopn/internal/sched"
	stmtrace "autopn/internal/stm/trace"
)

// recordingSched is a fake Scheduler that records every Admit/Leave so the
// tests can assert exactly which attempts the retry loop gated and with
// which conflict key.
type recordingSched struct {
	mu     sync.Mutex
	admits []uintptr
	leaves int
	lane   int // lane returned by Admit (-1 simulates a bypass)
}

func (r *recordingSched) Admit(key uintptr) int {
	r.mu.Lock()
	r.admits = append(r.admits, key)
	r.mu.Unlock()
	return r.lane
}

func (r *recordingSched) Leave(lane int) {
	r.mu.Lock()
	r.leaves++
	r.mu.Unlock()
}

func (r *recordingSched) snapshot() ([]uintptr, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uintptr(nil), r.admits...), r.leaves
}

// schedStrategies enumerates the three commit strategies; the scheduler
// must behave identically on the retry path of each.
var schedStrategies = []struct {
	name string
	opts Options
}{
	{"serialized", Options{DisableGroupCommit: true}},
	{"group", Options{}},
	{"lockfree", Options{LockFreeCommit: true}},
}

// TestSchedulerHintGatesFirstAttempt: a declared intent key gates attempt
// zero (Admit before the attempt, Leave after), and an unhinted
// conflict-free transaction never touches the scheduler.
func TestSchedulerHintGatesFirstAttempt(t *testing.T) {
	for _, st := range schedStrategies {
		t.Run(st.name, func(t *testing.T) {
			rs := &recordingSched{lane: 0}
			opts := st.opts
			opts.Scheduler = rs
			s := New(opts)
			box := NewVBox(0)

			if err := s.Atomic(func(tx *Tx) error {
				box.Put(tx, 1)
				return nil
			}); err != nil {
				t.Fatalf("unhinted atomic: %v", err)
			}
			admits, leaves := rs.snapshot()
			if len(admits) != 0 || leaves != 0 {
				t.Fatalf("unhinted conflict-free tx touched scheduler: admits %v leaves %d", admits, leaves)
			}

			key := box.ConflictKey()
			if err := s.AtomicHint(key, func(tx *Tx) error {
				box.Put(tx, 2)
				return nil
			}); err != nil {
				t.Fatalf("hinted atomic: %v", err)
			}
			admits, leaves = rs.snapshot()
			if len(admits) != 1 || admits[0] != key {
				t.Fatalf("hinted attempt 0 admits = %v, want [%#x]", admits, key)
			}
			if leaves != 1 {
				t.Fatalf("leaves = %d, want 1 (lane 0 was granted)", leaves)
			}
			if got := box.Peek(); got != 2 {
				t.Fatalf("box = %d, want 2", got)
			}
		})
	}
}

// TestSchedulerBypassSkipsLeave: when Admit returns -1 the retry loop must
// not call Leave — a bypassed attempt holds no lane token.
func TestSchedulerBypassSkipsLeave(t *testing.T) {
	rs := &recordingSched{lane: -1}
	s := New(Options{Scheduler: rs})
	box := NewVBox(0)
	if err := s.AtomicHint(box.ConflictKey(), func(tx *Tx) error {
		box.Put(tx, 1)
		return nil
	}); err != nil {
		t.Fatalf("atomic: %v", err)
	}
	admits, leaves := rs.snapshot()
	if len(admits) != 1 || leaves != 0 {
		t.Fatalf("bypassed attempt: admits %v leaves %d, want 1 admit and 0 leaves", admits, leaves)
	}
}

// forceConflict makes tx's outer commit fail deterministically: it reads
// box, then commits a separate top-level transaction writing the same box
// on the same goroutine, so the outer validation finds a newer version.
// Works identically on all three strategies (on the lock-free path the
// single-threaded owner helps its own queue and invalidates itself).
func forceConflict(s *STM, tx *Tx, box *VBox[int]) {
	_ = box.Get(tx)
	box.Put(tx, box.Get(tx)+1)
	if err := s.Atomic(func(inner *Tx) error {
		box.Put(inner, box.Get(inner)+100)
		return nil
	}); err != nil {
		panic(err)
	}
}

// TestSchedulerLearnsConflictKey: an unhinted transaction's first attempt
// proceeds ungated; after the abort, the retry loop learns the attributed
// box and gates the retry on its key — on every commit strategy,
// exercising owner-side attribution (serialized, group) and the
// helper-to-owner conflict handoff (lock-free).
func TestSchedulerLearnsConflictKey(t *testing.T) {
	for _, st := range schedStrategies {
		t.Run(st.name, func(t *testing.T) {
			rs := &recordingSched{lane: 0}
			opts := st.opts
			opts.Scheduler = rs
			opts.Backoff = func(int) {} // keep the retry immediate
			s := New(opts)
			box := NewVBox(0).WithLabel("hot")

			conflicted := false
			if err := s.Atomic(func(tx *Tx) error {
				if !conflicted {
					conflicted = true
					forceConflict(s, tx, box)
					return nil
				}
				box.Put(tx, box.Get(tx)+1)
				return nil
			}); err != nil {
				t.Fatalf("atomic: %v", err)
			}

			admits, leaves := rs.snapshot()
			key := box.ConflictKey()
			if len(admits) != 1 || admits[0] != key {
				t.Fatalf("admits = %v, want exactly [%#x] (learned on retry only)", admits, key)
			}
			if leaves != 1 {
				t.Fatalf("leaves = %d, want 1", leaves)
			}
			if got := box.Peek(); got != 101 {
				t.Fatalf("box = %d, want 101 (inner +100, retried outer +1)", got)
			}
		})
	}
}

// TestSchedulerFeedsHotBoxTableUnsampled: with a scheduler attached,
// conflict attribution reaches the tracer's hot-box table even at sample
// rate zero — the controller needs live contention, not a sampled sliver.
// Without a scheduler the unsampled path must stay byte-identical to
// before: no recording.
func TestSchedulerFeedsHotBoxTableUnsampled(t *testing.T) {
	run := func(withSched bool) (*stmtrace.Tracer, *VBox[int]) {
		tr := stmtrace.New(stmtrace.Options{})
		opts := Options{Tracer: tr, Backoff: func(int) {}}
		if withSched {
			opts.Scheduler = &recordingSched{lane: -1}
		}
		s := New(opts)
		box := NewVBox(0).WithLabel("fed")
		conflicted := false
		if err := s.Atomic(func(tx *Tx) error {
			if !conflicted {
				conflicted = true
				forceConflict(s, tx, box)
				return nil
			}
			box.Put(tx, box.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatalf("atomic: %v", err)
		}
		return tr, box
	}

	tr, box := run(true)
	if tr.Sampled() != 0 {
		t.Fatalf("sample rate 0 sampled %d spans", tr.Sampled())
	}
	hot := tr.HotBoxes(0)
	found := false
	for _, hb := range hot {
		if hb.Key == box.ConflictKey() {
			found = true
			if hb.Label != "fed" {
				t.Errorf("hot box label = %q, want %q", hb.Label, "fed")
			}
			if hb.Aborts == 0 {
				t.Errorf("hot box has zero aborts")
			}
		}
	}
	if !found {
		t.Fatalf("conflicted box missing from hot-box table: %+v", hot)
	}

	trOff, _ := run(false)
	if got := trOff.HotBoxes(0); len(got) != 0 {
		t.Fatalf("scheduler-off unsampled conflict fed the table: %+v", got)
	}
}

// TestSchedulerSerializesHotDomain: end-to-end with the real scheduler —
// a promoted hot box funnels hinted writers through one lane, and the
// result is still exactly correct under concurrency on every strategy.
func TestSchedulerSerializesHotDomain(t *testing.T) {
	for _, st := range schedStrategies {
		t.Run(st.name, func(t *testing.T) {
			sch := sched.New(sched.Options{Lanes: 4, MaxWait: 50 * time.Millisecond})
			opts := st.opts
			opts.Scheduler = sch
			s := New(opts)
			box := NewVBox(0).WithLabel("hot")
			key := box.ConflictKey()
			if lane := sch.Promote(key, "hot"); lane < 0 {
				t.Fatalf("promote failed")
			}

			const workers, perWorker = 8, 50
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						if err := s.AtomicHint(key, func(tx *Tx) error {
							box.Put(tx, box.Get(tx)+1)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if got := box.Peek(); got != workers*perWorker {
				t.Fatalf("box = %d, want %d", got, workers*perWorker)
			}
			st := sch.Snapshot()
			if st.Admitted == 0 {
				t.Fatalf("no admissions through the hot lane: %+v", st)
			}
		})
	}
}

// TestChaosSchedulerLaneStallDoesNotWedgeOtherLanes: a committer stalled at
// PointCommit holds its lane token (and, on the serialized path, the global
// commit lock). Transactions on other lanes must keep being admitted and —
// when they don't need the commit lock — keep completing; same-lane peers
// must bypass after the bounded wait instead of parking forever.
func TestChaosSchedulerLaneStallDoesNotWedgeOtherLanes(t *testing.T) {
	inj := chaos.New(chaos.Options{
		Seed: chaosSeed(t),
		Rules: []chaos.Rule{{
			Name:    "stall",
			Point:   chaos.PointCommit,
			Trigger: chaos.Nth(1),
			Action:  chaos.ActStall,
		}},
	})
	defer inj.Close()

	sch := sched.New(sched.Options{Lanes: 4, MaxWait: 5 * time.Millisecond})
	s := New(Options{DisableGroupCommit: true, FaultInjector: inj, Scheduler: sch})

	// Find two boxes whose domains land on different lanes.
	boxA := NewVBox(0).WithLabel("laneA")
	laneA := sch.Promote(boxA.ConflictKey(), "laneA")
	var boxB *VBox[int]
	for i := 0; i < 64; i++ {
		b := NewVBox(0).WithLabel("laneB")
		if lane := sch.Promote(b.ConflictKey(), "laneB"); lane != laneA {
			boxB = b
			break
		}
		sch.Demote(b.ConflictKey())
	}
	if boxB == nil {
		t.Fatalf("could not find a second box hashing to a different lane")
	}

	// Writer 1 stalls at PointCommit holding lane A's token and commitMu.
	w1done := make(chan error, 1)
	go func() {
		w1done <- s.AtomicHint(boxA.ConflictKey(), func(tx *Tx) error {
			boxA.Put(tx, boxA.Get(tx)+1)
			return nil
		})
	}()
	waitFor(t, "writer stalled at PointCommit", func() bool { return inj.StallDepth("stall") == 1 })

	// Zero-write transactions on lane B commit without the lock; they must
	// all be admitted and complete while the stall is held.
	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		for i := 0; i < 50; i++ {
			if err := s.AtomicHint(boxB.ConflictKey(), func(tx *Tx) error {
				_ = boxB.Get(tx)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-bDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("lane-B transactions wedged behind a lane-A stall")
	}

	// A same-lane peer parks behind the held token, then bypasses after
	// MaxWait (it still blocks on the commit lock until resume — that is
	// the injected fault, not a scheduler wedge).
	w2done := make(chan error, 1)
	go func() {
		w2done <- s.AtomicHint(boxA.ConflictKey(), func(tx *Tx) error {
			boxA.Put(tx, boxA.Get(tx)+1)
			return nil
		})
	}()
	waitFor(t, "same-lane peer bypassed the held token", func() bool { return sch.Snapshot().BypassWait >= 1 })

	inj.Resume("stall")
	if err := <-w1done; err != nil {
		t.Fatalf("stalled writer: %v", err)
	}
	if err := <-w2done; err != nil {
		t.Fatalf("bypassed writer: %v", err)
	}
	if got := boxA.Peek(); got != 2 {
		t.Fatalf("boxA = %d, want 2", got)
	}
	st := sch.Snapshot()
	if st.BypassWait == 0 {
		t.Fatalf("bounded wait never triggered: %+v", st)
	}
	for i := 0; i < st.Lanes; i++ {
		if d := sch.LaneDepth(i); d != 0 {
			t.Fatalf("lane %d depth = %d after drain, want 0", i, d)
		}
	}
}
