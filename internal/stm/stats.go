package stm

import (
	"sync/atomic"

	"autopn/internal/obs"
)

// Sharded transaction counters.
//
// The previous Stats was a single struct of atomic.Uint64 fields packed
// into two cache lines; every committing core bounced those lines around
// the machine (false *and* true sharing), which at high (t) showed up as a
// fixed per-commit cost — precisely the kind of runtime-induced overhead
// that flattens the throughput surface the tuner searches. Counters are now
// striped across statShardCount cache-line-padded blocks; each Tx carries a
// shard affinity assigned at Tx-object creation, and because Tx objects are
// recycled through a per-P sync.Pool, a given core keeps hammering the same
// shard — its own cache line — while Snapshot() pays the (cold-path) cost
// of summing all shards.

// statIdx enumerates the counters within a shard block.
type statIdx int

const (
	idxTopCommits statIdx = iota
	idxTopAborts
	idxReadOnlyTops
	idxNestedCommits
	idxNestedAborts
	idxUserAborts
	idxVersionsWritten
	idxLivelockTrips
	idxCtxCancels
	// Group-commit pipeline counters (see groupcommit.go).
	idxPrevalAborts    // aborts caught by out-of-lock pre-validation
	idxPrevalHits      // in-lock revalidations answered by the delta ring
	idxPrevalFallbacks // in-lock revalidations that re-walked the read set
	idxInlineCommits   // update commits via the uncontended TryLock path
	idxCombinedCommits // update commits installed by a combiner batch
	idxCombineBatches  // combiner drain chunks (batch sizes: BatchSizes)
	// Version-record pool counters (see bodypool.go).
	idxBodyPoolHits   // word-body installs served from the free list
	idxBodyPoolMisses // word-body installs that had to allocate
	idxBodyRetired    // bodies truncated into the grace-period limbo path
	numStatCounters
)

// statShardHint picks a stripe for counters bumped outside any transaction
// (e.g. a cancellation observed before begin). Cold path; the exact
// distribution barely matters.
func statShardHint() uint32 { return txSeq.Load() }

// statShardCount is the number of counter stripes (power of two).
const statShardCount = 16

// statShard is one stripe: all counters of one affinity group, padded to
// the next multiple of 128 bytes (cache-line pairs, covering adjacent-line
// prefetchers) so increments on different shards never share a line.
// numStatCounters must stay <= 24 or the padding underflows.
type statShard struct {
	c [numStatCounters]atomic.Uint64
	_ [192 - 8*numStatCounters]byte
}

// Stats holds cumulative transaction counters, striped to avoid contention
// on the commit path. Mutation happens only inside the STM; readers use the
// accessor methods or Snapshot, which aggregate across stripes. All
// operations are safe for concurrent use.
type Stats struct {
	shards [statShardCount]statShard

	// batchSizes samples the number of requests each combiner drain chunk
	// installed (see groupcommit.go). Set once by stm.New, before any
	// transaction can run; nil on a zero-value Stats.
	batchSizes *obs.Histogram
}

// initBatchHistogram attaches the combiner batch-size histogram. Called
// once from stm.New before the STM is shared.
func (s *Stats) initBatchHistogram() {
	s.batchSizes = obs.NewHistogram(0)
}

// observeBatchSize records one combiner drain chunk of n requests.
func (s *Stats) observeBatchSize(n int) {
	if s.batchSizes != nil {
		s.batchSizes.Observe(float64(n))
	}
}

// BatchSizes returns the combiner batch-size histogram (nil on a
// zero-value Stats that never belonged to an STM).
func (s *Stats) BatchSizes() *obs.Histogram { return s.batchSizes }

// add bumps counter idx on the stripe selected by shard.
func (s *Stats) add(shard uint32, idx statIdx, n uint64) {
	s.shards[shard&(statShardCount-1)].c[idx].Add(n)
}

// sum aggregates counter idx across all stripes. Each stripe is read
// atomically; the total is therefore a linearizable-per-stripe, monotone
// view — the same guarantee a single atomic counter read under concurrent
// increments gave.
func (s *Stats) sum(idx statIdx) uint64 {
	var t uint64
	for i := range s.shards {
		t += s.shards[i].c[idx].Load()
	}
	return t
}

// TopCommits returns the number of top-level commits (read-only + update).
func (s *Stats) TopCommits() uint64 { return s.sum(idxTopCommits) }

// TopAborts returns the number of top-level validation failures (retried).
func (s *Stats) TopAborts() uint64 { return s.sum(idxTopAborts) }

// ReadOnlyTops returns the subset of TopCommits with an empty write set.
func (s *Stats) ReadOnlyTops() uint64 { return s.sum(idxReadOnlyTops) }

// NestedCommits returns the number of nested-transaction merges.
func (s *Stats) NestedCommits() uint64 { return s.sum(idxNestedCommits) }

// NestedAborts returns the number of nested conflicts (retried).
func (s *Stats) NestedAborts() uint64 { return s.sum(idxNestedAborts) }

// UserAborts returns the number of transactions abandoned by user error.
func (s *Stats) UserAborts() uint64 { return s.sum(idxUserAborts) }

// VersionsWritten returns the number of bodies installed at top commits.
func (s *Stats) VersionsWritten() uint64 { return s.sum(idxVersionsWritten) }

// LivelockTrips returns the number of transactions that exceeded their
// retry budget or livelock threshold (at most one trip per transaction).
func (s *Stats) LivelockTrips() uint64 { return s.sum(idxLivelockTrips) }

// CtxCancels returns the number of times a context cancellation stopped a
// transaction (or one of its nested children) at a retry boundary.
func (s *Stats) CtxCancels() uint64 { return s.sum(idxCtxCancels) }

// PrevalAborts returns the number of update-commit aborts caught by
// out-of-lock pre-validation — conflicts resolved without ever touching
// the commit lock or the request queue.
func (s *Stats) PrevalAborts() uint64 { return s.sum(idxPrevalAborts) }

// PrevalHits returns the number of in-lock revalidations answered by the
// O(delta) recent-commit ring (including the cheapest case, an unchanged
// clock) instead of a full read-set re-walk.
func (s *Stats) PrevalHits() uint64 { return s.sum(idxPrevalHits) }

// PrevalFallbacks returns the number of in-lock revalidations that had to
// re-walk the whole read set because more than the ring's capacity of
// commits landed since pre-validation.
func (s *Stats) PrevalFallbacks() uint64 { return s.sum(idxPrevalFallbacks) }

// InlineCommits returns the number of update commits that took the
// uncontended TryLock fast path.
func (s *Stats) InlineCommits() uint64 { return s.sum(idxInlineCommits) }

// CombinedCommits returns the number of update commits installed on their
// owners' behalf by a flat-combining combiner.
func (s *Stats) CombinedCommits() uint64 { return s.sum(idxCombinedCommits) }

// CombineBatches returns the number of combiner drain chunks; the per-chunk
// request counts are sampled in BatchSizes.
func (s *Stats) CombineBatches() uint64 { return s.sum(idxCombineBatches) }

// BodyPoolHits returns the number of version-record installations served
// from the body free list instead of the allocator (word boxes only; see
// bodypool.go).
func (s *Stats) BodyPoolHits() uint64 { return s.sum(idxBodyPoolHits) }

// BodyPoolMisses returns the number of word-box version-record
// installations that had to allocate because the free list was empty —
// pool warm-up, or reclamation held back by an old pinned snapshot.
func (s *Stats) BodyPoolMisses() uint64 { return s.sum(idxBodyPoolMisses) }

// BodyRetired returns the number of version records truncated off chains
// into the epoch-based reclamation path (the grace-period limbo ring).
func (s *Stats) BodyRetired() uint64 { return s.sum(idxBodyRetired) }

// Snapshot returns a plain-value copy of the aggregated counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		TopCommits:      s.TopCommits(),
		TopAborts:       s.TopAborts(),
		ReadOnlyTops:    s.ReadOnlyTops(),
		NestedCommits:   s.NestedCommits(),
		NestedAborts:    s.NestedAborts(),
		UserAborts:      s.UserAborts(),
		VersionsWritten: s.VersionsWritten(),
		LivelockTrips:   s.LivelockTrips(),
		CtxCancels:      s.CtxCancels(),
		PrevalAborts:    s.PrevalAborts(),
		PrevalHits:      s.PrevalHits(),
		PrevalFallbacks: s.PrevalFallbacks(),
		InlineCommits:   s.InlineCommits(),
		CombinedCommits: s.CombinedCommits(),
		CombineBatches:  s.CombineBatches(),
		BodyPoolHits:    s.BodyPoolHits(),
		BodyPoolMisses:  s.BodyPoolMisses(),
		BodyRetired:     s.BodyRetired(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	TopCommits      uint64
	TopAborts       uint64
	ReadOnlyTops    uint64
	NestedCommits   uint64
	NestedAborts    uint64
	UserAborts      uint64
	VersionsWritten uint64
	LivelockTrips   uint64
	CtxCancels      uint64
	PrevalAborts    uint64
	PrevalHits      uint64
	PrevalFallbacks uint64
	InlineCommits   uint64
	CombinedCommits uint64
	CombineBatches  uint64
	BodyPoolHits    uint64
	BodyPoolMisses  uint64
	BodyRetired     uint64
}
