package stm

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"autopn/internal/chaos"
	stmtrace "autopn/internal/stm/trace"
)

// chaosSeed returns the soak seed, overridable via CHAOS_SEED (the knob
// `make chaos` and the CI chaos-smoke job pin).
func chaosSeed(t *testing.T) uint64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		return n
	}
	return 1
}

// TestChaosForcedValidationAbortSerialized: an injected validation abort on
// the default commit path (fired at out-of-lock pre-validation) looks
// exactly like a real conflict — retried once, then committed — and is
// attributed as top-validation.
func TestChaosForcedValidationAbortSerialized(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "val", Point: chaos.PointValidate, Trigger: chaos.Nth(1), Action: chaos.ActAbort},
	}})
	defer inj.Close()
	tr := stmtrace.New(stmtrace.Options{})
	s := New(Options{FaultInjector: inj, Tracer: tr, TraceSampleRate: 1})
	b := NewVBox(0)
	if err := s.Atomic(func(tx *Tx) error { b.Put(tx, b.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.TopAborts(); got != 1 {
		t.Errorf("TopAborts = %d, want 1", got)
	}
	if got := s.Stats.TopCommits(); got != 1 {
		t.Errorf("TopCommits = %d, want 1", got)
	}
	if got := readCommitted(s, b); got != 1 {
		t.Errorf("box = %d, want 1", got)
	}
	if got := tr.AbortCount(stmtrace.ReasonTopValidation); got != 1 {
		t.Errorf("AbortCount(top-validation) = %d, want 1", got)
	}
	if n := inj.Injected("val"); n != 1 {
		t.Errorf("Injected = %d, want 1", n)
	}
}

// TestChaosForcedValidationAbortLockFree: same forced abort on the
// lock-free path (pre-enqueue).
func TestChaosForcedValidationAbortLockFree(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "val", Point: chaos.PointValidate, Trigger: chaos.Nth(1), Action: chaos.ActAbort},
	}})
	defer inj.Close()
	s := New(Options{LockFreeCommit: true, FaultInjector: inj})
	b := NewVBox(0)
	if err := s.Atomic(func(tx *Tx) error { b.Put(tx, b.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.TopAborts(); got != 1 {
		t.Errorf("TopAborts = %d, want 1", got)
	}
	if got := readCommitted(s, b); got != 1 {
		t.Errorf("box = %d, want 1", got)
	}
}

// TestChaosLabeledReadAbort: a read-site rule fires only on the labeled
// box, for top-level and nested readers alike.
func TestChaosLabeledReadAbort(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "hot", Point: chaos.PointRead, Label: "hot", Trigger: chaos.Nth(1), Action: chaos.ActAbort},
	}})
	defer inj.Close()
	s := New(Options{FaultInjector: inj})
	hot := NewVBox(0).WithLabel("hot")
	cold := NewVBox(0).WithLabel("cold")
	if err := s.Atomic(func(tx *Tx) error {
		cold.Put(tx, cold.Get(tx)+1) // cold label never matches
		hot.Put(tx, hot.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.TopAborts(); got != 1 {
		t.Errorf("TopAborts = %d, want 1", got)
	}
	if got, want := readCommitted(s, hot), 1; got != want {
		t.Errorf("hot = %d, want %d", got, want)
	}
}

// TestChaosCommitQueueHelpingAttribution is the deterministic single-abort
// construction for the fifth abort reason, commit-queue-helping: a chaos
// stall preempts committer A between enqueueing its request and helping,
// a second writer invalidates A's snapshot, and a third committer's helper
// finds A's pending request invalid — the winning abort CAS attributes the
// conflict. Exactly one commit-queue-helping abort, on box "X".
func TestChaosCommitQueueHelpingAttribution(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		// Owner arrival #2 is transaction A (B commits first, see below).
		{Name: "stall-owner", Point: chaos.PointHelping, Label: "owner", Trigger: chaos.Nth(2), Action: chaos.ActStall},
	}})
	defer inj.Close()
	tr := stmtrace.New(stmtrace.Options{})
	s := New(Options{LockFreeCommit: true, Tracer: tr, TraceSampleRate: 1})
	s.inj = inj // arm hooks after tracer wiring; equivalent to Options.FaultInjector
	x := NewVBox(0).WithLabel("X")
	y := NewVBox(0).WithLabel("Y")

	readX := make(chan struct{})
	invalidated := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		first := true
		aDone <- s.Atomic(func(tx *Tx) error {
			_ = x.Get(tx) // read set: X
			if first {
				first = false
				close(readX)
				<-invalidated // hold the attempt until B committed
			}
			y.Put(tx, y.Get(tx)+1)
			return nil
		})
	}()

	// B: owner arrival #1 — commits a new version of X, invalidating A.
	<-readX
	if err := s.Atomic(func(tx *Tx) error { x.Put(tx, x.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}
	close(invalidated)

	// A proceeds to commit, enqueues its request, and stalls as owner #2.
	deadline := time.Now().Add(10 * time.Second)
	for inj.StallDepth("stall-owner") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("A never stalled at the owner hook")
		}
		time.Sleep(time.Millisecond)
	}

	// C: owner arrival #3 — its helping pass finds A's pending request,
	// validates it against X's newer version, and wins the abort CAS.
	if err := s.Atomic(func(tx *Tx) error { y.Put(tx, y.Get(tx)+10); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := tr.AbortCount(stmtrace.ReasonLockFreeHelp); got != 1 {
		t.Fatalf("AbortCount(commit-queue-helping) = %d, want exactly 1 before A resumes", got)
	}

	// Release A: it observes the aborted request, retries, and commits.
	inj.Resume("stall-owner")
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
	if got := tr.AbortCount(stmtrace.ReasonLockFreeHelp); got != 1 {
		t.Errorf("AbortCount(commit-queue-helping) = %d, want 1", got)
	}
	if got := s.Stats.TopAborts(); got != 1 {
		t.Errorf("TopAborts = %d, want 1", got)
	}
	if got := readCommitted(s, y); got != 11 {
		t.Errorf("Y = %d, want 11", got)
	}
	// The attribution names the conflicting box.
	rep := tr.Conflicts(4)
	found := false
	for _, hb := range rep.TopBoxes {
		if hb.Box == "X" {
			found = true
		}
	}
	if !found {
		t.Errorf("hot boxes missing X: %+v", rep.TopBoxes)
	}
	// And the chaos log shows the stall that made it deterministic.
	if log := inj.FormatLog(); log == "" {
		t.Error("empty chaos event log")
	}
}

// TestChaosScheduleReproducibleSTM drives a deterministic single-goroutine
// workload under a probabilistic seeded schedule twice and asserts the two
// injectors' fault sequences are byte-identical.
func TestChaosScheduleReproducibleSTM(t *testing.T) {
	seed := chaosSeed(t)
	run := func() (string, uint64) {
		inj := chaos.New(chaos.Options{Seed: seed, Rules: []chaos.Rule{
			{Name: "p-val", Point: chaos.PointValidate, Trigger: chaos.Prob(0.25), Action: chaos.ActAbort},
			{Name: "p-read", Point: chaos.PointRead, Label: "k", Trigger: chaos.Prob(0.10), Action: chaos.ActAbort},
		}})
		defer inj.Close()
		s := New(Options{FaultInjector: inj})
		b := NewVBox(0).WithLabel("k")
		for i := 0; i < 200; i++ {
			if err := s.Atomic(func(tx *Tx) error { b.Put(tx, b.Get(tx)+1); return nil }); err != nil {
				t.Fatal(err)
			}
		}
		if got := readCommitted(s, b); got != 200 {
			t.Fatalf("box = %d, want 200", got)
		}
		return inj.FormatLog(), s.Stats.TopAborts()
	}
	log1, aborts1 := run()
	log2, aborts2 := run()
	if log1 == "" {
		t.Fatal("probabilistic schedule injected nothing in 200 transactions")
	}
	if log1 != log2 {
		t.Fatalf("seed %d not byte-identical across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", seed, log1, log2)
	}
	if aborts1 != aborts2 {
		t.Errorf("abort counts diverged: %d vs %d", aborts1, aborts2)
	}
}

// chaosSoak runs a concurrent increment workload under a probabilistic
// fault schedule and checks the invariant that survives any interleaving
// of faults: the committed counter equals the number of successful Atomic
// calls. Runs under -race via `make chaos`.
func chaosSoak(t *testing.T, opts Options) {
	inj := chaos.New(chaos.Options{Seed: chaosSeed(t), Rules: []chaos.Rule{
		{Name: "begin-delay", Point: chaos.PointBegin, Trigger: chaos.Prob(0.02), Action: chaos.ActDelay, Delay: 200 * time.Microsecond},
		{Name: "val-abort", Point: chaos.PointValidate, Trigger: chaos.Prob(0.05), Action: chaos.ActAbort},
		{Name: "commit-delay", Point: chaos.PointCommit, Trigger: chaos.Prob(0.03), Action: chaos.ActDelay, Delay: 100 * time.Microsecond},
		{Name: "helper-delay", Point: chaos.PointHelping, Label: "helper", Trigger: chaos.Prob(0.01), Action: chaos.ActDelay, Delay: 50 * time.Microsecond},
		{Name: "nested-val-abort", Point: chaos.PointNestedValidate, Trigger: chaos.Prob(0.05), Action: chaos.ActAbort},
		{Name: "storm", Point: chaos.PointNestedCommit, Trigger: chaos.Prob(0.05), Action: chaos.ActDelay, Delay: 100 * time.Microsecond},
	}})
	defer inj.Close()
	opts.FaultInjector = inj
	s := New(opts)
	counter := NewVBox(0)
	boxes := make([]*VBox[int], 8)
	for i := range boxes {
		boxes[i] = NewVBox(0)
	}
	const workers, perWorker = 8, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := s.Atomic(func(tx *Tx) error {
					counter.Put(tx, counter.Get(tx)+1)
					// Half the transactions fan out nested children that
					// touch disjoint boxes plus one shared one.
					if i%2 == 0 {
						return tx.Parallel(
							func(c *Tx) error { boxes[w%8].Put(c, boxes[w%8].Get(c)+1); return nil },
							func(c *Tx) error { boxes[(w+1)%8].Put(c, boxes[(w+1)%8].Get(c)+1); return nil },
						)
					}
					return nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := readCommitted(s, counter), workers*perWorker; got != want {
		t.Errorf("counter = %d, want %d (faults corrupted committed state)", got, want)
	}
	if s.Stats.TopAborts() == 0 {
		t.Error("soak injected no aborts — schedule too weak to mean anything")
	}
	t.Logf("soak(lockfree=%v, legacy=%v): %d commits, %d top aborts, %d nested aborts, %d injections logged",
		opts.LockFreeCommit, opts.DisableGroupCommit,
		s.Stats.TopCommits(), s.Stats.TopAborts(), s.Stats.NestedAborts(), len(inj.Events()))
}

// The group-commit soak also exercises the combiner under load: with the
// commit-delay rule stretching the in-lock section, committers pile onto
// the request queue and drain in combined batches.
func TestChaosSoakGroupCommit(t *testing.T) { chaosSoak(t, Options{}) }
func TestChaosSoakLegacySerialized(t *testing.T) {
	chaosSoak(t, Options{DisableGroupCommit: true})
}
func TestChaosSoakLockFree(t *testing.T) { chaosSoak(t, Options{LockFreeCommit: true}) }

// readCommitted reads a box's latest committed value via a read-only
// transaction on s (the snapshot clock lives on the STM).
func readCommitted(s *STM, b *VBox[int]) int {
	var v int
	_ = s.AtomicReadOnly(func(tx *Tx) error { v = b.Get(tx); return nil })
	return v
}
