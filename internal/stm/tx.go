package stm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// writeEntry is a buffered write inside a transaction's write set. treeVer
// is the per-tree nested version at which the entry became visible at this
// level of the tree (for entries merged from committed children) or the
// writer's own snapshot (for the transaction's own writes).
type writeEntry struct {
	value   any
	treeVer uint64
}

// treeRead records a nested transaction's read that was satisfied from an
// ancestor's write set (src != nil) or from global memory while inside a
// tree (src == nil, treeVer 0 meaning "absent from every ancestor").
// Validation re-resolves the box through the ancestor chain and requires
// the same treeVer to still be observed.
type treeRead struct {
	box     *vbox
	src     *Tx    // ancestor whose write set satisfied the read; nil if global
	treeVer uint64 // version observed (0 when src == nil)
}

// treeState is shared by every transaction of one top-level tree.
type treeState struct {
	clock atomic.Uint64 // per-tree nested commit clock
	gate  TreeGate      // actuator gate (nil = unbounded), created lazily

	gateOnce sync.Once
}

// Tx is a transaction: either top-level (parent == nil) or nested. A Tx is
// bound to the goroutine executing its function; it must not be shared
// across goroutines except through Parallel, which creates a child Tx per
// task.
type Tx struct {
	stm    *STM
	parent *Tx
	root   *Tx
	depth  int

	// readVersion is the global snapshot (root transactions; copied to
	// descendants via root).
	readVersion uint64
	// readTreeVersion is the per-tree snapshot a nested transaction reads
	// at: entries in ancestor write sets with treeVer <= readTreeVersion
	// are visible, newer ones signal a conflict with a committed sibling.
	readTreeVersion uint64

	// mu guards writeSet and the read-set slices against concurrent access
	// by descendants (children lock ancestors while resolving reads and
	// while merging on commit).
	mu          sync.Mutex
	writeSet    map[*vbox]writeEntry
	globalReads []*vbox        // boxes resolved from global memory
	treeReads   []treeRead     // nested reads needing per-tree validation
	seenReads   map[*vbox]bool // dedup: boxes already recorded in a read set

	tree *treeState

	// readOnly marks a transaction created by STM.AtomicReadOnly: writes
	// panic, and commit is a no-op beyond accounting.
	readOnly bool

	// holdsGateSlot records whether this (nested) transaction occupies one
	// of the tree gate's child slots, i.e. it runs on a spawned worker
	// goroutine rather than inline on its parent's goroutine. A slot-holding
	// transaction temporarily releases its slot while suspended at a
	// Parallel join, so that deep nesting cannot deadlock the gate.
	holdsGateSlot bool

	finished bool // defensive: set when the tx function returned
}

// conflictSignal is panicked to unwind user code when a conflict is
// detected eagerly (nested read of a too-new ancestor entry) or at nested
// commit time. It is recovered by the transaction runners.
type conflictSignal struct{ tx *Tx }

// ReadVersion returns the global snapshot version this transaction reads.
func (tx *Tx) ReadVersion() uint64 { return tx.root.readVersion }

// Depth returns 0 for a top-level transaction, 1 for its children, etc.
func (tx *Tx) Depth() int { return tx.depth }

// IsNested reports whether tx is a nested transaction.
func (tx *Tx) IsNested() bool { return tx.parent != nil }

// read resolves a box for tx: own write set, then ancestors
// nearest-first, then global memory at the root snapshot.
func (tx *Tx) read(b *vbox) any {
	tx.ensureLive()
	// Own write set first. No other goroutine mutates it while tx runs
	// (children only merge while tx is blocked in Parallel), but we lock
	// for race-detector cleanliness and to keep the invariant simple.
	tx.mu.Lock()
	if e, ok := tx.writeSet[b]; ok {
		tx.mu.Unlock()
		return e.value
	}
	tx.mu.Unlock()

	for anc := tx.parent; anc != nil; anc = anc.parent {
		anc.mu.Lock()
		e, ok := anc.writeSet[b]
		anc.mu.Unlock()
		if ok {
			if e.treeVer > tx.readTreeVersion {
				// A sibling (at some level) committed this entry after we
				// took our tree snapshot: the version we should read no
				// longer exists (tree write sets are single-version).
				// Abort eagerly and retry with a fresh snapshot.
				panic(conflictSignal{tx})
			}
			if tx.markRead(b) {
				tx.treeReads = append(tx.treeReads, treeRead{box: b, src: anc, treeVer: e.treeVer})
			}
			return e.value
		}
	}

	if tx.markRead(b) {
		if tx.parent != nil {
			// Record that the read bypassed every ancestor, so nested
			// commit validation notices a sibling writing it meanwhile.
			tx.treeReads = append(tx.treeReads, treeRead{box: b, src: nil, treeVer: 0})
		}
		tx.globalReads = append(tx.globalReads, b)
	}
	return b.readAt(tx.root.readVersion).value
}

// markRead returns true the first time b is recorded in tx's read sets.
// Within a single transaction the resolution of a box is stable (any change
// manifests as a conflict panic first), so one record per box suffices for
// validation.
func (tx *Tx) markRead(b *vbox) bool {
	if tx.seenReads == nil {
		tx.seenReads = make(map[*vbox]bool)
	}
	if tx.seenReads[b] {
		return false
	}
	tx.seenReads[b] = true
	return true
}

// write buffers a write in tx's write set.
func (tx *Tx) write(b *vbox, v any) {
	tx.ensureLive()
	if tx.root.readOnly {
		panic("stm: write inside a read-only transaction")
	}
	tx.mu.Lock()
	if tx.writeSet == nil {
		tx.writeSet = make(map[*vbox]writeEntry)
	}
	tx.writeSet[b] = writeEntry{value: v, treeVer: tx.readTreeVersion}
	tx.mu.Unlock()
}

func (tx *Tx) ensureLive() {
	if tx.finished {
		panic(fmt.Sprintf("stm: use of finished transaction (depth %d)", tx.depth))
	}
}

// runTop executes fn inside tx and attempts to commit. It returns the
// user error (nil on success) and whether a conflict occurred (in which
// case the caller retries with a fresh transaction).
func (tx *Tx) runTop(fn func(*Tx) error) (err error, conflicted bool) {
	defer tx.stm.unregisterSnapshot(tx.readVersion)
	defer func() {
		tx.finished = true
		if r := recover(); r != nil {
			if cs, ok := r.(conflictSignal); ok && cs.tx == tx {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.stm.Stats.UserAborts.Add(1)
		return err, false
	}
	if !tx.commitTop() {
		return nil, true
	}
	return nil, false
}

// commitTop validates the transaction's global read set and publishes its
// write set at a new clock version. Read-only transactions always succeed.
func (tx *Tx) commitTop() bool {
	s := tx.stm
	if len(tx.writeSet) == 0 {
		s.Stats.TopCommits.Add(1)
		s.Stats.ReadOnlyTops.Add(1)
		return true
	}
	if s.opts.LockFreeCommit {
		if !s.commitTopLockFree(tx) {
			return false
		}
		s.Stats.TopCommits.Add(1)
		s.Stats.VersionsWritten.Add(uint64(len(tx.writeSet)))
		return true
	}
	s.commitMu.Lock()
	for _, b := range tx.globalReads {
		if b.currentVersion() > tx.readVersion {
			s.commitMu.Unlock()
			return false
		}
	}
	newVer := s.clock.Load() + 1
	keepFrom := s.gcHorizon()
	for b, e := range tx.writeSet {
		b.install(e.value, newVer, keepFrom)
	}
	s.clock.Store(newVer)
	s.commitMu.Unlock()
	s.Stats.TopCommits.Add(1)
	s.Stats.VersionsWritten.Add(uint64(len(tx.writeSet)))
	return true
}

// treeOf returns the tree state shared by tx's whole transaction tree,
// creating it lazily on the root.
func (tx *Tx) treeOf() *treeState {
	r := tx.root
	r.mu.Lock()
	if r.tree == nil {
		r.tree = &treeState{}
	}
	t := r.tree
	r.mu.Unlock()
	return t
}

// beginChild creates a nested transaction under tx with a fresh tree
// snapshot. spawned marks children running on their own worker goroutine
// (and therefore holding a tree gate slot).
func (tx *Tx) beginChild(t *treeState, spawned bool) *Tx {
	return &Tx{
		stm:             tx.stm,
		parent:          tx,
		root:            tx.root,
		depth:           tx.depth + 1,
		readVersion:     tx.root.readVersion,
		readTreeVersion: t.clock.Load(),
		tree:            t,
		holdsGateSlot:   spawned,
	}
}

// runChild executes fn as a child transaction of parent, retrying on
// conflicts until commit or user error.
func runChild(parent *Tx, t *treeState, spawned bool, fn func(*Tx) error) error {
	for attempt := 0; ; attempt++ {
		child := parent.beginChild(t, spawned)
		err, conflicted := child.runNested(fn)
		if !conflicted {
			return err
		}
		parent.stm.Stats.NestedAborts.Add(1)
		backoff(attempt)
	}
}

// runNested executes fn inside the nested tx and merges into the parent on
// success. Returns the user error and whether a conflict occurred.
func (tx *Tx) runNested(fn func(*Tx) error) (err error, conflicted bool) {
	defer func() {
		tx.finished = true
		if r := recover(); r != nil {
			if cs, ok := r.(conflictSignal); ok && cs.tx == tx {
				conflicted = true
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.stm.Stats.UserAborts.Add(1)
		return err, false
	}
	if !tx.commitNested() {
		return nil, true
	}
	tx.stm.Stats.NestedCommits.Add(1)
	return nil, false
}

// commitNested validates tx's tree reads and merges its write set and
// read sets into the parent. The parent's mutex serializes sibling commits
// into the same parent; validation against higher ancestors locks each of
// them briefly (always in descendant-to-ancestor order, so lock ordering is
// consistent across the tree and deadlock-free).
func (tx *Tx) commitNested() bool {
	parent := tx.parent
	t := tx.tree

	parent.mu.Lock()
	defer parent.mu.Unlock()

	// Validate every tree-sensitive read: re-resolve the box through the
	// ancestor chain (starting at parent) and require the same observation.
	for _, r := range tx.treeReads {
		src, ver := resolveTree(parent, r.box)
		if src != r.src || ver != r.treeVer {
			return false
		}
	}

	// Merge: stamp our writes with a fresh tree version and fold them into
	// the parent's write set.
	if len(tx.writeSet) > 0 {
		newVer := t.clock.Add(1)
		if parent.writeSet == nil {
			parent.writeSet = make(map[*vbox]writeEntry, len(tx.writeSet))
		}
		for b, e := range tx.writeSet {
			parent.writeSet[b] = writeEntry{value: e.value, treeVer: newVer}
		}
	}

	// Propagate read sets: global reads bubble up (ultimately validated at
	// top-level commit); tree reads sourced strictly above the parent stay
	// relevant for the parent's own nested commit. When the parent is the
	// root there is no level above it, so only global reads propagate.
	parent.globalReads = append(parent.globalReads, tx.globalReads...)
	if parent.parent != nil {
		for _, r := range tx.treeReads {
			if r.src != parent {
				parent.treeReads = append(parent.treeReads, r)
			}
		}
	}
	return true
}

// resolveTree finds which transaction's write set (from 'from' upward)
// currently holds box b. It returns (nil, 0) when no ancestor holds it.
// The caller must hold from.mu; higher ancestors are locked briefly here.
func resolveTree(from *Tx, b *vbox) (*Tx, uint64) {
	if e, ok := from.writeSet[b]; ok {
		return from, e.treeVer
	}
	for anc := from.parent; anc != nil; anc = anc.parent {
		anc.mu.Lock()
		e, ok := anc.writeSet[b]
		anc.mu.Unlock()
		if ok {
			return anc, e.treeVer
		}
	}
	return nil, 0
}

// Parallel runs each fn as a nested (child) transaction of tx and waits for
// all of them (fork-join, the execution model of JVSTM's parallel nesting).
// Concurrency across children is limited by the actuator's per-tree gate
// (the "c" knob); children beyond the limit queue. Conflicting children
// retry individually. If any child's function returns an error, Parallel
// waits for the remaining children and returns the first error in argument
// order; committed siblings remain merged into tx (closed-nesting
// semantics: nothing is globally visible unless tx itself commits).
//
// While Parallel runs, tx must not be used by the caller (the parent is
// suspended at the join point, per the nested transaction model in which
// only transactions without active children access data).
func (tx *Tx) Parallel(fns ...func(*Tx) error) error {
	tx.ensureLive()
	if len(fns) == 0 {
		return nil
	}
	t := tx.treeOf()
	if tx.stm.opts.Throttle != nil {
		t.gateOnce.Do(func() { t.gate = tx.stm.opts.Throttle.NewTreeGate() })
	}
	if len(fns) == 1 {
		// A single child: run inline on the caller's goroutine (still as a
		// proper nested transaction). The caller's thread is already
		// accounted for, so no gate slot is consumed.
		return runChild(tx, t, false, fns[0])
	}

	// The caller suspends at the join point; if it occupies a gate slot,
	// hand the slot back while waiting so descendants can use it (otherwise
	// deep nesting under a small c could starve the gate).
	if tx.holdsGateSlot && t.gate != nil {
		t.gate.ExitChild()
		defer t.gate.EnterChild()
	}

	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		go func(i int, fn func(*Tx) error) {
			defer wg.Done()
			if g := t.gate; g != nil {
				g.EnterChild()
				defer g.ExitChild()
			}
			errs[i] = runChild(tx, t, true, fn)
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelFor partitions the index range [0, n) into `parts` contiguous
// chunks and runs each chunk as a child transaction calling body for every
// index it owns. It is the idiomatic way to parallelize a scan (the Array
// benchmark's access pattern). parts is clamped to [1, n].
func (tx *Tx) ParallelFor(n, parts int, body func(child *Tx, i int) error) error {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	fns := make([]func(*Tx) error, parts)
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		fns[p] = func(child *Tx) error {
			for i := lo; i < hi; i++ {
				if err := body(child, i); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return tx.Parallel(fns...)
}
