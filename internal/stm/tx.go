package stm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"autopn/internal/chaos"
	"autopn/internal/stats"
	stmtrace "autopn/internal/stm/trace"
)

// writeEntry is a buffered write inside a transaction's write set. The
// value travels in one of two representations, matching the box's (see
// vbox.word): word carries the raw bits of a word-kind value (value nil),
// every other value is boxed in value (word zero). treeVer is the per-tree
// nested version at which the entry became visible at this level of the
// tree (for entries merged from committed children) or the writer's own
// snapshot (for the transaction's own writes).
type writeEntry struct {
	value   any
	word    uint64
	treeVer uint64
}

// treeRead records a nested transaction's read that was satisfied from an
// ancestor's write set (src != nil) or from global memory while inside a
// tree (src == nil, treeVer 0 meaning "absent from every ancestor").
// Validation re-resolves the box through the ancestor chain and requires
// the same treeVer to still be observed.
type treeRead struct {
	box     *vbox
	src     *Tx    // ancestor whose write set satisfied the read; nil if global
	treeVer uint64 // version observed (0 when src == nil)
}

// treeState is shared by every transaction of one top-level tree. Instances
// are recycled through treePool (pool.go) when the root transaction ends.
type treeState struct {
	clock atomic.Uint64 // per-tree nested commit clock
	gate  TreeGate      // actuator gate (nil = unbounded), set at creation
}

// Tx is a transaction: either top-level (parent == nil) or nested. A Tx is
// bound to the goroutine executing its function; it must not be shared
// across goroutines except through Parallel, which creates a child Tx per
// task.
//
// Tx objects are pooled (see pool.go): user code must never retain a *Tx
// beyond the transaction function. A retained handle panics on use until
// the object is recycled, after which it aliases an unrelated transaction.
type Tx struct {
	stm    *STM
	parent *Tx
	root   *Tx
	depth  int

	// ctx is the context AtomicCtx was called with (top-level only; nil for
	// plain Atomic). Retry loops — the root's and every child's — check it
	// via root.ctx at attempt boundaries.
	ctx context.Context

	// readVersion is the global snapshot (root transactions; copied to
	// descendants via root).
	readVersion uint64
	// readTreeVersion is the per-tree snapshot a nested transaction reads
	// at: entries in ancestor write sets with treeVer <= readTreeVersion
	// are visible, newer ones signal a conflict with a committed sibling.
	readTreeVersion uint64

	// snapSlot is the registry handle from beginSnapshot (top-level only;
	// children never register — the root's registration covers the tree).
	snapSlot int32
	// snapHint seeds the registry slot probe; sticky across pooled reuse so
	// a recycled Tx reclaims the same cache line (registry.go).
	snapHint uint32
	// statShard is this Tx object's counter-stripe affinity (stats.go).
	statShard uint32

	// mu guards writes and the read-set slices against concurrent access
	// by descendants (children lock ancestors while resolving reads and
	// while merging on commit).
	mu          sync.Mutex
	writes      writeSet
	globalReads []*vbox    // boxes resolved from global memory
	treeReads   []treeRead // nested reads needing per-tree validation
	reads       boxSet     // dedup: boxes already recorded in a read set

	tree *treeState

	// readOnly marks a transaction created by STM.AtomicReadOnly: writes
	// panic, and commit is a no-op beyond accounting.
	readOnly bool

	// holdsGateSlot records whether this (nested) transaction occupies one
	// of the tree gate's child slots, i.e. it runs on a spawned worker
	// goroutine rather than inline on its parent's goroutine. A slot-holding
	// transaction temporarily releases its slot while suspended at a
	// Parallel join, so that deep nesting cannot deadlock the gate.
	holdsGateSlot bool

	// lfEnqueued marks a Tx published to the lock-free commit queue, where
	// helper threads may reference its sets after the owner returns; such a
	// Tx is never recycled (pool.go).
	lfEnqueued bool

	// commitVer is the global version this top-level transaction's write
	// set was published at, recorded by whichever commit path installed it
	// (serialized, group, or lock-free — owner-side in all three, so reading
	// it after runTop returns success is race-free). Zero-write commits
	// record the snapshot version instead. The serving layer's write-ahead
	// log keys its last-writer-wins replay on this value.
	commitVer uint64

	// childBuf and join are Parallel's fork-join scratch state, kept on the
	// Tx so repeated fan-outs (and pooled Tx reuse) pay no per-call
	// allocation. A Tx runs at most one Parallel at a time — the parent is
	// suspended at the join — so per-Tx reuse cannot race; sibling
	// Parallels in one tree run on distinct child Tx objects.
	childBuf []childResult
	join     sync.WaitGroup

	// span is this attempt's tracing span; nil unless the tree was sampled
	// (see STM.sampleTrace). Children of a sampled root carry their own
	// spans, parented under the root's.
	span *stmtrace.Span

	// conflictKey/conflictLabel identify the box the latest abort of this
	// attempt was attributed to (0/"" when none or boxless). Written
	// owner-side at every attribution site — the lock-free path hands the
	// helper-found box back through the commit request first — and read by
	// the retry loop after a conflicted attempt to learn the transaction's
	// scheduling intent (see Scheduler).
	conflictKey   uintptr
	conflictLabel string

	finished bool // defensive: set when the tx function returned
}

// conflictSignal is panicked to unwind user code when a conflict is
// detected eagerly (nested read of a too-new ancestor entry) or at nested
// commit time. It is recovered by the transaction runners.
type conflictSignal struct{ tx *Tx }

// ReadVersion returns the global snapshot version this transaction reads.
func (tx *Tx) ReadVersion() uint64 { return tx.root.readVersion }

// Depth returns 0 for a top-level transaction, 1 for its children, etc.
func (tx *Tx) Depth() int { return tx.depth }

// IsNested reports whether tx is a nested transaction.
func (tx *Tx) IsNested() bool { return tx.parent != nil }

// read resolves a box for tx: own write set, then ancestors
// nearest-first, then global memory at the root snapshot. The returned
// entry carries the value in the box's representation (word bits or boxed
// value); VBox.Get extracts the right one at compile time.
func (tx *Tx) read(b *vbox) writeEntry {
	tx.ensureLive()
	if inj := tx.stm.inj; inj != nil && b.label != "" {
		// Chaos hook: labeled boxes only, so unlabeled hot-path boxes never
		// pay the schedule evaluation. A forced abort is indistinguishable
		// from a real conflict to the retry machinery. Read-only roots
		// ignore forced aborts — multi-version reads cannot conflict by
		// design, so that fault is impossible by construction (the arrival
		// and probability draw are still consumed, keeping schedules
		// deterministic).
		if inj.Fire(chaos.PointRead, b.label) == chaos.ActAbort && !tx.root.readOnly {
			if tx.parent != nil {
				tx.traceConflict(stmtrace.ReasonNestedParent, b)
			} else {
				tx.traceConflict(stmtrace.ReasonTopValidation, b)
			}
			panic(conflictSignal{tx})
		}
	}
	// Own write set first. No other goroutine mutates it while tx runs
	// (children only merge while tx is blocked in Parallel), but we lock
	// for race-detector cleanliness and to keep the invariant simple.
	tx.mu.Lock()
	if e, ok := tx.writes.get(b); ok {
		tx.mu.Unlock()
		return e
	}
	tx.mu.Unlock()

	for anc := tx.parent; anc != nil; anc = anc.parent {
		anc.mu.Lock()
		e, ok := anc.writes.get(b)
		anc.mu.Unlock()
		if ok {
			if e.treeVer > tx.readTreeVersion {
				// A sibling (at some level) committed this entry after we
				// took our tree snapshot: the version we should read no
				// longer exists (tree write sets are single-version).
				// Abort eagerly and retry with a fresh snapshot.
				tx.traceConflict(stmtrace.ReasonNestedParent, b)
				panic(conflictSignal{tx})
			}
			if tx.reads.add(b) {
				tx.treeReads = append(tx.treeReads, treeRead{box: b, src: anc, treeVer: e.treeVer})
			}
			return e
		}
	}

	if tx.reads.add(b) {
		if tx.parent != nil {
			// Record that the read bypassed every ancestor, so nested
			// commit validation notices a sibling writing it meanwhile.
			tx.treeReads = append(tx.treeReads, treeRead{box: b, src: nil, treeVer: 0})
		}
		tx.globalReads = append(tx.globalReads, b)
	}
	bd := b.readAt(tx.root.readVersion)
	var w uint64
	if b.word {
		// The transaction is registered in the snapshot registry, so bd
		// cannot be reclaimed under it; the atomic load pairs with pooled
		// reuse for race-detector cleanliness.
		w = bd.word.Load()
	}
	return writeEntry{value: bd.value, word: w}
}

// write buffers a write in tx's write set; exactly one of v (boxed) and w
// (word bits) carries the value, per the box's representation.
func (tx *Tx) write(b *vbox, v any, w uint64) {
	tx.ensureLive()
	if tx.root.readOnly {
		panic("stm: write inside a read-only transaction")
	}
	tx.mu.Lock()
	tx.writes.put(b, writeEntry{value: v, word: w, treeVer: tx.readTreeVersion})
	tx.mu.Unlock()
}

func (tx *Tx) ensureLive() {
	if tx.finished {
		panic(fmt.Sprintf("stm: use of finished transaction (depth %d)", tx.depth))
	}
}

// markSpan closes the current tracing phase on tx's span, if traced.
func (tx *Tx) markSpan(p stmtrace.Phase) {
	if tx.span != nil {
		tx.span.Mark(p)
	}
}

// finishSpan completes tx's span, if traced.
func (tx *Tx) finishSpan(o stmtrace.Outcome) {
	if tx.span != nil {
		tx.span.Finish(o)
		tx.span = nil
	}
}

// boxKeyLabel returns b's identity key and label for conflict
// attribution. The key is the box's address used purely as an opaque
// identity (never dereferenced by the tracer).
func boxKeyLabel(b *vbox) (uintptr, string) {
	if b == nil {
		return 0, ""
	}
	return uintptr(unsafe.Pointer(b)), b.label
}

// traceConflict attributes one abort of tx to reason at box b (nil = no
// specific box): the learned conflict key is stored on tx, the abort is
// recorded against the tracing span when the tree is sampled, and — with
// a scheduler attached — against the tracer's hot-box table even when it
// is not (see noteConflict). Owner-side call sites only; the lock-free
// path's helper-side attribution goes through the commit request.
func (tx *Tx) traceConflict(reason stmtrace.Reason, b *vbox) {
	key, label := boxKeyLabel(b)
	tx.noteConflict(reason, key, label)
	if tx.span != nil {
		tx.span.Conflict(reason, key, label)
	}
}

// noteConflict stores the learned conflict box on tx (plain stores —
// every caller runs on the goroutine that owns tx) and, when the tree is
// untraced but a scheduler is attached, records the abort into the
// tracer's hot-box table directly. That always-on attribution is what
// feeds the scheduler's controller live windowed contention while
// sampling stays off; without a scheduler the untraced abort path stays
// exactly as before (no table write).
func (tx *Tx) noteConflict(reason stmtrace.Reason, key uintptr, label string) {
	if key == 0 {
		return
	}
	tx.conflictKey, tx.conflictLabel = key, label
	if tx.span == nil && tx.stm.opts.Scheduler != nil {
		if tr := tx.stm.tracer.Load(); tr != nil {
			tr.RecordConflict(reason, key, label)
		}
	}
}

// runTop executes fn inside tx and attempts to commit. It returns the
// user error (nil on success) and whether a conflict occurred (in which
// case the caller retries with a fresh transaction).
func (tx *Tx) runTop(fn func(*Tx) error) (err error, conflicted bool) {
	defer tx.stm.unregisterSnapshot(tx.readVersion, tx.snapSlot)
	defer func() {
		tx.finished = true
		if r := recover(); r != nil {
			if cs, ok := r.(conflictSignal); ok && cs.tx == tx {
				conflicted = true
				tx.finishSpan(stmtrace.OutcomeAbort)
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.stm.Stats.add(tx.statShard, idxUserAborts, 1)
		tx.markSpan(stmtrace.PhaseRun)
		tx.traceConflict(stmtrace.ReasonUser, nil)
		tx.finishSpan(stmtrace.OutcomeUserAbort)
		return err, false
	}
	tx.markSpan(stmtrace.PhaseRun)
	if !tx.commitTop() {
		tx.finishSpan(stmtrace.OutcomeAbort)
		return nil, true
	}
	tx.finishSpan(stmtrace.OutcomeCommit)
	return nil, false
}

// commitTop validates the transaction's global read set and publishes its
// write set at a new clock version. Read-only transactions always succeed.
// Update transactions take one of three paths: the flat-combining group
// commit (default; groupcommit.go), JVSTM's lock-free helping commit
// (Options.LockFreeCommit; lockfree.go), or the legacy fully-serialized
// commit section below (Options.DisableGroupCommit).
func (tx *Tx) commitTop() bool {
	s := tx.stm
	nWrites := tx.writes.size()
	if nWrites == 0 {
		tx.commitVer = tx.readVersion
		tx.markSpan(stmtrace.PhaseCommit)
		s.Stats.add(tx.statShard, idxTopCommits, 1)
		s.Stats.add(tx.statShard, idxReadOnlyTops, 1)
		return true
	}
	if s.opts.LockFreeCommit {
		// Helping interleaves validation and write-back across threads, so
		// the whole enqueue-and-help section is accounted as PhaseCommit;
		// the helper that invalidates the request attributes the conflict
		// (see helpCommits).
		ok := s.commitTopLockFree(tx)
		tx.markSpan(stmtrace.PhaseCommit)
		if !ok {
			return false
		}
		s.Stats.add(tx.statShard, idxTopCommits, 1)
		s.Stats.add(tx.statShard, idxVersionsWritten, uint64(nWrites))
		return true
	}
	if !s.opts.DisableGroupCommit {
		// Default path: flat-combining group commit with out-of-lock
		// pre-validation and O(delta) in-lock revalidation (groupcommit.go).
		if !s.commitTopGroup(tx) {
			return false
		}
		tx.markSpan(stmtrace.PhaseCommit)
		s.Stats.add(tx.statShard, idxTopCommits, 1)
		s.Stats.add(tx.statShard, idxVersionsWritten, uint64(nWrites))
		return true
	}
	s.commitMu.Lock()
	if s.inj != nil {
		// Chaos hooks on the legacy serialized path, inside the commit
		// section: a delay/stall at either point is a stuck committer
		// holding the commit lock; an abort at PointValidate forces a
		// validation failure.
		if s.inj.Fire(chaos.PointValidate, "") == chaos.ActAbort {
			s.commitMu.Unlock()
			tx.traceConflict(stmtrace.ReasonTopValidation, nil)
			tx.markSpan(stmtrace.PhaseValidate)
			return false
		}
	}
	for _, b := range tx.globalReads {
		if b.currentVersion() > tx.readVersion {
			s.commitMu.Unlock()
			tx.traceConflict(stmtrace.ReasonTopValidation, b)
			tx.markSpan(stmtrace.PhaseValidate)
			return false
		}
	}
	newVer := s.clock.Load() + 1
	keepFrom := s.gcHorizon()
	tx.markSpan(stmtrace.PhaseValidate)
	if s.inj != nil {
		if s.inj.Fire(chaos.PointCommit, "") == chaos.ActAbort {
			s.commitMu.Unlock()
			tx.traceConflict(stmtrace.ReasonTopValidation, nil)
			return false
		}
	}
	s.reclaimBodies(keepFrom, tx.statShard)
	tx.commitVer = newVer
	tx.writes.forEach(func(b *vbox, e writeEntry) {
		s.installBody(b, e, newVer, keepFrom, tx.statShard)
	})
	s.clock.Store(newVer)
	s.commitMu.Unlock()
	tx.markSpan(stmtrace.PhaseCommit)
	s.Stats.add(tx.statShard, idxTopCommits, 1)
	s.Stats.add(tx.statShard, idxVersionsWritten, uint64(nWrites))
	return true
}

// treeOf returns the tree state shared by tx's whole transaction tree,
// creating it lazily on the root (with the actuator's per-tree gate, when
// an admission throttle is installed).
func (tx *Tx) treeOf() *treeState {
	r := tx.root
	r.mu.Lock()
	if r.tree == nil {
		t := getTree()
		if th := tx.stm.opts.Throttle; th != nil {
			t.gate = th.NewTreeGate()
		}
		r.tree = t
	}
	t := r.tree
	r.mu.Unlock()
	return t
}

// beginChild checks a nested transaction out of the pool under tx with a
// fresh tree snapshot. spawned marks children running on their own worker
// goroutine (and therefore holding a tree gate slot). It runs on the
// goroutine that will execute the child (tracing regions are
// goroutine-bound).
func (tx *Tx) beginChild(t *treeState, spawned bool, attempt int) *Tx {
	c := tx.stm.getTx()
	c.stm = tx.stm
	c.parent = tx
	c.root = tx.root
	c.depth = tx.depth + 1
	c.readVersion = tx.root.readVersion
	c.readTreeVersion = t.clock.Load()
	c.snapSlot = slotNone // the root's registration covers the tree
	c.tree = t
	c.holdsGateSlot = spawned
	if psp := tx.span; psp != nil {
		// Sampled tree: trace every child, parented under tx's span. The
		// parent is suspended at the Parallel join, so reading its span is
		// safe from the child goroutine.
		c.span = psp.StartChild(c.depth, attempt)
		c.span.Mark(stmtrace.PhaseBegin)
	}
	return c
}

// runChild executes fn as a child transaction of parent, retrying on
// conflicts until commit, user error, context cancellation, or (when a
// RetryPolicy budget is set) ErrTooManyRetries.
func runChild(parent *Tx, t *treeState, spawned bool, fn func(*Tx) error) error {
	s := parent.stm
	var rng *stats.RNG
	pol := s.opts.Retry
	maxAttempts := 0
	if pol != nil {
		maxAttempts = pol.MaxAttempts
	}
	for attempt := 0; ; attempt++ {
		if c := parent.root.ctx; c != nil {
			if err := c.Err(); err != nil {
				// Cancellation stops the child's retry loop at the same
				// boundary as the top-level loop; Parallel's join drains
				// the siblings and surfaces the error.
				s.Stats.add(parent.statShard, idxCtxCancels, 1)
				return err
			}
		}
		child := parent.beginChild(t, spawned, attempt)
		err, conflicted := child.runNested(fn)
		s.putTx(child)
		if !conflicted {
			return err
		}
		s.Stats.add(parent.statShard, idxNestedAborts, 1)
		failed := attempt + 1
		if pol != nil && failed == pol.livelockThreshold() {
			s.tripLivelock(parent.statShard, pol, failed)
		}
		if maxAttempts > 0 && failed >= maxAttempts {
			if pol.livelockThreshold() > maxAttempts {
				s.tripLivelock(parent.statShard, pol, failed)
			}
			return ErrTooManyRetries
		}
		if rng == nil {
			rng = newBackoffRNG()
		}
		if pol != nil {
			pol.sleep(attempt, rng)
		} else {
			backoff(attempt, rng)
		}
	}
}

// runNested executes fn inside the nested tx and merges into the parent on
// success. Returns the user error and whether a conflict occurred.
func (tx *Tx) runNested(fn func(*Tx) error) (err error, conflicted bool) {
	defer func() {
		tx.finished = true
		if r := recover(); r != nil {
			if cs, ok := r.(conflictSignal); ok && cs.tx == tx {
				conflicted = true
				tx.finishSpan(stmtrace.OutcomeAbort)
				return
			}
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		tx.stm.Stats.add(tx.statShard, idxUserAborts, 1)
		tx.markSpan(stmtrace.PhaseRun)
		tx.traceConflict(stmtrace.ReasonUser, nil)
		tx.finishSpan(stmtrace.OutcomeUserAbort)
		return err, false
	}
	tx.markSpan(stmtrace.PhaseRun)
	if !tx.commitNested() {
		tx.finishSpan(stmtrace.OutcomeAbort)
		return nil, true
	}
	tx.stm.Stats.add(tx.statShard, idxNestedCommits, 1)
	tx.finishSpan(stmtrace.OutcomeCommit)
	return nil, false
}

// commitNested validates tx's tree reads and merges its write set and
// read sets into the parent. The parent's mutex serializes sibling commits
// into the same parent; validation against higher ancestors locks each of
// them briefly (always in descendant-to-ancestor order, so lock ordering is
// consistent across the tree and deadlock-free).
func (tx *Tx) commitNested() bool {
	parent := tx.parent
	t := tx.tree

	parent.mu.Lock()
	defer parent.mu.Unlock()

	if inj := tx.stm.inj; inj != nil {
		// Chaos hook under the parent's merge lock: an abort is a forced
		// nested-vs-sibling validation failure.
		if inj.Fire(chaos.PointNestedValidate, "") == chaos.ActAbort {
			tx.traceConflict(stmtrace.ReasonNestedSibling, nil)
			tx.markSpan(stmtrace.PhaseValidate)
			return false
		}
	}
	// Validate every tree-sensitive read: re-resolve the box through the
	// ancestor chain (starting at parent) and require the same observation.
	for _, r := range tx.treeReads {
		src, ver := resolveTree(parent, r.box)
		if src != r.src || ver != r.treeVer {
			tx.traceConflict(stmtrace.ReasonNestedSibling, r.box)
			tx.markSpan(stmtrace.PhaseValidate)
			return false
		}
	}
	tx.markSpan(stmtrace.PhaseValidate)
	if inj := tx.stm.inj; inj != nil {
		// A delay here, still under the parent's lock and right before the
		// tree-clock bump, serializes sibling merges behind it — the
		// nested-clock contention storm.
		if inj.Fire(chaos.PointNestedCommit, "") == chaos.ActAbort {
			tx.traceConflict(stmtrace.ReasonNestedSibling, nil)
			return false
		}
	}

	// Merge: stamp our writes with a fresh tree version and fold them into
	// the parent's write set.
	if tx.writes.size() > 0 {
		newVer := t.clock.Add(1)
		tx.writes.forEach(func(b *vbox, e writeEntry) {
			parent.writes.put(b, writeEntry{value: e.value, word: e.word, treeVer: newVer})
		})
	}

	// Propagate read sets: global reads bubble up (ultimately validated at
	// top-level commit); tree reads sourced strictly above the parent stay
	// relevant for the parent's own nested commit. When the parent is the
	// root there is no level above it, so only global reads propagate.
	parent.globalReads = append(parent.globalReads, tx.globalReads...)
	if parent.parent != nil {
		for _, r := range tx.treeReads {
			if r.src != parent {
				parent.treeReads = append(parent.treeReads, r)
			}
		}
	}
	tx.markSpan(stmtrace.PhaseCommit)
	return true
}

// resolveTree finds which transaction's write set (from 'from' upward)
// currently holds box b. It returns (nil, 0) when no ancestor holds it.
// The caller must hold from.mu; higher ancestors are locked briefly here.
func resolveTree(from *Tx, b *vbox) (*Tx, uint64) {
	if e, ok := from.writes.get(b); ok {
		return from, e.treeVer
	}
	for anc := from.parent; anc != nil; anc = anc.parent {
		anc.mu.Lock()
		e, ok := anc.writes.get(b)
		anc.mu.Unlock()
		if ok {
			return anc, e.treeVer
		}
	}
	return nil, 0
}

// Parallel runs each fn as a nested (child) transaction of tx and waits for
// all of them (fork-join, the execution model of JVSTM's parallel nesting).
// Concurrency across children is limited by the actuator's per-tree gate
// (the "c" knob); children beyond the limit queue. Conflicting children
// retry individually. If any child's function returns an error, Parallel
// waits for the remaining children and returns the first error in argument
// order; committed siblings remain merged into tx (closed-nesting
// semantics: nothing is globally visible unless tx itself commits).
//
// While Parallel runs, tx must not be used by the caller (the parent is
// suspended at the join point, per the nested transaction model in which
// only transactions without active children access data).
// childResult is one parallel child's outcome: its error and any escaped
// panic value (captured on the child goroutine, re-raised at the join).
// One slice of these keeps the fan-out at a single allocation.
type childResult struct {
	err error
	pan any
}

func (tx *Tx) Parallel(fns ...func(*Tx) error) error {
	tx.ensureLive()
	if len(fns) == 0 {
		return nil
	}
	t := tx.treeOf()
	if len(fns) == 1 {
		// A single child: run inline on the caller's goroutine (still as a
		// proper nested transaction). The caller's thread is already
		// accounted for, so no gate slot is consumed.
		return runChild(tx, t, false, fns[0])
	}

	// The caller suspends at the join point; if it occupies a gate slot,
	// hand the slot back while waiting so descendants can use it (otherwise
	// deep nesting under a small c could starve the gate).
	if tx.holdsGateSlot && t.gate != nil {
		t.gate.ExitChild()
		defer t.gate.EnterChild()
	}

	// Child panics (other than the conflict signal, which runNested
	// consumes) are captured per child and re-panicked on the caller's
	// goroutine after the join. This keeps a panicking child from killing
	// the process on its own goroutine and — crucially — drains every
	// sibling and releases the gate slots and tree state before the panic
	// resumes unwinding through the caller.
	//
	// The result buffer and WaitGroup live on the Tx (amortized
	// zero-alloc); entries are cleared before use in case a caller
	// recovered a child panic from an earlier Parallel on this Tx.
	if cap(tx.childBuf) < len(fns) {
		tx.childBuf = make([]childResult, len(fns))
	}
	results := tx.childBuf[:len(fns)]
	for i := range results {
		results[i] = childResult{}
	}
	// The last child runs inline on the caller's goroutine (which would
	// otherwise idle at the join): like the single-child case it consumes
	// no gate slot — the caller's thread is already accounted for — and the
	// fan-out spawns one goroutine fewer.
	last := len(fns) - 1
	wg := &tx.join
	wg.Add(last)
	for i, fn := range fns[:last] {
		go func(i int, fn func(*Tx) error) {
			defer wg.Done()
			defer func() { results[i].pan = recover() }()
			if g := t.gate; g != nil {
				g.EnterChild()
				defer g.ExitChild()
			}
			results[i].err = runChild(tx, t, true, fn)
		}(i, fn)
	}
	func() {
		defer func() { results[last].pan = recover() }()
		results[last].err = runChild(tx, t, false, fns[last])
	}()
	wg.Wait()
	for _, r := range results {
		if r.pan != nil {
			panic(r.pan)
		}
	}
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// ParallelFor partitions the index range [0, n) into `parts` contiguous
// chunks and runs each chunk as a child transaction calling body for every
// index it owns. It is the idiomatic way to parallelize a scan (the Array
// benchmark's access pattern). parts is clamped to [1, n].
func (tx *Tx) ParallelFor(n, parts int, body func(child *Tx, i int) error) error {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	fns := make([]func(*Tx) error, parts)
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		fns[p] = func(child *Tx) error {
			for i := lo; i < hi; i++ {
				if err := body(child, i); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return tx.Parallel(fns...)
}
