package stm

import "testing"

// Hot-path microbenchmarks gating the begin/commit overhaul: every variant
// reports allocations because the optimization target is "no global lock,
// (amortized) no allocator" on the per-transaction fast path. Each benchmark
// runs under all three commit strategies, sequentially and with
// b.RunParallel, since the strategies share the begin path but diverge at
// commit: Group (flat-combining, the default), Legacy (DisableGroupCommit:
// the fully serialized commit section), and LockFree (JVSTM helping commit).

func benchStrategies(b *testing.B, run func(b *testing.B, s *STM)) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"Group", Options{}},
		{"Legacy", Options{DisableGroupCommit: true}},
		{"LockFree", Options{LockFreeCommit: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			run(b, New(tc.opts))
		})
	}
}

// BenchmarkBeginCommitReadOnly measures the cost of an empty-ish read-only
// transaction: begin (snapshot registration), two reads, read-only commit.
// This is the path the registry rebuild targets — it takes no commit lock
// in either strategy, so any serialization observed here is pure begin/end
// overhead.
func BenchmarkBeginCommitReadOnly(b *testing.B) {
	benchStrategies(b, func(b *testing.B, s *STM) {
		x := NewVBox(1)
		y := NewVBox(2)
		b.Run("Seq", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Atomic(func(tx *Tx) error {
					_ = x.Get(tx)
					_ = y.Get(tx)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Par", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := s.Atomic(func(tx *Tx) error {
						_ = x.Get(tx)
						_ = y.Get(tx)
						return nil
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	})
}

// BenchmarkSmallWriteTx measures a typical small update transaction: four
// boxes read-modify-written, which fits the inline (pre-spill) read/write
// set representation. The parallel variant gives each worker a disjoint
// stripe of boxes so it measures throughput of the commit machinery, not
// retry storms.
func BenchmarkSmallWriteTx(b *testing.B) {
	benchStrategies(b, func(b *testing.B, s *STM) {
		const nBoxes = 4
		mk := func() []*VBox[int] {
			boxes := make([]*VBox[int], nBoxes)
			for i := range boxes {
				boxes[i] = NewVBox(0)
			}
			return boxes
		}
		body := func(boxes []*VBox[int]) func(*Tx) error {
			return func(tx *Tx) error {
				for _, bx := range boxes {
					bx.Put(tx, bx.Get(tx)+1)
				}
				return nil
			}
		}
		b.Run("Seq", func(b *testing.B) {
			boxes := mk()
			fn := body(boxes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Atomic(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Par", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				boxes := mk() // disjoint per worker: no read-set conflicts
				fn := body(boxes)
				for pb.Next() {
					if err := s.Atomic(fn); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	})
}

// BenchmarkContendedCommit measures cross-worker commit throughput — the
// scenario the flat-combining group commit targets. Every worker runs small
// write transactions concurrently (b.RunParallel; drive it with -cpu 1,4,8
// to vary the degree of hardware parallelism), so unlike the /Par variants
// above, which measure per-op latency of mostly uncontended commits, this
// benchmark keeps the commit path saturated. Disjoint gives each worker its
// own boxes (pure commit-machinery contention, zero data conflicts);
// Overlap10 additionally blind-writes one shared hot box on every 10th
// transaction (overlapping write sets across the batch, still no read
// conflicts). Three commit strategies: Group (flat-combining, the default),
// Legacy (DisableGroupCommit: the pre-group-commit serialized path), and
// LockFree.
func BenchmarkContendedCommit(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"Group", Options{}},
		{"Legacy", Options{DisableGroupCommit: true}},
		{"LockFree", Options{LockFreeCommit: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const nBoxes = 4
			for _, mode := range []string{"Disjoint", "Overlap10"} {
				overlap := mode == "Overlap10"
				b.Run(mode, func(b *testing.B) {
					s := New(tc.opts)
					shared := NewVBox(0)
					b.ReportAllocs()
					b.RunParallel(func(pb *testing.PB) {
						boxes := make([]*VBox[int], nBoxes)
						for i := range boxes {
							boxes[i] = NewVBox(0)
						}
						n := 0
						for pb.Next() {
							n++
							hot := overlap && n%10 == 0
							if err := s.Atomic(func(tx *Tx) error {
								for _, bx := range boxes {
									bx.Put(tx, bx.Get(tx)+1)
								}
								if hot {
									shared.Put(tx, n)
								}
								return nil
							}); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		})
	}
}

// BenchmarkNestedFanout measures a parallel-nesting transaction: a top-level
// transaction forking fanout children, each writing its own box. This
// exercises child Tx creation, tree-state setup, nested commit/merge, and
// the top-level commit of the merged write set.
func BenchmarkNestedFanout(b *testing.B) {
	const fanout = 4
	benchStrategies(b, func(b *testing.B, s *STM) {
		mk := func() ([]*VBox[int], []func(*Tx) error) {
			boxes := make([]*VBox[int], fanout)
			fns := make([]func(*Tx) error, fanout)
			for i := range boxes {
				bx := NewVBox(0)
				boxes[i] = bx
				fns[i] = func(c *Tx) error {
					bx.Put(c, bx.Get(c)+1)
					return nil
				}
			}
			return boxes, fns
		}
		b.Run("Seq", func(b *testing.B) {
			_, fns := mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Atomic(func(tx *Tx) error {
					return tx.Parallel(fns...)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Par", func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				_, fns := mk() // disjoint per worker
				for pb.Next() {
					if err := s.Atomic(func(tx *Tx) error {
						return tx.Parallel(fns...)
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	})
}
