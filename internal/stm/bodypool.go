package stm

import (
	"sync"

	"autopn/internal/chaos"
)

// Pooled version records with epoch-based reclamation.
//
// Every update commit allocates one body per written box and — via chain
// truncation — retires roughly as many. Handing the retired nodes straight
// back to the allocator would be unsafe: a reader that resolved a chain
// pointer before the truncation may still be dereferencing the detached
// segment. The classic answer is a grace period, and the STM already owns
// the exact structure that defines it: the snapshot registry's GC horizon
// (registry.go) is a version below which no registered transaction holds a
// snapshot.
//
// Retired segments therefore pass through a small limbo ring keyed by the
// commit version ("epoch") of the truncating install, and move to a
// sync.Pool free list — Go's per-P free-list primitive — only once the
// registry horizon has reached their epoch.
//
// Safety argument (the version-chain variant of epoch-based reclamation):
// a segment retired by the commit of version e became unreachable from its
// box's head at that commit. Any transaction still holding a pointer into
// the segment obtained it by traversing the chain before the truncation,
// i.e. it began before commit e completed, so its snapshot is < e (the
// clock reaches e only as commit e's last step) — and it stays registered
// in the snapshot registry until it finishes. Hence while any such reader
// exists, gcHorizon() < e; conversely horizon >= e implies no registered
// transaction can reference the segment, and reuse is safe. The
// happens-before chain backing this under the race detector runs through
// the registry's atomic slot release (reader's last chain access, then
// atomic slot store) and the horizon scan's atomic slot load before the
// reclaimer rewrites the node.
//
// Unregistered readers (VBox.Peek) sit outside that argument; they are
// covered by the per-body seqlock instead (see body.seq in vbox.go).
//
// Only word-representation bodies are pooled. Boxed bodies go to the GC as
// before: their install allocates the boxed value anyway, and never reusing
// them is what keeps the boxed Peek path a plain load.

const (
	// limboSize bounds the grace-period ring (power of two). Each update
	// commit adds at most one entry per truncated chain; entries drain as
	// the horizon advances, so the ring only fills when an old snapshot is
	// pinned for a long time — at which point overflowing chains fall back
	// to the garbage collector, which is always safe.
	limboSize = 256
	limboMask = limboSize - 1
)

// limboEntry is one retired chain segment awaiting its grace period.
type limboEntry struct {
	epoch uint64 // commit version of the truncating install
	head  *body  // detached segment (linked through body.next)
}

// bodyPool is the STM's version-record recycler: a free list of
// ready-to-reuse nodes plus the limbo ring of segments still inside their
// grace period. The ring and its cursors are guarded by the STM's commitMu
// (retire and reclaim only ever run inside the serialized commit section);
// the free list is internally synchronized.
type bodyPool struct {
	free  sync.Pool
	limbo [limboSize]limboEntry
	lhead uint64 // oldest live entry (ring index = lhead & limboMask)
	ltail uint64 // next free slot
}

// getBody returns a body for installation on box b. Word boxes draw from
// the free list; boxed bodies are always freshly allocated (see the file
// comment). shard routes the pool-efficacy counters.
func (s *STM) getBody(word bool, shard uint32) *body {
	if word {
		if v := s.bodies.free.Get(); v != nil {
			s.Stats.add(shard, idxBodyPoolHits, 1)
			return v.(*body)
		}
		s.Stats.add(shard, idxBodyPoolMisses, 1)
	}
	return &body{}
}

// releaseBody returns a node that was never published (a lock-free CAS
// loser's speculative body) straight to the free list — no grace period is
// needed for a node no reader could ever have seen. No-op for boxed nodes.
func (s *STM) releaseBody(nb *body, word bool) {
	if !word {
		return
	}
	nb.seq.Add(1) // odd: payload is unstable until the next install
	nb.value = nil
	nb.version = 0
	nb.next.Store(nil)
	s.bodies.free.Put(nb)
}

// retire hands a detached chain segment to the limbo ring under epoch
// (the truncating commit's version). Must hold commitMu. The caller owns
// the segment exclusively (truncate's Swap claims it). If the ring is full
// — a long-pinned snapshot — the segment is abandoned to the garbage
// collector instead, which is always safe.
func (s *STM) retire(tail *body, epoch uint64, shard uint32) {
	n := uint64(0)
	for nd := tail; nd != nil; nd = nd.next.Load() {
		n++
	}
	s.Stats.add(shard, idxBodyRetired, n)
	p := &s.bodies
	if p.ltail-p.lhead == limboSize {
		return
	}
	p.limbo[p.ltail&limboMask] = limboEntry{epoch: epoch, head: tail}
	p.ltail++
}

// reclaimBodies drains limbo entries whose epoch the registry horizon has
// reached, recycling their nodes onto the free list. Must hold commitMu.
// horizon is the caller's gcHorizon() (already computed for truncation).
// The chaos PointReclaim hook fires when there is something to drain:
// ActAbort skips this round (deterministically widening the hazard
// window), ActDelay/ActStall sleep inside the commit section.
func (s *STM) reclaimBodies(horizon uint64, shard uint32) {
	p := &s.bodies
	if p.lhead == p.ltail || p.limbo[p.lhead&limboMask].epoch > horizon {
		return
	}
	if s.inj != nil {
		if s.inj.Fire(chaos.PointReclaim, "") == chaos.ActAbort {
			return
		}
	}
	for p.lhead != p.ltail {
		e := &p.limbo[p.lhead&limboMask]
		if e.epoch > horizon {
			break
		}
		for nd := e.head; nd != nil; {
			next := nd.next.Load()
			nd.seq.Add(1) // odd: invalidates in-flight unregistered Peeks
			nd.value = nil
			nd.version = 0
			nd.next.Store(nil)
			p.free.Put(nd)
			nd = next
		}
		e.head = nil
		p.lhead++
	}
}

// installBody publishes a new committed version of b, drawing the node
// from the pool for word boxes and retiring the truncated tail into limbo.
// It must only be called from within the STM's serialized commit section
// (legacy path and group-commit combiner — both hold commitMu).
func (s *STM) installBody(b *vbox, e writeEntry, version, keepFrom uint64, shard uint32) {
	nb := s.getBody(b.word, shard)
	if b.word {
		nb.word.Store(e.word)
	} else {
		nb.value = e.value
	}
	nb.version = version
	nb.next.Store(b.head.Load())
	if nb.seq.Load()&1 == 1 {
		nb.seq.Add(1) // even: payload rewrite complete, node publishable
	}
	if tail := truncate(nb, keepFrom); tail != nil && b.word {
		s.retire(tail, version, shard)
	}
	b.head.Store(nb)
}

// installBodyCAS publishes a new committed version without external
// serialization: the write-back primitive of the lock-free commit, where
// several helper threads may attempt the same installation. The version
// check makes it idempotent (whoever wins the CAS installs the body;
// latecomers and laggards observe head.version >= version and skip), and
// because queue order guarantees strictly increasing versions per box,
// skipping is always correct.
//
// Pool interaction is asymmetric by design: a CAS loser's speculative node
// was never published, so it returns to the free list directly; the
// winner's truncated tail is NOT retired into limbo, because laggard
// helpers of already-done requests traverse chains without any registration
// of their own — those tails stay on the garbage collector.
func (s *STM) installBodyCAS(b *vbox, e writeEntry, version, keepFrom uint64, shard uint32) {
	var nb *body
	for {
		cur := b.head.Load()
		if cur.version >= version {
			if nb != nil {
				s.releaseBody(nb, b.word)
			}
			return
		}
		if nb == nil {
			nb = s.getBody(b.word, shard)
			if b.word {
				nb.word.Store(e.word)
			} else {
				nb.value = e.value
			}
			nb.version = version
			if nb.seq.Load()&1 == 1 {
				nb.seq.Add(1)
			}
		}
		nb.next.Store(cur)
		if b.head.CompareAndSwap(cur, nb) {
			truncate(nb, keepFrom)
			return
		}
	}
}
