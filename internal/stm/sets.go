package stm

// Hybrid read/write set representations for the transaction hot path.
//
// Most transactions of the workloads the tuner targets (array scans, TPC-C
// order lines, vacation reservations) touch a handful of boxes. A Go map
// costs an allocation to create, hashing per access, and heap churn per
// grow; for tiny sets a linear scan over an inline array beats it on every
// axis and costs zero allocations because the arrays live inside the pooled
// Tx. Sets spill to a map once they exceed smallSetCap entries, after which
// all operations delegate to the map (the transaction is big anyway, so the
// map's amortized costs are in proportion).

// smallSetCap is the inline capacity before a set spills to a map. Eight
// covers the overwhelming majority of array/TPC-C transactions while
// keeping the linear scans trivially cheap.
const smallSetCap = 8

// writeSet maps *vbox -> writeEntry. The zero value is an empty set ready
// for use. Not safe for concurrent use; callers hold the owning Tx's mutex.
type writeSet struct {
	boxes   [smallSetCap]*vbox
	entries [smallSetCap]writeEntry
	n       int
	m       map[*vbox]writeEntry // non-nil once spilled; then n == 0
}

// size returns the number of entries.
func (w *writeSet) size() int {
	if w.m != nil {
		return len(w.m)
	}
	return w.n
}

// get returns the entry for b, if present.
func (w *writeSet) get(b *vbox) (writeEntry, bool) {
	if w.m != nil {
		e, ok := w.m[b]
		return e, ok
	}
	for i := 0; i < w.n; i++ {
		if w.boxes[i] == b {
			return w.entries[i], true
		}
	}
	return writeEntry{}, false
}

// put inserts or overwrites the entry for b, spilling to a map when the
// inline array is full.
func (w *writeSet) put(b *vbox, e writeEntry) {
	if w.m != nil {
		w.m[b] = e
		return
	}
	for i := 0; i < w.n; i++ {
		if w.boxes[i] == b {
			w.entries[i] = e
			return
		}
	}
	if w.n < smallSetCap {
		w.boxes[w.n] = b
		w.entries[w.n] = e
		w.n++
		return
	}
	w.m = make(map[*vbox]writeEntry, 2*smallSetCap)
	for i := 0; i < w.n; i++ {
		w.m[w.boxes[i]] = w.entries[i]
		w.boxes[i] = nil
		w.entries[i] = writeEntry{}
	}
	w.n = 0
	w.m[b] = e
}

// forEach calls f for every entry. Iteration order is unspecified.
func (w *writeSet) forEach(f func(*vbox, writeEntry)) {
	if w.m != nil {
		for b, e := range w.m {
			f(b, e)
		}
		return
	}
	for i := 0; i < w.n; i++ {
		f(w.boxes[i], w.entries[i])
	}
}

// reset empties the set and releases references so a pooled Tx does not
// pin boxes or values. A spilled map is dropped rather than cleared: spill
// is the rare case, and keeping an empty map would force every later small
// transaction in this Tx's pooled lifetime onto the map path.
func (w *writeSet) reset() {
	for i := 0; i < w.n; i++ {
		w.boxes[i] = nil
		w.entries[i] = writeEntry{}
	}
	w.n = 0
	w.m = nil
}

// boxSet is a hybrid membership set of *vbox used to deduplicate read-set
// records. The zero value is an empty set ready for use.
type boxSet struct {
	small [smallSetCap]*vbox
	n     int
	m     map[*vbox]struct{} // non-nil once spilled; then n == 0
}

// add inserts b, reporting whether it was newly added.
func (s *boxSet) add(b *vbox) bool {
	if s.m != nil {
		if _, ok := s.m[b]; ok {
			return false
		}
		s.m[b] = struct{}{}
		return true
	}
	for i := 0; i < s.n; i++ {
		if s.small[i] == b {
			return false
		}
	}
	if s.n < smallSetCap {
		s.small[s.n] = b
		s.n++
		return true
	}
	s.m = make(map[*vbox]struct{}, 2*smallSetCap)
	for i := 0; i < s.n; i++ {
		s.m[s.small[i]] = struct{}{}
		s.small[i] = nil
	}
	s.n = 0
	s.m[b] = struct{}{}
	return true
}

// reset empties the set, releasing references (see writeSet.reset).
func (s *boxSet) reset() {
	for i := 0; i < s.n; i++ {
		s.small[i] = nil
	}
	s.n = 0
	s.m = nil
}
