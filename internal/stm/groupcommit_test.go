package stm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"autopn/internal/chaos"
	"autopn/internal/obs"
	stmtrace "autopn/internal/stm/trace"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGroupCommitBatchSerialOrder asserts that a combined batch is
// equivalent to some serial order. Each writer commits "take the next
// ticket and record it in my slot" as one transaction, so every update
// commit writes its order into both the shared ticket box and a per-writer
// slot. Concurrent snapshot readers then check two invariants that any
// violation of batch atomicity or ordering would break:
//
//   - max(slots) == ticket: a reader mid-batch that saw a later request's
//     writes (a slot holding order k) without the earlier ones (ticket < k)
//     has caught the combiner publishing requests out of order or
//     non-atomically;
//   - ticket is monotone per reader: per-request clock bumps are observed
//     in order.
//
// Afterwards the clock must equal the number of update commits — exactly
// one clock bump per combined request.
func TestGroupCommitBatchSerialOrder(t *testing.T) {
	s := New(Options{})
	const workers, perW = 8, 150
	ticket := NewVBox(0)
	slots := make([]*VBox[int], workers)
	for i := range slots {
		slots[i] = NewVBox(0)
	}

	done := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			last := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				var tk, mx int
				_ = s.AtomicReadOnly(func(tx *Tx) error {
					tk = ticket.Get(tx)
					mx = 0
					for _, sl := range slots {
						if v := sl.Get(tx); v > mx {
							mx = v
						}
					}
					return nil
				})
				if mx != tk {
					t.Errorf("snapshot tore a batch: max(slots) = %d, ticket = %d", mx, tk)
					return
				}
				if tk < last {
					t.Errorf("clock bumps not monotone: ticket went %d -> %d", last, tk)
					return
				}
				last = tk
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_ = s.Atomic(func(tx *Tx) error {
					k := ticket.Get(tx) + 1
					ticket.Put(tx, k)
					slots[w].Put(tx, k)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	close(done)
	readerWG.Wait()

	const n = workers * perW
	if got := ticket.Peek(); got != n {
		t.Errorf("final ticket = %d, want %d", got, n)
	}
	if got := s.Clock(); got != uint64(n) {
		t.Errorf("clock = %d, want %d (one bump per update commit)", got, n)
	}
	// Every update commit took exactly one of the two group-commit routes.
	if got := s.Stats.InlineCommits() + s.Stats.CombinedCommits(); got != n {
		t.Errorf("inline + combined = %d, want %d", got, n)
	}
}

// TestGroupCommitPrevalidationAbort: a conflict that already exists when
// the committer starts is caught by out-of-lock pre-validation — counted
// as a preval abort, attributed to the conflicting box, and retried to
// success without ever taking a commit-lock route for the failed attempt.
func TestGroupCommitPrevalidationAbort(t *testing.T) {
	tr := stmtrace.New(stmtrace.Options{})
	s := New(Options{Tracer: tr, TraceSampleRate: 1})
	x := NewVBox(0).WithLabel("x")
	y := NewVBox(0)

	readX := make(chan struct{})
	invalidated := make(chan struct{})
	wDone := make(chan error, 1)
	go func() {
		first := true
		wDone <- s.Atomic(func(tx *Tx) error {
			_ = x.Get(tx)
			if first {
				first = false
				close(readX)
				<-invalidated
			}
			y.Put(tx, y.Get(tx)+1)
			return nil
		})
	}()
	<-readX
	if err := s.Atomic(func(tx *Tx) error { x.Put(tx, x.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}
	close(invalidated)
	if err := <-wDone; err != nil {
		t.Fatal(err)
	}

	if got := s.Stats.PrevalAborts(); got != 1 {
		t.Errorf("PrevalAborts = %d, want 1", got)
	}
	if got := s.Stats.TopAborts(); got != 1 {
		t.Errorf("TopAborts = %d, want 1", got)
	}
	// Both the main writer's commit and W's retry went through a lock
	// route; the aborted attempt must not have.
	if got := s.Stats.InlineCommits() + s.Stats.CombinedCommits(); got != 2 {
		t.Errorf("inline + combined = %d, want 2", got)
	}
	if got := tr.AbortCount(stmtrace.ReasonTopValidation); got != 1 {
		t.Errorf("AbortCount(top-validation) = %d, want 1", got)
	}
	rep := tr.Conflicts(4)
	found := false
	for _, hb := range rep.TopBoxes {
		if hb.Box == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("hot boxes missing x: %+v", rep.TopBoxes)
	}
}

// TestChaosCombinerStallParksCommitters stalls the combiner at its named
// chaos point while committers are parked behind it: the parked committers
// neither spin on the commit lock nor deadlock (they all complete after
// Resume), a conflict detected *by the combiner* on another transaction's
// behalf is still attributed to the conflicting VBox on the owner's own
// attempt span, and the fault schedule replays byte-identically.
func TestChaosCombinerStallParksCommitters(t *testing.T) {
	run := func() string {
		inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
			{Name: "stall-combiner", Point: chaos.PointCombiner, Trigger: chaos.Nth(1), Action: chaos.ActStall},
		}})
		defer inj.Close()
		tr := stmtrace.New(stmtrace.Options{})
		s := New(Options{FaultInjector: inj, Tracer: tr, TraceSampleRate: 1})
		x := NewVBox(0).WithLabel("X")
		y := NewVBox(0).WithLabel("Y")
		z := NewVBox(0).WithLabel("Z")

		// Hold the commit lock so every committer fails TryLock and takes
		// the queue path; the first pusher wins the combiner flag and
		// blocks on the lock inside combine().
		s.commitMu.Lock()
		results := make(chan error, 3)
		go func() { results <- s.Atomic(func(tx *Tx) error { z.Put(tx, z.Get(tx)+1); return nil }) }()
		waitFor(t, "Wz queued", func() bool { return s.gcQueueLen() == 1 && s.gcCombining.Load() })
		go func() { results <- s.Atomic(func(tx *Tx) error { x.Put(tx, x.Get(tx)+1); return nil }) }()
		waitFor(t, "Wx queued", func() bool { return s.gcQueueLen() == 2 })
		// Wr reads X before Wx's write is installed, so the combiner —
		// not Wr itself — will detect the conflict during in-lock delta
		// revalidation.
		go func() {
			results <- s.Atomic(func(tx *Tx) error {
				_ = x.Get(tx)
				y.Put(tx, y.Get(tx)+1)
				return nil
			})
		}()
		waitFor(t, "Wr queued", func() bool { return s.gcQueueLen() == 3 })

		// Release the lock: the combiner acquires it, hits the stall, and
		// now holds the commit lock with three committers parked behind it.
		s.commitMu.Unlock()
		waitFor(t, "combiner stalled", func() bool { return inj.StallDepth("stall-combiner") == 1 })
		select {
		case err := <-results:
			t.Fatalf("a committer completed (%v) while the combiner was stalled", err)
		case <-time.After(20 * time.Millisecond):
			// Parked, not deadlocked — and not spinning on commitMu, which
			// the stalled combiner still holds.
		}

		inj.Resume("stall-combiner")
		for i := 0; i < 3; i++ {
			if err := <-results; err != nil {
				t.Fatal(err)
			}
		}

		if got := readCommitted(s, x); got != 1 {
			t.Errorf("X = %d, want 1", got)
		}
		if got := readCommitted(s, y); got != 1 {
			t.Errorf("Y = %d, want 1", got)
		}
		if got := readCommitted(s, z); got != 1 {
			t.Errorf("Z = %d, want 1", got)
		}
		// Wr aborted exactly once, detected by the combiner but attributed
		// on Wr's own attempt to the conflicting box.
		if got := s.Stats.TopAborts(); got != 1 {
			t.Errorf("TopAborts = %d, want 1", got)
		}
		if got := tr.AbortCount(stmtrace.ReasonTopValidation); got != 1 {
			t.Errorf("AbortCount(top-validation) = %d, want 1", got)
		}
		found := false
		for _, hb := range tr.Conflicts(4).TopBoxes {
			if hb.Box == "X" {
				found = true
			}
		}
		if !found {
			t.Error("combiner-detected conflict not attributed to X")
		}
		// Wz and Wx committed inside the stalled combiner's batch.
		if got := s.Stats.CombinedCommits(); got < 2 {
			t.Errorf("CombinedCommits = %d, want >= 2", got)
		}
		if got := s.Stats.CombineBatches(); got < 1 {
			t.Errorf("CombineBatches = %d, want >= 1", got)
		}
		return inj.FormatLog()
	}
	log1 := run()
	log2 := run()
	if log1 == "" {
		t.Fatal("empty chaos event log")
	}
	if log1 != log2 {
		t.Fatalf("combiner-stall schedule not byte-identical across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", log1, log2)
	}
}

// TestGroupCommitRingOverrunFallback overruns the revalidation ring: more
// than gcRingSize commits land between a committer's pre-validation and
// its turn inside the lock, forcing the full read-set re-walk — which must
// still detect a real conflict.
func TestGroupCommitRingOverrunFallback(t *testing.T) {
	s := New(Options{})
	const nWriters = gcRingSize + 2
	boxes := make([]*VBox[int], nWriters)
	for i := range boxes {
		boxes[i] = NewVBox(0)
	}
	extra := NewVBox(0)

	s.commitMu.Lock()
	var wg sync.WaitGroup
	for i := 0; i < nWriters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = s.Atomic(func(tx *Tx) error { boxes[i].Put(tx, boxes[i].Get(tx)+1); return nil })
		}(i)
	}
	waitFor(t, "writers queued", func() bool { return s.gcQueueLen() == nWriters })
	// The straggler reads boxes[1] (which a queued writer will overwrite)
	// at pre-validation clock 0, then parks last in the batch — by its
	// turn, nWriters > gcRingSize commits have landed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Atomic(func(tx *Tx) error {
			_ = boxes[1].Get(tx)
			extra.Put(tx, extra.Get(tx)+1)
			return nil
		})
	}()
	waitFor(t, "straggler queued", func() bool { return s.gcQueueLen() == nWriters+1 })
	s.commitMu.Unlock()
	wg.Wait()

	for i := range boxes {
		if got := readCommitted(s, boxes[i]); got != 1 {
			t.Fatalf("boxes[%d] = %d, want 1", i, got)
		}
	}
	if got := readCommitted(s, extra); got != 1 {
		t.Errorf("extra = %d, want 1", got)
	}
	// Batch positions beyond gcRingSize+1 overran the ring: the last
	// writer and the straggler both fell back to the full re-walk, and the
	// straggler's fallback caught the real conflict.
	if got := s.Stats.PrevalFallbacks(); got != 2 {
		t.Errorf("PrevalFallbacks = %d, want 2", got)
	}
	if got := s.Stats.TopAborts(); got != 1 {
		t.Errorf("TopAborts = %d, want 1 (straggler's conflict)", got)
	}
	if got := s.Clock(); got != uint64(nWriters)+1 {
		t.Errorf("clock = %d, want %d", got, nWriters+1)
	}
}

// TestGroupCommitMetricsExported: the pipeline counters and the batch-size
// histogram flow through Stats.Collect into a registry scrape, and the
// histogram's sample count matches CombineBatches.
func TestGroupCommitMetricsExported(t *testing.T) {
	s := New(Options{})
	a, b := NewVBox(0), NewVBox(0)

	// Force one combined batch of two requests.
	s.commitMu.Lock()
	var wg sync.WaitGroup
	for _, box := range []*VBox[int]{a, b} {
		wg.Add(1)
		go func(box *VBox[int]) {
			defer wg.Done()
			_ = s.Atomic(func(tx *Tx) error { box.Put(tx, box.Get(tx)+1); return nil })
		}(box)
	}
	waitFor(t, "two requests queued", func() bool { return s.gcQueueLen() == 2 })
	s.commitMu.Unlock()
	wg.Wait()
	// And one inline commit.
	if err := s.Atomic(func(tx *Tx) error { a.Put(tx, a.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}

	if got := s.Stats.CombinedCommits(); got != 2 {
		t.Errorf("CombinedCommits = %d, want 2", got)
	}
	if got := s.Stats.InlineCommits(); got != 1 {
		t.Errorf("InlineCommits = %d, want 1", got)
	}
	h := s.Stats.BatchSizes()
	if h == nil {
		t.Fatal("BatchSizes histogram not initialized")
	}
	hs := h.Snapshot()
	if hs.Count != s.Stats.CombineBatches() {
		t.Errorf("batch histogram count = %d, want %d", hs.Count, s.Stats.CombineBatches())
	}
	snap := s.Stats.Snapshot()
	if snap.CombinedCommits != 2 || snap.InlineCommits != 1 {
		t.Errorf("snapshot pipeline counters = %+v", snap)
	}

	reg := obs.NewRegistry()
	s.Stats.Collect(reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"autopn_stm_preval_hits_total",
		"autopn_stm_preval_fallbacks_total",
		"autopn_stm_preval_aborts_total",
		"autopn_stm_commit_inline_total 1",
		"autopn_stm_commit_combined_total 2",
		"autopn_stm_commit_batches_total",
		"autopn_stm_commit_batch_size",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
