package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAtomicReadWrite(t *testing.T) {
	s := New(Options{})
	box := NewVBox(41)
	err := s.Atomic(func(tx *Tx) error {
		if got := box.Get(tx); got != 41 {
			t.Errorf("initial Get = %d, want 41", got)
		}
		box.Put(tx, 42)
		if got := box.Get(tx); got != 42 {
			t.Errorf("read-own-write Get = %d, want 42", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := box.Peek(); got != 42 {
		t.Fatalf("Peek after commit = %d, want 42", got)
	}
	if c := s.Stats.TopCommits(); c != 1 {
		t.Fatalf("TopCommits = %d, want 1", c)
	}
}

func TestAtomicResultGeneric(t *testing.T) {
	s := New(Options{})
	box := NewVBox("hello")
	got, err := AtomicResult(s, func(tx *Tx) (string, error) {
		return box.Get(tx) + " world", nil
	})
	if err != nil || got != "hello world" {
		t.Fatalf("AtomicResult = (%q, %v)", got, err)
	}
}

func TestUserErrorAborts(t *testing.T) {
	s := New(Options{})
	box := NewVBox(1)
	wantErr := errors.New("boom")
	err := s.Atomic(func(tx *Tx) error {
		box.Put(tx, 99)
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if got := box.Peek(); got != 1 {
		t.Fatalf("aborted write leaked: Peek = %d, want 1", got)
	}
	if a := s.Stats.UserAborts(); a != 1 {
		t.Fatalf("UserAborts = %d, want 1", a)
	}
}

func TestConcurrentIncrementsConserved(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := s.Atomic(func(tx *Tx) error {
					box.Put(tx, box.Get(tx)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if got := box.Peek(); got != goroutines*perG {
		t.Fatalf("final = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotIsolationOfReadOnly(t *testing.T) {
	s := New(Options{})
	a := NewVBox(10)
	b := NewVBox(20)

	inReader := make(chan struct{})
	writerDone := make(chan struct{})

	var sum1, sum2 int
	done := make(chan error, 1)
	go func() {
		done <- s.Atomic(func(tx *Tx) error {
			sum1 = a.Get(tx)
			close(inReader)
			<-writerDone // a concurrent writer commits a+b changes here
			sum2 = b.Get(tx)
			return nil
		})
	}()

	<-inReader
	if err := s.Atomic(func(tx *Tx) error {
		a.Put(tx, 100)
		b.Put(tx, 200)
		return nil
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	close(writerDone)
	if err := <-done; err != nil {
		t.Fatalf("reader: %v", err)
	}
	if sum1+sum2 != 30 {
		t.Fatalf("reader saw inconsistent snapshot: a=%d b=%d", sum1, sum2)
	}
}

func TestUpdateTxConflictRetries(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	attempts := 0
	started := make(chan struct{})
	var once sync.Once
	interfered := make(chan struct{})

	go func() {
		<-started
		_ = s.Atomic(func(tx *Tx) error {
			box.Put(tx, box.Get(tx)+100)
			return nil
		})
		close(interfered)
	}()

	err := s.Atomic(func(tx *Tx) error {
		attempts++
		v := box.Get(tx)
		once.Do(func() {
			close(started)
			<-interfered // ensure a conflicting commit lands before ours
		})
		box.Put(tx, v+1)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (first must conflict)", attempts)
	}
	if got := box.Peek(); got != 101 {
		t.Fatalf("final = %d, want 101", got)
	}
	if a := s.Stats.TopAborts(); a == 0 {
		t.Fatal("expected at least one top-level abort")
	}
}

func TestMaxRetriesExceeded(t *testing.T) {
	s := New(Options{MaxRetries: 1})
	box := NewVBox(0)
	ranInterference := false
	err := s.Atomic(func(tx *Tx) error {
		_ = box.Get(tx)
		if !ranInterference {
			ranInterference = true
			done := make(chan struct{})
			go func() {
				s2conflict(t, s, box)
				close(done)
			}()
			<-done
		}
		box.Put(tx, 7)
		return nil
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
}

func s2conflict(t *testing.T, s *STM, box *VBox[int]) {
	t.Helper()
	if err := s.Atomic(func(tx *Tx) error {
		box.Put(tx, box.Get(tx)+1)
		return nil
	}); err != nil {
		t.Errorf("interfering tx: %v", err)
	}
}

func TestNestedSeesParentWrites(t *testing.T) {
	s := New(Options{})
	box := NewVBox(1)
	err := s.Atomic(func(tx *Tx) error {
		box.Put(tx, 5)
		return tx.Parallel(func(child *Tx) error {
			if got := box.Get(child); got != 5 {
				return fmt.Errorf("child sees %d, want parent's 5", got)
			}
			box.Put(child, 6)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := box.Peek(); got != 6 {
		t.Fatalf("final = %d, want 6", got)
	}
	if n := s.Stats.NestedCommits(); n != 1 {
		t.Fatalf("NestedCommits = %d, want 1", n)
	}
}

func TestParentSeesMergedChildWrites(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	err := s.Atomic(func(tx *Tx) error {
		if err := tx.Parallel(func(c *Tx) error {
			box.Put(c, 11)
			return nil
		}); err != nil {
			return err
		}
		if got := box.Get(tx); got != 11 {
			return fmt.Errorf("parent sees %d after child commit, want 11", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func TestSiblingIncrementsAllApplied(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	const children = 8
	err := s.Atomic(func(tx *Tx) error {
		fns := make([]func(*Tx) error, children)
		for i := range fns {
			fns[i] = func(c *Tx) error {
				box.Put(c, box.Get(c)+1)
				return nil
			}
		}
		return tx.Parallel(fns...)
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := box.Peek(); got != children {
		t.Fatalf("final = %d, want %d (sibling conflicts must retry, not lose updates)", got, children)
	}
}

func TestNoGlobalVisibilityBeforeTopCommit(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	childCommitted := make(chan struct{})
	releaseParent := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- s.Atomic(func(tx *Tx) error {
			if err := tx.Parallel(func(c *Tx) error {
				box.Put(c, 123)
				return nil
			}); err != nil {
				return err
			}
			close(childCommitted)
			<-releaseParent
			return nil
		})
	}()
	<-childCommitted
	// The child merged into the parent, but the top-level tx has not
	// committed: other transactions must not see the write.
	v, err := AtomicResult(s, func(tx *Tx) (int, error) { return box.Get(tx), nil })
	if err != nil {
		t.Fatalf("observer: %v", err)
	}
	if v != 0 {
		t.Fatalf("closed nesting violated: observer saw %d before top commit", v)
	}
	close(releaseParent)
	if err := <-done; err != nil {
		t.Fatalf("parent: %v", err)
	}
	if got := box.Peek(); got != 123 {
		t.Fatalf("final = %d, want 123", got)
	}
}

func TestDeepNesting(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(func(c1 *Tx) error {
			box.Put(c1, box.Get(c1)+1)
			return c1.Parallel(func(c2 *Tx) error {
				box.Put(c2, box.Get(c2)+10)
				return c2.Parallel(func(c3 *Tx) error {
					if d := c3.Depth(); d != 3 {
						return fmt.Errorf("depth = %d, want 3", d)
					}
					box.Put(c3, box.Get(c3)+100)
					return nil
				})
			})
		})
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := box.Peek(); got != 111 {
		t.Fatalf("final = %d, want 111", got)
	}
}

func TestParallelForSums(t *testing.T) {
	s := New(Options{})
	const n = 100
	boxes := make([]*VBox[int], n)
	for i := range boxes {
		boxes[i] = NewVBox(i)
	}
	var total atomic.Int64
	err := s.Atomic(func(tx *Tx) error {
		return tx.ParallelFor(n, 7, func(c *Tx, i int) error {
			total.Add(int64(boxes[i].Get(c)))
			boxes[i].Put(c, boxes[i].Get(c)*2)
			return nil
		})
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if want := int64(n * (n - 1) / 2); total.Load() != want {
		t.Fatalf("sum = %d, want %d", total.Load(), want)
	}
	for i, b := range boxes {
		if got := b.Peek(); got != 2*i {
			t.Fatalf("boxes[%d] = %d, want %d", i, got, 2*i)
		}
	}
}

func TestChildErrorPropagates(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	wantErr := errors.New("child failed")
	err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(c *Tx) error { box.Put(c, 1); return nil },
			func(c *Tx) error { return wantErr },
		)
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The whole top-level transaction aborted: no writes visible.
	if got := box.Peek(); got != 0 {
		t.Fatalf("Peek = %d, want 0 after user abort", got)
	}
}

func TestNestedReadValidatedAtTopLevel(t *testing.T) {
	// A child's global read must participate in top-level validation: a
	// conflicting external commit between the child's read and the parent's
	// commit has to abort (and retry) the top-level transaction.
	s := New(Options{})
	box := NewVBox(0)
	out := NewVBox(0)
	attempts := 0
	var once sync.Once
	err := s.Atomic(func(tx *Tx) error {
		attempts++
		var seen int
		if err := tx.Parallel(func(c *Tx) error {
			seen = box.Get(c)
			return nil
		}); err != nil {
			return err
		}
		once.Do(func() {
			done := make(chan struct{})
			go func() {
				_ = s.Atomic(func(tx2 *Tx) error {
					box.Put(tx2, 999)
					return nil
				})
				close(done)
			}()
			<-done
		})
		out.Put(tx, seen+1)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (nested read must be validated)", attempts)
	}
	if got := out.Peek(); got != 1000 {
		t.Fatalf("out = %d, want 1000 (committed run must see the interfering write)", got)
	}
}

func TestReadOnlyTopCounted(t *testing.T) {
	s := New(Options{})
	box := NewVBox(7)
	for i := 0; i < 3; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			_ = box.Get(tx)
			return nil
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	}
	if ro := s.Stats.ReadOnlyTops(); ro != 3 {
		t.Fatalf("ReadOnlyTops = %d, want 3", ro)
	}
}

func TestVersionGCBoundsChains(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	for i := 0; i < 100; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			box.Put(tx, i)
			return nil
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	}
	if n := box.core.chainLen(); n > 3 {
		t.Fatalf("chainLen = %d, want <= 3 with GC enabled", n)
	}

	sNoGC := New(Options{DisableGC: true})
	box2 := NewVBox(0)
	for i := 0; i < 50; i++ {
		if err := sNoGC.Atomic(func(tx *Tx) error {
			box2.Put(tx, i)
			return nil
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	}
	if n := box2.core.chainLen(); n != 51 {
		t.Fatalf("chainLen = %d, want 51 with GC disabled", n)
	}
}

func TestOldSnapshotSurvivesGC(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	inReader := make(chan struct{})
	writersDone := make(chan struct{})
	var sawFirst, sawSecond int
	done := make(chan error, 1)
	go func() {
		done <- s.Atomic(func(tx *Tx) error {
			sawFirst = box.Get(tx)
			close(inReader)
			<-writersDone
			sawSecond = box.Get(tx) // must still resolve the old version
			return nil
		})
	}()
	<-inReader
	for i := 1; i <= 20; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			box.Put(tx, i)
			return nil
		}); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	close(writersDone)
	if err := <-done; err != nil {
		t.Fatalf("reader: %v", err)
	}
	if sawFirst != 0 || sawSecond != 0 {
		t.Fatalf("snapshot not stable under GC: first=%d second=%d", sawFirst, sawSecond)
	}
}

func TestGCSnapshotRegistrationRace(t *testing.T) {
	// Regression test: snapshot registration must be atomic with the clock
	// sample, or a rapid committer can garbage-collect the version a
	// just-beginning reader is entitled to (observed as "version chain
	// truncated below an active snapshot"). Hammer readers against fast
	// writers on both commit strategies.
	for _, lockFree := range []bool{false, true} {
		s := New(Options{LockFreeCommit: lockFree})
		box := NewVBox(0)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = s.Atomic(func(tx *Tx) error {
						box.Put(tx, box.Get(tx)+1)
						return nil
					})
				}
			}()
		}
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = s.Atomic(func(tx *Tx) error {
						_ = box.Get(tx)
						return nil
					})
				}
			}()
		}
		time.Sleep(150 * time.Millisecond)
		close(stop)
		wg.Wait()
	}
}

func TestCommitHookFires(t *testing.T) {
	var hooks atomic.Int64
	s := New(Options{CommitHook: func() { hooks.Add(1) }})
	box := NewVBox(0)
	for i := 0; i < 5; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			box.Put(tx, i)
			return nil
		}); err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	}
	if hooks.Load() != 5 {
		t.Fatalf("hooks = %d, want 5", hooks.Load())
	}
}

func TestUseAfterFinishPanics(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	var leaked *Tx
	if err := s.Atomic(func(tx *Tx) error {
		leaked = tx
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on use of finished transaction")
		}
	}()
	box.Get(leaked)
}

func TestBlindSiblingWritesLastMergeWins(t *testing.T) {
	// Blind (write-only) sibling writes do not conflict; the tree's final
	// state reflects one of them and the transaction commits.
	s := New(Options{})
	box := NewVBox(0)
	err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(c *Tx) error { box.Put(c, 1); return nil },
			func(c *Tx) error { box.Put(c, 2); return nil },
		)
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := box.Peek(); got != 1 && got != 2 {
		t.Fatalf("final = %d, want 1 or 2", got)
	}
	if a := s.Stats.NestedAborts(); a != 0 {
		t.Fatalf("NestedAborts = %d, want 0 for blind writes", a)
	}
}

func TestModify(t *testing.T) {
	s := New(Options{})
	box := NewVBox(10)
	if err := s.Atomic(func(tx *Tx) error {
		box.Modify(tx, func(v int) int { return v * 3 })
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := box.Peek(); got != 30 {
		t.Fatalf("final = %d, want 30", got)
	}
}

func TestManyBoxesManyWorkersInvariant(t *testing.T) {
	// Bank-transfer invariant: concurrent transfers (with nested parallel
	// reads) conserve the total balance.
	s := New(Options{})
	const accounts = 16
	boxes := make([]*VBox[int], accounts)
	for i := range boxes {
		boxes[i] = NewVBox(100)
	}
	const workers, transfers = 6, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (seed + i) % accounts
				to := (seed + i*7 + 1) % accounts
				if from == to {
					continue
				}
				if err := s.Atomic(func(tx *Tx) error {
					amt := 1 + (i % 5)
					boxes[from].Put(tx, boxes[from].Get(tx)-amt)
					boxes[to].Put(tx, boxes[to].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
				}
			}
		}(w * 3)
	}
	wg.Wait()
	total := 0
	for _, b := range boxes {
		total += b.Peek()
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d (money created or destroyed)", total, accounts*100)
	}
}

func TestAtomicReadOnly(t *testing.T) {
	s := New(Options{})
	box := NewVBox(5)
	got := 0
	if err := s.AtomicReadOnly(func(tx *Tx) error {
		got = box.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("read %d", got)
	}
	if ro := s.Stats.ReadOnlyTops(); ro != 1 {
		t.Fatalf("ReadOnlyTops = %d", ro)
	}
	// A write inside a read-only transaction must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on write in read-only tx")
		}
	}()
	_ = s.AtomicReadOnly(func(tx *Tx) error {
		box.Put(tx, 6)
		return nil
	})
}

func TestCustomBackoffInvoked(t *testing.T) {
	var calls atomic.Int64
	s := New(Options{Backoff: func(attempt int) { calls.Add(1) }})
	box := NewVBox(0)
	ranInterference := false
	if err := s.Atomic(func(tx *Tx) error {
		_ = box.Get(tx)
		if !ranInterference {
			ranInterference = true
			done := make(chan struct{})
			go func() {
				s2conflict(t, s, box)
				close(done)
			}()
			<-done
		}
		box.Put(tx, box.Get(tx)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("custom backoff never invoked despite a forced conflict")
	}
}
