package stm

import "autopn/internal/obs"

// Collect registers the STM's transaction counters with r as
// read-at-export bridges. The commit path keeps writing its sharded
// striped counters (see stats.go); the registry reads the cross-shard sums
// only when a scrape or snapshot asks for them, so instrumentation adds
// zero cost to the hot path.
//
// Registered metrics (all counters):
//
//	autopn_stm_top_commits_total
//	autopn_stm_top_aborts_total
//	autopn_stm_read_only_tops_total
//	autopn_stm_nested_commits_total
//	autopn_stm_nested_aborts_total
//	autopn_stm_user_aborts_total
//	autopn_stm_versions_written_total
//	autopn_stm_livelock_trips_total
//	autopn_stm_ctx_cancels_total
//	autopn_stm_preval_aborts_total
//	autopn_stm_preval_hits_total
//	autopn_stm_preval_fallbacks_total
//	autopn_stm_commit_inline_total
//	autopn_stm_commit_combined_total
//	autopn_stm_commit_batches_total
//	autopn_stm_body_pool_hits_total
//	autopn_stm_body_pool_misses_total
//	autopn_stm_body_retired_total
//
// plus the combiner batch-size histogram autopn_stm_commit_batch_size
// (see groupcommit.go for the commit-pipeline counters' semantics).
func (s *Stats) Collect(r *obs.Registry) {
	r.CounterFunc("autopn_stm_top_commits_total", s.TopCommits)
	r.CounterFunc("autopn_stm_top_aborts_total", s.TopAborts)
	r.CounterFunc("autopn_stm_read_only_tops_total", s.ReadOnlyTops)
	r.CounterFunc("autopn_stm_nested_commits_total", s.NestedCommits)
	r.CounterFunc("autopn_stm_nested_aborts_total", s.NestedAborts)
	r.CounterFunc("autopn_stm_user_aborts_total", s.UserAborts)
	r.CounterFunc("autopn_stm_versions_written_total", s.VersionsWritten)
	r.CounterFunc("autopn_stm_livelock_trips_total", s.LivelockTrips)
	r.CounterFunc("autopn_stm_ctx_cancels_total", s.CtxCancels)
	r.CounterFunc("autopn_stm_preval_aborts_total", s.PrevalAborts)
	r.CounterFunc("autopn_stm_preval_hits_total", s.PrevalHits)
	r.CounterFunc("autopn_stm_preval_fallbacks_total", s.PrevalFallbacks)
	r.CounterFunc("autopn_stm_commit_inline_total", s.InlineCommits)
	r.CounterFunc("autopn_stm_commit_combined_total", s.CombinedCommits)
	r.CounterFunc("autopn_stm_commit_batches_total", s.CombineBatches)
	r.CounterFunc("autopn_stm_body_pool_hits_total", s.BodyPoolHits)
	r.CounterFunc("autopn_stm_body_pool_misses_total", s.BodyPoolMisses)
	r.CounterFunc("autopn_stm_body_retired_total", s.BodyRetired)
	if h := s.BatchSizes(); h != nil {
		r.RegisterHistogram("autopn_stm_commit_batch_size", h)
	}
}
