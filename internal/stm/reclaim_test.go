package stm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autopn/internal/chaos"
)

// Tests for the pooled version-record lifecycle (bodypool.go): the
// grace-period limbo ring must never recycle a node below the snapshot
// registry's horizon, and the whole machinery must be race-clean under
// concurrent readers, writers, unregistered Peeks, and pinned snapshots.

// limboLive reports how many retired segments currently sit in the limbo
// ring (white-box; callers must be quiesced or hold commitMu).
func (s *STM) limboLive() int {
	return int(s.bodies.ltail - s.bodies.lhead)
}

// TestBodyPoolHorizonGate pins a snapshot and verifies, deterministically,
// that a segment retired above the pinned version stays in limbo — not
// reused — until the pin is released, and is reclaimed promptly afterwards.
func TestBodyPoolHorizonGate(t *testing.T) {
	s := New(Options{})
	b := NewVBox(uint64(0))
	inc := func() {
		t.Helper()
		if err := s.Atomic(func(tx *Tx) error {
			b.Put(tx, b.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Build version history so a later truncation has a tail to retire.
	inc()
	inc()
	inc()

	// Pin the current clock as an active snapshot: the horizon can no
	// longer advance past it.
	pinVer, pinSlot := s.beginSnapshot(0)
	if pinSlot < 0 {
		t.Fatalf("pin fell off the registry fast path (slot %d)", pinSlot)
	}

	retired0 := s.Stats.BodyRetired()

	// The next commit truncates the chain down to the newest body visible
	// at pinVer, retiring the older tail at an epoch above the pin. (It may
	// also drain pre-pin limbo entries whose epochs the pin still covers —
	// that is correct, so only the front entry's epoch is asserted.)
	inc()
	if got := s.Stats.BodyRetired(); got <= retired0 {
		t.Fatalf("BodyRetired = %d, want > %d (commit above a pin must retire the old tail)", got, retired0)
	}
	if got := s.limboLive(); got < 1 {
		t.Fatalf("limboLive = %d, want >= 1", got)
	}
	frozenHead := s.bodies.lhead

	// While the pin holds, further commits must not drain that entry: its
	// epoch is above the pinned snapshot, so reuse would hand a node out
	// from under a potential reader at pinVer.
	for i := 0; i < 10; i++ {
		inc()
	}
	if s.bodies.lhead != frozenHead {
		t.Fatalf("limbo drained below an active snapshot: lhead %d, want %d", s.bodies.lhead, frozenHead)
	}
	if e := &s.bodies.limbo[frozenHead&limboMask]; e.head == nil || e.epoch <= pinVer {
		t.Fatalf("front limbo entry corrupted: head=%v epoch=%d (pin %d)", e.head, e.epoch, pinVer)
	}

	// Release the pin: the very next commit's horizon covers the entry and
	// the drain must happen.
	s.unregisterSnapshot(pinVer, pinSlot)
	inc()
	if s.bodies.lhead == frozenHead {
		t.Fatalf("limbo entry not reclaimed after the pin was released")
	}

	// With reclamation flowing again, the free list feeds installs: over a
	// burst of commits at least one must be a pool hit.
	hits0 := s.Stats.BodyPoolHits()
	for i := 0; i < 100; i++ {
		inc()
	}
	if got := s.Stats.BodyPoolHits(); got == hits0 {
		t.Errorf("BodyPoolHits = %d after 100 commits post-release, want growth", got)
	}
}

// TestBodyPoolWordRoundTrip sanity-checks the inline word representation
// across the type spectrum it covers, through commits and Peeks.
func TestBodyPoolWordRoundTrip(t *testing.T) {
	s := New(Options{})
	bi := NewVBox(int64(-7))
	bu := NewVBox(uint8(200))
	bb := NewVBox(false)
	bf := NewVBox(3.5)
	if err := s.Atomic(func(tx *Tx) error {
		bi.Set(tx, -42)
		bu.Set(tx, 255)
		bb.Set(tx, true)
		if old := bf.Swap(tx, -0.25); old != 3.5 {
			t.Errorf("Swap returned %v, want 3.5", old)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := bi.Peek(); got != -42 {
		t.Errorf("int64 Peek = %d, want -42", got)
	}
	if got := bu.Peek(); got != 255 {
		t.Errorf("uint8 Peek = %d, want 255", got)
	}
	if got := bb.Peek(); got != true {
		t.Errorf("bool Peek = %v, want true", got)
	}
	if got := bf.Peek(); got != -0.25 {
		t.Errorf("float64 Peek = %v, want -0.25", got)
	}
	// Boxed representation still works (struct-typed box).
	type pair struct{ a, b int }
	bp := NewVBox(pair{1, 2})
	if err := s.Atomic(func(tx *Tx) error {
		bp.Put(tx, pair{3, 4})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := bp.Peek(); got != (pair{3, 4}) {
		t.Errorf("pair Peek = %v, want {3 4}", got)
	}
}

// reclaimStress runs the shared reader/writer storm: writers keep all
// boxes equal within one transaction, readers assert that equality at
// their snapshot, a pinned reader holds an old snapshot mid-traversal, and
// an unregistered Peek hammer exercises the seqlock path. Any reuse of a
// version record below the registry horizon surfaces as a broken
// invariant, a "chain truncated" panic, or a race-detector report.
func reclaimStress(t *testing.T, s *STM, writes int, expectRetire bool) {
	t.Helper()
	const nBoxes = 4
	boxes := make([]*VBox[uint64], nBoxes)
	for i := range boxes {
		boxes[i] = NewVBox(uint64(0))
	}
	readAll := func(tx *Tx) error {
		v0 := boxes[0].Get(tx)
		for _, bx := range boxes[1:] {
			if v := bx.Get(tx); v != v0 {
				t.Errorf("snapshot tore: %d vs %d", v, v0)
				return nil
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	var writersLeft atomic.Int64
	stop := make(chan struct{})
	// Writers: advance all boxes in lockstep.
	writersLeft.Store(2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer writersLeft.Add(-1)
			for i := 0; i < writes; i++ {
				if err := s.Atomic(func(tx *Tx) error {
					v := boxes[0].Get(tx)
					for _, bx := range boxes {
						bx.Put(tx, v+1)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Snapshot readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.AtomicReadOnly(readAll); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Pinned reader: begins, then dawdles mid-transaction so its (old)
	// snapshot stays registered while writers churn versions past it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.AtomicReadOnly(func(tx *Tx) error {
				_ = boxes[0].Get(tx)
				time.Sleep(2 * time.Millisecond)
				return readAll(tx)
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Unregistered Peek hammer (the seqlock path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, bx := range boxes {
				_ = bx.Peek()
			}
		}
	}()

	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	// Writers finish on their own; readers run until the writers are done
	// (or a safety deadline passes).
	go func() {
		defer close(stop)
		deadline := time.After(60 * time.Second)
		for writersLeft.Load() > 0 {
			select {
			case <-deadline:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	<-done

	want := uint64(2 * writes)
	for i, bx := range boxes {
		if got := bx.Peek(); got != want {
			t.Errorf("box %d = %d, want %d", i, got, want)
		}
	}
	if expectRetire && s.Stats.BodyRetired() == 0 {
		t.Errorf("stress run retired no bodies; reclamation untested")
	}
}

// TestReclaimStress runs the storm on the default (group-commit) path and
// the legacy serialized path — the two strategies that pool through limbo.
func TestReclaimStress(t *testing.T) {
	writes := 3000
	if testing.Short() {
		writes = 500
	}
	t.Run("Group", func(t *testing.T) {
		t.Parallel()
		reclaimStress(t, New(Options{}), writes, true)
	})
	t.Run("Legacy", func(t *testing.T) {
		t.Parallel()
		reclaimStress(t, New(Options{DisableGroupCommit: true}), writes, true)
	})
	t.Run("LockFree", func(t *testing.T) {
		// The lock-free path pools only CAS losers' speculative nodes;
		// run the same storm to cover releaseBody under contention.
		t.Parallel()
		reclaimStress(t, New(Options{LockFreeCommit: true}), writes, false)
	})
}

// TestChaosReclaimStallWindow is the hazard-window scenario from the
// issue: a committer stalled at PointCommit holds the commit lock with its
// old snapshot registered, pinning the horizon, while readers keep
// traversing chains whose tails were retired above that snapshot. The
// stalled window must neither recycle below the pin (asserted white-box
// after quiesce) nor perturb any reader.
func TestChaosReclaimStallWindow(t *testing.T) {
	inj := chaos.New(chaos.Options{Seed: chaosSeed(t), Rules: []chaos.Rule{
		{Name: "stall", Point: chaos.PointCommit, Trigger: chaos.Nth(40), Action: chaos.ActStall},
		{Name: "reclaim-delay", Point: chaos.PointReclaim, Trigger: chaos.Prob(0.2), Action: chaos.ActDelay, Delay: 100 * time.Microsecond},
	}})
	defer inj.Close()
	s := New(Options{DisableGroupCommit: true, FaultInjector: inj})

	writes := 400
	if testing.Short() {
		writes = 120
	}
	var resumed sync.WaitGroup
	resumed.Add(1)
	go func() {
		defer resumed.Done()
		// Hold the stalled committer (and with it the horizon) mid-commit
		// for a while, then release it so the storm can finish.
		for inj.StallDepth("stall") == 0 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
		inj.Resume("stall")
	}()
	reclaimStress(t, s, writes, true)
	resumed.Wait()
	if inj.Injected("stall") == 0 {
		t.Fatalf("stall rule never fired; the hazard window was not exercised")
	}
}
