package stm

import (
	"sync"
	"sync/atomic"
)

// This file implements the active-snapshot registry used by version GC.
//
// The registry answers one question — "what is the oldest snapshot any
// running top-level transaction might still read?" — and must answer it
// without making begin/end serialize on a global lock, because begin/end is
// the hottest path in the system and any serialization there distorts the
// throughput-vs-parallelism surface the tuner optimizes (a fixed-overhead
// artifact, not a workload property).
//
// Design: a fixed array of cache-line-padded slots, each holding one active
// snapshot version (biased by +1 so 0 can mean "free"). Beginning a
// transaction claims a free slot with a single CAS and publishes its
// snapshot; ending one stores 0. The commit-side GC-horizon computation
// performs a lazy scan of all slots — commits are orders of magnitude rarer
// than begins under the workloads that matter, so the scan is the right
// place to pay.
//
// # Correctness: the sample-and-register atomicity invariant
//
// The old mutex registry made "sample the clock" and "become visible to GC"
// one critical section. Without that, a committer could compute a horizon
// that does not include a just-beginning reader and truncate the versions
// the reader is entitled to. The lock-free registry preserves the invariant
// with a publish-then-validate protocol on the reader and a clock-first
// scan on the committer:
//
//   reader:    publish slot := v+1 (v = clock sample); reload the clock;
//              if it moved, republish the new value and validate again.
//              The snapshot is the last *validated* value.
//   committer: c1 := clock load; scan all slots; horizon = min(c1, slots).
//
// Claim: a reader with validated snapshot v is never hurt by a horizon H
// computed concurrently. Two cases on the committer's clock sample c1
// (Go atomics are sequentially consistent, so a total order over the loads
// and stores below exists):
//
//  1. c1 <= v: H <= c1 <= v. Truncation keeps the newest body with
//     version <= H reachable, and every snapshot >= H resolves to that body
//     or newer, so the reader is safe.
//  2. c1 > v: the clock is monotone, so the store that advanced it past v
//     comes after the reader's validating load (which returned v), which
//     comes after the reader's publish of v+1. The committer's slot scan
//     comes after its clock load c1, hence after all of the above: the scan
//     observes the reader's slot occupied at v, forcing H <= v.
//
// In both cases H <= v or the reader is visible — exactly the guarantee
// the mutex provided, with no lock on the begin path.
//
// # Overflow
//
// More than snapSlots simultaneous top-level transactions are possible
// (admission may be unbounded). Late arrivals fall back to a small
// mutex-guarded refcount map. The reader increments overflowN *before*
// sampling the clock under the mutex; the committer checks overflowN after
// its clock load and takes the mutex only when it is nonzero. The same
// two-case argument applies: if the committer's horizon exceeds the
// overflow reader's snapshot v, the clock advanced past v after the reader
// sampled it — and the reader's overflowN increment precedes its sample, so
// the committer's overflowN load (which follows its clock load) observes
// the count and scans the map under the mutex, where it either sees the
// entry or serializes before the reader's registration entirely (in which
// case its c1 predates the reader's sample and H <= c1 <= v).

const (
	// snapSlots is the number of registry stripes. It bounds the number of
	// top-level transactions that can begin without touching a lock; beyond
	// it, admission still works through the overflow map. 64 comfortably
	// covers the paper's (t) search space on commodity core counts.
	snapSlots    = 64
	snapSlotMask = snapSlots - 1
)

// Tx.snapSlot sentinels (non-negative values are registry slot indices).
const (
	slotNone     = -1 // not registered (Options.DisableGC)
	slotOverflow = -2 // registered in the overflow map
)

// snapSlot is one stripe of the registry: a single published snapshot
// version, biased by +1 (0 = free), alone on its cache line so that claims
// and releases by different cores never false-share.
type snapSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// snapRegistry is the lock-free active-snapshot registry plus its mutex
// overflow. It is embedded by value in STM.
type snapRegistry struct {
	slots [snapSlots]snapSlot

	// overflowN is maintained so the commit path can skip the mutex when no
	// overflow registrations exist (the common case). See the ordering
	// argument above for why it is incremented before the clock sample.
	overflowN  atomic.Int64
	overflowMu sync.Mutex
	overflow   map[uint64]int
}

// beginSnapshot samples the clock and registers the resulting snapshot as
// active, returning the snapshot version and the slot handle to pass to
// unregisterSnapshot. hint seeds the slot probe so that a pooled Tx reuses
// the same slot (and therefore the same cache line) across lifetimes.
func (s *STM) beginSnapshot(hint uint32) (uint64, int32) {
	if s.opts.DisableGC {
		return s.clock.Load(), slotNone
	}
	for probe := uint32(0); probe < snapSlots; probe++ {
		sl := &s.snaps.slots[(hint+probe)&snapSlotMask]
		v := s.clock.Load()
		if !sl.v.CompareAndSwap(0, v+1) {
			continue // occupied; try the next stripe
		}
		// Publish-then-validate: only a value the clock still held *after*
		// the publish counts as the snapshot (see file comment). Once the
		// CAS succeeded the slot is owned, so plain stores suffice.
		for {
			v2 := s.clock.Load()
			if v2 == v {
				return v, int32((hint + probe) & snapSlotMask)
			}
			v = v2
			sl.v.Store(v + 1)
		}
	}
	// Every stripe busy: fall back to the refcount map. The increment of
	// overflowN must precede the clock sample (ordering argument above).
	s.snaps.overflowN.Add(1)
	s.snaps.overflowMu.Lock()
	v := s.clock.Load()
	if s.snaps.overflow == nil {
		s.snaps.overflow = make(map[uint64]int)
	}
	s.snaps.overflow[v]++
	s.snaps.overflowMu.Unlock()
	return v, slotOverflow
}

// unregisterSnapshot drops the registration made by beginSnapshot.
func (s *STM) unregisterSnapshot(v uint64, slot int32) {
	switch {
	case slot >= 0:
		s.snaps.slots[slot].v.Store(0)
	case slot == slotOverflow:
		s.snaps.overflowMu.Lock()
		if n := s.snaps.overflow[v]; n <= 1 {
			delete(s.snaps.overflow, v)
		} else {
			s.snaps.overflow[v] = n - 1
		}
		s.snaps.overflowN.Add(-1)
		s.snaps.overflowMu.Unlock()
	}
}

// gcHorizon returns the newest version that every active or future snapshot
// can still resolve: the minimum active snapshot, or the current clock when
// nothing is active. The clock MUST be loaded before the slot scan — the
// safety argument at the top of this file depends on that order.
func (s *STM) gcHorizon() uint64 {
	if s.opts.DisableGC {
		return 0
	}
	h := s.clock.Load()
	for i := range s.snaps.slots {
		if x := s.snaps.slots[i].v.Load(); x != 0 && x-1 < h {
			h = x - 1
		}
	}
	if s.snaps.overflowN.Load() > 0 {
		s.snaps.overflowMu.Lock()
		for v := range s.snaps.overflow {
			if v < h {
				h = v
			}
		}
		s.snaps.overflowMu.Unlock()
	}
	return h
}
