// Package stm implements a multi-version software transactional memory with
// closed parallel nesting, modeled after JVSTM (Cachopo & Rito-Silva;
// parallel nesting per Diegues & Cachopo), the PN-STM the paper integrates
// AutoPN with.
//
// Top-level transactions read a consistent snapshot identified by the value
// of a global version clock at begin time. Writes are buffered in per-
// transaction write sets and published atomically at commit after read-set
// validation; read-only transactions never abort. The default commit path
// is a flat-combining group commit with out-of-lock pre-validation (see
// groupcommit.go and docs/STM.md, "Commit pipeline"); JVSTM's 2011
// lock-free helping commit (Options.LockFreeCommit) and the classic
// fully-serialized commit section (Options.DisableGroupCommit) remain
// selectable. All paths preserve every property the tuner observes.
//
// Closed parallel nesting lets a transaction run child transactions
// concurrently via Tx.Parallel. Children see their ancestors' uncommitted
// writes, detect conflicts with sibling commits through a per-tree nested
// version clock, and merge their write sets into the parent on commit.
// Nothing becomes globally visible until the top-level transaction commits.
//
// Admission of top-level transactions and of nested children is gated
// through the Throttle interface, which the actuator (package pnpool)
// implements with resizable semaphores; this is how the (t, c) parallelism
// degree chosen by the tuner is enforced without modifying application code.
//
// The begin/commit hot path is engineered to touch no global lock and,
// amortized, no allocator: snapshot registration uses a striped lock-free
// registry (registry.go), transaction state is pooled (pool.go) with
// inline small-array read/write sets (sets.go), and counters are sharded
// (stats.go). See docs/STM.md, "Hot path & memory discipline".
package stm

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/chaos"
	"autopn/internal/stats"
	stmtrace "autopn/internal/stm/trace"
)

// Throttle gates admission of transactions. Implementations must be safe
// for concurrent use. A nil Throttle on an STM means unbounded admission.
type Throttle interface {
	// EnterTop blocks until a top-level slot is available.
	EnterTop()
	// ExitTop releases a top-level slot.
	ExitTop()
	// NewTreeGate returns the gate limiting concurrent nested transactions
	// for one transaction tree. It is called once per top-level transaction
	// attempt that spawns children.
	NewTreeGate() TreeGate
}

// TreeGate limits the number of concurrently running nested transactions
// within a single transaction tree.
type TreeGate interface {
	// EnterChild blocks until a child slot is available in this tree.
	EnterChild()
	// ExitChild releases a child slot.
	ExitChild()
}

// Scheduler steers top-level transactions onto conflict-domain lanes
// (internal/sched implements it). The retry loop calls Admit before every
// attempt whose conflict key is known — declared by the caller via the
// *Hint entry points, or learned from the attributed box of a previous
// abort — and Leave after the attempt. Admit returns a lane token (>= 0)
// when the attempt was serialized behind a hot domain, or -1 when it
// should proceed optimistically; implementations must keep the
// no-domains-promoted path to a single atomic load, which is what keeps a
// scheduler-enabled-but-cold STM within the hot-path budget.
type Scheduler interface {
	Admit(key uintptr) int
	Leave(lane int)
}

// Options configures an STM instance.
type Options struct {
	// Throttle gates transaction admission; nil means unbounded.
	Throttle Throttle
	// CommitHook, if non-nil, is invoked after every top-level commit
	// (outside the commit critical section). The KPI monitor subscribes
	// here.
	CommitHook func()
	// MaxRetries bounds the number of times a conflicted top-level
	// transaction is retried before Atomic gives up with ErrTooManyRetries.
	// Zero means retry without bound (the default; TM liveness is ensured
	// because contention eventually drains).
	MaxRetries int
	// DisableGC turns off old-version truncation (useful for tests that
	// inspect version chains).
	DisableGC bool
	// LockFreeCommit selects JVSTM's lock-free, helping-based commit
	// algorithm (Fernandes & Cachopo 2011) instead of the classic
	// serialized commit section. See lockfree.go.
	LockFreeCommit bool
	// DisableGroupCommit falls back to the legacy fully-serialized commit
	// section (one global lock held across full read-set validation and
	// write-back) instead of the default flat-combining group-commit
	// pipeline with out-of-lock pre-validation (see groupcommit.go).
	// Escape hatch for comparison benchmarks and bisection; ignored when
	// LockFreeCommit is set.
	DisableGroupCommit bool
	// Backoff replaces the contention-management delay between retries of
	// a conflicted top-level transaction (default: capped exponential
	// backoff with jitter). Backoff(0) is called before the second
	// attempt.
	Backoff func(attempt int)
	// Tracer, if non-nil, receives sampled transaction spans and conflict
	// attribution (see internal/stm/trace). Whether anything is sampled is
	// governed by TraceSampleRate; both are swappable at runtime via
	// SetTracer / SetTraceSampleRate.
	Tracer *stmtrace.Tracer
	// TraceSampleRate is the fraction of top-level transactions traced,
	// in [0, 1]. The whole parallel-nesting tree of a sampled transaction
	// is traced. Zero (the default) keeps tracing off: the begin path then
	// pays a single atomic load and a predictable branch.
	TraceSampleRate float64
	// Retry, if non-nil, replaces the default retry behavior of conflicted
	// transactions: capped exponential backoff with jitter, a per-
	// transaction attempt budget (MaxAttempts supersedes the legacy
	// MaxRetries), and livelock detection. A user Backoff function still
	// overrides the policy's delay curve. See RetryPolicy.
	Retry *RetryPolicy
	// FaultInjector, if non-nil, arms the chaos hook points compiled into
	// both commit paths (see internal/chaos and docs/ROBUSTNESS.md). When
	// nil — the production default — every hook is a single nil-check
	// branch.
	FaultInjector *chaos.Injector
	// Scheduler, if non-nil, gates top-level transaction attempts through
	// conflict-domain lanes (see the Scheduler interface and
	// internal/sched). With a scheduler attached, every abort's attributed
	// box is additionally recorded into the tracer's hot-box table even
	// for unsampled transactions (the controller needs live windowed
	// contention, not a sampled sliver), so pair it with a Tracer. Nil —
	// the default — costs one nil check per attempt.
	Scheduler Scheduler
}

// ErrTooManyRetries is returned by Atomic when Options.MaxRetries is set
// and exceeded.
var ErrTooManyRetries = errors.New("stm: transaction exceeded retry limit")

// STM is an isolated transactional memory universe: a global version clock,
// a commit section, and bookkeeping of active snapshots for version GC.
// Boxes are not tied to an STM instance; an application must simply use one
// STM consistently for the boxes it guards (sharing boxes across STM
// instances forfeits atomicity between them).
type STM struct {
	opts  Options
	clock atomic.Uint64

	commitMu sync.Mutex

	// Flat-combining group-commit machinery (the default update-commit
	// path); see groupcommit.go. gcStack is the MPSC request stack,
	// gcCombining the combiner-election flag, gcRing the recent-commit
	// summaries for O(delta) in-lock revalidation (guarded by commitMu),
	// gcReqPool the request-node recycler.
	gcStack     atomic.Pointer[gcRequest]
	gcCombining atomic.Bool
	gcRing      commitRing
	gcReqPool   sync.Pool

	// Lock-free commit queue (Options.LockFreeCommit); see lockfree.go.
	lfHead atomic.Pointer[commitRequest]
	lfTail atomic.Pointer[commitRequest]

	// Active-snapshot registry for version GC; see registry.go.
	snaps snapRegistry

	// txPool recycles transaction state; see pool.go.
	txPool sync.Pool

	// bodies recycles retired version records through epoch-based
	// reclamation keyed by the snapshot registry's horizon; see bodypool.go.
	bodies bodyPool

	// Transaction tracing (internal/stm/trace). traceThreshold is the
	// sampling gate the begin path loads: 0 means off, ^0 means always,
	// anything else is compared against a per-transaction splitmix64 draw.
	// Keeping the gate on the STM (not the tracer) makes "tracing
	// disabled" exactly one atomic load, tracer attached or not.
	tracer         atomic.Pointer[stmtrace.Tracer]
	traceThreshold atomic.Uint64
	traceSeq       atomic.Uint64

	// inj is Options.FaultInjector, hoisted onto the STM so hook sites
	// load one field. Nil in production.
	inj *chaos.Injector

	// Stats are the cumulative transaction counters (sharded; see stats.go).
	Stats Stats
}

// New creates an STM with the given options.
func New(opts Options) *STM {
	s := &STM{opts: opts, inj: opts.FaultInjector}
	s.Stats.initBatchHistogram()
	if opts.LockFreeCommit {
		s.initLockFree()
	}
	if opts.Tracer != nil {
		s.tracer.Store(opts.Tracer)
	}
	s.SetTraceSampleRate(opts.TraceSampleRate)
	return s
}

// Clock returns the current global version clock value.
func (s *STM) Clock() uint64 { return s.clock.Load() }

// SetCommitHook replaces the per-top-level-commit callback. It must not be
// called concurrently with running transactions.
func (s *STM) SetCommitHook(h func()) { s.opts.CommitHook = h }

// SetThrottle replaces the admission throttle. It must not be called
// concurrently with running transactions.
func (s *STM) SetThrottle(t Throttle) { s.opts.Throttle = t }

// SetScheduler attaches (or, with nil, detaches) the conflict-domain
// scheduler. It must not be called concurrently with running
// transactions (install it before traffic, like SetThrottle).
func (s *STM) SetScheduler(sch Scheduler) { s.opts.Scheduler = sch }

// Tracer returns the attached transaction tracer (nil when tracing was
// never wired).
func (s *STM) Tracer() *stmtrace.Tracer { return s.tracer.Load() }

// SetTracer attaches (or, with nil, detaches) the transaction tracer.
// Safe to call concurrently with running transactions: in-flight sampled
// trees keep reporting to the tracer they started on.
func (s *STM) SetTracer(t *stmtrace.Tracer) { s.tracer.Store(t) }

// SetTraceSampleRate changes the fraction of top-level transactions
// sampled for tracing (clamped to [0, 1]). Safe to call concurrently with
// running transactions — the gate is a single atomic.
func (s *STM) SetTraceSampleRate(rate float64) {
	switch {
	case rate <= 0 || math.IsNaN(rate):
		s.traceThreshold.Store(0)
	case rate >= 1:
		s.traceThreshold.Store(^uint64(0))
	default:
		s.traceThreshold.Store(uint64(rate * float64(1<<63) * 2))
	}
}

// sampleTrace decides whether the next logical top-level transaction is
// traced, returning the tracer to report to (nil = untraced). The
// disabled path is one atomic load and a never-taken branch.
func (s *STM) sampleTrace() *stmtrace.Tracer {
	th := s.traceThreshold.Load()
	if th == 0 {
		return nil
	}
	tr := s.tracer.Load()
	if tr == nil {
		return nil
	}
	if th != ^uint64(0) {
		// splitmix64 over a shared counter: cheap, and statistically fine
		// for a sampling decision.
		x := s.traceSeq.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x >= th {
			return nil
		}
	}
	return tr
}

// Atomic runs fn as a top-level transaction, retrying on conflicts until it
// commits, fn returns a non-nil error (which aborts and is returned), or
// the retry limit is exceeded.
func (s *STM) Atomic(fn func(tx *Tx) error) error {
	return s.atomic(nil, fn)
}

// AtomicCtx is Atomic with context-aware retries: cancellation and
// deadlines are honored at retry boundaries — before admission, before the
// first attempt, and before every retry — so an already-cancelled context
// returns ctx.Err() without ever executing fn. The context also propagates
// into parallel-nested children (via Tx.Context), whose retry loops stop at
// the same boundaries; Tx.Parallel drains all in-flight siblings before the
// error surfaces. An attempt already past its begin boundary is never
// interrupted mid-flight — a committed attempt stays committed.
func (s *STM) AtomicCtx(ctx context.Context, fn func(tx *Tx) error) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Stats.add(statShardHint(), idxCtxCancels, 1)
			return err
		}
	}
	return s.atomic(ctx, fn)
}

// AtomicTraced is AtomicCtx with tracing forced on for this transaction
// tree regardless of the sample rate (a tracer must still be attached):
// every top-level attempt's span is tagged with link, the caller's own
// trace ID. This is how the serving layer parents a sampled request's
// transaction trees under its request span — the sampling decision is made
// once per request up in the server, not re-drawn per transaction.
func (s *STM) AtomicTraced(ctx context.Context, link uint64, fn func(tx *Tx) error) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Stats.add(statShardHint(), idxCtxCancels, 1)
			return err
		}
	}
	return s.atomicWith(ctx, fn, s.tracer.Load(), link)
}

// AtomicVersionedCtx is AtomicCtx that additionally reports the global
// version the successful commit was published at (the snapshot version for
// a transaction that wrote nothing). The version orders this commit against
// every other top-level commit on the same STM — two update transactions
// never share one — which is what lets a write-ahead log replay entries
// last-writer-wins regardless of the order workers append them.
func (s *STM) AtomicVersionedCtx(ctx context.Context, fn func(tx *Tx) error) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Stats.add(statShardHint(), idxCtxCancels, 1)
			return 0, err
		}
	}
	var ver uint64
	err := s.atomicVer(ctx, fn, s.sampleTrace(), 0, &ver, 0)
	return ver, err
}

// AtomicVersionedTraced is AtomicTraced's version-reporting counterpart.
func (s *STM) AtomicVersionedTraced(ctx context.Context, link uint64, fn func(tx *Tx) error) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Stats.add(statShardHint(), idxCtxCancels, 1)
			return 0, err
		}
	}
	var ver uint64
	err := s.atomicVer(ctx, fn, s.tracer.Load(), link, &ver, 0)
	return ver, err
}

// AtomicVersionedCtxHint is AtomicVersionedCtx carrying the caller's
// declared intent: hint is the conflict key of the box the transaction
// expects to contend on (VBox.ConflictKey; 0 = no declared intent). The
// scheduler, when one is attached, gates the very first attempt on it —
// without a hint the first attempt always runs optimistically and the
// scheduler only engages from the retry learned off the first abort.
func (s *STM) AtomicVersionedCtxHint(ctx context.Context, hint uintptr, fn func(tx *Tx) error) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Stats.add(statShardHint(), idxCtxCancels, 1)
			return 0, err
		}
	}
	var ver uint64
	err := s.atomicVer(ctx, fn, s.sampleTrace(), 0, &ver, hint)
	return ver, err
}

// AtomicVersionedTracedHint is AtomicVersionedTraced with a declared
// scheduling intent (see AtomicVersionedCtxHint).
func (s *STM) AtomicVersionedTracedHint(ctx context.Context, link uint64, hint uintptr, fn func(tx *Tx) error) (uint64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			s.Stats.add(statShardHint(), idxCtxCancels, 1)
			return 0, err
		}
	}
	var ver uint64
	err := s.atomicVer(ctx, fn, s.tracer.Load(), link, &ver, hint)
	return ver, err
}

// AtomicHint is Atomic with a declared scheduling intent (see
// AtomicVersionedCtxHint).
func (s *STM) AtomicHint(hint uintptr, fn func(tx *Tx) error) error {
	return s.atomicVer(nil, fn, s.sampleTrace(), 0, nil, hint)
}

// atomic is the shared top-level retry loop; ctx is nil for plain Atomic.
func (s *STM) atomic(ctx context.Context, fn func(tx *Tx) error) error {
	return s.atomicVer(ctx, fn, s.sampleTrace(), 0, nil, 0)
}

// atomicWith is atomic with the trace decision already made: tr is nil for
// untraced transactions, link tags the spans of externally-claimed trees.
func (s *STM) atomicWith(ctx context.Context, fn func(tx *Tx) error, tr *stmtrace.Tracer, link uint64) error {
	return s.atomicVer(ctx, fn, tr, link, nil, 0)
}

// atomicVer is atomicWith with an optional commit-version out-parameter,
// written (when non-nil) from the committed attempt's Tx before the object
// returns to the pool, and an optional scheduling hint (the conflict key
// the caller expects to contend on; 0 = none).
func (s *STM) atomicVer(ctx context.Context, fn func(tx *Tx) error, tr *stmtrace.Tracer, link uint64, verOut *uint64, hint uintptr) error {
	if th := s.opts.Throttle; th != nil {
		th.EnterTop()
		defer th.ExitTop()
	}
	var rng *stats.RNG
	pol := s.opts.Retry
	maxAttempts := s.opts.MaxRetries
	if pol != nil && pol.MaxAttempts > 0 {
		maxAttempts = pol.MaxAttempts
	}
	// schedKey is the conflict key the scheduler gates this transaction
	// on: the caller's declared hint, upgraded to the attributed box of
	// the most recent abort (the learned intent usually names the actual
	// contention better than the caller's guess).
	sch := s.opts.Scheduler
	schedKey := hint
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				s.Stats.add(statShardHint(), idxCtxCancels, 1)
				return err
			}
		}
		lane := -1
		if sch != nil && schedKey != 0 {
			lane = sch.Admit(schedKey)
		}
		tx := s.beginTop(ctx, tr, attempt, link)
		err, conflicted := tx.runTop(fn)
		if lane >= 0 {
			sch.Leave(lane)
		}
		if !conflicted {
			if verOut != nil && err == nil {
				*verOut = tx.commitVer
			}
			s.putTx(tx)
			if err == nil && s.opts.CommitHook != nil {
				s.opts.CommitHook()
			}
			return err
		}
		shard := tx.statShard
		if sch != nil && tx.conflictKey != 0 {
			schedKey = tx.conflictKey
		}
		s.Stats.add(shard, idxTopAborts, 1)
		s.putTx(tx)
		failed := attempt + 1
		if pol != nil && failed == pol.livelockThreshold() {
			s.tripLivelock(shard, pol, failed)
		}
		if maxAttempts > 0 && failed >= maxAttempts {
			if pol == nil || pol.livelockThreshold() > maxAttempts {
				// The budget ran out before the (or without a) livelock
				// threshold firing: exceeding the budget IS the livelock
				// signal, counted exactly once per transaction.
				s.tripLivelock(shard, pol, failed)
			}
			return ErrTooManyRetries
		}
		if s.opts.Backoff != nil {
			s.opts.Backoff(attempt)
		} else {
			if rng == nil {
				rng = newBackoffRNG()
			}
			if pol != nil {
				pol.sleep(attempt, rng)
			} else {
				backoff(attempt, rng)
			}
		}
	}
}

// tripLivelock counts one livelock trip and fires the policy callback (if
// any). pol may be nil (legacy MaxRetries exhaustion).
func (s *STM) tripLivelock(shard uint32, pol *RetryPolicy, attempts int) {
	s.Stats.add(shard, idxLivelockTrips, 1)
	if pol != nil && pol.OnLivelock != nil {
		pol.OnLivelock(attempts)
	}
}

// AtomicReadOnly runs fn as a top-level transaction that promises not to
// write. Read-only transactions execute against a consistent snapshot and
// can never conflict, so fn runs exactly once (no retry loop) — the
// guarantee the multi-version design exists to provide. A write attempt
// inside fn panics.
func (s *STM) AtomicReadOnly(fn func(tx *Tx) error) error {
	return s.atomicReadOnlyWith(s.sampleTrace(), 0, fn)
}

// AtomicReadOnlyTraced is AtomicReadOnly with tracing forced on (a tracer
// must be attached), the span tagged with the caller's link — the
// read-only counterpart of AtomicTraced.
func (s *STM) AtomicReadOnlyTraced(link uint64, fn func(tx *Tx) error) error {
	return s.atomicReadOnlyWith(s.tracer.Load(), link, fn)
}

func (s *STM) atomicReadOnlyWith(tr *stmtrace.Tracer, link uint64, fn func(tx *Tx) error) error {
	if th := s.opts.Throttle; th != nil {
		th.EnterTop()
		defer th.ExitTop()
	}
	tx := s.beginTop(nil, tr, 0, link)
	tx.readOnly = true
	err, conflicted := tx.runTop(fn)
	if conflicted {
		// Unreachable: read-only transactions never fail validation.
		panic("stm: read-only transaction reported a conflict")
	}
	s.putTx(tx)
	if err == nil && s.opts.CommitHook != nil {
		s.opts.CommitHook()
	}
	return err
}

// AtomicResult runs fn as a top-level transaction on s and returns its
// result. It is a generic convenience wrapper over STM.Atomic.
func AtomicResult[T any](s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	var out T
	err := s.Atomic(func(tx *Tx) error {
		var err error
		out, err = fn(tx)
		return err
	})
	return out, err
}

// beginTop checks a transaction out of the pool and binds it to a
// registered snapshot of the current clock. The registry slot that served
// this Tx object becomes its probe hint, so a recycled Tx claims the same
// (core-local) slot next time. tr is non-nil when this attempt is traced
// (the timestamp is taken first so PhaseBegin covers the whole begin
// path).
func (s *STM) beginTop(ctx context.Context, tr *stmtrace.Tracer, attempt int, link uint64) *Tx {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	if s.inj != nil {
		s.inj.Fire(chaos.PointBegin, "")
	}
	tx := s.getTx()
	v, slot := s.beginSnapshot(tx.snapHint)
	if slot >= 0 {
		tx.snapHint = uint32(slot)
	}
	tx.stm = s
	tx.ctx = ctx
	tx.readVersion = v
	tx.snapSlot = slot
	tx.root = tx
	if tr != nil {
		tx.span = tr.StartTopLinkedAt(t0, attempt, link)
		tx.span.Mark(stmtrace.PhaseBegin)
	}
	return tx
}

// backoffSeed derives statistically independent splitmix64 streams for the
// retry jitter; one atomic add per conflicted Atomic/runChild call, never
// touched on the conflict-free path.
var backoffSeed atomic.Uint64

// newBackoffRNG returns a fresh jitter stream. The previous implementation
// used the globally-locked math/rand source, which made contended retries —
// the one moment many goroutines hit this code at once — serialize on the
// rand mutex, adding exactly the kind of artificial convoy the backoff is
// supposed to dissolve.
func newBackoffRNG() *stats.RNG {
	return stats.NewRNG(backoffSeed.Add(0x9e3779b97f4a7c15))
}

// backoff sleeps with bounded exponential backoff plus jitter to damp
// conflict storms. Attempt 0 yields only.
func backoff(attempt int, rng *stats.RNG) {
	if attempt == 0 {
		runtime.Gosched()
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	max := time.Duration(1<<uint(attempt)) * time.Microsecond
	time.Sleep(time.Duration(rng.Uint64() % uint64(max+1)))
}
