// Package stm implements a multi-version software transactional memory with
// closed parallel nesting, modeled after JVSTM (Cachopo & Rito-Silva;
// parallel nesting per Diegues & Cachopo), the PN-STM the paper integrates
// AutoPN with.
//
// Top-level transactions read a consistent snapshot identified by the value
// of a global version clock at begin time. Writes are buffered in per-
// transaction write sets and published atomically at commit under a
// serialized commit section after read-set validation; read-only
// transactions never abort. (JVSTM's 2011 lock-free helping commit is an
// orthogonal engineering refinement; this implementation uses the classic
// serialized commit, which preserves every property the tuner observes.)
//
// Closed parallel nesting lets a transaction run child transactions
// concurrently via Tx.Parallel. Children see their ancestors' uncommitted
// writes, detect conflicts with sibling commits through a per-tree nested
// version clock, and merge their write sets into the parent on commit.
// Nothing becomes globally visible until the top-level transaction commits.
//
// Admission of top-level transactions and of nested children is gated
// through the Throttle interface, which the actuator (package pnpool)
// implements with resizable semaphores; this is how the (t, c) parallelism
// degree chosen by the tuner is enforced without modifying application code.
package stm

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Throttle gates admission of transactions. Implementations must be safe
// for concurrent use. A nil Throttle on an STM means unbounded admission.
type Throttle interface {
	// EnterTop blocks until a top-level slot is available.
	EnterTop()
	// ExitTop releases a top-level slot.
	ExitTop()
	// NewTreeGate returns the gate limiting concurrent nested transactions
	// for one transaction tree. It is called once per top-level transaction
	// attempt that spawns children.
	NewTreeGate() TreeGate
}

// TreeGate limits the number of concurrently running nested transactions
// within a single transaction tree.
type TreeGate interface {
	// EnterChild blocks until a child slot is available in this tree.
	EnterChild()
	// ExitChild releases a child slot.
	ExitChild()
}

// Stats holds cumulative transaction counters. All fields are updated
// atomically and may be read at any time.
type Stats struct {
	TopCommits      atomic.Uint64 // top-level commits (read-only + update)
	TopAborts       atomic.Uint64 // top-level validation failures (retried)
	ReadOnlyTops    atomic.Uint64 // subset of TopCommits with empty write set
	NestedCommits   atomic.Uint64 // nested transaction merges into parents
	NestedAborts    atomic.Uint64 // nested conflicts (retried)
	UserAborts      atomic.Uint64 // transactions abandoned due to user error
	VersionsWritten atomic.Uint64 // bodies installed at top-level commits
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		TopCommits:      s.TopCommits.Load(),
		TopAborts:       s.TopAborts.Load(),
		ReadOnlyTops:    s.ReadOnlyTops.Load(),
		NestedCommits:   s.NestedCommits.Load(),
		NestedAborts:    s.NestedAborts.Load(),
		UserAborts:      s.UserAborts.Load(),
		VersionsWritten: s.VersionsWritten.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	TopCommits      uint64
	TopAborts       uint64
	ReadOnlyTops    uint64
	NestedCommits   uint64
	NestedAborts    uint64
	UserAborts      uint64
	VersionsWritten uint64
}

// Options configures an STM instance.
type Options struct {
	// Throttle gates transaction admission; nil means unbounded.
	Throttle Throttle
	// CommitHook, if non-nil, is invoked after every top-level commit
	// (outside the commit critical section). The KPI monitor subscribes
	// here.
	CommitHook func()
	// MaxRetries bounds the number of times a conflicted top-level
	// transaction is retried before Atomic gives up with ErrTooManyRetries.
	// Zero means retry without bound (the default; TM liveness is ensured
	// because contention eventually drains).
	MaxRetries int
	// DisableGC turns off old-version truncation (useful for tests that
	// inspect version chains).
	DisableGC bool
	// LockFreeCommit selects JVSTM's lock-free, helping-based commit
	// algorithm (Fernandes & Cachopo 2011) instead of the classic
	// serialized commit section. See lockfree.go.
	LockFreeCommit bool
	// Backoff replaces the contention-management delay between retries of
	// a conflicted top-level transaction (default: capped exponential
	// backoff with jitter). Backoff(0) is called before the second
	// attempt.
	Backoff func(attempt int)
}

// ErrTooManyRetries is returned by Atomic when Options.MaxRetries is set
// and exceeded.
var ErrTooManyRetries = errors.New("stm: transaction exceeded retry limit")

// STM is an isolated transactional memory universe: a global version clock,
// a commit section, and bookkeeping of active snapshots for version GC.
// Boxes are not tied to an STM instance; an application must simply use one
// STM consistently for the boxes it guards (sharing boxes across STM
// instances forfeits atomicity between them).
type STM struct {
	opts  Options
	clock atomic.Uint64

	commitMu sync.Mutex

	// Lock-free commit queue (Options.LockFreeCommit); see lockfree.go.
	lfHead atomic.Pointer[commitRequest]
	lfTail atomic.Pointer[commitRequest]

	// Active-snapshot registry for version GC: refcounts per read version.
	activeMu  sync.Mutex
	active    map[uint64]int
	activeMin uint64

	// Stats are the cumulative transaction counters.
	Stats Stats
}

// New creates an STM with the given options.
func New(opts Options) *STM {
	s := &STM{opts: opts, active: make(map[uint64]int)}
	if opts.LockFreeCommit {
		s.initLockFree()
	}
	return s
}

// Clock returns the current global version clock value.
func (s *STM) Clock() uint64 { return s.clock.Load() }

// SetCommitHook replaces the per-top-level-commit callback. It must not be
// called concurrently with running transactions.
func (s *STM) SetCommitHook(h func()) { s.opts.CommitHook = h }

// SetThrottle replaces the admission throttle. It must not be called
// concurrently with running transactions.
func (s *STM) SetThrottle(t Throttle) { s.opts.Throttle = t }

// beginSnapshot atomically samples the clock and registers the resulting
// snapshot as active. Sampling and registering must be one critical
// section: with a window between them, a committer could compute a GC
// horizon that does not yet include the new reader and truncate the very
// versions the reader is about to need. Registration under activeMu makes
// that impossible — gcHorizon also holds activeMu, so either it sees the
// registration, or the reader's subsequent clock sample is at least the
// horizon's clock value (the clock is monotone), whose body the truncation
// preserves.
func (s *STM) beginSnapshot() uint64 {
	if s.opts.DisableGC {
		return s.clock.Load()
	}
	s.activeMu.Lock()
	v := s.clock.Load()
	if len(s.active) == 0 || v < s.activeMin {
		s.activeMin = v
	}
	s.active[v]++
	s.activeMu.Unlock()
	return v
}

// unregisterSnapshot drops one active reader of version v.
func (s *STM) unregisterSnapshot(v uint64) {
	if s.opts.DisableGC {
		return
	}
	s.activeMu.Lock()
	if n := s.active[v]; n <= 1 {
		delete(s.active, v)
		if v == s.activeMin {
			// Recompute the minimum; the active set is small (bounded by
			// the top-level parallelism degree).
			s.activeMin = 0
			first := true
			for ver := range s.active {
				if first || ver < s.activeMin {
					s.activeMin = ver
					first = false
				}
			}
			if first {
				s.activeMin = s.clock.Load()
			}
		}
	} else {
		s.active[v] = n - 1
	}
	s.activeMu.Unlock()
}

// gcHorizon returns the newest version that every active or future snapshot
// can still resolve: the minimum active snapshot version, or the current
// clock when no transaction is active.
func (s *STM) gcHorizon() uint64 {
	if s.opts.DisableGC {
		return 0
	}
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	if len(s.active) == 0 {
		return s.clock.Load()
	}
	return s.activeMin
}

// Atomic runs fn as a top-level transaction, retrying on conflicts until it
// commits, fn returns a non-nil error (which aborts and is returned), or
// the retry limit is exceeded.
func (s *STM) Atomic(fn func(tx *Tx) error) error {
	if th := s.opts.Throttle; th != nil {
		th.EnterTop()
		defer th.ExitTop()
	}
	for attempt := 0; ; attempt++ {
		tx := s.beginTop()
		err, conflicted := tx.runTop(fn)
		if !conflicted {
			if err == nil && s.opts.CommitHook != nil {
				s.opts.CommitHook()
			}
			return err
		}
		s.Stats.TopAborts.Add(1)
		if s.opts.MaxRetries > 0 && attempt+1 >= s.opts.MaxRetries {
			return ErrTooManyRetries
		}
		if s.opts.Backoff != nil {
			s.opts.Backoff(attempt)
		} else {
			backoff(attempt)
		}
	}
}

// AtomicReadOnly runs fn as a top-level transaction that promises not to
// write. Read-only transactions execute against a consistent snapshot and
// can never conflict, so fn runs exactly once (no retry loop) — the
// guarantee the multi-version design exists to provide. A write attempt
// inside fn panics.
func (s *STM) AtomicReadOnly(fn func(tx *Tx) error) error {
	if th := s.opts.Throttle; th != nil {
		th.EnterTop()
		defer th.ExitTop()
	}
	tx := s.beginTop()
	tx.readOnly = true
	err, conflicted := tx.runTop(fn)
	if conflicted {
		// Unreachable: read-only transactions never fail validation.
		panic("stm: read-only transaction reported a conflict")
	}
	if err == nil && s.opts.CommitHook != nil {
		s.opts.CommitHook()
	}
	return err
}

// AtomicResult runs fn as a top-level transaction on s and returns its
// result. It is a generic convenience wrapper over STM.Atomic.
func AtomicResult[T any](s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	var out T
	err := s.Atomic(func(tx *Tx) error {
		var err error
		out, err = fn(tx)
		return err
	})
	return out, err
}

// beginTop creates a fresh top-level transaction with a snapshot of the
// current clock.
func (s *STM) beginTop() *Tx {
	v := s.beginSnapshot()
	tx := &Tx{stm: s, readVersion: v}
	tx.root = tx
	return tx
}

// backoff sleeps with bounded exponential backoff plus jitter to damp
// conflict storms. Attempt 0 yields only.
func backoff(attempt int) {
	if attempt == 0 {
		runtime.Gosched()
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	max := time.Duration(1<<uint(attempt)) * time.Microsecond
	time.Sleep(time.Duration(rand.Int63n(int64(max) + 1)))
}
