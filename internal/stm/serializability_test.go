package stm

import (
	"sort"
	"sync"
	"testing"
)

// TestCounterHistorySerializable is a strong serializability check: N
// concurrent transactions each read a counter and write read+1. If the
// implementation is serializable, the multiset of values read by the
// committed transactions must be exactly {0, 1, ..., N-1} — any lost
// update, dirty read or write skew produces a duplicate or a gap. Checked
// for all three commit strategies (group commit, legacy serialized,
// lock-free), with and without nested execution of the read. A mid-batch
// atomicity check for the group-commit path lives in groupcommit_test.go.
func TestCounterHistorySerializable(t *testing.T) {
	for _, tc := range []struct {
		name     string
		lockFree bool
		nested   bool
		legacy   bool
	}{
		{"group-commit", false, false, false},
		{"group-commit-nested", false, true, false},
		{"serialized-legacy", false, false, true},
		{"serialized-legacy-nested", false, true, true},
		{"lock-free", true, false, false},
		{"lock-free-nested", true, true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Options{LockFreeCommit: tc.lockFree, DisableGroupCommit: tc.legacy})
			box := NewVBox(0)
			const workers, perW = 6, 100
			reads := make([][]int, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						err := s.Atomic(func(tx *Tx) error {
							var v int
							if tc.nested {
								if err := tx.Parallel(func(c *Tx) error {
									v = box.Get(c)
									return nil
								}); err != nil {
									return err
								}
							} else {
								v = box.Get(tx)
							}
							box.Put(tx, v+1)
							reads[w] = append(reads[w], v)
							return nil
						})
						if err != nil {
							t.Errorf("tx: %v", err)
						}
					}
				}(w)
			}
			wg.Wait()

			// reads[w] may contain values from aborted attempts' re-runs;
			// only the LAST recorded value per committed transaction is
			// the committed read. Since the closure appends on every
			// attempt, dedup by checking the full multiset of *final*
			// state instead: the committed history must be a permutation.
			var all []int
			for _, r := range reads {
				all = append(all, r...)
			}
			// Committed reads are exactly those values v such that the
			// write v+1 survived; with N = workers*perW commits the final
			// value must be N and each of 0..N-1 must appear at least once
			// among attempts (the committed attempt's read).
			const n = workers * perW
			if got := box.Peek(); got != n {
				t.Fatalf("final counter = %d, want %d", got, n)
			}
			seen := make([]bool, n)
			for _, v := range all {
				if v >= 0 && v < n {
					seen[v] = true
				}
			}
			missing := 0
			for _, ok := range seen {
				if !ok {
					missing++
				}
			}
			if missing > 0 {
				sort.Ints(all)
				t.Fatalf("%d committed read values missing from history; not serializable", missing)
			}
		})
	}
}
