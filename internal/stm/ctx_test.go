package stm

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"autopn/internal/chaos"
)

// TestAtomicCtxPreCancelled: an already-cancelled context returns ctx.Err()
// without ever executing user code.
func TestAtomicCtxPreCancelled(t *testing.T) {
	s := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := s.AtomicCtx(ctx, func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("user function ran despite cancelled context")
	}
	if got := s.Stats.CtxCancels(); got != 1 {
		t.Errorf("CtxCancels = %d, want 1", got)
	}
	if got := s.Stats.TopCommits(); got != 0 {
		t.Errorf("TopCommits = %d, want 0", got)
	}
}

// TestAtomicCtxNilAndBackground: nil and background contexts behave like
// plain Atomic, and Tx.Context reports the transaction's context.
func TestAtomicCtxNilAndBackground(t *testing.T) {
	s := New(Options{})
	b := NewVBox(0)
	type ctxKey struct{}
	ctx := context.WithValue(context.Background(), ctxKey{}, "v")
	err := s.AtomicCtx(ctx, func(tx *Tx) error {
		if tx.Context().Value(ctxKey{}) != "v" {
			t.Error("Tx.Context does not carry the AtomicCtx context")
		}
		b.Put(tx, b.Get(tx)+1)
		return tx.Parallel(
			func(c *Tx) error {
				if c.Context().Value(ctxKey{}) != "v" {
					t.Error("child Tx.Context does not inherit the root context")
				}
				return nil
			},
			func(c *Tx) error { return nil },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Atomic(func(tx *Tx) error {
		if tx.Context() != context.Background() {
			t.Error("plain Atomic should report context.Background()")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicCtxDeadlineStopsRetries: with a chaos rule forcing every
// validation to fail, the retry loop is unbounded — the context deadline is
// the only exit, taken at a retry boundary.
func TestAtomicCtxDeadlineStopsRetries(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "always-fail", Point: chaos.PointValidate, Action: chaos.ActAbort},
	}})
	defer inj.Close()
	s := New(Options{FaultInjector: inj})
	b := NewVBox(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.AtomicCtx(ctx, func(tx *Tx) error { b.Put(tx, 1); return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := s.Stats.CtxCancels(); got != 1 {
		t.Errorf("CtxCancels = %d, want 1", got)
	}
	if s.Stats.TopAborts() == 0 {
		t.Error("expected at least one forced abort before the deadline")
	}
}

// TestChaosCtxCancelMidFanoutDrainsChildren is the goroutine-leak check for
// cancellation during a parallel fan-out: a chaos rule makes every nested
// validation fail, so all four children retry forever until the context is
// cancelled mid-flight; AtomicCtx must return ctx.Err() with every child
// goroutine drained.
func TestChaosCtxCancelMidFanoutDrainsChildren(t *testing.T) {
	before := runtime.NumGoroutine()

	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "nested-always-fail", Point: chaos.PointNestedValidate, Action: chaos.ActAbort},
	}})
	defer inj.Close()
	s := New(Options{FaultInjector: inj})
	boxes := [4]*VBox[int]{NewVBox(0), NewVBox(0), NewVBox(0), NewVBox(0)}

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- s.AtomicCtx(ctx, func(tx *Tx) error {
			return tx.Parallel(
				func(c *Tx) error { started.Add(1); boxes[0].Put(c, 1); return nil },
				func(c *Tx) error { started.Add(1); boxes[1].Put(c, 1); return nil },
				func(c *Tx) error { started.Add(1); boxes[2].Put(c, 1); return nil },
				func(c *Tx) error { started.Add(1); boxes[3].Put(c, 1); return nil },
			)
		})
	}()

	// Let the fan-out spin through some retries, then cancel mid-flight.
	for started.Load() < 8 { // every child has begun at least its 2nd attempt
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AtomicCtx never returned after cancellation")
	}
	if got := s.Stats.CtxCancels(); got < 1 {
		t.Errorf("CtxCancels = %d, want >= 1", got)
	}
	if s.Stats.TopCommits() != 0 {
		t.Error("cancelled transaction committed")
	}

	// Every child goroutine must be gone. The runtime needs a moment to
	// retire exiting goroutines, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The STM remains fully usable after the drained cancellation.
	if err := s.Atomic(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestRetryPolicyBudgetTop: a RetryPolicy budget surfaces ErrTooManyRetries
// after exactly MaxAttempts failed attempts, with one livelock trip and one
// OnLivelock callback.
func TestRetryPolicyBudgetTop(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "always-fail", Point: chaos.PointValidate, Action: chaos.ActAbort},
	}})
	defer inj.Close()
	var cb atomic.Int64
	var cbAttempts atomic.Int64
	s := New(Options{
		FaultInjector: inj,
		Retry: &RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   time.Microsecond,
			MaxDelay:    10 * time.Microsecond,
			OnLivelock:  func(attempts int) { cb.Add(1); cbAttempts.Store(int64(attempts)) },
		},
	})
	b := NewVBox(0)
	err := s.Atomic(func(tx *Tx) error { b.Put(tx, 1); return nil })
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if got := s.Stats.TopAborts(); got != 5 {
		t.Errorf("TopAborts = %d, want 5", got)
	}
	if got := s.Stats.LivelockTrips(); got != 1 {
		t.Errorf("LivelockTrips = %d, want 1", got)
	}
	if cb.Load() != 1 || cbAttempts.Load() != 5 {
		t.Errorf("OnLivelock: %d calls (want 1), attempts %d (want 5)", cb.Load(), cbAttempts.Load())
	}
}

// TestRetryPolicyLivelockThresholdUnbounded: with no budget, the livelock
// detector trips once at LivelockThreshold and the transaction keeps
// retrying (and eventually succeeds when the fault schedule runs dry).
func TestRetryPolicyLivelockThresholdUnbounded(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "fail-7", Point: chaos.PointValidate, Trigger: chaos.Trigger{Times: 7}, Action: chaos.ActAbort},
	}})
	defer inj.Close()
	var cb atomic.Int64
	s := New(Options{
		FaultInjector: inj,
		Retry: &RetryPolicy{
			LivelockThreshold: 3,
			BaseDelay:         time.Microsecond,
			MaxDelay:          10 * time.Microsecond,
			OnLivelock:        func(int) { cb.Add(1) },
		},
	})
	b := NewVBox(0)
	if err := s.Atomic(func(tx *Tx) error { b.Put(tx, b.Get(tx)+1); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats.TopAborts(); got != 7 {
		t.Errorf("TopAborts = %d, want 7", got)
	}
	if got := s.Stats.LivelockTrips(); got != 1 {
		t.Errorf("LivelockTrips = %d, want exactly 1 (one trip per transaction)", got)
	}
	if cb.Load() != 1 {
		t.Errorf("OnLivelock calls = %d, want 1", cb.Load())
	}
	if got := readCommitted(s, b); got != 1 {
		t.Errorf("box = %d, want 1", got)
	}
}

// TestRetryPolicyBudgetNested: the budget also bounds nested children;
// their ErrTooManyRetries surfaces through Parallel and Atomic, matchable
// with errors.Is.
func TestRetryPolicyBudgetNested(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "nested-always-fail", Point: chaos.PointNestedValidate, Action: chaos.ActAbort},
	}})
	defer inj.Close()
	s := New(Options{
		FaultInjector: inj,
		Retry:         &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
	})
	b := NewVBox(0)
	err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(c *Tx) error { b.Put(c, 1); return nil },
			func(c *Tx) error { return nil },
		)
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if got := s.Stats.LivelockTrips(); got == 0 {
		t.Error("nested budget exhaustion did not trip the livelock counter")
	}
}

// TestLegacyMaxRetriesCountsLivelock: the pre-policy MaxRetries path now
// also counts a livelock trip when it gives up.
func TestLegacyMaxRetriesCountsLivelock(t *testing.T) {
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{
		{Name: "always-fail", Point: chaos.PointValidate, Action: chaos.ActAbort},
	}})
	defer inj.Close()
	s := New(Options{FaultInjector: inj, MaxRetries: 4})
	b := NewVBox(0)
	err := s.Atomic(func(tx *Tx) error { b.Put(tx, 1); return nil })
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if got := s.Stats.LivelockTrips(); got != 1 {
		t.Errorf("LivelockTrips = %d, want 1", got)
	}
}

// trackingGate counts enter/exit parity for the panic regression test.
type trackingGate struct {
	entered atomic.Int64
	exited  atomic.Int64
}

func (g *trackingGate) EnterChild() { g.entered.Add(1) }
func (g *trackingGate) ExitChild()  { g.exited.Add(1) }

// trackingThrottle installs trackingGates so the test can verify gate-slot
// release on the panic path.
type trackingThrottle struct {
	tops  atomic.Int64
	gates []*trackingGate
}

func (th *trackingThrottle) EnterTop() { th.tops.Add(1) }
func (th *trackingThrottle) ExitTop()  { th.tops.Add(-1) }
func (th *trackingThrottle) NewTreeGate() TreeGate {
	g := &trackingGate{}
	th.gates = append(th.gates, g)
	return g
}

// TestParallelChildPanicDrainsSiblings is the panic-safety regression test:
// when one child's function panics while siblings are still running, the
// panic must (a) not kill the process from the child goroutine, (b) re-
// propagate to the Atomic caller only after every sibling drained, with
// (c) all gate slots released and the STM fully usable afterwards.
func TestParallelChildPanicDrainsSiblings(t *testing.T) {
	before := runtime.NumGoroutine()
	th := &trackingThrottle{}
	s := New(Options{Throttle: th})
	b := NewVBox(0)
	var siblingsDone atomic.Int32

	func() {
		defer func() {
			r := recover()
			if r != "boom" {
				t.Fatalf("recovered %v, want \"boom\"", r)
			}
			// The panic must arrive only after both siblings finished.
			if got := siblingsDone.Load(); got != 2 {
				t.Errorf("panic propagated with %d/2 siblings drained", got)
			}
		}()
		_ = s.Atomic(func(tx *Tx) error {
			return tx.Parallel(
				func(c *Tx) error {
					time.Sleep(5 * time.Millisecond) // siblings are mid-flight
					panic("boom")
				},
				func(c *Tx) error {
					time.Sleep(20 * time.Millisecond)
					b.Put(c, b.Get(c)+1)
					siblingsDone.Add(1)
					return nil
				},
				func(c *Tx) error {
					time.Sleep(20 * time.Millisecond)
					siblingsDone.Add(1)
					return nil
				},
			)
		})
		t.Fatal("Atomic returned normally; the panic was swallowed")
	}()

	// Gate slots and top slots are all released.
	if held := th.tops.Load(); held != 0 {
		t.Errorf("top slots still held after panic: %d", held)
	}
	for i, g := range th.gates {
		if e, x := g.entered.Load(), g.exited.Load(); e != x {
			t.Errorf("gate %d: entered %d != exited %d", i, e, x)
		}
	}

	// No goroutines leaked.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The STM (and its throttle) remains fully usable: new transactions,
	// including parallel-nested ones, commit normally.
	if err := s.Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(c *Tx) error { b.Put(c, b.Get(c)+1); return nil },
			func(c *Tx) error { return nil },
		)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readCommitted(s, b); got != 1 {
		// The panicked tree's sibling writes must NOT be globally visible
		// (the top never committed); the follow-up transaction's must.
		t.Errorf("box = %d, want 1", got)
	}
}
