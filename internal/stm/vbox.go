package stm

import (
	"sync/atomic"
	"unsafe"
)

// body is one committed version of a vbox's value. Bodies form a
// singly-linked list ordered by strictly decreasing version; the head is the
// most recently committed version. Reads walk the list until they find the
// newest body whose version is not greater than the reading transaction's
// snapshot version. next is atomic because the commit section truncates old
// tails (version GC) concurrently with readers traversing the chain.
//
// The payload lives in one of two representations, fixed per box (see
// vbox.word): boxes of word-sized primitive types store their value's bits
// in word and leave value nil; every other box stores the value boxed in
// value and leaves word zero. Word bodies are recycled through the STM's
// body pool (bodypool.go); boxed bodies always go to the garbage collector,
// which is what keeps the boxed Peek path safe without synchronization.
type body struct {
	value   any
	version uint64
	// word holds the inlined bits of a word-kind value. Atomic because
	// unregistered readers (VBox.Peek) may race with pooled reuse; inside
	// the registered-reader protocol the registry provides the
	// happens-before edge (see bodypool.go).
	word atomic.Uint64
	// seq is a seqlock guarding word across pooled reuse: odd while the
	// node sits in the free pool or is being rewritten for its next
	// installation, even while its payload is stable. Fresh nodes start at
	// zero (even) and are bumped to odd on every retire/release, and back
	// to even after the payload rewrite, before republication.
	seq  atomic.Uint64
	next atomic.Pointer[body]
}

// vbox is the untyped core of a versioned transactional box. It is the unit
// of conflict detection: transactional read and write sets are keyed by
// *vbox identity.
type vbox struct {
	head atomic.Pointer[body]
	// label is an optional human-readable identity for the conflict
	// profiler (set once via VBox.WithLabel before the box is shared;
	// never mutated afterwards, so reads need no synchronization).
	label string
	// word marks a box whose value type is a word-sized primitive
	// (wordKind): its bodies carry the value inline in body.word, its
	// reads and writes never box, and its retired bodies are eligible for
	// pooled reuse. Set once by NewVBox, never mutated.
	word bool
}

// wordKind reports whether T is one of the predeclared word-sized types
// whose values can be carried inline in a body's word field. Named types
// (type Celsius float64) intentionally fall through to the boxed
// representation: the exact-type switch keeps the decision trivially
// correct, and such types are rare on hot paths.
func wordKind[T any]() bool {
	var z T
	switch any(z).(type) {
	case bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64, uintptr,
		float32, float64:
		return true
	}
	return false
}

// toWord returns val's bits widened to 64. The size switch constant-folds
// per instantiation, and taking the address of a by-value parameter for an
// immediate dereference does not make it escape — no allocation on any arm.
func toWord[T any](val T) uint64 {
	switch unsafe.Sizeof(val) {
	case 1:
		return uint64(*(*uint8)(unsafe.Pointer(&val)))
	case 2:
		return uint64(*(*uint16)(unsafe.Pointer(&val)))
	case 4:
		return uint64(*(*uint32)(unsafe.Pointer(&val)))
	default:
		return *(*uint64)(unsafe.Pointer(&val))
	}
}

// fromWord reconstructs a T from bits produced by toWord. Callers must
// guarantee Sizeof(T) <= 8 (the word-box fast paths do, via their
// compile-time size guard).
func fromWord[T any](w uint64) T {
	var val T
	switch unsafe.Sizeof(val) {
	case 1:
		*(*uint8)(unsafe.Pointer(&val)) = uint8(w)
	case 2:
		*(*uint16)(unsafe.Pointer(&val)) = uint16(w)
	case 4:
		*(*uint32)(unsafe.Pointer(&val)) = uint32(w)
	default:
		*(*uint64)(unsafe.Pointer(&val)) = w
	}
	return val
}

// readAt returns the newest body with version <= ver. Such a body always
// exists unless the chain has been truncated past ver, which the STM's
// version GC prevents for any version still held by an active transaction.
func (b *vbox) readAt(ver uint64) *body {
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.version <= ver {
			return cur
		}
	}
	// Unreachable under the GC invariant; fail loudly rather than return a
	// torn value if the invariant is ever broken.
	panic("stm: version chain truncated below an active snapshot")
}

// truncate cuts nb's chain after the newest body with version <= keepFrom
// (simple version GC): that body remains reachable so any active snapshot
// >= keepFrom can still be served, and readers never traverse past it. It
// returns the detached tail (nil when nothing was cut), which the caller
// owns exclusively — the Swap claims it, so two concurrent truncations of
// one chain (possible on the lock-free path) cannot both retire the same
// segment.
func truncate(nb *body, keepFrom uint64) *body {
	for cur := nb; cur != nil; cur = cur.next.Load() {
		if cur.version <= keepFrom {
			return cur.next.Swap(nil)
		}
	}
	return nil
}

// currentVersion returns the version of the most recent committed body.
func (b *vbox) currentVersion() uint64 {
	return b.head.Load().version
}

// boxKey returns b's identity for set membership without pinning the box
// (the commit ring stores these; see groupcommit.go).
func boxKey(b *vbox) uintptr {
	return uintptr(unsafe.Pointer(b))
}

// boxSig hashes b's identity to a one-bit bloom signature in a 64-bit
// word (splitmix64 finalizer over the address, which alone has poor
// entropy in its low bits because of allocation alignment).
func boxSig(b *vbox) uint64 {
	x := uint64(uintptr(unsafe.Pointer(b)))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 << (x & 63)
}

// chainLen reports the number of retained bodies (for GC tests).
func (b *vbox) chainLen() int {
	n := 0
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}

// A VBox is a typed, versioned transactional memory location ("versioned
// box" in JVSTM terminology). All access must happen inside a transaction
// via Get and Put. VBoxes are created with NewVBox and may be freely shared
// across goroutines.
//
// Boxes of word-sized primitive element types (bool, the fixed-width and
// platform integer types, uintptr, float32, float64) take a specialized
// representation: values are carried as raw bits inside version records, so
// Get/Set/Put/Swap on such boxes never allocate, and their retired version
// records are recycled through the STM's body pool.
type VBox[T any] struct {
	core vbox
}

// NewVBox creates a box holding initial as its version-0 committed value.
func NewVBox[T any](initial T) *VBox[T] {
	v := &VBox[T]{}
	first := &body{version: 0}
	if wordKind[T]() {
		v.core.word = true
		first.word.Store(toWord(initial))
	} else {
		first.value = initial
	}
	v.core.head.Store(first)
	return v
}

// WithLabel names the box for the conflict profiler: aborts attributed to
// it appear under this label in /debug/stm/conflicts and trace dumps
// instead of a bare address. It returns v for chaining
// (NewVBox(0).WithLabel("account:42")) and must be called before the box
// is shared across goroutines.
func (v *VBox[T]) WithLabel(label string) *VBox[T] {
	v.core.label = label
	return v
}

// Label returns the profiling label set by WithLabel ("" when unset).
func (v *VBox[T]) Label() string { return v.core.label }

// ConflictKey returns the box's identity key as used by the conflict
// profiler's hot-box table and the scheduler's conflict domains — an
// opaque value, never dereferenced by either. Callers pass it as the
// scheduling hint of the *Hint transaction entry points to declare
// up-front which box they expect to contend on.
func (v *VBox[T]) ConflictKey() uintptr { return boxKey(&v.core) }

// Get returns the box's value as seen by tx, recording the read for
// conflict detection. It must be called from inside the transaction's
// function; calling it after the transaction finished is a programming
// error.
func (v *VBox[T]) Get(tx *Tx) T {
	e := tx.read(&v.core)
	var z T
	if unsafe.Sizeof(z) <= 8 && v.core.word {
		// The size guard is compile-time per instantiation, so for large T
		// this branch (and fromWord's instantiation hazard) vanishes; for
		// word boxes it replaces the interface assertion with a bit copy.
		return fromWord[T](e.word)
	}
	return e.value.(T)
}

// Put buffers a write of val into tx's write set. The write becomes visible
// to other transactions only if tx (and, for nested transactions, all its
// ancestors) commit. On word-kind boxes the value travels as raw bits end
// to end — no boxing here, none at commit.
func (v *VBox[T]) Put(tx *Tx, val T) {
	if unsafe.Sizeof(val) <= 8 && v.core.word {
		tx.write(&v.core, nil, toWord(val))
		return
	}
	tx.write(&v.core, val, 0)
}

// Set is Put under the name typed STM APIs conventionally use; both go
// through the same compile-time-specialized fast path.
func (v *VBox[T]) Set(tx *Tx, val T) { v.Put(tx, val) }

// Swap writes val and returns the value the box held as seen by tx just
// before the write (its own prior write, an ancestor's, or the committed
// snapshot value) — a read-modify-write in one call.
func (v *VBox[T]) Swap(tx *Tx, val T) T {
	old := v.Get(tx)
	v.Put(tx, val)
	return old
}

// Modify applies f to the current value seen by tx and writes the result
// back, a common read-modify-write convenience.
func (v *VBox[T]) Modify(tx *Tx, f func(T) T) {
	v.Put(tx, f(v.Get(tx)))
}

// Peek returns the most recently committed value without any transactional
// protection. It is intended for post-run inspection (tests, reporting);
// using it to make decisions inside transactions breaks atomicity.
//
// Peek readers are not registered in the snapshot registry, so on word
// boxes — whose retired bodies are recycled — the head node can in
// principle be reclaimed and rewritten mid-Peek. The seqlock loop makes
// that window detectable: a successful return requires the node's reuse
// counter to be even (payload stable) and unchanged around the word load,
// with the node re-confirmed as the box's head, which together imply the
// bits read are a value this box committed. Boxed bodies are never
// recycled, so the plain load remains safe there.
func (v *VBox[T]) Peek() T {
	var z T
	if unsafe.Sizeof(z) <= 8 && v.core.word {
		for {
			h := v.core.head.Load()
			s1 := h.seq.Load()
			w := h.word.Load()
			if s1&1 == 0 && h.seq.Load() == s1 && v.core.head.Load() == h {
				return fromWord[T](w)
			}
		}
	}
	return v.core.head.Load().value.(T)
}
