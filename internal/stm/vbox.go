package stm

import (
	"sync/atomic"
	"unsafe"
)

// body is one committed version of a vbox's value. Bodies form a
// singly-linked list ordered by strictly decreasing version; the head is the
// most recently committed version. Reads walk the list until they find the
// newest body whose version is not greater than the reading transaction's
// snapshot version. next is atomic because the commit section truncates old
// tails (version GC) concurrently with readers traversing the chain.
type body struct {
	value   any
	version uint64
	next    atomic.Pointer[body]
}

// vbox is the untyped core of a versioned transactional box. It is the unit
// of conflict detection: transactional read and write sets are keyed by
// *vbox identity.
type vbox struct {
	head atomic.Pointer[body]
	// label is an optional human-readable identity for the conflict
	// profiler (set once via VBox.WithLabel before the box is shared;
	// never mutated afterwards, so reads need no synchronization).
	label string
}

// readAt returns the newest body with version <= ver. Such a body always
// exists unless the chain has been truncated past ver, which the STM's
// version GC prevents for any version still held by an active transaction.
func (b *vbox) readAt(ver uint64) *body {
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		if cur.version <= ver {
			return cur
		}
	}
	// Unreachable under the GC invariant; fail loudly rather than return a
	// torn value if the invariant is ever broken.
	panic("stm: version chain truncated below an active snapshot")
}

// install publishes a new committed version. It must only be called from
// within the STM's serialized commit section. Bodies older than keepFrom
// become unreachable (simple version GC): the chain is cut after the newest
// body with version <= keepFrom, which remains reachable so that any active
// snapshot >= keepFrom can still be served. Readers never traverse past
// that body, so cutting its next pointer is safe.
func (b *vbox) install(value any, version, keepFrom uint64) {
	nb := &body{value: value, version: version}
	nb.next.Store(b.head.Load())
	for cur := nb; cur != nil; cur = cur.next.Load() {
		if cur.version <= keepFrom {
			cur.next.Store(nil)
			break
		}
	}
	b.head.Store(nb)
}

// installCAS publishes a new committed version without any external
// serialization: it is the write-back primitive of the lock-free commit,
// where several helper threads may attempt the same installation. The
// version check makes it idempotent (whoever wins the CAS installs the
// body; latecomers and laggards observe head.version >= version and skip),
// and because queue order guarantees strictly increasing versions per box,
// skipping is always correct.
func (b *vbox) installCAS(value any, version, keepFrom uint64) {
	for {
		cur := b.head.Load()
		if cur.version >= version {
			return
		}
		nb := &body{value: value, version: version}
		nb.next.Store(cur)
		for c := nb; c != nil; c = c.next.Load() {
			if c.version <= keepFrom {
				c.next.Store(nil)
				break
			}
		}
		if b.head.CompareAndSwap(cur, nb) {
			return
		}
	}
}

// currentVersion returns the version of the most recent committed body.
func (b *vbox) currentVersion() uint64 {
	return b.head.Load().version
}

// boxKey returns b's identity for set membership without pinning the box
// (the commit ring stores these; see groupcommit.go).
func boxKey(b *vbox) uintptr {
	return uintptr(unsafe.Pointer(b))
}

// boxSig hashes b's identity to a one-bit bloom signature in a 64-bit
// word (splitmix64 finalizer over the address, which alone has poor
// entropy in its low bits because of allocation alignment).
func boxSig(b *vbox) uint64 {
	x := uint64(uintptr(unsafe.Pointer(b)))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 1 << (x & 63)
}

// chainLen reports the number of retained bodies (for GC tests).
func (b *vbox) chainLen() int {
	n := 0
	for cur := b.head.Load(); cur != nil; cur = cur.next.Load() {
		n++
	}
	return n
}

// A VBox is a typed, versioned transactional memory location ("versioned
// box" in JVSTM terminology). All access must happen inside a transaction
// via Get and Put. VBoxes are created with NewVBox and may be freely shared
// across goroutines.
type VBox[T any] struct {
	core vbox
}

// NewVBox creates a box holding initial as its version-0 committed value.
func NewVBox[T any](initial T) *VBox[T] {
	v := &VBox[T]{}
	first := &body{value: initial, version: 0}
	v.core.head.Store(first)
	return v
}

// WithLabel names the box for the conflict profiler: aborts attributed to
// it appear under this label in /debug/stm/conflicts and trace dumps
// instead of a bare address. It returns v for chaining
// (NewVBox(0).WithLabel("account:42")) and must be called before the box
// is shared across goroutines.
func (v *VBox[T]) WithLabel(label string) *VBox[T] {
	v.core.label = label
	return v
}

// Label returns the profiling label set by WithLabel ("" when unset).
func (v *VBox[T]) Label() string { return v.core.label }

// Get returns the box's value as seen by tx, recording the read for
// conflict detection. It must be called from inside the transaction's
// function; calling it after the transaction finished is a programming
// error.
func (v *VBox[T]) Get(tx *Tx) T {
	return tx.read(&v.core).(T)
}

// Put buffers a write of val into tx's write set. The write becomes visible
// to other transactions only if tx (and, for nested transactions, all its
// ancestors) commit.
func (v *VBox[T]) Put(tx *Tx, val T) {
	tx.write(&v.core, val)
}

// Modify applies f to the current value seen by tx and writes the result
// back, a common read-modify-write convenience.
func (v *VBox[T]) Modify(tx *Tx, f func(T) T) {
	v.Put(tx, f(v.Get(tx)))
}

// Peek returns the most recently committed value without any transactional
// protection. It is intended for post-run inspection (tests, reporting);
// using it to make decisions inside transactions breaks atomicity.
func (v *VBox[T]) Peek() T {
	return v.core.head.Load().value.(T)
}
