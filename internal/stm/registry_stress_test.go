package stm

import (
	"sync"
	"testing"
	"time"
)

// Stress tests for the striped snapshot registry (registry.go). The
// registry's one job is to keep version GC from truncating a chain below an
// active snapshot; any violation surfaces as the readAt panic ("version
// chain truncated below an active snapshot") or, under -race, as a data
// race. These tests are designed to run under the race detector (make race).

// TestRegistryChurnStress hammers begin/commit/GC-horizon churn: writers
// advance the clock (triggering truncation on every commit) while readers
// continuously begin, read, and end — the exact interleaving the
// publish-then-validate / clock-first-scan protocol must survive. Readers
// outnumber registry slots so the overflow path is exercised in the same
// run. Run with -race.
func TestRegistryChurnStress(t *testing.T) {
	for _, tc := range []struct {
		name     string
		lockFree bool
	}{
		{"serialized", false},
		{"lock-free", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Options{LockFreeCommit: tc.lockFree})
			const nBoxes = 4
			boxes := make([]*VBox[int], nBoxes)
			for i := range boxes {
				boxes[i] = NewVBox(0)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup

			// Writers: advance the clock as fast as possible so that every
			// commit truncates and the GC horizon is always on the move.
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := s.Atomic(func(tx *Tx) error {
							b := boxes[(w+i)%nBoxes]
							b.Put(tx, b.Get(tx)+1)
							return nil
						}); err != nil {
							t.Errorf("writer: %v", err)
							return
						}
					}
				}(w)
			}

			// Readers: more than snapSlots concurrent top-level snapshots,
			// so some registrations spill into the overflow map while the
			// slot array churns. Each read must observe a consistent
			// snapshot (sum of a multi-box read taken twice must agree).
			for r := 0; r < snapSlots+8; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := s.Atomic(func(tx *Tx) error {
							sum1 := 0
							for _, b := range boxes {
								sum1 += b.Get(tx)
							}
							sum2 := 0
							for _, b := range boxes {
								sum2 += b.Get(tx)
							}
							if sum1 != sum2 {
								t.Errorf("snapshot tore: %d != %d", sum1, sum2)
							}
							return nil
						}); err != nil {
							t.Errorf("reader: %v", err)
							return
						}
					}
				}()
			}

			time.Sleep(200 * time.Millisecond)
			close(stop)
			wg.Wait()
		})
	}
}

// TestRegistryOverflowSnapshotSurvivesGC parks more simultaneous top-level
// transactions than the registry has stripes, forcing the late arrivals
// into the mutex-guarded overflow map, then drives enough committing
// writers to truncate every stale version — and finally checks that every
// parked reader (slotted and overflowed alike) still resolves its original
// snapshot.
func TestRegistryOverflowSnapshotSurvivesGC(t *testing.T) {
	s := New(Options{})
	box := NewVBox(0)
	const readers = snapSlots + 16

	parked := make(chan struct{}, readers)
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = s.Atomic(func(tx *Tx) error {
				first := box.Get(tx)
				parked <- struct{}{}
				<-release
				if second := box.Get(tx); second != first {
					t.Errorf("reader %d: snapshot moved from %d to %d", r, first, second)
				}
				return nil
			})
		}(r)
	}
	for i := 0; i < readers; i++ {
		<-parked
	}
	if n := s.snaps.overflowN.Load(); n < readers-snapSlots {
		t.Fatalf("overflow registrations = %d, want >= %d", n, readers-snapSlots)
	}

	// Churn the box well past any retained version while the readers hold
	// their snapshots; GC must clamp to the oldest of them.
	for i := 1; i <= 50; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			box.Put(tx, i)
			return nil
		}); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	close(release)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}

	// With every reader gone the horizon snaps forward again: one more
	// commit must truncate the chain down to the bounded steady state.
	if err := s.Atomic(func(tx *Tx) error {
		box.Put(tx, 51)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := box.core.chainLen(); n > 3 {
		t.Fatalf("chainLen = %d after readers drained, want <= 3", n)
	}
	if n := s.snaps.overflowN.Load(); n != 0 {
		t.Fatalf("overflowN = %d after all transactions ended, want 0", n)
	}
}

// TestPooledTxReuseKeepsInvariants drives enough sequential and nested
// transactions through one STM to recycle Tx objects many times over,
// checking that no state leaks across pooled lifetimes (a stale write set
// or read set would break conservation or spuriously conflict).
func TestPooledTxReuseKeepsInvariants(t *testing.T) {
	s := New(Options{})
	const boxesN = 8
	boxes := make([]*VBox[int], boxesN)
	for i := range boxes {
		boxes[i] = NewVBox(0)
	}
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		if err := s.Atomic(func(tx *Tx) error {
			// Alternate small (inline sets) and spilling (map sets)
			// transactions so both representations cycle through the pool.
			n := 2
			if i%5 == 0 {
				n = boxesN // > smallSetCap: forces the spill path
			}
			for j := 0; j < n; j++ {
				boxes[j].Put(tx, boxes[j].Get(tx)+1)
			}
			if i%7 == 0 {
				return tx.Parallel(
					func(c *Tx) error { boxes[0].Put(c, boxes[0].Get(c)+1); return nil },
					func(c *Tx) error { boxes[1].Put(c, boxes[1].Get(c)+1); return nil },
				)
			}
			return nil
		}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	want0 := rounds + (rounds+6)/7 // every round + the nested increments
	if got := boxes[0].Peek(); got != want0 {
		t.Fatalf("boxes[0] = %d, want %d", got, want0)
	}
	spills := rounds / 5
	for j := 2; j < boxesN; j++ {
		if got := boxes[j].Peek(); got != spills {
			t.Fatalf("boxes[%d] = %d, want %d", j, got, spills)
		}
	}
}
