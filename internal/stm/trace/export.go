package stmtrace

import (
	"encoding/json"
	"fmt"
	"io"

	"autopn/internal/obs"
)

// Chrome trace_event export.
//
// The dump uses the JSON-object format ({"traceEvents": [...]}) with
// complete ("X") events, which both Perfetto and chrome://tracing load
// directly. Each transaction tree becomes one process (pid = the
// top-level span's ID, named via a process_name metadata event) and each
// span becomes one thread (tid = span ID) inside it, so nested children
// render parented under their top-level transaction with retries visible
// as sibling tracks.

// traceEvent is one entry of the trace_event array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since tracer epoch
	Dur  float64        `json:"dur,omitempty"`
	PID  uint64         `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// PhaseDurations returns the span's nonzero per-phase durations in
// nanoseconds, keyed by phase name — the export convenience for packages
// outside stmtrace (which cannot iterate the unexported phase space).
func (d SpanData) PhaseDurations() map[string]int64 {
	m := make(map[string]int64, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		if ns := d.PhaseNS[p]; ns > 0 {
			m[p.String()] = ns
		}
	}
	return m
}

// Name renders a span's display name (exported for merged exports).
func (d SpanData) Name() string { return spanName(d) }

// spanName renders a span's display name.
func spanName(d SpanData) string {
	if d.Parent == 0 {
		if d.Attempt > 0 {
			return fmt.Sprintf("top tx (retry %d)", d.Attempt)
		}
		return "top tx"
	}
	if d.Attempt > 0 {
		return fmt.Sprintf("nested d%d (retry %d)", d.Depth, d.Attempt)
	}
	return fmt.Sprintf("nested d%d", d.Depth)
}

// events converts the completed-span ring to trace events.
func (t *Tracer) events() []traceEvent {
	spans := t.Spans()
	evs := make([]traceEvent, 0, 2*len(spans)+16)
	namedRoot := make(map[uint64]bool)
	for _, d := range spans {
		if !namedRoot[d.Root] {
			namedRoot[d.Root] = true
			evs = append(evs, traceEvent{
				Name: "process_name", Ph: "M", PID: d.Root, TID: d.Root,
				Args: map[string]any{"name": fmt.Sprintf("stm tx tree %d", d.Root)},
			})
		}
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", PID: d.Root, TID: d.ID,
			Args: map[string]any{"name": spanName(d)},
		})
		args := map[string]any{
			"outcome": d.Outcome.String(),
			"depth":   d.Depth,
			"attempt": d.Attempt,
		}
		if d.Reason != ReasonNone {
			args["abort_reason"] = d.Reason.String()
		}
		if d.Link != 0 {
			args["link"] = fmt.Sprintf("%016x", d.Link)
		}
		if d.Parent != 0 {
			args["parent_span"] = d.Parent
		}
		for p := Phase(0); p < numPhases; p++ {
			if ns := d.PhaseNS[p]; ns > 0 {
				args["phase_"+p.String()+"_us"] = float64(ns) / 1e3
			}
		}
		dur := float64(d.End-d.Start) / 1e3
		if dur <= 0 {
			dur = 0.001 // zero-duration X events are dropped by some viewers
		}
		evs = append(evs, traceEvent{
			Name: spanName(d), Cat: "stm", Ph: "X",
			TS: float64(d.Start) / 1e3, Dur: dur,
			PID: d.Root, TID: d.ID, Args: args,
		})
	}
	return evs
}

// WriteTraceEvents writes the completed-span ring as Chrome trace_event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     t.events(),
	})
}

// Collect registers the tracer's observability surface on r:
//
//	autopn_stm_trace_sampled_total                      top-level transactions sampled
//	autopn_stm_trace_spans_total                        spans completed (all depths)
//	autopn_stm_trace_spans_dropped_total                spans overwritten in the ring
//	autopn_stm_trace_aborts_<reason>_total              sampled aborts per Reason
//	autopn_stm_trace_hot_box_aborts                     aborts on the single hottest box (gauge)
//	autopn_stm_trace_boxes_tracked                      distinct boxes in the conflict table (gauge)
//	autopn_stm_phase_<begin|run|validate|commit>_seconds  top-level phase latency (summary)
//
// Everything is read-at-export: the hot path never touches the registry.
func (t *Tracer) Collect(r *obs.Registry) {
	r.CounterFunc("autopn_stm_trace_sampled_total", t.sampled.Load)
	r.CounterFunc("autopn_stm_trace_spans_total", t.spans.Load)
	r.CounterFunc("autopn_stm_trace_spans_dropped_total", t.dropped.Load)
	for reason := Reason(1); reason < numReasons; reason++ {
		reason := reason
		r.CounterFunc("autopn_stm_trace_aborts_"+reason.metricName()+"_total",
			func() uint64 { return t.AbortCount(reason) })
	}
	r.GaugeFunc("autopn_stm_trace_hot_box_aborts",
		func() float64 { return float64(t.hottestBoxAborts()) })
	r.GaugeFunc("autopn_stm_trace_boxes_tracked",
		func() float64 { return float64(t.boxesTracked()) })
	for p := Phase(0); p < numPhases; p++ {
		r.RegisterHistogram("autopn_stm_phase_"+p.String()+"_seconds", t.phaseHists[p])
	}
}
