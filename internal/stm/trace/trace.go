// Package stmtrace is the STM's transaction tracer and conflict profiler.
//
// The STM's cumulative counters (stm.Stats) say how many transactions
// aborted; this package says why, where, and on which box. It captures
// spans for whole parallel-nesting trees — the top-level transaction plus
// every nested child, linked by parent span IDs — together with per-phase
// latency (begin / run / validate / commit), an abort-reason taxonomy
// recorded at every retry site, and a top-K table of the most contended
// boxes. That contention structure is exactly what shapes the throughput
// surface over (t, c) that the AutoPN tuner searches, so the profiler is
// how a tuning decision can be correlated with the conflicts that caused
// it.
//
// Tracing is sampled: the STM decides per top-level transaction (one
// atomic load plus a predictable branch when the rate is zero) whether the
// whole tree is traced. A traced tree allocates its spans from the regular
// heap — sampling keeps that off the hot path — and completed spans land
// in a fixed-size ring, exportable as Chrome trace_event JSON
// (Tracer.WriteTraceEvents, viewable in Perfetto or chrome://tracing) and
// mirrored into runtime/trace tasks and regions so `go tool trace` shows
// transaction trees alongside scheduler events.
//
// The package never imports the stm package (the STM imports it), so box
// identity crosses the boundary as an opaque uintptr key plus an optional
// human-readable label.
package stmtrace

import (
	"context"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/obs"
)

// Phase indexes the per-span latency buckets.
type Phase uint8

// Span phases, in hot-path order. PhaseRun covers user code including
// reads; PhaseValidate is the read-set validation of the serialized commit
// (folded into PhaseCommit under the lock-free strategy, where helping
// interleaves validation and write-back).
const (
	PhaseBegin    Phase = iota // pool checkout + snapshot registration
	PhaseRun                   // user function (reads, buffered writes)
	PhaseValidate              // read-set validation (serialized commit)
	PhaseCommit                // write-back and clock publish
	numPhases
)

// String returns the phase's snake_case name (used in metric names and
// trace_event args).
func (p Phase) String() string {
	switch p {
	case PhaseBegin:
		return "begin"
	case PhaseRun:
		return "run"
	case PhaseValidate:
		return "validate"
	case PhaseCommit:
		return "commit"
	}
	return "unknown"
}

// Outcome is how a span ended.
type Outcome uint8

// Span outcomes.
const (
	OutcomeCommit    Outcome = iota // committed (top-level) or merged (nested)
	OutcomeAbort                    // conflict; the span's Reason names the site
	OutcomeUserAbort                // the transaction function returned an error
)

// String returns the outcome label used in exports.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeAbort:
		return "abort"
	case OutcomeUserAbort:
		return "user-abort"
	}
	return "unknown"
}

// SpanData is one completed transaction attempt. Times are nanoseconds
// since the tracer's epoch (New), so a dump is self-consistent without
// wall-clock conversions.
type SpanData struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"` // 0 for top-level spans
	Root   uint64 `json:"root"`             // top-level span of the tree (== ID for tops)
	Depth  int    `json:"depth"`
	// Attempt numbers retries of the same logical transaction: a conflicted
	// attempt and its retry appear as sibling spans with increasing Attempt.
	Attempt int `json:"attempt"`
	// Link ties a top-level span to an external trace — the serving layer's
	// request trace ID (stm.AtomicTraced). Zero for ambient-sampled
	// transactions; children inherit their root's link via Root.
	Link  uint64 `json:"link,omitempty"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	// PhaseNS holds cumulative nanoseconds per Phase, indexed by Phase.
	PhaseNS [numPhases]int64 `json:"phase_ns"`
	Outcome Outcome          `json:"-"`
	Reason  Reason           `json:"-"`
}

// Span is a live transaction attempt being traced. The owning goroutine
// calls Mark and Finish; Conflict may additionally be called by lock-free
// commit helpers on other goroutines (its state is atomic).
type Span struct {
	tr   *Tracer
	data SpanData
	last int64 // epoch-ns of the previous Mark (phase accounting)

	// reason is the last conflict reason noted on this span. Atomic because
	// lock-free commit helpers attribute validation failures to the owning
	// transaction's span from their own goroutines.
	reason atomic.Uint32

	// runtime/trace mirror: the task spans the top-level attempt, regions
	// span nested children. Both are nil when runtime tracing is inactive
	// at span start.
	ctx    context.Context
	task   *rtrace.Task
	region *rtrace.Region
}

// Options configures a Tracer.
type Options struct {
	// MaxSpans bounds the completed-span ring (default 8192). When full,
	// the oldest spans are overwritten and Dropped counts the loss — a
	// long-running process keeps the most recent window of activity.
	MaxSpans int
	// MaxBoxes bounds the number of distinct boxes tracked per conflict
	// shard (default 1024 per shard); beyond it, conflicts fold into an
	// "other" bucket so the table cannot grow without bound.
	MaxBoxes int
	// HistogramWindow is the sliding window of the phase-latency
	// histograms (default obs's 512).
	HistogramWindow int
}

// Tracer collects sampled spans and conflict attribution for one STM.
// All methods are safe for concurrent use.
type Tracer struct {
	epoch time.Time

	seq     atomic.Uint64 // span ID allocator
	sampled atomic.Uint64 // top-level transactions sampled
	spans   atomic.Uint64 // spans completed (all depths)
	dropped atomic.Uint64 // completed spans overwritten in the ring

	mu   sync.Mutex
	ring []SpanData
	next int
	n    int

	conflicts conflictTable

	// phase latency histograms, indexed by Phase; top-level spans only so
	// the distributions match the begin/commit paths PR 1 benchmarks.
	phaseHists [numPhases]*obs.Histogram
}

// New returns a tracer with the given options completed with defaults.
func New(opts Options) *Tracer {
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = 8192
	}
	if opts.MaxBoxes <= 0 {
		opts.MaxBoxes = 1024
	}
	t := &Tracer{
		epoch: time.Now(),
		ring:  make([]SpanData, opts.MaxSpans),
	}
	t.conflicts.init(opts.MaxBoxes)
	for p := range t.phaseHists {
		t.phaseHists[p] = obs.NewHistogram(opts.HistogramWindow)
	}
	return t
}

// now returns nanoseconds since the tracer epoch (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// StartTopAt opens a top-level span whose clock started at t0 (the STM
// samples t0 before pool checkout so PhaseBegin covers the real begin
// path). attempt numbers the retry.
func (t *Tracer) StartTopAt(t0 time.Time, attempt int) *Span {
	return t.StartTopLinkedAt(t0, attempt, 0)
}

// StartTopLinkedAt is StartTopAt for a span linked to an external trace:
// link (nonzero) tags the span with the caller's trace ID, which is how a
// serving-layer request trace claims the transaction trees it caused.
func (t *Tracer) StartTopLinkedAt(t0 time.Time, attempt int, link uint64) *Span {
	start := int64(t0.Sub(t.epoch))
	id := t.seq.Add(1)
	if attempt == 0 {
		t.sampled.Add(1)
	}
	sp := &Span{tr: t, last: start}
	sp.data = SpanData{ID: id, Root: id, Attempt: attempt, Link: link, Start: start}
	if rtrace.IsEnabled() {
		sp.ctx, sp.task = rtrace.NewTask(context.Background(), "stm.tx")
	}
	return sp
}

// Epoch returns the tracer's time origin; every span timestamp is
// nanoseconds since it. Exporters merging spans from several tracers (the
// serving layer's combined request+STM timeline) use it to re-anchor.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// StartChild opens a nested span under sp. It must be called on the
// goroutine that will run the child (runtime/trace regions are
// goroutine-bound).
func (sp *Span) StartChild(depth, attempt int) *Span {
	t := sp.tr
	now := t.now()
	c := &Span{tr: t, last: now}
	c.data = SpanData{
		ID:      t.seq.Add(1),
		Parent:  sp.data.ID,
		Root:    sp.data.Root,
		Depth:   depth,
		Attempt: attempt,
		Start:   now,
	}
	if sp.ctx != nil {
		c.ctx = sp.ctx
		c.region = rtrace.StartRegion(sp.ctx, "stm.child")
	}
	return c
}

// Mark closes the phase that began at the previous Mark (or span start),
// attributing the elapsed time to p.
func (sp *Span) Mark(p Phase) {
	now := sp.tr.now()
	sp.data.PhaseNS[p] += now - sp.last
	sp.last = now
}

// Conflict attributes one abort to reason at the box identified by key
// (0 = no specific box, e.g. user aborts). Safe to call from helper
// goroutines (lock-free commit).
func (sp *Span) Conflict(reason Reason, key uintptr, label string) {
	sp.reason.Store(uint32(reason))
	sp.tr.conflicts.record(reason, key, label)
}

// Finish completes the span and publishes it to the tracer's ring. The
// owning goroutine must call it exactly once.
func (sp *Span) Finish(o Outcome) {
	t := sp.tr
	sp.data.End = t.now()
	sp.data.Outcome = o
	sp.data.Reason = Reason(sp.reason.Load())
	if sp.region != nil {
		sp.region.End()
	}
	if sp.task != nil && sp.data.Parent == 0 {
		rtrace.Log(sp.ctx, "stm.outcome", o.String())
		sp.task.End()
	}
	if sp.data.Parent == 0 {
		for p := Phase(0); p < numPhases; p++ {
			if ns := sp.data.PhaseNS[p]; ns > 0 {
				t.phaseHists[p].Observe(float64(ns) / 1e9)
			}
		}
	}
	t.spans.Add(1)
	t.mu.Lock()
	if t.n == len(t.ring) {
		t.dropped.Add(1)
	} else {
		t.n++
	}
	t.ring[t.next] = sp.data
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// Spans returns a copy of the completed-span ring, oldest first.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.next-t.n+i+2*len(t.ring))%len(t.ring)])
	}
	return out
}

// Sampled returns the number of top-level transactions sampled.
func (t *Tracer) Sampled() uint64 { return t.sampled.Load() }

// SpanCount returns the number of spans completed (all depths, including
// spans already overwritten in the ring).
func (t *Tracer) SpanCount() uint64 { return t.spans.Load() }

// Dropped returns the number of completed spans lost to ring overwrite.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// PhaseSnapshot summarizes the latency histogram of one phase.
func (t *Tracer) PhaseSnapshot(p Phase) obs.HistogramSnapshot {
	return t.phaseHists[p].Snapshot()
}
