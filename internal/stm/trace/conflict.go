package stmtrace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Reason is the abort-reason taxonomy: one value per retry site in the
// STM. Every conflicted transaction attempt records exactly one.
type Reason uint8

// Abort reasons.
const (
	// ReasonNone marks a span that never conflicted (committed spans).
	ReasonNone Reason = iota
	// ReasonTopValidation is a top-level read-set validation failure in the
	// serialized commit section: a box read at the snapshot has a newer
	// committed version.
	ReasonTopValidation
	// ReasonLockFreeHelp is the lock-free commit queue's equivalent: a
	// helping thread (possibly not the owner) invalidated the request
	// against the fully applied state of its queue predecessors.
	ReasonLockFreeHelp
	// ReasonNestedParent is an eager nested abort at read time: the child
	// resolved a box to an ancestor's write-set entry whose tree version is
	// newer than the child's tree snapshot (the version it should read no
	// longer exists in the single-version tree write sets).
	ReasonNestedParent
	// ReasonNestedSibling is a nested commit-time validation failure: a
	// sibling's merge changed how a recorded tree read resolves.
	ReasonNestedSibling
	// ReasonUser is a transaction abandoned because its function returned a
	// non-nil error (no retry).
	ReasonUser
	numReasons
)

// String returns the reason's stable snake-case-free label (used in metric
// names after mangling, JSON reports, and docs).
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonTopValidation:
		return "top-validation"
	case ReasonLockFreeHelp:
		return "commit-queue-helping"
	case ReasonNestedParent:
		return "nested-vs-parent"
	case ReasonNestedSibling:
		return "nested-vs-sibling"
	case ReasonUser:
		return "user-abort"
	}
	return "unknown"
}

// metricName returns the reason's snake_case fragment for metric names.
func (r Reason) metricName() string {
	switch r {
	case ReasonTopValidation:
		return "top_validation"
	case ReasonLockFreeHelp:
		return "commit_queue_helping"
	case ReasonNestedParent:
		return "nested_vs_parent"
	case ReasonNestedSibling:
		return "nested_vs_sibling"
	case ReasonUser:
		return "user_abort"
	}
	return "none"
}

// conflictShardCount stripes the box table the same way stm's Stats
// stripes its counters, so concurrent abort storms on different cores do
// not serialize on one mutex.
const conflictShardCount = 16

// boxAgg accumulates aborts attributed to one box. Guarded by its shard's
// mutex.
type boxAgg struct {
	label    string
	total    uint64
	byReason [numReasons]uint64
}

// conflictShard is one stripe of the box table.
type conflictShard struct {
	mu       sync.Mutex
	boxes    map[uintptr]*boxAgg
	overflow uint64 // conflicts on boxes beyond the per-shard cap
	_        [40]byte
}

// conflictTable is the sampled contention profile: per-reason totals
// (atomic) plus a sharded per-box table feeding the top-K report.
type conflictTable struct {
	reasons  [numReasons]atomic.Uint64
	maxBoxes int
	shards   [conflictShardCount]conflictShard
}

func (c *conflictTable) init(maxBoxes int) {
	c.maxBoxes = maxBoxes
	for i := range c.shards {
		c.shards[i].boxes = make(map[uintptr]*boxAgg)
	}
}

// record attributes one abort. key 0 (no box) updates only the reason
// totals.
func (c *conflictTable) record(reason Reason, key uintptr, label string) {
	c.reasons[reason].Add(1)
	if key == 0 {
		return
	}
	sh := &c.shards[(uint64(key)*0x9e3779b97f4a7c15)>>60&(conflictShardCount-1)]
	sh.mu.Lock()
	agg := sh.boxes[key]
	if agg == nil {
		if len(sh.boxes) >= c.maxBoxes {
			sh.overflow++
			sh.mu.Unlock()
			return
		}
		agg = &boxAgg{label: label}
		sh.boxes[key] = agg
	}
	if agg.label == "" && label != "" {
		agg.label = label
	}
	agg.total++
	agg.byReason[reason]++
	sh.mu.Unlock()
}

// BoxConflicts is one row of the hot-box table.
type BoxConflicts struct {
	// Box is the box's label when one was set (VBox.WithLabel), otherwise
	// its address rendered as 0x… — still a stable identity within a run.
	Box string `json:"box"`
	// Aborts is the total sampled aborts attributed to this box.
	Aborts uint64 `json:"aborts"`
	// ByReason breaks Aborts down by Reason label.
	ByReason map[string]uint64 `json:"by_reason"`
}

// ConflictReport is the profiler's exportable view: what aborted, why, and
// on which boxes. Counts cover sampled transactions only.
type ConflictReport struct {
	// SampledTx is the number of top-level transactions sampled.
	SampledTx uint64 `json:"sampled_tx"`
	// Spans / DroppedSpans describe the span ring's coverage.
	Spans        uint64 `json:"spans"`
	DroppedSpans uint64 `json:"dropped_spans,omitempty"`
	// Reasons maps each abort reason to its sampled count (zero counts are
	// omitted).
	Reasons map[string]uint64 `json:"reasons"`
	// TopBoxes lists the k most contended boxes, most aborted first.
	TopBoxes []BoxConflicts `json:"top_boxes"`
	// OtherBoxAborts counts conflicts on boxes beyond the table cap.
	OtherBoxAborts uint64 `json:"other_box_aborts,omitempty"`
}

// Conflicts builds the contention report with the k hottest boxes.
func (t *Tracer) Conflicts(k int) ConflictReport {
	rep := ConflictReport{
		SampledTx:    t.sampled.Load(),
		Spans:        t.spans.Load(),
		DroppedSpans: t.dropped.Load(),
		Reasons:      make(map[string]uint64),
	}
	for r := Reason(1); r < numReasons; r++ {
		if n := t.conflicts.reasons[r].Load(); n > 0 {
			rep.Reasons[r.String()] = n
		}
	}
	type row struct {
		key uintptr
		agg boxAgg
	}
	var rows []row
	for i := range t.conflicts.shards {
		sh := &t.conflicts.shards[i]
		sh.mu.Lock()
		for key, agg := range sh.boxes {
			rows = append(rows, row{key: key, agg: *agg})
		}
		rep.OtherBoxAborts += sh.overflow
		sh.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].agg.total != rows[j].agg.total {
			return rows[i].agg.total > rows[j].agg.total
		}
		return rows[i].key < rows[j].key // deterministic tie-break
	})
	if k > 0 && len(rows) > k {
		for _, r := range rows[k:] {
			rep.OtherBoxAborts += r.agg.total
		}
		rows = rows[:k]
	}
	for _, r := range rows {
		bc := BoxConflicts{
			Box:      r.agg.label,
			Aborts:   r.agg.total,
			ByReason: make(map[string]uint64),
		}
		if bc.Box == "" {
			bc.Box = fmt.Sprintf("0x%x", r.key)
		}
		for reason := Reason(1); reason < numReasons; reason++ {
			if n := r.agg.byReason[reason]; n > 0 {
				bc.ByReason[reason.String()] = n
			}
		}
		rep.TopBoxes = append(rep.TopBoxes, bc)
	}
	return rep
}

// AbortCount returns the sampled abort count for one reason.
func (t *Tracer) AbortCount(r Reason) uint64 {
	return t.conflicts.reasons[r].Load()
}

// RecordConflict attributes one abort directly to the conflict table,
// without a live span. The scheduler's always-on attribution path uses it:
// when a conflict-aware scheduler is attached, the STM records every
// top-level abort here even for unsampled transactions, so the hot-box
// table reflects live contention rather than a sampled sliver of it.
func (t *Tracer) RecordConflict(reason Reason, key uintptr, label string) {
	t.conflicts.record(reason, key, label)
}

// HotBox is one windowed hot-box row carrying the raw box key, which is
// what a scheduler needs to match conflict statistics back to the boxes
// transactions declare as intent. Label may be empty for unlabeled boxes.
type HotBox struct {
	Key    uintptr
	Label  string
	Aborts uint64
}

// HotBoxes returns the k most contended boxes (most aborted first, key
// ascending as the deterministic tie-break), with raw keys. Unlike
// Conflicts it does not fold the tail into an "other" bucket — it is the
// scheduler controller's read path, not the exported report.
func (t *Tracer) HotBoxes(k int) []HotBox {
	var rows []HotBox
	for i := range t.conflicts.shards {
		sh := &t.conflicts.shards[i]
		sh.mu.Lock()
		for key, agg := range sh.boxes {
			rows = append(rows, HotBox{Key: key, Label: agg.label, Aborts: agg.total})
		}
		sh.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Aborts != rows[j].Aborts {
			return rows[i].Aborts > rows[j].Aborts
		}
		return rows[i].Key < rows[j].Key
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// DecayConflicts multiplies every per-box count by factor (clamped to
// [0,1)) and evicts boxes whose total decays to zero, returning the number
// evicted. The cumulative per-reason totals (AbortCount, the Reasons map
// in Conflicts) are left untouched — they are lifetime counters exported
// as metrics. Called periodically this turns the per-box aggregates into
// an exponentially-weighted window, which is what lets a scheduler demote
// a box that was hot yesterday but is cold now. Eviction also re-opens
// table slots, so a capped table tracks the current hot set instead of
// whichever boxes conflicted first.
func (t *Tracer) DecayConflicts(factor float64) int {
	if factor < 0 {
		factor = 0
	}
	if factor >= 1 {
		return 0
	}
	evicted := 0
	for i := range t.conflicts.shards {
		sh := &t.conflicts.shards[i]
		sh.mu.Lock()
		for key, agg := range sh.boxes {
			agg.total = uint64(float64(agg.total) * factor)
			for r := range agg.byReason {
				agg.byReason[r] = uint64(float64(agg.byReason[r]) * factor)
			}
			if agg.total == 0 {
				delete(sh.boxes, key)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

// hottestBoxAborts returns the abort count of the single most contended
// box (a cheap gauge for /metrics; the full table is in Conflicts).
func (t *Tracer) hottestBoxAborts() uint64 {
	var max uint64
	for i := range t.conflicts.shards {
		sh := &t.conflicts.shards[i]
		sh.mu.Lock()
		for _, agg := range sh.boxes {
			if agg.total > max {
				max = agg.total
			}
		}
		sh.mu.Unlock()
	}
	return max
}

// boxesTracked returns the number of distinct boxes in the table.
func (t *Tracer) boxesTracked() int {
	n := 0
	for i := range t.conflicts.shards {
		sh := &t.conflicts.shards[i]
		sh.mu.Lock()
		n += len(sh.boxes)
		sh.mu.Unlock()
	}
	return n
}
