package stmtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"autopn/internal/obs"
)

func TestPhaseReasonOutcomeStrings(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseBegin: "begin", PhaseRun: "run", PhaseValidate: "validate", PhaseCommit: "commit",
	} {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
	for r, want := range map[Reason]string{
		ReasonNone:          "none",
		ReasonTopValidation: "top-validation",
		ReasonLockFreeHelp:  "commit-queue-helping",
		ReasonNestedParent:  "nested-vs-parent",
		ReasonNestedSibling: "nested-vs-sibling",
		ReasonUser:          "user-abort",
	} {
		if got := r.String(); got != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, got, want)
		}
	}
	for o, want := range map[Outcome]string{
		OutcomeCommit: "commit", OutcomeAbort: "abort", OutcomeUserAbort: "user-abort",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestSpanLifecycleAndParenting(t *testing.T) {
	tr := New(Options{})
	top := tr.StartTopAt(time.Now(), 0)
	top.Mark(PhaseBegin)
	child := top.StartChild(1, 0)
	child.Mark(PhaseBegin)
	child.Mark(PhaseRun)
	child.Finish(OutcomeCommit)
	top.Mark(PhaseRun)
	top.Mark(PhaseCommit)
	top.Finish(OutcomeCommit)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring order is completion order: the child finished first.
	c, root := spans[0], spans[1]
	if root.Parent != 0 || root.Root != root.ID {
		t.Errorf("top span not self-rooted: %+v", root)
	}
	if c.Parent != root.ID || c.Root != root.ID || c.Depth != 1 {
		t.Errorf("child not parented under top: child %+v top %+v", c, root)
	}
	if c.End < c.Start || root.End < root.Start {
		t.Errorf("span times not monotone: %+v %+v", c, root)
	}
	if tr.Sampled() != 1 || tr.SpanCount() != 2 || tr.Dropped() != 0 {
		t.Errorf("counters: sampled %d spans %d dropped %d", tr.Sampled(), tr.SpanCount(), tr.Dropped())
	}
	if got := tr.PhaseSnapshot(PhaseCommit).Count; got != 1 {
		t.Errorf("commit-phase histogram count = %d, want 1 (top spans only)", got)
	}
}

func TestRingOverwriteCountsDropped(t *testing.T) {
	tr := New(Options{MaxSpans: 4})
	for i := 0; i < 6; i++ {
		tr.StartTopAt(time.Now(), 0).Finish(OutcomeCommit)
	}
	if got := len(tr.Spans()); got != 4 {
		t.Errorf("ring holds %d spans, want 4", got)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	// The survivors are the most recent spans.
	for i, sp := range tr.Spans() {
		if want := uint64(i + 3); sp.ID != want {
			t.Errorf("ring[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

func TestConflictTableTopKAndReasons(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartTopAt(time.Now(), 0)
	// Three boxes with distinct abort counts; one labeled.
	for i := 0; i < 5; i++ {
		sp.Conflict(ReasonTopValidation, 0x1000, "hot-box")
	}
	for i := 0; i < 3; i++ {
		sp.Conflict(ReasonNestedSibling, 0x2000, "")
	}
	sp.Conflict(ReasonNestedParent, 0x3000, "")
	sp.Conflict(ReasonUser, 0, "") // no box: reason total only
	sp.Finish(OutcomeAbort)

	rep := tr.Conflicts(2)
	if rep.Reasons["top-validation"] != 5 || rep.Reasons["nested-vs-sibling"] != 3 ||
		rep.Reasons["nested-vs-parent"] != 1 || rep.Reasons["user-abort"] != 1 {
		t.Errorf("reason totals wrong: %v", rep.Reasons)
	}
	if len(rep.TopBoxes) != 2 {
		t.Fatalf("top-K returned %d rows, want 2", len(rep.TopBoxes))
	}
	if rep.TopBoxes[0].Box != "hot-box" || rep.TopBoxes[0].Aborts != 5 {
		t.Errorf("hottest box = %+v, want hot-box with 5", rep.TopBoxes[0])
	}
	if rep.TopBoxes[1].Box != "0x2000" || rep.TopBoxes[1].Aborts != 3 {
		t.Errorf("second box = %+v, want 0x2000 with 3", rep.TopBoxes[1])
	}
	if rep.OtherBoxAborts != 1 { // the truncated 0x3000 row
		t.Errorf("other-box aborts = %d, want 1", rep.OtherBoxAborts)
	}
	if rep.TopBoxes[0].ByReason["top-validation"] != 5 {
		t.Errorf("by-reason breakdown wrong: %v", rep.TopBoxes[0].ByReason)
	}
	if tr.AbortCount(ReasonTopValidation) != 5 {
		t.Errorf("AbortCount(top-validation) = %d", tr.AbortCount(ReasonTopValidation))
	}
}

func TestConflictTableBoxCap(t *testing.T) {
	tr := New(Options{MaxBoxes: 1}) // one box per shard
	sp := tr.StartTopAt(time.Now(), 0)
	// Many distinct keys hashing across shards; with cap 1 most overflow.
	for i := 1; i <= 64; i++ {
		sp.Conflict(ReasonTopValidation, uintptr(i*64), "")
	}
	sp.Finish(OutcomeAbort)
	rep := tr.Conflicts(0)
	tracked := uint64(0)
	for _, b := range rep.TopBoxes {
		tracked += b.Aborts
	}
	if tracked+rep.OtherBoxAborts != 64 {
		t.Errorf("tracked %d + overflow %d != 64 recorded", tracked, rep.OtherBoxAborts)
	}
	if rep.OtherBoxAborts == 0 {
		t.Error("expected overflow with per-shard cap 1")
	}
}

func TestDecayConflictsWindowsAndEvicts(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartTopAt(time.Now(), 0)
	for i := 0; i < 8; i++ {
		sp.Conflict(ReasonTopValidation, 0x100, "hot")
	}
	sp.Conflict(ReasonNestedSibling, 0x200, "warm")
	sp.Finish(OutcomeAbort)

	// One decay tick: 8 -> 4 on the hot box, 1 -> 0 (evicted) on the warm.
	if evicted := tr.DecayConflicts(0.5); evicted != 1 {
		t.Fatalf("DecayConflicts evicted %d boxes, want 1", evicted)
	}
	hot := tr.HotBoxes(0)
	if len(hot) != 1 || hot[0].Key != 0x100 || hot[0].Aborts != 4 || hot[0].Label != "hot" {
		t.Fatalf("after decay HotBoxes = %+v, want [{0x100 hot 4}]", hot)
	}
	// The cumulative reason totals are lifetime counters: untouched.
	if tr.AbortCount(ReasonTopValidation) != 8 || tr.AbortCount(ReasonNestedSibling) != 1 {
		t.Errorf("cumulative reason totals decayed: top=%d sib=%d, want 8 and 1",
			tr.AbortCount(ReasonTopValidation), tr.AbortCount(ReasonNestedSibling))
	}
	// The per-box by-reason breakdown decays with the totals.
	rep := tr.Conflicts(1)
	if rep.TopBoxes[0].ByReason["top-validation"] != 4 {
		t.Errorf("by-reason after decay = %v, want top-validation 4", rep.TopBoxes[0].ByReason)
	}
	// Repeated decay drains the table completely; factors outside [0,1)
	// are a no-op or a full clear, never growth.
	if evicted := tr.DecayConflicts(1.5); evicted != 0 {
		t.Errorf("factor >= 1 evicted %d, want no-op", evicted)
	}
	if evicted := tr.DecayConflicts(0); evicted != 1 {
		t.Errorf("factor 0 evicted %d, want 1 (clears the table)", evicted)
	}
	if got := tr.HotBoxes(0); len(got) != 0 {
		t.Errorf("table not empty after factor-0 decay: %+v", got)
	}
	// Eviction reopens slots: a fresh box is tracked again afterwards.
	sp2 := tr.StartTopAt(time.Now(), 1)
	sp2.Conflict(ReasonTopValidation, 0x300, "fresh")
	sp2.Finish(OutcomeAbort)
	if got := tr.HotBoxes(0); len(got) != 1 || got[0].Key != 0x300 {
		t.Errorf("fresh box not tracked after eviction: %+v", got)
	}
}

// TestDecayTopKStability: ordering among surviving boxes is preserved by
// proportional decay, and the report tie-break stays deterministic.
func TestDecayTopKStability(t *testing.T) {
	tr := New(Options{})
	counts := map[uintptr]int{0x10: 40, 0x20: 20, 0x30: 10, 0x40: 10}
	for key, n := range counts {
		for i := 0; i < n; i++ {
			tr.RecordConflict(ReasonTopValidation, key, "")
		}
	}
	wantOrder := []uintptr{0x10, 0x20, 0x30, 0x40} // ties break key-ascending
	for round := 0; round < 3; round++ {
		hot := tr.HotBoxes(4)
		if len(hot) != 4 {
			t.Fatalf("round %d: %d rows, want 4", round, len(hot))
		}
		for i, want := range wantOrder {
			if hot[i].Key != want {
				t.Fatalf("round %d: order %+v, want keys %v", round, hot, wantOrder)
			}
		}
		tr.DecayConflicts(0.5)
	}
	// 40/20/10/10 halved three times: 5/2/1/1 — still all tracked, same order.
	hot := tr.HotBoxes(0)
	if len(hot) != 4 || hot[0].Aborts != 5 || hot[1].Aborts != 2 {
		t.Errorf("after 3 half-life ticks HotBoxes = %+v", hot)
	}
}

func TestRecordConflictWithoutSpan(t *testing.T) {
	tr := New(Options{})
	tr.RecordConflict(ReasonTopValidation, 0xdead, "direct")
	if tr.AbortCount(ReasonTopValidation) != 1 {
		t.Errorf("AbortCount = %d, want 1", tr.AbortCount(ReasonTopValidation))
	}
	hot := tr.HotBoxes(1)
	if len(hot) != 1 || hot[0].Label != "direct" || hot[0].Aborts != 1 {
		t.Errorf("HotBoxes = %+v, want the directly recorded box", hot)
	}
	if tr.Sampled() != 0 {
		t.Errorf("span-less record bumped Sampled to %d", tr.Sampled())
	}
}

// traceFile mirrors the chrome trace_event JSON object format.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  uint64         `json:"pid"`
		TID  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteTraceEventsParentsChildrenUnderTop(t *testing.T) {
	tr := New(Options{})
	top := tr.StartTopAt(time.Now(), 0)
	top.Mark(PhaseBegin)
	child := top.StartChild(1, 0)
	child.Conflict(ReasonNestedSibling, 0xbeef, "counter")
	child.Finish(OutcomeAbort)
	retry := top.StartChild(1, 1)
	retry.Finish(OutcomeCommit)
	top.Mark(PhaseRun)
	top.Finish(OutcomeCommit)

	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace_event output does not parse: %v\n%s", err, buf.String())
	}

	topID := uint64(0)
	var xEvents, metaEvents int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.Name == "top tx" {
				topID = e.TID
			}
			if e.Dur <= 0 {
				t.Errorf("X event %q has non-positive dur %v", e.Name, e.Dur)
			}
		case "M":
			metaEvents++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if xEvents != 3 {
		t.Fatalf("got %d X events, want 3", xEvents)
	}
	if metaEvents == 0 {
		t.Fatal("no metadata (process/thread name) events")
	}
	if topID == 0 {
		t.Fatal("no top tx X event")
	}
	// Every span of the tree shares the top span's ID as its pid, which is
	// what groups children under their top-level transaction in Perfetto.
	sawRetry, sawAbort := false, false
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.PID != topID {
			t.Errorf("event %q has pid %d, want top id %d", e.Name, e.PID, topID)
		}
		if strings.Contains(e.Name, "retry 1") {
			sawRetry = true
		}
		if e.Args["abort_reason"] == "nested-vs-sibling" {
			sawAbort = true
			if e.Args["parent_span"] == nil {
				t.Error("aborted child lacks parent_span arg")
			}
		}
	}
	if !sawRetry {
		t.Error("retry span not named as retry")
	}
	if !sawAbort {
		t.Error("abort reason not exported in args")
	}
}

func TestCollectRegistersMetrics(t *testing.T) {
	tr := New(Options{})
	sp := tr.StartTopAt(time.Now(), 0)
	sp.Conflict(ReasonTopValidation, 0xabc, "b")
	sp.Mark(PhaseCommit)
	sp.Finish(OutcomeAbort)

	reg := obs.NewRegistry()
	tr.Collect(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"autopn_stm_trace_sampled_total 1",
		"autopn_stm_trace_spans_total 1",
		"autopn_stm_trace_aborts_top_validation_total 1",
		"autopn_stm_trace_aborts_nested_vs_sibling_total 0",
		"autopn_stm_trace_hot_box_aborts 1",
		"autopn_stm_trace_boxes_tracked 1",
		"autopn_stm_phase_commit_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentSpansAndConflicts hammers the tracer from many goroutines
// (meaningful under -race: the ring mutex, the conflict shards and the
// atomic counters all cross goroutines).
func TestConcurrentSpansAndConflicts(t *testing.T) {
	tr := New(Options{MaxSpans: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartTopAt(time.Now(), 0)
				sp.Mark(PhaseBegin)
				c := sp.StartChild(1, 0)
				c.Conflict(ReasonNestedSibling, uintptr(1+(g*7+i)%13)*8, fmt.Sprintf("box%d", i%13))
				c.Finish(OutcomeAbort)
				sp.Mark(PhaseRun)
				sp.Finish(OutcomeCommit)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { // concurrent readers
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Conflicts(5)
			tr.Spans()
			var buf bytes.Buffer
			_ = tr.WriteTraceEvents(&buf)
		}
	}()
	wg.Wait()
	<-done
	if tr.SpanCount() != 8*200*2 {
		t.Errorf("span count = %d, want %d", tr.SpanCount(), 8*200*2)
	}
	if got := tr.AbortCount(ReasonNestedSibling); got != 8*200 {
		t.Errorf("abort count = %d, want %d", got, 8*200)
	}
}
