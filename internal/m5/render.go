package m5

import (
	"fmt"
	"strings"
)

// String renders the tree structure for inspection and debugging: split
// conditions on interior nodes and linear models on every node, e.g.
//
//	x0 <= 12.5 (n=30)
//	  x1 <= 3.5 (n=18)
//	    leaf: y = 42.1 + 3.2*x0 - 1.1*x1 (n=9)
//	    ...
//
// The tuner's feature order is x0 = t, x1 = c.
func (t *Tree) String() string {
	var sb strings.Builder
	renderNode(&sb, t.root, 0)
	return sb.String()
}

func renderNode(sb *strings.Builder, nd *node, depth int) {
	indent := strings.Repeat("  ", depth)
	if nd.isLeaf() {
		fmt.Fprintf(sb, "%sleaf: y = %s (n=%d)\n", indent, nd.model, nd.n)
		return
	}
	fmt.Fprintf(sb, "%sx%d <= %g (n=%d, node model y = %s)\n",
		indent, nd.attr, nd.value, nd.n, nd.model)
	renderNode(sb, nd.left, depth+1)
	renderNode(sb, nd.right, depth+1)
}

// String renders the linear model as "b0 + b1*x0 + b2*x1 ...", eliding
// zero coefficients.
func (m linearModel) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.4g", m.intercept)
	for i, c := range m.coef {
		switch {
		case c == 0:
			continue
		case c > 0:
			fmt.Fprintf(&sb, " + %.4g*x%d", c, i)
		default:
			fmt.Fprintf(&sb, " - %.4g*x%d", -c, i)
		}
	}
	return sb.String()
}
