package m5

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"autopn/internal/stats"
)

func linearData(n int, f func(x []float64) float64, rng *stats.RNG, dim int) []Instance {
	data := make([]Instance, n)
	for i := range data {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64() * 10
		}
		data[i] = Instance{X: x, Y: f(x)}
	}
	return data
}

func TestRecoversLinearFunction(t *testing.T) {
	rng := stats.NewRNG(1)
	f := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 5 }
	tr := Train(linearData(60, f, rng, 2), DefaultOptions())
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		want := f(x)
		if got := tr.Predict(x); math.Abs(got-want) > 0.05*(1+math.Abs(want)) {
			t.Fatalf("Predict(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestPiecewiseFunctionNeedsSplits(t *testing.T) {
	rng := stats.NewRNG(2)
	f := func(x []float64) float64 {
		if x[0] < 5 {
			return 10 * x[0]
		}
		return 100 - 8*(x[0]-5)
	}
	data := linearData(200, f, rng, 1)
	tr := Train(data, DefaultOptions())
	if tr.NumLeaves() < 2 {
		t.Fatalf("tree has %d leaves; a hinge function needs a split", tr.NumLeaves())
	}
	// Predictions on both sides of the hinge.
	mae := 0.0
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64() * 10}
		mae += math.Abs(tr.Predict(x) - f(x))
	}
	mae /= 100
	if mae > 6 {
		t.Fatalf("MAE %v too high for a piecewise-linear target", mae)
	}
}

func TestConstantTargetGivesStump(t *testing.T) {
	data := make([]Instance, 20)
	for i := range data {
		data[i] = Instance{X: []float64{float64(i), float64(i % 5)}, Y: 7}
	}
	tr := Train(data, DefaultOptions())
	if tr.NumLeaves() != 1 {
		t.Fatalf("constant target produced %d leaves", tr.NumLeaves())
	}
	if got := tr.Predict([]float64{100, 100}); math.Abs(got-7) > 1e-3 {
		t.Fatalf("Predict = %v, want 7", got)
	}
}

func TestTinyTrainingSetWorks(t *testing.T) {
	// The online tuner trains on as few as 3 samples.
	data := []Instance{
		{X: []float64{1, 1}, Y: 10},
		{X: []float64{48, 1}, Y: 50},
		{X: []float64{1, 48}, Y: 5},
	}
	tr := Train(data, DefaultOptions())
	if got := tr.Predict([]float64{24, 1}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("prediction on tiny set = %v", got)
	}
}

func TestPruningReducesLeavesOnNoise(t *testing.T) {
	rng := stats.NewRNG(3)
	// Pure noise: an unpruned deep tree overfits; pruning should collapse
	// most of it.
	data := make([]Instance, 100)
	for i := range data {
		data[i] = Instance{X: []float64{rng.Float64() * 10, rng.Float64() * 10}, Y: rng.NormFloat64()}
	}
	opts := DefaultOptions()
	unpruned := opts
	unpruned.Unpruned = true
	a := Train(data, unpruned)
	b := Train(data, opts)
	if b.NumLeaves() > a.NumLeaves() {
		t.Fatalf("pruned tree has more leaves (%d) than unpruned (%d)", b.NumLeaves(), a.NumLeaves())
	}
}

func TestSmoothingStaysFinite(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := stats.NewRNG(seed)
		count := int(n%50) + 1
		data := make([]Instance, count)
		for i := range data {
			data[i] = Instance{
				X: []float64{rng.Float64() * 48, rng.Float64() * 48},
				Y: rng.Float64() * 1000,
			}
		}
		tr := Train(data, DefaultOptions())
		for i := 0; i < 20; i++ {
			x := []float64{rng.Float64() * 48, rng.Float64() * 48}
			p := tr.Predict(x)
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantLeavesOption(t *testing.T) {
	rng := stats.NewRNG(4)
	f := func(x []float64) float64 { return 5 * x[0] }
	data := linearData(40, f, rng, 1)
	opts := DefaultOptions()
	opts.ConstantLeaves = true
	tr := Train(data, opts)
	// Constant-leaf trees cannot extrapolate a slope: far outside the
	// training range the prediction stays near the data's range.
	if got := tr.Predict([]float64{100}); got > 60 {
		t.Fatalf("constant-leaf tree extrapolated to %v", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	tr := Train([]Instance{{X: []float64{1, 2}, Y: 3}}, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	tr.Predict([]float64{1})
}

func TestEmptyTrainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty training set")
		}
	}()
	Train(nil, DefaultOptions())
}

func TestSolveAgainstKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b := []float64{5, 10, 7}
	w, ok := solve(a, b)
	if !ok {
		t.Fatal("solve failed on a well-conditioned system")
	}
	// Verify A*w = b using fresh copies (solve destroys its arguments).
	a2 := [][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b2 := []float64{5, 10, 7}
	for i := range a2 {
		sum := 0.0
		for j := range w {
			sum += a2[i][j] * w[j]
		}
		if math.Abs(sum-b2[i]) > 1e-9 {
			t.Fatalf("residual row %d: %v", i, sum-b2[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, ok := solve(a, b); ok {
		t.Fatal("solve accepted a singular matrix")
	}
}

func TestDepthAndDim(t *testing.T) {
	rng := stats.NewRNG(5)
	f := func(x []float64) float64 {
		if x[0] < 5 {
			return x[1]
		}
		return 50 + x[1]
	}
	tr := Train(linearData(120, f, rng, 2), DefaultOptions())
	if tr.Dim() != 2 {
		t.Fatalf("Dim = %d", tr.Dim())
	}
	if tr.NumLeaves() > 1 && tr.Depth() < 1 {
		t.Fatalf("Depth = %d with %d leaves", tr.Depth(), tr.NumLeaves())
	}
}

func TestTreeStringRendering(t *testing.T) {
	rng := stats.NewRNG(6)
	f := func(x []float64) float64 {
		if x[0] < 5 {
			return 10 * x[0]
		}
		return 100 - 8*(x[0]-5)
	}
	tr := Train(linearData(200, f, rng, 1), DefaultOptions())
	out := tr.String()
	if !strings.Contains(out, "leaf: y =") {
		t.Fatalf("rendering missing leaves:\n%s", out)
	}
	if tr.NumLeaves() > 1 && !strings.Contains(out, "x0 <=") {
		t.Fatalf("rendering missing split condition:\n%s", out)
	}
	if strings.Count(out, "leaf:") != tr.NumLeaves() {
		t.Fatalf("rendered %d leaves, tree has %d:\n%s",
			strings.Count(out, "leaf:"), tr.NumLeaves(), out)
	}
}
