package m5

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzTrainPredict feeds arbitrary byte-derived training sets to the model
// tree and asserts it neither panics nor produces non-finite predictions on
// finite inputs (run with `go test -fuzz FuzzTrainPredict` to explore; the
// seeds run as regular tests).
func FuzzTrainPredict(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 12 {
			return
		}
		var ins []Instance
		for i := 0; i+12 <= len(data) && len(ins) < 200; i += 12 {
			x0 := float64(binary.LittleEndian.Uint32(data[i:])%4800) / 100
			x1 := float64(binary.LittleEndian.Uint32(data[i+4:])%4800) / 100
			y := float64(int32(binary.LittleEndian.Uint32(data[i+8:]))%100000) / 10
			ins = append(ins, Instance{X: []float64{x0, x1}, Y: y})
		}
		if len(ins) == 0 {
			return
		}
		for _, opts := range []Options{DefaultOptions(), {MinLeaf: 1, Unpruned: true}, {ConstantLeaves: true}} {
			tr := Train(ins, opts)
			for _, in := range ins {
				p := tr.Predict(in.X)
				if math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("non-finite prediction %v on %v (opts %+v)", p, in.X, opts)
				}
			}
			// Off-data probes must be finite too.
			for _, probe := range [][]float64{{0, 0}, {48, 48}, {1, 48}, {48, 1}} {
				if p := tr.Predict(probe); math.IsNaN(p) || math.IsInf(p, 0) {
					t.Fatalf("non-finite prediction %v at probe %v", p, probe)
				}
			}
		}
	})
}
