package m5

import "math"

// linearModel is a multivariate linear model y = intercept + coef . x.
// A constant model has nil coefficients.
type linearModel struct {
	coef      []float64
	intercept float64
}

func (m linearModel) predict(x []float64) float64 {
	y := m.intercept
	for i, c := range m.coef {
		y += c * x[i]
	}
	return y
}

// params returns the effective number of fitted parameters, used by the
// pruning penalty.
func (m linearModel) params() int { return len(m.coef) + 1 }

// constantModel fits the mean of the targets.
func constantModel(data []Instance) linearModel {
	sum := 0.0
	for _, in := range data {
		sum += in.Y
	}
	return linearModel{intercept: sum / float64(len(data))}
}

// fitLinear fits an ordinary-least-squares linear model with a tiny ridge
// term for numerical stability on degenerate designs (collinear or
// constant features are common in the tiny per-node samples of an online
// tuner). Falls back to the constant model when the system is unsolvable
// or the sample is smaller than the parameter count.
func fitLinear(data []Instance, dim int) linearModel {
	n := len(data)
	if n <= dim+1 {
		return constantModel(data)
	}
	// Normal equations over the augmented design [x, 1]: A w = b with
	// A = X^T X + lambda*I, b = X^T y.
	d := dim + 1
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	b := make([]float64, d)
	xi := make([]float64, d)
	for _, in := range data {
		copy(xi, in.X)
		xi[dim] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += xi[i] * xi[j]
			}
			b[i] += xi[i] * in.Y
		}
	}
	const lambda = 1e-8
	for i := 0; i < d; i++ {
		a[i][i] += lambda * (1 + a[i][i])
	}
	w, ok := solve(a, b)
	if !ok {
		return constantModel(data)
	}
	return linearModel{coef: w[:dim], intercept: w[dim]}
}

// solve performs Gaussian elimination with partial pivoting on the small
// dense system a*w = b, destroying a and b. It reports failure on a
// (numerically) singular matrix.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot: largest absolute value in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	w := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * w[c]
		}
		w[r] = sum / a[r][r]
	}
	return w, true
}
