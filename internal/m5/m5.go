// Package m5 implements the M5 model-tree learning algorithm (Quinlan,
// "Learning with Continuous Classes", 1992; the M5P variant popularized by
// Weka), the lightweight regressor AutoPN uses as base learner of its
// bagging ensemble (§V-B of the paper, "Model construction").
//
// An M5 model tree is a decision tree for regression whose leaves hold
// multivariate linear models, so the tree approximates an arbitrary
// function by a piece-wise linear model. Training proceeds in three
// phases: (1) grow a tree by recursively choosing the split that maximizes
// standard-deviation reduction (SDR); (2) fit a linear model at every node
// and prune bottom-up wherever the node's own model (after a complexity
// penalty) beats its subtree; (3) smooth predictions along the path from
// leaf to root to reduce discontinuities between adjacent leaves.
//
// The implementation is dimension-generic but tuned for the tiny training
// sets (tens of points, two features) that online self-tuning produces:
// training an ensemble of 10 trees on 30 samples takes microseconds, which
// is what makes per-sample retraining viable at run time.
package m5

import (
	"fmt"
	"math"
	"sort"
)

// Instance is one training example: a feature vector and its target value.
type Instance struct {
	X []float64
	Y float64
}

// Options control tree construction.
type Options struct {
	// MinLeaf is the minimum number of instances per leaf (default 4).
	MinLeaf int
	// SDRatio stops splitting when a node's target standard deviation
	// drops below this fraction of the root's (default 0.05).
	SDRatio float64
	// Smoothing enables M5's leaf-to-root prediction smoothing
	// (recommended and default via DefaultOptions).
	Smoothing bool
	// SmoothK is the smoothing constant (default 15).
	SmoothK float64
	// Unpruned disables the pruning phase.
	Unpruned bool
	// PruningFactor multiplies the pruning penalty; 1 is Quinlan's
	// heuristic (n+v)/(n-v).
	PruningFactor float64
	// ConstantLeaves replaces leaf linear models with node means (used by
	// the leaf-model ablation bench).
	ConstantLeaves bool
}

// DefaultOptions returns the configuration used by AutoPN: pruned,
// smoothed trees with Quinlan's defaults.
func DefaultOptions() Options {
	return Options{MinLeaf: 2, SDRatio: 0.05, Smoothing: true, SmoothK: 15, PruningFactor: 1}
}

type node struct {
	attr  int     // split attribute (leaf if left == nil)
	value float64 // split threshold: left if x[attr] <= value
	left  *node
	right *node

	model linearModel // model fitted on this node's instances
	n     int         // number of training instances at this node
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// Tree is a trained M5 model tree.
type Tree struct {
	root *node
	opts Options
	dim  int
}

// Train builds a model tree from data. It panics if data is empty or the
// instances disagree on dimensionality.
func Train(data []Instance, opts Options) *Tree {
	if len(data) == 0 {
		panic("m5: empty training set")
	}
	dim := len(data[0].X)
	for _, in := range data {
		if len(in.X) != dim {
			panic(fmt.Sprintf("m5: inconsistent dimensionality %d vs %d", len(in.X), dim))
		}
	}
	if opts.MinLeaf <= 0 {
		opts.MinLeaf = 4
	}
	if opts.SDRatio <= 0 {
		opts.SDRatio = 0.05
	}
	if opts.SmoothK <= 0 {
		opts.SmoothK = 15
	}
	if opts.PruningFactor <= 0 {
		opts.PruningFactor = 1
	}
	t := &Tree{opts: opts, dim: dim}
	rootSD := stddev(data)
	working := make([]Instance, len(data))
	copy(working, data)
	t.root = t.build(working, rootSD)
	if !opts.Unpruned {
		t.prune(t.root, working)
	}
	return t
}

// Dim returns the feature dimensionality the tree was trained on.
func (t *Tree) Dim() int { return t.dim }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return countLeaves(t.root) }

func countLeaves(nd *node) int {
	if nd.isLeaf() {
		return 1
	}
	return countLeaves(nd.left) + countLeaves(nd.right)
}

// Depth returns the maximum depth (a stump has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(nd *node) int {
	if nd.isLeaf() {
		return 0
	}
	l, r := depth(nd.left), depth(nd.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Predict returns the tree's estimate for feature vector x.
func (t *Tree) Predict(x []float64) float64 {
	if len(x) != t.dim {
		panic(fmt.Sprintf("m5: predict with dim %d, trained on %d", len(x), t.dim))
	}
	if !t.opts.Smoothing {
		nd := t.root
		for !nd.isLeaf() {
			if x[nd.attr] <= nd.value {
				nd = nd.left
			} else {
				nd = nd.right
			}
		}
		return nd.model.predict(x)
	}
	pred, _ := smoothPredict(t.root, x, t.opts.SmoothK)
	return pred
}

// smoothPredict implements M5 smoothing: the leaf prediction p is filtered
// through each ancestor's model q as p' = (n*p + k*q) / (n + k), where n is
// the number of instances at the child.
func smoothPredict(nd *node, x []float64, k float64) (pred float64, childN int) {
	if nd.isLeaf() {
		return nd.model.predict(x), nd.n
	}
	var p float64
	var n int
	if x[nd.attr] <= nd.value {
		p, n = smoothPredict(nd.left, x, k)
	} else {
		p, n = smoothPredict(nd.right, x, k)
	}
	q := nd.model.predict(x)
	return (float64(n)*p + k*q) / (float64(n) + k), nd.n
}

// build grows the tree recursively.
func (t *Tree) build(data []Instance, rootSD float64) *node {
	nd := &node{n: len(data)}
	nd.model = t.fitModel(data)
	if len(data) < 2*t.opts.MinLeaf || stddev(data) < t.opts.SDRatio*rootSD {
		return nd
	}
	attr, val, ok := t.bestSplit(data)
	if !ok {
		return nd
	}
	left, right := partition(data, attr, val)
	if len(left) < t.opts.MinLeaf || len(right) < t.opts.MinLeaf {
		return nd
	}
	nd.attr, nd.value = attr, val
	nd.left = t.build(left, rootSD)
	nd.right = t.build(right, rootSD)
	return nd
}

// bestSplit scans every attribute and every midpoint between consecutive
// distinct values, maximizing the standard deviation reduction
// SDR = sd(all) - sum_i |side_i|/|all| * sd(side_i).
func (t *Tree) bestSplit(data []Instance) (attr int, val float64, ok bool) {
	total := len(data)
	sdAll := stddev(data)
	bestSDR := 0.0
	idx := make([]int, total)
	ys := make([]float64, total)
	for a := 0; a < t.dim; a++ {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return data[idx[i]].X[a] < data[idx[j]].X[a] })
		for i, id := range idx {
			ys[i] = data[id].Y
		}
		// Prefix sums for O(1) per-candidate side deviations.
		prefSum := make([]float64, total+1)
		prefSq := make([]float64, total+1)
		for i, y := range ys {
			prefSum[i+1] = prefSum[i] + y
			prefSq[i+1] = prefSq[i] + y*y
		}
		for i := t.opts.MinLeaf; i <= total-t.opts.MinLeaf; i++ {
			lo, hi := data[idx[i-1]].X[a], data[idx[i]].X[a]
			if lo == hi {
				continue
			}
			sdL := sideSD(prefSum[i], prefSq[i], i)
			sdR := sideSD(prefSum[total]-prefSum[i], prefSq[total]-prefSq[i], total-i)
			sdr := sdAll - (float64(i)*sdL+float64(total-i)*sdR)/float64(total)
			if sdr > bestSDR {
				bestSDR = sdr
				attr = a
				val = (lo + hi) / 2
				ok = true
			}
		}
	}
	return attr, val, ok
}

func sideSD(sum, sq float64, n int) float64 {
	if n < 2 {
		return 0
	}
	mean := sum / float64(n)
	v := sq/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

func partition(data []Instance, attr int, val float64) (left, right []Instance) {
	for _, in := range data {
		if in.X[attr] <= val {
			left = append(left, in)
		} else {
			right = append(right, in)
		}
	}
	return left, right
}

// prune walks bottom-up, replacing a subtree by its node model whenever the
// penalized model error does not exceed the subtree's error (Quinlan's
// criterion with penalty (n+v)/(n-v)).
func (t *Tree) prune(nd *node, data []Instance) float64 {
	modelErr := t.penalizedError(nd, data)
	if nd.isLeaf() {
		return modelErr
	}
	left, right := partition(data, nd.attr, nd.value)
	subErr := (t.prune(nd.left, left)*float64(len(left)) +
		t.prune(nd.right, right)*float64(len(right))) / float64(len(data))
	if modelErr <= subErr {
		nd.left, nd.right = nil, nil
		return modelErr
	}
	return subErr
}

// penalizedError is the node model's mean absolute error on its own data,
// inflated by the complexity penalty (n+v)/(n-v) (v = effective number of
// parameters).
func (t *Tree) penalizedError(nd *node, data []Instance) float64 {
	if len(data) == 0 {
		return 0
	}
	mae := 0.0
	for _, in := range data {
		mae += math.Abs(in.Y - nd.model.predict(in.X))
	}
	mae /= float64(len(data))
	v := float64(nd.model.params())
	n := float64(len(data))
	if n > v {
		mae *= (n + v*t.opts.PruningFactor) / (n - v)
	} else {
		mae *= 2 // heavily penalize over-parameterized nodes
	}
	return mae
}

// fitModel fits the node's linear model (or a constant, per options).
func (t *Tree) fitModel(data []Instance) linearModel {
	if t.opts.ConstantLeaves {
		return constantModel(data)
	}
	return fitLinear(data, t.dim)
}

func stddev(data []Instance) float64 {
	n := len(data)
	if n < 2 {
		return 0
	}
	sum, sq := 0.0, 0.0
	for _, in := range data {
		sum += in.Y
		sq += in.Y * in.Y
	}
	mean := sum / float64(n)
	v := sq/float64(n) - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}
