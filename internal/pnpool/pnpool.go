// Package pnpool implements the actuator of AutoPN (§VI of the paper): it
// enforces, at run time and transparently to application code, the current
// parallelism-degree configuration (t, c) of a parallel-nesting STM.
//
// Top-level transaction begins are intercepted (via the stm.Throttle
// interface) and gated by a resizable semaphore of capacity t; each
// transaction tree receives a child gate of capacity c limiting its
// concurrently running nested transactions. Both capacities can be changed
// while transactions are in flight: Pool.Apply never blocks and takes
// effect immediately for new admissions (shrinking waits for naturally
// released slots rather than interrupting running transactions, matching
// the paper's semaphore-based design).
package pnpool

import (
	"sync"
	"sync/atomic"

	"autopn/internal/space"
	"autopn/internal/stm"
)

// Semaphore is a counting semaphore whose capacity can be changed at any
// time. Shrinking below the number of currently held slots does not revoke
// them; the semaphore simply refuses new admissions until enough slots are
// released. Use NewSemaphore; the zero value is unusable.
type Semaphore struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	held int
}

// NewSemaphore returns a semaphore with the given initial capacity
// (minimum 1).
func NewSemaphore(capacity int) *Semaphore {
	if capacity < 1 {
		capacity = 1
	}
	s := &Semaphore{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until a slot is available and takes it.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	for s.held >= s.cap {
		s.cond.Wait()
	}
	s.held++
	s.mu.Unlock()
}

// TryAcquire takes a slot if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held >= s.cap {
		return false
	}
	s.held++
	return true
}

// Release returns a slot. Releasing more than was acquired panics.
func (s *Semaphore) Release() {
	s.mu.Lock()
	if s.held <= 0 {
		s.mu.Unlock()
		panic("pnpool: semaphore released more than acquired")
	}
	s.held--
	s.mu.Unlock()
	s.cond.Signal()
}

// Resize changes the capacity (minimum 1). Growing wakes waiters;
// shrinking lets currently held slots drain naturally.
func (s *Semaphore) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	s.mu.Lock()
	grow := capacity > s.cap
	s.cap = capacity
	s.mu.Unlock()
	if grow {
		s.cond.Broadcast()
	}
}

// Capacity returns the current capacity.
func (s *Semaphore) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}

// Held returns the number of currently held slots.
func (s *Semaphore) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held
}

// Pool is the actuator. It implements stm.Throttle: install it on an STM
// with stm.Options.Throttle (or STM.SetThrottle) and every transaction is
// admitted according to the current configuration.
type Pool struct {
	top *Semaphore

	// Child admission across all trees shares one mutex/cond so that a
	// capacity increase can wake every waiting child regardless of tree.
	// Each tree still has its own held counter (the limit is per tree).
	childMu   sync.Mutex
	childCond *sync.Cond
	childCap  int

	// current is the last applied configuration, for the ad-hoc
	// introspection API the paper describes (applications may query the
	// tuned degree of parallelism, e.g. to adapt data partitioning).
	current atomic.Pointer[space.Config]

	// applied counts configuration changes (for tests and reporting).
	applied atomic.Uint64
}

var _ stm.Throttle = (*Pool)(nil)

// New returns a Pool initialized to cfg.
func New(cfg space.Config) *Pool {
	cfg = clamp(cfg)
	p := &Pool{top: NewSemaphore(cfg.T), childCap: cfg.C}
	p.childCond = sync.NewCond(&p.childMu)
	c := cfg
	p.current.Store(&c)
	return p
}

func clamp(cfg space.Config) space.Config {
	if cfg.T < 1 {
		cfg.T = 1
	}
	if cfg.C < 1 {
		cfg.C = 1
	}
	return cfg
}

// Apply reconfigures the pool to cfg, immediately affecting new admissions
// of both top-level and nested transactions (including trees already in
// flight).
func (p *Pool) Apply(cfg space.Config) {
	cfg = clamp(cfg)
	p.top.Resize(cfg.T)
	p.childMu.Lock()
	p.childCap = cfg.C
	p.childMu.Unlock()
	p.childCond.Broadcast()
	c := cfg
	p.current.Store(&c)
	p.applied.Add(1)
}

// Current returns the configuration currently enforced. This is the
// "expose the optimal degree of inter/intra-transaction concurrency via an
// ad-hoc API" hook of §VI.
func (p *Pool) Current() space.Config { return *p.current.Load() }

// Applications returns how many times Apply has been called.
func (p *Pool) Applications() uint64 { return p.applied.Load() }

// TopHeld returns the number of currently admitted top-level transactions.
func (p *Pool) TopHeld() int { return p.top.Held() }

// EnterTop implements stm.Throttle.
func (p *Pool) EnterTop() { p.top.Acquire() }

// ExitTop implements stm.Throttle.
func (p *Pool) ExitTop() { p.top.Release() }

// NewTreeGate implements stm.Throttle: each transaction tree gets a gate
// whose capacity tracks the pool's current c.
func (p *Pool) NewTreeGate() stm.TreeGate {
	return &treeGate{pool: p}
}

// treeGate limits concurrent children of one tree to the pool's current c.
type treeGate struct {
	pool *Pool
	held int // guarded by pool.childMu
}

func (g *treeGate) EnterChild() {
	p := g.pool
	p.childMu.Lock()
	for g.held >= p.childCap {
		p.childCond.Wait()
	}
	g.held++
	p.childMu.Unlock()
}

func (g *treeGate) ExitChild() {
	p := g.pool
	p.childMu.Lock()
	g.held--
	p.childMu.Unlock()
	// Broadcast rather than Signal: waiters of other (full) trees may be
	// ineligible, and Signal could wake only such a waiter, stalling an
	// eligible one. Admission is not hot enough for this to matter.
	p.childCond.Broadcast()
}
