package pnpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autopn/internal/space"
)

func TestSemaphoreBasic(t *testing.T) {
	s := NewSemaphore(2)
	s.Acquire()
	s.Acquire()
	if s.TryAcquire() {
		t.Fatal("TryAcquire succeeded at capacity")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire failed with a free slot")
	}
	if s.Held() != 2 || s.Capacity() != 2 {
		t.Fatalf("held=%d cap=%d", s.Held(), s.Capacity())
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	s := NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Release()
}

func TestSemaphoreEnforcesLimitUnderContention(t *testing.T) {
	s := NewSemaphore(3)
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Acquire()
				v := cur.Add(1)
				for {
					m := max.Load()
					if v <= m || max.CompareAndSwap(m, v) {
						break
					}
				}
				cur.Add(-1)
				s.Release()
			}
		}()
	}
	wg.Wait()
	if m := max.Load(); m > 3 {
		t.Fatalf("observed %d concurrent holders, capacity 3", m)
	}
}

func TestSemaphoreGrowWakesWaiters(t *testing.T) {
	s := NewSemaphore(1)
	s.Acquire()
	acquired := make(chan struct{})
	go func() {
		s.Acquire()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire succeeded at capacity 1")
	case <-time.After(20 * time.Millisecond):
	}
	s.Resize(2)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Resize did not wake the waiter")
	}
}

func TestSemaphoreShrinkDrainsNaturally(t *testing.T) {
	s := NewSemaphore(3)
	s.Acquire()
	s.Acquire()
	s.Acquire()
	s.Resize(1)
	if s.TryAcquire() {
		t.Fatal("admission above shrunken capacity")
	}
	s.Release()
	s.Release()
	if s.TryAcquire() {
		t.Fatal("held 2 > new capacity 1, but admission allowed")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("no admission after drain")
	}
}

func TestPoolAppliesConfig(t *testing.T) {
	p := New(space.Config{T: 2, C: 3})
	if cur := p.Current(); cur != (space.Config{T: 2, C: 3}) {
		t.Fatalf("Current = %v", cur)
	}
	p.Apply(space.Config{T: 4, C: 1})
	if cur := p.Current(); cur != (space.Config{T: 4, C: 1}) {
		t.Fatalf("Current after Apply = %v", cur)
	}
	if p.Applications() != 1 {
		t.Fatalf("Applications = %d", p.Applications())
	}
	// Degenerate configs are clamped.
	p.Apply(space.Config{T: 0, C: -1})
	if cur := p.Current(); cur != (space.Config{T: 1, C: 1}) {
		t.Fatalf("clamped Current = %v", cur)
	}
}

func TestTreeGatePerTreeLimit(t *testing.T) {
	p := New(space.Config{T: 8, C: 2})
	gate := p.NewTreeGate()
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				gate.EnterChild()
				v := cur.Add(1)
				for {
					m := max.Load()
					if v <= m || max.CompareAndSwap(m, v) {
						break
					}
				}
				cur.Add(-1)
				gate.ExitChild()
			}
		}()
	}
	wg.Wait()
	if m := max.Load(); m > 2 {
		t.Fatalf("tree gate admitted %d concurrent children, limit 2", m)
	}
}

func TestTreeGatesAreIndependent(t *testing.T) {
	p := New(space.Config{T: 8, C: 1})
	g1 := p.NewTreeGate()
	g2 := p.NewTreeGate()
	g1.EnterChild()
	done := make(chan struct{})
	go func() {
		g2.EnterChild() // a different tree: must not block on g1's slot
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("gates are not independent across trees")
	}
	g1.ExitChild()
	g2.ExitChild()
}

func TestApplyGrowsChildCapacityForInFlightTrees(t *testing.T) {
	p := New(space.Config{T: 4, C: 1})
	gate := p.NewTreeGate()
	gate.EnterChild()
	admitted := make(chan struct{})
	go func() {
		gate.EnterChild()
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("second child admitted at c=1")
	case <-time.After(20 * time.Millisecond):
	}
	p.Apply(space.Config{T: 4, C: 2})
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("capacity increase did not reach the in-flight tree")
	}
}
