package wal

import (
	"os"
	"path/filepath"
)

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// Records is how many valid batch records were delivered.
	Records int
	// Entries is the total entry count across delivered batches.
	Entries int
	// LastLSN is the last delivered record's LSN (0 if none).
	LastLSN uint64
	// MaxEpoch is the highest epoch seen across delivered records.
	MaxEpoch uint32
	// Truncated reports that scanning stopped at an invalid record — the
	// delivered batches are the recoverable prefix, never an error: a torn
	// or bit-flipped suffix yields exactly what was durable before it.
	Truncated bool
	// CleanShutdown reports a shutdown record ended the scan.
	CleanShutdown bool
}

// Replay scans dir's segments in LSN order and calls fn for every valid
// batch record. Scanning is strictly prefix-oriented: the first record
// that fails framing, checksum or LSN-continuity validation ends the
// replay (Truncated) — corruption can cost the suffix, never a panic and
// never an out-of-order apply. fn returning an error aborts the replay
// with that error.
//
// Replay opens segment files independently of any Log handle, so it works
// on a quiescent directory (fuzzing, offline inspection) as well as before
// Open during recovery.
func Replay(dir string, fn func(lsn uint64, epoch uint32, entries []Entry) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	var expect uint64
	for i, seg := range segs {
		if i == 0 {
			expect = seg.first
		} else if seg.first != expect {
			// Gap between segments (a retention delete raced a crash, or a
			// segment vanished): everything from here on is unreachable
			// suffix.
			st.Truncated = true
			return st, nil
		}
		data, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return st, err
		}
		off := 0
		for off < len(data) {
			rec, n, ok := decodeRecord(data[off:])
			if !ok || rec.lsn != expect {
				st.Truncated = true
				return st, nil
			}
			off += n
			expect++
			if rec.epoch > st.MaxEpoch {
				st.MaxEpoch = rec.epoch
			}
			switch rec.typ {
			case recShutdown:
				st.CleanShutdown = true
			case recBatch:
				st.CleanShutdown = false
				st.Records++
				st.Entries += len(rec.entries)
				st.LastLSN = rec.lsn
				if err := fn(rec.lsn, rec.epoch, rec.entries); err != nil {
					return st, err
				}
			}
		}
	}
	return st, nil
}
