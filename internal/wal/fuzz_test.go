package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment scanner as a tail
// segment image. Whatever the corruption — bit flips, truncation, crafted
// length prefixes — replay must never panic, must deliver records as a
// strictly contiguous LSN prefix, and Open over the same bytes must
// truncate to a position it can continue appending from.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a well-formed log, its truncations, and single-bit
	// flips at interesting offsets.
	seedDir := f.TempDir()
	l, _, err := Open(seedDir, Options{Policy: SyncNone})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.AppendBatch([]Entry{
			{Op: OpAdd, Key: uint32(i), Val: uint64(i * 10), Ver: uint64(i + 1)},
			{Op: OpPut, Key: uint32(i + 100), Val: uint64(i), Ver: uint64(i + 1)},
		}); err != nil {
			f.Fatal(err)
		}
	}
	l.CloseClean()
	well, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(well)
	f.Add(well[:len(well)/2])
	f.Add(well[:3])
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 9, 17, len(well) - 1} {
		if off < len(well) {
			flip := append([]byte{}, well...)
			flip[off] ^= 0x40
			f.Add(flip)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		var lsns []uint64
		st, err := Replay(dir, func(lsn uint64, epoch uint32, entries []Entry) error {
			lsns = append(lsns, lsn)
			return nil
		})
		if err != nil {
			t.Fatalf("Replay returned an error on corrupt input: %v", err)
		}
		for i := 1; i < len(lsns); i++ {
			// Strictly increasing (shutdown records may occupy skipped
			// LSNs): replay order is always log order.
			if lsns[i] <= lsns[i-1] {
				t.Fatalf("non-monotonic prefix: lsn[%d]=%d after %d", i, lsns[i], lsns[i-1])
			}
		}
		if st.Records != len(lsns) {
			t.Fatalf("stats.Records = %d, delivered %d", st.Records, len(lsns))
		}

		// Open must recover to an appendable position: whatever survived,
		// a fresh append and replay must extend the prefix by exactly one
		// record.
		lg, ost, err := Open(dir, Options{Policy: SyncNone})
		if err != nil {
			t.Fatalf("Open on corrupt input: %v", err)
		}
		wantLSN := ost.LastLSN + 1
		lsn, err := lg.AppendBatch([]Entry{{Key: 7, Val: 7, Ver: 7}})
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if lsn != wantLSN {
			t.Fatalf("append LSN = %d, want %d", lsn, wantLSN)
		}
		lg.Close()
		after, err := Replay(dir, func(uint64, uint32, []Entry) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if after.LastLSN != lsn || after.Truncated {
			t.Fatalf("post-recovery replay stats = %+v, want LastLSN %d", after, lsn)
		}
	})
}
