package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"autopn/internal/chaos"
)

func mustAppend(t *testing.T, l *Log, entries ...Entry) uint64 {
	t.Helper()
	lsn, err := l.AppendBatch(entries)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	return lsn
}

func collect(t *testing.T, dir string) ([]Entry, ReplayStats) {
	t.Helper()
	var got []Entry
	st, err := Replay(dir, func(lsn uint64, epoch uint32, entries []Entry) error {
		got = append(got, entries...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, st
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, st, err := Open(dir, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.LastLSN != 0 || st.CleanShutdown {
		t.Fatalf("fresh open stats = %+v", st)
	}
	if lsn := mustAppend(t, l, Entry{Op: OpPut, Key: 1, Val: 10, Ver: 1}); lsn != 1 {
		t.Fatalf("first LSN = %d, want 1", lsn)
	}
	mustAppend(t, l, Entry{Op: OpAdd, Key: 2, Val: 20, Ver: 2}, Entry{Op: OpAdd, Key: 3, Val: 30, Ver: 3})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if st2.LastLSN != 2 || st2.CleanShutdown || st2.TornBytes != 0 || st2.TailRecords != 2 {
		t.Fatalf("reopen stats = %+v", st2)
	}
	if lsn := mustAppend(t, l2, Entry{Op: OpPut, Key: 4, Val: 40, Ver: 4}); lsn != 3 {
		t.Fatalf("post-reopen LSN = %d, want 3", lsn)
	}
	got, rst := collect(t, dir)
	if len(got) != 4 || rst.Records != 3 || rst.Entries != 4 || rst.Truncated {
		t.Fatalf("replay got %d entries, stats %+v", len(got), rst)
	}
	if got[3].Key != 4 || got[3].Val != 40 {
		t.Fatalf("last entry = %+v", got[3])
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, Entry{Key: 1, Val: 1, Ver: 1})
	mustAppend(t, l, Entry{Key: 2, Val: 2, Ver: 2})
	l.Close()

	// Simulate a crash mid-append: chop bytes off the record boundary and
	// splatter garbage after it.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, data...), 0xde, 0xad, 0xbe)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if st.TornBytes != 3 || st.LastLSN != 2 {
		t.Fatalf("stats = %+v, want TornBytes=3 LastLSN=2", st)
	}
	// The log must be appendable at the truncated position and replay must
	// deliver the valid prefix plus the new record.
	if lsn := mustAppend(t, l2, Entry{Key: 9, Val: 9, Ver: 9}); lsn != 3 {
		t.Fatalf("post-truncation LSN = %d, want 3", lsn)
	}
	l2.Close()
	got, rst := collect(t, dir)
	if len(got) != 3 || rst.Truncated {
		t.Fatalf("replay after truncation: %d entries, %+v", len(got), rst)
	}
}

func TestTornTailMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Entry{Key: 1, Val: 1, Ver: 1})
	mustAppend(t, l, Entry{Key: 2, Val: 2, Ver: 2})
	l.Close()
	path := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(path)
	// Cut the second record in half.
	cut := len(data) - 10
	os.WriteFile(path, data[:cut], 0o644)

	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LastLSN != 1 || st.TornBytes == 0 {
		t.Fatalf("stats = %+v, want LastLSN=1 and torn bytes", st)
	}
	got, _ := collect(t, dir)
	if len(got) != 1 || got[0].Key != 1 {
		t.Fatalf("prefix = %+v", got)
	}
}

func TestCleanShutdownMarkerSkipsScan(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Entry{Key: 1, Val: 1, Ver: 1})
	if err := l.CloseClean(); err != nil {
		t.Fatalf("CloseClean: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerName)); err != nil {
		t.Fatalf("CLEAN marker missing: %v", err)
	}

	l2, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.CleanShutdown || !st.SkippedScan {
		t.Fatalf("stats = %+v, want clean shutdown with skipped scan", st)
	}
	// The marker is single-use: a second (crash-style) reopen must scan.
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerName)); !os.IsNotExist(err) {
		t.Fatalf("CLEAN marker not consumed: %v", err)
	}
	mustAppend(t, l2, Entry{Key: 2, Val: 2, Ver: 2})
	l2.Close()
	_, st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st3.SkippedScan || st3.CleanShutdown {
		t.Fatalf("unclean reopen stats = %+v", st3)
	}
	if st3.LastLSN != 3 { // record, shutdown record, record
		t.Fatalf("LastLSN = %d, want 3", st3.LastLSN)
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, l, Entry{Key: uint32(i), Val: uint64(i), Ver: uint64(i + 1)})
	}
	if l.Segments() < 3 {
		t.Fatalf("segments = %d, want rotation to have produced >= 3", l.Segments())
	}
	before := l.Segments()
	removed, err := l.TruncateTo(l.LastLSN())
	if err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if removed != int(before-1) {
		t.Fatalf("removed %d of %d segments, want all but active", removed, before)
	}
	// Everything below the truncation point is gone; replay returns only
	// the active segment's records with continuous LSNs. SyncNone buffers
	// appends in user space, so a live replay needs an explicit flush
	// first (recovery always replays a closed log).
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got, rst := collect(t, dir)
	if rst.Truncated {
		t.Fatalf("replay truncated after retention: %+v", rst)
	}
	if rst.LastLSN != l.LastLSN() {
		t.Fatalf("replay LastLSN = %d, want %d", rst.LastLSN, l.LastLSN())
	}
	if len(got) == 0 || len(got) >= 20 {
		t.Fatalf("replay entries = %d, want a strict suffix", len(got))
	}
	l.Close()
}

func TestSnapshotRoundtripAndSupersede(t *testing.T) {
	dir := t.TempDir()
	s1 := &Snapshot{LSN: 5, Epoch: 1, AsOf: 100, Keys: []uint32{1, 2}, Vals: []uint64{10, 20}}
	if err := WriteSnapshot(dir, s1, nil); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s2 := &Snapshot{LSN: 9, Epoch: 2, AsOf: 50, Keys: []uint32{3}, Vals: []uint64{30}}
	if err := WriteSnapshot(dir, s2, nil); err != nil {
		t.Fatalf("WriteSnapshot 2: %v", err)
	}
	got, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if got == nil || got.LSN != 9 || got.Epoch != 2 || got.AsOf != 50 || len(got.Keys) != 1 || got.Vals[0] != 30 {
		t.Fatalf("loaded %+v", got)
	}
	// The superseded snapshot was retired.
	if _, err := os.Stat(filepath.Join(dir, snapName(5))); !os.IsNotExist(err) {
		t.Fatalf("old snapshot not retired: %v", err)
	}
	// A corrupt newest snapshot falls back to nothing valid -> nil, and a
	// torn .tmp is ignored entirely.
	if err := os.WriteFile(filepath.Join(dir, snapName(20)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, snapName(30)+".tmp"), []byte("half"), 0o644)
	got, err = LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.LSN != 9 {
		t.Fatalf("fallback load = %+v, want the LSN 9 snapshot", got)
	}
}

func TestChaosAppendFaults(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{{
		Name: "wal-fail", Point: chaos.PointWALAppend, Trigger: chaos.Nth(2), Action: chaos.ActAbort,
	}}})
	defer inj.Close()
	l, _, err := Open(dir, Options{Policy: SyncBatch, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Entry{Key: 1, Val: 1, Ver: 1})
	if _, err := l.AppendBatch([]Entry{{Key: 2, Val: 2, Ver: 2}}); err == nil {
		t.Fatal("injected append failure not surfaced")
	}
	// Sticky: the third append fails too even though the rule fired once.
	if _, err := l.AppendBatch([]Entry{{Key: 3, Val: 3, Ver: 3}}); err == nil {
		t.Fatal("sticky error not sticky")
	}
	if l.Err() == nil || l.Errors() == 0 {
		t.Fatalf("Err=%v Errors=%d", l.Err(), l.Errors())
	}
	l.Close()
}

func TestChaosTornWriteRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(chaos.Options{Rules: []chaos.Rule{{
		Name: "wal-torn", Point: chaos.PointWALAppend, Trigger: chaos.Nth(3), Action: chaos.ActTorn,
	}}})
	defer inj.Close()
	l, _, err := Open(dir, Options{Policy: SyncBatch, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Entry{Key: 1, Val: 1, Ver: 1})
	mustAppend(t, l, Entry{Key: 2, Val: 2, Ver: 2})
	if _, err := l.AppendBatch([]Entry{{Key: 3, Val: 3, Ver: 3}}); err == nil {
		t.Fatal("torn write reported success")
	}
	l.Close()

	_, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LastLSN != 2 || st.TornBytes == 0 {
		t.Fatalf("stats after torn write = %+v", st)
	}
	got, _ := collect(t, dir)
	if len(got) != 2 {
		t.Fatalf("prefix = %d entries, want 2", len(got))
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, Entry{Key: 1, Val: 1, Ver: 1})
	deadline := time.Now().Add(2 * time.Second)
	for l.Fsyncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if l.Fsyncs() == 0 {
		t.Fatal("interval syncer never fsynced")
	}
	if err := l.CloseClean(); err != nil {
		t.Fatalf("CloseClean: %v", err)
	}
}

// TestConcurrentAppendAndReplay exercises the append-during-snapshot shape
// under -race: a reader replays the directory while the writer keeps
// appending and rotating. Replay must only ever deliver a valid prefix.
func TestConcurrentAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.AppendBatch([]Entry{{Key: uint32(i), Val: uint64(i), Ver: uint64(i + 1)}}); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		last := uint64(0)
		_, err := Replay(dir, func(lsn uint64, epoch uint32, entries []Entry) error {
			if lsn != last+1 && last != 0 {
				t.Errorf("gap: %d after %d", lsn, last)
			}
			last = lsn
			return nil
		})
		if err != nil {
			t.Errorf("replay: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	l.Close()
}
