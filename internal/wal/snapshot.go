package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"autopn/internal/chaos"
)

// Snapshot is one shard's full key state as of a single STM read snapshot.
//
//   - AsOf is the version the state was read at: every commit with
//     version <= AsOf (in Epoch) is folded in, every later one is not.
//   - LSN is the log position captured *before* the state was read: all
//     records with LSN <= it committed before the read and are therefore
//     subsumed. Records appended after the capture may or may not be
//     reflected; replaying them over the snapshot is idempotent because
//     entries apply only when (epoch, version) exceeds (Epoch, AsOf) and
//     the running per-key maximum.
type Snapshot struct {
	LSN   uint64
	Epoch uint32
	AsOf  uint64
	Keys  []uint32
	Vals  []uint64
}

// ErrSnapshotSkipped reports a chaos-aborted snapshot attempt.
var ErrSnapshotSkipped = errors.New("wal: chaos-injected snapshot skip")

const snapMagic = "autopnsn"

// snapName renders the snapshot file name for its covered LSN.
func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// parseSnapName extracts the covered LSN from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// encodeSnapshot renders the on-disk snapshot image:
// [8B magic][4B format][4B epoch][8B asof][8B lsn][4B count]
// count * ([4B key][8B val]) [4B CRC32C of everything before].
func encodeSnapshot(s *Snapshot) []byte {
	buf := make([]byte, 0, 36+len(s.Keys)*12+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, s.AsOf)
	buf = binary.LittleEndian.AppendUint64(buf, s.LSN)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Keys)))
	for i, k := range s.Keys {
		buf = binary.LittleEndian.AppendUint32(buf, k)
		buf = binary.LittleEndian.AppendUint64(buf, s.Vals[i])
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeSnapshot parses and validates a snapshot image.
func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 36+4 || string(b[:8]) != snapMagic {
		return nil, errors.New("wal: not a snapshot")
	}
	if crc32.Checksum(b[:len(b)-4], castagnoli) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, errors.New("wal: snapshot checksum mismatch")
	}
	if format := binary.LittleEndian.Uint32(b[8:]); format != 1 {
		return nil, fmt.Errorf("wal: unknown snapshot format %d", format)
	}
	s := &Snapshot{
		Epoch: binary.LittleEndian.Uint32(b[12:]),
		AsOf:  binary.LittleEndian.Uint64(b[16:]),
		LSN:   binary.LittleEndian.Uint64(b[24:]),
	}
	count := binary.LittleEndian.Uint32(b[32:])
	if uint64(len(b)) != 36+uint64(count)*12+4 {
		return nil, errors.New("wal: snapshot length mismatch")
	}
	s.Keys = make([]uint32, count)
	s.Vals = make([]uint64, count)
	for i := uint32(0); i < count; i++ {
		e := b[36+i*12:]
		s.Keys[i] = binary.LittleEndian.Uint32(e)
		s.Vals[i] = binary.LittleEndian.Uint64(e[4:])
	}
	return s, nil
}

// WriteSnapshot atomically publishes s into dir (tmp file, fsync, rename,
// directory fsync) and deletes superseded older snapshots. A torn write or
// crash mid-publish leaves either the previous snapshot or a stray .tmp
// that recovery ignores — never a half-visible image. inj fires
// chaos.PointSnapshot (ActAbort skips the snapshot, ActTorn abandons a
// partial tmp file).
func WriteSnapshot(dir string, s *Snapshot, inj *chaos.Injector) error {
	img := encodeSnapshot(s)
	if inj != nil {
		switch inj.Fire(chaos.PointSnapshot, "") {
		case chaos.ActAbort:
			return ErrSnapshotSkipped
		case chaos.ActTorn:
			tmp := filepath.Join(dir, snapName(s.LSN)+".tmp")
			_ = os.WriteFile(tmp, img[:len(img)/2], 0o644)
			return errors.New("wal: chaos-injected torn snapshot")
		}
	}
	tmp := filepath.Join(dir, snapName(s.LSN)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(dir, snapName(s.LSN))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	// Retire superseded snapshots (and any stale tmp debris).
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && name != snapName(s.LSN)+".tmp" {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if lsn, ok := parseSnapName(name); ok && lsn < s.LSN {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// LoadSnapshot returns dir's newest valid snapshot, or nil when none
// exists. Corrupt candidates (torn tmp leftovers renamed by hand, bit
// rot) are skipped in favor of the next older one — a bad snapshot can
// cost freshness, never correctness.
func LoadSnapshot(dir string) (*Snapshot, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var lsns []uint64
	for _, e := range ents {
		if lsn, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, lsn := range lsns {
		b, err := os.ReadFile(filepath.Join(dir, snapName(lsn)))
		if err != nil {
			continue
		}
		if s, err := decodeSnapshot(b); err == nil {
			return s, nil
		}
	}
	return nil, nil
}
