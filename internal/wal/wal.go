// Package wal is the serving layer's per-shard durability log: a
// segmented, length-prefixed, CRC32C-checksummed append-only record log
// with configurable fsync policy, torn-tail detection on open, and
// snapshot-gated retention (snapshot.go).
//
// One Log holds one shard's committed mutations. Each record is a *batch*
// of entries — the shard's WAL writer folds every mutation that completed
// since the previous append into a single record, so a group-committed
// burst of transactions maps to one append and (under SyncBatch) one
// fsync. Entries carry the absolute post-state of each written key plus
// the STM commit version that published it; because two update
// transactions on one STM never share a commit version, replay applies
// entries last-writer-wins on (epoch, version) and is therefore exact
// regardless of the order in which worker goroutines reached the log
// (append order and commit order may differ under concurrency).
//
// Epochs make versions comparable across process lifetimes: the STM clock
// restarts at zero on every boot, so each recovery starts a new epoch
// (strictly greater than any epoch found on disk) and (epoch, version)
// pairs order globally. See docs/DURABILITY.md for the on-disk format and
// the recovery protocol.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/chaos"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncBatch fsyncs every appended batch record before AppendBatch
	// returns: an acked write is on disk. The group-batch shape keeps this
	// affordable — one fsync covers every mutation that raced into the
	// batch.
	SyncBatch SyncPolicy = iota
	// SyncInterval appends without fsync and syncs on a timer (Options.
	// Interval): bounded loss window, near-zero per-request cost.
	SyncInterval
	// SyncNone never fsyncs; the OS page cache decides. Crash durability
	// is whatever the kernel already wrote back.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want batch, interval or none)", s)
}

// String renders the policy as its flag value.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Entry ops (informational — replay applies every entry the same way; the
// op survives for analysis and debugging).
const (
	OpPut  uint8 = 1
	OpAdd  uint8 = 2
	OpMAdd uint8 = 3
)

// Entry is one key mutation inside a batch record: the absolute post-state
// Val of key Key, published at STM commit version Ver.
type Entry struct {
	Op  uint8
	Key uint32
	Val uint64
	Ver uint64
}

// Record types.
const (
	recBatch    uint8 = 1
	recShutdown uint8 = 2
)

// Framing: [4B little-endian payload length][4B CRC32C(payload)][payload].
// Payload: [1B type][8B LSN][type-specific body]. The LSN lives inside the
// checksummed payload so a bit flip in it is detected, and lets the
// scanner cross-check continuity against the segment name.
const (
	frameHeader   = 8
	payloadHeader = 9
	entrySize     = 1 + 4 + 8 + 8
	// maxRecord bounds a single record; a length prefix above it is treated
	// as corruption, not an allocation request.
	maxRecord = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends on a closed log.
var ErrClosed = errors.New("wal: closed")

// cleanMarker is the CLEAN file graceful shutdown leaves behind: it names
// the exact tail state so the next Open can skip the record-by-record
// torn-tail scan. Any mismatch with the actual file (a crash after the
// marker was written) falls back to the full scan.
type cleanMarker struct {
	LastLSN uint64 `json:"last_lsn"`
	Segment string `json:"segment"`
	Size    int64  `json:"size"`
	Epoch   uint32 `json:"epoch"`
}

const cleanMarkerName = "CLEAN"

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB).
	SegmentBytes int64
	// Policy is the fsync policy (default SyncBatch).
	Policy SyncPolicy
	// Interval is the SyncInterval flush cadence (default 50ms).
	Interval time.Duration
	// Injector, if non-nil, fires chaos.PointWALAppend before every batch
	// append (see the Point's documentation for the action semantics).
	Injector *chaos.Injector
}

// OpenStats reports what Open found on disk.
type OpenStats struct {
	// Segments is the number of segment files present after open.
	Segments int
	// LastLSN is the last valid record's LSN (0 for an empty log).
	LastLSN uint64
	// MaxEpoch is the highest epoch among scanned tail records (0 when the
	// tail held none; the snapshot's epoch may still be higher).
	MaxEpoch uint32
	// CleanShutdown reports that the previous process closed the log
	// gracefully (CLEAN marker, or a shutdown record ending the tail).
	CleanShutdown bool
	// SkippedScan reports that a valid CLEAN marker let Open trust the
	// tail without scanning it.
	SkippedScan bool
	// TornBytes is how many trailing bytes of the tail segment were
	// discarded as a torn or corrupt suffix.
	TornBytes int64
	// TailRecords is how many records the tail scan validated.
	TailRecords int
}

// Log is one shard's append-only record log. Appends are serialized by the
// caller's single writer goroutine in the intended deployment, but every
// method is nonetheless safe for concurrent use (the interval syncer and
// metrics scrapes run concurrently with appends).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer // non-nil under interval/none: appends buffer, flush on sync
	size     int64         // bytes in the active segment
	segFirst uint64        // first LSN of the active segment
	nextLSN  uint64
	epoch    uint32
	dirty    bool // appended since the last fsync
	err      error
	closed   bool
	buf      []byte // append scratch, reused

	stopSync chan struct{}
	syncWG   sync.WaitGroup

	// Counters served as autopn_server_wal_* metrics.
	appends   atomic.Uint64
	fsyncs    atomic.Uint64
	bytes     atomic.Uint64
	errors    atomic.Uint64
	rotations atomic.Uint64
	lastLSN   atomic.Uint64
	segments  atomic.Int64
}

// segName renders the canonical segment file name for its first LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.seg", firstLSN)
}

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

type segInfo struct {
	name  string
	first uint64
}

// listSegments returns dir's segment files sorted by first LSN.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segInfo{name: e.Name(), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Open opens (creating if needed) the log in dir, detects and truncates a
// torn tail, and positions appends after the last valid record. A valid
// CLEAN marker from a graceful shutdown skips the tail scan entirely; the
// marker is consumed either way (it describes a tail that new appends
// would invalidate).
func Open(dir string, opts Options) (*Log, OpenStats, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	var st OpenStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, st, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, st, err
	}

	l := &Log{dir: dir, opts: opts, epoch: 1, nextLSN: 1, segFirst: 1}

	marker := readCleanMarker(dir)
	os.Remove(filepath.Join(dir, cleanMarkerName))

	if len(segs) > 0 {
		tail := segs[len(segs)-1]
		path := filepath.Join(dir, tail.name)
		if marker != nil && marker.Segment == tail.name {
			if fi, err := os.Stat(path); err == nil && fi.Size() == marker.Size && marker.LastLSN >= tail.first-1 {
				st.CleanShutdown = true
				st.SkippedScan = true
				st.LastLSN = marker.LastLSN
				st.MaxEpoch = marker.Epoch
				l.nextLSN = marker.LastLSN + 1
				l.segFirst = tail.first
				l.size = fi.Size()
			} else {
				marker = nil
			}
		} else {
			marker = nil
		}
		if marker == nil {
			scan, err := scanTail(path, tail.first)
			if err != nil {
				return nil, st, err
			}
			st.LastLSN = scan.lastLSN
			st.MaxEpoch = scan.maxEpoch
			st.TailRecords = scan.records
			st.CleanShutdown = scan.endedClean
			if scan.tornBytes > 0 {
				st.TornBytes = scan.tornBytes
				if err := os.Truncate(path, scan.validSize); err != nil {
					return nil, st, fmt.Errorf("wal: truncating torn tail: %w", err)
				}
			}
			l.nextLSN = scan.lastLSN + 1
			if scan.records == 0 {
				// Empty (or fully torn) tail: LSNs resume from the segment's
				// declared first LSN.
				l.nextLSN = tail.first
			}
			l.segFirst = tail.first
			l.size = scan.validSize
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, st, err
		}
		l.f = f
	} else {
		f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, st, err
		}
		l.f = f
		segs = []segInfo{{name: segName(1), first: 1}}
	}
	st.Segments = len(segs)
	l.segments.Store(int64(len(segs)))
	l.lastLSN.Store(l.nextLSN - 1)

	if opts.Policy != SyncBatch {
		// The interval/none policies already promise only a bounded loss
		// window, so appends buffer in user space and hit the kernel once
		// per flush (the interval tick, rotation, or close) instead of once
		// per batch record.
		l.bw = bufio.NewWriterSize(l.f, 64<<10)
	}
	if opts.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncWG.Add(1)
		go l.syncLoop()
	}
	return l, st, nil
}

// readCleanMarker parses dir's CLEAN file, nil when absent or malformed.
func readCleanMarker(dir string) *cleanMarker {
	b, err := os.ReadFile(filepath.Join(dir, cleanMarkerName))
	if err != nil {
		return nil
	}
	var m cleanMarker
	if json.Unmarshal(b, &m) != nil || m.Segment == "" {
		return nil
	}
	return &m
}

type tailScan struct {
	records    int
	lastLSN    uint64
	maxEpoch   uint32
	validSize  int64
	tornBytes  int64
	endedClean bool
}

// scanTail walks the tail segment record-by-record, validating framing,
// checksum and LSN continuity; everything after the first invalid byte is
// a torn suffix.
func scanTail(path string, firstLSN uint64) (tailScan, error) {
	var ts tailScan
	data, err := os.ReadFile(path)
	if err != nil {
		return ts, err
	}
	expect := firstLSN
	off := int64(0)
	for {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		if rec.lsn != expect {
			break
		}
		ts.records++
		ts.lastLSN = rec.lsn
		if rec.epoch > ts.maxEpoch {
			ts.maxEpoch = rec.epoch
		}
		ts.endedClean = rec.typ == recShutdown
		off += int64(n)
		expect++
	}
	ts.validSize = off
	ts.tornBytes = int64(len(data)) - off
	if ts.records == 0 {
		ts.lastLSN = firstLSN - 1
	}
	return ts, nil
}

// decoded is one parsed record.
type decoded struct {
	typ     uint8
	lsn     uint64
	epoch   uint32
	entries []Entry // recBatch only
}

// decodeRecord parses the record at the head of b, returning its framed
// size. ok is false for anything short, corrupt or nonsensical — the
// caller treats that byte offset as the end of the valid prefix.
func decodeRecord(b []byte) (decoded, int, bool) {
	var d decoded
	if len(b) < frameHeader {
		return d, 0, false
	}
	plen := binary.LittleEndian.Uint32(b)
	if plen < payloadHeader || plen > maxRecord {
		return d, 0, false
	}
	if uint64(len(b)) < frameHeader+uint64(plen) {
		return d, 0, false
	}
	payload := b[frameHeader : frameHeader+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return d, 0, false
	}
	d.typ = payload[0]
	d.lsn = binary.LittleEndian.Uint64(payload[1:])
	body := payload[payloadHeader:]
	switch d.typ {
	case recBatch:
		if len(body) < 8 {
			return d, 0, false
		}
		d.epoch = binary.LittleEndian.Uint32(body)
		count := binary.LittleEndian.Uint32(body[4:])
		if uint64(len(body)) != 8+uint64(count)*entrySize {
			return d, 0, false
		}
		d.entries = make([]Entry, count)
		for i := range d.entries {
			e := body[8+i*entrySize:]
			d.entries[i] = Entry{
				Op:  e[0],
				Key: binary.LittleEndian.Uint32(e[1:]),
				Val: binary.LittleEndian.Uint64(e[5:]),
				Ver: binary.LittleEndian.Uint64(e[13:]),
			}
		}
	case recShutdown:
		if len(body) != 12 {
			return d, 0, false
		}
		d.epoch = binary.LittleEndian.Uint32(body)
	default:
		return d, 0, false
	}
	return d, frameHeader + int(plen), true
}

// encodeRecord appends a framed record to buf and returns the result.
func encodeRecord(buf []byte, typ uint8, lsn uint64, body func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	pstart := len(buf)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = body(buf)
	payload := buf[pstart:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// SetEpoch sets the epoch stamped on subsequent batch records. Recovery
// calls it once, before traffic, with a value strictly greater than every
// epoch found on disk.
func (l *Log) SetEpoch(e uint32) {
	l.mu.Lock()
	l.epoch = e
	l.mu.Unlock()
}

// Epoch returns the epoch stamped on appended batches.
func (l *Log) Epoch() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// AppendBatch appends one batch record holding entries and, under
// SyncBatch, fsyncs before returning: when it returns nil the batch is as
// durable as the policy promises and its LSN is final. Errors are sticky —
// the first append or fsync failure poisons the log and every subsequent
// append returns the same error (the serving layer's breaker path; see
// docs/DURABILITY.md).
func (l *Log) AppendBatch(entries []Entry) (uint64, error) {
	if inj := l.opts.Injector; inj != nil {
		switch inj.Fire(chaos.PointWALAppend, "") {
		case chaos.ActAbort:
			err := errors.New("wal: chaos-injected append failure")
			l.poison(err)
			return 0, err
		case chaos.ActTorn:
			return 0, l.appendTorn(entries)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	l.buf = encodeRecord(l.buf[:0], recBatch, lsn, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, l.epoch)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
		for _, e := range entries {
			b = append(b, e.Op)
			b = binary.LittleEndian.AppendUint32(b, e.Key)
			b = binary.LittleEndian.AppendUint64(b, e.Val)
			b = binary.LittleEndian.AppendUint64(b, e.Ver)
		}
		return b
	})
	if err := l.writeLocked(l.buf); err != nil {
		return 0, err
	}
	l.nextLSN++
	l.lastLSN.Store(lsn)
	l.appends.Add(1)
	if l.opts.Policy == SyncBatch {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// appendTorn is the chaos ActTorn arm: write roughly half of the encoded
// record — the torn tail a crash mid-write leaves — and poison the log.
func (l *Log) appendTorn(entries []Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	l.buf = encodeRecord(l.buf[:0], recBatch, l.nextLSN, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, l.epoch)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
		for _, e := range entries {
			b = append(b, e.Op)
			b = binary.LittleEndian.AppendUint32(b, e.Key)
			b = binary.LittleEndian.AppendUint64(b, e.Val)
			b = binary.LittleEndian.AppendUint64(b, e.Ver)
		}
		return b
	})
	half := l.buf[:len(l.buf)/2]
	_ = l.flushLocked() // keep file order: buffered records precede the torn suffix
	if n, werr := l.f.Write(half); werr == nil {
		l.size += int64(n)
		l.bytes.Add(uint64(n))
	}
	err := errors.New("wal: chaos-injected torn write")
	l.err = err
	l.errors.Add(1)
	return err
}

// writeLocked writes a fully framed record, rotating first when the active
// segment is full. Callers hold l.mu.
func (l *Log) writeLocked(rec []byte) error {
	if l.size > 0 && l.size+int64(len(rec)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var n int
	var err error
	if l.bw != nil {
		n, err = l.bw.Write(rec)
	} else {
		n, err = l.f.Write(rec)
	}
	l.size += int64(n)
	l.bytes.Add(uint64(n))
	if err != nil {
		l.err = err
		l.errors.Add(1)
		return err
	}
	l.dirty = true
	return nil
}

// flushLocked drains the user-space buffer (a no-op under SyncBatch).
// Callers hold l.mu.
func (l *Log) flushLocked() error {
	if l.bw == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		l.err = err
		l.errors.Add(1)
		return err
	}
	return nil
}

// rotateLocked seals the active segment (flush + fsync + close) and starts
// a new one named for the next LSN.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		l.errors.Add(1)
		return err
	}
	if err := l.f.Close(); err != nil {
		l.err = err
		l.errors.Add(1)
		return err
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.nextLSN)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		l.err = err
		l.errors.Add(1)
		return err
	}
	l.f = f
	if l.bw != nil {
		l.bw.Reset(f)
	}
	l.size = 0
	l.segFirst = l.nextLSN
	l.dirty = false
	l.rotations.Add(1)
	l.segments.Add(1)
	return nil
}

// syncLocked flushes the buffer and fsyncs the active segment. Callers
// hold l.mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		l.errors.Add(1)
		return err
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// syncLoop is the SyncInterval timer goroutine.
func (l *Log) syncLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// poison records a sticky error without touching the file.
func (l *Log) poison(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errors.Add(1)
	l.mu.Unlock()
}

// Err returns the sticky error, nil while the log is healthy. The healthy
// case is lock-free — the serving layer checks it on every fire-and-forget
// append, and taking l.mu here would contend with the writer's append
// critical section. Every append-path error assignment advances the errors
// counter, so a zero counter proves a nil error (the one exception, a
// failed final close, is unreachable through Err: the shard stops
// submitting before Close).
func (l *Log) Err() error {
	if l.errors.Load() == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close closes the log without a clean-shutdown record (crash-equivalent:
// the next Open runs the torn-tail scan).
func (l *Log) Close() error {
	return l.close(false)
}

// CloseClean appends a shutdown record, fsyncs, and writes the CLEAN
// marker so the next Open can skip the tail scan. Used by graceful drain.
func (l *Log) CloseClean() error {
	return l.close(true)
}

func (l *Log) close(clean bool) error {
	if l.stopSync != nil {
		l.mu.Lock()
		stopped := l.closed
		l.mu.Unlock()
		if !stopped {
			close(l.stopSync)
			l.syncWG.Wait()
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	if clean && l.err == nil {
		lsn := l.nextLSN
		l.buf = encodeRecord(l.buf[:0], recShutdown, lsn, func(b []byte) []byte {
			b = binary.LittleEndian.AppendUint32(b, l.epoch)
			b = binary.LittleEndian.AppendUint64(b, uint64(time.Now().UnixNano()))
			return b
		})
		if err := l.writeLocked(l.buf); err == nil {
			l.nextLSN++
			l.lastLSN.Store(lsn)
			if err := l.syncLocked(); err == nil {
				writeCleanMarker(l.dir, cleanMarker{
					LastLSN: lsn,
					Segment: segName(l.segFirst),
					Size:    l.size,
					Epoch:   l.epoch,
				})
			}
		}
	}
	// A non-clean Close still drains the user-space buffer: appended
	// records keep their assigned LSNs, so silently dropping them here
	// would shrink the durability window below what the policy promised.
	_ = l.flushLocked()
	if err := l.f.Close(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// writeCleanMarker atomically publishes the CLEAN file (tmp + rename).
func writeCleanMarker(dir string, m cleanMarker) {
	b, err := json.Marshal(m)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, cleanMarkerName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	if os.Rename(tmp, filepath.Join(dir, cleanMarkerName)) == nil {
		syncDir(dir)
	}
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// TruncateTo deletes whole segments whose records all have LSN <= lsn —
// the snapshot-gated retention step. The active segment is never deleted.
// Returns how many segments were removed.
func (l *Log) TruncateTo(lsn uint64) (int, error) {
	l.mu.Lock()
	active := l.segFirst
	l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		// A segment's records end just before the next segment's first LSN.
		if segs[i].first == active || segs[i+1].first > lsn+1 {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
			return removed, err
		}
		removed++
		l.segments.Add(-1)
	}
	if removed > 0 {
		syncDir(l.dir)
	}
	return removed, nil
}

// Metrics accessors (bridged into the obs registry by the server).

// Appends returns the number of batch records appended.
func (l *Log) Appends() uint64 { return l.appends.Load() }

// Fsyncs returns the number of fsyncs issued.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Bytes returns the number of bytes written.
func (l *Log) Bytes() uint64 { return l.bytes.Load() }

// Errors returns the number of append/fsync errors observed.
func (l *Log) Errors() uint64 { return l.errors.Load() }

// Rotations returns the number of segment rotations.
func (l *Log) Rotations() uint64 { return l.rotations.Load() }

// Segments returns the current number of segment files.
func (l *Log) Segments() int64 { return l.segments.Load() }

// LastLSN returns the LSN of the last appended (or recovered) record.
func (l *Log) LastLSN() uint64 { return l.lastLSN.Load() }
