package monitor

import (
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a Clock whose time is advanced explicitly by the test; the
// live monitor's real ticker still drives polling, but every deadline
// comparison reads this virtual time, making watchdog tests deterministic.
type fakeClock struct {
	now atomic.Int64
}

func (c *fakeClock) Now() time.Duration      { return time.Duration(c.now.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.now.Add(int64(d)) }
func (c *fakeClock) set(d time.Duration)     { c.now.Store(int64(d)) }

func measureAsync(l *Live, p Policy) <-chan Measurement {
	out := make(chan Measurement, 1)
	go func() { out <- l.Measure(p) }()
	return out
}

// waitActive blocks until l has an active window, so tests can advance the
// fake clock without racing Measure's startup (the window's start time is
// read from the clock before the window becomes active).
func waitActive(t *testing.T, l *Live) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		active := l.active != nil
		l.mu.Unlock()
		if active {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("window never became active")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWatchdogTripsStalledWindow: a policy with no deadline of its own
// would stall forever; the watchdog ends it at its budget and marks the
// measurement.
func TestWatchdogTripsStalledWindow(t *testing.T) {
	clock := &fakeClock{}
	live := NewLive(clock)
	live.PollInterval = 100 * time.Microsecond

	var tripped atomic.Int64
	var elapsed atomic.Int64
	live.SetWatchdog(&Watchdog{
		Budget: func() time.Duration { return 100 * time.Millisecond },
		OnTrip: func(e time.Duration) { tripped.Add(1); elapsed.Store(int64(e)) },
	})

	// CVPolicy with no GapTimeout and no MaxWindow: no deadline at all.
	done := measureAsync(live, NewCVPolicy())
	waitActive(t, live)

	// Just under budget: the window must still be running.
	clock.set(99 * time.Millisecond)
	select {
	case m := <-done:
		t.Fatalf("window ended before budget: %+v", m)
	case <-time.After(10 * time.Millisecond):
	}

	clock.set(130 * time.Millisecond)
	select {
	case m := <-done:
		if !m.WatchdogTripped {
			t.Error("WatchdogTripped not set")
		}
		if !m.TimedOut {
			t.Error("a watchdog-ended window must also be TimedOut")
		}
		if m.Commits != 0 {
			t.Errorf("Commits = %d, want 0", m.Commits)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never tripped")
	}
	if tripped.Load() != 1 {
		t.Errorf("OnTrip calls = %d, want 1", tripped.Load())
	}
	if e := time.Duration(elapsed.Load()); e < 100*time.Millisecond {
		t.Errorf("OnTrip elapsed = %v, want >= budget", e)
	}
}

// TestWatchdogOutranksTrickleCommits: commits arriving just inside the gap
// timeout keep the policy deadline forever in the future — exactly the
// pathology the watchdog exists for.
func TestWatchdogOutranksTrickleCommits(t *testing.T) {
	clock := &fakeClock{}
	live := NewLive(clock)
	live.PollInterval = 100 * time.Microsecond
	live.SetWatchdog(&Watchdog{
		Budget: func() time.Duration { return 200 * time.Millisecond },
	})

	// Gap timeout 50ms; commits every 40ms reset it indefinitely. The CV of
	// an irregular trickle stays high, so the accuracy criterion never ends
	// the window either.
	pol := &CVPolicy{CVThreshold: 0.0001, MinCommits: 3, GapTimeout: 50 * time.Millisecond}
	done := measureAsync(live, pol)
	waitActive(t, live)

	// Irregular arrival times whose gaps all stay under the 50ms timeout;
	// the jitter keeps the CV of the throughput estimates high.
	for i, at := range []time.Duration{40, 75, 120, 158} {
		clock.set(at * time.Millisecond)
		live.OnCommit()
		select {
		case m := <-done:
			t.Fatalf("window ended at trickle commit %d: %+v", i+1, m)
		default:
		}
	}

	clock.set(210 * time.Millisecond)
	select {
	case m := <-done:
		if !m.WatchdogTripped {
			t.Error("WatchdogTripped not set")
		}
		if m.Commits != 4 {
			t.Errorf("Commits = %d, want 4", m.Commits)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never tripped despite trickle commits")
	}
}

// TestWatchdogDisarmedByZeroBudget: a non-positive budget leaves the policy
// deadline in charge and the measurement unmarked.
func TestWatchdogDisarmedByZeroBudget(t *testing.T) {
	clock := &fakeClock{}
	live := NewLive(clock)
	live.PollInterval = 100 * time.Microsecond
	live.SetWatchdog(&Watchdog{
		Budget: func() time.Duration { return 0 },
		OnTrip: func(time.Duration) { t.Error("OnTrip called with zero budget") },
	})

	pol := &CVPolicy{CVThreshold: 0.10, MinCommits: 5, MaxWindow: 30 * time.Millisecond}
	done := measureAsync(live, pol)
	waitActive(t, live)
	clock.set(40 * time.Millisecond)
	select {
	case m := <-done:
		if m.WatchdogTripped {
			t.Error("WatchdogTripped set with zero budget")
		}
		if !m.TimedOut {
			t.Error("expected MaxWindow timeout")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("window never ended")
	}
}

// TestWatchdogBudgetReadOncePerWindow: the budget function is consulted
// exactly once, at window start.
func TestWatchdogBudgetReadOncePerWindow(t *testing.T) {
	clock := &fakeClock{}
	live := NewLive(clock)
	live.PollInterval = 100 * time.Microsecond
	var calls atomic.Int64
	live.SetWatchdog(&Watchdog{
		Budget: func() time.Duration { calls.Add(1); return 20 * time.Millisecond },
	})

	done := measureAsync(live, NewCVPolicy())
	waitActive(t, live)
	clock.set(25 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never tripped")
	}
	if calls.Load() != 1 {
		t.Errorf("Budget evaluated %d times, want 1", calls.Load())
	}
}
