package monitor

import (
	"sync"
	"time"
)

// Live connects a Policy to a real, running STM: install Live.OnCommit as
// the STM's commit hook and call Measure to run one monitoring window.
// Deadlines are enforced by polling the clock at PollInterval, which only
// matters for live (wall-clock) runs; the simulator drives policies
// directly and does not use Live.
type Live struct {
	// PollInterval bounds how late a deadline can fire (default 1ms).
	PollInterval time.Duration

	clock       Clock
	metrics     *liveMetrics  // set by Instrument; nil = no metrics
	abortSource func() uint64 // set by SetAbortSource; nil = no abort counts
	watchdog    *Watchdog     // set by SetWatchdog; nil = no watchdog

	mu     sync.Mutex
	active *liveWindow
}

// Watchdog is the live monitor's last line of defense against measurement
// windows that defeat the policy's own deadlines: configurations that
// trickle just enough commits to keep resetting a gap timeout, or whose
// throughput jitters forever below the CV threshold. When a window runs
// longer than Budget() the watchdog force-ends it, marks the Measurement
// WatchdogTripped, and invokes OnTrip.
type Watchdog struct {
	// Budget returns the maximum window duration, evaluated once at window
	// start. The tuner derives it as a multiple of the adaptive gap timeout
	// 1/T(1,1); a non-positive return disarms the watchdog for that window
	// (e.g. before T(1,1) is known).
	Budget func() time.Duration
	// OnTrip, if non-nil, is called (outside the monitor's lock) with the
	// window's elapsed duration each time the watchdog fires.
	OnTrip func(elapsed time.Duration)
}

// SetWatchdog installs a window watchdog. Like the rest of the monitor's
// configuration it must not be swapped while a window is active.
func (l *Live) SetWatchdog(w *Watchdog) { l.watchdog = w }

type liveWindow struct {
	policy Policy
	done   chan Measurement
}

// NewLive returns a live monitor reading the given clock.
func NewLive(clock Clock) *Live {
	return &Live{clock: clock, PollInterval: time.Millisecond}
}

// SetAbortSource installs a cumulative abort counter (typically the STM's
// Stats total); Measure snapshots it around each window and reports the
// delta as Measurement.Aborts. Like the rest of the monitor's
// configuration it must not be swapped while a window is active.
func (l *Live) SetAbortSource(src func() uint64) { l.abortSource = src }

// OnCommit records one top-level commit. It is safe for concurrent use and
// cheap when no window is active; install it via stm.Options.CommitHook.
func (l *Live) OnCommit() {
	l.mu.Lock()
	w := l.active
	if w == nil {
		l.mu.Unlock()
		return
	}
	now := l.clock.Now()
	if w.policy.OnCommit(now) {
		l.active = nil
		l.mu.Unlock()
		w.done <- w.policy.Result(now, false)
		return
	}
	l.mu.Unlock()
}

// Measure runs one monitoring window under the given policy and blocks
// until it completes (by accuracy criterion or deadline). Only one window
// may be active at a time; concurrent Measure calls are serialized by the
// caller's protocol (the tuner measures sequentially).
func (l *Live) Measure(policy Policy) Measurement {
	var aborts0 uint64
	if l.abortSource != nil {
		aborts0 = l.abortSource()
	}
	m := l.measure(policy)
	if l.abortSource != nil {
		m.Aborts = l.abortSource() - aborts0
	}
	if l.metrics != nil {
		l.metrics.observe(m)
	}
	return m
}

// measure is Measure without the instrumentation wrapper.
func (l *Live) measure(policy Policy) Measurement {
	start := l.clock.Now()
	policy.Begin(start)
	// The watchdog budget is evaluated once per window, at window start, so
	// a budget change mid-window (e.g. T(1,1) being re-measured) never
	// retroactively shortens an in-flight window.
	var budget time.Duration
	if l.watchdog != nil && l.watchdog.Budget != nil {
		budget = l.watchdog.Budget()
	}
	w := &liveWindow{policy: policy, done: make(chan Measurement, 1)}

	l.mu.Lock()
	if l.active != nil {
		l.mu.Unlock()
		panic("monitor: concurrent Measure calls")
	}
	l.active = w
	l.mu.Unlock()

	poll := l.PollInterval
	if poll <= 0 {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case m := <-w.done:
			return m
		case <-ticker.C:
			l.mu.Lock()
			if l.active != w {
				// The window completed concurrently; its result is in done.
				l.mu.Unlock()
				return <-w.done
			}
			now := l.clock.Now()
			// The watchdog outranks the policy deadline: a window that ran
			// past its budget ends now even if the policy would grant it
			// more time (e.g. a gap timeout kept alive by trickling
			// commits).
			if budget > 0 && now-start >= budget {
				l.active = nil
				m := w.policy.Result(now, true)
				m.WatchdogTripped = true
				l.mu.Unlock()
				if l.watchdog.OnTrip != nil {
					l.watchdog.OnTrip(now - start)
				}
				return m
			}
			if dl, ok := w.policy.Deadline(); ok && now >= dl {
				l.active = nil
				m := w.policy.Result(now, true)
				l.mu.Unlock()
				return m
			}
			l.mu.Unlock()
		}
	}
}
