package monitor

import (
	"testing"
	"time"
)

// feed drives a policy with commits at the given absolute times, returning
// after the first commit the policy declares completion on (-1 if never).
func feed(p Policy, start time.Duration, commits []time.Duration) int {
	p.Begin(start)
	for i, ts := range commits {
		if p.OnCommit(ts) {
			return i
		}
	}
	return -1
}

// regular returns n commit timestamps with equal spacing.
func regular(start, spacing time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = start + time.Duration(i+1)*spacing
	}
	return out
}

func TestCVPolicyStabilizesOnRegularStream(t *testing.T) {
	p := NewCVPolicy()
	done := feed(p, 0, regular(0, 10*time.Millisecond, 500))
	if done < 0 {
		t.Fatal("CV policy never completed on a perfectly regular stream")
	}
	if done+1 < p.MinCommits {
		t.Fatalf("completed after %d commits, below MinCommits %d", done+1, p.MinCommits)
	}
	m := p.Result(time.Duration(done+1)*10*time.Millisecond, false)
	want := 100.0 // 1 commit / 10ms
	if m.Throughput < want*0.9 || m.Throughput > want*1.1 {
		t.Fatalf("throughput = %v, want ~%v", m.Throughput, want)
	}
	if m.CV > p.CVThreshold {
		t.Fatalf("final CV %v above threshold", m.CV)
	}
}

func TestCVPolicyNeedsMoreCommitsWhenIrregular(t *testing.T) {
	// A stream whose inter-commit gaps alternate wildly keeps the running
	// throughput estimates dispersed, so stabilization takes longer than
	// for the regular stream.
	reg := NewCVPolicy()
	regDone := feed(reg, 0, regular(0, 10*time.Millisecond, 1000))

	irr := NewCVPolicy()
	var ts []time.Duration
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			now += 2 * time.Millisecond
		} else {
			now += 40 * time.Millisecond
		}
		ts = append(ts, now)
	}
	irrDone := feed(irr, 0, ts)
	if irrDone >= 0 && regDone >= 0 && irrDone <= regDone {
		t.Fatalf("irregular stream stabilized after %d commits, regular after %d", irrDone+1, regDone+1)
	}
}

func TestCVPolicyGapTimeoutDeadline(t *testing.T) {
	p := NewCVPolicy()
	p.GapTimeout = 100 * time.Millisecond
	p.Begin(1 * time.Second)
	dl, ok := p.Deadline()
	if !ok || dl != 1100*time.Millisecond {
		t.Fatalf("initial deadline = (%v,%v)", dl, ok)
	}
	p.OnCommit(1050 * time.Millisecond)
	if dl, _ := p.Deadline(); dl != 1150*time.Millisecond {
		t.Fatalf("deadline after commit = %v, want 1.15s", dl)
	}
}

func TestCVPolicyMaxWindowDominatesWhenEarlier(t *testing.T) {
	p := NewCVPolicy()
	p.GapTimeout = time.Hour
	p.MaxWindow = time.Second
	p.Begin(0)
	dl, ok := p.Deadline()
	if !ok || dl != time.Second {
		t.Fatalf("deadline = (%v,%v), want (1s,true)", dl, ok)
	}
}

func TestFixedTimePolicy(t *testing.T) {
	p := &FixedTimePolicy{Window: 500 * time.Millisecond}
	p.Begin(0)
	if dl, ok := p.Deadline(); !ok || dl != 500*time.Millisecond {
		t.Fatalf("deadline = (%v,%v)", dl, ok)
	}
	if p.OnCommit(100 * time.Millisecond) {
		t.Fatal("completed before the window elapsed")
	}
	if !p.OnCommit(500 * time.Millisecond) {
		t.Fatal("did not complete at the window boundary")
	}
	m := p.Result(500*time.Millisecond, false)
	if m.Commits != 2 || m.Throughput != 4 {
		t.Fatalf("measurement = %+v", m)
	}
}

func TestFixedCommitsPolicy(t *testing.T) {
	p := &FixedCommitsPolicy{Commits: 3}
	p.Begin(0)
	if _, ok := p.Deadline(); ok {
		t.Fatal("WNOC must have no deadline")
	}
	done := feed(p, 0, regular(0, time.Millisecond, 10))
	if done != 2 {
		t.Fatalf("completed at commit %d, want 2 (the 3rd)", done)
	}
	// WPNOC variant: gap timeout produces a deadline.
	p2 := &FixedCommitsPolicy{Commits: 3, GapTimeout: 50 * time.Millisecond}
	p2.Begin(time.Second)
	if dl, ok := p2.Deadline(); !ok || dl != 1050*time.Millisecond {
		t.Fatalf("WPNOC deadline = (%v,%v)", dl, ok)
	}
}

func TestResultTimedOutZeroCommits(t *testing.T) {
	p := NewCVPolicy()
	p.GapTimeout = 10 * time.Millisecond
	p.Begin(0)
	m := p.Result(10*time.Millisecond, true)
	if !m.TimedOut || m.Commits != 0 || m.Throughput != 0 {
		t.Fatalf("timed-out empty window measurement = %+v", m)
	}
}

func TestAdaptiveGapFromSequential(t *testing.T) {
	if got := AdaptiveGapFromSequential(100, time.Minute); got != 10*time.Millisecond {
		t.Fatalf("1/T(1,1) for 100/s = %v, want 10ms", got)
	}
	if got := AdaptiveGapFromSequential(0, time.Minute); got != time.Minute {
		t.Fatalf("fallback = %v", got)
	}
}

func TestLiveMonitorMeasuresRealStream(t *testing.T) {
	clock := NewWallClock()
	live := NewLive(clock)
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				live.OnCommit()
			}
		}
	}()
	defer close(stop)

	p := NewCVPolicy()
	p.CVThreshold = 0.3
	p.MaxWindow = 2 * time.Second
	m := live.Measure(p)
	if m.Commits < p.MinCommits && !m.TimedOut {
		t.Fatalf("measurement = %+v", m)
	}
	if m.Throughput <= 0 {
		t.Fatalf("throughput = %v", m.Throughput)
	}
}

func TestLiveMonitorDeadlineFiresWithoutCommits(t *testing.T) {
	live := NewLive(NewWallClock())
	p := NewCVPolicy()
	p.MaxWindow = 30 * time.Millisecond
	start := time.Now()
	m := live.Measure(p)
	if !m.TimedOut {
		t.Fatal("expected timeout with no commits")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}
