// Package monitor implements AutoPN's KPI monitor (§VI of the paper): it
// turns the stream of top-level commit events of a PN-STM into throughput
// measurements, deciding when a measurement window has become accurate
// enough to report.
//
// The paper's adaptive policy combines two mechanisms:
//
//  1. CV-based stability: the throughput estimate T(i) = i / time(i) is
//     recomputed on every commit, and the window ends once the coefficient
//     of variation of the T(i) sequence drops below a threshold (10% is
//     the robust default for PN-TM);
//  2. an adaptive timeout of 1/T(1,1) — the mean inter-commit time of the
//     sequential configuration — after which a window ends even without a
//     stable (or any) commit, so that pathologically bad configurations
//     cannot stall the tuning process.
//
// The static policies the paper compares against (fixed wall-clock windows
// and fixed commit counts, §VII-D) are provided as well.
//
// All policies are passive state machines driven by Begin/OnCommit/
// Deadline, so they work identically under the real-time clock (live runs)
// and the virtual clock of the discrete-event simulator.
package monitor

import (
	"time"

	"autopn/internal/stats"
)

// Clock supplies monotonic elapsed time since an arbitrary epoch. The
// simulator provides a virtual implementation; live runs use WallClock.
type Clock interface {
	Now() time.Duration
}

// WallClock is a Clock reading the host's monotonic clock.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a wall clock with its epoch at the call time.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() time.Duration { return time.Since(w.start) }

// Measurement is the outcome of one monitoring window.
type Measurement struct {
	// Throughput in committed top-level transactions per second.
	Throughput float64
	// Commits observed during the window.
	Commits int
	// Elapsed duration of the window.
	Elapsed time.Duration
	// TimedOut reports that the window was ended by a timeout rather than
	// by the policy's accuracy criterion.
	TimedOut bool
	// CV is the final coefficient of variation of the running throughput
	// estimates (0 when fewer than two commits were seen).
	CV float64
	// Aborts is the number of STM aborts observed during the window (0
	// unless an abort source is installed via Live.SetAbortSource). Together
	// with Throughput it tells wasted work from useful work, which is what
	// distinguishes a low-throughput configuration that is starved from one
	// that is thrashing on conflicts.
	Aborts uint64
	// WatchdogTripped reports that the window was force-ended by the live
	// monitor's watchdog (see Live.SetWatchdog) because it ran past its
	// budget without the policy ending it. A tripped window is also marked
	// TimedOut; the distinction matters to the tuner, which treats watchdog
	// trips as evidence of a pathological configuration rather than an
	// ordinary adaptive timeout.
	WatchdogTripped bool
}

// Policy decides when a measurement window is complete. Implementations
// are not safe for concurrent use; the driver must serialize calls.
type Policy interface {
	// Begin starts a new window at the given time.
	Begin(now time.Duration)
	// OnCommit records a commit at the given time and reports whether the
	// window is complete.
	OnCommit(now time.Duration) bool
	// Touch notes that a commit event was witnessed without sampling it —
	// used for transactions admitted under a previous configuration that
	// drain during the window. Touch keeps gap-based timeouts from firing
	// (the system is demonstrably live) while keeping the throughput
	// estimate attributed to the configuration under measurement.
	Touch(now time.Duration)
	// Deadline returns the absolute time at which the window must be
	// force-ended if no further commit arrives, and whether such a
	// deadline exists.
	Deadline() (time.Duration, bool)
	// Result summarizes the window as of now. timedOut marks deadline-
	// triggered completion.
	Result(now time.Duration, timedOut bool) Measurement
}

// windowCore holds the bookkeeping shared by all policies.
type windowCore struct {
	start      time.Duration
	lastCommit time.Duration
	commits    int
	tput       stats.Summary
}

func (w *windowCore) begin(now time.Duration) {
	w.start = now
	w.lastCommit = now
	w.commits = 0
	w.tput.Reset()
}

func (w *windowCore) touch(now time.Duration) {
	w.lastCommit = now
}

func (w *windowCore) onCommit(now time.Duration) {
	w.commits++
	w.lastCommit = now
	if elapsed := now - w.start; elapsed > 0 {
		w.tput.Add(float64(w.commits) / elapsed.Seconds())
	}
}

func (w *windowCore) result(now time.Duration, timedOut bool) Measurement {
	elapsed := now - w.start
	m := Measurement{
		Commits:  w.commits,
		Elapsed:  elapsed,
		TimedOut: timedOut,
		CV:       w.tput.CV(),
	}
	if elapsed > 0 {
		m.Throughput = float64(w.commits) / elapsed.Seconds()
	}
	return m
}

// CVPolicy is the paper's adaptive policy: the window ends when the CV of
// the running throughput estimates falls below CVThreshold (after at least
// MinCommits commits), or when GapTimeout elapses without a commit, or when
// the window exceeds MaxWindow (a safety bound for configurations whose
// throughput never stabilizes).
type CVPolicy struct {
	// CVThreshold is the stability criterion; the paper finds 10% (0.10)
	// robust for PN-TM systems.
	CVThreshold float64
	// MinCommits is the minimum number of commits before CV is trusted.
	MinCommits int
	// GapTimeout ends the window if no commit arrives for this long; the
	// tuner sets it adaptively to 1/T(1,1). Zero disables it.
	GapTimeout time.Duration
	// MaxWindow bounds the total window duration. Zero disables it.
	MaxWindow time.Duration

	core windowCore
}

// NewCVPolicy returns a CVPolicy with the paper's defaults: CV 10%,
// at least 5 commits, no timeouts (set GapTimeout once T(1,1) is known).
func NewCVPolicy() *CVPolicy {
	return &CVPolicy{CVThreshold: 0.10, MinCommits: 5}
}

// Begin implements Policy.
func (p *CVPolicy) Begin(now time.Duration) { p.core.begin(now) }

// OnCommit implements Policy.
func (p *CVPolicy) OnCommit(now time.Duration) bool {
	p.core.onCommit(now)
	if p.core.commits < p.MinCommits || p.core.tput.N() < 2 {
		return false
	}
	return p.core.tput.CV() <= p.CVThreshold
}

// Touch implements Policy.
func (p *CVPolicy) Touch(now time.Duration) { p.core.touch(now) }

// Deadline implements Policy.
func (p *CVPolicy) Deadline() (time.Duration, bool) {
	var d time.Duration
	ok := false
	if p.GapTimeout > 0 {
		d = p.core.lastCommit + p.GapTimeout
		ok = true
	}
	if p.MaxWindow > 0 {
		if end := p.core.start + p.MaxWindow; !ok || end < d {
			d = end
			ok = true
		}
	}
	return d, ok
}

// Result implements Policy.
func (p *CVPolicy) Result(now time.Duration, timedOut bool) Measurement {
	return p.core.result(now, timedOut)
}

// FixedTimePolicy measures for a statically configured duration (the
// baseline of Fig. 7a/7b).
type FixedTimePolicy struct {
	Window time.Duration
	core   windowCore
}

// Begin implements Policy.
func (p *FixedTimePolicy) Begin(now time.Duration) { p.core.begin(now) }

// OnCommit implements Policy.
func (p *FixedTimePolicy) OnCommit(now time.Duration) bool {
	p.core.onCommit(now)
	return now-p.core.start >= p.Window
}

// Touch implements Policy.
func (p *FixedTimePolicy) Touch(now time.Duration) { p.core.touch(now) }

// Deadline implements Policy.
func (p *FixedTimePolicy) Deadline() (time.Duration, bool) {
	return p.core.start + p.Window, true
}

// Result implements Policy.
func (p *FixedTimePolicy) Result(now time.Duration, timedOut bool) Measurement {
	return p.core.result(now, timedOut)
}

// FixedCommitsPolicy waits for a fixed number of commits (the WNOC
// baselines of Fig. 7c). GapTimeout, if non-zero, adds the paper's adaptive
// timeout on top (the WPNOC variants); without it a starving configuration
// can stall the window indefinitely, which is exactly the weakness the
// paper demonstrates.
type FixedCommitsPolicy struct {
	Commits    int
	GapTimeout time.Duration
	core       windowCore
}

// Begin implements Policy.
func (p *FixedCommitsPolicy) Begin(now time.Duration) { p.core.begin(now) }

// OnCommit implements Policy.
func (p *FixedCommitsPolicy) OnCommit(now time.Duration) bool {
	p.core.onCommit(now)
	return p.core.commits >= p.Commits
}

// Touch implements Policy.
func (p *FixedCommitsPolicy) Touch(now time.Duration) { p.core.touch(now) }

// Deadline implements Policy.
func (p *FixedCommitsPolicy) Deadline() (time.Duration, bool) {
	if p.GapTimeout <= 0 {
		return 0, false
	}
	return p.core.lastCommit + p.GapTimeout, true
}

// Result implements Policy.
func (p *FixedCommitsPolicy) Result(now time.Duration, timedOut bool) Measurement {
	return p.core.result(now, timedOut)
}

// AdaptiveGapFromSequential converts the measured throughput of the (1,1)
// configuration into the paper's adaptive timeout 1/T(1,1): the mean time
// between commits of the sequential configuration. A non-positive
// throughput yields the provided fallback.
func AdaptiveGapFromSequential(t11Throughput float64, fallback time.Duration) time.Duration {
	if t11Throughput <= 0 {
		return fallback
	}
	return time.Duration(float64(time.Second) / t11Throughput)
}
