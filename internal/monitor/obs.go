package monitor

import "autopn/internal/obs"

// liveMetrics is the monitor's view into the metrics registry: per-window
// counters and sliding-window summaries of the quantities the paper's
// adaptive policy is built on (window length, final CV, throughput).
type liveMetrics struct {
	windows    *obs.Counter
	timeouts   *obs.Counter
	watchdog   *obs.Counter
	cv         *obs.Histogram
	seconds    *obs.Histogram
	throughput *obs.Histogram
	commits    *obs.Histogram
	aborts     *obs.Histogram
}

// Instrument registers the monitor's window metrics with r and makes every
// subsequent Measure report its outcome there:
//
//	autopn_monitor_windows_total           completed measurement windows
//	autopn_monitor_window_timeouts_total   windows ended by the adaptive timeout
//	autopn_watchdog_trips_total            windows force-ended by the watchdog
//	autopn_monitor_window_cv               final CV of the running throughput estimates (summary)
//	autopn_monitor_window_seconds          window length in seconds (summary)
//	autopn_monitor_window_throughput       window throughput in commits/s (summary)
//	autopn_monitor_window_commits          commits sampled per window (summary)
//	autopn_monitor_window_aborts           STM aborts per window (summary; needs SetAbortSource)
//
// Call it before the first Measure; like the rest of the monitor's
// configuration it must not be swapped while a window is active.
func (l *Live) Instrument(r *obs.Registry) {
	l.metrics = &liveMetrics{
		windows:    r.Counter("autopn_monitor_windows_total"),
		timeouts:   r.Counter("autopn_monitor_window_timeouts_total"),
		watchdog:   r.Counter("autopn_watchdog_trips_total"),
		cv:         r.Histogram("autopn_monitor_window_cv"),
		seconds:    r.Histogram("autopn_monitor_window_seconds"),
		throughput: r.Histogram("autopn_monitor_window_throughput"),
		commits:    r.Histogram("autopn_monitor_window_commits"),
		aborts:     r.Histogram("autopn_monitor_window_aborts"),
	}
}

// observe reports one completed window.
func (m *liveMetrics) observe(meas Measurement) {
	m.windows.Inc()
	if meas.TimedOut {
		m.timeouts.Inc()
	}
	if meas.WatchdogTripped {
		m.watchdog.Inc()
	}
	m.cv.Observe(meas.CV)
	m.seconds.Observe(meas.Elapsed.Seconds())
	m.throughput.Observe(meas.Throughput)
	m.commits.Observe(float64(meas.Commits))
	m.aborts.Observe(float64(meas.Aborts))
}
