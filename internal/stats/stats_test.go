package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided on first output")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("two splits produced identical first outputs")
	}
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < n/10*8/10 || c > n/10*12/10 {
			t.Errorf("digit %d count %d deviates >20%% from uniform", d, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(r.NormFloat64())
	}
	if m := s.Mean(); math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if sd := s.StdDev(); sd < 0.97 || sd > 1.03 {
		t.Errorf("normal stddev = %v, want ~1", sd)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(r.ExpFloat64())
	}
	if m := s.Mean(); m < 0.97 || m > 1.03 {
		t.Errorf("exponential mean = %v, want ~1", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSummaryAgainstDirectFormulas(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		wantMean := Mean(xs)
		wantSD := StdDev(xs)
		tol := 1e-6 * (1 + math.Abs(wantMean) + wantSD)
		return math.Abs(s.Mean()-wantMean) < tol && math.Abs(s.StdDev()-wantSD) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, all Summary
		for _, x := range a {
			sa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			sb.Add(x)
			all.Add(x)
		}
		sa.Merge(&sb)
		if sa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()) + all.StdDev())
		return math.Abs(sa.Mean()-all.Mean()) < tol &&
			math.Abs(sa.StdDev()-all.StdDev()) < tol &&
			sa.Min() == all.Min() && sa.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCV(t *testing.T) {
	var s Summary
	for _, x := range []float64{10, 10, 10} {
		s.Add(x)
	}
	if cv := s.CV(); cv != 0 {
		t.Errorf("constant CV = %v, want 0", cv)
	}
	s.Reset()
	for _, x := range []float64{9, 10, 11} {
		s.Add(x)
	}
	if cv := s.CV(); math.Abs(cv-0.1) > 0.001 {
		t.Errorf("CV = %v, want ~0.1", cv)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {90, 9.1}, {25, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
	// Must not mutate the input.
	xs2 := []float64{3, 1, 2}
	Percentile(xs2, 50)
	if xs2[0] != 3 || xs2[1] != 1 || xs2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestNormCDFAndPDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5}, {1.6448536, 0.95}, {-1.6448536, 0.05}, {2.3263479, 0.99},
	}
	for _, c := range cases {
		if got := NormCDF(c.z); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
	if got := NormPDF(0); math.Abs(got-0.3989423) > 1e-6 {
		t.Errorf("NormPDF(0) = %v", got)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// EI is 0 when the prediction is certain and below the incumbent.
	if ei := ExpectedImprovement(5, 0, 10); ei != 0 {
		t.Errorf("certain below: EI = %v", ei)
	}
	// EI equals the margin when certain and above.
	if ei := ExpectedImprovement(15, 0, 10); ei != 5 {
		t.Errorf("certain above: EI = %v", ei)
	}
	// EI grows with uncertainty at equal mean.
	lo := ExpectedImprovement(10, 1, 10)
	hi := ExpectedImprovement(10, 5, 10)
	if !(hi > lo && lo > 0) {
		t.Errorf("EI not increasing in sigma: %v vs %v", lo, hi)
	}
	// At mean == best, EI = sigma * phi(0).
	want := 2 * NormPDF(0)
	if got := ExpectedImprovement(10, 2, 10); math.Abs(got-want) > 1e-9 {
		t.Errorf("EI at z=0: got %v want %v", got, want)
	}
	// EI is monotone in the mean.
	if ExpectedImprovement(12, 1, 10) <= ExpectedImprovement(8, 1, 10) {
		t.Error("EI not monotone in mean")
	}
	// Never negative.
	f := func(mu, sigma, best float64) bool {
		if math.IsNaN(mu) || math.IsNaN(sigma) || math.IsNaN(best) ||
			math.Abs(mu) > 1e12 || math.Abs(sigma) > 1e12 || math.Abs(best) > 1e12 {
			return true
		}
		return ExpectedImprovement(mu, math.Abs(sigma), best) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCUSUMDetectsShiftIgnoresNoise(t *testing.T) {
	rng := NewRNG(24)
	// Drift k=1 targets shifts of >= 2 sigma; with a 50-sample
	// calibration the in-control false-positive rate is negligible.
	det := NewCUSUM(5, 1, 50)
	// Calibration + stable phase: no detection on pure noise.
	for i := 0; i < 300; i++ {
		if det.Observe(100 + rng.NormFloat64()) {
			t.Fatalf("false positive at stable observation %d", i)
		}
	}
	// A 3-sigma sustained shift must be detected quickly.
	detected := -1
	for i := 0; i < 50; i++ {
		if det.Observe(103 + rng.NormFloat64()) {
			detected = i
			break
		}
	}
	if detected < 0 {
		t.Fatal("3-sigma shift never detected")
	}
	if detected > 20 {
		t.Errorf("detection took %d observations, want <= 20", detected)
	}
	// Reset re-arms calibration.
	det.Reset()
	if det.Calibrated() {
		t.Error("still calibrated after Reset")
	}
}

func TestCUSUMSingleOutlierTolerated(t *testing.T) {
	rng := NewRNG(29)
	det := NewCUSUM(5, 1, 50)
	for i := 0; i < 100; i++ {
		det.Observe(50 + rng.NormFloat64())
	}
	if det.Observe(54) { // single 4-sigma outlier: below the h=5 interval
		t.Fatal("single outlier triggered detection")
	}
	for i := 0; i < 30; i++ {
		if det.Observe(50+rng.NormFloat64()) && i < 3 {
			t.Fatal("detection shortly after an absorbed outlier")
		}
	}
}
