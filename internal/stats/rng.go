// Package stats provides the small statistical toolbox used across the
// autopn repository: deterministic random number generation, streaming
// summaries (mean/variance/CV), percentiles, the standard normal
// distribution, and a CUSUM change detector.
//
// Everything in this package is allocation-light and safe to use on hot
// paths of the simulator and the optimizer. None of the types are safe for
// concurrent use unless explicitly stated; callers own the synchronization.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. It is used everywhere randomness is needed so that every
// experiment in the repository is reproducible from a seed.
//
// splitmix64 passes BigCrush and has a full 2^64 period over its state
// increments; it is also trivially splittable, which the experiment harness
// uses to derive independent per-repetition streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r.
// The derived stream depends only on r's current state, so splitting at a
// fixed point in a deterministic program yields a deterministic stream.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next value of the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normally distributed value using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
