package stats

import "math"

// CUSUM is a two-sided cumulative-sum change detector (Page, 1954). It
// watches a stream of observations and signals when the stream's mean has
// shifted by more than Drift standard deviations from the reference mean,
// accumulating evidence across observations so that small sustained shifts
// are detected while isolated outliers are ignored.
//
// The paper's §V "Dynamic workloads" proposes exactly this mechanism to
// re-trigger the self-tuning process when the workload changes; autopn wires
// a CUSUM over the per-window throughput stream.
//
// Usage: construct with NewCUSUM, feed a calibration phase via Observe while
// Calibrated() is false (the detector estimates the reference mean and
// standard deviation from the first CalibrationN samples), after which
// Observe returns true when a change is detected. Reset re-arms the
// detector and starts a fresh calibration.
type CUSUM struct {
	// Threshold is the decision interval h, in units of reference standard
	// deviations. Typical values are 4-5.
	Threshold float64
	// Drift is the allowable slack k, in units of reference standard
	// deviations; shifts smaller than Drift are tolerated. Typical 0.5.
	Drift float64
	// CalibrationN is the number of initial samples used to estimate the
	// reference mean and deviation.
	CalibrationN int

	calib Summary
	mu    float64
	sigma float64
	ready bool

	hi float64
	lo float64
}

// NewCUSUM returns a detector with the given decision interval (threshold),
// slack (drift) and calibration length. Non-positive arguments fall back to
// the conventional defaults h=5, k=0.5, n=20.
func NewCUSUM(threshold, drift float64, calibrationN int) *CUSUM {
	if threshold <= 0 {
		threshold = 5
	}
	if drift <= 0 {
		drift = 0.5
	}
	if calibrationN <= 0 {
		calibrationN = 20
	}
	return &CUSUM{Threshold: threshold, Drift: drift, CalibrationN: calibrationN}
}

// Calibrated reports whether the detector has finished estimating its
// reference statistics and is actively monitoring.
func (c *CUSUM) Calibrated() bool { return c.ready }

// Observe feeds one observation. It returns true when a change in the mean
// is detected; after a detection the caller should Reset the detector (and,
// in autopn, re-run the optimization).
func (c *CUSUM) Observe(x float64) bool {
	if !c.ready {
		c.calib.Add(x)
		if c.calib.N() >= c.CalibrationN {
			c.mu = c.calib.Mean()
			c.sigma = c.calib.StdDev()
			if c.sigma == 0 {
				// A perfectly constant calibration stream: use a small
				// fraction of the mean so any real movement registers.
				c.sigma = math.Max(math.Abs(c.mu)*1e-3, 1e-12)
			}
			c.ready = true
		}
		return false
	}
	z := (x - c.mu) / c.sigma
	c.hi = math.Max(0, c.hi+z-c.Drift)
	c.lo = math.Max(0, c.lo-z-c.Drift)
	return c.hi > c.Threshold || c.lo > c.Threshold
}

// Reset re-arms the detector, discarding reference statistics and
// accumulated evidence.
func (c *CUSUM) Reset() {
	c.calib.Reset()
	c.mu, c.sigma = 0, 0
	c.hi, c.lo = 0, 0
	c.ready = false
}
