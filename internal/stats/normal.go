package stats

import "math"

// NormPDF returns the probability density of the standard normal
// distribution at z.
func NormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// NormCDF returns the cumulative distribution function of the standard
// normal distribution at z.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ExpectedImprovement computes the closed-form Expected Improvement of
// sampling a point whose predicted outcome is Gaussian with the given mean
// and standard deviation, relative to the incumbent best value, for a
// maximization problem (Eq. 1 of the paper):
//
//	EI = (mu - best) * Phi((mu-best)/sigma) + sigma * phi((mu-best)/sigma)
//
// When sigma is zero the prediction is treated as certain and EI degenerates
// to max(mu-best, 0).
func ExpectedImprovement(mean, stddev, best float64) float64 {
	if stddev <= 0 {
		if d := mean - best; d > 0 {
			return d
		}
		return 0
	}
	z := (mean - best) / stddev
	ei := (mean-best)*NormCDF(z) + stddev*NormPDF(z)
	if ei < 0 {
		// Guard against tiny negative values from floating-point error.
		return 0
	}
	return ei
}
