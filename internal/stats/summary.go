package stats

import (
	"math"
	"sort"
)

// Summary is a streaming summary of a sequence of float64 observations
// using Welford's numerically stable online algorithm. The zero value is an
// empty summary ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the minimum observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CV returns the coefficient of variation, std-dev / |mean|. It returns
// +Inf when the mean is zero and there is spread, and 0 for an empty or
// constant sequence.
func (s *Summary) CV() float64 {
	sd := s.StdDev()
	if sd == 0 {
		return 0
	}
	if s.mean == 0 {
		return math.Inf(1)
	}
	return sd / math.Abs(s.mean)
}

// Reset returns the summary to its empty state.
func (s *Summary) Reset() { *s = Summary{} }

// Merge combines another summary into s, as if all of o's observations had
// been added to s (Chan et al. parallel variance formula).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs, or 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
