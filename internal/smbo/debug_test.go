package smbo

import (
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// TestDebugEIDynamics prints the surrogate's behaviour right after the
// biased initial sampling on tpcc-med; run with -v while tuning.
func TestDebugEIDynamics(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(42)

	var obs []Observation
	explored := map[space.Config]bool{}
	best := 0.0
	var bestCfg space.Config
	for _, cfg := range sp.BiasedSample(9) {
		kpi := w.Measure(cfg, rng)
		obs = append(obs, Observation{Cfg: cfg, KPI: kpi})
		explored[cfg] = true
		if kpi > best {
			best, bestCfg = kpi, cfg
		}
		t.Logf("init %v -> %.1f", cfg, kpi)
	}
	t.Logf("incumbent %v = %.1f (true opt: %v)", bestCfg, best, mustOpt(w, sp))

	for step := 0; step < 25; step++ {
		sur := Fit(obs, DefaultEnsembleSize, rng, nil)
		for _, probe := range []space.Config{{T: 20, C: 2}, {T: 24, C: 2}, {T: 16, C: 3}, {T: 10, C: 4}, {T: 40, C: 1}} {
			mu, sd := sur.PredictDist(probe)
			t.Logf("  step %d predict %v: mu=%.1f sd=%.1f (true %.1f)", step, probe, mu, sd, w.Throughput(probe))
		}
		sug, ok := SuggestEI(sp, sur, explored, best)
		if !ok {
			break
		}
		t.Logf("step %d suggest %v EI=%.2f relEI=%.3f", step, sug.Cfg, sug.EI, sug.RelEI)
		kpi := w.Measure(sug.Cfg, rng)
		obs = append(obs, Observation{Cfg: sug.Cfg, KPI: kpi})
		explored[sug.Cfg] = true
		if kpi > best {
			best, bestCfg = kpi, sug.Cfg
		}
		t.Logf("  measured %v = %.1f, incumbent %v = %.1f", sug.Cfg, kpi, bestCfg, best)
	}
}

func mustOpt(w *surface.Workload, sp *space.Space) space.Config {
	c, _ := w.Optimum(sp)
	return c
}
