package smbo

import (
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func TestNoiseAwareWidensUncertainty(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(31)
	var obs []Observation
	for _, cfg := range sp.BiasedSample(9) {
		obs = append(obs, Observation{Cfg: cfg, KPI: w.Measure(cfg, rng), MeasCV: 0.2})
	}
	base := Fit(obs, DefaultEnsembleSize, stats.NewRNG(1), nil)
	aware := FitNoiseAware(obs, DefaultEnsembleSize, stats.NewRNG(1), nil)
	probe := space.Config{T: 20, C: 2}
	_, sdBase := base.PredictDist(probe)
	_, sdAware := aware.PredictDist(probe)
	t.Logf("sd base=%.1f aware=%.1f floor>=%.1f", sdBase, sdAware, sdAware-sdBase)
	if sdAware <= sdBase {
		t.Fatalf("noise floor did not widen uncertainty: %.2f vs %.2f", sdAware, sdBase)
	}
}
