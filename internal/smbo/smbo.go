// Package smbo provides the Sequential Model-Based Optimization machinery
// of AutoPN (§V-B of the paper): fitting a bagged-M5 surrogate over the
// (t, c) configuration space and selecting the next configuration to
// explore with the Expected Improvement acquisition function.
package smbo

import (
	"math"

	"autopn/internal/ensemble"
	"autopn/internal/m5"
	"autopn/internal/space"
	"autopn/internal/stats"
)

// Observation is one explored configuration and its measured KPI (higher
// is better; AutoPN maximizes throughput). MeasCV optionally records the
// measurement's coefficient of variation, which the noise-aware variant of
// the acquisition function (§VIII future work: "incorporate information on
// the noisiness of sampled data in the modeling phase") folds into the
// prediction uncertainty.
type Observation struct {
	Cfg    space.Config
	KPI    float64
	MeasCV float64
}

// Features maps a configuration to the surrogate's minimalist feature
// vector. The paper deliberately restricts the feature space to (t, c) so
// that models remain trainable from a handful of online samples (§V-B).
func Features(cfg space.Config) []float64 {
	return []float64{float64(cfg.T), float64(cfg.C)}
}

// Surrogate is the probabilistic model M of the SMBO loop: a bagging
// ensemble whose prediction spread provides the uncertainty estimate.
// When built with FitNoiseAware it additionally carries a measurement-noise
// floor that widens predictive uncertainty (and damps over-trust in lucky
// noisy samples).
type Surrogate struct {
	bag *ensemble.Bag
	// noiseFloor is an absolute KPI standard deviation added (in
	// quadrature) to the ensemble spread; zero for the paper's baseline
	// behaviour.
	noiseFloor float64
}

// DefaultEnsembleSize is the bag size the paper found sufficient for model
// diversity at negligible overhead.
const DefaultEnsembleSize = 10

// Fit trains a surrogate on the observations. k is the ensemble size;
// trainer may be nil, in which case M5 model trees with default options are
// used.
func Fit(obs []Observation, k int, rng *stats.RNG, trainer ensemble.Trainer) *Surrogate {
	if trainer == nil {
		trainer = ensemble.M5Trainer(m5.DefaultOptions())
	}
	data := make([]m5.Instance, len(obs))
	for i, o := range obs {
		data[i] = m5.Instance{X: Features(o.Cfg), Y: o.KPI}
	}
	return &Surrogate{bag: ensemble.Train(data, k, rng, trainer)}
}

// FitNoiseAware trains a surrogate that also accounts for the noisiness of
// the measurements: the mean measurement standard deviation (CV times KPI)
// across observations becomes a floor under the predictive uncertainty, so
// the EI acquisition keeps exploring while measurements are too noisy to
// distinguish candidates — the paper's §VIII extension.
func FitNoiseAware(obs []Observation, k int, rng *stats.RNG, trainer ensemble.Trainer) *Surrogate {
	sur := Fit(obs, k, rng, trainer)
	sum, n := 0.0, 0
	for _, o := range obs {
		if o.MeasCV > 0 && o.KPI > 0 {
			sum += o.MeasCV * o.KPI
			n++
		}
	}
	if n > 0 {
		sur.noiseFloor = sum / float64(n)
	}
	return sur
}

// PredictDist returns the surrogate's Gaussian belief (mu, sigma) at cfg.
func (s *Surrogate) PredictDist(cfg space.Config) (mean, std float64) {
	mean, std = s.bag.PredictDist(Features(cfg))
	if s.noiseFloor > 0 {
		std = math.Sqrt(std*std + s.noiseFloor*s.noiseFloor)
	}
	return mean, std
}

// Suggestion is the outcome of an acquisition pass over the space.
type Suggestion struct {
	Cfg space.Config
	// EI is the expected improvement of Cfg over the incumbent best.
	EI float64
	// RelEI is EI normalized by the incumbent best KPI (the quantity the
	// paper compares against the 1%-10% stopping thresholds); it equals EI
	// when the incumbent is non-positive.
	RelEI float64
}

// SuggestEI scans every unexplored configuration and returns the one with
// the highest Expected Improvement over best (the incumbent's measured
// KPI). ok is false when every configuration has been explored.
func SuggestEI(sp *space.Space, sur *Surrogate, explored map[space.Config]bool, best float64) (Suggestion, bool) {
	return SuggestEIWhere(sp, sur, best, func(cfg space.Config) bool { return explored[cfg] })
}

// SuggestEIWhere is SuggestEI with an arbitrary exclusion predicate: any
// configuration for which skip returns true is removed from the candidate
// set. The tuner uses it to exclude quarantined configurations in addition
// to already-explored ones.
func SuggestEIWhere(sp *space.Space, sur *Surrogate, best float64, skip func(space.Config) bool) (Suggestion, bool) {
	var out Suggestion
	outMean := 0.0
	found := false
	for _, cfg := range sp.Configs() {
		if skip(cfg) {
			continue
		}
		mean, std := sur.PredictDist(cfg)
		ei := stats.ExpectedImprovement(mean, std, best)
		// Ties (in particular the all-zero-EI regime once the model is
		// confidently pessimistic everywhere) break toward the highest
		// predicted mean rather than toward enumeration order.
		if !found || ei > out.EI || (ei == out.EI && mean > outMean) {
			out = Suggestion{Cfg: cfg, EI: ei}
			outMean = mean
			found = true
		}
	}
	if !found {
		return Suggestion{}, false
	}
	out.RelEI = out.EI
	if best > 0 {
		out.RelEI = out.EI / best
	}
	return out, true
}

// SuggestMean is the purely exploitative ("greedy") acquisition used by the
// acquisition-function ablation: it picks the unexplored configuration with
// the highest predicted mean, ignoring uncertainty.
func SuggestMean(sp *space.Space, sur *Surrogate, explored map[space.Config]bool, best float64) (Suggestion, bool) {
	return SuggestMeanWhere(sp, sur, best, func(cfg space.Config) bool { return explored[cfg] })
}

// SuggestMeanWhere is SuggestMean with an arbitrary exclusion predicate,
// mirroring SuggestEIWhere.
func SuggestMeanWhere(sp *space.Space, sur *Surrogate, best float64, skip func(space.Config) bool) (Suggestion, bool) {
	var out Suggestion
	bestMean := 0.0
	found := false
	for _, cfg := range sp.Configs() {
		if skip(cfg) {
			continue
		}
		mean, _ := sur.PredictDist(cfg)
		if !found || mean > bestMean {
			bestMean = mean
			improvement := mean - best
			if improvement < 0 {
				improvement = 0
			}
			out = Suggestion{Cfg: cfg, EI: improvement}
			found = true
		}
	}
	if !found {
		return Suggestion{}, false
	}
	out.RelEI = out.EI
	if best > 0 {
		out.RelEI = out.EI / best
	}
	return out, true
}
