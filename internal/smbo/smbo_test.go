package smbo

import (
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

func initialObservations(w *surface.Workload, sp *space.Space, rng *stats.RNG) ([]Observation, map[space.Config]bool, float64) {
	var obs []Observation
	explored := map[space.Config]bool{}
	best := 0.0
	for _, cfg := range sp.BiasedSample(9) {
		kpi := w.Measure(cfg, rng)
		obs = append(obs, Observation{Cfg: cfg, KPI: kpi})
		explored[cfg] = true
		if kpi > best {
			best = kpi
		}
	}
	return obs, explored, best
}

func TestFeatures(t *testing.T) {
	f := Features(space.Config{T: 20, C: 2})
	if len(f) != 2 || f[0] != 20 || f[1] != 2 {
		t.Fatalf("Features = %v", f)
	}
}

func TestSuggestEISkipsExplored(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(11)
	obs, explored, best := initialObservations(w, sp, rng)
	sur := Fit(obs, DefaultEnsembleSize, rng, nil)
	sug, ok := SuggestEI(sp, sur, explored, best)
	if !ok {
		t.Fatal("no suggestion with most of the space unexplored")
	}
	if explored[sug.Cfg] {
		t.Fatalf("suggested already-explored %v", sug.Cfg)
	}
	if sug.EI < 0 || sug.RelEI < 0 {
		t.Fatalf("negative EI: %+v", sug)
	}
}

func TestSuggestExhaustedSpace(t *testing.T) {
	sp := space.New(2) // 3 configurations
	w := surface.TPCC("low")
	rng := stats.NewRNG(3)
	var obs []Observation
	explored := map[space.Config]bool{}
	for _, cfg := range sp.Configs() {
		obs = append(obs, Observation{Cfg: cfg, KPI: float64(cfg.T)})
		explored[cfg] = true
	}
	_ = w
	sur := Fit(obs, 5, rng, nil)
	if _, ok := SuggestEI(sp, sur, explored, 2); ok {
		t.Fatal("SuggestEI returned a config from an exhausted space")
	}
	if _, ok := SuggestMean(sp, sur, explored, 2); ok {
		t.Fatal("SuggestMean returned a config from an exhausted space")
	}
}

func TestRelEINormalization(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(17)
	obs, explored, best := initialObservations(w, sp, rng)
	sur := Fit(obs, DefaultEnsembleSize, rng, nil)
	sug, _ := SuggestEI(sp, sur, explored, best)
	if best > 0 && sug.RelEI != sug.EI/best {
		t.Fatalf("RelEI %v != EI/best %v", sug.RelEI, sug.EI/best)
	}
}

func TestSMBOLoopFindsGoodRegion(t *testing.T) {
	// Driving the SMBO loop (without hill climbing, without stopping) for
	// 25 steps must reach a configuration within 25% of the optimum on the
	// paper's headline workload — the model-phase guarantee that the final
	// hill climb then refines.
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	_, opt := w.Optimum(sp)
	rng := stats.NewRNG(23)
	obs, explored, best := initialObservations(w, sp, rng)
	for step := 0; step < 25; step++ {
		sur := Fit(obs, DefaultEnsembleSize, rng, nil)
		sug, ok := SuggestEI(sp, sur, explored, best)
		if !ok {
			break
		}
		kpi := w.Measure(sug.Cfg, rng)
		obs = append(obs, Observation{Cfg: sug.Cfg, KPI: kpi})
		explored[sug.Cfg] = true
		if kpi > best {
			best = kpi
		}
	}
	if best < 0.75*opt {
		t.Fatalf("SMBO best %.1f below 75%% of optimum %.1f", best, opt)
	}
}

func TestSurrogatePredictDistFinite(t *testing.T) {
	w := surface.Array("90")
	sp := space.New(w.Cores)
	rng := stats.NewRNG(29)
	obs, _, _ := initialObservations(w, sp, rng)
	sur := Fit(obs, DefaultEnsembleSize, rng, nil)
	for _, cfg := range sp.Configs() {
		mean, sd := sur.PredictDist(cfg)
		if sd < 0 || mean != mean || sd != sd { // NaN checks
			t.Fatalf("bad prediction at %v: (%v, %v)", cfg, mean, sd)
		}
	}
}
