// Package search defines the ask/tell optimizer interface shared by AutoPN
// and the five general-purpose online baselines the paper compares against
// (§VII-A): random search, grid search, hill climbing, simulated annealing,
// and a genetic algorithm.
//
// Every optimizer is a deterministic state machine given its RNG seed: the
// driver alternates Next (which configuration to measure) and Observe (its
// measured KPI, higher = better), until Next reports done. This decoupling
// lets the same optimizers run against live systems, the discrete-event
// simulator, or the offline traces used by the paper's §VII-B protocol.
package search

import "autopn/internal/space"

// Optimizer proposes configurations to evaluate and ingests measurements.
// Implementations are not safe for concurrent use.
type Optimizer interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the next configuration to measure. done=true means the
	// optimizer has converged on Best and wants no further measurements.
	Next() (cfg space.Config, done bool)
	// Observe feeds the measured KPI of the configuration last returned by
	// Next. Observe must be called exactly once between Next calls.
	Observe(cfg space.Config, kpi float64)
	// Best returns the best configuration and KPI observed so far.
	Best() (space.Config, float64)
}

// tracker is embedded by optimizers for common best-so-far bookkeeping.
type tracker struct {
	bestCfg  space.Config
	bestKPI  float64
	observed int
}

func (t *tracker) note(cfg space.Config, kpi float64) {
	if t.observed == 0 || kpi > t.bestKPI {
		t.bestCfg, t.bestKPI = cfg, kpi
	}
	t.observed++
}

func (t *tracker) Best() (space.Config, float64) { return t.bestCfg, t.bestKPI }

// noImprovementStop implements the stopping rule the paper applies to the
// random and grid baselines for a fair comparison with AutoPN's EI<10%
// criterion: stop when the last Window explorations have not improved the
// best KPI by more than RelDelta (relative).
type noImprovementStop struct {
	window   int
	relDelta float64

	sinceImprove int
	best         float64
	any          bool
}

func newNoImprovementStop(window int, relDelta float64) *noImprovementStop {
	return &noImprovementStop{window: window, relDelta: relDelta}
}

// observe feeds one KPI and reports whether exploration should stop.
func (s *noImprovementStop) observe(kpi float64) bool {
	if !s.any {
		s.any = true
		s.best = kpi
		s.sinceImprove = 0
		return false
	}
	threshold := s.best * (1 + s.relDelta)
	if s.best <= 0 {
		threshold = s.best + s.relDelta
	}
	if kpi > threshold {
		s.best = kpi
		s.sinceImprove = 0
	} else {
		if kpi > s.best {
			s.best = kpi
		}
		s.sinceImprove++
	}
	return s.sinceImprove >= s.window
}
