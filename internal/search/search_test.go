package search

import (
	"testing"

	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// drive runs an optimizer against a noiseless workload surface, caching
// measurements, and returns the distinct exploration count and final best.
func drive(t *testing.T, opt Optimizer, w *surface.Workload, maxRounds int) (int, space.Config) {
	t.Helper()
	known := map[space.Config]float64{}
	for round := 0; round < maxRounds; round++ {
		cfg, done := opt.Next()
		if done {
			best, _ := opt.Best()
			return len(known), best
		}
		kpi, ok := known[cfg]
		if !ok {
			kpi = w.Throughput(cfg)
			known[cfg] = kpi
		}
		opt.Observe(cfg, kpi)
	}
	t.Fatalf("%s did not converge within %d rounds", opt.Name(), maxRounds)
	return 0, space.Config{}
}

func TestRandomExploresWithoutRepeats(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	opt := NewRandom(sp, stats.NewRNG(1), 1<<30, 0) // never stop early
	seen := map[space.Config]bool{}
	for i := 0; i < sp.Size(); i++ {
		cfg, done := opt.Next()
		if done {
			t.Fatalf("exhaustive random stopped early at %d", i)
		}
		if seen[cfg] {
			t.Fatalf("random repeated %v", cfg)
		}
		seen[cfg] = true
		opt.Observe(cfg, w.Throughput(cfg))
	}
	if _, done := opt.Next(); !done {
		t.Fatal("random did not stop after exhausting the space")
	}
}

func TestRandomStopRule(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	opt := NewRandom(sp, stats.NewRNG(2), 5, 0.10)
	n, _ := drive(t, opt, w, 10000)
	if n < 5 || n >= sp.Size() {
		t.Fatalf("random explored %d configs; stop rule broken", n)
	}
}

func TestGridOrderSweepsCFirst(t *testing.T) {
	sp := space.New(8)
	opt := NewGrid(sp, 1<<30, 0)
	cfg1, _ := opt.Next()
	opt.Observe(cfg1, 1)
	cfg2, _ := opt.Next()
	if cfg1 != (space.Config{T: 1, C: 1}) || cfg2 != (space.Config{T: 1, C: 2}) {
		t.Fatalf("grid order starts %v, %v; want (1,1), (1,2)", cfg1, cfg2)
	}
}

func TestHillClimbReachesLocalOptimumOfSmoothSurface(t *testing.T) {
	// On the noiseless tpcc-med surface, a climber seeded at (24,1) must
	// walk to the global optimum (20,2): the path along c=2 is monotone.
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	optCfg, _ := w.Optimum(sp)
	hc := NewHillClimbFrom(sp, space.Config{T: 24, C: 1})
	_, best := drive(t, hc, w, 10000)
	if best != optCfg {
		t.Fatalf("hill climb from (24,1) ended at %v, want %v", best, optCfg)
	}
}

func TestHillClimbStopsAtLocalMaximum(t *testing.T) {
	// Array-90's surface has a local maximum at (1,14); starting there the
	// climber must evaluate the neighborhood and stop quickly.
	w := surface.Array("90")
	sp := space.New(w.Cores)
	optCfg, _ := w.Optimum(sp)
	hc := NewHillClimbFrom(sp, optCfg)
	n, best := drive(t, hc, w, 1000)
	if best != optCfg {
		t.Fatalf("climber left the optimum: %v", best)
	}
	if n > 5 {
		t.Fatalf("climber at optimum explored %d configs", n)
	}
}

func TestHillClimbSeedAvoidsRemeasurement(t *testing.T) {
	w := surface.TPCC("low")
	sp := space.New(w.Cores)
	hc := NewHillClimbFrom(sp, space.Config{T: 5, C: 2})
	hc.Seed(space.Config{T: 5, C: 2}, w.Throughput(space.Config{T: 5, C: 2}))
	cfg, done := hc.Next()
	if done {
		t.Fatal("done immediately")
	}
	if cfg == (space.Config{T: 5, C: 2}) {
		t.Fatal("re-measured the seeded start")
	}
}

func TestAnnealingConvergesAndStops(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	opt := NewAnnealing(sp, stats.NewRNG(5))
	n, _ := drive(t, opt, w, 10000)
	if n < 5 {
		t.Fatalf("annealing explored only %d configs", n)
	}
}

func TestGeneticConvergesToGoodSolution(t *testing.T) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	_, optV := w.Optimum(sp)
	sum := 0.0
	const reps = 5
	for seed := uint64(1); seed <= reps; seed++ {
		opt := NewGenetic(sp, stats.NewRNG(seed*37))
		_, best := drive(t, opt, w, 100000)
		sum += w.Throughput(best) / optV
	}
	if avg := sum / reps; avg < 0.85 {
		t.Fatalf("GA average quality %.2f of optimum, want >= 0.85", avg)
	}
}

func TestGeneticRepairRespectsConstraint(t *testing.T) {
	sp := space.New(48)
	g := NewGenetic(sp, stats.NewRNG(7))
	cases := []space.Config{
		{T: 100, C: 3}, {T: -2, C: 0}, {T: 48, C: 48}, {T: 7, C: 7}, {T: 1, C: 1},
	}
	for _, c := range cases {
		r := g.repair(c)
		if !r.Valid(48) {
			t.Fatalf("repair(%v) = %v invalid", c, r)
		}
	}
}

func TestNoImprovementStopRelativeDelta(t *testing.T) {
	s := newNoImprovementStop(3, 0.10)
	if s.observe(100) {
		t.Fatal("stopped on first observation")
	}
	// Improvements above 10% reset the counter.
	if s.observe(115) || s.observe(130) {
		t.Fatal("stopped during improvements")
	}
	// Three non-improvements trigger the stop.
	if s.observe(131) {
		t.Fatal("1st non-improvement stopped")
	}
	if s.observe(132) {
		t.Fatal("2nd non-improvement stopped")
	}
	if !s.observe(120) {
		t.Fatal("3rd non-improvement did not stop")
	}
}
