package search

import (
	"math"

	"autopn/internal/space"
	"autopn/internal/stats"
)

// Annealing is simulated annealing over the (t, c) grid (the paper's SA
// baseline): a random-walk hill climber that accepts a worsening move with
// probability exp(-delta / T), where the temperature T decays geometrically
// after every evaluation. The meta-parameters below are the robust settings
// identified by an offline grid search mirroring the paper's 10-fold
// cross-validated meta-tuning (see the calibration test in this package).
type Annealing struct {
	tracker
	sp  *space.Space
	rng *stats.RNG

	// InitialTemp is the starting temperature, expressed as a fraction of
	// the first observed KPI (temperature must share the KPI's scale for
	// exp(-delta/T) to be meaningful across workloads).
	InitialTemp float64
	// Cooling is the geometric decay factor applied per evaluation.
	Cooling float64
	// FreezeTemp stops the search once T falls below FreezeTemp times the
	// initial temperature.
	FreezeTemp float64

	current    space.Config
	currentKPI float64
	temp       float64 // absolute temperature, set on first observation
	temp0      float64 // initial absolute temperature
	proposal   space.Config
	known      map[space.Config]float64
	steps      int
	done       bool
}

// NewAnnealing returns an SA optimizer with the calibrated defaults
// (initial temperature 30% of the first KPI, cooling 0.90, freeze at 1%).
func NewAnnealing(sp *space.Space, rng *stats.RNG) *Annealing {
	return &Annealing{
		sp:          sp,
		rng:         rng,
		InitialTemp: 0.30,
		Cooling:     0.90,
		FreezeTemp:  0.01,
		current:     sp.At(rng.Intn(sp.Size())),
		known:       make(map[space.Config]float64),
	}
}

// Name implements Optimizer.
func (a *Annealing) Name() string { return "simulated-annealing" }

// Next implements Optimizer.
func (a *Annealing) Next() (space.Config, bool) {
	if a.done {
		return space.Config{}, true
	}
	if a.steps == 0 {
		a.proposal = a.current
		return a.current, false
	}
	// Propose a random neighbor of the current point.
	nbs := a.sp.Neighbors(a.current)
	a.proposal = nbs[a.rng.Intn(len(nbs))]
	return a.proposal, false
}

// Observe implements Optimizer.
func (a *Annealing) Observe(cfg space.Config, kpi float64) {
	a.note(cfg, kpi)
	a.known[cfg] = kpi
	if a.steps == 0 {
		a.current, a.currentKPI = cfg, kpi
		scale := math.Abs(kpi)
		if scale == 0 {
			scale = 1
		}
		a.temp = a.InitialTemp * scale
		a.temp0 = a.temp
		a.steps++
		return
	}
	delta := a.currentKPI - kpi // positive when the proposal is worse
	if delta <= 0 || a.rng.Float64() < math.Exp(-delta/a.temp) {
		a.current, a.currentKPI = cfg, kpi
	}
	a.temp *= a.Cooling
	a.steps++
	if a.temp < a.FreezeTemp*a.temp0 {
		a.done = true
	}
}
