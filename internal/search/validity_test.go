package search_test

import (
	"testing"
	"testing/quick"

	"autopn/internal/core"
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
)

// TestAllStrategiesProposeOnlyAdmissibleConfigs property-checks every
// optimizer (including AutoPN) across random seeds and machine sizes:
// every configuration handed to the evaluator must lie inside S.
func TestAllStrategiesProposeOnlyAdmissibleConfigs(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%31) + 2 // machine sizes 2..32
		sp := space.New(n)
		w := surface.TPCC("med")
		w.Cores = n
		rng := stats.NewRNG(seed)
		opts := []search.Optimizer{
			search.NewRandom(sp, rng.Split(), 5, 0.1),
			search.NewGrid(sp, 5, 0.1),
			search.NewHillClimb(sp, rng.Split()),
			search.NewAnnealing(sp, rng.Split()),
			search.NewGenetic(sp, rng.Split()),
			core.New(sp, rng.Split(), core.Options{}),
		}
		for _, opt := range opts {
			known := map[space.Config]float64{}
			for round := 0; round < 3000; round++ {
				cfg, done := opt.Next()
				if done {
					break
				}
				if !sp.Contains(cfg) {
					t.Errorf("%s proposed inadmissible %v for n=%d", opt.Name(), cfg, n)
					return false
				}
				kpi, ok := known[cfg]
				if !ok {
					kpi = w.Throughput(cfg)
					known[cfg] = kpi
				}
				opt.Observe(cfg, kpi)
			}
			best, _ := opt.Best()
			if !sp.Contains(best) {
				t.Errorf("%s settled on inadmissible %v for n=%d", opt.Name(), best, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
